package repro

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// --- round-trip property ---

// randSpec assembles a random valid spec string (possibly non-canonical:
// shuffled field order, "true"/"false" booleans, unsigned deltas are not
// generated — those are covered by explicit cases).
func randSpec(r *rand.Rand) string {
	kinds := []string{"tage", "gshare", "gehl", "composed"}
	kind := kinds[r.Intn(len(kinds))]
	var fields []string
	pick := func(key string, vals ...string) {
		if r.Intn(2) == 0 {
			fields = append(fields, key+"="+vals[r.Intn(len(vals))])
		}
	}
	switch kind {
	case "tage":
		pick("tables", "1", "4", "9", "12", "16")
		pick("log", "6", "10", "12")
		pick("tag", "4", "8", "12", "16")
		pick("hist", "1:2", "4:100", "6:2000")
		pick("bim", "8", "12", "15")
		pick("alloc", "1", "2", "4")
		pick("ium", "0", "1")
		pick("banked", "0", "1")
		pick("seed", "0", "12345")
	case "gshare":
		pick("log", "8", "14", "20")
	case "gehl":
		pick("tables", "2", "5", "13")
		pick("log", "6", "10", "13")
		pick("ctr", "2", "5", "8")
		pick("hist", "2:50", "6:2000")
	case "composed":
		pick("tables", "4", "10", "12")
		pick("log", "7", "11")
		pick("tag", "5", "11")
		pick("hist", "3:300")
		pick("seed", "7")
	}
	r.Shuffle(len(fields), func(i, j int) { fields[i], fields[j] = fields[j], fields[i] })
	s := kind + ":"
	if kind == "composed" {
		parts := []string{"tage"}
		for _, p := range []string{"ium", "loop", "gsc", "lsc"} {
			if r.Intn(2) == 0 {
				parts = append(parts, p)
			}
		}
		s += strings.Join(parts, "+")
		if len(fields) > 0 {
			s += ","
		}
	} else if len(fields) == 0 {
		// A parameterised kind needs at least one field; fall back.
		s += "log=10"
		fields = nil
	}
	s += strings.Join(fields, ",")
	if r.Intn(3) == 0 {
		s += fmt.Sprintf("@%+d", r.Intn(7)-3)
	}
	return s
}

// TestSpecCanonicalRoundTrip: for random valid specs,
// ParseSpec(s.Canonical()) is the identity — the canonical form parses
// back to itself, byte for byte.
func TestSpecCanonicalRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(20260727))
	for i := 0; i < 2000; i++ {
		raw := randSpec(r)
		spec, err := ParseSpec(raw)
		if err != nil {
			t.Fatalf("generated spec %q failed to parse: %v", raw, err)
		}
		canon := spec.Canonical()
		again, err := ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical %q (of %q) failed to parse: %v", canon, raw, err)
		}
		if got := again.Canonical(); got != canon {
			t.Fatalf("round trip not identity: %q -> %q -> %q", raw, canon, got)
		}
	}
}

// TestNamedSpecsRoundTrip: every named model (with and without a delta
// where scalable) is its own canonical form.
func TestNamedSpecsRoundTrip(t *testing.T) {
	for _, name := range ModelNames() {
		spec, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("named model %q failed to parse as a spec: %v", name, err)
		}
		if !spec.IsNamed() || spec.Canonical() != name {
			t.Fatalf("named model %q canonicalises to %q", name, spec.Canonical())
		}
	}
	for _, name := range ScalableModelNames() {
		s := name + "@+2"
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("scaled named model %q: %v", s, err)
		}
		if spec.Canonical() != s {
			t.Fatalf("scaled named model %q canonicalises to %q", s, spec.Canonical())
		}
		if d, ok := spec.Delta(); !ok || d != 2 {
			t.Fatalf("scaled named model %q: delta %d, %v", s, d, ok)
		}
	}
}

// runShort simulates a model over a short trace and returns the fields a
// config-equality check cares about (timing excluded).
func runShort(t *testing.T, m *Model) [4]float64 {
	t.Helper()
	tr := MustGenerateTrace("INT01", 4000)
	res := m.Run(tr, Options{Scenario: ScenarioA})
	return [4]float64{res.MPKI, res.MPPKI, float64(res.Mispredicts), float64(res.MicroOps)}
}

// TestNamedModelsRebuildIdentically: every Models() identifier parses to
// a spec whose Build produces a model with identical results and storage
// to the hand-written constructor — the named models really are sugar
// over the spec API.
func TestNamedModelsRebuildIdentically(t *testing.T) {
	for name, mk := range Models() {
		spec, err := ParseSpec(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		built, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: build: %v", name, err)
		}
		direct := mk()
		if built.StorageBits() != direct.StorageBits() {
			t.Fatalf("%s: spec build %d bits, constructor %d bits", name, built.StorageBits(), direct.StorageBits())
		}
		if got, want := runShort(t, built), runShort(t, direct); got != want {
			t.Fatalf("%s: spec build result %v, constructor result %v", name, got, want)
		}
	}
}

// TestExplicitSpecsMatchSugar: the parameterised kinds with their
// defaults rebuild the corresponding named models bit for bit — the
// sugar and the explicit grammar describe the same predictors.
func TestExplicitSpecsMatchSugar(t *testing.T) {
	pairs := [][2]string{
		{"tage:tables=12", "tage"},
		{"gshare:log=18", "gshare"},
		{"gehl:tables=13", "gehl"},
		{"composed:tage+ium+loop+gsc", "isl-tage"},
		{"composed:tage+ium", "tage-ium"},
	}
	for _, p := range pairs {
		explicit, err := LookupModel(p[0])
		if err != nil {
			t.Fatalf("%s: %v", p[0], err)
		}
		sugar, err := LookupModel(p[1])
		if err != nil {
			t.Fatalf("%s: %v", p[1], err)
		}
		if explicit.StorageBits() != sugar.StorageBits() {
			t.Fatalf("%s vs %s: %d bits vs %d bits", p[0], p[1], explicit.StorageBits(), sugar.StorageBits())
		}
		if got, want := runShort(t, explicit), runShort(t, sugar); got != want {
			t.Fatalf("%s result %v, %s result %v", p[0], want, p[1], got)
		}
	}
}

// TestSpecErrorsNameTheBadField: malformed specs must produce actionable
// errors naming the offending field or component.
func TestSpecErrorsNameTheBadField(t *testing.T) {
	cases := []struct {
		spec string
		want []string // substrings the error must contain
	}{
		{"", []string{"empty"}},
		{"nope", []string{"nope", "tage"}},
		{"foo:log=3", []string{"foo", "tage, gshare, gehl, composed"}},
		{"tage:", []string{"empty parameter list"}},
		{"tage:bogus=1", []string{"bogus", "tables"}},
		{"tage:tables=99", []string{"tables", "out of range"}},
		{"tage:tables=x", []string{"tables", "not an integer"}},
		{"tage:hist=2000", []string{"hist", "min:max"}},
		{"tage:hist=9:4", []string{"hist", "invalid"}},
		{"tage:ium=maybe", []string{"ium", "boolean"}},
		{"tage:tables=4,tables=5", []string{"tables", "twice"}},
		{"tage:tables=4,,log=7", []string{"empty field"}},
		{"tage:tables", []string{"key=value"}},
		{"gshare:log=40", []string{"log", "out of range"}},
		{"composed:", []string{"component stack"}},
		{"composed:loop", []string{"tage"}},
		{"composed:tage+warp", []string{"warp", "ium, loop, gsc, lsc"}},
		{"composed:tage+ium+ium", []string{"duplicate", "ium"}},
		{"tage@2x", []string{"delta"}},
		{"tage@", []string{"delta"}},
		{"ohsnap@+1", []string{"ohsnap", "storage delta"}},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Fatalf("spec %q: expected error", c.spec)
		}
		for _, w := range c.want {
			if !strings.Contains(err.Error(), w) {
				t.Fatalf("spec %q: error %q does not mention %q", c.spec, err, w)
			}
		}
	}
}

// TestSpecWithFieldAndDelta covers the rewriting primitives behind
// `bpbench -sweep` and the deltaLog axis.
func TestSpecWithFieldAndDelta(t *testing.T) {
	base, err := ParseSpec("tage")
	if err != nil {
		t.Fatal(err)
	}
	swept, err := base.WithField("tables", "9")
	if err != nil {
		t.Fatal(err)
	}
	if got := swept.Canonical(); got != "tage:tables=9" {
		t.Fatalf("WithField canonical %q", got)
	}
	scaled, err := swept.WithDelta(2)
	if err != nil {
		t.Fatal(err)
	}
	if got := scaled.Canonical(); got != "tage:tables=9@+2" {
		t.Fatalf("WithDelta canonical %q", got)
	}
	// WithDelta validates scalability, so every derived spec's canonical
	// form stays parseable.
	ohsnap, err := ParseSpec("ohsnap")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ohsnap.WithDelta(1); err == nil || !strings.Contains(err.Error(), "storage delta") {
		t.Fatalf("WithDelta on non-scalable named model: %v", err)
	}
	// Field order stays canonical regardless of set order.
	s2, err := swept.WithField("hist", "6:500")
	if err != nil {
		t.Fatal(err)
	}
	s3, err := s2.WithField("tables", "7")
	if err != nil {
		t.Fatal(err)
	}
	if got := s3.Canonical(); got != "tage:tables=7,hist=6:500" {
		t.Fatalf("rewritten canonical %q", got)
	}
	// Named models without a parameterised kind of their own refuse
	// field rewriting with a hint at the explicit spelling.
	lsc, err := ParseSpec("tage-lsc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lsc.WithField("tables", "9"); err == nil || !strings.Contains(err.Error(), "composed:") {
		t.Fatalf("tage-lsc WithField error: %v", err)
	}
	// Sweeping validates values like parsing does.
	if _, err := base.WithField("tables", "99"); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range sweep value error: %v", err)
	}
	if _, err := base.WithField("warp", "1"); err == nil || !strings.Contains(err.Error(), "warp") {
		t.Fatalf("unknown sweep field error: %v", err)
	}
}

// TestSweepSpecs covers the -sweep expansion helper.
func TestSweepSpecs(t *testing.T) {
	out, err := SweepSpecs([]string{"tage:tables=13"}, "tables", []string{"11", "12", "13"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"tage:tables=11", "tage:tables=12", "tage:tables=13"}
	if len(out) != len(want) {
		t.Fatalf("sweep produced %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("sweep produced %v, want %v", out, want)
		}
	}
	if _, err := SweepSpecs([]string{"tage", "tage:log=11"}, "log", []string{"11"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate sweep error: %v", err)
	}
}

// TestSplitSpecList: the comma-separated model list splits at spec
// boundaries, not at every comma, so multi-field specs survive flag
// transport.
func TestSplitSpecList(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"tage,gshare", []string{"tage", "gshare"}},
		{"tage:tables=9,hist=6:500,gshare:log=14", []string{"tage:tables=9,hist=6:500", "gshare:log=14"}},
		{"composed:tage+ium+lsc,tables=10,tage@+2", []string{"composed:tage+ium+lsc,tables=10", "tage@+2"}},
		{"tage-lsc@+1,tage:log=11,tag=8", []string{"tage-lsc@+1", "tage:log=11,tag=8"}},
		{" tage , gehl:tables=5,ctr=4 ", []string{"tage", "gehl:tables=5,ctr=4"}},
		{"hist=6:500", []string{"hist=6:500"}}, // not a spec start: one (bad) spec for ParseSpec to reject
		{"", nil},
	}
	for _, c := range cases {
		got := SplitSpecList(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("SplitSpecList(%q) = %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("SplitSpecList(%q) = %v, want %v", c.in, got, c.want)
			}
		}
		// Every produced segment must round-trip through the matrix
		// builder or fail with a spec error — never silently vanish.
	}
	if _, err := BenchModels(SplitSpecList("tage:tables=9,hist=6:500,gshare:log=14")); err != nil {
		t.Fatalf("split specs failed to build: %v", err)
	}
}

// TestSpecBuildArbitrary: a handful of non-named specs build and run.
func TestSpecBuildArbitrary(t *testing.T) {
	for _, s := range []string{
		"tage:tables=9",
		"tage:tables=1,log=6,tag=4,hist=1:2,bim=8,alloc=1",
		"tage:tables=13,hist=6:2000,tag=12",
		"gshare:log=12",
		"gehl:tables=4,log=8,ctr=3,hist=2:40",
		"composed:tage+ium+lsc,tables=10",
		"composed:tage+ium+loop+gsc+lsc,log=9",
		"tage:tables=9@+1",
		"gshare:log=12@-2",
	} {
		m, err := LookupModel(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if m.StorageBits() <= 0 {
			t.Fatalf("%s: storage %d", s, m.StorageBits())
		}
		tr := MustGenerateTrace("INT01", 2000)
		res := m.Run(tr, Options{Scenario: ScenarioA})
		if res.Branches == 0 {
			t.Fatalf("%s: simulated 0 branches", s)
		}
	}
	// Scaling a gshare spec moves its storage by the expected power of two.
	base, _ := LookupModel("gshare:log=12")
	up, _ := LookupModel("gshare:log=12@+2")
	if up.StorageBits() != base.StorageBits()<<2 {
		t.Fatalf("gshare @+2 storage %d, want %d", up.StorageBits(), base.StorageBits()<<2)
	}
}

// TestBenchModelsSpecThreading: harness models built from specs carry
// the canonical spec as both name and spec, and reject duplicate
// canonical forms.
func TestBenchModelsSpecThreading(t *testing.T) {
	ms, err := BenchModels([]string{"tage", "tage:tables=9", "gshare:log=12"})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		if m.Name != m.Spec || m.Spec == "" {
			t.Fatalf("model %q: spec %q", m.Name, m.Spec)
		}
	}
	if ms[1].Scale == nil {
		t.Fatal("parameterised tage spec must be scalable")
	}
	scaled := ms[1].Scale(2)
	if scaled.Spec != "tage:tables=9@+2" {
		t.Fatalf("scaled spec %q", scaled.Spec)
	}
	if _, err := BenchModels([]string{"tage:tables=9,log=11", "tage:log=11,tables=9"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate canonical error: %v", err)
	}
}
