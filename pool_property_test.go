package repro

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Property suite for the predictor pool and intra-cell parallelism.
// The contract under test is the one NewRunner and RunSuite document:
// a pooled instance Reset between runs, and a suite sharded across
// goroutines, are both byte-identical to fresh serial Run calls. The
// specs are drawn from the declarative grammar so arbitrary points of
// the design space — not just the named models — are covered.

// propertySpecs samples the spec grammar deterministically: every kind,
// parameterised variants, budget-scaled variants, and composite stacks.
func propertySpecs(t *testing.T, rng *rand.Rand) []ModelSpec {
	t.Helper()
	raw := []string{
		"tage",
		"gshare",
		"gehl",
		"ohsnap",
		"ftlpp",
		"tage-lsc",
		fmt.Sprintf("tage:tables=%d,hist=%d:%d", 5+rng.Intn(8), 4+rng.Intn(4), 200+rng.Intn(400)),
		fmt.Sprintf("gshare:log=%d", 12+rng.Intn(6)),
		"composed:tage+ium",
		fmt.Sprintf("tage@%+d", 1-rng.Intn(3)),
	}
	specs := make([]ModelSpec, 0, len(raw))
	for _, s := range raw {
		spec, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", s, err)
		}
		specs = append(specs, spec)
	}
	return specs
}

// normalize zeroes the wall-clock fields, the only legitimate
// difference between two runs of the same cell.
func normalize(r Result) Result {
	r.Elapsed = 0
	r.BranchesPerSec = 0
	return r
}

// TestPooledRunnerMatchesFreshAcrossSpecs: for random specs, scenarios
// and traces, a NewRunner closure run repeatedly (dirty pool, Reset
// between calls) returns exactly what fresh Model.Run calls return.
func TestPooledRunnerMatchesFreshAcrossSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	scenarios := []Scenario{ScenarioI, ScenarioA, ScenarioB, ScenarioC}
	names := TraceNames()
	for _, spec := range propertySpecs(t, rng) {
		spec := spec
		t.Run(spec.Canonical(), func(t *testing.T) {
			t.Parallel()
			m, err := spec.Build()
			if err != nil {
				t.Fatalf("Build(%s): %v", spec, err)
			}
			run := m.NewRunner()
			for i := 0; i < 3; i++ {
				sc := scenarios[rng.Intn(len(scenarios))]
				name := names[rng.Intn(len(names))]
				opt := Options{Scenario: sc, Window: 16 + 8*rng.Intn(2)}
				tr := MustGenerateTrace(name, 1500+rng.Intn(1500))
				pooled := normalize(run(tr, opt))
				fresh := normalize(m.Run(tr, opt))
				if !reflect.DeepEqual(pooled, fresh) {
					t.Fatalf("run %d (%s, scenario %v): pooled runner diverged from fresh run\npooled: %+v\nfresh:  %+v",
						i, name, sc, pooled, fresh)
				}
			}
		})
	}
}

// TestRunSuiteShardingZeroMovement: RunSuite over a subset of the suite
// must return identical per-trace results for any worker count —
// sharding is scheduling, never measurement.
func TestRunSuiteShardingZeroMovement(t *testing.T) {
	names := []string{"INT01", "CLIENT01", "MM05", "SERVER03", "WS07", "INT04", "MM01"}
	for _, modelName := range []string{"tage", "gshare"} {
		m, err := LookupModel(modelName)
		if err != nil {
			t.Fatal(err)
		}
		opt := Options{Scenario: ScenarioA, Window: 24}
		serial, err := m.RunSuite(names, 2500, opt, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, len(names), len(names) + 9} {
			par, err := m.RunSuite(names, 2500, opt, workers)
			if err != nil {
				t.Fatal(err)
			}
			if len(par) != len(serial) {
				t.Fatalf("%s workers=%d: %d results, want %d", modelName, workers, len(par), len(serial))
			}
			for i := range serial {
				if got, want := normalize(par[i]), normalize(serial[i]); !reflect.DeepEqual(got, want) {
					t.Fatalf("%s workers=%d trace %s: sharded result moved\ngot:  %+v\nwant: %+v",
						modelName, workers, names[i], got, want)
				}
			}
		}
	}
}
