package repro

import (
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// The checkpoint/resume property suite. PR 8's contract: for any model
// spec, scenario and split point, snapshotting a simulation mid-trace
// and continuing from the restored snapshot produces a Result
// byte-identical to the uninterrupted run — the warm cache can never
// change what a sweep measures, only when its work happens.

// stripResumeTiming zeroes the fields that legitimately differ between
// a full run and a resumed one: wall-clock telemetry and the resume
// bookkeeping itself.
func stripResumeTiming(r Result) Result {
	r.Elapsed, r.BranchesPerSec = 0, 0
	r.ResumedAt = 0
	return r
}

// checkpointSpecs spans the predictor zoo: every named model (all ~10
// Snapshot/Restore implementations, including the composed ISL-TAGE /
// LSC stacks and the neural and FTL++ outliers), parameterised specs,
// an explicit composed stack, and @±d scaled variants.
var checkpointSpecs = []string{
	"tage", "gshare", "gehl", "ftlpp", "ohsnap",
	"isl-tage", "tage-ium", "tage-lsc", "tage-lsc-banked",
	"tage:tables=9,hist=6:300",
	"gshare:log=13",
	"composed:tage+ium+lsc",
	"tage@+1",
	"tage-lsc@-1",
}

func TestCheckpointResumeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5e2c))
	scenarios := []Scenario{ScenarioI, ScenarioA, ScenarioB, ScenarioC}
	traces := []string{"INT01", "MM05", "SERVER03", "WS07"}
	const branches = 12000

	for i, spec := range checkpointSpecs {
		spec := spec
		sc := scenarios[i%len(scenarios)]
		trName := traces[rng.Intn(len(traces))]
		split := uint64(1000 + rng.Intn(branches-2000)) // random mid-trace split
		t.Run(spec, func(t *testing.T) {
			m, err := LookupModel(spec)
			if err != nil {
				t.Fatal(err)
			}
			tr := MustGenerateTrace(trName, branches)
			opt := Options{Scenario: sc, Window: 16, ExecDelay: 4}
			want := stripResumeTiming(m.Run(tr, opt))

			var cks []Checkpoint
			ckOpt := opt
			ckOpt.CheckpointEvery = split
			ckOpt.OnCheckpoint = func(blob []byte, at uint64) {
				cks = append(cks, Checkpoint{At: at, Blob: append([]byte(nil), blob...)})
			}
			if got := stripResumeTiming(m.Run(tr, ckOpt)); got != want {
				t.Fatalf("emitting checkpoints perturbed the run:\n  with:    %+v\n  without: %+v", got, want)
			}
			if len(cks) < 2 {
				t.Fatalf("got %d checkpoints, want a mid-trace one and the final one", len(cks))
			}
			// First (mid-trace) and last (end-of-trace) splits both must
			// continue to the uninterrupted result.
			for _, ck := range []Checkpoint{cks[0], cks[len(cks)-1]} {
				ck := ck
				rOpt := opt
				rOpt.Resume = &ck
				got := m.Run(tr, rOpt)
				if got.ResumeErr != nil {
					t.Fatalf("%s %s split %d: resume failed: %v", trName, sc, ck.At, got.ResumeErr)
				}
				if got.ResumedAt != ck.At {
					t.Errorf("split %d: run skipped %d branches", ck.At, got.ResumedAt)
				}
				if g := stripResumeTiming(got); g != want {
					t.Errorf("%s %s split %d: resumed run diverges:\n  resumed: %+v\n  full:    %+v",
						trName, sc, ck.At, g, want)
				}
			}
		})
	}
}

// TestCheckpointRefusesNewerFormat: a blob stamped with a future format
// version must be refused with a message pointing at the version skew —
// never half-decoded — and the run must fall back to a cold start that
// matches an uncheckpointed run exactly.
func TestCheckpointRefusesNewerFormat(t *testing.T) {
	m, err := LookupModel("tage")
	if err != nil {
		t.Fatal(err)
	}
	tr := MustGenerateTrace("INT01", 6000)
	opt := Options{Scenario: ScenarioA}
	want := stripResumeTiming(m.Run(tr, opt))

	var blob []byte
	ckOpt := opt
	ckOpt.CheckpointEvery = 2000
	ckOpt.OnCheckpoint = func(b []byte, at uint64) {
		if blob == nil {
			blob = append([]byte(nil), b...)
		}
	}
	m.Run(tr, ckOpt)
	if len(blob) < 6 {
		t.Fatalf("no checkpoint captured")
	}
	// Bytes 4..5 hold the little-endian format version after the magic.
	future := append([]byte(nil), blob...)
	binary.LittleEndian.PutUint16(future[4:6], binary.LittleEndian.Uint16(blob[4:6])+1)

	rOpt := opt
	rOpt.Resume = &Checkpoint{Blob: future}
	got := m.Run(tr, rOpt)
	if got.ResumeErr == nil {
		t.Fatal("future-format blob was accepted")
	}
	if msg := got.ResumeErr.Error(); !strings.Contains(msg, "understands at most format") {
		t.Fatalf("refusal does not explain the version skew: %v", msg)
	}
	g := got
	g.ResumeErr = nil
	if stripResumeTiming(g) != want {
		t.Fatalf("cold fallback after refusal diverges from a cold run:\n  got:  %+v\n  want: %+v", stripResumeTiming(g), want)
	}
}
