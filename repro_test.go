package repro

import (
	"bytes"
	"testing"
)

func TestModelsInstantiate(t *testing.T) {
	for name, mk := range Models() {
		m := mk()
		if m.Name() == "" {
			t.Errorf("%s: empty name", name)
		}
		if m.StorageBits() <= 0 {
			t.Errorf("%s: no storage", name)
		}
	}
}

func TestModelBudgets(t *testing.T) {
	// The paper's 512Kbit-class configurations must be near (and the
	// composite ones within) the CBP-3 budget.
	for _, mk := range []func() *Model{ReferenceTAGE, TAGELSC512K, ISLTAGE, Gshare512K, GEHL520K} {
		m := mk()
		kb := m.StorageBits() / 1024
		if kb < 400 || kb > 560 {
			t.Errorf("%s: %d Kbit outside the 512Kbit class", m.Name(), kb)
		}
	}
}

func TestSessionLearns(t *testing.T) {
	s := ReferenceTAGE().NewSession()
	wrong := 0
	for i := 0; i < 500; i++ {
		taken := i%3 != 0
		if s.Predict(0x40) != taken && i > 250 {
			wrong++
		}
		s.Train(0x40, taken)
	}
	if wrong > 10 {
		t.Fatalf("session failed to learn a period-3 pattern: %d late mispredicts", wrong)
	}
}

func TestSessionTrainWithoutPredict(t *testing.T) {
	s := Gshare512K().NewSession()
	// Train without a preceding Predict must not panic and must learn.
	// gshare's index depends on the global history register, so training
	// must continue past the history length (18) for the index to settle.
	for i := 0; i < 25; i++ {
		s.Train(0x80, true)
	}
	if !s.Predict(0x80) {
		t.Fatal("did not learn an always-taken branch")
	}
}

func TestRunIsColdPerCall(t *testing.T) {
	m := ReferenceTAGE()
	tr := MustGenerateTrace("WS01", 30000)
	a := m.Run(tr, Options{Scenario: ScenarioA})
	b := m.Run(tr, Options{Scenario: ScenarioA})
	if a.Mispredicts != b.Mispredicts {
		t.Fatalf("Run must start cold: %d vs %d mispredicts", a.Mispredicts, b.Mispredicts)
	}
}

func TestTraceNamesComplete(t *testing.T) {
	names := TraceNames()
	if len(names) != 40 {
		t.Fatalf("got %d trace names", len(names))
	}
	hard := HardTraces()
	if len(hard) != 7 {
		t.Fatalf("got %d hard traces", len(hard))
	}
	for h := range hard {
		found := false
		for _, n := range names {
			if n == h {
				found = true
			}
		}
		if !found {
			t.Fatalf("hard trace %s not in TraceNames", h)
		}
	}
}

func TestTraceRoundTripThroughFacade(t *testing.T) {
	tr := MustGenerateTrace("CLIENT01", 5000)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Branches) != len(tr.Branches) || back.Name != tr.Name {
		t.Fatal("round trip mismatch")
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 15 {
		t.Fatalf("got %d experiments, want 15", len(ids))
	}
	if _, ok := RunExperiment("E99", ExperimentConfig{}); ok {
		t.Fatal("unknown experiment id must not resolve")
	}
}

// TestAccuracyOrderingSmall is the headline sanity check at reduced scale:
// TAGE-LSC <= ISL-TAGE <= TAGE <= GEHL <= gshare on the suite.
func TestAccuracyOrderingSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("suite simulation in -short mode")
	}
	const n = 60000
	run := func(mk func() *Model) float64 {
		suite := &Suite{}
		for _, tn := range TraceNames() {
			suite.Add(mk().Run(MustGenerateTrace(tn, n), Options{Scenario: ScenarioA}))
		}
		return suite.TotalMPPKI()
	}
	tagelsc := run(TAGELSC512K)
	isl := run(ISLTAGE)
	tage := run(ReferenceTAGE)
	gehl := run(GEHL520K)
	gsh := run(Gshare512K)
	if !(tagelsc < isl && isl < tage && tage < gehl && gehl < gsh) {
		t.Fatalf("ordering violated: TAGE-LSC=%.0f ISL=%.0f TAGE=%.0f GEHL=%.0f gshare=%.0f",
			tagelsc, isl, tage, gehl, gsh)
	}
}
