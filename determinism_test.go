package repro

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The cross-run determinism suite. PR 1's contract — per-job seeds
// derived from cell keys, traces generated from each spec's own seed —
// means two executions of the same matrix must produce byte-identical
// JSONL records once the legitimately varying fields (wall-clock
// telemetry; provenance, which tracks the writing process, not the
// measurement) are excluded. Nothing previously pinned that end to end
// over real predictors; this suite does, across the reference TAGE, the
// gshare baseline, and scaled @±d budget variants, at different
// parallelism and trace-caching settings so scheduling can never leak
// into results.

// normalizedJSONL runs the matrix into a JSONL sink and returns the
// emitted lines with timing and provenance fields zeroed, re-encoded —
// what "byte-identical modulo timing and provenance" compares.
func normalizedJSONL(t *testing.T, m *BenchMatrix, cfg BenchConfig) [][]byte {
	t.Helper()
	var buf bytes.Buffer
	sink, err := NewBenchSink("jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBench(m, cfg, sink); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadBenchRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, len(recs))
	for i, r := range recs {
		r.ElapsedSec = 0
		r.BranchesPerSec = 0
		r.Provenance = nil
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = line
	}
	return out
}

func assertIdenticalRuns(t *testing.T, m *BenchMatrix) {
	t.Helper()
	prov := CurrentProvenance()
	a := normalizedJSONL(t, m, BenchConfig{Parallelism: 4, Provenance: &prov})
	configs := []BenchConfig{
		{Parallelism: 1, NoTraceCache: true},
		// Pooling off: fresh predictor per cell must match Reset reuse.
		{Parallelism: 2, NoPredictorPool: true},
		// Intra-cell sharding on: each cell group's traces split across
		// goroutines must land byte-identically where the serial run put them.
		{Parallelism: 1, IntraCellWorkers: 4},
		{Parallelism: 2, IntraCellWorkers: 4, NoPredictorPool: true},
	}
	for _, cfg := range configs {
		b := normalizedJSONL(t, m, cfg)
		if len(a) != len(b) || len(a) == 0 {
			t.Fatalf("cfg %+v: runs emitted %d vs %d records", cfg, len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("cfg %+v: record %d differs between identically-seeded runs:\n%s\nvs\n%s", cfg, i, a[i], b[i])
			}
		}
	}
}

// TestDeterminismAcrossRunsRealModels: the reference TAGE and the gshare
// baseline, two scenarios, two traces — byte-identical records across
// runs regardless of parallelism, trace caching, or provenance stamping.
func TestDeterminismAcrossRunsRealModels(t *testing.T) {
	m, err := NewBenchMatrix([]string{"tage", "gshare"}, []string{"INT01", "CLIENT01"}, "A,C", []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	assertIdenticalRuns(t, m)
}

// TestDeterminismAcrossRunsScaledVariants: the same contract holds for
// the @±d budget-scaled variants the -delta axis expands to — each
// scaled cell key derives its own seed, so the whole Figure 9 grid is
// reproducible cell by cell.
func TestDeterminismAcrossRunsScaledVariants(t *testing.T) {
	m, err := NewBenchMatrix([]string{"tage"}, []string{"INT01"}, "A", []int{2000})
	if err != nil {
		t.Fatal(err)
	}
	m.DeltaLogs = []int{-1, 1}
	assertIdenticalRuns(t, m)
}
