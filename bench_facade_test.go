package repro

import (
	"bytes"
	"strings"
	"testing"
)

func TestBenchFacadeEndToEnd(t *testing.T) {
	m, err := NewBenchMatrix([]string{"gshare"}, []string{"INT0[12]"}, "A,B", []int{1500})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink, err := NewBenchSink("jsonl", &buf)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := RunBench(m, BenchConfig{Parallelism: 4}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 4 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	recs, err := ReadBenchRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// 4 cells + (INT category, hard, suite) per scenario group.
	if len(recs) != 10 {
		t.Fatalf("got %d records, want 10", len(recs))
	}
	// A self-diff of the run must be clean.
	rep := BenchDiff(recs, recs, BenchDiffOptions{})
	if rep.HasRegressions() || rep.Cells != 4 {
		t.Fatalf("self-diff = %+v", rep)
	}
}

func TestBenchModelsResolveAndReject(t *testing.T) {
	ms, err := BenchModels([]string{"tage", "gshare"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 2 || ms[0].Name != "tage" || ms[0].StorageBits <= 0 || ms[0].Run == nil {
		t.Fatalf("models = %+v", ms)
	}
	if _, err := BenchModels([]string{"tage", "bogus"}); err == nil {
		t.Fatal("unknown model must error")
	}
	if _, err := NewBenchMatrix([]string{"tage"}, nil, "A", nil); err == nil {
		t.Fatal("missing lengths must error")
	}
}

func TestScaledModelNameFormatting(t *testing.T) {
	// ScaledTAGE's deltaLog suffix is the Figure 9 label users see in
	// tables and stores; pin the format.
	for _, tc := range []struct {
		d    int
		want string
	}{{-4, "TAGE-ref-4"}, {0, "TAGE-ref+0"}, {3, "TAGE-ref+3"}} {
		if got := ScaledTAGE(tc.d).Name(); got != tc.want {
			t.Errorf("ScaledTAGE(%d).Name() = %q, want %q", tc.d, got, tc.want)
		}
	}
	if got := ScaledTAGELSC(-2).Name(); got != "TAGE-LSC-2" {
		t.Errorf("ScaledTAGELSC(-2).Name() = %q", got)
	}
	// deltaLog 0 keeps each model's declared budget.
	if a, b := ScaledTAGE(0).StorageBits(), ReferenceTAGE().StorageBits(); a != b {
		t.Errorf("ScaledTAGE(0) budget %d != reference %d", a, b)
	}
}

func TestBenchModelsScaleHook(t *testing.T) {
	ms, err := BenchModels([]string{"tage", "tage-lsc", "gshare"})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ms {
		_, scalable := ScalableModels()[m.Name]
		if (m.Scale != nil) != scalable {
			t.Errorf("%s: Scale hook presence %v, want %v", m.Name, m.Scale != nil, scalable)
		}
	}
	// The hook scales real budgets: +1 doubles (within rounding), -1 halves.
	tage := ms[0]
	up, down := tage.Scale(1), tage.Scale(-1)
	if up.StorageBits <= tage.StorageBits || down.StorageBits >= tage.StorageBits {
		t.Errorf("budgets not ordered: -1:%d 0:%d +1:%d",
			down.StorageBits, tage.StorageBits, up.StorageBits)
	}
	if up.Run == nil || down.Run == nil {
		t.Error("scaled models must be runnable")
	}
}

func TestModelNamesSortedAndComplete(t *testing.T) {
	names := ModelNames()
	if len(names) != len(Models()) {
		t.Fatalf("ModelNames covers %d of %d models", len(names), len(Models()))
	}
	if !strings.HasPrefix(names[0], "ftlpp") {
		t.Fatalf("names not sorted: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
