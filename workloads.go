package repro

import (
	"io"
	"sync"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceNames lists the 40 synthetic benchmark traces (5 categories x 8).
func TraceNames() []string {
	specs := workload.All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// HardTraces reports the seven deliberately hard traces of the suite
// (the Section 2.2 high-misprediction subset).
func HardTraces() map[string]bool {
	out := map[string]bool{}
	for k, v := range workload.HardNames {
		out[k] = v
	}
	return out
}

// GenerateTrace synthesises `branches` branches of the named benchmark
// deterministically. It panics on an unknown name (see TraceNames).
func GenerateTrace(name string, branches int) *Trace {
	tr, err := workload.GenerateByName(name, branches)
	if err != nil {
		panic(err)
	}
	return tr
}

// RunSuite simulates the model over each named synthetic trace of
// `branches` branches, sharding the names across `workers` goroutines
// (the bpsim -cell-par knob). Shard s owns names s, s+workers, ... and
// runs them on one pooled instance, generating its own traces and
// resetting the predictor between them — every trace still starts
// cold, so each Result is byte-identical to a serial GenerateTrace +
// Run loop for any worker count. Results come back in input order.
// workers outside [1, len(names)] is clamped.
func (m *Model) RunSuite(names []string, branches int, opt Options, workers int) []Result {
	results := make([]Result, len(names))
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	runShard := func(s int) {
		run := m.NewRunner()
		for i := s; i < len(names); i += workers {
			results[i] = run(GenerateTrace(names[i], branches), opt)
		}
	}
	if workers == 1 {
		runShard(0)
		return results
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			runShard(s)
		}(s)
	}
	wg.Wait()
	return results
}

// WriteTrace encodes a trace in the compact binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// SummarizeTrace computes summary statistics for a trace.
func SummarizeTrace(tr *Trace) trace.Stats { return trace.Summarize(tr) }

// Experiment identifiers (E1..E15) map to the paper's tables and figures;
// see DESIGN.md for the index.
type (
	// ExperimentReport is the paper-vs-measured outcome of one experiment.
	ExperimentReport = experiments.Report
	// ExperimentConfig scales experiment runs.
	ExperimentConfig = experiments.Config
)

// ExperimentIDs lists the available experiment identifiers in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment executes one experiment (see ExperimentIDs) and returns
// its report. ok is false for an unknown id.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentReport, bool) {
	e, found := experiments.Lookup(id)
	if !found {
		return ExperimentReport{}, false
	}
	return e.Run(cfg), true
}

// RenderReport writes a report as aligned text.
func RenderReport(w io.Writer, r ExperimentReport) { experiments.Render(w, r) }
