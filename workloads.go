package repro

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceNames lists the 40 synthetic benchmark traces (5 categories x 8).
func TraceNames() []string {
	specs := workload.All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// HardTraces reports the seven deliberately hard traces of the suite
// (the Section 2.2 high-misprediction subset).
func HardTraces() map[string]bool {
	out := map[string]bool{}
	for k, v := range workload.HardNames {
		out[k] = v
	}
	return out
}

// GenerateTrace materialises `branches` branches of a workload
// deterministically. The spec may be a benchmark name ("INT01"), a
// generator spec ("phased:period=4096#1" — see WorkloadKinds), or an
// external trace ("file:path.bpt"). Errors on an unknown or malformed
// spec or a non-positive branch count.
func GenerateTrace(spec string, branches int) (*Trace, error) {
	if branches <= 0 {
		return nil, fmt.Errorf("repro: branches must be positive, got %d", branches)
	}
	sp, err := workload.ResolveSpec(spec)
	if err != nil {
		return nil, err
	}
	return workload.Generate(sp, branches), nil
}

// MustGenerateTrace is GenerateTrace panicking on error — for examples
// and tests where the spec is a known-good literal.
func MustGenerateTrace(spec string, branches int) *Trace {
	tr, err := GenerateTrace(spec, branches)
	if err != nil {
		panic(err)
	}
	return tr
}

// RunSuite simulates the model over each listed workload (names or
// trace specs) at `branches` branches, sharding the list across
// `workers` goroutines (the bpsim -cell-par knob). Shard s owns
// entries s, s+workers, ... and runs them on one pooled instance,
// generating its own traces and resetting the predictor between them —
// every trace still starts cold, so each Result is byte-identical to a
// serial GenerateTrace + Run loop for any worker count. Results come
// back in input order. workers outside [1, len(names)] is clamped. All
// specs are resolved up front, so a typo fails before any simulation.
func (m *Model) RunSuite(names []string, branches int, opt Options, workers int) ([]Result, error) {
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		sp, err := workload.ResolveSpec(n)
		if err != nil {
			return nil, err
		}
		specs[i] = sp
	}
	results := make([]Result, len(names))
	if workers < 1 {
		workers = 1
	}
	if workers > len(names) {
		workers = len(names)
	}
	runShard := func(s int) {
		run := m.NewRunner()
		for i := s; i < len(specs); i += workers {
			results[i] = run(workload.Generate(specs[i], branches), opt)
		}
	}
	if workers == 1 {
		runShard(0)
		return results, nil
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			runShard(s)
		}(s)
	}
	wg.Wait()
	return results, nil
}

// WorkloadKinds lists the parameterised workload generator kinds the
// trace-spec grammar accepts (loopy, callret, datadep, phased,
// ctxflush, mix).
func WorkloadKinds() []string { return workload.Kinds() }

// WorkloadKindSummaries renders one line per workload kind — its fields
// with defaults and what it generates — for CLI listings.
func WorkloadKindSummaries() []string { return workload.KindSummaries() }

// SplitTraceList splits a comma-separated -traces flag value into
// patterns the spec-aware way: commas inside a generator spec's field
// list stay part of that spec.
func SplitTraceList(s string) []string { return workload.SplitPatterns(s) }

// SweepTraceSpecs expands one generator field across values for every
// base trace spec (the bpbench -trace-sweep axis), returning canonical
// spec strings and erroring on duplicates.
func SweepTraceSpecs(bases []string, key string, values []string) ([]string, error) {
	return workload.SweepSpecs(bases, key, values)
}

// TraceFieldSweepsAsRange reports whether -trace-sweep may expand the
// field from an inclusive lo:hi integer range.
func TraceFieldSweepsAsRange(key string) bool { return workload.FieldSweepsAsRange(key) }

// TraceConvertStats reports what an external-trace conversion consumed
// and kept.
type TraceConvertStats = trace.ConvertStats

// ConvertTrace parses an external text trace (see TraceConvertFormats)
// into a Trace ready for WriteTrace — the `tracegen convert` engine.
func ConvertTrace(r io.Reader, format, name string) (*Trace, TraceConvertStats, error) {
	return trace.Convert(r, format, name)
}

// TraceConvertFormats lists the external trace formats ConvertTrace
// accepts.
func TraceConvertFormats() []string { return trace.ConvertFormats() }

// WriteTrace encodes a trace in the compact binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// SummarizeTrace computes summary statistics for a trace.
func SummarizeTrace(tr *Trace) trace.Stats { return trace.Summarize(tr) }

// Experiment identifiers (E1..E15) map to the paper's tables and figures;
// see DESIGN.md for the index.
type (
	// ExperimentReport is the paper-vs-measured outcome of one experiment.
	ExperimentReport = experiments.Report
	// ExperimentConfig scales experiment runs.
	ExperimentConfig = experiments.Config
)

// ExperimentIDs lists the available experiment identifiers in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment executes one experiment (see ExperimentIDs) and returns
// its report. ok is false for an unknown id.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentReport, bool) {
	e, found := experiments.Lookup(id)
	if !found {
		return ExperimentReport{}, false
	}
	return e.Run(cfg), true
}

// RenderReport writes a report as aligned text.
func RenderReport(w io.Writer, r ExperimentReport) { experiments.Render(w, r) }
