package repro

import (
	"io"

	"repro/internal/experiments"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TraceNames lists the 40 synthetic benchmark traces (5 categories x 8).
func TraceNames() []string {
	specs := workload.All()
	names := make([]string, len(specs))
	for i, s := range specs {
		names[i] = s.Name
	}
	return names
}

// HardTraces reports the seven deliberately hard traces of the suite
// (the Section 2.2 high-misprediction subset).
func HardTraces() map[string]bool {
	out := map[string]bool{}
	for k, v := range workload.HardNames {
		out[k] = v
	}
	return out
}

// GenerateTrace synthesises `branches` branches of the named benchmark
// deterministically. It panics on an unknown name (see TraceNames).
func GenerateTrace(name string, branches int) *Trace {
	tr, err := workload.GenerateByName(name, branches)
	if err != nil {
		panic(err)
	}
	return tr
}

// WriteTrace encodes a trace in the compact binary format.
func WriteTrace(w io.Writer, tr *Trace) error { return trace.Write(w, tr) }

// ReadTrace decodes a trace written by WriteTrace.
func ReadTrace(r io.Reader) (*Trace, error) { return trace.Read(r) }

// SummarizeTrace computes summary statistics for a trace.
func SummarizeTrace(tr *Trace) trace.Stats { return trace.Summarize(tr) }

// Experiment identifiers (E1..E15) map to the paper's tables and figures;
// see DESIGN.md for the index.
type (
	// ExperimentReport is the paper-vs-measured outcome of one experiment.
	ExperimentReport = experiments.Report
	// ExperimentConfig scales experiment runs.
	ExperimentConfig = experiments.Config
)

// ExperimentIDs lists the available experiment identifiers in paper order.
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment executes one experiment (see ExperimentIDs) and returns
// its report. ok is false for an unknown id.
func RunExperiment(id string, cfg ExperimentConfig) (ExperimentReport, bool) {
	e, found := experiments.Lookup(id)
	if !found {
		return ExperimentReport{}, false
	}
	return e.Run(cfg), true
}

// RenderReport writes a report as aligned text.
func RenderReport(w io.Writer, r ExperimentReport) { experiments.Render(w, r) }
