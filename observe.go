package repro

import (
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"repro/internal/harness"
	"repro/internal/metrics"
)

// Observability: the telemetry registry (internal/metrics) and its HTTP
// surface, exposed through the facade. A command builds one registry,
// injects it via BenchConfig.Metrics, and serves it with TelemetryMux;
// the progress reporter reads the same registry, so the /metrics
// endpoint and the stderr progress line can never disagree. A nil
// registry everywhere means telemetry off at zero overhead.
type (
	// MetricsRegistry is the injectable telemetry registry. Nil = no-op.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a deterministic point-in-time registry copy.
	MetricsSnapshot = metrics.Snapshot
)

// NewMetricsRegistry returns an empty telemetry registry.
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// TelemetryMux serves reg in Prometheus text-exposition format on
// /metrics, plus the standard runtime profiling endpoints under
// /debug/pprof/ — everything a scraper or `go tool pprof` needs to
// watch a live sweep.
func TelemetryMux(reg *MetricsRegistry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", metrics.Handler(reg))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// StartBenchProgress starts the periodic one-line progress report
// (cells done/total, aggregate branches/sec, ETA) rendered from reg;
// interval <= 0 selects the default. The returned stop renders a final
// line and shuts the reporter down (idempotent).
func StartBenchProgress(w io.Writer, reg *MetricsRegistry, interval time.Duration) (stop func()) {
	return harness.StartProgress(w, reg, interval)
}
