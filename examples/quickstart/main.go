// Quickstart: build the paper's reference TAGE predictor, feed it a few
// branch behaviours interactively, then run it over a full synthetic
// benchmark trace.
package main

import (
	"fmt"

	"repro"
)

func main() {
	model := repro.ReferenceTAGE()
	fmt.Printf("predictor: %s (%d Kbit)\n", model.Name(), model.StorageBits()/1024)

	// Interactive use: a loop branch taken 9 times then not taken. After a
	// few executions TAGE predicts the whole loop, including the exit.
	s := model.NewSession()
	const loopPC = 0x400100
	train := func(rounds int) (mispredicts int) {
		for r := 0; r < rounds; r++ {
			for i := 0; i < 10; i++ {
				taken := i < 9
				if s.Predict(loopPC) != taken {
					mispredicts++
				}
				s.Train(loopPC, taken)
			}
		}
		return
	}
	fmt.Printf("loop branch, first 20 executions: %d mispredicts\n", train(20))
	fmt.Printf("loop branch, next 20 executions:  %d mispredicts\n", train(20))

	// Whole-trace simulation with retire-time update (scenario A).
	tr := repro.MustGenerateTrace("MM01", 300000)
	res := model.Run(tr, repro.Options{Scenario: repro.ScenarioA})
	fmt.Printf("trace %s: %d branches, MPKI=%.3f, misprediction rate=%.2f%%\n",
		res.Trace, res.Branches, res.MPKI, 100*res.Misprediction)
}
