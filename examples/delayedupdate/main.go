// Delayed update (Section 4 of the paper): compares the four update-timing
// scenarii — [I] oracle immediate, [A] re-read at retire, [B] fetch-read
// only, [C] re-read on mispredictions — across gshare, GEHL and TAGE, and
// prints the access statistics that motivate single-ported implementation:
// TAGE barely suffers from skipping the retire-time read, the others do.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const branchesPerTrace = 200000
	scenarios := []repro.Scenario{
		repro.ScenarioI, repro.ScenarioA, repro.ScenarioB, repro.ScenarioC,
	}
	models := []func() *repro.Model{
		repro.Gshare512K, repro.GEHL520K, repro.ReferenceTAGE,
	}

	fmt.Printf("%-14s", "predictor")
	for _, sc := range scenarios {
		fmt.Printf("  %8s", sc.String())
	}
	fmt.Printf("  %10s\n", "[B] vs [I]")

	for _, mk := range models {
		name := mk().Name()
		fmt.Printf("%-14s", name)
		var base, scenB float64
		for _, sc := range scenarios {
			suite := &repro.Suite{}
			for _, tn := range repro.TraceNames() {
				tr := repro.MustGenerateTrace(tn, branchesPerTrace)
				suite.Add(mk().Run(tr, repro.Options{Scenario: sc}))
			}
			total := suite.TotalMPPKI()
			if sc == repro.ScenarioI {
				base = total
			}
			if sc == repro.ScenarioB {
				scenB = total
			}
			fmt.Printf("  %8.0f", total)
		}
		fmt.Printf("  %+9.1f%%\n", 100*(scenB-base)/base)
	}

	// Access counts under scenario C with silent-update elimination: the
	// Section 4.2 argument for single-ported banked tables.
	suite := &repro.Suite{}
	for _, tn := range repro.TraceNames() {
		tr := repro.MustGenerateTrace(tn, branchesPerTrace)
		suite.Add(repro.ReferenceTAGE().Run(tr, repro.Options{Scenario: repro.ScenarioC}))
	}
	acc := suite.AccessTotals()
	fmt.Printf("\nTAGE under [C]: %.3f predictor accesses per retired branch\n",
		acc.AccessesPerBranch())
	fmt.Printf("silent updates eliminated: %.1f%% of update attempts\n",
		100*acc.SilentFraction())
}
