// Cost-effective implementation (Sections 4.3 and 7 of the paper): the
// TAGE-LSC predictor with 4-way bank-interleaved single-ported tables,
// with and without the retire-time read, plus the area/energy argument
// from the analytical SRAM model.
package main

import (
	"fmt"

	"repro"
	"repro/internal/cactimodel"
)

func main() {
	const branchesPerTrace = 150000

	run := func(mk func() *repro.Model, sc repro.Scenario) float64 {
		suite := &repro.Suite{}
		for _, tn := range repro.TraceNames() {
			tr := repro.MustGenerateTrace(tn, branchesPerTrace)
			suite.Add(mk().Run(tr, repro.Options{Scenario: sc}))
		}
		return suite.TotalMPPKI()
	}

	flat := run(repro.TAGELSC512K, repro.ScenarioA)
	inter := run(repro.TAGELSCInterleaved, repro.ScenarioA)
	interC := run(repro.TAGELSCInterleaved, repro.ScenarioC)
	interB := run(repro.TAGELSCInterleaved, repro.ScenarioB)

	fmt.Println("TAGE-LSC 512Kbit configuration            MPPKI-sum")
	fmt.Printf("3-ported tables, re-read at retire [A]     %8.0f\n", flat)
	fmt.Printf("4-way banked single-ported [A]             %8.0f  (%+.1f%%)\n", inter, 100*(inter-flat)/flat)
	fmt.Printf("banked + no retire read if correct [C]     %8.0f  (%+.1f%%)\n", interC, 100*(interC-flat)/flat)
	fmt.Printf("banked + never re-read [B]                 %8.0f  (%+.1f%%)  <- not recommended\n", interB, 100*(interB-flat)/flat)

	// The silicon argument (CACTI-style model, Section 4.3 / 7.1).
	c := cactimodel.Compare(512 * 1024)
	fmt.Printf("\nSRAM model at 512Kbit capacity:\n")
	fmt.Printf("  3-port vs 1-port area:   %.2fx   energy/access: %.2fx\n",
		c.AreaRatio3v1, c.EnergyRatio3v1)
	fmt.Printf("  3-port vs 4x1-port bank: %.2fx   energy/access: %.2fx\n",
		c.AreaRatioMonoVsBanked, c.EnergyRatioMonoVsBanked)
	fmt.Println("\nbanked single-ported tables keep the accuracy and cut the predictor")
	fmt.Println("to ~30% of the silicon and ~50% of the access energy (Section 7).")
}
