// Side predictors (Sections 5 and 6 of the paper): stacks the IUM, the
// loop predictor, the global Statistical Corrector and the Local
// Statistical Corrector on top of TAGE one at a time, showing each
// component's marginal contribution — and that the LSC captures most of
// what the loop predictor and global SC capture.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const branchesPerTrace = 150000
	stacks := []func() *repro.Model{
		repro.ReferenceTAGE,
		repro.TAGEWithIUM,
		repro.ISLTAGE,     // + loop predictor + global SC
		repro.TAGELSC512K, // TAGE + IUM + LSC (budget-matched)
	}

	fmt.Println("predictor stack            MPPKI-sum    vs TAGE")
	var base float64
	for i, mk := range stacks {
		suite := &repro.Suite{}
		for _, tn := range repro.TraceNames() {
			tr := repro.MustGenerateTrace(tn, branchesPerTrace)
			suite.Add(mk().Run(tr, repro.Options{Scenario: repro.ScenarioA}))
		}
		total := suite.TotalMPPKI()
		if i == 0 {
			base = total
		}
		fmt.Printf("%-26s %9.0f    %+.1f%%\n", mk().Name(), total, 100*(total-base)/base)
	}

	// Where does each side predictor earn its keep? Show the hard traces
	// (Section 2.2) separately.
	fmt.Println("\nper-subset comparison (ISL-TAGE vs TAGE-LSC):")
	for _, mk := range []func() *repro.Model{repro.ISLTAGE, repro.TAGELSC512K} {
		suite := &repro.Suite{}
		for _, tn := range repro.TraceNames() {
			tr := repro.MustGenerateTrace(tn, branchesPerTrace)
			suite.Add(mk().Run(tr, repro.Options{Scenario: repro.ScenarioA}))
		}
		hard := suite.Subset(repro.HardTraces())
		easyNames := map[string]bool{}
		for _, tn := range repro.TraceNames() {
			if !repro.HardTraces()[tn] {
				easyNames[tn] = true
			}
		}
		easy := suite.Subset(easyNames)
		fmt.Printf("%-12s hard-7 MPPKI=%7.0f   easy-33 MPPKI=%7.0f\n",
			mk().Name(), hard.TotalMPPKI(), easy.TotalMPPKI())
	}
}
