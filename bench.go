package repro

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/harness"
)

// The batch-experiment harness (internal/harness) exposed through the
// facade: declare a matrix of models × traces × scenarios × trace
// lengths, execute it on a sharded worker pool, stream records to a
// sink, and diff runs against a JSONL baseline. cmd/bpbench is a thin
// wrapper over these entry points.
type (
	// BenchMatrix declares an experiment grid.
	BenchMatrix = harness.Matrix
	// BenchModel is a model as the harness runs it.
	BenchModel = harness.Model
	// BenchConfig controls matrix execution (parallelism, caching).
	BenchConfig = harness.Config
	// BenchRecord is the streaming result unit (one cell or aggregate).
	BenchRecord = harness.Record
	// BenchSummary is the outcome of a matrix run.
	BenchSummary = harness.Summary
	// BenchSink consumes records as they stream out of a run.
	BenchSink = harness.Sink
	// BenchDiffOptions tunes baseline regression detection.
	BenchDiffOptions = harness.DiffOptions
	// BenchDiffReport summarises a baseline comparison.
	BenchDiffReport = harness.DiffReport
	// BenchPerfRow is one line of the simulator-throughput summary.
	BenchPerfRow = harness.PerfRow
	// BenchJob is one expanded cell of a matrix.
	BenchJob = harness.Job
	// BenchResumePlan partitions an expanded grid against a prior store.
	BenchResumePlan = harness.ResumePlan
)

// ParseScenario maps a scenario flag value ("I", "A", "B", "C", case
// insensitive) to its Scenario; it is the single flag→Scenario mapping
// shared by bpsim and bpbench.
func ParseScenario(s string) (Scenario, error) {
	scs, err := harness.ParseScenarios(s)
	if err != nil {
		return 0, err
	}
	if len(scs) != 1 {
		return 0, fmt.Errorf("repro: want exactly one scenario, got %q", s)
	}
	return scs[0], nil
}

// ParseScenarios maps a comma-separated scenario list ("A,C") to
// scenarii, rejecting duplicates and unknown letters.
func ParseScenarios(csv string) ([]Scenario, error) {
	return harness.ParseScenarios(csv)
}

// LookupModel resolves a model identifier (see Models) to a fresh Model,
// with an error naming the valid identifiers on a miss.
func LookupModel(name string) (*Model, error) {
	mk, ok := Models()[name]
	if !ok {
		return nil, fmt.Errorf("repro: unknown model %q (have %s)", name, strings.Join(ModelNames(), ", "))
	}
	return mk(), nil
}

// ModelNames lists the model identifiers in sorted order.
func ModelNames() []string {
	var names []string
	for name := range Models() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScalableModels maps the model identifiers that support storage-budget
// scaling (the -delta axis) to their scaled constructors; deltaLog 0 is
// each model's declared budget.
func ScalableModels() map[string]func(deltaLog int) *Model {
	return map[string]func(int) *Model{
		"tage":     ScaledTAGE,
		"tage-lsc": ScaledTAGELSC,
	}
}

// ScalableModelNames lists the identifiers usable with a deltaLog axis,
// sorted.
func ScalableModelNames() []string {
	var names []string
	for name := range ScalableModels() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BenchModels resolves model identifiers to harness models. Each cell
// executed for the model constructs a fresh predictor (cold state).
// Models with a scaled constructor (see ScalableModels) carry the Scale
// hook the harness's deltaLog axis expands through.
func BenchModels(names []string) ([]BenchModel, error) {
	out := make([]BenchModel, 0, len(names))
	for _, name := range names {
		m, err := LookupModel(name)
		if err != nil {
			return nil, err
		}
		bm := BenchModel{
			Name:        name,
			StorageBits: m.StorageBits(),
			Run:         m.Run,
		}
		if mkScaled, ok := ScalableModels()[name]; ok {
			bm.Scale = func(deltaLog int) BenchModel {
				sm := mkScaled(deltaLog)
				return BenchModel{StorageBits: sm.StorageBits(), Run: sm.Run}
			}
		}
		out = append(out, bm)
	}
	return out, nil
}

// NewBenchMatrix assembles a matrix from CLI-shaped inputs: model
// identifiers, trace-name globs (empty = all 40), a comma-separated
// scenario list, and branches-per-trace lengths.
func NewBenchMatrix(models, traceGlobs []string, scenarios string, lengths []int) (*BenchMatrix, error) {
	ms, err := BenchModels(models)
	if err != nil {
		return nil, err
	}
	specs, err := harness.SelectTraces(traceGlobs)
	if err != nil {
		return nil, err
	}
	scs, err := harness.ParseScenarios(scenarios)
	if err != nil {
		return nil, err
	}
	if len(lengths) == 0 {
		return nil, fmt.Errorf("repro: bench matrix needs at least one trace length")
	}
	return &BenchMatrix{Models: ms, Traces: specs, Scenarios: scs, Lengths: lengths}, nil
}

// NewBenchSink constructs a sink by format name: "table", "jsonl", "csv".
func NewBenchSink(format string, w io.Writer) (BenchSink, error) {
	return harness.NewSink(format, w)
}

// RunBench expands the matrix and executes it on the worker pool,
// streaming records to sink in deterministic order.
func RunBench(m *BenchMatrix, cfg BenchConfig, sink BenchSink) (*BenchSummary, error) {
	return harness.Run(m, cfg, sink)
}

// ExpandBench materialises the matrix into its job list (the resume path
// plans against this expansion before running).
func ExpandBench(m *BenchMatrix) ([]BenchJob, error) {
	return m.Expand()
}

// PlanBenchResume partitions an expanded grid against the records of a
// prior store: cells with a successful prior record are reused, the rest
// (missing or failed) are queued to run.
func PlanBenchResume(jobs []BenchJob, prior []BenchRecord) *BenchResumePlan {
	return harness.PlanResume(jobs, prior)
}

// RunBenchResume executes a resume plan, streaming only the records the
// store is missing (new cells in expansion order, then aggregates over
// the merged run) — the append half of the resumable result store.
func RunBenchResume(plan *BenchResumePlan, cfg BenchConfig, sink BenchSink) (*BenchSummary, error) {
	return harness.RunResume(plan, cfg, sink)
}

// ReadBenchRecords parses a JSONL record stream (a saved bench run).
func ReadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	return harness.ReadRecords(r)
}

// ReadBenchRecordsFile reads a saved JSONL run (a baseline or an
// append-only result store) from disk.
func ReadBenchRecordsFile(path string) ([]BenchRecord, error) {
	return harness.ReadRecordsFile(path)
}

// ReadBenchStoreFile reads a resume store, tolerating a crash tail (a
// truncated final line from an interrupted run): it returns the parsed
// records and the byte length of the valid prefix the caller should
// truncate to before appending.
func ReadBenchStoreFile(path string) ([]BenchRecord, int64, error) {
	return harness.ReadStoreFile(path)
}

// BenchDiff compares a fresh run against a baseline, cell by cell on
// MPKI, flagging movements beyond the tolerance.
func BenchDiff(old, new []BenchRecord, opt BenchDiffOptions) *BenchDiffReport {
	return harness.Diff(old, new, opt)
}

// BenchPerfRows extracts per-(model, scenario, length) simulator
// throughput telemetry (branches/sec) from a record stream.
func BenchPerfRows(records []BenchRecord) []BenchPerfRow {
	return harness.PerfRows(records)
}

// RenderBenchPerf writes the human-readable throughput table.
func RenderBenchPerf(w io.Writer, rows []BenchPerfRow) {
	harness.RenderPerf(w, rows)
}

// BenchDiffFiles diffs two saved JSONL runs by path.
func BenchDiffFiles(oldPath, newPath string, opt BenchDiffOptions) (*BenchDiffReport, error) {
	old, err := harness.ReadRecordsFile(oldPath)
	if err != nil {
		return nil, err
	}
	new, err := harness.ReadRecordsFile(newPath)
	if err != nil {
		return nil, err
	}
	return harness.Diff(old, new, opt), nil
}
