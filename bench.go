package repro

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/harness"
)

// The batch-experiment harness (internal/harness) exposed through the
// facade: declare a matrix of models × traces × scenarios × trace
// lengths, execute it on a sharded worker pool, stream records to a
// sink, and diff runs against a JSONL baseline. cmd/bpbench is a thin
// wrapper over these entry points.
type (
	// BenchMatrix declares an experiment grid.
	BenchMatrix = harness.Matrix
	// BenchModel is a model as the harness runs it.
	BenchModel = harness.Model
	// BenchConfig controls matrix execution (parallelism, caching).
	BenchConfig = harness.Config
	// BenchRecord is the streaming result unit (one cell or aggregate).
	BenchRecord = harness.Record
	// BenchSummary is the outcome of a matrix run.
	BenchSummary = harness.Summary
	// BenchSink consumes records as they stream out of a run.
	BenchSink = harness.Sink
	// BenchDiffOptions tunes baseline regression detection.
	BenchDiffOptions = harness.DiffOptions
	// BenchDiffReport summarises a baseline comparison.
	BenchDiffReport = harness.DiffReport
	// BenchPerfRow is one line of the simulator-throughput summary.
	BenchPerfRow = harness.PerfRow
	// BenchJob is one expanded cell of a matrix.
	BenchJob = harness.Job
	// BenchResumePlan partitions an expanded grid against a prior store.
	BenchResumePlan = harness.ResumePlan
	// BenchProvenance records which code produced a store record (git
	// SHA, dirty flag, toolchain, schema version).
	BenchProvenance = harness.Provenance
	// BenchCompactStats reports what a store compaction kept and dropped.
	BenchCompactStats = harness.CompactStats
)

// ParseScenario maps a scenario flag value ("I", "A", "B", "C", case
// insensitive) to its Scenario; it is the single flag→Scenario mapping
// shared by bpsim and bpbench.
func ParseScenario(s string) (Scenario, error) {
	scs, err := harness.ParseScenarios(s)
	if err != nil {
		return 0, err
	}
	if len(scs) != 1 {
		return 0, fmt.Errorf("repro: want exactly one scenario, got %q", s)
	}
	return scs[0], nil
}

// ParseScenarios maps a comma-separated scenario list ("A,C") to
// scenarii, rejecting duplicates and unknown letters.
func ParseScenarios(csv string) ([]Scenario, error) {
	return harness.ParseScenarios(csv)
}

// LookupModel resolves a model identifier (see Models) to a fresh Model,
// with an error naming the valid identifiers on a miss.
func LookupModel(name string) (*Model, error) {
	mk, ok := Models()[name]
	if !ok {
		return nil, fmt.Errorf("repro: unknown model %q (have %s)", name, strings.Join(ModelNames(), ", "))
	}
	return mk(), nil
}

// ModelNames lists the model identifiers in sorted order.
func ModelNames() []string {
	var names []string
	for name := range Models() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScalableModels maps the model identifiers that support storage-budget
// scaling (the -delta axis) to their scaled constructors; deltaLog 0 is
// each model's declared budget.
func ScalableModels() map[string]func(deltaLog int) *Model {
	return map[string]func(int) *Model{
		"tage":     ScaledTAGE,
		"tage-lsc": ScaledTAGELSC,
	}
}

// ScalableModelNames lists the identifiers usable with a deltaLog axis,
// sorted.
func ScalableModelNames() []string {
	var names []string
	for name := range ScalableModels() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BenchModels resolves model identifiers to harness models. Each cell
// executed for the model constructs a fresh predictor (cold state).
// Models with a scaled constructor (see ScalableModels) carry the Scale
// hook the harness's deltaLog axis expands through.
func BenchModels(names []string) ([]BenchModel, error) {
	out := make([]BenchModel, 0, len(names))
	for _, name := range names {
		m, err := LookupModel(name)
		if err != nil {
			return nil, err
		}
		bm := BenchModel{
			Name:        name,
			StorageBits: m.StorageBits(),
			Run:         m.Run,
		}
		if mkScaled, ok := ScalableModels()[name]; ok {
			bm.Scale = func(deltaLog int) BenchModel {
				sm := mkScaled(deltaLog)
				return BenchModel{StorageBits: sm.StorageBits(), Run: sm.Run}
			}
		}
		out = append(out, bm)
	}
	return out, nil
}

// NewBenchMatrix assembles a matrix from CLI-shaped inputs: model
// identifiers, trace-name globs (empty = all 40), a comma-separated
// scenario list, and branches-per-trace lengths.
func NewBenchMatrix(models, traceGlobs []string, scenarios string, lengths []int) (*BenchMatrix, error) {
	ms, err := BenchModels(models)
	if err != nil {
		return nil, err
	}
	specs, err := harness.SelectTraces(traceGlobs)
	if err != nil {
		return nil, err
	}
	scs, err := harness.ParseScenarios(scenarios)
	if err != nil {
		return nil, err
	}
	if len(lengths) == 0 {
		return nil, fmt.Errorf("repro: bench matrix needs at least one trace length")
	}
	return &BenchMatrix{Models: ms, Traces: specs, Scenarios: scs, Lengths: lengths}, nil
}

// NewBenchSink constructs a sink by format name: "table", "jsonl", "csv".
func NewBenchSink(format string, w io.Writer) (BenchSink, error) {
	return harness.NewSink(format, w)
}

// RunBench expands the matrix and executes it on the worker pool,
// streaming records to sink in deterministic order.
func RunBench(m *BenchMatrix, cfg BenchConfig, sink BenchSink) (*BenchSummary, error) {
	return harness.Run(m, cfg, sink)
}

// ExpandBench materialises the matrix into its job list (the resume path
// plans against this expansion before running).
func ExpandBench(m *BenchMatrix) ([]BenchJob, error) {
	return m.Expand()
}

// PlanBenchResume partitions an expanded grid against the records of a
// prior store: cells with a successful prior record are reused, the rest
// (missing or failed) are queued to run. head is the provenance new
// records would be stamped with (CurrentProvenance for a persisted
// store; the zero value disables the drift check): reused cells recorded
// under a different git SHA are flagged in the plan's ProvenanceDrift.
func PlanBenchResume(jobs []BenchJob, prior []BenchRecord, head BenchProvenance) *BenchResumePlan {
	return harness.PlanResume(jobs, prior, head)
}

// RunBenchResume executes a resume plan, streaming only the records the
// store is missing (new cells in expansion order, then aggregates over
// the merged run) — the append half of the resumable result store.
func RunBenchResume(plan *BenchResumePlan, cfg BenchConfig, sink BenchSink) (*BenchSummary, error) {
	return harness.RunResume(plan, cfg, sink)
}

// RunBenchResumeStore runs the whole store-backed resume sequence
// against the JSONL store at path: read (missing file = fresh store,
// crash tail dropped and truncated), plan with cfg.Provenance as the
// drift baseline, refuse on pipeline-config conflicts, execute the
// missing cells and append their records. onPlan, when non-nil, sees
// the plan before anything runs — surface ProvenanceDrift warnings
// there, or veto with an error. Both `bpbench -resume` and the
// experiments' ResultStore path are thin wrappers over this.
func RunBenchResumeStore(path string, jobs []BenchJob, cfg BenchConfig, onPlan func(*BenchResumePlan) error) (*BenchSummary, error) {
	return harness.ResumeStoreFile(path, jobs, cfg, onPlan)
}

// ReadBenchRecords parses a JSONL record stream (a saved bench run).
func ReadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	return harness.ReadRecords(r)
}

// ReadBenchRecordsFile reads a saved JSONL run (a baseline or an
// append-only result store) from disk.
func ReadBenchRecordsFile(path string) ([]BenchRecord, error) {
	return harness.ReadRecordsFile(path)
}

// ReadBenchStoreFile reads a resume store, tolerating a crash tail (a
// truncated final line from an interrupted run): it returns the parsed
// records and the byte length of the valid prefix the caller should
// truncate to before appending.
func ReadBenchStoreFile(path string) ([]BenchRecord, int64, error) {
	return harness.ReadStoreFile(path)
}

// CompactStore rewrites a store's records down to their canonical form:
// one record per cell key in expansion order (newest success wins; a
// never-succeeded key keeps its newest failure so resumes retry it),
// stale aggregate sets replaced by a single set recomputed over the
// surviving cells. Canonical records are preserved verbatim, so
// resuming, diffing or perf-rendering the compacted store behaves
// exactly like the original. cmd/bpbench's `compact` subcommand is a
// thin wrapper over this.
func CompactStore(recs []BenchRecord) ([]BenchRecord, BenchCompactStats) {
	return harness.Compact(recs)
}

// StoreProvenance lists the distinct provenance blocks present in a
// store, in first-appearance order; records written before provenance
// stamping contribute a single zero block. One element means the whole
// store came from one revision.
func StoreProvenance(recs []BenchRecord) []BenchProvenance {
	return harness.StoreProvenance(recs)
}

// CurrentProvenance is the provenance block a run started now would
// stamp onto its records: HEAD's git SHA and dirty state (when a
// repository is reachable), the Go toolchain, and the store schema
// version.
func CurrentProvenance() BenchProvenance {
	return harness.CurrentProvenance()
}

// BenchDiff compares a fresh run against a baseline, cell by cell on
// MPKI, flagging movements beyond the tolerance.
func BenchDiff(old, new []BenchRecord, opt BenchDiffOptions) *BenchDiffReport {
	return harness.Diff(old, new, opt)
}

// BenchPerfRows extracts per-(model, scenario, length) simulator
// throughput telemetry (branches/sec) from a record stream.
func BenchPerfRows(records []BenchRecord) []BenchPerfRow {
	return harness.PerfRows(records)
}

// RenderBenchPerf writes the human-readable throughput table.
func RenderBenchPerf(w io.Writer, rows []BenchPerfRow) {
	harness.RenderPerf(w, rows)
}

// BenchDiffFiles diffs two saved JSONL runs by path.
func BenchDiffFiles(oldPath, newPath string, opt BenchDiffOptions) (*BenchDiffReport, error) {
	old, err := harness.ReadRecordsFile(oldPath)
	if err != nil {
		return nil, err
	}
	new, err := harness.ReadRecordsFile(newPath)
	if err != nil {
		return nil, err
	}
	return harness.Diff(old, new, opt), nil
}
