package repro

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/harness"
)

// The batch-experiment harness (internal/harness) exposed through the
// facade: declare a matrix of models × traces × scenarios × trace
// lengths, execute it on a sharded worker pool, stream records to a
// sink, and diff runs against a JSONL baseline. cmd/bpbench is a thin
// wrapper over these entry points.
type (
	// BenchMatrix declares an experiment grid.
	BenchMatrix = harness.Matrix
	// BenchModel is a model as the harness runs it.
	BenchModel = harness.Model
	// BenchConfig controls matrix execution (parallelism, caching).
	BenchConfig = harness.Config
	// BenchRecord is the streaming result unit (one cell or aggregate).
	BenchRecord = harness.Record
	// BenchSummary is the outcome of a matrix run.
	BenchSummary = harness.Summary
	// BenchSink consumes records as they stream out of a run.
	BenchSink = harness.Sink
	// BenchDiffOptions tunes baseline regression detection.
	BenchDiffOptions = harness.DiffOptions
	// BenchDiffReport summarises a baseline comparison.
	BenchDiffReport = harness.DiffReport
	// BenchPerfRow is one line of the simulator-throughput summary.
	BenchPerfRow = harness.PerfRow
	// BenchJob is one expanded cell of a matrix.
	BenchJob = harness.Job
	// BenchResumePlan partitions an expanded grid against a prior store.
	BenchResumePlan = harness.ResumePlan
	// BenchProvenance records which code produced a store record (git
	// SHA, dirty flag, toolchain, schema version).
	BenchProvenance = harness.Provenance
	// BenchCompactStats reports what a store compaction kept and dropped.
	BenchCompactStats = harness.CompactStats
	// BenchCompactOpts tunes compaction (drift pruning against a head
	// provenance).
	BenchCompactOpts = harness.CompactOpts
)

// BenchWarmCacheDir is the conventional checkpoint blob directory for
// a result store: the store path plus ".ckpt" (what BenchConfig's
// WarmCache field conventionally points at).
func BenchWarmCacheDir(storePath string) string { return harness.WarmCacheDir(storePath) }

// BenchWarmCacheStats reads the warm-cache hit/miss counters off a
// registry a run was executed with (both zero before any warm-cache
// run, or on a nil registry).
func BenchWarmCacheStats(reg *MetricsRegistry) (hits, misses uint64) {
	if reg == nil {
		return 0, 0
	}
	s := reg.Snapshot()
	if smp, ok := s.Sample(harness.MetricWarmCacheHits); ok {
		hits = uint64(smp.Value)
	}
	if smp, ok := s.Sample(harness.MetricWarmCacheMisses); ok {
		misses = uint64(smp.Value)
	}
	return hits, misses
}

// ParseScenario maps a scenario flag value ("I", "A", "B", "C", case
// insensitive) to its Scenario; it is the single flag→Scenario mapping
// shared by bpsim and bpbench.
func ParseScenario(s string) (Scenario, error) {
	scs, err := harness.ParseScenarios(s)
	if err != nil {
		return 0, err
	}
	if len(scs) != 1 {
		return 0, fmt.Errorf("repro: want exactly one scenario, got %q", s)
	}
	return scs[0], nil
}

// ParseScenarios maps a comma-separated scenario list ("A,C") to
// scenarii, rejecting duplicates and unknown letters.
func ParseScenarios(csv string) ([]Scenario, error) {
	return harness.ParseScenarios(csv)
}

// LookupModel resolves a model identifier — a named model or any model
// spec (see ParseSpec) — to a fresh Model, with an error naming the valid
// identifiers and spec kinds on a miss. It is sugar over the ModelSpec
// lifecycle: ParseSpec then Build.
func LookupModel(name string) (*Model, error) {
	spec, err := ParseSpec(name)
	if err != nil {
		return nil, err
	}
	return spec.Build()
}

// ModelNames lists the model identifiers in sorted order.
func ModelNames() []string {
	var names []string
	for name := range Models() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ScalableModels maps the model identifiers that support storage-budget
// scaling (the -delta axis) to their scaled constructors; deltaLog 0 is
// each model's declared budget.
func ScalableModels() map[string]func(deltaLog int) *Model {
	return map[string]func(int) *Model{
		"tage":     ScaledTAGE,
		"tage-lsc": ScaledTAGELSC,
	}
}

// ScalableModelNames lists the identifiers usable with a deltaLog axis,
// sorted.
func ScalableModelNames() []string {
	var names []string
	for name := range ScalableModels() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// BenchModels resolves model identifiers — named models or arbitrary
// specs — to harness models. Each cell executed for the model constructs
// a fresh predictor (cold state). The harness name (and therefore every
// cell key and store record) is the canonical spec string, which for the
// named models is exactly the identifier, so pre-spec baselines keep
// their keys; the canonical spec also rides along in BenchModel.Spec so
// records say which configuration produced them. Scalable specs (see
// ModelSpec.CanScale) carry the Scale hook the deltaLog axis expands
// through, implemented as spec rewriting: the scaled variant is
// spec.WithDelta(d) rebuilt.
func BenchModels(names []string) ([]BenchModel, error) {
	out := make([]BenchModel, 0, len(names))
	seen := make(map[string]string, len(names))
	for _, name := range names {
		spec, err := ParseSpec(name)
		if err != nil {
			return nil, err
		}
		canon := spec.Canonical()
		if prev, dup := seen[canon]; dup {
			return nil, fmt.Errorf("repro: model %q duplicates %q (both canonicalise to %q); cell keys would collide", name, prev, canon)
		}
		seen[canon] = name
		m, err := spec.Build()
		if err != nil {
			return nil, err
		}
		bm := BenchModel{
			Name:        canon,
			Spec:        canon,
			StorageBits: m.StorageBits(),
			Run:         m.Run,
			NewRunner:   m.NewRunner,
		}
		if spec.CanScale() {
			base := spec
			bm.Scale = func(deltaLog int) BenchModel {
				scaled, err := base.WithDelta(deltaLog)
				var sm *Model
				if err == nil {
					sm, err = scaled.Build()
				}
				if err != nil {
					// Surfaced per-cell through the harness's panic
					// isolation as a failed record, never a dead sweep
					// (the harness backfills the scaled spec string).
					return BenchModel{Run: func(tr *Trace, opt Options) Result { panic(err) }}
				}
				return BenchModel{Spec: scaled.Canonical(), StorageBits: sm.StorageBits(), Run: sm.Run, NewRunner: sm.NewRunner}
			}
		}
		out = append(out, bm)
	}
	return out, nil
}

// SplitSpecList splits a comma-separated model list the spec-aware way:
// a comma starts a new spec only when what follows looks like one (a
// named model, optionally @delta, or a "kind:" prefix); otherwise it
// continues the previous spec's field list — so one flag value can
// carry multi-field specs: "tage:tables=9,hist=6:500,gshare:log=14" is
// two specs, not three. Empty segments are dropped.
func SplitSpecList(s string) []string {
	var out []string
	for _, seg := range strings.Split(s, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if len(out) > 0 && !startsSpec(seg) {
			out[len(out)-1] += "," + seg
			continue
		}
		out = append(out, seg)
	}
	return out
}

// startsSpec reports whether a comma-separated segment begins a new
// model spec rather than continuing the previous one's fields (which
// are always key=value pairs).
func startsSpec(seg string) bool {
	if kind, _, ok := strings.Cut(seg, ":"); ok {
		_, known := specKindDefs[strings.TrimSpace(kind)]
		return known
	}
	name := seg
	if at := strings.LastIndexByte(name, '@'); at >= 0 {
		name = name[:at]
	}
	_, named := Models()[strings.TrimSpace(name)]
	return named
}

// SweepSpecs expands one spec field across values for every base spec —
// the `bpbench -sweep` axis: each base is rewritten per value via
// ModelSpec.WithField and returned in canonical form, erroring on
// duplicate resulting configurations (which would collide on cell keys).
func SweepSpecs(bases []string, key string, values []string) ([]string, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("repro: sweep of %q has no values", key)
	}
	var out []string
	seen := make(map[string]bool)
	for _, b := range bases {
		spec, err := ParseSpec(b)
		if err != nil {
			return nil, err
		}
		for _, v := range values {
			sw, err := spec.WithField(key, v)
			if err != nil {
				return nil, err
			}
			c := sw.Canonical()
			if seen[c] {
				return nil, fmt.Errorf("repro: sweep %s over %q produces duplicate spec %q", key, b, c)
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// NewBenchMatrix assembles a matrix from CLI-shaped inputs: model
// identifiers, trace-name globs (empty = all 40), a comma-separated
// scenario list, and branches-per-trace lengths.
func NewBenchMatrix(models, traceGlobs []string, scenarios string, lengths []int) (*BenchMatrix, error) {
	ms, err := BenchModels(models)
	if err != nil {
		return nil, err
	}
	specs, err := harness.SelectTraces(traceGlobs)
	if err != nil {
		return nil, err
	}
	scs, err := harness.ParseScenarios(scenarios)
	if err != nil {
		return nil, err
	}
	if len(lengths) == 0 {
		return nil, fmt.Errorf("repro: bench matrix needs at least one trace length")
	}
	return &BenchMatrix{Models: ms, Traces: specs, Scenarios: scs, Lengths: lengths}, nil
}

// NewBenchSink constructs a sink by format name: "table", "jsonl", "csv".
func NewBenchSink(format string, w io.Writer) (BenchSink, error) {
	return harness.NewSink(format, w)
}

// RunBench expands the matrix and executes it on the worker pool,
// streaming records to sink in deterministic order.
func RunBench(m *BenchMatrix, cfg BenchConfig, sink BenchSink) (*BenchSummary, error) {
	return harness.Run(m, cfg, sink)
}

// ExpandBench materialises the matrix into its job list (the resume path
// plans against this expansion before running).
func ExpandBench(m *BenchMatrix) ([]BenchJob, error) {
	return m.Expand()
}

// PlanBenchResume partitions an expanded grid against the records of a
// prior store: cells with a successful prior record are reused, the rest
// (missing or failed) are queued to run. head is the provenance new
// records would be stamped with (CurrentProvenance for a persisted
// store; the zero value disables the drift check): reused cells recorded
// under a different git SHA are flagged in the plan's ProvenanceDrift.
func PlanBenchResume(jobs []BenchJob, prior []BenchRecord, head BenchProvenance) *BenchResumePlan {
	return harness.PlanResume(jobs, prior, head)
}

// RunBenchResume executes a resume plan, streaming only the records the
// store is missing (new cells in expansion order, then aggregates over
// the merged run) — the append half of the resumable result store.
func RunBenchResume(plan *BenchResumePlan, cfg BenchConfig, sink BenchSink) (*BenchSummary, error) {
	return harness.RunResume(plan, cfg, sink)
}

// RunBenchResumeStore runs the whole store-backed resume sequence
// against the JSONL store at path: read (missing file = fresh store,
// crash tail dropped and truncated), plan with cfg.Provenance as the
// drift baseline, refuse on pipeline-config conflicts, execute the
// missing cells and append their records. onPlan, when non-nil, sees
// the plan before anything runs — surface ProvenanceDrift warnings
// there, or veto with an error. Both `bpbench -resume` and the
// experiments' ResultStore path are thin wrappers over this.
func RunBenchResumeStore(path string, jobs []BenchJob, cfg BenchConfig, onPlan func(*BenchResumePlan) error) (*BenchSummary, error) {
	return harness.ResumeStoreFile(path, jobs, cfg, onPlan)
}

// ReadBenchRecords parses a JSONL record stream (a saved bench run).
func ReadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	return harness.ReadRecords(r)
}

// ReadBenchRecordsFile reads a saved JSONL run (a baseline or an
// append-only result store) from disk.
func ReadBenchRecordsFile(path string) ([]BenchRecord, error) {
	return harness.ReadRecordsFile(path)
}

// ReadBenchStoreFile reads a resume store, tolerating a crash tail (a
// truncated final line from an interrupted run): it returns the parsed
// records and the byte length of the valid prefix the caller should
// truncate to before appending.
func ReadBenchStoreFile(path string) ([]BenchRecord, int64, error) {
	return harness.ReadStoreFile(path)
}

// CompactStore rewrites a store's records down to their canonical form:
// one record per cell key in expansion order (newest success wins; a
// never-succeeded key keeps its newest failure so resumes retry it),
// stale aggregate sets replaced by a single set recomputed over the
// surviving cells. Canonical records are preserved verbatim, so
// resuming, diffing or perf-rendering the compacted store behaves
// exactly like the original. cmd/bpbench's `compact` subcommand is a
// thin wrapper over this.
func CompactStore(recs []BenchRecord) ([]BenchRecord, BenchCompactStats) {
	return harness.Compact(recs)
}

// CompactStoreWith is CompactStore with options: PruneDrift additionally
// drops cells recorded under a different git SHA than opts.Head (the
// `bpbench compact -prune-drift` maintenance pass), so a subsequent
// resume re-measures them at HEAD.
func CompactStoreWith(recs []BenchRecord, opts BenchCompactOpts) ([]BenchRecord, BenchCompactStats) {
	return harness.CompactWith(recs, opts)
}

// StoreProvenance lists the distinct provenance blocks present in a
// store, in first-appearance order; records written before provenance
// stamping contribute a single zero block. One element means the whole
// store came from one revision.
func StoreProvenance(recs []BenchRecord) []BenchProvenance {
	return harness.StoreProvenance(recs)
}

// CurrentProvenance is the provenance block a run started now would
// stamp onto its records: HEAD's git SHA and dirty state (when a
// repository is reachable), the Go toolchain, and the store schema
// version.
func CurrentProvenance() BenchProvenance {
	return harness.CurrentProvenance()
}

// BenchDiff compares a fresh run against a baseline, cell by cell on
// MPKI, flagging movements beyond the tolerance.
func BenchDiff(old, new []BenchRecord, opt BenchDiffOptions) *BenchDiffReport {
	return harness.Diff(old, new, opt)
}

// BenchPerfRows extracts per-(model, scenario, length) simulator
// throughput telemetry (branches/sec) from a record stream.
func BenchPerfRows(records []BenchRecord) []BenchPerfRow {
	return harness.PerfRows(records)
}

// RenderBenchPerf writes the human-readable throughput table.
func RenderBenchPerf(w io.Writer, rows []BenchPerfRow) {
	harness.RenderPerf(w, rows)
}

// BenchDiffFiles diffs two saved JSONL runs by path.
func BenchDiffFiles(oldPath, newPath string, opt BenchDiffOptions) (*BenchDiffReport, error) {
	old, err := harness.ReadRecordsFile(oldPath)
	if err != nil {
		return nil, err
	}
	new, err := harness.ReadRecordsFile(newPath)
	if err != nil {
		return nil, err
	}
	return harness.Diff(old, new, opt), nil
}
