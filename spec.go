package repro

// The declarative model API. A ModelSpec is a structured, canonically
// stringable, round-trippable description of a predictor configuration —
// the universal currency every layer trades in: the harness keys cells by
// canonical spec strings, the result store records the spec each cell was
// simulated under, and the CLIs accept specs wherever they accept model
// names. The nine named models are sugar over the same machinery: "tage"
// parses to a spec whose Build returns exactly ReferenceTAGE(), so
// LookupModel is a thin wrapper over ParseSpec.
//
// Grammar (see the README "Model specs" section for the field tables):
//
//	spec   := model [ '@' delta ]
//	model  := name                    named sugar: tage, tage-lsc, gshare, …
//	        | kind ':' body           parameterised kinds
//	kind   := tage | gshare | gehl | composed
//	body   := fields                          (tage, gshare, gehl)
//	        | stack [ ',' fields ]            (composed)
//	stack  := "tage" ( '+' part )*            part := ium | loop | gsc | lsc
//	fields := key '=' value ( ',' key '=' value )*
//	delta  := [+-] digits             scale every table budget by 2^delta
//
// Examples:
//
//	tage                              the reference predictor (named)
//	tage@+2                           …with all tables 4x larger (Figure 9)
//	tage:tables=9                     9 tagged tables, everything else default
//	tage:tables=13,hist=6:2000,tag=12
//	gshare:log=20                     2^20-counter gshare
//	composed:tage+ium+loop+gsc        the ISL-TAGE stack, spelled out
//	composed:tage+ium+lsc,tables=10   a TAGE-LSC-style stack over a 10-table core
//
// Canonicalisation normalises field order (each kind declares one), value
// formatting, stack order and the delta sign, so ParseSpec(s.Canonical())
// is the identity and two spellings of the same configuration collide on
// the same cell key instead of silently duplicating work.

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/composed"
	"repro/internal/gehl"
	"repro/internal/gshare"
	"repro/internal/predictor"
	"repro/internal/tage"
)

// ModelSpec is a parsed predictor configuration. The zero value is
// invalid; obtain one from ParseSpec (or derive one with WithField /
// WithDelta, which re-validate).
type ModelSpec struct {
	kind     string      // spec kind, or a named-model identifier
	named    bool        // kind is one of the Models() identifiers
	parts    []string    // composed component stack, canonical order
	fields   []specField // explicitly-set fields, canonical order
	delta    int         // storage-budget exponent (2^delta)
	hasDelta bool        // spec carries a delta suffix (including @+0)
}

type specField struct{ key, val string }

// Kind returns the spec kind ("tage", "gshare", …) or, for named sugar,
// the model identifier.
func (s ModelSpec) Kind() string { return s.kind }

// IsNamed reports whether the spec is one of the named-model sugars.
func (s ModelSpec) IsNamed() bool { return s.named }

// Delta returns the storage-budget exponent and whether the spec carries
// one at all (an explicit "@+0" is present but zero).
func (s ModelSpec) Delta() (int, bool) { return s.delta, s.hasDelta }

// Field returns the explicitly-set value of a field, if any.
func (s ModelSpec) Field(key string) (string, bool) {
	for _, f := range s.fields {
		if f.key == key {
			return f.val, true
		}
	}
	return "", false
}

// Canonical returns the canonical spec string: parsing it back yields an
// identical spec, and every layer (cell keys, stores, diffs) uses this
// form as the model identity.
func (s ModelSpec) Canonical() string {
	var b strings.Builder
	b.WriteString(s.kind)
	if !s.named {
		b.WriteByte(':')
		sep := false
		if len(s.parts) > 0 {
			b.WriteString(strings.Join(s.parts, "+"))
			sep = true
		}
		for _, f := range s.fields {
			if sep {
				b.WriteByte(',')
			}
			b.WriteString(f.key)
			b.WriteByte('=')
			b.WriteString(f.val)
			sep = true
		}
	}
	if s.hasDelta {
		fmt.Fprintf(&b, "@%+d", s.delta)
	}
	return b.String()
}

// String implements fmt.Stringer as the canonical form.
func (s ModelSpec) String() string { return s.Canonical() }

// CanScale reports whether the spec supports a storage-budget delta:
// every parameterised kind scales (a pure power-of-two shift of its
// table budgets), and among the named models those listed by
// ScalableModelNames do.
func (s ModelSpec) CanScale() bool {
	if s.named {
		_, ok := ScalableModels()[s.kind]
		return ok
	}
	return true
}

// WithDelta returns the spec rescaled to carry the storage-budget
// exponent d (replacing any existing delta), erroring on specs that do
// not scale (see CanScale) — so a derived spec always canonicalises to
// a parseable string. This is how a DeltaLogs matrix axis is expressed
// in spec space: the scaled variant's canonical string is exactly the
// harness's ScaledName of the base canonical.
func (s ModelSpec) WithDelta(d int) (ModelSpec, error) {
	if !s.CanScale() {
		return ModelSpec{}, fmt.Errorf("repro: named model %q does not support a storage delta (scalable named models: %s)",
			s.kind, strings.Join(ScalableModelNames(), ", "))
	}
	out := s
	out.delta, out.hasDelta = d, true
	return out, nil
}

// WithField returns the spec with one field set (replacing an existing
// value), re-validated — the rewriting primitive behind `bpbench -sweep`.
// Named specs backed by a parameterised kind of the same name (tage,
// gshare, gehl) desugar first; other named models have no field grammar
// and error with the explicit spelling to use instead.
func (s ModelSpec) WithField(key, val string) (ModelSpec, error) {
	base := s
	if s.named {
		if def := specKindDefs[s.kind]; def == nil || def.stacked {
			return ModelSpec{}, fmt.Errorf("repro: named model %q has no parameter fields; spell the configuration out (e.g. %s) to set %q",
				s.kind, namedExplicitHint(s.kind), key)
		}
		base = ModelSpec{kind: s.kind, delta: s.delta, hasDelta: s.hasDelta}
	}
	def := specKindDefs[base.kind]
	fd := def.field(key)
	if fd == nil {
		return ModelSpec{}, fmt.Errorf("repro: spec kind %q has no field %q (valid fields: %s)", base.kind, key, def.fieldKeys())
	}
	canon, err := fd.normalise(val)
	if err != nil {
		return ModelSpec{}, fmt.Errorf("repro: field %q: %w", key, err)
	}
	vals := make(map[string]string, len(base.fields)+1)
	for _, f := range base.fields {
		vals[f.key] = f.val
	}
	vals[key] = canon
	out := base
	out.fields = nil
	for _, fd := range def.fields {
		if v, ok := vals[fd.key]; ok {
			out.fields = append(out.fields, specField{fd.key, v})
		}
	}
	return out, nil
}

// namedExplicitHint suggests the parameterised spelling of a named model
// for WithField errors.
func namedExplicitHint(name string) string {
	switch name {
	case "tage-ium":
		return "'composed:tage+ium'"
	case "isl-tage":
		return "'composed:tage+ium+loop+gsc'"
	case "tage-lsc", "tage-lsc-banked":
		return "'composed:tage+ium+lsc,…'"
	default:
		return "a 'kind:key=value,…' spec"
	}
}

// SpecKinds lists the parameterised spec kinds in documentation order.
func SpecKinds() []string {
	return []string{"tage", "gshare", "gehl", "composed"}
}

// SpecFieldSweepsAsRange reports whether a sweep of the field may use
// the inclusive lo:hi integer-range form: true only when every kind
// defining the key declares it a plain integer (fields whose values
// carry their own ':' — hist — or are non-numeric need explicit value
// lists). Derived from the field registry, so a future colon-valued
// field automatically opts out instead of misparsing as a range.
func SpecFieldSweepsAsRange(key string) bool {
	found := false
	for _, def := range specKindDefs {
		if fd := def.field(key); fd != nil {
			if !fd.intRange {
				return false
			}
			found = true
		}
	}
	return found
}

// ParseSpec parses a model-spec string: a named model ("tage-lsc"), a
// parameterised configuration ("tage:tables=9,hist=6:2000"), either
// optionally scaled by a storage delta ("gshare:log=20@+2"). Errors name
// the offending field and the valid alternatives.
func ParseSpec(s string) (ModelSpec, error) {
	raw := strings.TrimSpace(s)
	if raw == "" {
		return ModelSpec{}, fmt.Errorf("repro: empty model spec")
	}
	head := raw
	var spec ModelSpec
	if at := strings.LastIndexByte(head, '@'); at >= 0 {
		d, err := parseDeltaSuffix(head[at+1:])
		if err != nil {
			return ModelSpec{}, fmt.Errorf("repro: spec %q: %w", raw, err)
		}
		spec.delta, spec.hasDelta = d, true
		head = head[:at]
	}
	kind, body, hasBody := strings.Cut(head, ":")
	kind = strings.TrimSpace(kind)
	if !hasBody {
		if _, ok := Models()[kind]; !ok {
			return ModelSpec{}, fmt.Errorf("repro: unknown model %q (named models: %s; parameterised kinds: %s)",
				kind, strings.Join(ModelNames(), ", "), strings.Join(SpecKinds(), ", "))
		}
		spec.kind, spec.named = kind, true
		if spec.hasDelta {
			if _, ok := ScalableModels()[kind]; !ok {
				return ModelSpec{}, fmt.Errorf("repro: named model %q does not support a storage delta (scalable named models: %s)",
					kind, strings.Join(ScalableModelNames(), ", "))
			}
		}
		return spec, nil
	}
	def := specKindDefs[kind]
	if def == nil {
		return ModelSpec{}, fmt.Errorf("repro: unknown spec kind %q (parameterised kinds: %s; or use a named model: %s)",
			kind, strings.Join(SpecKinds(), ", "), strings.Join(ModelNames(), ", "))
	}
	spec.kind = kind
	if strings.TrimSpace(body) == "" {
		if def.stacked {
			return ModelSpec{}, fmt.Errorf("repro: spec %q: %q needs a component stack, e.g. 'composed:tage+ium+lsc'", raw, kind)
		}
		return ModelSpec{}, fmt.Errorf("repro: spec %q has an empty parameter list (for the default configuration use the named model, e.g. %q)", raw, kind)
	}
	items := strings.Split(body, ",")
	idx := 0
	if def.stacked {
		parts, err := parseStack(items[0])
		if err != nil {
			return ModelSpec{}, fmt.Errorf("repro: spec %q: %w", raw, err)
		}
		spec.parts = parts
		idx = 1
	}
	vals := make(map[string]string)
	for _, item := range items[idx:] {
		item = strings.TrimSpace(item)
		if item == "" {
			return ModelSpec{}, fmt.Errorf("repro: spec %q has an empty field (stray comma?)", raw)
		}
		k, v, ok := strings.Cut(item, "=")
		if !ok {
			return ModelSpec{}, fmt.Errorf("repro: spec %q: field %q is not key=value", raw, item)
		}
		k, v = strings.TrimSpace(k), strings.TrimSpace(v)
		fd := def.field(k)
		if fd == nil {
			return ModelSpec{}, fmt.Errorf("repro: spec kind %q has no field %q (valid fields: %s)", kind, k, def.fieldKeys())
		}
		if _, dup := vals[k]; dup {
			return ModelSpec{}, fmt.Errorf("repro: spec %q sets field %q twice", raw, k)
		}
		canon, err := fd.normalise(v)
		if err != nil {
			return ModelSpec{}, fmt.Errorf("repro: spec %q: field %q: %w", raw, k, err)
		}
		vals[k] = canon
	}
	for _, fd := range def.fields {
		if v, ok := vals[fd.key]; ok {
			spec.fields = append(spec.fields, specField{fd.key, v})
		}
	}
	return spec, nil
}

// Build instantiates the configuration as a runnable Model.
func (s ModelSpec) Build() (*Model, error) {
	if s.named {
		if s.hasDelta {
			mk, ok := ScalableModels()[s.kind]
			if !ok {
				return nil, fmt.Errorf("repro: named model %q does not support a storage delta (scalable named models: %s)",
					s.kind, strings.Join(ScalableModelNames(), ", "))
			}
			return mk(s.delta), nil
		}
		mk, ok := Models()[s.kind]
		if !ok {
			return nil, fmt.Errorf("repro: unknown model %q", s.kind)
		}
		return mk(), nil
	}
	def := specKindDefs[s.kind]
	if def == nil {
		return nil, fmt.Errorf("repro: unknown spec kind %q", s.kind)
	}
	return def.build(s)
}

// --- delta / stack parsing ---

func parseDeltaSuffix(s string) (int, error) {
	if s == "" || (s[0] != '+' && s[0] != '-') {
		return 0, fmt.Errorf("bad storage delta %q (want a signed exponent, e.g. @+2 or @-1)", "@"+s)
	}
	d, err := strconv.Atoi(s)
	if err != nil {
		return 0, fmt.Errorf("bad storage delta %q (want a signed exponent, e.g. @+2 or @-1)", "@"+s)
	}
	return d, nil
}

// composedParts is the canonical stack order.
var composedParts = []string{"tage", "ium", "loop", "gsc", "lsc"}

func parseStack(s string) ([]string, error) {
	have := make(map[string]bool)
	for _, p := range strings.Split(s, "+") {
		p = strings.TrimSpace(p)
		known := false
		for _, k := range composedParts {
			if p == k {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown component %q in stack %q (valid: %s)", p, s, strings.Join(composedParts, ", "))
		}
		if have[p] {
			return nil, fmt.Errorf("duplicate component %q in stack %q", p, s)
		}
		have[p] = true
	}
	if !have["tage"] {
		return nil, fmt.Errorf("stack %q must include the \"tage\" core", s)
	}
	out := make([]string, 0, len(have))
	for _, k := range composedParts {
		if have[k] {
			out = append(out, k)
		}
	}
	return out, nil
}

// --- field definitions ---

type fieldDef struct {
	key string
	// intRange marks plain-integer fields, whose sweep values may be
	// written as an inclusive lo:hi range; fields whose values carry
	// their own ':' (hist) or are non-numeric must use explicit lists.
	intRange  bool
	normalise func(string) (string, error)
}

type specKindDef struct {
	kind    string
	stacked bool // body starts with a '+'-joined component stack
	fields  []fieldDef
	build   func(ModelSpec) (*Model, error)
}

func (d *specKindDef) field(key string) *fieldDef {
	for i := range d.fields {
		if d.fields[i].key == key {
			return &d.fields[i]
		}
	}
	return nil
}

func (d *specKindDef) fieldKeys() string {
	keys := make([]string, len(d.fields))
	for i, f := range d.fields {
		keys[i] = f.key
	}
	return strings.Join(keys, ", ")
}

func intField(key string, min, max int) fieldDef {
	return fieldDef{key: key, intRange: true, normalise: func(v string) (string, error) {
		n, err := strconv.Atoi(v)
		if err != nil {
			return "", fmt.Errorf("%q is not an integer", v)
		}
		if n < min || n > max {
			return "", fmt.Errorf("%d out of range [%d, %d]", n, min, max)
		}
		return strconv.Itoa(n), nil
	}}
}

func uintField(key string) fieldDef {
	return fieldDef{key: key, normalise: func(v string) (string, error) {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return "", fmt.Errorf("%q is not an unsigned integer", v)
		}
		return strconv.FormatUint(n, 10), nil
	}}
}

func boolField(key string) fieldDef {
	return fieldDef{key: key, normalise: func(v string) (string, error) {
		switch v {
		case "1", "true":
			return "1", nil
		case "0", "false":
			return "0", nil
		}
		return "", fmt.Errorf("%q is not a boolean (want 0, 1, true or false)", v)
	}}
}

// maxSpecHist bounds explicit history lengths; the reference series tops
// out at 2000 and the folded-history machinery rounds its buffer up to a
// power of two, so this is generous without being an allocation hazard.
const maxSpecHist = 65536

func histField(key string) fieldDef {
	return fieldDef{key: key, normalise: func(v string) (string, error) {
		lo, hi, ok := strings.Cut(v, ":")
		if !ok {
			return "", fmt.Errorf("%q is not a min:max history pair (e.g. 6:2000)", v)
		}
		l, err1 := strconv.Atoi(strings.TrimSpace(lo))
		h, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil {
			return "", fmt.Errorf("%q is not a min:max history pair (e.g. 6:2000)", v)
		}
		if l < 1 || h <= l || h > maxSpecHist {
			return "", fmt.Errorf("history range %d:%d invalid (want 1 <= min < max <= %d)", l, h, maxSpecHist)
		}
		return fmt.Sprintf("%d:%d", l, h), nil
	}}
}

// tageCoreFields are the fields configuring a TAGE core; the composed
// kind reuses them for its core (ium there is a stack component instead).
func tageCoreFields(withIUM bool) []fieldDef {
	fs := []fieldDef{
		intField("tables", 1, tage.MaxTables),
		intField("log", 6, 30),
		intField("tag", 4, 16),
		histField("hist"),
		intField("bim", 8, 30),
		intField("alloc", 1, 32),
	}
	if withIUM {
		fs = append(fs, boolField("ium"))
	}
	return append(fs, boolField("banked"), uintField("seed"))
}

var specKindDefs = map[string]*specKindDef{
	"tage": {
		kind:   "tage",
		fields: tageCoreFields(true),
		build:  buildTageSpec,
	},
	"gshare": {
		kind:   "gshare",
		fields: []fieldDef{intField("log", 8, 30)},
		build:  buildGshareSpec,
	},
	"gehl": {
		kind: "gehl",
		fields: []fieldDef{
			intField("tables", 2, gehl.MaxTables),
			intField("log", 6, 30),
			intField("ctr", 2, 8),
			histField("hist"),
		},
		build: buildGehlSpec,
	},
	"composed": {
		kind:    "composed",
		stacked: true,
		fields:  tageCoreFields(false),
		build:   buildComposedSpec,
	},
}

// --- typed field readers (values are pre-normalised by ParseSpec) ---

func (s ModelSpec) fieldInt(key string, def int) int {
	if v, ok := s.Field(key); ok {
		n, _ := strconv.Atoi(v)
		return n
	}
	return def
}

func (s ModelSpec) fieldBool(key string) bool {
	v, _ := s.Field(key)
	return v == "1"
}

func (s ModelSpec) fieldHist(key string, defMin, defMax int) (int, int) {
	if v, ok := s.Field(key); ok {
		lo, hi, _ := strings.Cut(v, ":")
		l, _ := strconv.Atoi(lo)
		h, _ := strconv.Atoi(hi)
		return l, h
	}
	return defMin, defMax
}

// --- kind builders ---

// tageConfigFromSpec assembles the TAGE core a tage: or composed: spec
// describes. Defaults reproduce the paper's reference predictor exactly:
// with 12 tagged tables and no explicit log the reference size pattern is
// used, otherwise sizes are uniform; tag widths default to the reference
// min(5+i, 15) rule.
func tageConfigFromSpec(s ModelSpec) tage.Config {
	tables := s.fieldInt("tables", 12)
	logs := make([]uint, tables)
	if v, ok := s.Field("log"); ok {
		l, _ := strconv.Atoi(v)
		for i := range logs {
			logs[i] = uint(l)
		}
	} else if tables == len(tage.Reference().TableLogs) {
		copy(logs, tage.Reference().TableLogs)
	} else {
		for i := range logs {
			logs[i] = 11
		}
	}
	tags := make([]uint, tables)
	if v, ok := s.Field("tag"); ok {
		t, _ := strconv.Atoi(v)
		for i := range tags {
			tags[i] = uint(t)
		}
	} else {
		for i := range tags {
			t := uint(5 + i + 1)
			if t > 15 {
				t = 15
			}
			tags[i] = t
		}
	}
	minH, maxH := s.fieldHist("hist", 6, 2000)
	cfg := tage.Config{
		TableLogs: logs,
		TagBits:   tags,
		MinHist:   minH,
		MaxHist:   maxH,
	}
	if v, ok := s.Field("bim"); ok {
		b, _ := strconv.Atoi(v)
		cfg.LogBimodal = uint(b)
	}
	if v, ok := s.Field("alloc"); ok {
		cfg.MaxAlloc, _ = strconv.Atoi(v)
	}
	if v, ok := s.Field("seed"); ok {
		cfg.Seed, _ = strconv.ParseUint(v, 10, 64)
	}
	cfg.UseIUM = s.fieldBool("ium")
	cfg.Interleaved = s.fieldBool("banked")
	return cfg
}

func buildTageSpec(s ModelSpec) (*Model, error) {
	cfg := tageConfigFromSpec(s)
	if s.hasDelta {
		cfg = tage.Scale(cfg, s.delta)
	}
	cfg.Name = s.Canonical()
	return newModel(func() predictor.Predictor[tage.Ctx] {
		return tage.New(cfg)
	}), nil
}

func buildGshareSpec(s ModelSpec) (*Model, error) {
	log := s.fieldInt("log", 18)
	if s.hasDelta {
		log = clampInt(log+s.delta, 8, 30)
	}
	m := newModel(func() predictor.Predictor[gshare.Ctx] {
		return gshare.New(uint(log))
	})
	// gshare derives its self-name from the rounded budget, which can
	// collide across distinct specs; the canonical spec is the identity.
	m.name = s.Canonical()
	return m, nil
}

func buildGehlSpec(s ModelSpec) (*Model, error) {
	log := s.fieldInt("log", 13)
	if s.hasDelta {
		log = clampInt(log+s.delta, 6, 30)
	}
	minH, maxH := s.fieldHist("hist", 6, 2000)
	cfg := gehl.Config{
		NumTables:  s.fieldInt("tables", 13),
		LogEntries: uint(log),
		CtrBits:    uint(s.fieldInt("ctr", 5)),
		MinHist:    minH,
		MaxHist:    maxH,
	}
	m := newModel(func() predictor.Predictor[gehl.Ctx] {
		return gehl.New(cfg)
	})
	// Like gshare, gehl self-names by budget; the spec is the identity.
	m.name = s.Canonical()
	return m, nil
}

func buildComposedSpec(s ModelSpec) (*Model, error) {
	tcfg := tageConfigFromSpec(s)
	if s.hasDelta {
		tcfg = tage.Scale(tcfg, s.delta)
	}
	cfg := composed.Config{Name: s.Canonical(), Tage: tcfg}
	for _, p := range s.parts {
		switch p {
		case "ium":
			cfg.Tage.UseIUM = true
		case "loop":
			cfg.UseLoop = true
		case "gsc":
			cfg.UseSC = true
		case "lsc":
			cfg.UseLSC = true
		}
	}
	return newModel(func() predictor.Predictor[composed.Ctx] {
		return composed.New(cfg)
	}), nil
}

func clampInt(v, min, max int) int {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}
