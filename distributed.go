package repro

import (
	"context"
	"time"

	"repro/internal/harness"
)

// Distributed sweep facade: the coordinator/worker/merge pieces of
// internal/harness re-exported under the Bench* naming the rest of the
// public surface uses, plus a ModelResolver wired to the spec language.
//
// A minimal farm is three processes:
//
//	bpbench serve -addr :9090 -store results/dist.jsonl
//	bpbench work -connect http://coordinator:9090
//	curl -d '{"models":["tage","gshare"]}' http://coordinator:9090/v1/sweep
//
// and programmatically:
//
//	queue := repro.NewBenchLeaseQueue(0, 0, reg)
//	svc := &repro.BenchService{Queue: queue, Resolve: repro.BenchResolver()}
//	svc.Register(mux)                      // coordinator side
//	repro.RunBenchWorker(ctx, repro.BenchWorkerOptions{
//		BaseURL: "http://coordinator:9090", Resolve: repro.BenchResolver(),
//	})                                     // worker side
type (
	// BenchScheduler executes expanded jobs on behalf of a run — the
	// seam BenchConfig.Scheduler plugs a distributed backend into.
	BenchScheduler = harness.Scheduler
	// BenchLeaseQueue shards jobs into TTL'd leases for pulling workers.
	BenchLeaseQueue = harness.LeaseQueue
	// BenchLeaseScheduler is the Scheduler that feeds a BenchLeaseQueue.
	BenchLeaseScheduler = harness.LeaseScheduler
	// BenchService is the coordinator's HTTP surface (sweep submission,
	// lease protocol).
	BenchService = harness.Service
	// BenchSweepRequest is the /v1/sweep submission body.
	BenchSweepRequest = harness.SweepRequest
	// BenchWorkerOptions configures RunBenchWorker.
	BenchWorkerOptions = harness.WorkerOptions
	// BenchModelResolver rebuilds a model from a spec string.
	BenchModelResolver = harness.ModelResolver
)

// NewBenchLeaseQueue constructs a lease queue. ttl<=0 and batch<=0
// select the defaults (30s, 4 cells per lease); reg may be nil.
func NewBenchLeaseQueue(ttl time.Duration, batch int, reg *MetricsRegistry) *BenchLeaseQueue {
	return harness.NewLeaseQueue(ttl, batch, reg)
}

// BenchResolver adapts the spec language (ParseSpec / BenchModels) to
// the resolver coordinators and workers rebuild wire jobs with.
func BenchResolver() BenchModelResolver {
	return func(spec string) (BenchModel, error) {
		models, err := BenchModels([]string{spec})
		if err != nil {
			return BenchModel{}, err
		}
		return models[0], nil
	}
}

// RunBenchWorker pulls leases from a coordinator and executes them
// with the in-process engine until ctx is cancelled.
func RunBenchWorker(ctx context.Context, opt BenchWorkerOptions) error {
	return harness.RunWorker(ctx, opt)
}

// MergeBenchStores unions partial result stores into one canonical
// store with a single recomputed aggregate set, refusing stores that
// disagree about a cell (different window/exec-delay or model spec).
func MergeBenchStores(stores ...[]BenchRecord) ([]BenchRecord, BenchCompactStats, error) {
	return harness.MergeStores(stores...)
}
