package repro

import (
	"testing"

	"repro/internal/experiments"
)

// Each table/figure of the paper's evaluation has one benchmark that
// regenerates it (the E1..E15 index of DESIGN.md). Benchmarks run the
// experiment harness at a reduced per-trace scale so `go test -bench=.`
// completes in minutes; cmd/bptables runs the same code at full scale.
const benchBranchesPerTrace = 25000

func benchExperiment(b *testing.B, id string) {
	b.ReportAllocs()
	cfg := experiments.Config{BranchesPerTrace: benchBranchesPerTrace}
	for i := 0; i < b.N; i++ {
		e, ok := experiments.Lookup(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		rep := e.Run(cfg)
		if len(rep.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// BenchmarkE1SilentUpdates regenerates §4.1.1 (writes per misprediction).
func BenchmarkE1SilentUpdates(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2Scenarios regenerates §4.1.2 (scenario MPPKI table).
func BenchmarkE2Scenarios(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Interleaving regenerates §4.3 (banked TAGE + CACTI ratios).
func BenchmarkE3Interleaving(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4IUM regenerates §5.1 (IUM recovery).
func BenchmarkE4IUM(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Loop regenerates §5.2 (loop predictor gain).
func BenchmarkE5Loop(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6SC regenerates §5.3 (Statistical Corrector gain).
func BenchmarkE6SC(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7ISLTAGE regenerates §5.4 (ISL-TAGE vs 2Mbit TAGE).
func BenchmarkE7ISLTAGE(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8LSC regenerates §6.1 (LSC gains and subsumption).
func BenchmarkE8LSC(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9Budget regenerates §6.1 (512Kbit budget match).
func BenchmarkE9Budget(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10Robustness regenerates §6.2 (history-series sweep).
func BenchmarkE10Robustness(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Fig9Scaling regenerates Figure 9 (128Kb..32Mb sweep).
func BenchmarkE11Fig9Scaling(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12Fig10Hard regenerates Figure 10 (TAGE family vs neural).
func BenchmarkE12Fig10Hard(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13LSCInterleave regenerates §7.1 (interleaved TAGE-LSC).
func BenchmarkE13LSCInterleave(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14CostEffective regenerates §7.2 (retire-read elimination).
func BenchmarkE14CostEffective(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15Characterization regenerates §2.2 (benchmark set split).
func BenchmarkE15Characterization(b *testing.B) { benchExperiment(b, "E15") }

// --- predictor micro-benchmarks: cost of one predicted branch ---

func benchPredictor(b *testing.B, mk func() *Model) {
	b.ReportAllocs()
	tr := MustGenerateTrace("INT04", 100000)
	m := mk()
	b.ResetTimer()
	for i := 0; i < b.N; i += len(tr.Branches) {
		m.Run(tr, Options{Scenario: ScenarioA})
	}
}

// BenchmarkTAGEPerBranch measures the reference TAGE per-branch cost.
func BenchmarkTAGEPerBranch(b *testing.B) { benchPredictor(b, ReferenceTAGE) }

// BenchmarkTAGELSCPerBranch measures the full TAGE-LSC per-branch cost.
func BenchmarkTAGELSCPerBranch(b *testing.B) { benchPredictor(b, TAGELSC512K) }

// BenchmarkISLTAGEPerBranch measures the ISL-TAGE per-branch cost.
func BenchmarkISLTAGEPerBranch(b *testing.B) { benchPredictor(b, ISLTAGE) }

// BenchmarkGsharePerBranch measures the gshare per-branch cost.
func BenchmarkGsharePerBranch(b *testing.B) { benchPredictor(b, Gshare512K) }

// BenchmarkGEHLPerBranch measures the GEHL per-branch cost.
func BenchmarkGEHLPerBranch(b *testing.B) { benchPredictor(b, GEHL520K) }

// BenchmarkTraceGeneration measures synthetic workload synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustGenerateTrace("SERVER03", 100000)
	}
}
