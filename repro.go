// Package repro is a from-scratch Go reproduction of "A New Case for the
// TAGE Branch Predictor" (André Seznec, MICRO 2011): the TAGE conditional
// branch predictor and every system the paper builds on or compares
// against — the ISL-TAGE and TAGE-LSC composite predictors (IUM, loop
// predictor, global and local Statistical Correctors), the gshare, GEHL,
// piecewise-linear and fused-two-level baselines, a CBP-3-style
// trace-driven pipeline simulator with the paper's four update-timing
// scenarii, a 4-way bank-interleaving hardware model, a CACTI-like
// area/energy model, and a synthetic 40-trace benchmark suite.
//
// The package is a facade over the internal implementation: construct a
// predictor Model, generate (or load) traces, and run simulations.
//
//	model := repro.TAGELSC512K()
//	tr := repro.MustGenerateTrace("INT01", 1_000_000)
//	res := model.Run(tr, repro.Options{Scenario: repro.ScenarioA})
//	fmt.Println(res.MPKI, res.MPPKI)
//
// Models are identified by declarative specs (see ParseSpec and the
// README "Model specs" section): the named constructors above are sugar
// over a parseable configuration grammar, so arbitrary points of the
// design space — table counts, history series, tag widths, composite
// stacks, storage budgets — build through the same lifecycle:
//
//	spec, _ := repro.ParseSpec("tage:tables=9,hist=6:500")
//	model, _ := spec.Build()   // spec.Canonical() identifies it everywhere
//
// Every table and figure of the paper can be regenerated through
// RunExperiment (experiment ids E1..E15, indexed in internal/experiments
// and surfaced by the cmd/bptables binary), and swept at scale through
// the bench harness (BenchMatrix, cmd/bpbench).
package repro

import (
	"fmt"

	"repro/internal/composed"
	"repro/internal/ftlpp"
	"repro/internal/gehl"
	"repro/internal/gshare"
	"repro/internal/neural"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
)

// Re-exported simulation types.
type (
	// Trace is a materialised branch trace.
	Trace = trace.Trace
	// Branch is one dynamic conditional branch.
	Branch = trace.Branch
	// Options configures a simulation run.
	Options = sim.Options
	// Checkpoint is a mid-trace (or end-of-trace) simulation snapshot:
	// assign one to Options.Resume to warm-start a run, receive them via
	// Options.OnCheckpoint.
	Checkpoint = sim.Checkpoint
	// Result is the outcome of simulating one trace.
	Result = sim.Result
	// Suite aggregates per-trace results.
	Suite = sim.Suite
	// Scenario selects the update-timing policy of Section 4.1.2.
	Scenario = predictor.Scenario
)

// Update-timing scenarii (Section 4.1.2).
const (
	// ScenarioI is the oracle immediate update.
	ScenarioI = predictor.ScenarioI
	// ScenarioA re-reads the tables at retire time.
	ScenarioA = predictor.ScenarioA
	// ScenarioB never re-reads (fetch-time values only).
	ScenarioB = predictor.ScenarioB
	// ScenarioC re-reads only on mispredictions.
	ScenarioC = predictor.ScenarioC
)

// Model is a branch predictor configuration that can be instantiated and
// simulated. Each Run starts from cold state.
type Model struct {
	name string
	bits int
	mk   func() instance
}

// instance abstracts over the per-predictor context type.
type instance interface {
	run(tr *Trace, opt Options) Result
	reset()
	predict(pc uint64) bool
	update(pc uint64, taken bool)
}

type typedInstance[C any] struct {
	p       predictor.Predictor[C]
	rn      sim.Runner[C]
	ctx     C
	pending uint64
	valid   bool
	pred    bool
}

func (ti *typedInstance[C]) run(tr *Trace, opt Options) Result {
	return ti.rn.RunTrace(ti.p, tr, opt)
}

// reset returns the instance to its freshly-constructed state, reusing the
// predictor's warmed storage and the simulation buffers.
func (ti *typedInstance[C]) reset() {
	ti.p.Reset()
	var zero C
	ti.ctx = zero
	ti.pending = 0
	ti.valid = false
	ti.pred = false
}

func (ti *typedInstance[C]) predict(pc uint64) bool {
	ti.pred = ti.p.Predict(pc, &ti.ctx)
	ti.pending = pc
	ti.valid = true
	return ti.pred
}

func (ti *typedInstance[C]) update(pc uint64, taken bool) {
	if !ti.valid || ti.pending != pc {
		ti.predict(pc)
	}
	ti.valid = false
	ti.p.OnResolve(pc, taken, ti.pred != taken, &ti.ctx)
	ti.p.Retire(pc, taken, &ti.ctx, true)
}

func newModel[C any](mk func() predictor.Predictor[C]) *Model {
	probe := mk()
	return &Model{
		name: probe.Name(),
		bits: probe.StorageBits(),
		mk: func() instance {
			return &typedInstance[C]{p: mk()}
		},
	}
}

// Name returns the configuration label.
func (m *Model) Name() string { return m.name }

// StorageBits returns the predictor storage budget in bits.
func (m *Model) StorageBits() int { return m.bits }

// Run simulates the model over a trace from cold state.
func (m *Model) Run(tr *Trace, opt Options) Result {
	return m.mk().run(tr, opt)
}

// NewRunner returns a reusable run function backed by one pooled predictor
// instance: every call starts from cold state (the predictor is Reset
// between runs) but reuses the warmed table storage and simulation
// buffers, so repeated runs allocate nothing. Results are byte-identical
// to Model.Run. The returned function is not safe for concurrent use;
// create one runner per goroutine.
func (m *Model) NewRunner() func(tr *Trace, opt Options) Result {
	inst := m.mk()
	dirty := false
	return func(tr *Trace, opt Options) Result {
		if dirty {
			inst.reset()
		}
		dirty = true
		return inst.run(tr, opt)
	}
}

// Session is a stateful predictor handle for direct use: call Predict to
// obtain a prediction and Train to feed the architectural outcome
// (immediate-update semantics, suitable for functional exploration).
type Session struct{ inst instance }

// NewSession instantiates the model for interactive use.
func (m *Model) NewSession() *Session { return &Session{inst: m.mk()} }

// Predict returns the predicted direction for a branch at pc.
func (s *Session) Predict(pc uint64) bool { return s.inst.predict(pc) }

// Train feeds the architectural outcome of the branch at pc, updating the
// predictor immediately.
func (s *Session) Train(pc uint64, taken bool) { s.inst.update(pc, taken) }

// --- the paper's predictor configurations ---

// ReferenceTAGE is the Section 3.4 reference predictor: 13 components,
// (6,2000) geometric series, 65,408 bytes.
func ReferenceTAGE() *Model {
	return newModel(func() predictor.Predictor[tage.Ctx] {
		return tage.New(tage.Reference())
	})
}

// TAGEWithIUM is the reference TAGE with the Immediate Update Mimicker of
// Section 5.1.
func TAGEWithIUM() *Model {
	return newModel(func() predictor.Predictor[composed.Ctx] {
		return composed.New(composed.TageIUM(tage.Reference(), "TAGE+IUM"))
	})
}

// ISLTAGE is the Section 5 predictor: TAGE + IUM + loop predictor +
// global-history Statistical Corrector.
func ISLTAGE() *Model {
	return newModel(func() predictor.Predictor[composed.Ctx] {
		return composed.New(composed.ISLTAGE(tage.Reference(), "ISL-TAGE"))
	})
}

// TAGELSC512K is the Section 6.1 budget-matched TAGE-LSC: the reference
// TAGE with table T7 halved plus the 30Kbit Local Statistical Corrector,
// within 512 Kbits.
func TAGELSC512K() *Model {
	return newModel(func() predictor.Predictor[composed.Ctx] {
		return composed.New(composed.TAGELSC(composed.Budget512K(), "TAGE-LSC"))
	})
}

// TAGELSCInterleaved is the Section 7 cost-effective TAGE-LSC: 4-way
// bank-interleaved single-ported tables for both the TAGE and the local
// components.
func TAGELSCInterleaved() *Model {
	return newModel(func() predictor.Predictor[composed.Ctx] {
		tcfg := composed.Budget512K()
		tcfg.Interleaved = true
		c := composed.TAGELSC(tcfg, "TAGE-LSC-interleaved")
		c.LSC.Interleaved = true
		return composed.New(c)
	})
}

// ScaledTAGE returns the reference TAGE with all component sizes scaled by
// 2^deltaLog (the Figure 9 protocol); deltaLog 0 is 512Kbit.
func ScaledTAGE(deltaLog int) *Model {
	return newModel(func() predictor.Predictor[tage.Ctx] {
		return tage.New(tage.Scale(tage.Reference(), deltaLog))
	})
}

// ScaledTAGELSC returns TAGE-LSC with the TAGE component sizes scaled by
// 2^deltaLog, the other half of the Figure 9 sweep; deltaLog 0 is the
// 512Kbit budget match.
func ScaledTAGELSC(deltaLog int) *Model {
	return newModel(func() predictor.Predictor[composed.Ctx] {
		return composed.New(composed.TAGELSC(
			tage.Scale(composed.Budget512K(), deltaLog),
			fmt.Sprintf("TAGE-LSC%+d", deltaLog)))
	})
}

// Gshare512K is the 512Kbit gshare baseline of Section 4.1.
func Gshare512K() *Model {
	return newModel(func() predictor.Predictor[gshare.Ctx] {
		return gshare.New(18)
	})
}

// GEHL520K is the 520Kbit GEHL baseline of Section 4.1.
func GEHL520K() *Model {
	return newModel(func() predictor.Predictor[gehl.Ctx] {
		return gehl.New(gehl.Config{})
	})
}

// OHSNAP is the piecewise-linear (OH-SNAP-like) neural comparator of
// Section 6.3.
func OHSNAP() *Model {
	return newModel(func() predictor.Predictor[neural.Ctx] {
		return neural.New(neural.Config{})
	})
}

// FTLPP is the fused two-level (FTL++-like) comparator of Section 6.3.
func FTLPP() *Model {
	return newModel(func() predictor.Predictor[ftlpp.Ctx] {
		return ftlpp.New(ftlpp.Config{})
	})
}

// Models returns every named configuration, keyed by a stable identifier
// usable from command-line tools.
func Models() map[string]func() *Model {
	return map[string]func() *Model{
		"tage":            ReferenceTAGE,
		"tage-ium":        TAGEWithIUM,
		"isl-tage":        ISLTAGE,
		"tage-lsc":        TAGELSC512K,
		"tage-lsc-banked": TAGELSCInterleaved,
		"gshare":          Gshare512K,
		"gehl":            GEHL520K,
		"ohsnap":          OHSNAP,
		"ftlpp":           FTLPP,
	}
}
