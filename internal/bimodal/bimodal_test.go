package bimodal

import (
	"testing"
	"testing/quick"
)

func TestNextSaturates(t *testing.T) {
	if Next(3, true) != 3 {
		t.Fatal("must saturate at 3")
	}
	if Next(0, false) != 0 {
		t.Fatal("must saturate at 0")
	}
	if Next(1, true) != 2 || Next(2, false) != 1 {
		t.Fatal("middle transitions wrong")
	}
}

func TestTakenThreshold(t *testing.T) {
	for ctr, want := range map[int32]bool{0: false, 1: false, 2: true, 3: true} {
		if Taken(ctr) != want {
			t.Fatalf("Taken(%d) = %v", ctr, Taken(ctr))
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	tab := New(10, 8, nil)
	f := func(pcRaw uint32, ctrRaw uint8) bool {
		pc := uint64(pcRaw)
		ctr := int32(ctrRaw & 3)
		pi := tab.Index(pc)
		tab.Write(pi, ctr)
		return tab.Read(pi) == ctr
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHysteresisSharing(t *testing.T) {
	// With logPred=4, logHyst=2, indices 0..3 share hysteresis bit 0.
	tab := New(4, 2, nil)
	tab.Write(0, 3) // pred[0]=1, hyst[0]=1
	tab.Write(1, 0) // pred[1]=0, hyst[0]=0 -- shared!
	// Entry 0 now reads pred=1, hyst=0 -> counter 2.
	if got := tab.Read(0); got != 2 {
		t.Fatalf("shared hysteresis: Read(0) = %d, want 2", got)
	}
}

func TestTrainingConvergence(t *testing.T) {
	s := NewStandalone(10, 8)
	pc := uint64(0x400100)
	var ctx Ctx
	// After a few taken outcomes the predictor must predict taken.
	for i := 0; i < 4; i++ {
		s.Predict(pc, &ctx)
		s.Retire(pc, true, &ctx, true)
	}
	if !s.Predict(pc, &ctx) {
		t.Fatal("did not learn an always-taken branch")
	}
}

func TestSilentWriteAccounting(t *testing.T) {
	s := NewStandalone(8, 6)
	pc := uint64(0x40)
	var ctx Ctx
	for i := 0; i < 10; i++ {
		s.Predict(pc, &ctx)
		s.Retire(pc, true, &ctx, true)
	}
	st := s.AccessStats()
	// Counter saturates after 3 updates; the remaining updates are silent.
	if st.EntryWrites == 0 || st.SilentSkipped == 0 {
		t.Fatalf("stats = %+v, want both effective and silent writes", st)
	}
	if st.SilentSkipped < st.EntryWrites {
		t.Fatalf("saturated counter should be mostly silent: %+v", st)
	}
}

func TestStorageBits(t *testing.T) {
	// Reference TAGE base: 32K prediction bits + 8K hysteresis bits.
	tab := New(15, 13, nil)
	if got := tab.StorageBits(); got != 32768+8192 {
		t.Fatalf("StorageBits = %d, want 40960", got)
	}
}

func TestNewPanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when logHyst > logPred")
		}
	}()
	New(4, 6, nil)
}
