package bimodal

import "repro/internal/checkpoint"

// Snapshot writes the prediction and hysteresis arrays (the table's
// only dynamic state; shape and the shared stats stay with the owner).
func (t *Table) Snapshot(enc *checkpoint.Encoder) {
	enc.U8s(t.pred)
	enc.U8s(t.hyst)
}

// LoadSnapshot restores a Snapshot into a table of the same geometry.
func (t *Table) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.U8sInto(t.pred)
	dec.U8sInto(t.hyst)
}

// Snapshot implements predictor.Predictor.
func (s *Standalone) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("bimodal", 1)
	s.t.Snapshot(enc)
	s.t.stats.Snapshot(enc)
	enc.End()
}

// Restore implements predictor.Predictor.
func (s *Standalone) Restore(dec *checkpoint.Decoder) {
	dec.Open("bimodal", 1)
	s.t.LoadSnapshot(dec)
	s.t.stats.LoadSnapshot(dec)
	dec.Close()
}
