// Package bimodal implements the PC-indexed bimodal predictor used as the
// tagless base component T0 of TAGE (Section 3): a table of 2-bit counters
// split into a prediction-bit array and a smaller shared hysteresis array
// ("32K prediction bits + 8K hysteresis bits" in the reference predictor,
// i.e. 4 prediction entries share one hysteresis bit).
package bimodal

import (
	"fmt"

	"repro/internal/memarray"
)

// Table is the bimodal storage. The logical 2-bit counter of entry i is
// (pred[i] << 1) | hyst[i >> share]: values 0..3, taken when >= 2.
type Table struct {
	pred    []uint8
	hyst    []uint8
	pMask   uint32
	hShift  uint
	stats   *memarray.Stats
	logPred uint
	logHyst uint
}

// New creates a bimodal table with 2^logPred prediction bits and 2^logHyst
// hysteresis bits (logHyst <= logPred). stats may be nil.
func New(logPred, logHyst uint, stats *memarray.Stats) *Table {
	if logHyst > logPred {
		panic("bimodal: more hysteresis than prediction bits")
	}
	if stats == nil {
		stats = &memarray.Stats{}
	}
	t := &Table{
		pred:    make([]uint8, 1<<logPred),
		hyst:    make([]uint8, 1<<logHyst),
		pMask:   uint32(1<<logPred - 1),
		hShift:  logPred - logHyst,
		stats:   stats,
		logPred: logPred,
		logHyst: logHyst,
	}
	// Initialise to weakly not-taken (counter value 1): pred=0, hyst=1,
	// the conventional bimodal reset state.
	for i := range t.hyst {
		t.hyst[i] = 1
	}
	return t
}

// Reset returns every counter to the weakly not-taken construction state
// (pred 0, hyst 1), reusing both arrays. The shared stats object is left
// untouched: it may be owned by an enclosing predictor that resets it once.
func (t *Table) Reset() {
	for i := range t.pred {
		t.pred[i] = 0
	}
	for i := range t.hyst {
		t.hyst[i] = 1
	}
}

// Index returns the prediction-array index for pc.
func (t *Table) Index(pc uint64) uint32 { return uint32(pc>>2) & t.pMask }

// IndexBanked returns the prediction-array index under bank interleaving
// (Section 4.3 applied to the base predictor): the bank supplies the top
// bits of the physical index, so the same PC may train up to `banks`
// entries depending on its dynamic neighbours.
func (t *Table) IndexBanked(pc uint64, bank, banks int) uint32 {
	per := (t.pMask + 1) / uint32(banks)
	return uint32(bank)*per + uint32(pc>>2)&(per-1)
}

// Read returns the current 2-bit counter value (0..3) at index pi.
func (t *Table) Read(pi uint32) int32 {
	return int32(t.pred[pi])<<1 | int32(t.hyst[pi>>(t.hShift&31)])
}

// Taken reports the direction predicted by a counter value.
func Taken(ctr int32) bool { return ctr >= 2 }

// Write stores the 2-bit counter newCtr at index pi, accounting silent
// writes per bit-array (the prediction and hysteresis arrays are physically
// distinct, so each is accounted separately). The store itself is
// unconditional — rewriting an equal byte is free, while branching on the
// comparison costs a mispredict on this data-dependent path — and only the
// accounting uses the comparison result.
func (t *Table) Write(pi uint32, newCtr int32) {
	p := uint8(newCtr >> 1)
	h := uint8(newCtr & 1)
	effP := t.pred[pi] != p
	t.pred[pi] = p
	t.stats.RecordWrite(effP)
	hi := pi >> (t.hShift & 31)
	effH := t.hyst[hi] != h
	t.hyst[hi] = h
	t.stats.RecordWrite(effH)
}

// Next returns the counter moved one step toward the outcome, saturating
// in [0, 3]. Conditional-move form: the outcome is a coin flip, so a branch
// on it would mispredict half the time.
func Next(ctr int32, taken bool) int32 {
	d := int32(-1)
	if taken {
		d = 1
	}
	n := ctr + d
	if n > 3 {
		n = 3
	}
	if n < 0 {
		n = 0
	}
	return n
}

// StorageBits returns the storage cost in bits.
func (t *Table) StorageBits() int { return len(t.pred) + len(t.hyst) }

// Ctx is the pipeline context of a standalone bimodal predictor.
type Ctx struct {
	Index uint32
	Ctr   int32 // counter value read at prediction time
}

// Standalone wraps Table as a complete predictor (used by the Figure 3
// delayed-update example and tests).
type Standalone struct {
	t    *Table
	name string // formatted once: Name is on the per-run result path
}

// NewStandalone returns a standalone bimodal predictor.
func NewStandalone(logPred, logHyst uint) *Standalone {
	s := &Standalone{t: New(logPred, logHyst, nil)}
	s.name = fmt.Sprintf("bimodal-%dKb", s.StorageBits()/1024)
	return s
}

// Name implements predictor.Predictor.
func (s *Standalone) Name() string { return s.name }

// StorageBits implements predictor.Predictor.
func (s *Standalone) StorageBits() int { return s.t.StorageBits() }

// Predict implements predictor.Predictor.
func (s *Standalone) Predict(pc uint64, ctx *Ctx) bool {
	ctx.Index = s.t.Index(pc)
	ctx.Ctr = s.t.Read(ctx.Index)
	return Taken(ctx.Ctr)
}

// OnResolve implements predictor.Predictor. Bimodal keeps no history.
func (s *Standalone) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {}

// Retire implements predictor.Predictor.
func (s *Standalone) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	old := ctx.Ctr
	if reread {
		old = s.t.Read(ctx.Index)
	}
	s.t.Write(ctx.Index, Next(old, taken))
}

// AccessStats implements predictor.Predictor.
func (s *Standalone) AccessStats() *memarray.Stats { return s.t.stats }

// Reset implements predictor.Predictor.
func (s *Standalone) Reset() {
	s.t.Reset()
	s.t.stats.Reset()
}
