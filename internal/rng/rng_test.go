package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64.c.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("value %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := NewXoshiro(7)
	b := NewXoshiro(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := NewXoshiro(1)
	b := NewXoshiro(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := NewXoshiro(3)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := x.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewXoshiro(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	x := NewXoshiro(9)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	x := NewXoshiro(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += x.Float64()
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Fatalf("mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	x := NewXoshiro(13)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if x.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.28 || frac > 0.32 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewXoshiro(5)
	a := parent.Fork(1)
	b := parent.Fork(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("forked streams correlated: %d/100 identical", same)
	}
}

func TestForkDeterministic(t *testing.T) {
	mk := func() *Xoshiro { return NewXoshiro(99).Fork(42) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("fork not deterministic at %d", i)
		}
	}
}

func TestUint32Coverage(t *testing.T) {
	x := NewXoshiro(17)
	var or, and uint32 = 0, 0xffffffff
	for i := 0; i < 10000; i++ {
		v := x.Uint32()
		or |= v
		and &= v
	}
	if or != 0xffffffff {
		t.Fatalf("some bits never set: %#x", or)
	}
	if and != 0 {
		t.Fatalf("some bits always set: %#x", and)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := NewXoshiro(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}
