// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the workload generator and by predictor allocation
// policies. Determinism matters: every experiment in this repository must be
// exactly reproducible from a seed, so we do not use math/rand's global
// state anywhere.
package rng

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both directly (for seeding) and as the seed expander for Xoshiro.
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the sequence.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro is the xoshiro256** generator of Blackman and Vigna: fast,
// 256 bits of state, and passes stringent statistical tests. It drives all
// stochastic choices in synthetic workloads.
type Xoshiro struct {
	s [4]uint64
}

// NewXoshiro returns a generator whose state is expanded from seed with
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro(seed uint64) *Xoshiro {
	sm := NewSplitMix64(seed)
	var x Xoshiro
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// A state of all zeros is the one invalid state; seed expansion via
	// splitmix64 cannot produce it for any seed, but guard regardless.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

// Reseed rewinds the generator in place to the state NewXoshiro(seed)
// would produce, so pooled owners can restart a deterministic stream
// without allocating.
func (x *Xoshiro) Reseed(seed uint64) {
	sm := NewSplitMix64(seed)
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the sequence.
func (x *Xoshiro) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint32 returns the next value truncated to 32 bits.
func (x *Xoshiro) Uint32() uint32 { return uint32(x.Uint64() >> 32) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	// Multiply-shift range reduction (Lemire). The tiny modulo bias of the
	// plain form is irrelevant for workload synthesis but the multiply-shift
	// form is bias-free enough and avoids division.
	return int((uint64(x.Uint32()) * uint64(n)) >> 32)
}

// Float64 returns a uniform value in [0, 1).
func (x *Xoshiro) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (x *Xoshiro) Bool(p float64) bool { return x.Float64() < p }

// Fork returns a new generator deterministically derived from this one and
// the given stream label, so independent sub-streams can be created without
// correlations (e.g. one stream per static branch site).
func (x *Xoshiro) Fork(label uint64) *Xoshiro {
	sm := NewSplitMix64(x.Uint64() ^ (label * 0x9e3779b97f4a7c15))
	return NewXoshiro(sm.Uint64())
}
