package rng

import "repro/internal/checkpoint"

// Snapshot writes the generator's full 256-bit state.
func (x *Xoshiro) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(x.s[0])
	enc.U64(x.s[1])
	enc.U64(x.s[2])
	enc.U64(x.s[3])
}

// LoadSnapshot restores the generator state. An all-zero stored state
// (which would trap xoshiro at zero forever) is rejected as corrupt.
func (x *Xoshiro) LoadSnapshot(dec *checkpoint.Decoder) {
	s0 := dec.U64()
	s1 := dec.U64()
	s2 := dec.U64()
	s3 := dec.U64()
	if dec.Err() != nil {
		return
	}
	if s0|s1|s2|s3 == 0 {
		dec.Failf("rng state is all zero (xoshiro fixed point)")
		return
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}
