// Package ium implements the Immediate Update Mimicker of Section 5.1: a
// FIFO of in-flight branches recording which predictor entry (table number
// and index) provided each prediction, together with the branch outcome
// once the branch has executed. When a new prediction is served by the
// same table entry as an already-executed but not-yet-retired branch, the
// combined (TAGE + IUM) predictor responds from the IUM instead of the
// stale table entry, recovering most of the mispredictions caused by
// retire-time update of the predictor tables.
//
// Implementation note: the paper's text says the IUM responds with "the
// execution outcome" of the in-flight branch. We mimic the immediate
// update faithfully instead: each in-flight record carries the value the
// provider counter would hold had it been updated at execution, and the
// override is that counter's sign. For weak (learning) entries the two
// formulations coincide — the counter flips after one outcome — while for
// saturated counters outcome-replay would spuriously invert confident
// predictions on noisy branches. The counter formulation is what
// "mimicking the immediate update" computes.
package ium

import "repro/internal/bitutil"

// Entry is one in-flight branch record: the identity of the predictor
// entry that provided the prediction (P/T/A in Figure 4) and the provider
// counter as it would read after an immediate update.
type Entry struct {
	Table  int    // provider component (0 = base predictor)
	Index  uint32 // index within the provider component
	Ctr    int32  // speculative provider counter after this branch executes
	seq    uint64 // fetch sequence number
	forced bool   // marked executed early (pipeline drain)
}

// Buffer is the IUM storage: a circular buffer with one entry per in-flight
// branch, searched associatively from youngest to oldest.
type Buffer struct {
	ring      []Entry
	head      int // oldest entry
	count     int
	seq       uint64 // fetch sequence counter
	execDelay uint64 // fetch-to-execute distance in branches

	// Lookups/Hits instrument how often the IUM overrides the prediction.
	Lookups uint64
	Hits    uint64
}

// New creates a buffer holding up to capacity in-flight branches with the
// given fetch-to-execute delay (in branches). An entry only becomes usable
// for prediction override once its branch has executed.
func New(capacity int, execDelay int) *Buffer {
	if capacity < 1 {
		capacity = 1
	}
	return &Buffer{ring: make([]Entry, capacity), execDelay: uint64(execDelay)}
}

// Reset empties the buffer and rewinds the fetch sequence and hit
// accounting to the construction state, reusing the ring storage.
func (b *Buffer) Reset() {
	for i := range b.ring {
		b.ring[i] = Entry{}
	}
	b.head, b.count, b.seq = 0, 0, 0
	b.Lookups, b.Hits = 0, 0
}

// Push records a fetched branch with the provider-counter value after its
// (eventual) execution-time update. If the buffer is full the oldest entry
// is dropped.
func (b *Buffer) Push(table int, index uint32, ctr int32) {
	if b.count == len(b.ring) {
		b.head = (b.head + 1) % len(b.ring)
		b.count--
	}
	pos := (b.head + b.count) % len(b.ring)
	b.ring[pos] = Entry{Table: table, Index: index, Ctr: ctr, seq: b.seq}
	b.count++
	b.seq++
}

// executed reports whether the entry's branch has executed: either enough
// younger branches have been fetched, or a pipeline drain marked it.
func (b *Buffer) executed(e *Entry) bool {
	return e.forced || b.seq >= e.seq+b.execDelay
}

// Lookup searches, youngest first, for an executed in-flight branch whose
// prediction came from the same predictor entry. On a hit it returns the
// speculative counter — the value the table entry would hold under
// immediate update (Figure 4: "Same table, same entry = use the outcome
// instead of TAGE").
func (b *Buffer) Lookup(table int, index uint32) (ctr int32, ok bool) {
	b.Lookups++
	for i := b.count - 1; i >= 0; i-- {
		e := &b.ring[(b.head+i)%len(b.ring)]
		if e.Table == table && e.Index == index && b.executed(e) {
			b.Hits++
			return e.Ctr, true
		}
	}
	return 0, false
}

// LookupAny is like Lookup but also matches entries that have not yet
// executed (used by tests to inspect buffer contents).
func (b *Buffer) LookupAny(table int, index uint32) (ctr int32, ok bool) {
	for i := b.count - 1; i >= 0; i-- {
		e := &b.ring[(b.head+i)%len(b.ring)]
		if e.Table == table && e.Index == index {
			return e.Ctr, true
		}
	}
	return 0, false
}

// OnMispredict models the pipeline drain that follows a misprediction: by
// the time fetch resumes on the corrected path, the in-flight branches
// have executed, so their counters become visible to lookups immediately.
func (b *Buffer) OnMispredict() {
	for i := 0; i < b.count; i++ {
		b.ring[(b.head+i)%len(b.ring)].forced = true
	}
}

// PopOldest removes the oldest in-flight entry (called when the branch
// retires; the predictor tables now hold its update so the IUM record is
// no longer needed).
func (b *Buffer) PopOldest() {
	if b.count == 0 {
		return
	}
	b.head = (b.head + 1) % len(b.ring)
	b.count--
}

// Len returns the number of in-flight entries.
func (b *Buffer) Len() int { return b.count }

// HitRate returns the fraction of lookups served by the IUM.
func (b *Buffer) HitRate() float64 {
	if b.Lookups == 0 {
		return 0
	}
	return float64(b.Hits) / float64(b.Lookups)
}

// NextCtr advances a speculative provider counter by one outcome,
// saturating at the given width. Exported so the predictor pushing entries
// applies exactly the update the tables would apply.
func NextCtr(ctr int32, taken bool, bits uint) int32 {
	return bitutil.SatUpdateSigned(ctr, taken, bits)
}
