package ium

import "testing"

func TestLookupRequiresExecution(t *testing.T) {
	b := New(16, 4)
	b.Push(3, 100, 2)
	// Not yet executed: only 1 fetch since push.
	if _, ok := b.Lookup(3, 100); ok {
		t.Fatal("entry should not be usable before execute delay")
	}
	// Push filler branches to age the entry past the execute delay.
	for i := 0; i < 4; i++ {
		b.Push(1, uint32(i), -1)
	}
	ctr, ok := b.Lookup(3, 100)
	if !ok || ctr != 2 {
		t.Fatalf("expected executed hit with ctr=2, got ok=%v ctr=%v", ok, ctr)
	}
}

func TestLookupYoungestFirst(t *testing.T) {
	b := New(16, 0) // immediate execution for this test
	b.Push(2, 55, -3)
	b.Push(2, 55, 1) // younger occurrence of the same entry
	ctr, ok := b.Lookup(2, 55)
	if !ok || ctr != 1 {
		t.Fatal("lookup must return the youngest matching entry")
	}
}

func TestLookupKeyMatching(t *testing.T) {
	b := New(8, 0)
	b.Push(1, 10, 1)
	if _, ok := b.Lookup(1, 11); ok {
		t.Fatal("different index must not match")
	}
	if _, ok := b.Lookup(2, 10); ok {
		t.Fatal("different table must not match")
	}
}

func TestOnMispredictForcesExecution(t *testing.T) {
	b := New(16, 100) // would normally never execute in this test
	b.Push(5, 7, 3)
	if _, ok := b.Lookup(5, 7); ok {
		t.Fatal("should not be executed yet")
	}
	b.OnMispredict()
	if _, ok := b.Lookup(5, 7); !ok {
		t.Fatal("drain must mark entries executed")
	}
}

func TestPopOldest(t *testing.T) {
	b := New(8, 0)
	b.Push(1, 1, 1)
	b.Push(1, 2, -1)
	b.PopOldest()
	if b.Len() != 1 {
		t.Fatalf("len = %d, want 1", b.Len())
	}
	if _, ok := b.Lookup(1, 1); ok {
		t.Fatal("popped entry must not match")
	}
	if _, ok := b.Lookup(1, 2); !ok {
		t.Fatal("remaining entry must match")
	}
	b.PopOldest()
	b.PopOldest() // extra pop on empty buffer must be safe
	if b.Len() != 0 {
		t.Fatal("buffer should be empty")
	}
}

func TestOverflowDropsOldest(t *testing.T) {
	b := New(2, 0)
	b.Push(1, 1, 1)
	b.Push(1, 2, 1)
	b.Push(1, 3, 1) // evicts entry (1,1)
	if b.Len() != 2 {
		t.Fatalf("len = %d, want 2", b.Len())
	}
	if _, ok := b.Lookup(1, 1); ok {
		t.Fatal("evicted entry must not match")
	}
	if _, ok := b.Lookup(1, 3); !ok {
		t.Fatal("new entry must match")
	}
}

func TestHitRate(t *testing.T) {
	b := New(8, 0)
	b.Push(1, 1, 1)
	b.Lookup(1, 1) // hit
	b.Lookup(1, 9) // miss
	if b.HitRate() != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", b.HitRate())
	}
}

func TestWraparound(t *testing.T) {
	b := New(4, 0)
	for i := 0; i < 100; i++ {
		b.Push(1, uint32(i), int32(i%5)-2)
		if i >= 2 && i%3 == 0 {
			b.PopOldest()
		}
	}
	if b.Len() < 1 || b.Len() > 4 {
		t.Fatalf("len = %d out of bounds", b.Len())
	}
}

// TestCounterMimicking verifies the defining property: the IUM tracks the
// counter value an immediate update would produce, so one deviation does
// not flip a saturated counter but does flip a weak one.
func TestCounterMimicking(t *testing.T) {
	// Saturated counter at +3 (3-bit): one not-taken outcome -> +2, sign
	// unchanged: the override still predicts taken.
	c := NextCtr(3, false, 3)
	if c != 2 || c < 0 {
		t.Fatalf("saturated counter after one deviation = %d, want 2", c)
	}
	// Weak counter at 0: one not-taken outcome flips the sign.
	c = NextCtr(0, false, 3)
	if c != -1 {
		t.Fatalf("weak counter after deviation = %d, want -1", c)
	}
	// Chains accumulate: two more not-taken outcomes keep descending.
	c = NextCtr(NextCtr(c, false, 3), false, 3)
	if c != -3 {
		t.Fatalf("chained counter = %d, want -3", c)
	}
	// Saturation floor.
	for i := 0; i < 10; i++ {
		c = NextCtr(c, false, 3)
	}
	if c != -4 {
		t.Fatalf("floor = %d, want -4", c)
	}
}

func TestLookupAny(t *testing.T) {
	b := New(8, 50)
	b.Push(2, 9, 1)
	if _, ok := b.Lookup(2, 9); ok {
		t.Fatal("Lookup must respect execution gating")
	}
	if ctr, ok := b.LookupAny(2, 9); !ok || ctr != 1 {
		t.Fatal("LookupAny must ignore execution gating")
	}
}
