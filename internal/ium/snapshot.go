package ium

import "repro/internal/checkpoint"

// Snapshot writes the buffer's dynamic state: every ring slot (the
// circular layout is preserved verbatim), the head/count cursors, the
// fetch sequence, and the hit accounting. Capacity and execDelay are
// construction parameters and stay with the configuration.
func (b *Buffer) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("ium", 1)
	enc.U32(uint32(len(b.ring)))
	for i := range b.ring {
		e := &b.ring[i]
		enc.Int(e.Table)
		enc.U32(e.Index)
		enc.I32(e.Ctr)
		enc.U64(e.seq)
		enc.Bool(e.forced)
	}
	enc.Int(b.head)
	enc.Int(b.count)
	enc.U64(b.seq)
	enc.U64(b.Lookups)
	enc.U64(b.Hits)
	enc.End()
}

// LoadSnapshot restores a Snapshot into a buffer of the same capacity,
// validating the cursors against that capacity.
func (b *Buffer) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.Open("ium", 1)
	n := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	if n != len(b.ring) {
		dec.Failf("ium ring holds %d slots, this configuration needs %d", n, len(b.ring))
		return
	}
	for i := range b.ring {
		e := &b.ring[i]
		e.Table = dec.Int()
		e.Index = dec.U32()
		e.Ctr = dec.I32()
		e.seq = dec.U64()
		e.forced = dec.Bool()
	}
	head := dec.Int()
	count := dec.Int()
	seq := dec.U64()
	lookups := dec.U64()
	hits := dec.U64()
	dec.Close()
	if dec.Err() != nil {
		return
	}
	if head < 0 || head >= len(b.ring) || count < 0 || count > len(b.ring) {
		dec.Failf("ium cursors (head %d, count %d) out of range for %d slots", head, count, len(b.ring))
		return
	}
	b.head, b.count, b.seq = head, count, seq
	b.Lookups, b.Hits = lookups, hits
}
