package core
