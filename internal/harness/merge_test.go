package harness

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/predictor"
)

// runGrid executes a fake-model grid and returns every emitted record.
func runGrid(t *testing.T, models []string, traces []string, cfg Config) []Record {
	t.Helper()
	ms := make([]Model, len(models))
	for i, m := range models {
		ms[i] = fakeModel(m, func(tr string) float64 { return float64(len(m) + len(tr)) })
	}
	matrix := testMatrix(t, ms, traces, []predictor.Scenario{predictor.ScenarioA, predictor.ScenarioC}, []int{100})
	var sink collectSink
	if _, err := Run(matrix, cfg, &sink); err != nil {
		t.Fatal(err)
	}
	return sink.recs
}

// TestMergeModelPartitionEqualsUnionRun is the core merge property: a
// sweep partitioned across workers by model (the first matrix axis) and
// merged back is record-for-record identical to the same sweep run
// uninterrupted — including the aggregates, which group strictly within
// one model so no float-summation order changes.
func TestMergeModelPartitionEqualsUnionRun(t *testing.T) {
	traces := []string{"INT01", "INT02", "MM01"}
	whole := runGrid(t, []string{"ma", "mb"}, traces, Config{})
	partA := runGrid(t, []string{"ma"}, traces, Config{})
	partB := runGrid(t, []string{"mb"}, traces, Config{})

	merged, stats, err := MergeStores(partA, partB)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(scrubTiming(merged), scrubTiming(whole)) {
		t.Fatalf("merged partitions diverge from the union run\n got %d records\nwant %d records", len(merged), len(whole))
	}
	if stats.CellsOut != 12 { // 2 models x 3 traces x 2 scenarios
		t.Fatalf("CellsOut = %d, want 12", stats.CellsOut)
	}
	if stats.AggregatesOut == 0 {
		t.Fatal("merge dropped the aggregates")
	}
}

// TestMergeTracePartitionEqualsUnionRun partitions by trace instead:
// cell order differs from the union run (first-appearance across the
// two stores), so compare as sets, and aggregates must still roll up
// the union.
func TestMergeTracePartitionEqualsUnionRun(t *testing.T) {
	whole := runGrid(t, []string{"ma"}, []string{"INT01", "INT02", "MM01", "MM02"}, Config{})
	partA := runGrid(t, []string{"ma"}, []string{"INT01", "MM01"}, Config{})
	partB := runGrid(t, []string{"ma"}, []string{"INT02", "MM02"}, Config{})

	merged, _, err := MergeStores(partA, partB)
	if err != nil {
		t.Fatal(err)
	}
	byKey := func(recs []Record) map[string]Record {
		m := make(map[string]Record)
		for _, r := range scrubTiming(recs) {
			switch r.Kind {
			case KindCell, "":
				m["cell/"+r.Key()] = r
			default:
				m[r.Kind+"/"+r.Model+"/"+r.Category+"/"+r.Scenario] = r
			}
		}
		return m
	}
	got, want := byKey(merged), byKey(whole)
	if len(got) != len(want) {
		t.Fatalf("merged has %d distinct records, union run has %d", len(got), len(want))
	}
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if !reflect.DeepEqual(got[k], want[k]) {
			t.Fatalf("record %s diverges\n got: %+v\nwant: %+v", k, got[k], want[k])
		}
	}
}

// TestMergeRecomputesMissingAggregates: stores produced with
// NoAggregates still merge into a store with one full aggregate set.
func TestMergeRecomputesMissingAggregates(t *testing.T) {
	partA := runGrid(t, []string{"ma"}, []string{"INT01"}, Config{NoAggregates: true})
	partB := runGrid(t, []string{"ma"}, []string{"INT02"}, Config{NoAggregates: true})
	merged, stats, err := MergeStores(partA, partB)
	if err != nil {
		t.Fatal(err)
	}
	if stats.AggregatesIn != 0 {
		t.Fatalf("AggregatesIn = %d, want 0", stats.AggregatesIn)
	}
	if stats.AggregatesOut == 0 {
		t.Fatal("merge did not recompute aggregates for cell-only stores")
	}
	var aggs int
	for _, r := range merged {
		if r.Kind != KindCell && r.Kind != "" {
			aggs++
		}
	}
	if aggs != stats.AggregatesOut {
		t.Fatalf("stats say %d aggregates, stream holds %d", stats.AggregatesOut, aggs)
	}
}

// TestMergeNewestSuccessWins: a failed cell in an earlier store is
// superseded by the later store's success.
func TestMergeNewestSuccessWins(t *testing.T) {
	fail := Record{Kind: KindCell, Model: "m", Trace: "INT01", Scenario: "A", Branches: 100, Err: "worker died"}
	okay := Record{Kind: KindCell, Model: "m", Trace: "INT01", Scenario: "A", Branches: 100, Window: 24, ExecDelay: 6, MPKI: 2, MPPKI: 40}
	merged, stats, err := MergeStores([]Record{fail}, []Record{okay})
	if err != nil {
		t.Fatal(err)
	}
	if stats.CellsOut != 1 || merged[0].Failed() {
		t.Fatalf("merged = %+v (stats %+v), want the success to win", merged, stats)
	}
}

// TestMergeRefusesConflictingStores: same cell key measured under a
// different pipeline configuration or model spec is an experiment
// mismatch, not a mergeable union.
func TestMergeRefusesConflictingStores(t *testing.T) {
	base := Record{Kind: KindCell, Model: "m", Trace: "INT01", Scenario: "A", Branches: 100, Window: 24, ExecDelay: 6, MPKI: 2}

	otherWindow := base
	otherWindow.Window = 48
	if _, _, err := MergeStores([]Record{base}, []Record{otherWindow}); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("window conflict not refused: %v", err)
	}

	specA, specB := base, base
	specA.Spec = "tage:tables=9"
	specB.Spec = "tage:tables=13"
	if _, _, err := MergeStores([]Record{specA}, []Record{specB}); err == nil || !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("spec conflict not refused: %v", err)
	}

	// A failed record carries no pipeline config (see failedRecord) and
	// must never manufacture a conflict.
	failed := Record{Kind: KindCell, Model: "m", Trace: "INT01", Scenario: "A", Branches: 100, Err: "boom"}
	if _, _, err := MergeStores([]Record{base}, []Record{failed}); err != nil {
		t.Fatalf("failed record caused a bogus conflict: %v", err)
	}
}
