package harness

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The resumable result store: a saved JSONL run is append-only, and a
// resume run re-executes only the cells the store is missing (or that
// failed), appending the new records — so an interrupted multi-hour
// sweep continues where it stopped instead of restarting, and re-running
// a completed sweep executes zero simulator jobs.

// ReadStoreFile reads a resume store, tolerating the damage an
// interrupted run leaves behind: a final line that is unterminated or
// unparseable (the process died mid-write) is treated as a crash tail —
// dropped from the records and excluded from the returned valid byte
// length, so the caller can truncate to validLen before appending. A
// bad line *followed by* more data is genuine corruption and errors. A
// missing file is an error (callers decide whether that starts a fresh
// store).
//
// Records are schema-migrated in place as they are read: a record whose
// provenance names a schema newer than this binary's SchemaVersion is
// rejected with a clear error (never silently dropped — it is real data
// from a newer binary, not a crash tail), and records from older schemas
// are upgraded to the current shape (see migrateRecord).
//
// The store is read as a stream, one line in memory at a time, so a
// multi-gigabyte store costs its record slice and nothing more — the
// byte accounting (and therefore where a crash tail starts) is
// identical to what reading the whole file at once would compute.
func ReadStoreFile(path string) (recs []Record, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64*1024)
	for {
		line, readErr := br.ReadBytes('\n')
		if readErr == io.EOF {
			// Whatever ReadBytes accumulated has no terminator: an
			// unterminated tail from a crash mid-write, dropped.
			break
		}
		if readErr != nil {
			return nil, 0, fmt.Errorf("%s: reading store: %w", path, readErr)
		}
		content := line[:len(line)-1]
		if len(bytes.TrimSpace(content)) > 0 {
			var r Record
			if jsonErr := json.Unmarshal(content, &r); jsonErr != nil {
				if tailHasData(br) {
					return nil, 0, fmt.Errorf("%s: store corrupt at byte %d (not a crash tail: more records follow): %w", path, validLen, jsonErr)
				}
				break // bad final line: crash tail
			}
			if err := migrateRecord(&r); err != nil {
				return nil, 0, fmt.Errorf("%s: record at byte %d: %w", path, validLen, err)
			}
			recs = append(recs, r)
		}
		validLen += int64(len(line))
	}
	return recs, validLen, nil
}

// tailHasData reports whether anything non-whitespace remains in the
// stream — the test that distinguishes a crash tail (garbage last
// line, nothing after) from mid-store corruption. Scans in fixed-size
// chunks; never buffers the remainder.
func tailHasData(br *bufio.Reader) bool {
	var buf [32 * 1024]byte
	for {
		n, err := br.Read(buf[:])
		if len(bytes.TrimSpace(buf[:n])) > 0 {
			return true
		}
		if err != nil {
			return false
		}
	}
}

// migrateRecord upgrades a stored record to the current schema, or
// rejects it when it was written by a newer binary than this one (whose
// fields this binary could misinterpret or silently drop on rewrite).
// Upgrades applied:
//
//   - schema < 3: the Spec field did not exist. The model identifier has
//     always been the canonical spec for named models ("tage") and scaled
//     variants ("tage@+2"), so it backfills Spec — letting pre-spec
//     stores participate in spec-validated resumes.
//   - schema < 4: the TraceSpec field did not exist, but needs no
//     backfill — every trace identity those schemas could record (named
//     benchmarks) is its own spec, which is exactly what an empty
//     TraceSpec means.
func migrateRecord(r *Record) error {
	schema := 1 // records that predate provenance stamping
	if r.Provenance != nil && r.Provenance.Schema > 0 {
		schema = r.Provenance.Schema
	}
	if schema > SchemaVersion {
		return fmt.Errorf("harness: record written under store schema %d, but this binary understands at most schema %d; re-read the store with the newer binary that wrote it", schema, SchemaVersion)
	}
	if schema < 3 && r.Spec == "" {
		r.Spec = r.Model
	}
	return nil
}

// ResumePlan partitions an expanded job list against a prior record
// stream (typically ReadRecordsFile on the run's own output).
type ResumePlan struct {
	// Jobs is the full expansion, in matrix order.
	Jobs []Job
	// Todo lists the jobs to execute: cells with no successful prior
	// record. It is a subsequence of Jobs, so appended records extend the
	// store in expansion order.
	Todo []Job
	// Reused maps cell keys to the prior successful records standing in
	// for the skipped jobs.
	Reused map[string]Record
	// PriorHasAggregates reports whether the prior stream already ends in
	// aggregate records, i.e. the stored run completed. A resume that has
	// nothing to execute against such a store appends nothing at all.
	PriorHasAggregates bool
	// ConfigConflicts lists cells whose stored record was simulated under
	// a different pipeline configuration (window, exec delay) than the
	// matrix requests. Such records are never reused — mixing pipeline
	// models in one store would silently change what the aggregates
	// measure — and callers should surface the conflict rather than let a
	// sweep ping-pong between configurations in the same store.
	ConfigConflicts []string
	// ProvenanceDrift lists reused cells whose recorded revision cannot
	// be trusted to match the head provenance the plan was built
	// against: a different git SHA, or uncommitted changes on either
	// side of the same SHA (a dirty measurement is unreproducible from
	// its SHA alone, and a dirty HEAD may no longer be the tree that
	// produced it). Unlike ConfigConflicts these are warnings, not
	// refusals — the cells are still reused (re-running them is exactly
	// what -resume avoids) — but a caller comparing across the store
	// should know it now spans revisions. Empty when planning with a
	// zero-SHA head (in-memory runs) or when the store predates
	// provenance stamping.
	ProvenanceDrift []string
}

// PlanResume builds the resume plan for jobs against prior records. A
// cell is reusable when the store holds a successful record under its
// key *and* the record's pipeline configuration matches the one the job
// would run (zero Window/ExecDelay in the matrix resolve to the sim
// defaults before comparing); failed cells are re-run (their error
// records stay in the append-only store — the newest record for a key
// wins on read). Prior records whose keys the matrix does not expand to
// are ignored, so one store can accumulate several overlapping sweeps.
//
// head is the provenance the new records would be stamped with
// (CurrentProvenance for a persisted store); a reused cell recorded
// under a different git SHA is flagged in ProvenanceDrift. A zero head
// disables the drift check.
func PlanResume(jobs []Job, prior []Record, head Provenance) *ResumePlan {
	plan := &ResumePlan{Jobs: jobs, Reused: make(map[string]Record)}
	ok := make(map[string]Record)
	for _, r := range prior {
		switch r.Kind {
		case KindCell, "":
			if !r.Failed() {
				ok[r.Key()] = r
			}
		default:
			plan.PriorHasAggregates = true
		}
	}
	for _, j := range jobs {
		key := j.Key()
		if r, have := ok[key]; have {
			wantW, wantD := effectivePipeline(j)
			switch {
			case r.Window != wantW || r.ExecDelay != wantD:
				plan.ConfigConflicts = append(plan.ConfigConflicts, fmt.Sprintf(
					"%s: stored window/execdelay %d/%d, requested %d/%d",
					key, r.Window, r.ExecDelay, wantW, wantD))
			case r.Spec != "" && j.Model.Spec != "" && r.Spec != j.Model.Spec:
				// The cell key matched but the recorded configuration did
				// not: the store was written when this model name meant a
				// different predictor. Reusing the record would silently
				// mix configurations under one key.
				plan.ConfigConflicts = append(plan.ConfigConflicts, fmt.Sprintf(
					"%s: stored model spec %q, requested %q",
					key, r.Spec, j.Model.Spec))
			case traceSpecMismatch(j.Spec, r):
				// Same guard on the trace axis: the stored record was
				// generated from a different workload description than the
				// one this run would regenerate under the same trace name.
				plan.ConfigConflicts = append(plan.ConfigConflicts, fmt.Sprintf(
					"%s: stored trace spec %q, requested %q",
					key, storedTraceSpec(r), j.Spec.SpecString()))
			default:
				if w := driftWarning(key, r.Provenance, head); w != "" {
					plan.ProvenanceDrift = append(plan.ProvenanceDrift, w)
				}
				plan.Reused[key] = r
				continue
			}
		}
		plan.Todo = append(plan.Todo, j)
	}
	return plan
}

// storedTraceSpec is the resolvable trace spec a record was generated
// from: the explicit TraceSpec when present, else the trace identity
// itself (named benchmarks and generator specs resolve themselves).
func storedTraceSpec(r Record) string {
	if r.TraceSpec != "" {
		return r.TraceSpec
	}
	return r.Trace
}

// traceSpecMismatch reports whether a stored record's workload
// description disagrees with the requested job's. File-backed traces
// are exempt: their trace identity is the content hash, which already
// pins the exact branch stream, and the spec is just the path it was
// loaded from — legitimately different across hosts.
func traceSpecMismatch(s workload.Spec, r Record) bool {
	if strings.HasPrefix(r.Trace, "file:") {
		return false
	}
	return storedTraceSpec(r) != s.SpecString()
}

// driftWarning describes why a reused record's provenance cannot be
// trusted against head, or returns "" when it can (or when either side
// carries no SHA to compare).
func driftWarning(key string, p *Provenance, head Provenance) string {
	if head.GitSHA == "" || p == nil || p.GitSHA == "" {
		return ""
	}
	switch {
	case p.GitSHA != head.GitSHA:
		return fmt.Sprintf("%s: recorded at %s, HEAD is %s", key, p.Short(), head.Short())
	case p.GitDirty || head.GitDirty:
		// Same SHA, but a dirty tree on either side: the SHA alone no
		// longer identifies the code, so the measurement may not match
		// the current tree even though the commits agree.
		return fmt.Sprintf("%s: recorded at %s, HEAD is %s (uncommitted changes in play)",
			key, p.Short(), head.Short())
	}
	return ""
}

// effectivePipeline resolves the job's pipeline options the way the
// simulator will (non-positive selects the default), matching the
// values RunTrace records.
func effectivePipeline(j Job) (window, execDelay int) {
	window, execDelay = j.Opts.Window, j.Opts.ExecDelay
	if window <= 0 {
		window = sim.DefaultWindow
	}
	if execDelay <= 0 {
		execDelay = sim.DefaultExecDelay
	}
	return window, execDelay
}

// ResumeStoreFile is the complete store-backed resume sequence shared
// by `bpbench -resume` and the experiments' ResultStore path: open and
// lock the store at path (a missing file starts a fresh one), read it (a
// crash tail from a killed writer is dropped and truncated away before
// appending), plan jobs against it with cfg.Provenance as the drift
// baseline, refuse on configuration conflicts (mixing pipeline models or
// model specs in one store would silently change what its aggregates
// measure), then execute the plan appending JSONL records to the store.
// onPlan, when non-nil, observes the plan after the conflict check and
// before anything runs — the place to surface ProvenanceDrift warnings —
// and may veto the run by returning an error.
//
// The store is held under an exclusive advisory lock (flock where the
// platform has it, an O_EXCL lockfile elsewhere) for the whole
// read-plan-truncate-append sequence, so two concurrent resumes cannot
// interleave appends into one store: the second opener fails fast with a
// clear error instead of corrupting the stream.
func ResumeStoreFile(path string, jobs []Job, cfg Config, onPlan func(*ResumePlan) error) (*Summary, error) {
	return ResumeStoreFileTee(path, jobs, cfg, onPlan, nil)
}

// ResumeStoreFileTee is ResumeStoreFile with every appended record
// additionally streamed to tee (nil means none): how `bpbench serve`
// both persists a submission into its store and streams the records
// back over the HTTP response without double-running anything. The tee
// sees exactly the records the store append sees, in the same order.
func ResumeStoreFileTee(path string, jobs []Job, cfg Config, onPlan func(*ResumePlan) error, tee Sink) (*Summary, error) {
	var head Provenance
	if cfg.Provenance != nil {
		head = *cfg.Provenance
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	unlock, err := lockStore(f, path)
	if err != nil {
		return nil, err
	}
	defer unlock()
	sm := newStoreMetrics(cfg.Metrics)
	prior, validLen, err := ReadStoreFile(path)
	if err != nil {
		return nil, err
	}
	if sm != nil {
		if fi, statErr := f.Stat(); statErr == nil && fi.Size() > validLen {
			sm.crashTails.Inc()
		}
	}
	plan := PlanResume(jobs, prior, head)
	if n := len(plan.ConfigConflicts); n > 0 {
		return nil, fmt.Errorf("store %s was built under a different configuration (%d cells; first: %s); rerun with the original settings or use a fresh store",
			path, n, plan.ConfigConflicts[0])
	}
	if onPlan != nil {
		if err := onPlan(plan); err != nil {
			return nil, err
		}
	}
	if sm != nil {
		sm.reused.Add(uint64(len(plan.Reused)))
	}
	// Drop the crash tail so the appended records extend a well-formed
	// stream (with O_APPEND, writes land at the new end).
	if err := f.Truncate(validLen); err != nil {
		return nil, err
	}
	sink := NewJSONLSink(sm.meter(f))
	if tee != nil {
		sink = MultiSink(sink, tee)
	}
	return RunResume(plan, cfg, sink)
}

// RunResume executes only the plan's Todo jobs, streaming the new cell
// records to sink (in expansion order — exactly the lines an append to
// the store needs), then the aggregates recomputed over the merged run
// (reused + new cells, in full expansion order), so a store completed by
// resumes is record-for-record identical to one written in a single
// uninterrupted run, modulo wall-clock telemetry. Aggregates are
// suppressed when there was nothing to run and the store already has
// them: re-resuming a complete store is a no-op append.
func RunResume(plan *ResumePlan, cfg Config, sink Sink) (*Summary, error) {
	sum := &Summary{Jobs: len(plan.Jobs), Skipped: len(plan.Jobs) - len(plan.Todo)}
	rm := newRunMetrics(cfg.Metrics)
	rm.beginRun(len(plan.Jobs), sum.Skipped)
	emit, emitErr := emitter(sum, sink, rm)
	fresh := cfg.scheduler().Schedule(plan.Todo, cfg, func(r Record) {
		if r.Failed() {
			sum.Failed++
		}
		emit(r)
	})
	// The merged cell set — reused records (preserved telemetry and
	// provenance) interleaved with fresh ones at their expansion
	// positions — is always assembled: it feeds the appended aggregates
	// and, via Summary.Merged, the resume-aware perf table even when the
	// store was complete and nothing is appended at all.
	merged := make([]Record, 0, len(plan.Jobs))
	next := 0
	for _, j := range plan.Jobs {
		if r, have := plan.Reused[j.Key()]; have {
			merged = append(merged, r)
		} else {
			merged = append(merged, fresh[next])
			next++
		}
	}
	sum.Merged = merged
	emitAggs := len(plan.Todo) > 0 || !plan.PriorHasAggregates
	if *emitErr == nil && !cfg.NoAggregates && emitAggs {
		// The appended aggregates roll up the merged cells, which may
		// span revisions (reused cells keep their original stamps): they
		// inherit a provenance block only when every input shares it —
		// the same rule Compact applies — so no aggregate is ever
		// attributed to a revision that didn't produce its inputs.
		aggProv := uniformProvenance(merged)
		for _, agg := range Aggregate(merged) {
			agg.Provenance = aggProv
			emit(agg)
		}
	}
	return sum, closeSink(sink, *emitErr)
}
