package harness

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// deadPID returns a PID that is guaranteed to have exited: a just-reaped
// child. (The kernel could in principle recycle it, but not between
// Wait and the assertion a few microseconds later.)
func deadPID(t *testing.T) int {
	t.Helper()
	cmd := exec.Command("true")
	if err := cmd.Start(); err != nil {
		// No /bin/true (minimal environments): fall back to re-execing
		// the test binary with a flag that exits immediately.
		cmd = exec.Command(os.Args[0], "-test.run", "TestNothingMatchesThisName")
		if err := cmd.Start(); err != nil {
			t.Skipf("cannot spawn a child process: %v", err)
		}
	}
	pid := cmd.Process.Pid
	cmd.Wait()
	return pid
}

// TestSidecarLockReclaimsDeadOwner fabricates the crash residue the
// O_EXCL lock path can leave behind — a .lock sidecar naming a PID that
// no longer exists — and asserts the next writer reclaims it instead of
// refusing.
func TestSidecarLockReclaimsDeadOwner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	lockPath := store + ".lock"
	if err := os.WriteFile(lockPath, []byte(fmt.Sprintf("%d\n", deadPID(t))), 0o644); err != nil {
		t.Fatal(err)
	}
	unlock, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatalf("stale dead-PID lock was not reclaimed: %v", err)
	}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("reclaimed lockfile missing: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != fmt.Sprint(os.Getpid()) {
		t.Fatalf("reclaimed lockfile names PID %s, want ours %d", got, os.Getpid())
	}
	unlock()
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Fatalf("unlock left the lockfile behind: %v", err)
	}
}

// TestSidecarLockRefusesLiveOwner keeps the refuse-fast contract: a
// lockfile naming a live process (this test) is never reclaimed.
func TestSidecarLockRefusesLiveOwner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if err := os.WriteFile(store+".lock", []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("lock held by a live process was reclaimed")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("unexpected refusal message: %v", err)
	}
}

// TestSidecarLockRefusesUnreadableOwner: a lockfile whose owner cannot
// be established is treated as held — doubt never reclaims.
func TestSidecarLockRefusesUnreadableOwner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if err := os.WriteFile(store+".lock", []byte("not a pid\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("lock with unparseable owner was reclaimed")
	}
}

// TestSidecarLockFreshAcquire covers the uncontended path.
func TestSidecarLockFreshAcquire(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	unlock, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("second acquire succeeded while lock held")
	}
	unlock()
	unlock2, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatalf("re-acquire after unlock: %v", err)
	}
	unlock2()
}
