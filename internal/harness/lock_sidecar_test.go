package harness

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// deadPID returns a PID that is guaranteed to have exited: a just-reaped
// child. (The kernel could in principle recycle it, but not between
// Wait and the assertion a few microseconds later.)
func deadPID(t *testing.T) int {
	t.Helper()
	cmd := exec.Command("true")
	if err := cmd.Start(); err != nil {
		// No /bin/true (minimal environments): fall back to re-execing
		// the test binary with a flag that exits immediately.
		cmd = exec.Command(os.Args[0], "-test.run", "TestNothingMatchesThisName")
		if err := cmd.Start(); err != nil {
			t.Skipf("cannot spawn a child process: %v", err)
		}
	}
	pid := cmd.Process.Pid
	cmd.Wait()
	return pid
}

// TestSidecarLockReclaimsDeadOwner fabricates the crash residue the
// O_EXCL lock path can leave behind — a .lock sidecar naming a PID that
// no longer exists — and asserts the next writer reclaims it instead of
// refusing.
func TestSidecarLockReclaimsDeadOwner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	lockPath := store + ".lock"
	if err := os.WriteFile(lockPath, []byte(fmt.Sprintf("%d\n", deadPID(t))), 0o644); err != nil {
		t.Fatal(err)
	}
	unlock, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatalf("stale dead-PID lock was not reclaimed: %v", err)
	}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("reclaimed lockfile missing: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != fmt.Sprint(os.Getpid()) {
		t.Fatalf("reclaimed lockfile names PID %s, want ours %d", got, os.Getpid())
	}
	unlock()
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Fatalf("unlock left the lockfile behind: %v", err)
	}
}

// TestSidecarLockRefusesLiveOwner keeps the refuse-fast contract: a
// lockfile naming a live process (this test) is never reclaimed.
func TestSidecarLockRefusesLiveOwner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if err := os.WriteFile(store+".lock", []byte(fmt.Sprintf("%d\n", os.Getpid())), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("lock held by a live process was reclaimed")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("unexpected refusal message: %v", err)
	}
}

// TestSidecarLockRefusesUnreadableOwner: a lockfile whose owner cannot
// be established is treated as held — doubt never reclaims.
func TestSidecarLockRefusesUnreadableOwner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if err := os.WriteFile(store+".lock", []byte("not a pid\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("lock with unparseable owner was reclaimed")
	}
}

// TestSidecarLockFreshAcquire covers the uncontended path.
func TestSidecarLockFreshAcquire(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	unlock, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("second acquire succeeded while lock held")
	}
	unlock()
	unlock2, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatalf("re-acquire after unlock: %v", err)
	}
	unlock2()
}

// TestSidecarLockReclaimRace is the regression test for the TOCTOU in
// the original reclaim (probe dead owner → os.Remove → retry): if a
// concurrent writer reclaimed the stale file and acquired a fresh lock
// inside that window, the remove deleted the *live* lock and two
// writers appended to one store. The sidecarReclaimRace hook fabricates
// exactly that interleaving: after this acquirer has established "owner
// dead", a rival swaps in a live-PID lockfile. The reclaim must detect
// the swap, restore the rival's lock untouched, and refuse.
func TestSidecarLockReclaimRace(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	lockPath := store + ".lock"
	if err := os.WriteFile(lockPath, []byte(fmt.Sprintf("%d\n", deadPID(t))), 0o644); err != nil {
		t.Fatal(err)
	}
	livePID := fmt.Sprintf("%d\n", os.Getpid())
	sidecarReclaimRace = func() {
		// The rival writer wins the window: stale lock replaced by a
		// live one. (A real rival removes then O_EXCL-creates; the net
		// file state is the same.)
		if err := os.WriteFile(lockPath, []byte(livePID), 0o644); err != nil {
			t.Error(err)
		}
	}
	defer func() { sidecarReclaimRace = nil }()

	if _, err := acquireSidecarLock(store); err == nil {
		t.Fatal("acquire stole a lock a rival took during the reclaim window")
	}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("rival's live lock was destroyed: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != strings.TrimSpace(livePID) {
		t.Fatalf("lockfile names PID %s after the race, want the rival's %s", got, strings.TrimSpace(livePID))
	}
	// No reclaim-claim debris left behind.
	matches, err := filepath.Glob(lockPath + ".reclaim.*")
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("reclaim left claim files behind: %v", matches)
	}
}

// TestSidecarLockWriteFailureFailsLoud: when the owner PID cannot be
// written, the acquire must fail with an error AND take the unowned
// lockfile back out — an empty sidecar would block every future writer
// until someone removes it by hand.
func TestSidecarLockWriteFailureFailsLoud(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	sidecarWriteFailure = errors.New("disk full")
	_, err := acquireSidecarLock(store)
	sidecarWriteFailure = nil
	if err == nil || !strings.Contains(err.Error(), "writing owner pid") {
		t.Fatalf("acquire = %v, want loud owner-write failure", err)
	}
	if _, serr := os.Stat(store + ".lock"); !os.IsNotExist(serr) {
		t.Fatalf("failed acquire left an unowned lockfile behind: %v", serr)
	}
	// The path is not poisoned: the next acquire succeeds.
	unlock, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatalf("acquire after write failure: %v", err)
	}
	unlock()
}

// TestSidecarLockConcurrentReclaimOneWinner race-stresses the reclaim:
// N goroutines all find the same dead-owner lockfile and try to take
// it. Exactly one may win; the winner's lock must name this process and
// survive the losers.
func TestSidecarLockConcurrentReclaimOneWinner(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	lockPath := store + ".lock"
	if err := os.WriteFile(lockPath, []byte(fmt.Sprintf("%d\n", deadPID(t))), 0o644); err != nil {
		t.Fatal(err)
	}

	const n = 16
	var wg sync.WaitGroup
	unlocks := make([]func(), n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			unlocks[i], errs[i] = acquireSidecarLock(store)
		}(i)
	}
	wg.Wait()

	var winners int
	var unlock func()
	for i := 0; i < n; i++ {
		if errs[i] == nil {
			winners++
			unlock = unlocks[i]
		} else if !strings.Contains(errs[i].Error(), "locked by another process") {
			t.Errorf("loser %d failed oddly: %v", i, errs[i])
		}
	}
	if winners != 1 {
		t.Fatalf("%d goroutines acquired the reclaimed lock, want exactly 1", winners)
	}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("winner's lockfile missing: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != fmt.Sprint(os.Getpid()) {
		t.Fatalf("lockfile names PID %s, want ours %d", got, os.Getpid())
	}
	if matches, _ := filepath.Glob(lockPath + ".reclaim.*"); len(matches) != 0 {
		t.Fatalf("reclaim left claim files behind: %v", matches)
	}
	unlock()
	if _, err := os.Stat(lockPath); !os.IsNotExist(err) {
		t.Fatal("winner's unlock did not release the lock")
	}
}

// TestSidecarUnlockRefusesForeignLock: unlock only removes the lockfile
// while it still names this process, so a lock that was (wrongly)
// reclaimed out from under a writer cannot cascade into deleting its
// successor's lock.
func TestSidecarUnlockRefusesForeignLock(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	lockPath := store + ".lock"
	unlock, err := acquireSidecarLock(store)
	if err != nil {
		t.Fatal(err)
	}
	// Someone replaces our lock (simulating the wrongly-reclaimed case).
	foreign := fmt.Sprintf("%d\n", deadPID(t))
	if err := os.WriteFile(lockPath, []byte(foreign), 0o644); err != nil {
		t.Fatal(err)
	}
	unlock()
	data, err := os.ReadFile(lockPath)
	if err != nil {
		t.Fatalf("unlock removed a lock it no longer owned: %v", err)
	}
	if got := strings.TrimSpace(string(data)); got != strings.TrimSpace(foreign) {
		t.Fatalf("lockfile = %s, want untouched %s", got, strings.TrimSpace(foreign))
	}
	os.Remove(lockPath)
}
