package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sink consumes records as they stream out of a run. Emit is called from
// a single goroutine, in matrix expansion order for cells followed by a
// deterministic aggregate order, so sinks need no locking.
type Sink interface {
	Emit(Record) error
	Close() error
}

// NewSink constructs a sink by format name: "table", "jsonl" or "csv".
func NewSink(format string, w io.Writer) (Sink, error) {
	switch format {
	case "table", "":
		return NewTableSink(w), nil
	case "jsonl":
		return NewJSONLSink(w), nil
	case "csv":
		return NewCSVSink(w), nil
	default:
		return nil, fmt.Errorf("harness: unknown output format %q (want table, jsonl or csv)", format)
	}
}

// --- JSONL ---

type jsonlSink struct{ enc *json.Encoder }

// NewJSONLSink emits one JSON object per line: the machine-readable
// format consumed by Diff as a baseline.
func NewJSONLSink(w io.Writer) Sink { return &jsonlSink{enc: json.NewEncoder(w)} }

func (s *jsonlSink) Emit(r Record) error { return s.enc.Encode(r) }
func (s *jsonlSink) Close() error        { return nil }

// --- CSV ---

type csvSink struct {
	w      *csv.Writer
	header bool
}

// NewCSVSink emits a flat CSV with a header row.
func NewCSVSink(w io.Writer) Sink { return &csvSink{w: csv.NewWriter(w)} }

func (s *csvSink) Emit(r Record) error {
	if !s.header {
		s.header = true
		if err := s.w.Write([]string{
			"kind", "model", "trace", "category", "scenario", "branches",
			"delta_log", "storage_bits",
			"window", "exec_delay",
			"mpki", "mppki", "mpki_sum", "mppki_sum", "mispredicts",
			"misprediction_rate",
			"sim_branches", "elapsed_sec", "branches_per_sec",
			"cells", "error", "git_sha", "git_dirty", "spec",
		}); err != nil {
			return err
		}
	}
	var sha string
	var dirty bool
	if r.Provenance != nil {
		sha, dirty = r.Provenance.GitSHA, r.Provenance.GitDirty
	}
	return s.w.Write([]string{
		r.Kind, r.Model, r.Trace, r.Category, r.Scenario,
		strconv.Itoa(r.Branches),
		strconv.Itoa(r.DeltaLog), strconv.Itoa(r.StorageBits),
		strconv.Itoa(r.Window), strconv.Itoa(r.ExecDelay),
		formatFloat(r.MPKI), formatFloat(r.MPPKI),
		formatFloat(r.MPKISum), formatFloat(r.MPPKISum),
		strconv.FormatUint(r.Mispredicts, 10),
		formatFloat(r.Misprediction),
		strconv.FormatUint(r.SimBranches, 10),
		formatFloat(r.ElapsedSec), formatFloat(r.BranchesPerSec),
		strconv.Itoa(r.Cells), r.Err,
		sha, strconv.FormatBool(dirty),
		r.Spec,
	})
}

func (s *csvSink) Close() error {
	s.w.Flush()
	return s.w.Error()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// --- human table ---

type tableSink struct {
	w         io.Writer
	lastGroup string
	err       error
}

// NewTableSink renders an aligned human-readable table, with a blank
// line and group header whenever the (model, scenario, length) group
// changes, and indented aggregate rows.
func NewTableSink(w io.Writer) Sink { return &tableSink{w: w} }

func (s *tableSink) printf(format string, args ...any) {
	if s.err == nil {
		_, s.err = fmt.Fprintf(s.w, format, args...)
	}
}

func (s *tableSink) Emit(r Record) error {
	group := fmt.Sprintf("%s scenario=%s branches=%d", r.Model, r.Scenario, r.Branches)
	if group != s.lastGroup {
		if s.lastGroup != "" {
			s.printf("\n")
		}
		s.printf("# %s\n", group)
		s.lastGroup = group
	}
	switch r.Kind {
	case KindCell, "":
		if r.Failed() {
			s.printf("%-10s FAILED: %s\n", r.Trace, r.Err)
			return s.err
		}
		s.printf("%-10s MPKI=%7.3f MPPKI=%8.2f mispredict=%5.2f%% %s\n",
			r.Trace, r.MPKI, r.MPPKI, 100*r.Misprediction, FormatBranchRate(r.BranchesPerSec))
	case KindCategory:
		s.printf("  %-8s cat  mean-MPKI=%7.3f sum-MPPKI=%8.2f (%d traces)\n",
			r.Category, r.MPKI, r.MPPKISum, r.Cells)
	case KindHard:
		s.printf("  %-8s      mean-MPKI=%7.3f sum-MPPKI=%8.2f (%d traces)\n",
			"hard-7", r.MPKI, r.MPPKISum, r.Cells)
	case KindSuite:
		s.printf("  %-8s      mean-MPKI=%7.3f sum-MPPKI=%8.2f (%d traces)\n",
			"suite", r.MPKI, r.MPPKISum, r.Cells)
	}
	return s.err
}

func (s *tableSink) Close() error { return s.err }

// --- discard ---

type discardSink struct{}

// Discard is a Sink that drops every record: callers that only want the
// Summary (e.g. the experiments package reading aggregates) run against
// it instead of inventing a throwaway sink.
var Discard Sink = discardSink{}

func (discardSink) Emit(Record) error { return nil }
func (discardSink) Close() error      { return nil }

// --- multi ---

type multiSink []Sink

// MultiSink fans every record out to all sinks (e.g. a table on stdout
// plus a JSONL baseline file).
func MultiSink(sinks ...Sink) Sink { return multiSink(sinks) }

func (m multiSink) Emit(r Record) error {
	for _, s := range m {
		if err := s.Emit(r); err != nil {
			return err
		}
	}
	return nil
}

func (m multiSink) Close() error {
	var first error
	for _, s := range m {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
