package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/predictor"
)

// fakeResolver builds a fake model for any spec — the worker-side
// counterpart of the fake models a test matrix uses, so remote
// execution produces the exact records a local run would.
func fakeResolver(mpki float64) ModelResolver {
	return func(spec string) (Model, error) {
		return fakeModel(spec, flat(mpki)), nil
	}
}

// scrubTiming zeroes the per-record fields that legitimately differ
// between two executions of the same sweep: wall-clock telemetry and
// the provenance pointer.
func scrubTiming(recs []Record) []Record {
	out := make([]Record, len(recs))
	for i, r := range recs {
		r.ElapsedSec = 0
		r.BranchesPerSec = 0
		r.Provenance = nil
		out[i] = r
	}
	return out
}

// newTestService stands up a coordinator (service + queue + httptest
// server) over fake models, returning the base URL.
func newTestService(t *testing.T, ttl time.Duration, store string) (*Service, *httptest.Server) {
	t.Helper()
	q := NewLeaseQueue(ttl, 2, nil)
	svc := &Service{Queue: q, Resolve: fakeResolver(3), Store: store}
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return svc, srv
}

// startWorker runs a real RunWorker against the coordinator until the
// test ends.
func startWorker(t *testing.T, baseURL, id string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerOptions{
			BaseURL: baseURL,
			ID:      id,
			Resolve: fakeResolver(3),
			Poll:    10 * time.Millisecond,
		})
	}()
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("worker %s: %v", id, err)
		}
	})
}

// submitSweep POSTs a sweep and decodes the streamed JSONL response.
func submitSweep(t *testing.T, baseURL string, req SweepRequest) []Record {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/sweep", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		t.Fatalf("sweep returned %s: %s", resp.Status, msg.String())
	}
	recs, err := ReadRecords(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// localEquivalent runs the same grid in-process with the same fake
// models, the ground truth a distributed run must reproduce.
func localEquivalent(t *testing.T, models []string, traces []string, lengths []int) []Record {
	t.Helper()
	ms := make([]Model, len(models))
	for i, m := range models {
		ms[i] = fakeModel(m, flat(3))
	}
	matrix := testMatrix(t, ms, traces, []predictor.Scenario{predictor.ScenarioA}, lengths)
	var sink collectSink
	if _, err := Run(matrix, Config{}, &sink); err != nil {
		t.Fatal(err)
	}
	return sink.recs
}

func TestServiceSweepMatchesLocalRun(t *testing.T) {
	_, srv := newTestService(t, time.Minute, "")
	startWorker(t, srv.URL, "w1")

	got := submitSweep(t, srv.URL, SweepRequest{
		Models:   []string{"fm1", "fm2"},
		Traces:   []string{"INT01", "INT02"},
		Branches: []int{100},
	})
	want := localEquivalent(t, []string{"fm1", "fm2"}, []string{"INT01", "INT02"}, []int{100})
	if !reflect.DeepEqual(scrubTiming(got), scrubTiming(want)) {
		t.Fatalf("distributed sweep diverged from local run\n got: %+v\nwant: %+v", got, want)
	}
}

func TestServiceSweepSurvivesDeadWorker(t *testing.T) {
	// Short TTL so the zombie's lease expires within the test.
	_, srv := newTestService(t, 150*time.Millisecond, "")

	// Submit first, with no worker: cells queue up.
	type result struct{ recs []Record }
	resCh := make(chan result, 1)
	var once sync.Once
	go func() {
		recs := submitSweep(t, srv.URL, SweepRequest{
			Models:   []string{"fm1"},
			Traces:   []string{"INT01", "INT02"},
			Branches: []int{100},
		})
		once.Do(func() { resCh <- result{recs} })
	}()

	// A zombie worker grabs a lease and dies without heartbeating or
	// completing.
	var zombie *Lease
	deadline := time.Now().Add(5 * time.Second)
	for zombie == nil {
		if time.Now().After(deadline) {
			t.Fatal("queue never offered the zombie a lease")
		}
		resp, err := http.Get(srv.URL + "/v1/lease?worker=zombie&wait=1")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			zombie = new(Lease)
			if err := json.NewDecoder(resp.Body).Decode(zombie); err != nil {
				t.Fatal(err)
			}
		}
		resp.Body.Close()
	}
	if len(zombie.Jobs) == 0 {
		t.Fatal("zombie lease carries no cells")
	}

	// A healthy worker arrives; the expired lease's cells must re-run
	// and the sweep must still produce the full, correct record set.
	startWorker(t, srv.URL, "healthy")
	var got []Record
	select {
	case r := <-resCh:
		got = r.recs
	case <-time.After(10 * time.Second):
		t.Fatal("sweep never completed after worker death")
	}
	want := localEquivalent(t, []string{"fm1"}, []string{"INT01", "INT02"}, []int{100})
	if !reflect.DeepEqual(scrubTiming(got), scrubTiming(want)) {
		t.Fatalf("post-death sweep diverged from local run\n got: %+v\nwant: %+v", got, want)
	}

	// The zombie's eventual completion is firmly rejected.
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, wj := range zombie.Jobs {
		sink.Emit(wireFailedRecord(wj, context.DeadlineExceeded))
	}
	resp, err := http.Post(srv.URL+"/v1/results?id="+zombie.ID, "application/x-ndjson", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("late zombie completion returned %s, want 410 Gone", resp.Status)
	}
}

func TestServiceStoreBackedSweepIsResumable(t *testing.T) {
	store := t.TempDir() + "/dist.jsonl"
	svc, srv := newTestService(t, time.Minute, store)
	prov := Provenance{GitSHA: "feedbeef", Schema: SchemaVersion}
	svc.Config.Provenance = &prov
	startWorker(t, srv.URL, "w1")

	req := SweepRequest{Models: []string{"fm1"}, Traces: []string{"INT01", "INT02"}, Branches: []int{100}}
	first := submitSweep(t, srv.URL, req)
	if len(first) == 0 {
		t.Fatal("first submission streamed nothing")
	}
	for _, r := range first {
		if r.Provenance == nil || r.Provenance.GitSHA != "feedbeef" {
			t.Fatalf("record %s not stamped with coordinator provenance: %+v", r.Key(), r.Provenance)
		}
	}

	stored, _, err := ReadStoreFile(store)
	if err != nil {
		t.Fatal(err)
	}
	ms := []Model{fakeModel("fm1", flat(3))}
	matrix := testMatrix(t, ms, []string{"INT01", "INT02"}, []predictor.Scenario{predictor.ScenarioA}, []int{100})
	jobs, err := matrix.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanResume(jobs, stored, prov)
	if len(plan.Todo) != 0 {
		t.Fatalf("store not complete after sweep: %d cells todo", len(plan.Todo))
	}

	// Resubmitting the same sweep reuses every cell: nothing appended,
	// nothing streamed back.
	second := submitSweep(t, srv.URL, req)
	if len(second) != 0 {
		t.Fatalf("resubmission appended %d records, want 0 (all reused)", len(second))
	}
}

func TestServiceRejectsBadSweeps(t *testing.T) {
	_, srv := newTestService(t, time.Minute, "")
	for name, body := range map[string]string{
		"no models":     `{}`,
		"bad scenario":  `{"models":["m"],"scenarios":"Z"}`,
		"bad trace":     `{"models":["m"],"traces":["NOPE99"]}`,
		"bad branches":  `{"models":["m"],"branches":[-5]}`,
		"not even json": `{{{`,
	} {
		resp, err := http.Post(srv.URL+"/v1/sweep", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: got %s, want 400", name, resp.Status)
		}
	}
}

func TestWorkerReportsUnresolvableCellsAsFailures(t *testing.T) {
	q := NewLeaseQueue(time.Minute, 2, nil)
	svc := &Service{Queue: q, Resolve: fakeResolver(3)}
	mux := http.NewServeMux()
	svc.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// This worker's resolver rejects everything: every cell must come
	// back as a failed record rather than bouncing forever.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- RunWorker(ctx, WorkerOptions{
			BaseURL: srv.URL,
			ID:      "broken",
			Resolve: func(spec string) (Model, error) {
				return Model{}, errors.New("no models here")
			},
			Poll: 10 * time.Millisecond,
		})
	}()

	got := submitSweep(t, srv.URL, SweepRequest{
		Models: []string{"fm1"}, Traces: []string{"INT01"}, Branches: []int{100},
		NoAggregates: true,
	})
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("worker: %v", err)
	}
	if len(got) != 1 || !got[0].Failed() {
		t.Fatalf("want one failed record, got %+v", got)
	}
	if !strings.Contains(got[0].Err, "resolving model") {
		t.Fatalf("failure does not explain itself: %q", got[0].Err)
	}
}
