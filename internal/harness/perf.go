package harness

import (
	"fmt"
	"io"
)

// PerfRow is one line of the simulator-throughput summary: the total
// branches simulated, wall-clock time and branches/sec of one
// (model, scenario, length) group of cells. It is derived from the same
// Records the sinks stream, so any saved JSONL run can be re-rendered
// into a perf table later.
type PerfRow struct {
	Model          string
	Scenario       string
	Branches       int // requested branches per trace (the matrix axis)
	Cells          int
	SimBranches    uint64  // branches actually simulated, summed over cells
	ElapsedSec     float64 // total wall-clock simulation time over cells
	BranchesPerSec float64 // SimBranches / ElapsedSec
}

// PerfRows extracts per-group throughput telemetry from a record stream,
// in first-appearance order of the groups. Suite aggregates are used when
// present (they already carry the sums); otherwise cells are accumulated
// directly, so both full runs and -noaggregates runs produce a table.
func PerfRows(records []Record) []PerfRow {
	var order []groupKey
	acc := make(map[groupKey]*PerfRow)
	addCell := func(g groupKey, simBranches uint64, elapsed float64, cells int) {
		row, ok := acc[g]
		if !ok {
			row = &PerfRow{Model: g.model, Scenario: g.scenario, Branches: g.branches}
			acc[g] = row
			order = append(order, g)
		}
		row.Cells += cells
		row.SimBranches += simBranches
		row.ElapsedSec += elapsed
	}

	haveSuite := false
	for _, r := range records {
		if r.Kind == KindSuite {
			haveSuite = true
			break
		}
	}
	for _, r := range records {
		if r.Failed() {
			continue
		}
		g := groupKey{model: r.Model, scenario: r.Scenario, branches: r.Branches}
		switch {
		case haveSuite && r.Kind == KindSuite:
			addCell(g, r.SimBranches, r.ElapsedSec, r.Cells)
		case !haveSuite && (r.Kind == KindCell || r.Kind == ""):
			addCell(g, r.SimBranches, r.ElapsedSec, 1)
		}
	}

	out := make([]PerfRow, 0, len(order))
	for _, g := range order {
		row := *acc[g]
		if row.ElapsedSec > 0 {
			row.BranchesPerSec = float64(row.SimBranches) / row.ElapsedSec
		}
		out = append(out, row)
	}
	return out
}

// RenderPerf writes the human-readable throughput table.
func RenderPerf(w io.Writer, rows []PerfRow) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "simulator throughput:\n")
	fmt.Fprintf(w, "  %-18s %-8s %10s %6s %12s %10s %12s\n",
		"model", "scenario", "branches", "cells", "sim-branches", "elapsed", "branches/s")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-18s %-8s %10d %6d %12d %9.3fs %12s\n",
			r.Model, r.Scenario, r.Branches, r.Cells, r.SimBranches,
			r.ElapsedSec, FormatBranchRate(r.BranchesPerSec))
	}
}

// FormatBranchRate renders a branches/sec figure compactly (e.g. "6.4M/s");
// zero (no timing data) renders as "-".
func FormatBranchRate(v float64) string {
	switch {
	case v <= 0:
		return "-"
	case v >= 1e9:
		return fmt.Sprintf("%.2fG/s", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM/s", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk/s", v/1e3)
	default:
		return fmt.Sprintf("%.0f/s", v)
	}
}
