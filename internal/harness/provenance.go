package harness

import (
	"bytes"
	"fmt"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
)

// SchemaVersion identifies the record schema a store was written under.
// Version 1 is the unversioned pre-provenance format (stores written
// before provenance stamping existed carry no block at all and read as
// schema 1 implicitly); version 2 added the per-record Provenance block;
// version 3 added the canonical model-spec field (older records are
// upgraded on read by backfilling it from the model identifier — see
// migrateRecord — and records from schemas newer than this constant are
// rejected on read rather than misread); version 4 added the trace-spec
// field (empty means the trace identity is its own spec, which holds for
// every record from older schemas, so no backfill is needed). Bump this
// whenever a Record field changes meaning, so long-lived stores can tell
// which revision of the harness wrote each line.
const SchemaVersion = 4

// Provenance records where a result came from: the source revision the
// harness was built from, whether the tree was dirty, and the toolchain.
// Every record a run appends to a store is stamped with the same block
// (see Config.Provenance), so a long-lived store that has survived
// predictor changes can say exactly which code produced each cell —
// the reproducibility hazard long-running comparisons otherwise hit.
type Provenance struct {
	// GitSHA is the full commit hash of HEAD at run time ("" when no
	// repository or VCS build info was found).
	GitSHA string `json:"git_sha,omitempty"`
	// GitDirty reports uncommitted changes at run time: a dirty record
	// can never be reproduced from GitSHA alone.
	GitDirty bool `json:"git_dirty,omitempty"`
	// GoVersion is the toolchain that built the harness.
	GoVersion string `json:"go_version,omitempty"`
	// Schema is the record-schema version the writer used.
	Schema int `json:"schema,omitempty"`
}

// IsZero reports whether the block carries no information at all.
func (p Provenance) IsZero() bool { return p == Provenance{} }

// Short renders the provenance compactly for warnings and table columns:
// an abbreviated SHA plus a "+dirty" marker, or "unknown" when the
// record predates provenance stamping.
func (p Provenance) Short() string {
	if p.GitSHA == "" {
		return "unknown"
	}
	s := p.GitSHA
	if len(s) > 10 {
		s = s[:10]
	}
	if p.GitDirty {
		s += "+dirty"
	}
	return s
}

var (
	provOnce sync.Once
	provCur  Provenance
)

// CurrentProvenance returns the provenance of the running process,
// computed once: the binary's embedded VCS build info when present (it
// describes the code that was built, wherever the process later runs),
// otherwise HEAD's SHA and dirty state from git in the working
// directory — the dev-loop case, where `go run` and `go test` binaries
// carry no embedded VCS state and the CWD is the repository being
// measured. Plus the Go toolchain version and the current schema
// version; a process with neither source of truth still gets a valid
// (SHA-less) block.
func CurrentProvenance() Provenance {
	provOnce.Do(func() { provCur = readProvenance() })
	return provCur
}

func readProvenance() Provenance {
	p := Provenance{GoVersion: runtime.Version(), Schema: SchemaVersion}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				p.GitSHA = s.Value
			case "vcs.modified":
				p.GitDirty = s.Value == "true"
			}
		}
		if p.GitSHA != "" {
			return p
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		p.GitSHA = strings.TrimSpace(string(out))
		if st, err := exec.Command("git", "status", "--porcelain").Output(); err == nil {
			p.GitDirty = len(bytes.TrimSpace(st)) > 0
		}
	}
	return p
}

// StoreProvenance summarises where a store's measurements came from:
// the distinct provenance blocks across its cell records, in
// first-appearance order (aggregates are derived data and don't count).
// Cells written before provenance stamping contribute a single zero
// block, so a mixed old/new store visibly reports both eras. A
// single-element result means every measurement was produced by one
// revision — the precondition for comparing the store's cells against
// each other without caveats.
func StoreProvenance(recs []Record) []Provenance {
	var out []Provenance
	seen := make(map[Provenance]bool)
	for _, r := range recs {
		if r.Kind != KindCell && r.Kind != "" {
			continue
		}
		var p Provenance
		if r.Provenance != nil {
			p = *r.Provenance
		}
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// describeProvenance renders a distinct-provenance list for reports.
func describeProvenance(ps []Provenance) string {
	if len(ps) == 0 {
		return "none"
	}
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = p.Short()
	}
	return fmt.Sprintf("[%s]", strings.Join(parts, " "))
}
