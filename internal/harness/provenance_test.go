package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/predictor"
)

func TestCurrentProvenanceInRepo(t *testing.T) {
	p := CurrentProvenance()
	// The test binary runs inside this repository, so git metadata must
	// resolve: this is the acceptance contract that every record a fresh
	// run appends carries a non-empty SHA.
	if p.GitSHA == "" {
		t.Fatal("CurrentProvenance found no git SHA inside the repository")
	}
	if p.GoVersion == "" || p.Schema != SchemaVersion {
		t.Fatalf("provenance = %+v", p)
	}
	if q := CurrentProvenance(); q != p {
		t.Fatalf("CurrentProvenance not stable: %+v vs %+v", p, q)
	}
}

func TestProvenanceShort(t *testing.T) {
	cases := []struct {
		p    Provenance
		want string
	}{
		{Provenance{}, "unknown"},
		{Provenance{GitSHA: "abc123"}, "abc123"},
		{Provenance{GitSHA: "0123456789abcdef"}, "0123456789"},
		{Provenance{GitSHA: "0123456789abcdef", GitDirty: true}, "0123456789+dirty"},
	}
	for _, tc := range cases {
		if got := tc.p.Short(); got != tc.want {
			t.Errorf("Short(%+v) = %q, want %q", tc.p, got, tc.want)
		}
	}
	if !(Provenance{}).IsZero() || (Provenance{GoVersion: "go"}).IsZero() {
		t.Fatal("IsZero misclassifies")
	}
}

func TestStoreProvenanceDistinctInOrder(t *testing.T) {
	a := &Provenance{GitSHA: "aaa", Schema: 2}
	b := &Provenance{GitSHA: "bbb", Schema: 2}
	recs := []Record{
		{Kind: KindCell, Provenance: a},
		{Kind: KindCell}, // pre-provenance record
		{Kind: KindCell, Provenance: b},
		{Kind: KindCell, Provenance: &Provenance{GitSHA: "aaa", Schema: 2}}, // dup of a
	}
	got := StoreProvenance(recs)
	want := []Provenance{*a, {}, *b}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StoreProvenance = %+v, want %+v", got, want)
	}
	if StoreProvenance(nil) != nil {
		t.Fatal("empty store must report no provenance")
	}
}

// TestRunStampsProvenance: with Config.Provenance set, every record a
// run emits — cells, failures and aggregates — carries the block; the
// zero Config leaves records unstamped (the deterministic in-memory
// behaviour every pre-existing test relies on).
func TestRunStampsProvenance(t *testing.T) {
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	prov := Provenance{GitSHA: "feedface", GoVersion: "go-test", Schema: SchemaVersion}
	sink := &collectSink{}
	if _, err := Run(m, Config{Provenance: &prov}, sink); err != nil {
		t.Fatal(err)
	}
	if len(sink.recs) == 0 {
		t.Fatal("no records")
	}
	for i, r := range sink.recs {
		if r.Provenance == nil || *r.Provenance != prov {
			t.Fatalf("record %d (%s) not stamped: %+v", i, r.Kind, r.Provenance)
		}
	}

	bare := &collectSink{}
	if _, err := Run(m, Config{}, bare); err != nil {
		t.Fatal(err)
	}
	for i, r := range bare.recs {
		if r.Provenance != nil {
			t.Fatalf("record %d stamped without Config.Provenance: %+v", i, r.Provenance)
		}
	}
}

// TestResumeStampsFreshKeepsReused: a resume stamps the cells it
// appends with the new head provenance while reused cells keep the
// provenance they were recorded under — the merged view visibly spans
// both revisions — and the appended aggregate set, rolled up over that
// mixed population, carries no provenance at all (no single SHA would
// be true of its inputs).
func TestResumeStampsFreshKeepsReused(t *testing.T) {
	old := Provenance{GitSHA: "oldsha000", Schema: SchemaVersion}
	head := Provenance{GitSHA: "newsha111", Schema: SchemaVersion}
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})

	first := &collectSink{}
	if _, err := Run(m, Config{Provenance: &old}, first); err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Drop cell 1 and the aggregates: an interrupted store at revision "old".
	interrupted := first.recs[:1]

	plan := PlanResume(jobs, interrupted, head)
	if len(plan.Todo) != 1 || len(plan.Reused) != 1 {
		t.Fatalf("plan = %d todo, %d reused", len(plan.Todo), len(plan.Reused))
	}
	appended := &collectSink{}
	sum, err := RunResume(plan, Config{Provenance: &head}, appended)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range appended.recs {
		if r.Kind == KindCell {
			if r.Provenance == nil || r.Provenance.GitSHA != head.GitSHA {
				t.Fatalf("appended cell %d carries %+v, want head", i, r.Provenance)
			}
		} else if r.Provenance != nil {
			t.Fatalf("aggregate %d over mixed-revision cells must be unstamped, got %+v", i, r.Provenance)
		}
	}
	// The merged view keeps the reused cell's original stamp.
	if got := sum.Merged[0].Provenance; got == nil || got.GitSHA != old.GitSHA {
		t.Fatalf("reused cell provenance = %+v, want old", got)
	}
	if got := sum.Merged[1].Provenance; got == nil || got.GitSHA != head.GitSHA {
		t.Fatalf("fresh cell provenance = %+v, want head", got)
	}
	if ps := StoreProvenance(sum.Merged); len(ps) != 2 {
		t.Fatalf("merged store provenance = %+v, want two revisions", ps)
	}
}

// TestPlanResumeProvenanceDrift: reused cells recorded under a different
// SHA than head are flagged — but still reused, and a zero head (or a
// pre-provenance store) disables the check.
func TestPlanResumeProvenanceDrift(t *testing.T) {
	old := Provenance{GitSHA: "oldsha000"}
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	first := &collectSink{}
	if _, err := Run(m, Config{Provenance: &old}, first); err != nil {
		t.Fatal(err)
	}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}

	plan := PlanResume(jobs, first.recs, Provenance{GitSHA: "newsha111"})
	if len(plan.Reused) != 1 || len(plan.Todo) != 0 {
		t.Fatalf("drift must not prevent reuse: %d reused, %d todo", len(plan.Reused), len(plan.Todo))
	}
	if len(plan.ProvenanceDrift) != 1 ||
		!strings.Contains(plan.ProvenanceDrift[0], "oldsha000") ||
		!strings.Contains(plan.ProvenanceDrift[0], "newsha111") {
		t.Fatalf("drift = %v", plan.ProvenanceDrift)
	}

	// Same clean SHA: no drift.
	if p := PlanResume(jobs, first.recs, old); len(p.ProvenanceDrift) != 0 {
		t.Fatalf("same-revision resume reported drift: %v", p.ProvenanceDrift)
	}
	// Same SHA but a dirty tree on either side: the SHA no longer
	// identifies the code, so the dev loop's edit-without-commit case
	// still warns.
	dirtyHead := Provenance{GitSHA: "oldsha000", GitDirty: true}
	p := PlanResume(jobs, first.recs, dirtyHead)
	if len(p.ProvenanceDrift) != 1 || !strings.Contains(p.ProvenanceDrift[0], "uncommitted changes") {
		t.Fatalf("dirty head at same SHA must warn: %v", p.ProvenanceDrift)
	}
	// Zero head: check disabled.
	if p := PlanResume(jobs, first.recs, Provenance{}); len(p.ProvenanceDrift) != 0 {
		t.Fatalf("zero head must disable the drift check: %v", p.ProvenanceDrift)
	}
	// Pre-provenance store: nothing to compare against.
	bare := &collectSink{}
	if _, err := Run(m, Config{}, bare); err != nil {
		t.Fatal(err)
	}
	if p := PlanResume(jobs, bare.recs, Provenance{GitSHA: "newsha111"}); len(p.ProvenanceDrift) != 0 {
		t.Fatalf("unstamped store must not report drift: %v", p.ProvenanceDrift)
	}
}

// TestDiffProvenanceColumn: the diff carries both sides' provenance and
// renders it only when asked, so existing report output is unchanged.
func TestDiffProvenanceColumn(t *testing.T) {
	oldProv := &Provenance{GitSHA: "oldsha0000000", Schema: SchemaVersion}
	newProv := &Provenance{GitSHA: "newsha1111111", GitDirty: true, Schema: SchemaVersion}
	mk := func(p *Provenance, mpki float64) []Record {
		r := cell("tage", "INT01", "A", 1000, mpki)
		r.Provenance = p
		return []Record{r}
	}
	rep := Diff(mk(oldProv, 10), mk(newProv, 20), DiffOptions{})
	if len(rep.Regressions) != 1 {
		t.Fatalf("report = %+v", rep)
	}
	reg := rep.Regressions[0]
	if reg.OldProv != "oldsha0000" || reg.NewProv != "newsha1111+dirty" {
		t.Fatalf("cell provenance = %q -> %q", reg.OldProv, reg.NewProv)
	}
	if len(rep.OldProvenance) != 1 || len(rep.NewProvenance) != 1 {
		t.Fatalf("store provenance = %+v / %+v", rep.OldProvenance, rep.NewProvenance)
	}

	var plain, verbose bytes.Buffer
	rep.Render(&plain)
	rep.ShowProvenance = true
	rep.Render(&verbose)
	if strings.Contains(plain.String(), "oldsha") {
		t.Fatalf("provenance leaked into the default report:\n%s", plain.String())
	}
	for _, want := range []string{"provenance: baseline=[oldsha0000] new=[newsha1111+dirty]", "[oldsha0000 -> newsha1111+dirty]"} {
		if !strings.Contains(verbose.String(), want) {
			t.Fatalf("verbose report missing %q:\n%s", want, verbose.String())
		}
	}

	// Provenance differences alone never move a diff.
	same := Diff(mk(oldProv, 10), mk(newProv, 10), DiffOptions{})
	if same.HasRegressions() || len(same.Improvements) > 0 {
		t.Fatalf("provenance-only change moved the diff: %+v", same)
	}
}
