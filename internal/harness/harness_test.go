package harness

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/gshare"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestMapOrderedAndBounded(t *testing.T) {
	const n, workers = 100, 4
	var cur, max int64
	var mu sync.Mutex
	out := Map(n, workers, func(i int) int {
		c := atomic.AddInt64(&cur, 1)
		mu.Lock()
		if c > max {
			max = c
		}
		mu.Unlock()
		defer atomic.AddInt64(&cur, -1)
		return i * i
	})
	if len(out) != n {
		t.Fatalf("got %d results, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if max > workers {
		t.Fatalf("observed %d concurrent workers, bound is %d", max, workers)
	}
}

func TestMapZeroAndNegativeWorkers(t *testing.T) {
	// workers<=0 means "as many as items": must still complete correctly.
	out := Map(5, 0, func(i int) int { return i })
	if !reflect.DeepEqual(out, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("out = %v", out)
	}
	if got := Map(0, 3, func(i int) int { return i }); len(got) != 0 {
		t.Fatalf("n=0 returned %v", got)
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("panic did not propagate")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	ForEach(10, 3, func(i int) {
		if i == 7 {
			panic("boom 7")
		}
	})
}

func TestProtect(t *testing.T) {
	if err := Protect(func() {}); err != nil {
		t.Fatalf("clean fn returned %v", err)
	}
	err := Protect(func() { panic("kaboom") })
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("err = %v", err)
	}
}

func TestJobSeedDeterministicAndDistinct(t *testing.T) {
	a := JobSeed("tage/INT01/A/1000")
	if a != JobSeed("tage/INT01/A/1000") {
		t.Fatal("seed not deterministic")
	}
	seen := map[uint64]string{}
	for _, k := range []string{
		"tage/INT01/A/1000", "tage/INT01/C/1000", "tage/INT02/A/1000",
		"gshare/INT01/A/1000", "tage/INT01/A/2000",
	} {
		s := JobSeed(k)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between %q and %q", prev, k)
		}
		seen[s] = k
	}
}

// fakeModel returns deterministic synthetic results without running a
// real predictor; mpki(name) controls per-trace values. Like the real
// simulator, the result records the effective pipeline configuration
// (resume reuses a stored cell only when it matches).
func fakeModel(name string, mpki func(traceName string) float64) Model {
	return Model{Name: name, Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
		v := mpki(tr.Name)
		w, d := opt.Window, opt.ExecDelay
		if w <= 0 {
			w = sim.DefaultWindow
		}
		if d <= 0 {
			d = sim.DefaultExecDelay
		}
		return sim.Result{
			Trace: tr.Name, Category: tr.Category, Predictor: name,
			Scenario: opt.Scenario, Branches: uint64(len(tr.Branches)),
			Window: w, ExecDelay: d,
			MicroOps: 1000, Mispredicts: uint64(v), MPKI: v, MPPKI: 20 * v,
			Misprediction: v / 1000,
		}
	}}
}

func flat(v float64) func(string) float64 { return func(string) float64 { return v } }

func testMatrix(t *testing.T, models []Model, traces []string, scs []predictor.Scenario, lengths []int) *Matrix {
	t.Helper()
	specs, err := SelectTraces(traces)
	if err != nil {
		t.Fatal(err)
	}
	return &Matrix{Models: models, Traces: specs, Scenarios: scs, Lengths: lengths}
}

func TestMatrixExpandOrderAndFilters(t *testing.T) {
	m := testMatrix(t,
		[]Model{fakeModel("m1", flat(1)), fakeModel("m2", flat(2))},
		[]string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioC},
		[]int{100, 200})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 16 {
		t.Fatalf("expanded %d jobs, want 16", len(jobs))
	}
	// Stable nesting: model slowest, length fastest.
	wantFirst := []string{
		"m1/INT01/A/100", "m1/INT01/A/200", "m1/INT01/C/100", "m1/INT01/C/200",
		"m1/INT02/A/100",
	}
	for i, w := range wantFirst {
		if jobs[i].Key() != w {
			t.Fatalf("jobs[%d] = %s, want %s", i, jobs[i].Key(), w)
		}
	}
	for i, j := range jobs {
		if j.Index != i {
			t.Fatalf("jobs[%d].Index = %d", i, j.Index)
		}
		if j.Seed != JobSeed(j.Key()) {
			t.Fatalf("jobs[%d] seed mismatch", i)
		}
	}

	m.Include = []string{"m1/*/A/*"}
	jobs, err = m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("include filter kept %d jobs, want 4", len(jobs))
	}

	m.Include = nil
	m.Exclude = []string{"INT02", "C"}
	jobs, err = m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 4 {
		t.Fatalf("exclude filter kept %d jobs, want 4", len(jobs))
	}
	for _, j := range jobs {
		if j.Spec.Name == "INT02" || j.Scenario == predictor.ScenarioC {
			t.Fatalf("excluded cell survived: %s", j.Key())
		}
	}
}

func TestMatrixExpandEmptyAxis(t *testing.T) {
	m := &Matrix{}
	if _, err := m.Expand(); err == nil {
		t.Fatal("empty matrix must error")
	}
}

func TestMatrixExpandRejectsMalformedPatterns(t *testing.T) {
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{100})
	for _, set := range []func(){
		func() { m.Include = []string{"[bad"}; m.Exclude = nil },
		func() { m.Include = nil; m.Exclude = []string{"[bad"} },
	} {
		set()
		if _, err := m.Expand(); err == nil || !strings.Contains(err.Error(), "[bad") {
			t.Fatalf("malformed pattern must fail expansion, got err=%v", err)
		}
	}
}

type failingSink struct {
	after  int
	emits  int
	closed bool
}

func (f *failingSink) Emit(Record) error {
	f.emits++
	if f.emits > f.after {
		return fmt.Errorf("sink full")
	}
	return nil
}
func (f *failingSink) Close() error { f.closed = true; return nil }

func TestRunSinkFailureStillDrainsAndCloses(t *testing.T) {
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01", "INT02", "INT03"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	sink := &failingSink{after: 1}
	sum, err := Run(m, Config{Parallelism: 2}, sink)
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("emit failure must surface, got %v", err)
	}
	if !sink.closed {
		t.Fatal("sink must be closed even after an emit failure")
	}
	if sum.Jobs != 3 {
		t.Fatalf("summary = %+v", sum)
	}
}

func TestSelectTraces(t *testing.T) {
	all, err := SelectTraces(nil)
	if err != nil || len(all) != 40 {
		t.Fatalf("default selection = %d traces, err=%v", len(all), err)
	}
	ints, err := SelectTraces([]string{"INT*"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != 8 {
		t.Fatalf("INT* matched %d, want 8", len(ints))
	}
	if _, err := SelectTraces([]string{"NOPE*"}); err == nil {
		t.Fatal("no-match pattern must error")
	}
	if _, err := SelectTraces([]string{"[bad"}); err == nil {
		t.Fatal("malformed pattern must error")
	}
	// Dedup across overlapping patterns, suite order preserved.
	both, err := SelectTraces([]string{"INT0[12]", "INT01"})
	if err != nil {
		t.Fatal(err)
	}
	if len(both) != 2 || both[0].Name != "INT01" || both[1].Name != "INT02" {
		t.Fatalf("overlap selection = %v", both)
	}
}

func TestParseScenarios(t *testing.T) {
	scs, err := ParseScenarios("a, C")
	if err != nil {
		t.Fatal(err)
	}
	want := []predictor.Scenario{predictor.ScenarioA, predictor.ScenarioC}
	if !reflect.DeepEqual(scs, want) {
		t.Fatalf("scs = %v, want %v", scs, want)
	}
	for _, bad := range []string{"", "X", "A,A", "I,A,Q"} {
		if _, err := ParseScenarios(bad); err == nil {
			t.Fatalf("ParseScenarios(%q) must fail", bad)
		}
	}
}

type collectSink struct {
	recs   []Record
	closed bool
}

func (c *collectSink) Emit(r Record) error { c.recs = append(c.recs, r); return nil }
func (c *collectSink) Close() error        { c.closed = true; return nil }

func TestRunStreamsInExpansionOrder(t *testing.T) {
	m := testMatrix(t,
		[]Model{fakeModel("m1", flat(3)), fakeModel("m2", flat(5))},
		[]string{"INT01", "MM05"},
		[]predictor.Scenario{predictor.ScenarioA},
		[]int{50})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sink := &collectSink{}
	sum, err := Run(m, Config{Parallelism: 3}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 4 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	if !sink.closed {
		t.Fatal("sink not closed")
	}
	for i, j := range jobs {
		r := sink.recs[i]
		if r.Kind != KindCell || r.Key() != j.Key() {
			t.Fatalf("record %d = %s (%s), want cell %s", i, r.Key(), r.Kind, j.Key())
		}
		if r.Seed != j.Seed {
			t.Fatalf("record %d seed mismatch", i)
		}
	}
	// Aggregates follow the cells: per model -> category, hard, suite.
	aggs := sink.recs[4:]
	wantKinds := []string{
		KindCategory, KindCategory, KindHard, KindSuite, // m1: INT, MM
		KindCategory, KindCategory, KindHard, KindSuite, // m2
	}
	if len(aggs) != len(wantKinds) {
		t.Fatalf("got %d aggregates, want %d: %+v", len(aggs), len(wantKinds), aggs)
	}
	for i, k := range wantKinds {
		if aggs[i].Kind != k {
			t.Fatalf("agg %d kind = %s, want %s", i, aggs[i].Kind, k)
		}
	}
	// MM05 is a hard trace; INT01 is too, so hard covers both cells here.
	if aggs[2].Cells != 2 {
		t.Fatalf("hard rollup covers %d cells, want 2", aggs[2].Cells)
	}
	if aggs[3].MPKI != 3 || aggs[3].MPKISum != 6 {
		t.Fatalf("m1 suite mean/sum = %v/%v, want 3/6", aggs[3].MPKI, aggs[3].MPKISum)
	}
}

func TestRunIsolatesPanickingJobs(t *testing.T) {
	exploding := Model{Name: "boom", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
		if tr.Name == "INT02" {
			panic("predictor exploded")
		}
		return sim.Result{MPKI: 1}
	}}
	m := testMatrix(t, []Model{exploding}, []string{"INT01", "INT02", "INT03"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	sink := &collectSink{}
	sum, err := Run(m, Config{Parallelism: 2}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 3 || sum.Failed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	bad := sink.recs[1]
	if !bad.Failed() || !strings.Contains(bad.Err, "predictor exploded") {
		t.Fatalf("failed record = %+v", bad)
	}
	// The failed cell is excluded from aggregation.
	for _, r := range sink.recs {
		if r.Kind == KindSuite && r.Cells != 2 {
			t.Fatalf("suite aggregate covers %d cells, want 2", r.Cells)
		}
	}
}

func TestRunRealPredictorDeterministic(t *testing.T) {
	real := Model{Name: "gshare12", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
		return sim.RunTrace(gshare.New(12), tr, opt)
	}}
	m := testMatrix(t, []Model{real}, []string{"CLIENT01", "INT01"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB}, []int{2000})
	run := func(cfg Config) []Record {
		sink := &collectSink{}
		if _, err := Run(m, cfg, sink); err != nil {
			t.Fatal(err)
		}
		return sink.recs
	}
	a := run(Config{Parallelism: 4})
	b := run(Config{Parallelism: 1, NoTraceCache: true})
	// Wall-clock telemetry legitimately varies between runs; every
	// measurement field must match exactly.
	clearTiming := func(recs []Record) {
		for i := range recs {
			recs[i].ElapsedSec = 0
			recs[i].BranchesPerSec = 0
		}
	}
	clearTiming(a)
	clearTiming(b)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("records differ across parallelism/caching:\n%+v\n%+v", a, b)
	}
	if a[0].MPKI <= 0 || a[0].Mispredicts == 0 {
		t.Fatalf("suspicious real-run record: %+v", a[0])
	}
}
