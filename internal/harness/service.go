package harness

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"time"
)

// Service is the HTTP face of the distributed sweep coordinator
// (`bpbench serve`): spec-string sweep submission with streaming JSONL
// results on one side, the lease protocol workers speak on the other.
// Register mounts it on a mux — conventionally the same TelemetryMux
// that serves /metrics and /debug/pprof, so a farm scrapes coordinator
// and lease telemetry at one address.
//
// Endpoints:
//
//	POST /v1/sweep            JSON SweepRequest in, JSONL records out (streamed)
//	GET  /v1/lease?worker=ID&wait=SECS   next lease as JSON, or 204 when idle
//	POST /v1/renew?id=LEASE   heartbeat; 410 when the lease expired
//	POST /v1/results?id=LEASE JSONL records in; 410 when the lease expired
//	GET  /healthz             liveness probe
type Service struct {
	// Queue carries cells between sweep submissions and workers.
	Queue *LeaseQueue
	// Resolve rebuilds models from the spec strings submissions carry.
	Resolve ModelResolver
	// Store, when non-empty, is the coordinator's append-only result
	// store: each submission runs as a store-backed resume (already
	// recorded cells are reused, fresh records appended under the store
	// lock with provenance stamping) and the HTTP response streams the
	// records this submission appended. Empty keeps the coordinator
	// stateless: every submission streams its full record set.
	Store string
	// Config is the base execution config for submissions (Provenance,
	// Metrics, NoAggregates...); Scheduler is overridden per submission
	// with a LeaseScheduler over Queue.
	Config Config
	// Log, when non-nil, receives request-level diagnostics.
	Log *slog.Logger
}

// SweepRequest is the /v1/sweep submission body: the same matrix axes
// `bpbench` exposes as flags, with model specs as strings (resolved by
// the coordinator's ModelResolver).
type SweepRequest struct {
	Models    []string `json:"models"`
	Traces    []string `json:"traces,omitempty"`    // trace names, globs, or specs; empty = all
	Scenarios string   `json:"scenarios,omitempty"` // comma-separated letters; empty = "A"
	Branches  []int    `json:"branches,omitempty"`  // lengths; empty = {200000}
	DeltaLogs []int    `json:"delta_logs,omitempty"`
	Include   []string `json:"include,omitempty"`
	Exclude   []string `json:"exclude,omitempty"`
	Window    int      `json:"window,omitempty"`
	ExecDelay int      `json:"exec_delay,omitempty"`
	// NoAggregates suppresses the category/hard/suite rollup records for
	// this submission.
	NoAggregates bool `json:"no_aggregates,omitempty"`
}

// DefaultSweepBranches is the branches-per-trace length a SweepRequest
// gets when it names none — the same default as the bpbench flag.
const DefaultSweepBranches = 200000

// Register mounts the service's endpoints on mux.
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc("/v1/sweep", s.handleSweep)
	mux.HandleFunc("/v1/lease", s.handleLease)
	mux.HandleFunc("/v1/renew", s.handleRenew)
	mux.HandleFunc("/v1/results", s.handleResults)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
}

func (s *Service) logf(level slog.Level, format string, args ...any) {
	if s.Log != nil {
		s.Log.Log(nil, level, fmt.Sprintf(format, args...)) //nolint:staticcheck // context-free logging
	}
}

// matrix expands a SweepRequest into a Matrix via the resolver.
func (s *Service) matrix(req SweepRequest) (*Matrix, error) {
	if s.Resolve == nil {
		return nil, errors.New("harness: service has no model resolver")
	}
	if len(req.Models) == 0 {
		return nil, errors.New("harness: sweep request names no models")
	}
	models := make([]Model, 0, len(req.Models))
	seen := make(map[string]string, len(req.Models))
	for _, spec := range req.Models {
		mdl, err := s.Resolve(spec)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[mdl.Name]; dup {
			return nil, fmt.Errorf("harness: model %q duplicates %q (cell keys would collide)", spec, prev)
		}
		seen[mdl.Name] = spec
		models = append(models, mdl)
	}
	traces, err := SelectTraces(req.Traces)
	if err != nil {
		return nil, err
	}
	scenarios := req.Scenarios
	if scenarios == "" {
		scenarios = "A"
	}
	scs, err := ParseScenarios(scenarios)
	if err != nil {
		return nil, err
	}
	lengths := req.Branches
	if len(lengths) == 0 {
		lengths = []int{DefaultSweepBranches}
	}
	for _, n := range lengths {
		if n <= 0 {
			return nil, fmt.Errorf("harness: bad branch count %d", n)
		}
	}
	return &Matrix{
		Models:    models,
		Traces:    traces,
		Scenarios: scs,
		Lengths:   lengths,
		DeltaLogs: req.DeltaLogs,
		Include:   req.Include,
		Exclude:   req.Exclude,
		Window:    req.Window,
		ExecDelay: req.ExecDelay,
	}, nil
}

// flushWriter flushes the HTTP response after every write, so each
// JSONL record reaches the submitting client as its cell completes —
// the streaming contract the local -o path has by virtue of being a
// file.
type flushWriter struct {
	w http.ResponseWriter
	f http.Flusher
}

func (fw flushWriter) Write(p []byte) (int, error) {
	n, err := fw.w.Write(p)
	if fw.f != nil {
		fw.f.Flush()
	}
	return n, err
}

func (s *Service) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SweepRequest", http.StatusMethodNotAllowed)
		return
	}
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("bad sweep request: %v", err), http.StatusBadRequest)
		return
	}
	m, err := s.matrix(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	jobs, err := m.Expand()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(jobs) == 0 {
		http.Error(w, "filters matched no cells", http.StatusBadRequest)
		return
	}
	if s.Config.Metrics != nil {
		s.Config.Metrics.Counter(MetricSweepSubmissions, "Sweep submissions accepted.").Inc()
	}
	cfg := s.Config
	cfg.Scheduler = &LeaseScheduler{Queue: s.Queue, Ctx: r.Context()}
	cfg.NoAggregates = cfg.NoAggregates || req.NoAggregates

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	sink := NewJSONLSink(flushWriter{w: w, f: flusher})
	s.logf(slog.LevelInfo, "harness: sweep submission: %d cells across %d models", len(jobs), len(m.Models))
	start := time.Now()
	var sum *Summary
	if s.Store != "" {
		// Store-backed: a resume against the coordinator's store, under
		// its lock (a concurrent submission against the same store fails
		// fast, exactly like two local -resume runs would). The response
		// streams what gets appended.
		sum, err = ResumeStoreFileTee(s.Store, jobs, cfg, nil, sink)
	} else {
		sum, err = RunJobs(jobs, cfg, sink)
	}
	if err != nil {
		// Headers are long gone; the stream just ends short. Log it and
		// let the client notice the truncation.
		s.logf(slog.LevelWarn, "harness: sweep failed mid-stream: %v", err)
		return
	}
	s.logf(slog.LevelInfo, "harness: sweep done: %d cells (%d failed, %d reused) in %s",
		sum.Jobs, sum.Failed, sum.Skipped, time.Since(start).Round(time.Millisecond))
}

func (s *Service) handleLease(w http.ResponseWriter, r *http.Request) {
	worker := r.URL.Query().Get("worker")
	if worker == "" {
		worker = "anonymous"
	}
	wait := time.Second
	if v := r.URL.Query().Get("wait"); v != "" {
		secs, err := strconv.ParseFloat(v, 64)
		if err != nil || secs < 0 || secs > 60 {
			http.Error(w, "bad wait (want seconds in [0,60])", http.StatusBadRequest)
			return
		}
		wait = time.Duration(secs * float64(time.Second))
	}
	lease := s.Queue.Acquire(worker, wait)
	if lease == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(lease); err != nil {
		// The grant is out but the worker never saw it; the TTL returns
		// its cells to the queue.
		s.logf(slog.LevelWarn, "harness: writing lease %s to %s: %v", lease.ID, worker, err)
	}
}

func (s *Service) handleRenew(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing lease id", http.StatusBadRequest)
		return
	}
	if err := s.Queue.Renew(id); err != nil {
		http.Error(w, err.Error(), http.StatusGone)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleResults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST JSONL records", http.StatusMethodNotAllowed)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		http.Error(w, "missing lease id", http.StatusBadRequest)
		return
	}
	recs, err := ReadRecords(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad results body: %v", err), http.StatusBadRequest)
		return
	}
	switch err := s.Queue.Complete(id, recs); {
	case errors.Is(err, ErrLeaseGone):
		http.Error(w, err.Error(), http.StatusGone)
	case err != nil:
		// Matched cells were delivered; the shortfall was requeued.
		http.Error(w, err.Error(), http.StatusConflict)
	default:
		w.WriteHeader(http.StatusNoContent)
	}
}
