//go:build !unix

package harness

import "os"

// lockStore is the portable fallback for platforms without flock: an
// O_EXCL sidecar lockfile next to the store (see acquireSidecarLock,
// which also reclaims stale locks left by crashed writers).
func lockStore(f *os.File, path string) (unlock func(), err error) {
	return acquireSidecarLock(path)
}

// pidAlive probes liveness without signalling anything. On Windows,
// os.FindProcess opens a handle and fails for a PID that is gone —
// exactly the answer needed. On platforms where FindProcess always
// succeeds this reports every PID alive, degrading to the old
// refuse-fast behaviour (never reclaiming) rather than ever
// reclaiming a lock whose owner might still run.
func pidAlive(pid int) bool {
	proc, err := os.FindProcess(pid)
	if err != nil {
		return false
	}
	proc.Release()
	return true
}
