//go:build !unix

package harness

import (
	"fmt"
	"os"
)

// lockStore is the portable fallback for platforms without flock: an
// O_EXCL sidecar lockfile next to the store. It serialises concurrent
// resumes the same way, but unlike the flock path a killed process
// leaves the lockfile behind — the error says which file to remove.
func lockStore(f *os.File, path string) (unlock func(), err error) {
	lockPath := path + ".lock"
	lf, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return nil, fmt.Errorf("harness: store %s is locked by another process (a concurrent resume is appending to it); wait for it to finish, or remove %s if its writer is gone", path, lockPath)
		}
		return nil, fmt.Errorf("harness: locking store %s: %w", path, err)
	}
	fmt.Fprintf(lf, "%d\n", os.Getpid())
	lf.Close()
	return func() { os.Remove(lockPath) }, nil
}
