package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/predictor"
)

// Tests for the store-lifecycle satellites: schema migration on read,
// drift-pruning compaction, the store lock, and spec validation on
// resume.

func writeStoreLines(t *testing.T, path string, recs ...Record) {
	t.Helper()
	var b strings.Builder
	for _, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(line)
		b.WriteByte('\n')
	}
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestReadStoreFileRejectsNewerSchema: a record stamped with a schema
// newer than the binary's must be rejected loudly — it is real data from
// a newer binary, never a crash tail to truncate away.
func TestReadStoreFileRejectsNewerSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	future := Record{
		Kind: KindCell, Model: "tage", Trace: "INT01", Scenario: "A", Branches: 40,
		Window: 24, ExecDelay: 6, MPKI: 1,
		Provenance: &Provenance{GitSHA: "abc", Schema: SchemaVersion + 1},
	}
	writeStoreLines(t, path, future)
	_, _, err := ReadStoreFile(path)
	if err == nil {
		t.Fatal("newer-schema record must be rejected")
	}
	for _, want := range []string{
		fmt.Sprint(SchemaVersion + 1), fmt.Sprint(SchemaVersion), "newer binary",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %q", err, want)
		}
	}

	// …and the rejection is positional: a newer-schema record mid-file is
	// just as fatal, not skipped.
	ok := Record{Kind: KindCell, Model: "tage", Trace: "INT02", Scenario: "A", Branches: 40, Window: 24, ExecDelay: 6, MPKI: 2}
	writeStoreLines(t, path, future, ok)
	if _, _, err := ReadStoreFile(path); err == nil {
		t.Fatal("newer-schema record followed by data must still be rejected")
	}
}

// TestReadStoreFileUpgradesOlderSchema: records written before the Spec
// field existed (schema 1: no provenance at all; schema 2: provenance
// without spec) are upgraded in place — Spec backfilled from the model
// identifier — so pre-spec stores participate in spec-validated resumes.
func TestReadStoreFileUpgradesOlderSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	writeStoreLines(t, path,
		Record{Kind: KindCell, Model: "tage", Trace: "INT01", Scenario: "A", Branches: 40, Window: 24, ExecDelay: 6, MPKI: 1},
		Record{Kind: KindCell, Model: "tage@+2", Trace: "INT01", Scenario: "A", Branches: 40, Window: 24, ExecDelay: 6, MPKI: 1,
			Provenance: &Provenance{GitSHA: "abc", Schema: 2}},
		Record{Kind: KindCell, Model: "tage:tables=9", Spec: "tage:tables=9", Trace: "INT01", Scenario: "A", Branches: 40, Window: 24, ExecDelay: 6, MPKI: 1,
			Provenance: &Provenance{GitSHA: "abc", Schema: SchemaVersion}},
		Record{Kind: KindSuite, Model: "tage", Scenario: "A", Branches: 40, Cells: 1, MPKI: 1},
	)
	recs, _, err := ReadStoreFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("read %d records", len(recs))
	}
	for i, want := range []string{"tage", "tage@+2", "tage:tables=9", "tage"} {
		if recs[i].Spec != want {
			t.Fatalf("record %d: spec %q, want %q", i, recs[i].Spec, want)
		}
	}
	// The upgrade is in-memory: provenance blocks keep the schema the
	// writer recorded.
	if recs[1].Provenance.Schema != 2 {
		t.Fatalf("upgrade rewrote recorded schema to %d", recs[1].Provenance.Schema)
	}
}

// TestPlanResumeSpecConflict: a stored cell whose recorded spec
// disagrees with the requested model's is a configuration conflict —
// never silently reused, never silently re-run over.
func TestPlanResumeSpecConflict(t *testing.T) {
	mdl := fakeModel("m", flat(2))
	mdl.Spec = "tage:tables=10"
	m := testMatrix(t, []Model{mdl}, []string{"INT01"}, []predictor.Scenario{predictor.ScenarioA}, []int{60})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	prior := []Record{{
		Kind: KindCell, Model: "m", Spec: "tage:tables=9",
		Trace: "INT01", Scenario: "A", Branches: 60, Window: 24, ExecDelay: 6, MPKI: 1,
	}}
	plan := PlanResume(jobs, prior, Provenance{})
	if len(plan.ConfigConflicts) != 1 || len(plan.Reused) != 0 {
		t.Fatalf("plan: %d conflicts, %d reused", len(plan.ConfigConflicts), len(plan.Reused))
	}
	for _, want := range []string{"tage:tables=9", "tage:tables=10", "spec"} {
		if !strings.Contains(plan.ConfigConflicts[0], want) {
			t.Fatalf("conflict %q does not mention %q", plan.ConfigConflicts[0], want)
		}
	}

	// Matching specs — and legacy records with no spec at all — reuse.
	prior[0].Spec = "tage:tables=10"
	if plan := PlanResume(jobs, prior, Provenance{}); len(plan.Reused) != 1 {
		t.Fatalf("matching spec not reused: %+v", plan.ConfigConflicts)
	}
	prior[0].Spec = ""
	if plan := PlanResume(jobs, prior, Provenance{}); len(plan.Reused) != 1 {
		t.Fatalf("spec-less record not reused: %+v", plan.ConfigConflicts)
	}
}

// TestResumeStoreFileLocked: a second resume against a locked store must
// fail fast with a clear message instead of interleaving appends, and
// the lock must release when the holder finishes.
func TestResumeStoreFileLocked(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	m := testMatrix(t, []Model{fakeModel("m", flat(2))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{60})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Hold the lock the way a concurrent resume would.
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	unlock, err := lockStore(f, path)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := ResumeStoreFile(path, jobs, Config{Parallelism: 1}, nil); err == nil {
		t.Fatal("resume against a locked store must fail")
	} else if !strings.Contains(err.Error(), "locked by another process") {
		t.Fatalf("lock error: %v", err)
	}

	unlock()
	sum, err := ResumeStoreFile(path, jobs, Config{Parallelism: 1}, nil)
	if err != nil {
		t.Fatalf("resume after unlock: %v", err)
	}
	if sum.Jobs != 1 || sum.Failed != 0 {
		t.Fatalf("resume summary: %+v", sum)
	}
	// The store is usable (and unlocked) afterwards: a re-resume plans
	// zero jobs.
	sum, err = ResumeStoreFile(path, jobs, Config{Parallelism: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 1 {
		t.Fatalf("re-resume skipped %d, want 1", sum.Skipped)
	}
}

// TestCompactPruneDrift: -prune-drift compaction drops cells recorded
// under a different git SHA than head, keeps SHA-less records (absence
// of provenance is not drift), and accounts the drops.
func TestCompactPruneDrift(t *testing.T) {
	head := Provenance{GitSHA: "headsha", Schema: SchemaVersion}
	old := &Provenance{GitSHA: "oldsha", Schema: SchemaVersion}
	cur := &Provenance{GitSHA: "headsha", Schema: SchemaVersion}
	cell := func(traceName string, p *Provenance, mpki float64) Record {
		return Record{Kind: KindCell, Model: "m", Spec: "m", Trace: traceName, Category: "INT",
			Scenario: "A", Branches: 40, Window: 24, ExecDelay: 6, MPKI: mpki, Provenance: p}
	}
	recs := []Record{
		cell("INT01", old, 1), // drifted: dropped
		cell("INT01", cur, 2), // head: canonical for its key
		cell("INT02", old, 3), // drifted, never re-measured: key vanishes
		cell("INT03", nil, 4), // no provenance: kept
		{Kind: KindSuite, Model: "m", Scenario: "A", Branches: 40, Cells: 3, MPKI: 2},
	}
	out, stats := CompactWith(recs, CompactOpts{PruneDrift: true, Head: head})
	if stats.DriftDropped != 2 {
		t.Fatalf("drift dropped %d, want 2: %+v", stats.DriftDropped, stats)
	}
	var keys []string
	for _, r := range out {
		if r.Kind == KindCell {
			keys = append(keys, r.Key())
		}
	}
	want := []string{"m/INT01/A/40", "m/INT03/A/40"}
	if len(keys) != 2 || keys[0] != want[0] || keys[1] != want[1] {
		t.Fatalf("surviving keys %v, want %v", keys, want)
	}
	// Accounting closes: cells in = cells out + drops of each kind.
	if stats.CellsIn-stats.CellsOut != stats.SupersededFailed+stats.DuplicateCells+stats.DriftDropped {
		t.Fatalf("accounting open: %+v", stats)
	}
	// Aggregates were recomputed over the survivors.
	if stats.AggregatesOut == 0 {
		t.Fatalf("no recomputed aggregates: %+v", stats)
	}

	// No head SHA, or pruning off: nothing drift-dropped.
	if _, s := CompactWith(recs, CompactOpts{PruneDrift: true}); s.DriftDropped != 0 {
		t.Fatalf("empty-head prune dropped %d", s.DriftDropped)
	}
	if _, s := Compact(recs); s.DriftDropped != 0 {
		t.Fatalf("plain compact dropped %d drifted", s.DriftDropped)
	}
}
