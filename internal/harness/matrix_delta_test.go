package harness

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// scalableFake wraps fakeModel with a Scale hook whose per-delta MPKI
// halves with each budget doubling, so tests can see scaling took.
func scalableFake(name string) Model {
	m := fakeModel(name, flat(64))
	m.Scale = func(d int) Model {
		v := 64.0
		for i := 0; i < d; i++ {
			v /= 2
		}
		for i := 0; i > d; i-- {
			v *= 2
		}
		sm := fakeModel("SCALED-NAME-IGNORED", flat(v))
		sm.StorageBits = 1 << uint(16+d)
		return sm
	}
	return m
}

func TestScaledName(t *testing.T) {
	for _, tc := range []struct {
		d    int
		want string
	}{{-4, "tage@-4"}, {0, "tage@+0"}, {3, "tage@+3"}} {
		if got := ScaledName("tage", tc.d); got != tc.want {
			t.Errorf("ScaledName(tage, %d) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestMatrixDeltaAxisExpansion(t *testing.T) {
	m := testMatrix(t, []Model{scalableFake("m")}, []string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	m.DeltaLogs = []int{-1, 0, 2}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs, want 6 (3 deltas x 2 traces)", len(jobs))
	}
	// Budget curve contiguous: deltas nest directly under the model, and
	// Expand overrides whatever name Scale returned.
	wantKeys := []string{
		"m@-1/INT01/A/50", "m@-1/INT02/A/50",
		"m@+0/INT01/A/50", "m@+0/INT02/A/50",
		"m@+2/INT01/A/50", "m@+2/INT02/A/50",
	}
	for i, w := range wantKeys {
		if jobs[i].Key() != w {
			t.Fatalf("jobs[%d] = %s, want %s", i, jobs[i].Key(), w)
		}
	}
	wantDeltas := []int{-1, -1, 0, 0, 2, 2}
	for i, j := range jobs {
		if j.DeltaLog != wantDeltas[i] {
			t.Fatalf("jobs[%d].DeltaLog = %d, want %d", i, j.DeltaLog, wantDeltas[i])
		}
		if j.Model.StorageBits != 1<<uint(16+j.DeltaLog) {
			t.Fatalf("jobs[%d].StorageBits = %d", i, j.Model.StorageBits)
		}
	}

	// Cell filters see the scaled names.
	m.Include = []string{"m@+2/*/*/*"}
	jobs, err = m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 {
		t.Fatalf("include on scaled name kept %d jobs, want 2", len(jobs))
	}

	// A single-field filter on the base model name keeps selecting its
	// cells after the axis renames them (an include that worked without
	// -delta must not silently match nothing with it).
	m.Include = []string{"m"}
	jobs, err = m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("include on base name kept %d jobs, want 6", len(jobs))
	}
}

func TestMatrixDeltaAxisRunRecords(t *testing.T) {
	m := testMatrix(t, []Model{scalableFake("m")}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	m.DeltaLogs = []int{-1, 0, 1}
	sink := &collectSink{}
	sum, err := Run(m, Config{}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 3 || sum.Failed != 0 {
		t.Fatalf("summary = %+v", sum)
	}
	// Scaled budgets actually run distinct models: MPKI follows the
	// 2^delta scaling the fake encodes, and records carry the axis.
	wantMPKI := map[int]float64{-1: 128, 0: 64, 1: 32}
	seen := 0
	for _, r := range sink.recs {
		if r.Kind != KindCell {
			// Aggregates inherit the group's budget fields.
			if r.StorageBits == 0 {
				t.Fatalf("aggregate without storage bits: %+v", r)
			}
			continue
		}
		seen++
		if r.MPKI != wantMPKI[r.DeltaLog] {
			t.Fatalf("delta %+d MPKI = %v, want %v", r.DeltaLog, r.MPKI, wantMPKI[r.DeltaLog])
		}
		if r.StorageBits != 1<<uint(16+r.DeltaLog) {
			t.Fatalf("delta %+d storage bits = %d", r.DeltaLog, r.StorageBits)
		}
		if r.Model != ScaledName("m", r.DeltaLog) {
			t.Fatalf("cell model = %q", r.Model)
		}
	}
	if seen != 3 {
		t.Fatalf("saw %d cells", seen)
	}
}

func TestMatrixDeltaAxisErrors(t *testing.T) {
	unscalable := testMatrix(t, []Model{fakeModel("plain", flat(1))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	unscalable.DeltaLogs = []int{0, 1}
	if _, err := unscalable.Expand(); err == nil || !strings.Contains(err.Error(), "plain") {
		t.Fatalf("unscalable model must fail expansion by name, got %v", err)
	}

	dup := testMatrix(t, []Model{scalableFake("m")}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	dup.DeltaLogs = []int{1, -1, 1}
	if _, err := dup.Expand(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate deltas must fail expansion, got %v", err)
	}
}

func TestMatrixEmptyDeltaAxisUnchanged(t *testing.T) {
	// Without DeltaLogs the expansion of a scalable model is identical to
	// a pre-axis matrix: base name, delta 0 — existing baselines keep
	// their keys.
	m := testMatrix(t, []Model{scalableFake("m")}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].Key() != "m/INT01/A/50" || jobs[0].DeltaLog != 0 {
		t.Fatalf("jobs = %+v", jobs)
	}
}

// TestRecordKeyUniquenessProperty is the resume/diff correctness
// backstop: across randomly shaped matrices — including the deltaLog
// axis — every expanded job must produce a distinct Record.Key().
// Duplicate keys would silently corrupt the resume store (a cell skipped
// because an unrelated cell wrote its key) and diff indexing.
func TestRecordKeyUniquenessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260727))
	traces := []string{"INT01", "INT02", "MM01", "WS03", "SERVER01", "CLIENT02"}
	scenarios := []predictor.Scenario{
		predictor.ScenarioI, predictor.ScenarioA, predictor.ScenarioB, predictor.ScenarioC,
	}
	pick := func(max int) int { return 1 + rng.Intn(max) } // at least one

	for iter := 0; iter < 200; iter++ {
		var models []Model
		for i, n := 0, pick(3); i < n; i++ {
			models = append(models, scalableFake(fmt.Sprintf("m%d", i)))
		}
		shuffled := append([]string(nil), traces...)
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		m := testMatrix(t, models, shuffled[:pick(len(shuffled))],
			scenarios[:pick(len(scenarios))], nil)
		for i, n := 0, pick(3); i < n; i++ {
			m.Lengths = append(m.Lengths, 50*(i+1))
		}
		if rng.Intn(3) > 0 { // two thirds of the matrices get a budget axis
			span := 1 + rng.Intn(8)
			lo := rng.Intn(9) - 5
			for d := lo; d < lo+span; d++ {
				m.DeltaLogs = append(m.DeltaLogs, d)
			}
		}

		jobs, err := m.Expand()
		if err != nil {
			t.Fatalf("iter %d: %v (matrix %+v)", iter, err, m)
		}
		seen := make(map[string]int, len(jobs))
		for i, j := range jobs {
			key := j.Key()
			if prev, dup := seen[key]; dup {
				t.Fatalf("iter %d: duplicate key %q for jobs %d and %d", iter, key, prev, i)
			}
			seen[key] = i
			// The streamed record must agree with the job about the key
			// (resume matches file records against expanded jobs by it).
			rec := cellRecord(j, sim.Result{})
			if rec.Key() != key {
				t.Fatalf("iter %d: record key %q != job key %q", iter, rec.Key(), key)
			}
			fr := failedRecord(j, fmt.Errorf("x"))
			if fr.Key() != key {
				t.Fatalf("iter %d: failed-record key %q != job key %q", iter, fr.Key(), key)
			}
		}
	}
}

// Guard against the Scale hook capturing loop variables or otherwise
// aliasing state across variants: two variants' Run functions must not
// interfere (each fresh per expansion).
func TestMatrixDeltaVariantsIndependent(t *testing.T) {
	m := testMatrix(t, []Model{scalableFake("m")}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	m.DeltaLogs = []int{-2, 2}
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{Name: "INT01", Category: "INT"}
	a := jobs[0].Model.Run(tr, sim.Options{})
	b := jobs[1].Model.Run(tr, sim.Options{})
	if a.MPKI != 256 || b.MPKI != 16 {
		t.Fatalf("variant runs aliased: MPKI %v / %v, want 256 / 16", a.MPKI, b.MPKI)
	}
}
