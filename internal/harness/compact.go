package harness

// Store compaction. An append-only result store accumulates garbage as
// it lives: failed cells whose retry later succeeded (the error record
// stays in the stream), duplicate successes from overlapping sweeps,
// and one aggregate set per completed run or resume — only the last of
// which describes the store's current cell population. Compact rewrites
// the record stream down to its canonical content without changing what
// any reader observes: PlanResume, Diff and PerfRows all resolve a
// compacted store exactly as they resolve the uncompacted one.

// CompactStats reports what a compaction kept and dropped.
type CompactStats struct {
	// In and Out count all records (cells plus aggregates).
	In, Out int
	// CellsIn and CellsOut count cell records; CellsOut is also the
	// number of distinct cell keys in the input.
	CellsIn, CellsOut int
	// SupersededFailed counts failed cell records dropped because a later
	// record for the same key succeeded.
	SupersededFailed int
	// DuplicateCells counts the other dropped cell records: an older
	// success shadowed by a newer one, an older failure shadowed by a
	// newer failure, or a stale failure appended after a success.
	DuplicateCells int
	// FailedKept counts canonical records that are still failures (keys
	// that never succeeded stay in the store so a resume retries them).
	FailedKept int
	// AggregatesIn counts aggregate records in the input (every completed
	// run or resume appended one full set); AggregatesOut counts the
	// single recomputed set in the output, or 0 when the input had none.
	AggregatesIn, AggregatesOut int
	// DriftDropped counts cell records dropped by CompactOpts.PruneDrift:
	// recorded under a git SHA other than the head's. Always 0 without
	// pruning.
	DriftDropped int
}

// Dropped is the net record-count reduction.
func (s CompactStats) Dropped() int { return s.In - s.Out }

// Compact rewrites a store's records down to their canonical form:
// exactly one record per cell key, in first-appearance (i.e. expansion)
// order, resolving each key the way every reader already does — the
// newest successful record wins; a key that never succeeded keeps its
// newest failure so resumes still retry it. Stale aggregate sets are
// dropped and, when the input carried aggregates at all, replaced by a
// single set recomputed over the surviving cells (identical to the set
// a completed run over those cells would have appended; a cell-only
// store stays cell-only). Canonical cell records are preserved verbatim
// — metrics, telemetry and provenance untouched — so compaction is safe
// on live stores: resuming, diffing or perf-rendering the compacted
// store is indistinguishable from using the original.
//
// Compact is idempotent and total: it never fails, never invents cell
// keys, and compacting a compacted store returns it unchanged.
func Compact(recs []Record) ([]Record, CompactStats) {
	return CompactWith(recs, CompactOpts{})
}

// CompactOpts tunes CompactWith beyond the canonicalising default.
type CompactOpts struct {
	// PruneDrift drops every cell record recorded under a git SHA other
	// than Head's before canonicalising, so a store that has drifted
	// across revisions is cut back to the cells HEAD actually produced —
	// a subsequent resume re-measures the dropped keys at HEAD. Records
	// with no SHA at all are kept: absence of provenance is not evidence
	// of drift (and pre-provenance stores would otherwise be emptied).
	PruneDrift bool
	// Head is the provenance to prune against (CurrentProvenance for the
	// CLI). Pruning with an empty Head SHA is a no-op.
	Head Provenance
}

// CompactWith is Compact with options; see CompactOpts.
func CompactWith(recs []Record, opts CompactOpts) ([]Record, CompactStats) {
	stats := CompactStats{In: len(recs)}
	type slot struct {
		rec Record
		ok  bool // rec is a successful record
	}
	prune := opts.PruneDrift && opts.Head.GitSHA != ""
	canon := make(map[string]*slot)
	var order []string
	for _, r := range recs {
		switch r.Kind {
		case KindCell, "":
			stats.CellsIn++
			if prune && r.Provenance != nil && r.Provenance.GitSHA != "" && r.Provenance.GitSHA != opts.Head.GitSHA {
				stats.DriftDropped++
				continue
			}
			key := r.Key()
			s, seen := canon[key]
			if !seen {
				canon[key] = &slot{rec: r, ok: !r.Failed()}
				order = append(order, key)
				continue
			}
			switch {
			case !r.Failed():
				if s.ok {
					stats.DuplicateCells++ // newer success shadows older
				} else {
					stats.SupersededFailed++ // the retry that worked
				}
				s.rec, s.ok = r, true
			case s.ok:
				stats.DuplicateCells++ // stale failure after a success
			default:
				stats.DuplicateCells++ // newer failure shadows older
				s.rec = r
			}
		default:
			stats.AggregatesIn++
		}
	}

	out := make([]Record, 0, len(order))
	for _, key := range order {
		s := canon[key]
		if s.rec.Failed() {
			stats.FailedKept++
		}
		out = append(out, s.rec)
	}
	stats.CellsOut = len(out)
	if stats.AggregatesIn > 0 {
		aggs := Aggregate(out)
		// Aggregates describe the surviving cells: when those all share
		// one provenance block the recomputed set inherits it, so
		// compacting a single-revision store cannot make it look
		// multi-revision. Mixed-revision cells leave the aggregates
		// unstamped — no single SHA would be true.
		if p := uniformProvenance(out); p != nil {
			for i := range aggs {
				aggs[i].Provenance = p
			}
		}
		stats.AggregatesOut = len(aggs)
		out = append(out, aggs...)
	}
	stats.Out = len(out)
	return out, stats
}

// uniformProvenance returns the provenance block shared by every record,
// or nil when they disagree (or none carry one).
func uniformProvenance(recs []Record) *Provenance {
	var p *Provenance
	for i, r := range recs {
		if i == 0 {
			p = r.Provenance
			continue
		}
		if p == nil || r.Provenance == nil || *r.Provenance != *p {
			return nil
		}
	}
	return p
}
