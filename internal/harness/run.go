package harness

import (
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config controls matrix execution.
type Config struct {
	// Parallelism bounds concurrent jobs (default: NumCPU).
	Parallelism int
	// NoTraceCache disables sharing of generated traces between jobs.
	// By default a trace is synthesised once per (benchmark, length) and
	// reused across every model and scenario touching it — the dominant
	// saving in wide matrices — at the cost of holding distinct traces in
	// memory for the duration of the run.
	NoTraceCache bool
	// NoAggregates suppresses the category/hard/suite rollup records.
	NoAggregates bool
	// Provenance, when non-nil, is stamped onto every record the run
	// produces (cells and aggregates alike), so an appended store line
	// always says which code wrote it. Callers that persist records
	// should pass CurrentProvenance; nil leaves records unstamped (the
	// pre-provenance behaviour, and what deterministic in-memory tests
	// want).
	Provenance *Provenance
	// Metrics, when non-nil, receives the run's operational telemetry:
	// job counts and latencies, per-worker in-flight gauges, trace-cache
	// hits, cell progress, records per kind, branches retired and the
	// derived branches/sec (see the Metric* constants and the sim
	// package's families). Nil is a zero-overhead no-op — the hot path
	// and result stream are bit-identical with telemetry off, which is
	// why the registry is injected here rather than being a global.
	Metrics *metrics.Registry
	// NoPredictorPool disables per-worker predictor reuse: every cell
	// constructs a fresh predictor through Model.Run even when the model
	// offers a NewRunner hook. By default repeated cells of the same
	// model Reset a pooled instance instead of reallocating its tables,
	// which is byte-identical and skips construction entirely.
	NoPredictorPool bool
	// IntraCellWorkers shards each cell group's traces (jobs sharing
	// model, scenario, branches and deltaLog) across this many goroutines
	// with per-shard pooled runners and deterministic trace assignment.
	// Results and emission order are byte-identical to a serial run.
	// Zero or one disables intra-cell parallelism. Run seeds it from
	// Matrix.IntraCellWorkers when unset here.
	IntraCellWorkers int
	// WarmCache, when non-empty, names a checkpoint blob directory
	// (conventionally WarmCacheDir(storePath), i.e. "store.jsonl.ckpt/").
	// Each cell then warm-starts from its cached predictor+pipeline
	// snapshot when one matches — skipping the already-simulated prefix —
	// and saves checkpoints (periodic plus end-of-trace) as it runs, so a
	// repeated sweep skips warm-up entirely and an interrupted long cell
	// resumes mid-trace on the next run. Results are byte-identical to a
	// cold run modulo wall-clock telemetry; any unusable blob silently
	// falls back to a cold start (the cache is never a correctness
	// dependency). Empty disables checkpointing.
	WarmCache string
	// CheckpointEvery is the periodic checkpoint interval in branches
	// when WarmCache is set (zero selects DefaultCheckpointEvery).
	CheckpointEvery uint64
	// Scheduler, when non-nil, executes the expanded jobs in place of
	// the in-process worker pool — the seam the distributed sweep
	// service plugs into (see LeaseScheduler). Nil selects the local
	// pool; every current caller is unchanged.
	Scheduler Scheduler
	// Log, when non-nil, receives operational diagnostics the harness
	// would otherwise swallow (warm-cache write failures, lease-protocol
	// chatter) at slog levels: Debug for -v detail, Warn for conditions
	// worth surfacing. Nil keeps the harness silent, as before.
	Log *slog.Logger
}

// DefaultCheckpointEvery is the periodic checkpoint interval (in
// branches) used when Config.WarmCache is set without an explicit
// Config.CheckpointEvery.
const DefaultCheckpointEvery = 1_000_000

func (c Config) checkpointEvery() uint64 {
	if c.CheckpointEvery > 0 {
		return c.CheckpointEvery
	}
	return DefaultCheckpointEvery
}

func (c Config) workers() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.NumCPU()
}

// Summary is the outcome of a matrix run.
type Summary struct {
	// Jobs counts the cells of the expanded grid; on a resume run,
	// Jobs-Skipped of them were actually executed.
	Jobs int
	// Skipped counts cells reused from a prior result store instead of
	// re-run (always 0 outside RunResume).
	Skipped int
	Failed  int
	Records []Record // every record emitted, in emission order
	// Merged is the run's complete cell set in expansion order — fresh
	// records plus, on a resume, the reused ones with their preserved
	// telemetry — regardless of what was emitted. It is what a
	// resume-aware perf table renders: PerfRows(sum.Merged) covers every
	// cell of the grid even when the store was already complete and the
	// run appended nothing.
	Merged []Record
}

// traceCache memoises workload generation per (benchmark, length). Each
// entry is built at most once even under concurrent demand. The hit and
// miss counters are nil-safe no-ops when telemetry is off; a "miss" is
// the lookup that inserted the entry (and therefore pays the
// generation), every other lookup is a hit even if it briefly waits on
// the builder.
type traceCache struct {
	mu           sync.Mutex
	m            map[string]*traceEntry
	hits, misses *metrics.Counter
}

type traceEntry struct {
	once sync.Once
	tr   *trace.Trace
}

func (c *traceCache) get(spec workload.Spec, branches int) *trace.Trace {
	key := fmt.Sprintf("%s/%d", spec.Name, branches)
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &traceEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if ok {
		c.hits.Inc()
	} else {
		c.misses.Inc()
	}
	e.once.Do(func() { e.tr = workload.Generate(spec, branches) })
	return e.tr
}

// Run expands the matrix and executes every job on the worker pool,
// streaming records to sink in deterministic order: cells in expansion
// order (a reorder buffer decouples worker completion order from
// emission order, so output starts as soon as the first cell finishes),
// then aggregates grouped per (model, scenario, length). A job that
// panics yields a Record with Err set and does not abort the run.
func Run(m *Matrix, cfg Config, sink Sink) (*Summary, error) {
	jobs, err := m.Expand()
	if err != nil {
		return nil, err
	}
	if cfg.IntraCellWorkers == 0 {
		cfg.IntraCellWorkers = m.IntraCellWorkers
	}
	return RunJobs(jobs, cfg, sink)
}

// RunJobs executes an already-expanded job list (see Matrix.Expand).
func RunJobs(jobs []Job, cfg Config, sink Sink) (*Summary, error) {
	sum := &Summary{Jobs: len(jobs)}
	rm := newRunMetrics(cfg.Metrics)
	rm.beginRun(len(jobs), 0)
	emit, emitErr := emitter(sum, sink, rm)
	results := cfg.scheduler().Schedule(jobs, cfg, func(r Record) {
		if r.Failed() {
			sum.Failed++
		}
		emit(r)
	})
	sum.Merged = results
	if *emitErr == nil && !cfg.NoAggregates {
		for _, agg := range Aggregate(results) {
			// Every cell of a single run carries cfg.Provenance, so the
			// rollups over them truthfully do too.
			agg.Provenance = cfg.Provenance
			emit(agg)
		}
	}
	return sum, closeSink(sink, *emitErr)
}

// runnerArena holds one worker's (or one intra-cell shard's) pooled run
// functions, keyed by the model's canonical spec (name when the model was
// built without one). It is only ever touched from the goroutine that
// owns it, so lookups are lock-free; the hit/miss counters feed the
// pool's telemetry.
type runnerArena struct {
	m            map[string]func(tr *trace.Trace, opt sim.Options) sim.Result
	hits, misses *metrics.Counter
}

// runner resolves the run function for a job's model: the pooled runner
// when the model offers one (created on first use, Reset-reused after),
// the plain cold-construction Run otherwise.
func (a *runnerArena) runner(mdl Model) func(tr *trace.Trace, opt sim.Options) sim.Result {
	if a == nil || mdl.NewRunner == nil {
		return mdl.Run
	}
	key := mdl.Spec
	if key == "" {
		key = mdl.Name
	}
	if fn, ok := a.m[key]; ok {
		a.hits.Inc()
		return fn
	}
	a.misses.Inc()
	fn := mdl.NewRunner()
	if fn == nil {
		fn = mdl.Run
	}
	a.m[key] = fn
	return fn
}

// executeJobs runs the job list on the worker pool, invoking visit for
// every record in job order as results complete (a reorder buffer
// decouples worker completion order from visit order, so streaming
// starts with the first finished cell), and returns all records.
//
// With cfg.IntraCellWorkers > 1 the scheduling is two-level: the outer
// pool hands out cell groups (jobs sharing model, scenario, branches and
// deltaLog), and each group's traces are sharded across up to
// IntraCellWorkers goroutines with a deterministic stride. Every trace
// starts from a cold (Reset or fresh) predictor either way, so the
// records — and their emission order — are byte-identical to the serial
// schedule.
func executeJobs(jobs []Job, cfg Config, rm *runMetrics, visit func(Record)) []Record {
	cache := &traceCache{m: make(map[string]*traceEntry)}
	if rm != nil {
		cache.hits, cache.misses = rm.cacheHits, rm.cacheMisses
		rm.poolStart = time.Now()
	}
	wc := newWarmCache(cfg.WarmCache, rm, cfg.Log)
	results := make([]Record, len(jobs))
	done := make([]chan struct{}, len(jobs))
	for i := range done {
		done[i] = make(chan struct{})
	}

	newArena := func() *runnerArena {
		if cfg.NoPredictorPool {
			return nil
		}
		a := &runnerArena{m: make(map[string]func(tr *trace.Trace, opt sim.Options) sim.Result)}
		if rm != nil {
			a.hits, a.misses = rm.poolHits, rm.poolMisses
		}
		return a
	}

	runOne := func(i, w int, arena *runnerArena, shardCtr *metrics.Counter) {
		defer close(done[i])
		j := jobs[i]
		j.Opts.Metrics = cfg.Metrics
		run := arena.runner(j.Model)
		jobDone := rm.jobBegin(w)
		var res Record
		err := Protect(func() {
			var tr *trace.Trace
			if cfg.NoTraceCache {
				tr = workload.Generate(j.Spec, j.Branches)
			} else {
				tr = cache.get(j.Spec, j.Branches)
			}
			if wc != nil {
				key := wc.key(j, tr)
				j.Opts.Resume = wc.load(key)
				j.Opts.CheckpointEvery = cfg.checkpointEvery()
				j.Opts.OnCheckpoint = func(blob []byte, at uint64) { wc.save(key, blob, at) }
			}
			r := run(tr, j.Opts)
			if wc != nil {
				// A hit is a warm start that actually took: a blob the sim
				// refused (stale geometry, mismatched pipeline) cold-starts
				// and counts as a miss, so the hit metric certifies reuse.
				if j.Opts.Resume != nil && r.ResumeErr == nil {
					wc.hits.Inc()
				} else {
					wc.misses.Inc()
				}
			}
			res = cellRecord(j, r)
		})
		if err != nil {
			res = failedRecord(j, err)
		}
		jobDone(res.Failed())
		if cfg.Provenance != nil {
			res.Provenance = cfg.Provenance
		}
		results[i] = res
		shardCtr.Add(res.SimBranches)
	}

	if cfg.IntraCellWorkers > 1 {
		groups := groupJobs(jobs)
		var shardVec *metrics.CounterVec
		if cfg.Metrics != nil {
			shardVec = cfg.Metrics.CounterVec(sim.MetricShardBranches, sim.HelpShardBranches, "shard")
		}
		go forEachWorker(len(groups), cfg.workers(), func(w, gi int) {
			g := groups[gi]
			shards := cfg.IntraCellWorkers
			if shards > len(g) {
				shards = len(g)
			}
			var wg sync.WaitGroup
			for s := 0; s < shards; s++ {
				wg.Add(1)
				go func(s int) {
					defer wg.Done()
					arena := newArena()
					var ctr *metrics.Counter
					if shardVec != nil {
						ctr = shardVec.With(strconv.Itoa(s))
					}
					// Stride assignment: shard s owns the group's s-th,
					// (s+shards)-th, ... traces, independent of timing.
					for k := s; k < len(g); k += shards {
						runOne(g[k], w, arena, ctr)
					}
				}(s)
			}
			wg.Wait()
		})
	} else {
		arenas := make([]*runnerArena, cfg.workers())
		go forEachWorker(len(jobs), cfg.workers(), func(w, i int) {
			if w < len(arenas) && arenas[w] == nil {
				arenas[w] = newArena()
			}
			var arena *runnerArena
			if w < len(arenas) {
				arena = arenas[w]
			}
			runOne(i, w, arena, nil)
		})
	}

	for i := range jobs {
		<-done[i]
		visit(results[i])
	}
	return results
}

// groupJobs partitions job indices into cell groups — jobs sharing
// (model, scenario, branches, deltaLog), i.e. differing only by trace —
// in first-appearance (expansion) order, members in expansion order.
func groupJobs(jobs []Job) [][]int {
	type gkey struct {
		model, scenario    string
		branches, deltaLog int
	}
	idx := make(map[gkey]int)
	var groups [][]int
	for i, j := range jobs {
		k := gkey{model: j.Model.Name, scenario: j.Scenario.Letter(), branches: j.Branches, deltaLog: j.DeltaLog}
		gi, ok := idx[k]
		if !ok {
			gi = len(groups)
			idx[k] = gi
			groups = append(groups, nil)
		}
		groups[gi] = append(groups[gi], i)
	}
	return groups
}

// emitter wraps a sink for the run loops: a sink failure mid-stream must
// not strand the worker pool or skip Close, so emit stops forwarding on
// the first error (returned via the pointer) while callers keep
// draining.
func emitter(sum *Summary, sink Sink, rm *runMetrics) (emit func(Record), emitErr *error) {
	var err error
	return func(r Record) {
		if err != nil {
			return
		}
		rm.recordEmitted(r)
		sum.Records = append(sum.Records, r)
		err = sink.Emit(r)
	}, &err
}

// closeSink closes the sink, preferring an earlier emit error.
func closeSink(sink Sink, emitErr error) error {
	if closeErr := sink.Close(); emitErr == nil {
		return closeErr
	}
	return emitErr
}

// groupKey identifies one (model, scenario, length) aggregation group.
type groupKey struct {
	model    string
	scenario string
	branches int
}

type accum struct {
	mpki, mppki float64
	mispredicts uint64
	simBranches uint64
	elapsed     float64
	cells       int
	// deltaLog, storageBits and spec are constant across a group's cells
	// (the canonical model name is part of the group identity); the first
	// cell stamps them so budget-sweep aggregates stay plottable on their
	// own and aggregates say which configuration they roll up.
	deltaLog    int
	storageBits int
	spec        string
}

func (a *accum) add(r Record) {
	if a.cells == 0 {
		a.deltaLog = r.DeltaLog
		a.storageBits = r.StorageBits
		a.spec = r.Spec
	}
	a.mpki += r.MPKI
	a.mppki += r.MPPKI
	a.mispredicts += r.Mispredicts
	a.simBranches += r.SimBranches
	a.elapsed += r.ElapsedSec
	a.cells++
}

func (a *accum) record(kind string, g groupKey, category string) Record {
	r := Record{
		Kind:        kind,
		Model:       g.model,
		Spec:        a.spec,
		Category:    category,
		Scenario:    g.scenario,
		Branches:    g.branches,
		DeltaLog:    a.deltaLog,
		StorageBits: a.storageBits,
		MPKISum:     a.mpki,
		MPPKISum:    a.mppki,
		Mispredicts: a.mispredicts,
		SimBranches: a.simBranches,
		ElapsedSec:  a.elapsed,
		Cells:       a.cells,
	}
	if a.cells > 0 {
		r.MPKI = a.mpki / float64(a.cells)
		r.MPPKI = a.mppki / float64(a.cells)
	}
	if a.elapsed > 0 {
		// Group throughput: total branches over total simulation time.
		r.BranchesPerSec = float64(a.simBranches) / a.elapsed
	}
	return r
}

// Aggregate rolls successful cell records up into per-category, hard-7
// and suite aggregates within each (model, scenario, length) group,
// in a deterministic order: groups in first-appearance order, categories
// sorted, then hard subset, then suite. Failed cells are excluded from
// the rollup (their absence is visible via Cells).
func Aggregate(cells []Record) []Record {
	var order []groupKey
	suites := make(map[groupKey]*accum)
	hards := make(map[groupKey]*accum)
	cats := make(map[groupKey]map[string]*accum)
	hardNames := workload.HardNames

	for _, r := range cells {
		if r.Kind != KindCell && r.Kind != "" {
			continue
		}
		if r.Failed() {
			continue
		}
		g := groupKey{model: r.Model, scenario: r.Scenario, branches: r.Branches}
		if _, ok := suites[g]; !ok {
			order = append(order, g)
			suites[g] = &accum{}
			hards[g] = &accum{}
			cats[g] = make(map[string]*accum)
		}
		suites[g].add(r)
		if hardNames[r.Trace] {
			hards[g].add(r)
		}
		c := cats[g][r.Category]
		if c == nil {
			c = &accum{}
			cats[g][r.Category] = c
		}
		c.add(r)
	}

	var out []Record
	for _, g := range order {
		catNames := make([]string, 0, len(cats[g]))
		for name := range cats[g] {
			catNames = append(catNames, name)
		}
		sort.Strings(catNames)
		for _, name := range catNames {
			out = append(out, cats[g][name].record(KindCategory, g, name))
		}
		if hards[g].cells > 0 {
			out = append(out, hards[g].record(KindHard, g, ""))
		}
		out = append(out, suites[g].record(KindSuite, g, ""))
	}
	return out
}
