package harness

import "fmt"

// MergeStores unions record stores produced by partial runs of one
// logical sweep — partitioned submissions to different coordinators,
// salvaged stores from interrupted runs — into a single canonical
// store, equivalent to compacting their concatenation:
//
//   - Cells resolve exactly as Compact resolves a single store: the
//     newest successful record per key wins (later arguments are
//     "newer"), keys that never succeeded keep their newest failure so a
//     resume retries them. Order is first appearance across the
//     concatenation, which for disjoint model/trace partitions is the
//     partitions in argument order.
//   - Stale per-partition aggregate sets are dropped and one set is
//     recomputed over the merged cells (even when no input carried
//     aggregates — a merge's whole point is the union view).
//
// Merging refuses stores that disagree about a cell: two successful
// records with the same key but different Window/ExecDelay or different
// non-empty Specs were produced by different experiments, and silently
// letting the newer one win would fabricate a sweep nobody ran. This is
// the same conflict rule a -resume run applies against its store.
func MergeStores(stores ...[]Record) ([]Record, CompactStats, error) {
	var all []Record
	for _, s := range stores {
		all = append(all, s...)
	}
	if err := mergeConflicts(all); err != nil {
		return nil, CompactStats{}, err
	}
	out, stats := Compact(all)
	if stats.AggregatesOut == 0 && stats.CellsOut > 0 {
		aggs := Aggregate(out)
		if p := uniformProvenance(out); p != nil {
			for i := range aggs {
				aggs[i].Provenance = p
			}
		}
		stats.AggregatesOut = len(aggs)
		out = append(out, aggs...)
		stats.Out = len(out)
	}
	return out, stats, nil
}

// mergeConflicts scans for cells the input stores disagree on. Only
// successful records participate: failed records don't carry
// Window/ExecDelay (see failedRecord), and a failure can't contradict a
// measurement.
func mergeConflicts(recs []Record) error {
	type seen struct {
		window, delay int
		spec          string
	}
	cells := make(map[string]*seen)
	var conflicts int
	var first string
	for _, r := range recs {
		if (r.Kind != KindCell && r.Kind != "") || r.Failed() {
			continue
		}
		key := r.Key()
		s, ok := cells[key]
		if !ok {
			cells[key] = &seen{window: r.Window, delay: r.ExecDelay, spec: r.Spec}
			continue
		}
		switch {
		case s.window != r.Window || s.delay != r.ExecDelay:
			conflicts++
		case s.spec != "" && r.Spec != "" && s.spec != r.Spec:
			conflicts++
		default:
			if s.spec == "" {
				s.spec = r.Spec
			}
			continue
		}
		if first == "" {
			first = key
		}
	}
	if conflicts > 0 {
		return fmt.Errorf("harness: stores disagree on %d cell(s) (first: %s) — different window/exec-delay or model spec; refusing to merge", conflicts, first)
	}
	return nil
}
