package harness

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// acquireSidecarLock serialises store writers with an O_EXCL lockfile
// next to the store, used on platforms without flock. Unlike flock, a
// killed process leaves the sidecar behind — so on contention the
// owner PID recorded in the file is read back: when that process is
// gone the stale lock is reclaimed automatically (remove and retry
// once); when it is alive — or the file is unreadable, so ownership
// cannot be established — the caller refuses fast as before.
func acquireSidecarLock(path string) (unlock func(), err error) {
	lockPath := path + ".lock"
	for attempt := 0; ; attempt++ {
		lf, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			fmt.Fprintf(lf, "%d\n", os.Getpid())
			lf.Close()
			return func() { os.Remove(lockPath) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("harness: locking store %s: %w", path, err)
		}
		if attempt == 0 && sidecarOwnerDead(lockPath) {
			// Stale lock from a crashed writer: reclaim it. The remove
			// can race another reclaimer; the retry's O_EXCL decides who
			// actually got the lock.
			os.Remove(lockPath)
			continue
		}
		return nil, fmt.Errorf("harness: store %s is locked by another process (a concurrent resume is appending to it); wait for it to finish, or remove %s if its writer is gone", path, lockPath)
	}
}

// sidecarOwnerDead reports whether the lockfile names a PID that is
// definitely no longer running. Any doubt — unreadable file, no
// parseable PID, a liveness probe that cannot say — counts as alive:
// wrongly reclaiming a held lock corrupts a store, wrongly refusing
// only costs a manual remove.
func sidecarOwnerDead(lockPath string) bool {
	data, err := os.ReadFile(lockPath)
	if err != nil {
		return false
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || pid <= 0 {
		return false
	}
	return !pidAlive(pid)
}
