package harness

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Test seams. sidecarWriteFailure, when non-nil, is injected as the
// error of the owner-PID write so tests can exercise the cleanup path
// without a read-only filesystem. sidecarReclaimRace, when non-nil,
// runs between the staleness probe and the reclaim rename — the window
// a concurrent writer can slip into — so tests can fabricate the
// interleaving deterministically.
var (
	sidecarWriteFailure error
	sidecarReclaimRace  func()
)

// reclaimSeq makes claim filenames unique within a process: two
// goroutines reclaiming the same lock must park the stale file under
// different names, because rename onto an existing path silently
// clobbers it.
var reclaimSeq atomic.Uint64

// reclaimMu serialises the probe-rename-verify sequence within this
// process, so a goroutine delayed between its staleness probe and its
// rename can never park a lock a sibling goroutine just legitimately
// created. Across processes the re-verification below bounds the same
// race instead.
var reclaimMu sync.Mutex

// acquireSidecarLock serialises store writers with an O_EXCL lockfile
// next to the store, used on platforms without flock. Unlike flock, a
// killed process leaves the sidecar behind — so on contention the
// owner PID recorded in the file is read back: when that process is
// gone the stale lock is reclaimed (see reclaimStaleSidecar for the
// race-safe protocol) and the acquire retried; when it is alive — or
// the file is unreadable, so ownership cannot be established — the
// caller refuses fast as before.
func acquireSidecarLock(path string) (unlock func(), err error) {
	lockPath := path + ".lock"
	for attempt := 0; ; attempt++ {
		lf, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			_, werr := fmt.Fprintf(lf, "%d\n", os.Getpid())
			if werr == nil {
				werr = sidecarWriteFailure
			}
			if cerr := lf.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				// An empty or torn lockfile is worse than no lock: its owner
				// can never be established, so every future writer refuses
				// until someone removes it by hand. Take it back out and
				// fail loudly instead.
				os.Remove(lockPath)
				return nil, fmt.Errorf("harness: locking store %s: writing owner pid: %w", path, werr)
			}
			me := os.Getpid()
			return func() { releaseSidecarLock(lockPath, me) }, nil
		}
		if !os.IsExist(err) {
			return nil, fmt.Errorf("harness: locking store %s: %w", path, err)
		}
		if attempt == 0 && reclaimStaleSidecar(lockPath) {
			continue // stale lock parked; the retry's O_EXCL decides the winner
		}
		return nil, fmt.Errorf("harness: store %s is locked by another process (a concurrent resume is appending to it); wait for it to finish, or remove %s if its writer is gone", path, lockPath)
	}
}

// releaseSidecarLock removes the lockfile only while it still names
// this process. An unconditional remove would delete a successor's
// lock in the pathological case where our lock was wrongly reclaimed
// out from under us — bounded damage beats cascading damage.
func releaseSidecarLock(lockPath string, me int) {
	data, err := os.ReadFile(lockPath)
	if err != nil {
		return // already gone (or unreadable: leave it for a human)
	}
	if pid, perr := strconv.Atoi(strings.TrimSpace(string(data))); perr != nil || pid != me {
		return
	}
	os.Remove(lockPath)
}

// reclaimStaleSidecar removes lockPath if its owner is dead, and
// reports whether it did. The naive probe-then-remove has a TOCTOU
// hole: between reading the dead PID and calling remove, another
// writer can reclaim the file and acquire a fresh lock — which the
// remove then deletes, letting two writers append to one store.
//
// Instead the stale file is renamed aside to a unique claim name and
// re-read there. Rename is atomic, so whatever lands under the claim
// name is one complete incarnation of the lockfile:
//
//   - still the dead owner → the claim is discarded; reclaimed.
//   - a live owner (a new writer won the window) → the claim is linked
//     back to lockPath (link, not rename: it cannot clobber a lock
//     created in the meantime) and discarded; not reclaimed.
//   - rename fails with ENOENT → someone else reclaimed first; treat
//     as reclaimed and let the O_EXCL retry arbitrate.
func reclaimStaleSidecar(lockPath string) bool {
	reclaimMu.Lock()
	defer reclaimMu.Unlock()
	if !sidecarOwnerDead(lockPath) {
		return false
	}
	if sidecarReclaimRace != nil {
		sidecarReclaimRace()
	}
	claim := fmt.Sprintf("%s.reclaim.%d.%d", lockPath, os.Getpid(), reclaimSeq.Add(1))
	if err := os.Rename(lockPath, claim); err != nil {
		return errors.Is(err, os.ErrNotExist)
	}
	if sidecarOwnerDead(claim) {
		os.Remove(claim)
		return true
	}
	// We grabbed a live lock: put it back. Link never overwrites, so if
	// yet another writer already holds a new lockPath this is a no-op
	// (EEXIST) and that writer keeps its lock; the live owner we parked
	// is then unlucky — its unlock will find nothing to remove — but no
	// store ever has two writers.
	os.Link(claim, lockPath)
	os.Remove(claim)
	return false
}

// sidecarOwnerDead reports whether the lockfile names a PID that is
// definitely no longer running. Any doubt — unreadable file, no
// parseable PID, a liveness probe that cannot say — counts as alive:
// wrongly reclaiming a held lock corrupts a store, wrongly refusing
// only costs a manual remove.
func sidecarOwnerDead(lockPath string) bool {
	data, err := os.ReadFile(lockPath)
	if err != nil {
		return false
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(data)))
	if err != nil || pid <= 0 {
		return false
	}
	return !pidAlive(pid)
}
