package harness

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/metrics"
)

// The progress reporter: a periodic one-line stderr report (cells
// done/total, aggregate branches/sec, ETA) driven entirely by the
// metrics registry — the display layer reads the exact numbers a
// /metrics scrape would, so the two can never disagree.

// StartProgress launches a goroutine rendering a one-line progress
// report to w every interval (default 2s when interval <= 0), reading
// everything from reg. The returned stop function renders one final
// line and waits for the reporter to exit; it is idempotent. A nil
// registry or writer returns a no-op stop.
func StartProgress(w io.Writer, reg *metrics.Registry, interval time.Duration) (stop func()) {
	if reg == nil || w == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 2 * time.Second
	}
	p := &progressReporter{start: time.Now()}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				p.render(w, reg.Snapshot())
			case <-done:
				p.render(w, reg.Snapshot())
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// stallWindows is how many consecutive no-progress report windows make
// the reporter stop quoting an ETA: once nothing has completed for this
// long, any rate extrapolated from the past is a guess, and a
// confidently finite ETA on a wedged run is worse than saying so.
const stallWindows = 3

type progressReporter struct {
	start    time.Time
	prevSet  bool
	prevDone float64
	prevAt   time.Time
	stalled  int
}

func (p *progressReporter) render(w io.Writer, s metrics.Snapshot) {
	now := time.Now()
	done := s.Value(MetricCellsDone)
	total := s.Value(MetricCellsTotal)
	failed := 0.0
	if smp, ok := s.Sample(MetricJobs, "failed"); ok {
		failed = smp.Value
	}
	bps := s.Value(MetricBranchesPerSec)

	// Cell-completion rate from the most recent window (falling back to
	// the cumulative rate on the first tick), for the ETA.
	rate := 0.0
	if p.prevSet && done > p.prevDone && now.After(p.prevAt) {
		rate = (done - p.prevDone) / now.Sub(p.prevAt).Seconds()
	} else if el := now.Sub(p.start).Seconds(); el > 0 && done > 0 {
		rate = done / el
	}
	if p.prevSet && done <= p.prevDone {
		p.stalled++
	} else {
		p.stalled = 0
	}
	p.prevSet, p.prevDone, p.prevAt = true, done, now

	eta := "-"
	switch {
	case total > 0 && done >= total:
		eta = "done"
	case p.stalled >= stallWindows && done < total:
		// The cumulative rate above is still finite, but it describes a
		// run that has stopped moving: surface the stall, not an ETA.
		eta = fmt.Sprintf("stalled (no progress for %d reports)", p.stalled)
	case rate > 0:
		eta = formatETA((total - done) / rate)
	}
	line := fmt.Sprintf("progress: %.0f/%.0f cells", done, total)
	if failed > 0 {
		line += fmt.Sprintf(" (%.0f failed)", failed)
	}
	fmt.Fprintf(w, "%s, %s branches, elapsed %s, ETA %s\n",
		line, FormatBranchRate(bps), formatETA(now.Sub(p.start).Seconds()), eta)
}

// formatETA renders a second count compactly ("42s", "3m10s", "1h4m").
func formatETA(secs float64) string {
	if secs < 0 {
		secs = 0
	}
	d := time.Duration(secs * float64(time.Second))
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%dh%dm", int(d.Hours()), int(d.Minutes())%60)
	case d >= time.Minute:
		return fmt.Sprintf("%dm%ds", int(d.Minutes()), int(d.Seconds())%60)
	default:
		return fmt.Sprintf("%ds", int(d.Seconds()))
	}
}
