package harness

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// The lease protocol: a coordinator shards an expanded matrix into job
// leases — batches of cells with a TTL and heartbeat renewal — that
// workers pull, execute through the ordinary pooled executor, and
// complete by streaming records back. An expired lease returns its
// unfinished cells to the queue, so a worker that dies mid-batch never
// strands a cell; a cell is delivered into the sweep exactly once no
// matter how many workers end up running it.

// WireJob is the serialisable form of one cell: everything a worker
// needs to reconstruct the Job, given a ModelResolver for the spec
// string (Model holds functions and cannot travel). Its Key matches the
// Job's, which is how completions find their way back.
type WireJob struct {
	Index int    `json:"index"`
	Model string `json:"model"`
	Spec  string `json:"spec,omitempty"`
	Trace string `json:"trace"`
	// TraceSpec is the resolvable trace-spec string when it differs
	// from Trace (file-backed sources ship "file:<path>" while Trace
	// carries the content hash); empty means Trace resolves itself.
	// Workers regenerate the trace from this, deterministically.
	TraceSpec string `json:"trace_spec,omitempty"`
	Scenario  string `json:"scenario"`
	Branches  int    `json:"branches"`
	DeltaLog  int    `json:"delta_log,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Window    int    `json:"window,omitempty"`
	ExecDelay int    `json:"exec_delay,omitempty"`
}

// Key is the canonical cell identifier, identical to Job.Key for the
// job the wire form was made from.
func (w WireJob) Key() string {
	return CellKey(w.Model, w.Trace, w.Scenario, w.Branches)
}

// wireJob flattens a Job for the wire.
func wireJob(j Job) WireJob {
	return WireJob{
		Index:     j.Index,
		Model:     j.Model.Name,
		Spec:      j.Model.Spec,
		Trace:     j.Spec.Name,
		TraceSpec: traceSpecOf(j.Spec),
		Scenario:  j.Scenario.Letter(),
		Branches:  j.Branches,
		DeltaLog:  j.DeltaLog,
		Seed:      j.Seed,
		Window:    j.Opts.Window,
		ExecDelay: j.Opts.ExecDelay,
	}
}

// ModelResolver rebuilds a harness model from its canonical spec string
// (or name, for models without one). The repro facade supplies one over
// ParseSpec/Build; it is injected rather than imported because the
// facade layers on top of this package.
type ModelResolver func(spec string) (Model, error)

// Job reconstructs the executable job on a worker. The resolved model
// keeps the wire name (scaled variants key their cells as "base@+d")
// but is otherwise whatever the resolver built, so records produced
// remotely are byte-identical to local ones.
func (w WireJob) Job(resolve ModelResolver) (Job, error) {
	if resolve == nil {
		return Job{}, errors.New("harness: no model resolver configured")
	}
	spec := w.Spec
	if spec == "" {
		spec = w.Model
	}
	mdl, err := resolve(spec)
	if err != nil {
		return Job{}, fmt.Errorf("harness: resolving model %q: %w", spec, err)
	}
	mdl.Name = w.Model
	src := w.TraceSpec
	if src == "" {
		src = w.Trace
	}
	tr, err := workload.ResolveSpec(src)
	if err != nil {
		return Job{}, fmt.Errorf("harness: resolving trace %q: %w", src, err)
	}
	if tr.Name != w.Trace {
		return Job{}, fmt.Errorf("harness: trace spec %q resolves to %q, but the lease names cell trace %q (did the file's contents change?)", src, tr.Name, w.Trace)
	}
	scs, err := ParseScenarios(w.Scenario)
	if err != nil {
		return Job{}, err
	}
	if len(scs) != 1 {
		return Job{}, fmt.Errorf("harness: want exactly one scenario, got %q", w.Scenario)
	}
	j := Job{
		Index:    w.Index,
		Model:    mdl,
		Spec:     tr,
		Scenario: scs[0],
		Branches: w.Branches,
		DeltaLog: w.DeltaLog,
		Seed:     w.Seed,
		Opts:     sim.Options{Scenario: scs[0], Window: w.Window, ExecDelay: w.ExecDelay},
	}
	if j.Seed == 0 {
		j.Seed = JobSeed(j.Key())
	}
	return j, nil
}

// wireFailedRecord tags a wire job that could not even be reconstructed
// (unresolvable spec, unknown trace). Built from the wire fields alone
// so its Key always matches the queued cell and the failure is
// delivered instead of the lease churning forever.
func wireFailedRecord(w WireJob, err error) Record {
	return Record{
		Kind:      KindCell,
		Model:     w.Model,
		Spec:      w.Spec,
		Trace:     w.Trace,
		TraceSpec: w.TraceSpec,
		Scenario:  w.Scenario,
		Branches:  w.Branches,
		Seed:      w.Seed,
		DeltaLog:  w.DeltaLog,
		Err:       err.Error(),
	}
}

// Lease is one batch of cells granted to a worker, valid for TTLSeconds
// unless renewed (Renew resets the clock). Completing or letting it
// expire are the only exits; expiry requeues the unfinished cells.
type Lease struct {
	ID         string    `json:"id"`
	Worker     string    `json:"worker"`
	TTLSeconds float64   `json:"ttl_seconds"`
	Jobs       []WireJob `json:"jobs"`
}

// ErrLeaseGone reports a renewal or completion against a lease the
// queue no longer tracks: it expired (its cells are back in the queue,
// possibly already re-leased) or never existed.
var ErrLeaseGone = errors.New("harness: lease expired or unknown")

// queuedJob is one cell awaiting (or under) a lease. done flips exactly
// once, under the queue lock — whoever flips it owns the delivery — so
// a late completion racing an expiry-requeue-rerun can never deliver a
// cell twice.
type queuedJob struct {
	idx     int
	wire    WireJob
	key     string
	deliver func(Record)
	done    bool
}

type activeLease struct {
	id      string
	worker  string
	jobs    []*queuedJob
	expires time.Time
}

// DefaultLeaseTTL and DefaultLeaseBatch are the queue defaults: a TTL
// long enough for several 200k-branch cells plus heartbeat slack, and
// batches small enough that a straggling worker holds few cells back.
const (
	DefaultLeaseTTL   = 30 * time.Second
	DefaultLeaseBatch = 4
)

// LeaseQueue is the coordinator side of the lease protocol: pending
// cells go in via a LeaseScheduler, workers take TTL-bounded batches
// out with Acquire, keep them alive with Renew, and hand records back
// with Complete. All methods are safe for concurrent use.
type LeaseQueue struct {
	ttl   time.Duration
	batch int

	mu      sync.Mutex
	seq     uint64
	pending []*queuedJob
	leases  map[string]*activeLease
	wake    chan struct{}

	granted, completed, expired, renewals, records *metrics.CounterVec
	pendingG, leasedG                              *metrics.Gauge
}

// NewLeaseQueue builds a queue with the given lease TTL and batch size
// (non-positive values select the defaults). reg, when non-nil,
// receives the lease metric families — counters labelled by worker id,
// so one /metrics scrape shows which worker granted, renewed, expired
// or completed what.
func NewLeaseQueue(ttl time.Duration, batch int, reg *metrics.Registry) *LeaseQueue {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if batch <= 0 {
		batch = DefaultLeaseBatch
	}
	return &LeaseQueue{
		ttl:       ttl,
		batch:     batch,
		leases:    make(map[string]*activeLease),
		wake:      make(chan struct{}),
		granted:   reg.CounterVec(MetricLeasesGranted, "Leases granted, by worker.", "worker"),
		completed: reg.CounterVec(MetricLeasesCompleted, "Leases completed, by worker.", "worker"),
		expired:   reg.CounterVec(MetricLeasesExpired, "Leases expired (cells requeued), by worker.", "worker"),
		renewals:  reg.CounterVec(MetricLeaseRenewals, "Lease heartbeat renewals, by worker.", "worker"),
		records:   reg.CounterVec(MetricWorkerRecords, "Cell records delivered, by worker.", "worker"),
		pendingG:  reg.Gauge(MetricLeaseJobsPending, "Cells queued awaiting a lease."),
		leasedG:   reg.Gauge(MetricLeaseJobsLeased, "Cells out on active leases."),
	}
}

// TTL reports the queue's lease TTL.
func (q *LeaseQueue) TTL() time.Duration { return q.ttl }

func (q *LeaseQueue) wakeLocked() {
	close(q.wake)
	q.wake = make(chan struct{})
}

// reapLocked expires overdue leases: their unfinished cells go back to
// the FRONT of the queue (they have been waiting longest) and waiting
// acquirers are woken.
func (q *LeaseQueue) reapLocked(now time.Time) {
	for id, l := range q.leases {
		if now.Before(l.expires) {
			continue
		}
		delete(q.leases, id)
		var back []*queuedJob
		for _, j := range l.jobs {
			if !j.done {
				back = append(back, j)
			}
		}
		if len(back) > 0 {
			q.pending = append(back, q.pending...)
			q.wakeLocked()
		}
		q.expired.With(l.worker).Inc()
	}
}

// gaugesLocked recomputes the pending/leased cell gauges; cheap at
// queue-operation frequency and immune to accounting drift.
func (q *LeaseQueue) gaugesLocked() {
	var p, l float64
	for _, j := range q.pending {
		if !j.done {
			p++
		}
	}
	for _, al := range q.leases {
		for _, j := range al.jobs {
			if !j.done {
				l++
			}
		}
	}
	q.pendingG.Set(p)
	q.leasedG.Set(l)
}

// enqueue adds cells for leasing (LeaseScheduler's half).
func (q *LeaseQueue) enqueue(items []*queuedJob) {
	q.mu.Lock()
	q.pending = append(q.pending, items...)
	q.gaugesLocked()
	q.wakeLocked()
	q.mu.Unlock()
}

// abandon withdraws cells that will never be needed (the submission's
// context was cancelled), returning the ones actually withdrawn — the
// caller delivers their failure records itself. Cells already claimed
// by a racing Complete are left to that delivery.
func (q *LeaseQueue) abandon(items []*queuedJob) []*queuedJob {
	q.mu.Lock()
	defer q.mu.Unlock()
	var withdrawn []*queuedJob
	for _, j := range items {
		if j.done {
			continue
		}
		j.done = true
		withdrawn = append(withdrawn, j)
	}
	q.gaugesLocked()
	return withdrawn
}

// Acquire grants the next batch of pending cells to worker, waiting up
// to wait for work to appear before returning nil (no work). The grant
// starts the lease's TTL clock.
func (q *LeaseQueue) Acquire(worker string, wait time.Duration) *Lease {
	deadline := time.Now().Add(wait)
	for {
		q.mu.Lock()
		now := time.Now()
		q.reapLocked(now)
		var take []*queuedJob
		for len(q.pending) > 0 && len(take) < q.batch {
			j := q.pending[0]
			q.pending = q.pending[1:]
			if !j.done {
				take = append(take, j)
			}
		}
		if len(take) > 0 {
			q.seq++
			l := &activeLease{
				id:      fmt.Sprintf("lease-%d", q.seq),
				worker:  worker,
				jobs:    take,
				expires: now.Add(q.ttl),
			}
			q.leases[l.id] = l
			q.granted.With(worker).Inc()
			q.gaugesLocked()
			q.mu.Unlock()
			out := &Lease{ID: l.id, Worker: worker, TTLSeconds: q.ttl.Seconds(), Jobs: make([]WireJob, len(take))}
			for i, j := range take {
				out.Jobs[i] = j.wire
			}
			return out
		}
		wake := q.wake
		q.gaugesLocked()
		q.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil
		}
		// Cap the sleep so expiring leases are reaped promptly even when
		// no enqueue wakes us.
		poll := remain
		if poll > 250*time.Millisecond {
			poll = 250 * time.Millisecond
		}
		select {
		case <-wake:
		case <-time.After(poll):
		}
	}
}

// Renew extends a live lease by a full TTL; ErrLeaseGone when the lease
// already expired (its cells are requeued — the worker should stop).
func (q *LeaseQueue) Renew(id string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(time.Now())
	l, ok := q.leases[id]
	if !ok {
		return ErrLeaseGone
	}
	l.expires = time.Now().Add(q.ttl)
	q.renewals.With(l.worker).Inc()
	return nil
}

// Complete closes a lease with its records, matched to cells by Key and
// delivered first-wins (a cell another worker already delivered after
// an expiry is dropped). Records for cells the lease did not hold are
// ignored; cells the records miss are requeued immediately and reported
// in the error. ErrLeaseGone when the lease already expired — the cells
// are (or soon will be) re-run elsewhere, deterministically producing
// the same records, so rejecting the late copy loses nothing.
func (q *LeaseQueue) Complete(id string, recs []Record) error {
	q.mu.Lock()
	q.reapLocked(time.Now())
	l, ok := q.leases[id]
	if !ok {
		q.mu.Unlock()
		return ErrLeaseGone
	}
	delete(q.leases, id)
	byKey := make(map[string]Record, len(recs))
	for _, r := range recs {
		if r.Kind == KindCell || r.Kind == "" {
			byKey[r.Key()] = r
		}
	}
	type delivery struct {
		j *queuedJob
		r Record
	}
	var out []delivery
	var missing []*queuedJob
	for _, j := range l.jobs {
		if j.done {
			continue
		}
		r, have := byKey[j.key]
		if !have {
			missing = append(missing, j)
			continue
		}
		j.done = true
		out = append(out, delivery{j, r})
	}
	var err error
	if len(missing) > 0 {
		q.pending = append(missing, q.pending...)
		q.wakeLocked()
		err = fmt.Errorf("harness: lease %s results missing %d of %d cells (first: %s); the missing cells were requeued", id, len(missing), len(l.jobs), missing[0].key)
	}
	q.completed.With(l.worker).Inc()
	q.records.With(l.worker).Add(uint64(len(out)))
	q.gaugesLocked()
	q.mu.Unlock()
	// Deliveries run outside the lock: a delivery unblocks the waiting
	// scheduler, which may immediately re-enter the queue.
	for _, d := range out {
		d.j.deliver(d.r)
	}
	return err
}

// LeaseScheduler executes jobs by queueing them as leases for remote
// workers instead of running them in-process: the Scheduler the
// coordinator (`bpbench serve`) plugs into Config.Scheduler. Records
// arrive in whatever order workers complete; Schedule re-serialises
// them into job order exactly like the local pool's reorder buffer, and
// stamps cfg.Provenance — the coordinator's, since its store does the
// appending — onto every delivered record.
type LeaseScheduler struct {
	Queue *LeaseQueue
	// Ctx, when non-nil, aborts the wait: jobs not yet delivered are
	// withdrawn from the queue and fail with the context's error (the
	// records say so), letting a cancelled HTTP submission release its
	// cells instead of stranding the queue.
	Ctx context.Context
}

func (s *LeaseScheduler) Schedule(jobs []Job, cfg Config, visit func(Record)) []Record {
	rm := newRunMetrics(cfg.Metrics)
	if rm != nil {
		rm.poolStart = time.Now()
	}
	results := make([]Record, len(jobs))
	done := make([]chan struct{}, len(jobs))
	items := make([]*queuedJob, len(jobs))
	for i := range jobs {
		i := i
		done[i] = make(chan struct{})
		w := wireJob(jobs[i])
		items[i] = &queuedJob{
			idx:  i,
			wire: w,
			key:  w.Key(),
			deliver: func(r Record) {
				if cfg.Provenance != nil {
					r.Provenance = cfg.Provenance
				}
				results[i] = r
				close(done[i])
			},
		}
	}
	s.Queue.enqueue(items)

	var ctxDone <-chan struct{}
	if s.Ctx != nil {
		ctxDone = s.Ctx.Done()
	}
	aborted := false
	for i := range jobs {
		if !aborted {
			select {
			case <-done[i]:
			case <-ctxDone:
				aborted = true
				err := context.Cause(s.Ctx)
				// Withdraw everything not yet claimed; deliveries already
				// in flight complete normally. done flips under the queue
				// lock, so exactly one of the two paths fills each slot.
				for _, it := range s.Queue.abandon(items) {
					it.deliver(failedRecord(jobs[it.idx], err))
				}
			}
		}
		<-done[i]
		if rm != nil {
			if results[i].Failed() {
				rm.jobs.With("failed").Inc()
			} else {
				rm.jobs.With("succeeded").Inc()
			}
			rm.cellsDone.Inc()
		}
		visit(results[i])
	}
	return results
}
