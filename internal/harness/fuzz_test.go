package harness

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// Fuzzing the store lifecycle. The append-only result store is the one
// artifact that outlives any single process — it gets kill -9'd
// mid-write, hand-edited, concatenated, and carried across predictor
// revisions — so the reader and the compactor must be total: any byte
// sequence either parses to a usable record set or fails loudly, and
// never panics, loses a recoverable prefix, or invents data.
//
// Seed corpora live in testdata/fuzz/<Target>/ (the native Go corpus
// layout); CI runs each target for a short wall-clock smoke on every
// push, and `go test -fuzz` digs deeper locally.

var fuzzGoodLine = []byte(`{"kind":"cell","model":"m","trace":"INT01","scenario":"A","branches":40,"window":24,"exec_delay":6,"mpki":1}` + "\n")

// FuzzReadStoreFile: for arbitrary store bytes, ReadStoreFile must
// never panic, and on success its contract must hold — the valid prefix
// re-reads to the same records (truncating to validLen is lossless), and
// the truncated store accepts an appended record, which is exactly the
// sequence `bpbench -resume` performs after a crash.
func FuzzReadStoreFile(f *testing.F) {
	f.Add([]byte(""))
	f.Add(fuzzGoodLine)
	f.Add(append(append([]byte{}, fuzzGoodLine...), []byte(`{"kind":"cell","model":"m","tra`)...))
	f.Add(append(append([]byte{}, fuzzGoodLine...), []byte("{garbage}\n")...))
	f.Add([]byte("{garbage}\n" + string(fuzzGoodLine)))
	f.Add([]byte("\n\n\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "store.jsonl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		recs, validLen, err := ReadStoreFile(path)
		if err != nil {
			return // rejected loudly: fine, as long as it didn't panic
		}
		if validLen < 0 || validLen > int64(len(data)) {
			t.Fatalf("validLen %d outside [0, %d]", validLen, len(data))
		}

		// Crash recovery is truncate-to-validLen: the prefix must re-read
		// to the identical record set with nothing further to drop.
		if err := os.WriteFile(path, data[:validLen], 0o644); err != nil {
			t.Fatal(err)
		}
		recs2, valid2, err2 := ReadStoreFile(path)
		if err2 != nil {
			t.Fatalf("valid prefix failed to re-read: %v", err2)
		}
		if valid2 != validLen || len(recs2) != len(recs) {
			t.Fatalf("prefix re-read: %d records / %d bytes, want %d / %d",
				len(recs2), valid2, len(recs), validLen)
		}

		// And the truncated store must accept an append (the resume path).
		appended := append(append([]byte{}, data[:validLen]...), fuzzGoodLine...)
		if err := os.WriteFile(path, appended, 0o644); err != nil {
			t.Fatal(err)
		}
		recs3, valid3, err3 := ReadStoreFile(path)
		if err3 != nil {
			t.Fatalf("append after truncation broke the store: %v", err3)
		}
		if len(recs3) != len(recs)+1 || valid3 != int64(len(appended)) {
			t.Fatalf("appended store: %d records / %d bytes, want %d / %d",
				len(recs3), valid3, len(recs)+1, len(appended))
		}
	})
}

// FuzzCompact: for a record set parsed from arbitrary mutated JSONL,
// Compact must never panic, never invent or duplicate cell keys, keep
// its accounting consistent, and be idempotent.
func FuzzCompact(f *testing.F) {
	f.Add([]byte(""))
	f.Add(fuzzGoodLine)
	f.Add([]byte(`{"kind":"cell","model":"m","trace":"INT01","scenario":"A","branches":40,"error":"panic: boom"}` + "\n" + string(fuzzGoodLine) +
		`{"kind":"suite","model":"m","scenario":"A","branches":40,"cells":1,"mpki":1}` + "\n"))
	f.Add([]byte(`{"kind":"weird","model":"m"}` + "\n" + `{"kind":"cell"}` + "\n" + `{"kind":"cell"}` + "\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Lenient line-wise parse: fuzzed stores are mutated record
		// streams, and compaction's guarantees must hold for whatever
		// subset still parses.
		var recs []Record
		for _, line := range bytes.Split(data, []byte("\n")) {
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			var r Record
			if json.Unmarshal(line, &r) == nil {
				recs = append(recs, r)
			}
		}
		out, stats := Compact(recs)

		inKeys := make(map[string]bool)
		cellsIn := 0
		for _, r := range recs {
			if r.Kind == KindCell || r.Kind == "" {
				inKeys[r.Key()] = true
				cellsIn++
			}
		}
		seen := make(map[string]bool)
		for _, r := range out {
			if r.Kind != KindCell && r.Kind != "" {
				continue
			}
			k := r.Key()
			if !inKeys[k] {
				t.Fatalf("compaction invented cell key %q", k)
			}
			if seen[k] {
				t.Fatalf("duplicate cell key %q survived compaction", k)
			}
			seen[k] = true
		}
		if len(seen) != len(inKeys) {
			t.Fatalf("compaction lost cell keys: %d in, %d out", len(inKeys), len(seen))
		}
		if stats.In != len(recs) || stats.Out != len(out) ||
			stats.CellsIn != cellsIn || stats.CellsOut != len(seen) ||
			stats.CellsIn-stats.CellsOut != stats.SupersededFailed+stats.DuplicateCells {
			t.Fatalf("stats inconsistent: %+v (in %d, out %d)", stats, len(recs), len(out))
		}

		again, stats2 := Compact(out)
		if stats2.Dropped() != 0 {
			t.Fatalf("second compaction dropped %d records: %+v", stats2.Dropped(), stats2)
		}
		if len(again) != len(out) {
			t.Fatalf("compaction not idempotent: %d then %d records", len(out), len(again))
		}
	})
}
