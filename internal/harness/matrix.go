package harness

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/bitutil"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Model is a named predictor configuration the harness can run. Run must
// simulate a freshly-constructed predictor over the trace (cold state per
// job); the root repro package adapts its Model type to this shape.
type Model struct {
	Name string
	// Spec is the canonical model-spec string the model was built from
	// ("" for models constructed directly rather than through the spec
	// API). Records carry it, so a store can validate a resumed cell
	// against the exact configuration that produced it even after the
	// mapping from names to configurations changes.
	Spec        string
	StorageBits int
	Run         func(tr *trace.Trace, opt sim.Options) sim.Result
	// NewRunner, when non-nil, returns a reusable run function backed by
	// one pooled predictor instance: each call starts from cold state but
	// reuses the warmed allocations, byte-identical to Run. The harness
	// worker pool keeps one runner per (worker, model) so repeated cells
	// skip predictor construction; a returned runner is used from a single
	// goroutine at a time. Nil models always run through Run.
	NewRunner func() func(tr *trace.Trace, opt sim.Options) sim.Result
	// Scale, when non-nil, returns the model with every component budget
	// multiplied by 2^deltaLog (the Figure 9 protocol). A model that
	// cannot be budget-scaled leaves it nil; expanding such a model across
	// a DeltaLogs axis is an error, not a silent skip. Expand ignores the
	// Name the callee set and renames each variant ScaledName(base, d) so
	// cell keys follow one convention harness-wide.
	Scale func(deltaLog int) Model
}

// ScaledName is the canonical name of a model variant scaled by
// 2^deltaLog: "tage@-4", "tage@+0", "tage@+3". The '@' keeps the name a
// single path segment, so cell keys stay four '/'-separated fields and
// existing glob filters keep working.
func ScaledName(base string, deltaLog int) string {
	return fmt.Sprintf("%s@%+d", base, deltaLog)
}

// Matrix declares an experiment grid. Expansion order is stable:
// models, then traces, then scenarios, then lengths — so two runs of the
// same matrix produce records in the same order.
type Matrix struct {
	Models    []Model
	Traces    []workload.Spec
	Scenarios []predictor.Scenario
	// Lengths lists branches-per-trace values (one job per length).
	Lengths []int
	// DeltaLogs is the optional storage-budget axis: each model job is
	// expanded across tage.Scale-style 2^deltaLog budgets (Figure 9).
	// Empty means no budget sweep — models run exactly as declared and
	// cell keys are unchanged, so pre-existing baselines stay valid. When
	// non-empty, every model in the matrix must have a Scale hook.
	DeltaLogs []int
	// Include and Exclude are glob filters over expanded cells. A pattern
	// containing '/' is matched (path.Match) against the full cell key
	// "model/trace/scenario/branches"; otherwise it is matched against
	// each of the four fields individually — where the model field
	// matches both the scaled variant name ("tage@+2") and its base
	// ("tage"), so a model filter keeps selecting its cells when a
	// DeltaLogs axis renames them. Empty Include means include-all;
	// Exclude wins over Include.
	Include []string
	Exclude []string
	// Window and ExecDelay configure the pipeline model. Zero selects the
	// sim defaults; negative values are rejected by Expand (the same rule
	// the bpbench flags enforce, keeping the declarative layer's
	// validation consistent with sim.Options.withDefaults, which treats
	// any non-positive value as "use the default").
	Window    int
	ExecDelay int
	// IntraCellWorkers shards the traces of each cell group — the jobs
	// sharing (model, scenario, branches, deltaLog) and differing only by
	// trace — across this many goroutines during execution. Every trace
	// still starts from a cold predictor, so results are byte-identical
	// to a serial run; only wall-clock changes. Zero or one means no
	// intra-cell parallelism; negative values are rejected by Expand.
	// Run copies the setting into the execution Config when the caller
	// left Config.IntraCellWorkers unset.
	IntraCellWorkers int
}

// Job is one expanded cell of the matrix.
type Job struct {
	// Index is the cell's position in expansion order; records stream in
	// this order regardless of worker scheduling.
	Index    int
	Model    Model
	Spec     workload.Spec
	Scenario predictor.Scenario
	Branches int
	// DeltaLog is the storage-budget exponent the cell's model was scaled
	// by; meaningful only when the matrix declared a DeltaLogs axis (the
	// scaled Model.Name carries it into the cell key either way).
	DeltaLog int
	// Seed is the job's deterministic seed, derived from the cell key; it
	// is recorded in the Record so any cell can be re-run in isolation.
	Seed uint64
	Opts sim.Options
}

// Key is the canonical cell identifier "model/trace/scenario/branches".
func (j Job) Key() string {
	return CellKey(j.Model.Name, j.Spec.Name, j.Scenario.Letter(), j.Branches)
}

// CellKey formats the canonical cell identifier.
func CellKey(model, trace, scenario string, branches int) string {
	return fmt.Sprintf("%s/%s/%s/%d", model, trace, scenario, branches)
}

// JobSeed derives the deterministic per-job seed from the cell key: an
// FNV-1a hash finalised with a strong mixer. The trace itself is always
// generated from the workload spec's own seed (so every model and
// scenario sees the identical branch stream); JobSeed covers any
// per-cell randomness a future axis may need and uniquely tags records.
func JobSeed(key string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return bitutil.Mix64(h)
}

// matchCell reports whether any of the patterns selects the cell.
func matchCell(patterns []string, j Job) bool {
	fields := []string{j.Model.Name, j.Spec.Name, j.Scenario.Letter(), fmt.Sprint(j.Branches)}
	if base, _, scaled := strings.Cut(j.Model.Name, "@"); scaled {
		fields = append(fields, base)
	}
	key := j.Key()
	for _, p := range patterns {
		if strings.ContainsRune(p, '/') {
			if ok, _ := path.Match(p, key); ok {
				return true
			}
			continue
		}
		for _, f := range fields {
			if ok, _ := path.Match(p, f); ok {
				return true
			}
		}
	}
	return false
}

// Expand materialises the matrix into its job list, applying filters.
// It returns an error when the grid is structurally empty (a missing
// axis), as opposed to filtered down to nothing (which yields an empty,
// non-error job list).
func (m *Matrix) Expand() ([]Job, error) {
	for _, patterns := range [][]string{m.Include, m.Exclude} {
		for _, p := range patterns {
			if _, err := path.Match(p, "probe"); err != nil {
				return nil, fmt.Errorf("harness: bad cell pattern %q: %w", p, err)
			}
		}
	}
	if m.Window < 0 || m.ExecDelay < 0 {
		return nil, fmt.Errorf("harness: negative Window/ExecDelay (%d/%d); zero selects the defaults", m.Window, m.ExecDelay)
	}
	if m.IntraCellWorkers < 0 {
		return nil, fmt.Errorf("harness: negative IntraCellWorkers (%d); zero disables intra-cell parallelism", m.IntraCellWorkers)
	}
	if len(m.Models) == 0 {
		return nil, fmt.Errorf("harness: matrix has no models")
	}
	if len(m.Traces) == 0 {
		return nil, fmt.Errorf("harness: matrix has no traces")
	}
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("harness: matrix has no scenarios")
	}
	lengths := m.Lengths
	if len(lengths) == 0 {
		return nil, fmt.Errorf("harness: matrix has no trace lengths")
	}
	variants, err := m.modelVariants()
	if err != nil {
		return nil, err
	}
	var jobs []Job
	for _, v := range variants {
		for _, spec := range m.Traces {
			for _, sc := range m.Scenarios {
				for _, n := range lengths {
					j := Job{
						Model:    v.model,
						Spec:     spec,
						Scenario: sc,
						Branches: n,
						DeltaLog: v.deltaLog,
						Opts:     sim.Options{Scenario: sc, Window: m.Window, ExecDelay: m.ExecDelay},
					}
					if len(m.Include) > 0 && !matchCell(m.Include, j) {
						continue
					}
					if matchCell(m.Exclude, j) {
						continue
					}
					j.Index = len(jobs)
					j.Seed = JobSeed(j.Key())
					jobs = append(jobs, j)
				}
			}
		}
	}
	return jobs, nil
}

// modelVariant is one model after budget expansion.
type modelVariant struct {
	model    Model
	deltaLog int
}

// modelVariants expands the model axis across DeltaLogs. With no delta
// axis each model passes through untouched (names, and therefore cell
// keys, identical to a pre-axis matrix); with one, each scalable model
// yields one renamed variant per deltaLog, budget curve contiguous in
// expansion order.
func (m *Matrix) modelVariants() ([]modelVariant, error) {
	if len(m.DeltaLogs) == 0 {
		out := make([]modelVariant, len(m.Models))
		for i, mdl := range m.Models {
			out[i] = modelVariant{model: mdl}
		}
		return out, nil
	}
	seen := make(map[int]bool, len(m.DeltaLogs))
	for _, d := range m.DeltaLogs {
		if seen[d] {
			return nil, fmt.Errorf("harness: duplicate deltaLog %+d in matrix (would duplicate cell keys)", d)
		}
		seen[d] = true
	}
	var out []modelVariant
	for _, mdl := range m.Models {
		if mdl.Scale == nil {
			return nil, fmt.Errorf("harness: model %q does not support budget scaling (no Scale hook) but the matrix declares a deltaLog axis", mdl.Name)
		}
		for _, d := range m.DeltaLogs {
			scaled := mdl.Scale(d)
			scaled.Name = ScaledName(mdl.Name, d)
			if scaled.Spec == "" && mdl.Spec != "" {
				// The delta suffix is spec syntax: a scaled variant's
				// canonical spec is the base spec rescaled, which is
				// exactly its scaled name.
				scaled.Spec = ScaledName(mdl.Spec, d)
			}
			if scaled.Run == nil {
				return nil, fmt.Errorf("harness: model %q scaled by %+d has no Run", mdl.Name, d)
			}
			out = append(out, modelVariant{model: scaled, deltaLog: d})
		}
	}
	return out, nil
}

// SelectTraces resolves trace patterns — benchmark-name globs
// ("INT*"), generator specs ("phased:period=4096#1"), and file-backed
// sources ("file:path.bpt") — against the suite and the spec grammar;
// see workload.Select for the matching rules.
func SelectTraces(patterns []string) ([]workload.Spec, error) {
	return workload.Select(patterns)
}

// ParseScenarios converts a comma-separated scenario list ("A,C") into
// predictor scenarii, rejecting duplicates and unknown letters.
func ParseScenarios(csv string) ([]predictor.Scenario, error) {
	var out []predictor.Scenario
	seen := make(map[predictor.Scenario]bool)
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		var sc predictor.Scenario
		switch strings.ToUpper(part) {
		case "I":
			sc = predictor.ScenarioI
		case "A":
			sc = predictor.ScenarioA
		case "B":
			sc = predictor.ScenarioB
		case "C":
			sc = predictor.ScenarioC
		default:
			return nil, fmt.Errorf("harness: unknown scenario %q (want I, A, B or C)", part)
		}
		if seen[sc] {
			return nil, fmt.Errorf("harness: duplicate scenario %q", part)
		}
		seen[sc] = true
		out = append(out, sc)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("harness: empty scenario list")
	}
	return out, nil
}

// SortModels orders models by name for stable matrix construction when
// the caller assembled them from an unordered source (a map).
func SortModels(ms []Model) {
	sort.Slice(ms, func(a, b int) bool { return ms[a].Name < ms[b].Name })
}
