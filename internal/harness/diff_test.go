package harness

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func cell(model, trace, scenario string, branches int, mpki float64) Record {
	return Record{
		Kind: KindCell, Model: model, Trace: trace, Category: "INT",
		Scenario: scenario, Branches: branches, MPKI: mpki, MPPKI: 20 * mpki,
	}
}

func TestDiffClassification(t *testing.T) {
	old := []Record{
		cell("tage", "INT01", "A", 1000, 10.0),
		cell("tage", "INT02", "A", 1000, 10.0),
		cell("tage", "INT03", "A", 1000, 10.0),
		cell("tage", "INT04", "A", 1000, 0.001),
		cell("tage", "INT05", "A", 1000, 5.0),
	}
	new := []Record{
		cell("tage", "INT01", "A", 1000, 10.1),  // +1%: within 2% tolerance
		cell("tage", "INT02", "A", 1000, 11.0),  // +10%: regression
		cell("tage", "INT03", "A", 1000, 9.0),   // -10%: improvement
		cell("tage", "INT04", "A", 1000, 0.004), // 4x relative but under AbsFloor
		cell("tage", "INT06", "A", 1000, 5.0),   // INT05 gone, INT06 new
	}
	rep := Diff(old, new, DiffOptions{})
	if rep.Cells != 4 {
		t.Fatalf("compared %d cells, want 4", rep.Cells)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Key != "tage/INT02/A/1000" {
		t.Fatalf("regressions = %+v", rep.Regressions)
	}
	if len(rep.Improvements) != 1 || rep.Improvements[0].Key != "tage/INT03/A/1000" {
		t.Fatalf("improvements = %+v", rep.Improvements)
	}
	if len(rep.MissingInNew) != 1 || rep.MissingInNew[0] != "tage/INT05/A/1000" {
		t.Fatalf("missing-in-new = %v", rep.MissingInNew)
	}
	if len(rep.MissingInOld) != 1 || rep.MissingInOld[0] != "tage/INT06/A/1000" {
		t.Fatalf("missing-in-old = %v", rep.MissingInOld)
	}
	if !rep.HasRegressions() {
		t.Fatal("report must flag regressions")
	}

	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"REGRESSIONS", "tage/INT02/A/1000", "improvements", "missing in new run"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestDiffShrunkCoverageIsARegression(t *testing.T) {
	// A new run that silently stopped measuring a baseline cell must not
	// pass: CI would otherwise go green on a sweep that covers nothing.
	old := []Record{
		cell("m", "INT01", "A", 100, 1.0),
		cell("m", "INT02", "A", 100, 1.0),
	}
	rep := Diff(old, old[:1], DiffOptions{})
	if !rep.HasRegressions() {
		t.Fatal("shrunk coverage must fail the diff")
	}
	// Grown coverage (new cells only on the new side) is fine.
	rep = Diff(old[:1], old, DiffOptions{})
	if rep.HasRegressions() {
		t.Fatal("grown coverage must pass")
	}
}

func TestDiffToleranceOverride(t *testing.T) {
	old := []Record{cell("m", "INT01", "A", 100, 10.0)}
	new := []Record{cell("m", "INT01", "A", 100, 10.5)}
	if rep := Diff(old, new, DiffOptions{Tolerance: 0.10}); rep.HasRegressions() {
		t.Fatal("+5% must pass at 10% tolerance")
	}
	if rep := Diff(old, new, DiffOptions{Tolerance: 0.01}); !rep.HasRegressions() {
		t.Fatal("+5% must fail at 1% tolerance")
	}
}

func TestDiffStrictZeroTolerance(t *testing.T) {
	old := []Record{cell("m", "INT01", "A", 100, 10.0)}
	new := []Record{cell("m", "INT01", "A", 100, 10.001)}
	// Default tolerance swallows a +0.01% move...
	if rep := Diff(old, new, DiffOptions{}); rep.HasRegressions() {
		t.Fatal("+0.01% must pass at default tolerance")
	}
	// ...but negative (strict) tolerance and floor demand exactness.
	if rep := Diff(old, new, DiffOptions{Tolerance: -1, AbsFloor: -1}); !rep.HasRegressions() {
		t.Fatal("strict diff must flag any increase")
	}
}

func TestDiffNewFailuresAreRegressions(t *testing.T) {
	old := []Record{cell("m", "INT01", "A", 100, 1.0)}
	bad := cell("m", "INT01", "A", 100, 0)
	bad.Err = "panic: boom"
	rep := Diff(old, []Record{bad}, DiffOptions{})
	if !rep.HasRegressions() {
		t.Fatal("newly failed cell must count as a regression")
	}
	if len(rep.MissingInNew) != 1 {
		t.Fatalf("failed cell should surface as missing, got %v", rep.MissingInNew)
	}
}

func TestDiffFlagsPipelineConfigMismatch(t *testing.T) {
	o := cell("m", "INT01", "A", 100, 1.0)
	o.Window, o.ExecDelay = 24, 6
	n := o
	n.Window = 48
	rep := Diff([]Record{o}, []Record{n}, DiffOptions{})
	if len(rep.ConfigMismatches) != 1 {
		t.Fatalf("config mismatches = %v", rep.ConfigMismatches)
	}
	if rep.HasRegressions() {
		t.Fatal("config mismatch alone must not regress")
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "pipeline config differs") {
		t.Fatalf("render missing config warning:\n%s", buf.String())
	}
}

func TestDiffAggregatesComparedByKey(t *testing.T) {
	agg := func(mpki float64) Record {
		return Record{Kind: KindSuite, Model: "m", Scenario: "A", Branches: 100, MPKI: mpki, Cells: 2}
	}
	rep := Diff([]Record{agg(2.0)}, []Record{agg(2.5)}, DiffOptions{})
	if len(rep.Aggregates) != 1 || rep.Aggregates[0].Key != "suite:m/A/100" {
		t.Fatalf("aggregates = %+v", rep.Aggregates)
	}
	// Aggregate movement alone never drives the exit status.
	if rep.HasRegressions() {
		t.Fatal("aggregate-only diff must not regress")
	}
}

func TestReadRecordsRoundTripThroughJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	recs := []Record{
		cell("tage", "INT01", "A", 1000, 3.25),
		{Kind: KindSuite, Model: "tage", Scenario: "A", Branches: 1000, MPKI: 3.25, MPKISum: 3.25, Cells: 1},
	}
	for _, r := range recs {
		if err := sink.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ReadRecords(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip length %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: %+v != %+v", i, got[i], recs[i])
		}
	}
	if _, err := ReadRecords(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line must error")
	}
}

func TestCSVAndTableSinks(t *testing.T) {
	var csvBuf bytes.Buffer
	cs := NewCSVSink(&csvBuf)
	if err := cs.Emit(cell("tage", "INT01", "A", 1000, 3.5)); err != nil {
		t.Fatal(err)
	}
	if err := cs.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "kind,model,trace") {
		t.Fatalf("csv output:\n%s", csvBuf.String())
	}
	if !strings.Contains(lines[1], "cell,tage,INT01,INT,A,1000,0,0,0,0,3.5,70") {
		t.Fatalf("csv row: %s", lines[1])
	}

	var tblBuf bytes.Buffer
	ts := NewTableSink(&tblBuf)
	fail := cell("tage", "INT02", "A", 1000, 0)
	fail.Err = "panic: boom"
	suite := Record{Kind: KindSuite, Model: "tage", Scenario: "A", Branches: 1000, MPKI: 3.5, MPPKISum: 70, Cells: 1}
	for _, r := range []Record{cell("tage", "INT01", "A", 1000, 3.5), fail, suite} {
		if err := ts.Emit(r); err != nil {
			t.Fatal(err)
		}
	}
	out := tblBuf.String()
	for _, want := range []string{"# tage scenario=A branches=1000", "INT01", "FAILED: panic: boom", "suite"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# tage") != 1 {
		t.Errorf("group header repeated:\n%s", out)
	}

	if _, err := NewSink("nope", &tblBuf); err == nil {
		t.Fatal("unknown format must error")
	}
	multi := MultiSink(NewJSONLSink(&bytes.Buffer{}), &collectSink{})
	if err := multi.Emit(suite); err != nil {
		t.Fatal(err)
	}
	if err := multi.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDiffIgnoresTelemetryFields is the observability regression guard:
// every Record field that is not cell identity, not the compared metric
// (MPKI), and not the failure marker must be invisible to Diff. A run
// whose only difference from its baseline is telemetry — timing,
// throughput, provenance, counts — must show zero movement, or adding
// instrumentation would perturb ci-golden comparisons. Enumerating the
// fields by reflection means a future Record field is ignored-by-Diff
// or this test fails until its role is decided.
func TestDiffIgnoresTelemetryFields(t *testing.T) {
	// Fields that legitimately change the comparison.
	identity := map[string]bool{
		"Kind": true, "Model": true, "Trace": true, "Category": true,
		"Scenario": true, "Branches": true,
	}
	compared := map[string]bool{"MPKI": true, "Err": true}
	// Window/ExecDelay are surfaced as config-mismatch warnings but must
	// never count as regressions.
	configOnly := map[string]bool{"Window": true, "ExecDelay": true}

	base := []Record{
		cell("tage", "INT01", "A", 1000, 10.0),
		cell("tage", "INT02", "A", 1000, 5.0),
	}
	rt := reflect.TypeOf(Record{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if identity[f.Name] || compared[f.Name] {
			continue
		}
		mutated := make([]Record, len(base))
		copy(mutated, base)
		for j := range mutated {
			fv := reflect.ValueOf(&mutated[j]).Elem().Field(i)
			switch f.Type.Kind() {
			case reflect.String:
				fv.SetString(fv.String() + "-telemetry")
			case reflect.Int:
				fv.SetInt(fv.Int() + 7)
			case reflect.Uint64:
				fv.SetUint(fv.Uint() + 7)
			case reflect.Float64:
				fv.SetFloat(fv.Float() + 7)
			case reflect.Ptr:
				fv.Set(reflect.ValueOf(&Provenance{GitSHA: "deadbeefdeadbeef", Schema: 3}))
			default:
				t.Fatalf("Record.%s has kind %s this test cannot mutate; extend it", f.Name, f.Type.Kind())
			}
		}
		rep := Diff(base, mutated, DiffOptions{Tolerance: -1, AbsFloor: -1})
		if rep.HasRegressions() || len(rep.Improvements) > 0 {
			t.Errorf("mutating Record.%s moved the diff: %d regressions, %d improvements, missing %v",
				f.Name, len(rep.Regressions), len(rep.Improvements), rep.MissingInNew)
		}
		if rep.Cells != len(base) {
			t.Errorf("mutating Record.%s changed cell identity: compared %d cells, want %d",
				f.Name, rep.Cells, len(base))
		}
		if configOnly[f.Name] {
			if len(rep.ConfigMismatches) == 0 {
				t.Errorf("mutating Record.%s should surface a config-mismatch warning", f.Name)
			}
		} else if len(rep.ConfigMismatches) != 0 {
			t.Errorf("mutating Record.%s produced config mismatches %v", f.Name, rep.ConfigMismatches)
		}
	}
}
