package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// panickyModel is fakeModel except it panics on the named trace —
// exercising the failed-job accounting path.
func panickyModel(name, badTrace string) Model {
	base := fakeModel(name, flat(2))
	inner := base.Run
	base.Run = func(tr *trace.Trace, opt sim.Options) sim.Result {
		if tr.Name == badTrace {
			panic("telemetry test: induced failure")
		}
		return inner(tr, opt)
	}
	return base
}

func metricsTestMatrix(t *testing.T, models []Model) *Matrix {
	t.Helper()
	return testMatrix(t, models, []string{"INT01", "INT02", "MM05"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB}, []int{60})
}

func TestRunInstrumentsRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	m := metricsTestMatrix(t, []Model{panickyModel("m", "INT02")})
	sink := &collectSink{}
	sum, err := Run(m, Config{Parallelism: 2, Metrics: reg}, sink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Jobs != 6 || sum.Failed != 2 {
		t.Fatalf("jobs=%d failed=%d, want 6/2", sum.Jobs, sum.Failed)
	}
	s := reg.Snapshot()

	if got := s.Value(MetricJobsStarted); got != 6 {
		t.Fatalf("%s = %v, want 6", MetricJobsStarted, got)
	}
	succ, _ := s.Sample(MetricJobs, "succeeded")
	fail, _ := s.Sample(MetricJobs, "failed")
	if succ.Value != 4 || fail.Value != 2 {
		t.Fatalf("jobs succeeded=%v failed=%v, want 4/2", succ.Value, fail.Value)
	}
	if _, ok := s.Sample(MetricJobs, "skipped"); ok {
		t.Fatal("non-resume run must not report skipped jobs")
	}

	if got := s.Value(MetricCellsTotal); got != 6 {
		t.Fatalf("%s = %v, want 6", MetricCellsTotal, got)
	}
	if got := s.Value(MetricCellsDone); got != 6 {
		t.Fatalf("%s = %v, want 6", MetricCellsDone, got)
	}

	// All per-worker in-flight gauges must have drained back to zero.
	if got := s.Value(MetricJobsInFlight); got != 0 {
		t.Fatalf("%s sum = %v, want 0", MetricJobsInFlight, got)
	}

	// 3 distinct (trace, length) pairs across 6 jobs: exactly 3 cache
	// misses (the generating lookups), the rest hits.
	if got := s.Value(MetricTraceCacheMisses); got != 3 {
		t.Fatalf("%s = %v, want 3", MetricTraceCacheMisses, got)
	}
	if got := s.Value(MetricTraceCacheHits); got != 3 {
		t.Fatalf("%s = %v, want 3", MetricTraceCacheHits, got)
	}

	// Latency histograms: one queue-wait and one execution observation
	// per job.
	qw, _ := s.Sample(MetricQueueWaitSeconds)
	jt, _ := s.Sample(MetricJobSeconds)
	if qw.Count != 6 || jt.Count != 6 {
		t.Fatalf("queue-wait count=%d job-seconds count=%d, want 6/6", qw.Count, jt.Count)
	}

	// Record stream accounting: every emitted record counted by kind.
	cells, _ := s.Sample(MetricRecordsEmitted, KindCell)
	if cells.Value != 6 {
		t.Fatalf("emitted cells = %v, want 6", cells.Value)
	}
	emittedByKind := map[string]int{}
	for _, r := range sum.Records {
		k := r.Kind
		if k == "" {
			k = KindCell
		}
		emittedByKind[k]++
	}
	for kind, want := range emittedByKind {
		smp, ok := s.Sample(MetricRecordsEmitted, kind)
		if !ok || smp.Value != float64(want) {
			t.Fatalf("emitted %s = %v, want %d", kind, smp.Value, want)
		}
	}

	// The derived throughput gauge is registered and non-negative.
	f, ok := s.Family(MetricBranchesPerSec)
	if !ok || f.Type != "gauge" {
		t.Fatalf("%s missing or wrong type %q", MetricBranchesPerSec, f.Type)
	}
	if v := s.Value(MetricBranchesPerSec); v < 0 {
		t.Fatalf("branches/sec = %v", v)
	}
}

func TestNoTraceCacheReportsNoCacheTraffic(t *testing.T) {
	reg := metrics.NewRegistry()
	m := metricsTestMatrix(t, []Model{fakeModel("m", flat(1))})
	if _, err := Run(m, Config{Parallelism: 2, NoTraceCache: true, Metrics: reg}, &collectSink{}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if h, ms := s.Value(MetricTraceCacheHits), s.Value(MetricTraceCacheMisses); h != 0 || ms != 0 {
		t.Fatalf("cache traffic with -notracecache: hits=%v misses=%v", h, ms)
	}
}

// TestMetricsDoNotPerturbRecords locks the zero-overhead claim from the
// result side: the record stream of an instrumented run is identical to
// an uninstrumented one (modulo wall-clock telemetry, which fakeModel
// doesn't produce).
func TestMetricsDoNotPerturbRecords(t *testing.T) {
	run := func(reg *metrics.Registry) []Record {
		m := metricsTestMatrix(t, []Model{fakeModel("m", flat(3))})
		sink := &collectSink{}
		if _, err := Run(m, Config{Parallelism: 2, Metrics: reg}, sink); err != nil {
			t.Fatal(err)
		}
		return sink.recs
	}
	plain, instrumented := run(nil), run(metrics.NewRegistry())
	if len(plain) != len(instrumented) {
		t.Fatalf("record counts differ: %d vs %d", len(plain), len(instrumented))
	}
	for i := range plain {
		a, b := plain[i], instrumented[i]
		if a.Kind != b.Kind || a.Model != b.Model || a.Trace != b.Trace ||
			a.Scenario != b.Scenario || a.MPKI != b.MPKI || a.Mispredicts != b.Mispredicts {
			t.Fatalf("record %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestResumeStoreInstrumentation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.jsonl")
	m := metricsTestMatrix(t, []Model{fakeModel("m", flat(2))})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Fresh store: every record is an append; nothing reused, no tail.
	reg := metrics.NewRegistry()
	sum, err := ResumeStoreFile(path, jobs, Config{Parallelism: 2, Metrics: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if got := s.Value(MetricStoreAppends); got != float64(len(sum.Records)) {
		t.Fatalf("%s = %v, want %d", MetricStoreAppends, got, len(sum.Records))
	}
	ab, _ := s.Sample(MetricStoreAppendBytes)
	if ab.Count != uint64(len(sum.Records)) || ab.Sum <= 0 {
		t.Fatalf("append-bytes count=%d sum=%v", ab.Count, ab.Sum)
	}
	al, _ := s.Sample(MetricStoreAppendSeconds)
	if al.Count != uint64(len(sum.Records)) {
		t.Fatalf("append-seconds count=%d, want %d", al.Count, len(sum.Records))
	}
	if got := s.Value(MetricStoreReused); got != 0 {
		t.Fatalf("fresh run reused = %v", got)
	}
	if got := s.Value(MetricStoreCrashTails); got != 0 {
		t.Fatalf("fresh run crash tails = %v", got)
	}

	// Complete store: all 6 cells reused, skipped jobs reported, done
	// gauge includes the reused cells.
	reg = metrics.NewRegistry()
	sum, err = ResumeStoreFile(path, jobs, Config{Parallelism: 2, Metrics: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 6 {
		t.Fatalf("skipped = %d, want 6", sum.Skipped)
	}
	s = reg.Snapshot()
	if got := s.Value(MetricStoreReused); got != 6 {
		t.Fatalf("%s = %v, want 6", MetricStoreReused, got)
	}
	skipped, _ := s.Sample(MetricJobs, "skipped")
	if skipped.Value != 6 {
		t.Fatalf("jobs skipped = %v, want 6", skipped.Value)
	}
	if got := s.Value(MetricCellsDone); got != 6 {
		t.Fatalf("%s = %v, want 6 (reused cells count as done)", MetricCellsDone, got)
	}

	// Torn final line: the resume truncates it and counts one crash tail.
	if err := appendBytes(path, []byte(`{"kind":"cell","model":"m","trace":"INT0`)); err != nil {
		t.Fatal(err)
	}
	reg = metrics.NewRegistry()
	if _, err := ResumeStoreFile(path, jobs, Config{Parallelism: 2, Metrics: reg}, nil); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Value(MetricStoreCrashTails); got != 1 {
		t.Fatalf("%s = %v, want 1", MetricStoreCrashTails, got)
	}
}

func appendBytes(path string, b []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func TestStartProgressRendersFromRegistry(t *testing.T) {
	// nil registry/writer: a callable no-op.
	StartProgress(nil, nil, 0)()

	reg := metrics.NewRegistry()
	m := metricsTestMatrix(t, []Model{panickyModel("m", "INT02")})
	var sb strings.Builder
	stop := StartProgress(&sb, reg, 50*1e6 /* 50ms */)
	if _, err := Run(m, Config{Parallelism: 2, Metrics: reg}, &collectSink{}); err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent

	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	final := lines[len(lines)-1]
	if !strings.Contains(final, "progress: 6/6 cells") {
		t.Fatalf("final progress line = %q", final)
	}
	if !strings.Contains(final, "(2 failed)") {
		t.Fatalf("failed count missing from %q", final)
	}
	if !strings.Contains(final, "ETA done") {
		t.Fatalf("completed run should render ETA done: %q", final)
	}
	if !strings.Contains(final, "elapsed ") || !strings.Contains(final, "branches") {
		t.Fatalf("rate/elapsed missing from %q", final)
	}
}

// TestProgressStallIndicator: a run that stops completing cells must
// stop quoting a finite ETA. Before the stall logic, render fell back
// to the *cumulative* rate whenever a window saw no progress, so a
// wedged run reported a confident, shrinking-never ETA forever.
func TestProgressStallIndicator(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Gauge(MetricCellsTotal, "t").Set(10)
	done := reg.Gauge(MetricCellsDone, "d")
	done.Set(4)

	p := &progressReporter{start: time.Now().Add(-10 * time.Second)}
	var sb strings.Builder
	render := func() string {
		sb.Reset()
		p.render(&sb, reg.Snapshot())
		return sb.String()
	}

	// First tick: cumulative-rate ETA, finite.
	if out := render(); !strings.Contains(out, "ETA") || strings.Contains(out, "stalled") {
		t.Fatalf("first tick: %q", out)
	}
	// Windows with no progress below the threshold: still an ETA.
	for i := 1; i < stallWindows; i++ {
		if out := render(); strings.Contains(out, "stalled") {
			t.Fatalf("stall flagged after only %d empty windows: %q", i, out)
		}
	}
	// Threshold reached: the line says stalled instead of a finite ETA.
	out := render()
	if !strings.Contains(out, "ETA stalled (no progress") {
		t.Fatalf("after %d empty windows, want stall indicator, got %q", stallWindows, out)
	}
	if strings.Contains(out, "ETA 2") || strings.Contains(out, "ETA 1") {
		t.Fatalf("stalled line still quotes a numeric ETA: %q", out)
	}
	// Progress resumes: the ETA comes back and the counter resets.
	done.Set(5)
	if out := render(); strings.Contains(out, "stalled") {
		t.Fatalf("stall indicator survived resumed progress: %q", out)
	}
	done.Set(10)
	if out := render(); !strings.Contains(out, "ETA done") {
		t.Fatalf("completed run: %q", out)
	}
}
