package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"
)

// WorkerOptions configures RunWorker, the pull loop a `bpbench work`
// process runs against a coordinator.
type WorkerOptions struct {
	// BaseURL is the coordinator address, e.g. "http://host:9090".
	BaseURL string
	// ID labels this worker in leases and coordinator metrics. Empty
	// defaults to hostname-pid.
	ID string
	// Resolve rebuilds models from the spec strings leases carry.
	Resolve ModelResolver
	// Config executes leased jobs — the same pooled/sharded in-process
	// engine a local run uses (Parallelism, predictor pool, trace
	// cache, warm cache, worker-local Metrics all apply). Scheduler and
	// Provenance are ignored: the coordinator stamps provenance when it
	// appends.
	Config Config
	// Poll is the sleep between empty lease polls (default 500ms); the
	// coordinator additionally long-polls each request.
	Poll time.Duration
	// Client overrides http.DefaultClient.
	Client *http.Client
	// Log, when non-nil, receives per-lease diagnostics.
	Log *slog.Logger
}

// RunWorker pulls job leases from a coordinator, executes them with the
// in-process engine, and streams the records back, until ctx is
// cancelled (which returns nil) or the coordinator becomes unusable.
// While a lease executes, a heartbeat goroutine renews it at a third of
// its TTL, so only a dead or wedged worker lets a lease expire.
func RunWorker(ctx context.Context, opt WorkerOptions) error {
	if opt.BaseURL == "" {
		return fmt.Errorf("harness: worker needs a coordinator BaseURL")
	}
	if opt.Resolve == nil {
		return fmt.Errorf("harness: worker needs a model resolver")
	}
	base := strings.TrimRight(opt.BaseURL, "/")
	if opt.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "worker"
		}
		opt.ID = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	if opt.Poll <= 0 {
		opt.Poll = 500 * time.Millisecond
	}
	client := opt.Client
	if client == nil {
		client = http.DefaultClient
	}
	log := opt.Log
	if log == nil {
		log = slog.New(slog.DiscardHandler)
	}

	leaseURL := fmt.Sprintf("%s/v1/lease?worker=%s&wait=2", base, url.QueryEscape(opt.ID))
	for {
		if ctx.Err() != nil {
			return nil
		}
		lease, err := fetchLease(ctx, client, leaseURL)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("harness: acquiring lease: %w", err)
		}
		if lease == nil { // queue idle
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(opt.Poll):
			}
			continue
		}
		if err := runLease(ctx, client, base, lease, opt, log); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
	}
}

// fetchLease asks the coordinator for work. A 204 returns (nil, nil).
func fetchLease(ctx context.Context, client *http.Client, leaseURL string) (*Lease, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, leaseURL, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNoContent:
		return nil, nil
	case http.StatusOK:
		var lease Lease
		if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
			return nil, fmt.Errorf("decoding lease: %w", err)
		}
		return &lease, nil
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("coordinator returned %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
}

// runLease executes one lease end to end: convert the wire jobs back
// into runnable Jobs, heartbeat while the engine runs, and post the
// records (one per wire job, lease order) back to the coordinator.
func runLease(ctx context.Context, client *http.Client, base string, lease *Lease, opt WorkerOptions, log *slog.Logger) error {
	log.Debug("lease acquired", "id", lease.ID, "cells", len(lease.Jobs))

	// Wire jobs that fail to resolve (unknown spec, unknown trace)
	// still produce a record — a failed cell the coordinator can
	// deliver — so a misconfigured worker surfaces errors instead of
	// bouncing the same lease between expiry and re-grant forever.
	results := make([]Record, len(lease.Jobs))
	filled := make([]bool, len(lease.Jobs))
	var jobs []Job
	var jobSlot []int // jobs[i] fills results[jobSlot[i]]
	for i, wj := range lease.Jobs {
		j, err := wj.Job(opt.Resolve)
		if err != nil {
			log.Warn("lease job unresolvable", "id", lease.ID, "key", wj.Key(), "err", err)
			results[i] = wireFailedRecord(wj, err)
			filled[i] = true
			continue
		}
		jobs = append(jobs, j)
		jobSlot = append(jobSlot, i)
	}

	// Heartbeat at a third of the TTL until execution finishes. A
	// renewal rejection means the coordinator already expired us;
	// abandon the lease (its cells are requeued) rather than racing a
	// re-grant.
	ttl := time.Duration(lease.TTLSeconds * float64(time.Second))
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	hbCtx, stopHB := context.WithCancel(ctx)
	expired := make(chan struct{})
	go func() {
		tick := time.NewTicker(ttl / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbCtx.Done():
				return
			case <-tick.C:
				if err := renewLease(hbCtx, client, base, lease.ID); err != nil {
					if hbCtx.Err() == nil {
						log.Warn("lease renewal failed", "id", lease.ID, "err", err)
						close(expired)
					}
					return
				}
			}
		}
	}()

	cfg := opt.Config
	cfg.Scheduler = nil  // leased cells always run on the local pool
	cfg.Provenance = nil // the coordinator stamps on append
	if len(jobs) > 0 {
		recs := executeJobs(jobs, cfg, newRunMetrics(cfg.Metrics), func(Record) {})
		for i, r := range recs {
			results[jobSlot[i]] = r
			filled[jobSlot[i]] = true
		}
	}
	stopHB()

	select {
	case <-expired:
		log.Warn("lease expired mid-run, dropping results", "id", lease.ID)
		return nil
	default:
	}
	for i, ok := range filled {
		if !ok { // engine returned short — shouldn't happen, but never post holes
			results[i] = wireFailedRecord(lease.Jobs[i], fmt.Errorf("harness: worker produced no record"))
		}
	}
	return postResults(ctx, client, base, lease.ID, results, log)
}

func renewLease(ctx context.Context, client *http.Client, base, id string) error {
	u := fmt.Sprintf("%s/v1/renew?id=%s", base, url.QueryEscape(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("renew returned %s", resp.Status)
	}
	return nil
}

// postResults streams the lease's records back as JSONL. A 410 (lease
// expired while we raced the post) is logged and swallowed: the
// coordinator has already requeued the cells.
func postResults(ctx context.Context, client *http.Client, base, id string, recs []Record, log *slog.Logger) error {
	var buf bytes.Buffer
	sink := NewJSONLSink(&buf)
	for _, r := range recs {
		if err := sink.Emit(r); err != nil {
			return fmt.Errorf("harness: encoding results: %w", err)
		}
	}
	u := fmt.Sprintf("%s/v1/results?id=%s", base, url.QueryEscape(id))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &buf)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("harness: posting results: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	switch resp.StatusCode {
	case http.StatusNoContent:
		log.Debug("lease completed", "id", id, "records", len(recs))
		return nil
	case http.StatusGone:
		log.Warn("lease expired before results landed", "id", id)
		return nil
	default:
		return fmt.Errorf("harness: results rejected (%s): %s", resp.Status, strings.TrimSpace(string(body)))
	}
}
