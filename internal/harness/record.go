package harness

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workload"
)

// Record kinds. Cell records carry one (model, trace, scenario, length)
// measurement; the aggregate kinds roll cells up per category, over the
// hard-trace subset, and over the whole suite, always within one
// (model, scenario, length) group.
const (
	KindCell     = "cell"
	KindCategory = "category"
	KindHard     = "hard"
	KindSuite    = "suite"
)

// Record is the harness's streaming result unit: a flattened, sink- and
// JSON-friendly view of one cell or aggregate. Aggregate records report
// MPKI/MPPKI as per-cell means and additionally carry the sums (the
// paper quotes suite MPPKI as a sum over the 40 traces).
type Record struct {
	Kind  string `json:"kind"`
	Model string `json:"model"`
	// Spec is the canonical model-spec string the cell's model was built
	// from (schema >= 3; on read, older records are upgraded in place by
	// filling it from the model identifier, which has always been the
	// canonical spec for named and scaled models). PlanResume refuses to
	// reuse a cell whose recorded spec disagrees with the requested one.
	Spec  string `json:"spec,omitempty"`
	Trace string `json:"trace,omitempty"`
	// TraceSpec is the resolvable trace-spec string behind Trace when
	// the two differ (schema >= 4): file-backed sources record
	// "file:<path>" here while Trace carries the content-addressed
	// "file:<hash>" identity. Empty means Trace is its own spec, which
	// holds for every named benchmark and generator spec — so records
	// from earlier schemas need no migration.
	TraceSpec string `json:"trace_spec,omitempty"`
	Category  string `json:"category,omitempty"`
	Scenario  string `json:"scenario"`
	Branches  int    `json:"branches"`
	Seed      uint64 `json:"seed,omitempty"`

	// DeltaLog and StorageBits describe the storage-budget axis: the
	// 2^deltaLog scaling applied to the model (0 outside a budget sweep —
	// the scaled model name "base@+d" is what keys the cell) and the
	// resulting predictor budget in bits, when the model reports one.
	DeltaLog    int `json:"delta_log,omitempty"`
	StorageBits int `json:"storage_bits,omitempty"`

	// Window and ExecDelay record the pipeline configuration actually
	// used, so diffs across runs with different pipeline models are
	// flagged instead of silently compared.
	Window    int `json:"window,omitempty"`
	ExecDelay int `json:"exec_delay,omitempty"`

	MPKI          float64 `json:"mpki"`
	MPPKI         float64 `json:"mppki"`
	MPKISum       float64 `json:"mpki_sum,omitempty"`
	MPPKISum      float64 `json:"mppki_sum,omitempty"`
	Mispredicts   uint64  `json:"mispredicts"`
	MicroOps      uint64  `json:"micro_ops,omitempty"`
	Misprediction float64 `json:"misprediction_rate,omitempty"`

	// Simulator-throughput telemetry: how many branches were actually
	// simulated, how long the cell took on the wall clock, and the derived
	// branches/sec. These track the speed of the simulator itself, never
	// the predictor's accuracy, and are deliberately ignored by Diff so
	// timing noise can never fail a baseline comparison. For aggregates,
	// SimBranches and ElapsedSec are sums over the group's cells and
	// BranchesPerSec is the group total branches over total time.
	SimBranches    uint64  `json:"sim_branches,omitempty"`
	ElapsedSec     float64 `json:"elapsed_sec,omitempty"`
	BranchesPerSec float64 `json:"branches_per_sec,omitempty"`

	// Cells is the number of cell records an aggregate covers.
	Cells int `json:"cells,omitempty"`
	// Err is set (and the metric fields zero) when the job panicked.
	Err string `json:"error,omitempty"`

	// Provenance says which code produced the record: git SHA, dirty
	// flag, toolchain, schema version, stamped at run time on every
	// record a run appends (see Config.Provenance). Nil on records from
	// stores written before provenance stamping existed. Like the timing
	// telemetry, it is deliberately ignored by Diff's regression logic —
	// a store is allowed to span revisions; PlanResume surfaces the
	// drift as warnings instead.
	Provenance *Provenance `json:"provenance,omitempty"`
}

// Failed reports whether the record describes a failed job.
func (r Record) Failed() bool { return r.Err != "" }

// Key returns the cell identifier used for baseline diffing. Aggregates
// use their kind plus grouping fields so they diff like cells.
func (r Record) Key() string {
	switch r.Kind {
	case KindCell, "":
		return CellKey(r.Model, r.Trace, r.Scenario, r.Branches)
	case KindCategory:
		return fmt.Sprintf("%s:%s/%s/%s/%d", r.Kind, r.Model, r.Category, r.Scenario, r.Branches)
	default:
		return fmt.Sprintf("%s:%s/%s/%d", r.Kind, r.Model, r.Scenario, r.Branches)
	}
}

// traceSpecOf extracts the Record.TraceSpec value for a workload: the
// resolvable spec string when it differs from the trace identity, else
// empty (the identity resolves itself).
func traceSpecOf(s workload.Spec) string {
	if sp := s.SpecString(); sp != s.Name {
		return sp
	}
	return ""
}

// cellRecord flattens a simulation result into a cell Record.
func cellRecord(j Job, res sim.Result) Record {
	return Record{
		Kind:           KindCell,
		Model:          j.Model.Name,
		Spec:           j.Model.Spec,
		Trace:          j.Spec.Name,
		TraceSpec:      traceSpecOf(j.Spec),
		Category:       j.Spec.Category,
		Scenario:       j.Scenario.Letter(),
		Branches:       j.Branches,
		Seed:           j.Seed,
		DeltaLog:       j.DeltaLog,
		StorageBits:    j.Model.StorageBits,
		Window:         res.Window,
		ExecDelay:      res.ExecDelay,
		MPKI:           res.MPKI,
		MPPKI:          res.MPPKI,
		Mispredicts:    res.Mispredicts,
		MicroOps:       res.MicroOps,
		Misprediction:  res.Misprediction,
		SimBranches:    res.Branches,
		ElapsedSec:     res.Elapsed.Seconds(),
		BranchesPerSec: res.BranchesPerSec,
	}
}

// failedRecord tags a panicked job.
func failedRecord(j Job, err error) Record {
	return Record{
		Kind:        KindCell,
		Model:       j.Model.Name,
		Spec:        j.Model.Spec,
		Trace:       j.Spec.Name,
		TraceSpec:   traceSpecOf(j.Spec),
		Category:    j.Spec.Category,
		Scenario:    j.Scenario.Letter(),
		Branches:    j.Branches,
		Seed:        j.Seed,
		DeltaLog:    j.DeltaLog,
		StorageBits: j.Model.StorageBits,
		Err:         err.Error(),
	}
}
