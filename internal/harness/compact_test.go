package harness

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/predictor"
)

// TestCompactCanonicalises pins the record-level semantics: newest
// success wins a key, a failure superseded by a success is dropped, a
// never-succeeded key keeps its newest failure, stale aggregate sets
// collapse to one recomputed set, and cell order is first-appearance
// (i.e. expansion) order.
func TestCompactCanonicalises(t *testing.T) {
	okA := cell("m", "INT01", "A", 40, 1.0)
	okA.Window, okA.ExecDelay = 24, 6
	failB := cell("m", "INT02", "A", 40, 0)
	failB.Err = "panic: boom"
	okB := cell("m", "INT02", "A", 40, 2.0)
	okB.Window, okB.ExecDelay = 24, 6
	okA2 := okA
	okA2.MPKI = 1.5 // a newer overlapping sweep re-measured the cell
	failC := cell("m", "INT03", "A", 40, 0)
	failC.Err = "panic: first"
	failC2 := cell("m", "INT03", "A", 40, 0)
	failC2.Err = "panic: second"
	staleAgg := Record{Kind: KindSuite, Model: "m", Scenario: "A", Branches: 40, Cells: 1}
	freshAgg := Record{Kind: KindSuite, Model: "m", Scenario: "A", Branches: 40, Cells: 2}

	in := []Record{okA, failB, staleAgg, okB, failC, okA2, failC2, freshAgg}
	out, stats := Compact(in)

	// Canonical cells in first-appearance order, then one aggregate set.
	if stats.CellsOut != 3 || stats.FailedKept != 1 {
		t.Fatalf("stats = %+v", stats)
	}
	if out[0].Key() != okA.Key() || out[0].MPKI != 1.5 {
		t.Fatalf("key A canonical = %+v (newest success must win)", out[0])
	}
	if out[1].Key() != okB.Key() || out[1].Failed() {
		t.Fatalf("key B canonical = %+v (success must supersede failure)", out[1])
	}
	if !out[2].Failed() || out[2].Err != "panic: second" {
		t.Fatalf("key C canonical = %+v (newest failure must be kept)", out[2])
	}
	if stats.SupersededFailed != 1 || stats.DuplicateCells != 2 {
		t.Fatalf("drop breakdown = %+v", stats)
	}
	if stats.AggregatesIn != 2 {
		t.Fatalf("aggregates in = %d, want 2", stats.AggregatesIn)
	}
	// The recomputed set covers the two successful cells.
	aggs := out[stats.CellsOut:]
	if len(aggs) != stats.AggregatesOut || len(aggs) == 0 {
		t.Fatalf("aggregate tail = %d records, stats %+v", len(aggs), stats)
	}
	var suite *Record
	for i := range aggs {
		if aggs[i].Kind == KindSuite {
			suite = &aggs[i]
		}
	}
	if suite == nil || suite.Cells != 2 || suite.MPKI != (1.5+2.0)/2 {
		t.Fatalf("recomputed suite = %+v", suite)
	}
	if stats.In != len(in) || stats.Out != len(out) || stats.Dropped() != len(in)-len(out) {
		t.Fatalf("counting stats inconsistent: %+v", stats)
	}
}

// TestCompactCellOnlyStoreStaysCellOnly: compaction must not invent an
// aggregate set the writer never produced (-noaggregates stores, or a
// run interrupted before its rollup).
func TestCompactCellOnlyStoreStaysCellOnly(t *testing.T) {
	in := []Record{cell("m", "INT01", "A", 40, 1), cell("m", "INT02", "A", 40, 2)}
	out, stats := Compact(in)
	if len(out) != 2 || stats.AggregatesOut != 0 {
		t.Fatalf("cell-only store grew aggregates: %+v (stats %+v)", out, stats)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatal("clean cell-only store must pass through verbatim")
	}
}

// randomStore synthesises an adversarial record stream: duplicate keys,
// interleaved failures, several aggregate sets, in random order of
// appends — the population a long-lived multi-sweep store accumulates.
func randomStore(rng *rand.Rand) []Record {
	var recs []Record
	models := []string{"m1", "m2"}
	traces := []string{"INT01", "INT02", "MM05"}
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		switch rng.Intn(10) {
		case 0: // aggregate record
			recs = append(recs, Record{
				Kind:  []string{KindSuite, KindHard, KindCategory}[rng.Intn(3)],
				Model: models[rng.Intn(len(models))], Scenario: "A",
				Branches: 40, Cells: rng.Intn(4),
			})
		default:
			r := cell(models[rng.Intn(len(models))], traces[rng.Intn(len(traces))], "A", 40, float64(rng.Intn(8)))
			r.Window, r.ExecDelay = 24, 6
			r.ElapsedSec = rng.Float64()
			if rng.Intn(4) == 0 {
				r = Record{Kind: KindCell, Model: r.Model, Trace: r.Trace,
					Scenario: r.Scenario, Branches: r.Branches, Err: "panic: boom"}
			}
			recs = append(recs, r)
		}
	}
	return recs
}

// TestCompactPropertyIdempotentAndClosed: over randomized stores,
// Compact(Compact(s)) == Compact(s), output cell keys are a subset of
// input cell keys with no duplicates, and the drop accounting adds up.
func TestCompactPropertyIdempotentAndClosed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		in := randomStore(rng)
		out, stats := Compact(in)

		again, stats2 := Compact(out)
		if len(again)+len(out) > 0 && !reflect.DeepEqual(again, out) {
			t.Fatalf("iter %d: compaction not idempotent:\nonce  %+v\nagain %+v", iter, out, again)
		}
		if stats2.Dropped() != 0 || stats2.SupersededFailed != 0 || stats2.DuplicateCells != 0 {
			t.Fatalf("iter %d: second compaction still dropped records: %+v", iter, stats2)
		}

		inKeys := make(map[string]bool)
		for _, r := range in {
			if r.Kind == KindCell || r.Kind == "" {
				inKeys[r.Key()] = true
			}
		}
		seen := make(map[string]bool)
		for _, r := range out {
			if r.Kind != KindCell && r.Kind != "" {
				continue
			}
			k := r.Key()
			if !inKeys[k] {
				t.Fatalf("iter %d: compaction invented cell key %s", iter, k)
			}
			if seen[k] {
				t.Fatalf("iter %d: duplicate cell key %s survived compaction", iter, k)
			}
			seen[k] = true
		}
		if len(seen) != stats.CellsOut || len(seen) != len(inKeys) {
			t.Fatalf("iter %d: %d distinct keys in, %d out (stats %+v)", iter, len(inKeys), len(seen), stats)
		}
		if stats.CellsIn-stats.CellsOut != stats.SupersededFailed+stats.DuplicateCells {
			t.Fatalf("iter %d: cell drop accounting inconsistent: %+v", iter, stats)
		}
	}
}

// TestResumeAfterCompactMatchesUncompacted is the lifecycle property the
// tentpole exists for: compacting an interrupted store changes nothing
// about how the sweep completes. Resuming the compacted store executes
// the same jobs and appends the same records (modulo wall-clock timing)
// as resuming the original, and a compacted *complete* store plans zero
// jobs.
func TestResumeAfterCompactMatchesUncompacted(t *testing.T) {
	models := []Model{fakeModel("m", flat(2))}
	grid := testMatrix(t, models, []string{"INT01", "INT02", "MM05"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB}, []int{60})

	full := &collectSink{}
	if _, err := Run(grid, Config{Parallelism: 2}, full); err != nil {
		t.Fatal(err)
	}

	// Interrupted store: 4 of 6 cells, one of them superseded garbage —
	// a failed record for cell 1 followed by its successful retry.
	failed := Record{Kind: KindCell, Model: "m", Trace: full.recs[1].Trace,
		Scenario: full.recs[1].Scenario, Branches: 60, Err: "panic: transient"}
	interrupted := []Record{full.recs[0], failed, full.recs[1], full.recs[2], full.recs[3]}

	compacted, stats := Compact(interrupted)
	if stats.SupersededFailed != 1 || len(compacted) != 4 {
		t.Fatalf("compacted interrupted store: %d records, stats %+v", len(compacted), stats)
	}

	jobs, err := grid.Expand()
	if err != nil {
		t.Fatal(err)
	}
	resumeOn := func(prior []Record) []Record {
		sinkOut := &collectSink{}
		if _, err := RunResume(PlanResume(jobs, prior, Provenance{}), Config{Parallelism: 2}, sinkOut); err != nil {
			t.Fatal(err)
		}
		out := append([]Record(nil), sinkOut.recs...)
		for i := range out {
			out[i].ElapsedSec = 0
			out[i].BranchesPerSec = 0
		}
		return out
	}
	fromRaw := resumeOn(interrupted)
	fromCompacted := resumeOn(compacted)
	if !reflect.DeepEqual(fromRaw, fromCompacted) {
		t.Fatalf("resume diverges after compaction:\nraw       %+v\ncompacted %+v", fromRaw, fromCompacted)
	}

	// A complete store, compacted, still plans zero jobs.
	completeCompact, _ := Compact(full.recs)
	plan := PlanResume(jobs, completeCompact, Provenance{})
	if len(plan.Todo) != 0 || !plan.PriorHasAggregates {
		t.Fatalf("compacted complete store must plan zero jobs: todo=%d aggs=%v",
			len(plan.Todo), plan.PriorHasAggregates)
	}
	// And its recomputed aggregate set matches the one the uninterrupted
	// run emitted (same cells, same order, same sums).
	if !reflect.DeepEqual(completeCompact, full.recs) {
		t.Fatalf("compacting a clean complete store must be a no-op:\ngot  %+v\nwant %+v", completeCompact, full.recs)
	}
}
