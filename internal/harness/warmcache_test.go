package harness

import (
	"bytes"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/gshare"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
)

func clearRecTiming(recs []Record) {
	for i := range recs {
		recs[i].ElapsedSec = 0
		recs[i].BranchesPerSec = 0
	}
}

// TestWarmCacheByteIdentical is the repeated-sweep contract: a matrix
// run with a warm cache produces records identical (modulo wall-clock
// telemetry) whether the cache is empty (cold pass, all misses) or
// populated by the previous pass (warm pass, all hits skipping every
// cell's already-simulated prefix).
func TestWarmCacheByteIdentical(t *testing.T) {
	models := []Model{
		{Name: "gshare12", Spec: "gshare:12", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
			return sim.RunTrace(gshare.New(12), tr, opt)
		}},
		{Name: "tage", Spec: "tage:ref", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
			return sim.RunTrace(tage.New(tage.Reference()), tr, opt)
		}},
	}
	m := testMatrix(t, models, []string{"INT01", "MM05"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioC}, []int{5000})
	dir := WarmCacheDir(t.TempDir() + "/store.jsonl")

	pass := func() ([]Record, metrics.Snapshot) {
		reg := metrics.NewRegistry()
		sink := &collectSink{}
		cfg := Config{Parallelism: 2, WarmCache: dir, CheckpointEvery: 1500, Metrics: reg}
		if _, err := Run(m, cfg, sink); err != nil {
			t.Fatal(err)
		}
		clearRecTiming(sink.recs)
		return sink.recs, reg.Snapshot()
	}

	cold, coldSnap := pass()
	if hits, _ := coldSnap.Sample(MetricWarmCacheHits); hits.Value != 0 {
		t.Fatalf("cold pass reported %v warm hits, want 0", hits.Value)
	}
	if misses, _ := coldSnap.Sample(MetricWarmCacheMisses); misses.Value != 8 {
		t.Fatalf("cold pass reported %v warm misses, want 8 (every cell)", misses.Value)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("blob cache dir after cold pass: entries=%d err=%v", len(ents), err)
	}

	warm, warmSnap := pass()
	if hits, _ := warmSnap.Sample(MetricWarmCacheHits); hits.Value != 8 {
		t.Fatalf("warm pass reported %v warm hits, want 8 (every cell)", hits.Value)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm pass emitted %d records, cold %d", len(warm), len(cold))
	}
	for i := range cold {
		if warm[i] != cold[i] {
			t.Errorf("record %d diverges:\n  cold: %+v\n  warm: %+v", i, cold[i], warm[i])
		}
	}
}

// TestWarmCacheResumesInterruptedCell is the interrupted-cell contract:
// a cell killed mid-trace leaves its latest periodic checkpoint in the
// cache, and the re-run resumes from it — demonstrably mid-trace, not
// branch 0 — while producing the exact cold-run record.
func TestWarmCacheResumesInterruptedCell(t *testing.T) {
	mkModel := func(interrupt bool, resumedAt *uint64) Model {
		return Model{Name: "tage", Spec: "tage:ref", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
			if interrupt {
				// Die right after the first periodic checkpoint lands on
				// disk, like a process killed mid-cell.
				inner := opt.OnCheckpoint
				opt.OnCheckpoint = func(blob []byte, at uint64) {
					inner(blob, at)
					panic("interrupted mid-trace")
				}
			}
			res := sim.RunTrace(tage.New(tage.Reference()), tr, opt)
			if resumedAt != nil {
				*resumedAt = res.ResumedAt
			}
			return res
		}}
	}
	scs := []predictor.Scenario{predictor.ScenarioA}
	lengths := []int{8000}
	dir := WarmCacheDir(t.TempDir() + "/store.jsonl")
	cfg := Config{Parallelism: 1, WarmCache: dir, CheckpointEvery: 3000}

	// Reference: uninterrupted cold run without any cache.
	refSink := &collectSink{}
	if _, err := Run(testMatrix(t, []Model{mkModel(false, nil)}, []string{"INT01"}, scs, lengths),
		Config{Parallelism: 1}, refSink); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: the cell fails, but its checkpoint survived.
	intSink := &collectSink{}
	sum, err := Run(testMatrix(t, []Model{mkModel(true, nil)}, []string{"INT01"}, scs, lengths), cfg, intSink)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 1 {
		t.Fatalf("interrupted run failed %d cells, want 1", sum.Failed)
	}

	// Re-run: must warm-start from the interrupted cell's checkpoint.
	var resumedAt uint64
	reSink := &collectSink{}
	reg := metrics.NewRegistry()
	cfg.Metrics = reg
	if _, err := Run(testMatrix(t, []Model{mkModel(false, &resumedAt)}, []string{"INT01"}, scs, lengths), cfg, reSink); err != nil {
		t.Fatal(err)
	}
	if resumedAt == 0 {
		t.Fatal("re-run started from branch 0; want resume from the interrupted cell's checkpoint")
	}
	if hits, _ := reg.Snapshot().Sample(MetricWarmCacheHits); hits.Value != 1 {
		t.Fatalf("re-run warm hits = %v, want 1", hits.Value)
	}
	clearRecTiming(refSink.recs)
	clearRecTiming(reSink.recs)
	if len(reSink.recs) != len(refSink.recs) {
		t.Fatalf("re-run emitted %d records, reference %d", len(reSink.recs), len(refSink.recs))
	}
	for i := range refSink.recs {
		if reSink.recs[i] != refSink.recs[i] {
			t.Errorf("record %d diverges from uninterrupted run:\n  resumed: %+v\n  cold:    %+v",
				i, reSink.recs[i], refSink.recs[i])
		}
	}
}

// TestWarmCacheWriteErrorsCounted: a cache directory that stops
// accepting writes (read-only, full, replaced by a file) must show up
// in bpbench_warm_cache_write_errors_total — and log once — instead of
// silently degrading every future run to cold starts.
func TestWarmCacheWriteErrorsCounted(t *testing.T) {
	reg := metrics.NewRegistry()
	rm := newRunMetrics(reg)
	var logBuf syncBuffer
	log := slog.New(slog.NewTextHandler(&logBuf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	wc := newWarmCache(t.TempDir(), rm, log)
	if wc == nil {
		t.Fatal("newWarmCache returned nil for a good directory")
	}

	// Break the directory out from under the cache: CreateTemp now
	// fails on every save.
	broken := filepath.Join(t.TempDir(), "notadir")
	if err := os.WriteFile(broken, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	wc.dir = broken

	wc.save("cell-a", []byte("blob"), 1)
	wc.save("cell-b", []byte("blob"), 2)
	if got, _ := reg.Snapshot().Sample(MetricWarmCacheWriteErrors); got.Value != 2 {
		t.Fatalf("write-error counter = %v, want 2", got.Value)
	}
	if n := strings.Count(logBuf.String(), "warm cache writes failing"); n != 1 {
		t.Fatalf("write failure logged %d times, want exactly once:\n%s", n, logBuf.String())
	}

	// A nil logger (library embedding) and nil metrics stay safe.
	quiet := newWarmCache(t.TempDir(), nil, nil)
	quiet.dir = broken
	quiet.save("cell-c", []byte("blob"), 3)
}

// syncBuffer is a mutex-guarded bytes.Buffer for handlers that may log
// from worker goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
