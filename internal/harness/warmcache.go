package harness

import (
	"fmt"
	"hash/fnv"
	"log/slog"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/checkpoint"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// warmCache is the store-adjacent checkpoint blob cache: one file per
// cell identity under Config.WarmCache (conventionally the result
// store's path plus ".ckpt/"). Each blob wraps a sim checkpoint in a
// "warmcache" section that records the full cell key it was taken
// under, so a filename-hash collision loads as a miss instead of
// feeding another cell's state to the simulator. The sim layer
// re-validates pipeline configuration and predictor geometry on decode
// either way — the cache is an optimization, never something a result
// depends on: any load failure falls back to a cold run.
type warmCache struct {
	dir          string
	hashes       sync.Map // *trace.Trace -> uint64, memoised content hashes
	hits, misses *metrics.Counter
	writeErrs    *metrics.Counter
	log          *slog.Logger
	warnOnce     sync.Once
}

// newWarmCache opens (creating if needed) the blob directory. Errors
// disable the cache rather than failing the run — callers that want
// fail-fast behaviour (the CLIs) validate the directory up front.
func newWarmCache(dir string, rm *runMetrics, log *slog.Logger) *warmCache {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	wc := &warmCache{dir: dir, log: log}
	if rm != nil {
		wc.hits, wc.misses = rm.warmHits, rm.warmMisses
		wc.writeErrs = rm.warmWriteErrs
	}
	return wc
}

// fail accounts a checkpoint blob that could not be persisted. Loads
// stay best-effort and silent (a missing blob is just a miss), but a
// failing save means a read-only or full cache directory is quietly
// degrading every future run to cold starts — so it is counted in
// bpbench_warm_cache_write_errors_total and logged once per run at
// debug (-v) level.
func (wc *warmCache) fail(err error) {
	wc.writeErrs.Inc()
	if wc.log != nil {
		wc.warnOnce.Do(func() {
			wc.log.Debug("warm cache writes failing; cells will cold-start", "dir", wc.dir, "err", err)
		})
	}
}

func (wc *warmCache) traceHash(tr *trace.Trace) uint64 {
	if h, ok := wc.hashes.Load(tr); ok {
		return h.(uint64)
	}
	h := tr.Hash()
	wc.hashes.Store(tr, h)
	return h
}

// key is the cache identity of one cell: the canonical model spec (the
// name for models built without one), the trace's content hash — so a
// regenerated or retuned workload invalidates its blobs by construction
// — and the pipeline configuration the simulation runs under.
func (wc *warmCache) key(j Job, tr *trace.Trace) string {
	spec := j.Model.Spec
	if spec == "" {
		spec = j.Model.Name
	}
	return fmt.Sprintf("%s|%016x|%s|w%d|d%d|p%g",
		spec, wc.traceHash(tr), j.Opts.Scenario.Letter(),
		j.Opts.Window, j.Opts.ExecDelay, j.Opts.PenaltyBase)
}

// path maps a cell key to its blob file (FNV-1a of the key, hex).
func (wc *warmCache) path(key string) string {
	h := fnv.New64a()
	h.Write([]byte(key))
	return filepath.Join(wc.dir, fmt.Sprintf("%016x.ckpt", h.Sum64()))
}

const warmCacheSection = "warmcache"

// load returns the cached checkpoint for key, or nil when there is
// none — or when the blob is unreadable, from a newer format, or was
// written under a colliding key (all misses, never errors).
func (wc *warmCache) load(key string) *sim.Checkpoint {
	blob, err := os.ReadFile(wc.path(key))
	if err != nil {
		return nil
	}
	dec := checkpoint.NewDecoder(blob)
	dec.Open(warmCacheSection, 1)
	storedKey := dec.String()
	at := dec.U64()
	inner := dec.Bytes()
	dec.Close()
	if dec.Err() != nil || storedKey != key {
		return nil
	}
	return &sim.Checkpoint{At: at, Blob: inner}
}

// save writes (or overwrites — later checkpoints of one cell supersede
// earlier ones) the blob for key atomically: temp file plus rename, so
// a reader never sees a torn blob and a crash mid-save leaves the
// previous checkpoint intact.
func (wc *warmCache) save(key string, blob []byte, at uint64) {
	enc := checkpoint.NewEncoder()
	enc.Begin(warmCacheSection, 1)
	enc.String(key)
	enc.U64(at)
	enc.Bytes(blob)
	enc.End()
	tmp, err := os.CreateTemp(wc.dir, "ckpt-*.tmp")
	if err != nil {
		wc.fail(err)
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(enc.Blob())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		if werr == nil {
			werr = cerr
		}
		wc.fail(werr)
		return
	}
	if err := os.Rename(name, wc.path(key)); err != nil {
		os.Remove(name)
		wc.fail(err)
	}
}

// WarmCacheDir is the conventional blob-cache directory for a result
// store: the store path plus ".ckpt" ("results/store.jsonl" caches
// under "results/store.jsonl.ckpt/"). Store lifecycle tooling treats
// the suffix as opaque: compact rewrites the store file only and never
// touches the sidecar directory.
func WarmCacheDir(storePath string) string { return storePath + ".ckpt" }
