package harness

import (
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"

	"repro/internal/gshare"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// pooledGshare is a real predictor with both run paths wired: Run
// constructs cold (like every model before the pool existed), NewRunner
// reuses one Reset instance. constructions counts how many predictors
// were actually built, which is what the pool is supposed to save.
func pooledGshare(constructions *atomic.Int64) Model {
	mk := func() predictor.Predictor[gshare.Ctx] {
		if constructions != nil {
			constructions.Add(1)
		}
		return gshare.New(12)
	}
	return Model{
		Name: "gshare12",
		Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
			return sim.RunTrace(mk(), tr, opt)
		},
		NewRunner: func() func(tr *trace.Trace, opt sim.Options) sim.Result {
			p := mk()
			var rn sim.Runner[gshare.Ctx]
			dirty := false
			return func(tr *trace.Trace, opt sim.Options) sim.Result {
				if dirty {
					p.Reset()
				}
				dirty = true
				return rn.RunTrace(p, tr, opt)
			}
		},
	}
}

func clearTiming(recs []Record) {
	for i := range recs {
		recs[i].ElapsedSec = 0
		recs[i].BranchesPerSec = 0
	}
}

// TestGroupJobs: cell groups partition the expanded grid by (model,
// scenario, branches, deltaLog) — i.e. by everything except the trace —
// in first-appearance order, covering every job exactly once.
func TestGroupJobs(t *testing.T) {
	m := testMatrix(t,
		[]Model{fakeModel("m1", flat(1)), fakeModel("m2", flat(2))},
		[]string{"INT01", "INT02", "MM05"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB},
		[]int{60})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	groups := groupJobs(jobs)
	if len(groups) != 4 { // 2 models x 2 scenarios
		t.Fatalf("got %d groups, want 4: %v", len(groups), groups)
	}
	seen := make(map[int]bool)
	prevFirst := -1
	for gi, g := range groups {
		if len(g) != 3 {
			t.Fatalf("group %d has %d members, want 3 (one per trace)", gi, len(g))
		}
		if g[0] < prevFirst {
			t.Fatalf("groups not in first-appearance order: %v", groups)
		}
		prevFirst = g[0]
		first := jobs[g[0]]
		for k, i := range g {
			if seen[i] {
				t.Fatalf("job %d appears in two groups", i)
			}
			seen[i] = true
			if k > 0 && g[k] <= g[k-1] {
				t.Fatalf("group %d members out of expansion order: %v", gi, g)
			}
			j := jobs[i]
			if j.Model.Name != first.Model.Name || j.Scenario != first.Scenario ||
				j.Branches != first.Branches || j.DeltaLog != first.DeltaLog {
				t.Fatalf("group %d mixes cells: %s vs %s", gi, j.Key(), first.Key())
			}
		}
	}
	if len(seen) != len(jobs) {
		t.Fatalf("groups cover %d of %d jobs", len(seen), len(jobs))
	}
}

// TestPredictorPoolReusesAndMeters: one worker running N cells of the
// same model constructs exactly one predictor, and the hit/miss
// counters account every arena lookup. The pooled records must match a
// pool-disabled run exactly.
func TestPredictorPoolReusesAndMeters(t *testing.T) {
	traces := []string{"INT01", "INT02", "MM05", "WS01"}
	run := func(cfg Config, ctor *atomic.Int64) []Record {
		m := testMatrix(t, []Model{pooledGshare(ctor)}, traces,
			[]predictor.Scenario{predictor.ScenarioA}, []int{500})
		sink := &collectSink{}
		if _, err := Run(m, cfg, sink); err != nil {
			t.Fatal(err)
		}
		return sink.recs
	}

	reg := metrics.NewRegistry()
	var pooledCtor atomic.Int64
	pooled := run(Config{Parallelism: 1, Metrics: reg}, &pooledCtor)
	if got := pooledCtor.Load(); got != 1 {
		t.Fatalf("pooled run constructed %d predictors, want 1", got)
	}
	s := reg.Snapshot()
	if hits, misses := s.Value(MetricPredictorPoolHits), s.Value(MetricPredictorPoolMisses); hits != 3 || misses != 1 {
		t.Fatalf("pool hits=%v misses=%v, want 3/1", hits, misses)
	}

	var coldCtor atomic.Int64
	cold := run(Config{Parallelism: 1, NoPredictorPool: true}, &coldCtor)
	if got := coldCtor.Load(); got != int64(len(traces)) {
		t.Fatalf("NoPredictorPool run constructed %d predictors, want %d", got, len(traces))
	}
	clearTiming(pooled)
	clearTiming(cold)
	if !reflect.DeepEqual(pooled, cold) {
		t.Fatalf("pooled records diverge from cold construction:\n%+v\nvs\n%+v", pooled, cold)
	}
}

// TestNoPredictorPoolReportsNoPoolTraffic: with the pool disabled the
// counters stay silent, mirroring the trace-cache convention.
func TestNoPredictorPoolReportsNoPoolTraffic(t *testing.T) {
	reg := metrics.NewRegistry()
	m := testMatrix(t, []Model{pooledGshare(nil)}, []string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{200})
	if _, err := Run(m, Config{Parallelism: 1, NoPredictorPool: true, Metrics: reg}, &collectSink{}); err != nil {
		t.Fatal(err)
	}
	s := reg.Snapshot()
	if h, ms := s.Value(MetricPredictorPoolHits), s.Value(MetricPredictorPoolMisses); h != 0 || ms != 0 {
		t.Fatalf("pool traffic with NoPredictorPool: hits=%v misses=%v", h, ms)
	}
}

// TestMatrixExpandRejectsNegativeIntraCellWorkers mirrors the other
// Expand-time validations: a nonsensical worker count fails fast.
func TestMatrixExpandRejectsNegativeIntraCellWorkers(t *testing.T) {
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{50})
	m.IntraCellWorkers = -2
	if _, err := m.Expand(); err == nil {
		t.Fatal("Expand accepted negative IntraCellWorkers")
	}
}

// TestIntraCellShardingMatchesSerialAndMeters: sharding each cell
// group's traces across goroutines must leave the record stream —
// values and emission order — byte-identical to the serial schedule,
// while the per-shard branch counters account every simulated branch.
func TestIntraCellShardingMatchesSerialAndMeters(t *testing.T) {
	traces := []string{"INT01", "INT02", "MM05", "WS01", "CLIENT01", "SERVER01"}
	scenarios := []predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB}
	run := func(cfg Config) []Record {
		m := testMatrix(t, []Model{pooledGshare(nil)}, traces, scenarios, []int{400})
		sink := &collectSink{}
		if _, err := Run(m, cfg, sink); err != nil {
			t.Fatal(err)
		}
		return sink.recs
	}

	serial := run(Config{Parallelism: 1})
	reg := metrics.NewRegistry()
	const shards = 3
	sharded := run(Config{Parallelism: 2, IntraCellWorkers: shards, Metrics: reg})
	clearTiming(serial)
	clearTiming(sharded)
	if !reflect.DeepEqual(serial, sharded) {
		t.Fatalf("sharded records diverge from serial schedule:\n%+v\nvs\n%+v", serial, sharded)
	}

	var cellBranches uint64
	for _, r := range sharded {
		if r.Kind == KindCell {
			cellBranches += r.SimBranches
		}
	}
	s := reg.Snapshot()
	var metered float64
	active := 0
	for sh := 0; sh < shards; sh++ {
		smp, ok := s.Sample(sim.MetricShardBranches, strconv.Itoa(sh))
		if !ok {
			continue
		}
		active++
		metered += smp.Value
	}
	if active < 2 {
		t.Fatalf("only %d shard counters advanced, want >= 2 (families: %+v)", active, s)
	}
	if metered != float64(cellBranches) {
		t.Fatalf("shard counters sum to %v branches, cells report %d", metered, cellBranches)
	}
}
