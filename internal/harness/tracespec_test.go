package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/predictor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// specJob expands a one-cell matrix for the given trace pattern.
func specJob(t *testing.T, pattern string) Job {
	t.Helper()
	m := testMatrix(t, []Model{fakeModel("m1", flat(3))},
		[]string{pattern}, []predictor.Scenario{predictor.ScenarioA}, []int{500})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 {
		t.Fatalf("expanded %d jobs", len(jobs))
	}
	return jobs[0]
}

func writeBPT(t *testing.T, path string, tr *trace.Trace) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Write(f, tr); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestWireJobGeneratorSpecRoundTrip: a generator-spec cell survives the
// wire — the worker regenerates the trace from the spec string and the
// rebuilt job produces the identical record, including the key.
func TestWireJobGeneratorSpecRoundTrip(t *testing.T) {
	j := specJob(t, "phased:period=1024#7")
	w := wireJob(j)
	if w.Trace != "phased:period=1024#7" || w.TraceSpec != "" {
		t.Fatalf("generator specs are their own identity: wire %+v", w)
	}
	resolver := func(spec string) (Model, error) { return fakeModel(spec, flat(3)), nil }
	j2, err := w.Job(resolver)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Key() != j.Key() {
		t.Fatalf("keys differ: %q vs %q", j2.Key(), j.Key())
	}
	if j2.Seed != j.Seed {
		t.Fatalf("seeds differ: %d vs %d", j2.Seed, j.Seed)
	}
	a := workload.Generate(j.Spec, 500)
	b := workload.Generate(j2.Spec, 500)
	if a.Hash() != b.Hash() {
		t.Fatal("worker regenerated a different trace from the spec")
	}
}

// TestWireJobFileSpecRoundTrip: file-backed cells ship the path in
// TraceSpec, keep the content hash as the identity, and fail loudly if
// the file's contents no longer match the lease.
func TestWireJobFileSpecRoundTrip(t *testing.T) {
	dir := t.TempDir()
	src, err := workload.ResolveSpec("INT01")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "ext.bpt")
	writeBPT(t, path, workload.Generate(src, 500))

	j := specJob(t, "file:"+path)
	w := wireJob(j)
	if !strings.HasPrefix(w.Trace, "file:") || strings.Contains(w.Trace, dir) {
		t.Fatalf("identity should be the content hash, got %q", w.Trace)
	}
	if w.TraceSpec != "file:"+path {
		t.Fatalf("TraceSpec %q, want the path form", w.TraceSpec)
	}
	resolver := func(spec string) (Model, error) { return fakeModel(spec, flat(3)), nil }
	j2, err := w.Job(resolver)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Key() != j.Key() {
		t.Fatalf("keys differ: %q vs %q", j2.Key(), j.Key())
	}

	// Swap the file's contents: the hash no longer matches the lease's
	// cell identity, and reconstruction must refuse rather than deliver
	// a record under the wrong key.
	writeBPT(t, path, workload.Generate(src, 200))
	if _, err := w.Job(resolver); err == nil || !strings.Contains(err.Error(), "contents change") {
		t.Fatalf("tampered file accepted: %v", err)
	}
}

// TestRecordTraceSpec: named and generator records leave TraceSpec
// empty (Trace is its own spec — the byte-identity guarantee for
// pre-spec stores); file records carry the path.
func TestRecordTraceSpec(t *testing.T) {
	named := specJob(t, "INT01")
	if got := traceSpecOf(named.Spec); got != "" {
		t.Fatalf("named TraceSpec %q, want empty", got)
	}
	gen := specJob(t, "ctxflush:burst=16#3")
	if got := traceSpecOf(gen.Spec); got != "" {
		t.Fatalf("generator TraceSpec %q, want empty", got)
	}

	dir := t.TempDir()
	src, _ := workload.ResolveSpec("INT01")
	path := filepath.Join(dir, "ext.bpt")
	writeBPT(t, path, workload.Generate(src, 300))
	file := specJob(t, "file:"+path)
	if got := traceSpecOf(file.Spec); got != "file:"+path {
		t.Fatalf("file TraceSpec %q", got)
	}
}

// TestPlanResumeTraceSpecConflict: a stored cell whose workload
// description changed under the same trace name is a conflict, not a
// silent reuse; file-backed cells are exempt because the content hash
// already pins the branch stream.
func TestPlanResumeTraceSpecConflict(t *testing.T) {
	j := specJob(t, "INT01")
	rec := cellRecord(j, fakeModel("m1", flat(3)).Run(workload.Generate(j.Spec, 500), j.Opts))

	// Honest store: reused.
	plan := PlanResume([]Job{j}, []Record{rec}, Provenance{})
	if len(plan.Todo) != 0 || len(plan.ConfigConflicts) != 0 {
		t.Fatalf("clean resume: todo=%d conflicts=%v", len(plan.Todo), plan.ConfigConflicts)
	}

	// Same key, different recorded workload description: conflict.
	bad := rec
	bad.TraceSpec = "phased:period=2048#9"
	plan = PlanResume([]Job{j}, []Record{bad}, Provenance{})
	if len(plan.ConfigConflicts) != 1 || !strings.Contains(plan.ConfigConflicts[0], "stored trace spec") {
		t.Fatalf("conflicts = %v", plan.ConfigConflicts)
	}
	if len(plan.Todo) != 1 {
		t.Fatal("conflicted cell must not be reused")
	}

	// File-backed cell recorded under a different path: reused anyway.
	dir := t.TempDir()
	src, _ := workload.ResolveSpec("INT01")
	path := filepath.Join(dir, "ext.bpt")
	writeBPT(t, path, workload.Generate(src, 300))
	fj := specJob(t, "file:"+path)
	frec := cellRecord(fj, fakeModel("m1", flat(3)).Run(workload.Generate(fj.Spec, 300), fj.Opts))
	frec.TraceSpec = "file:/some/other/host/path.bpt"
	plan = PlanResume([]Job{fj}, []Record{frec}, Provenance{})
	if len(plan.Todo) != 0 || len(plan.ConfigConflicts) != 0 {
		t.Fatalf("file path drift should not conflict: todo=%d conflicts=%v", len(plan.Todo), plan.ConfigConflicts)
	}
}

// TestSelectTracesSpecPatterns: the harness-level selector accepts
// generator specs alongside names and globs.
func TestSelectTracesSpecPatterns(t *testing.T) {
	specs, err := SelectTraces([]string{"INT01", "loopy:trip=9#2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[1].Name != "loopy:trip=9#2" {
		t.Fatalf("got %+v", specs)
	}
	if _, err := SelectTraces([]string{"loopy:warp=1"}); err == nil {
		t.Fatal("bad spec accepted")
	}
}
