// Package harness is the batch-experiment engine behind cmd/bpbench and
// the experiments package: a declarative matrix (models × traces ×
// scenarios × trace lengths, with include/exclude filters) is expanded
// into jobs and executed by a sharded worker pool with per-job
// deterministic seeding and panic isolation, streaming one Record per
// cell — plus per-category, hard-subset and suite-level aggregates — to
// pluggable sinks (human table, JSONL, CSV). A JSONL run can later serve
// as the baseline for Diff, which flags per-cell and aggregate
// regressions beyond a tolerance, making the harness usable as a CI
// gate.
//
// The paper's case for TAGE rests on sweeping exactly this kind of
// evaluation grid — predictors × 40 traces × update-timing scenarii ×
// budgets — and the harness is the scale-out substrate for it: one bad
// cell (a panicking predictor) is reported and skipped, not fatal to the
// sweep.
package harness

import (
	"fmt"
	"sync"
)

// Map runs fn for every index in [0, n) with at most workers concurrent
// goroutines and returns the results in index order. If any invocation
// panics, the first panic value is re-raised in the caller after all
// workers have drained (no goroutine leak, no partial-result use). It is
// the pool primitive shared by the matrix runner and the experiments
// package's suite sweeps.
func Map[T any](n, workers int, fn func(i int) T) []T {
	results := make([]T, n)
	ForEach(n, workers, func(i int) { results[i] = fn(i) })
	return results
}

// ForEach is Map without result collection: fn is invoked for every
// index in [0, n) with bounded parallelism; the first panic is re-raised
// after the pool drains.
func ForEach(n, workers int, fn func(i int)) {
	forEachWorker(n, workers, func(_, i int) { fn(i) })
}

// forEachWorker is ForEach with the worker's shard id passed to fn —
// the hook per-worker telemetry (jobs in flight per worker) needs,
// without widening the public pool API.
func forEachWorker(n, workers int, fn func(worker, i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 || workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
		haveP    bool
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							if !haveP {
								haveP, panicked = true, r
							}
							panicMu.Unlock()
						}
					}()
					fn(w, i)
				}()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if haveP {
		panic(panicked)
	}
}

// Protect runs fn, converting a panic into an error (the panic value,
// formatted). Job execution uses it so one bad cell cannot kill a sweep.
func Protect(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	fn()
	return nil
}
