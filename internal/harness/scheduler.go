package harness

// Scheduler abstracts how an expanded job list gets executed. Run,
// RunJobs and RunResume hand their jobs to Config.Scheduler (the local
// in-process worker pool when unset), invoke visit for every record in
// job order as results complete, and receive all records back indexed
// like the job list — so the local pool and a remote lease scheduler
// (LeaseScheduler, backed by `bpbench serve` workers) are
// interchangeable without the sink, aggregate or resume logic knowing
// which one ran the cells.
type Scheduler interface {
	// Schedule executes jobs under cfg, calling visit once per job in
	// job order (a reorder buffer decouples completion order from visit
	// order, so streaming starts with the first finished cell) and
	// returning every record, results[i] belonging to jobs[i]. A job
	// that fails yields a Record with Err set; Schedule never aborts
	// the batch.
	Schedule(jobs []Job, cfg Config, visit func(Record)) []Record
}

// localScheduler is the default Scheduler: the in-process pooled and
// (optionally) intra-cell-sharded executor this harness always had.
type localScheduler struct{}

func (localScheduler) Schedule(jobs []Job, cfg Config, visit func(Record)) []Record {
	return executeJobs(jobs, cfg, newRunMetrics(cfg.Metrics), visit)
}

// scheduler resolves Config.Scheduler, defaulting to the local pool.
func (c Config) scheduler() Scheduler {
	if c.Scheduler != nil {
		return c.Scheduler
	}
	return localScheduler{}
}
