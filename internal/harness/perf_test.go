package harness

import (
	"bytes"
	"strings"
	"testing"
)

// timedCell is cell() with throughput telemetry attached.
func timedCell(model, trace, scenario string, branches int, mpki, elapsed, bps float64) Record {
	r := cell(model, trace, scenario, branches, mpki)
	r.SimBranches = uint64(branches)
	r.ElapsedSec = elapsed
	r.BranchesPerSec = bps
	return r
}

// TestDiffIgnoresTimingTelemetry is the contract that makes branches/sec
// safe to store in baselines: two runs that differ only in wall-clock
// telemetry must diff clean, so timing noise can never fail a CI gate.
func TestDiffIgnoresTimingTelemetry(t *testing.T) {
	old := []Record{
		timedCell("tage", "INT01", "A", 1000, 10.0, 0.5, 2_000_000),
		timedCell("tage", "INT02", "A", 1000, 12.0, 0.25, 4_000_000),
	}
	new := []Record{
		timedCell("tage", "INT01", "A", 1000, 10.0, 5.0, 200_000), // 10x slower
		timedCell("tage", "INT02", "A", 1000, 12.0, 0, 0),         // no telemetry at all
	}
	rep := Diff(old, new, DiffOptions{})
	if rep.Cells != 2 {
		t.Fatalf("compared %d cells, want 2", rep.Cells)
	}
	if rep.HasRegressions() || len(rep.Improvements) > 0 {
		t.Fatalf("timing-only differences must not move the diff: %+v", rep)
	}
}

func TestPerfRowsFromSuiteAggregates(t *testing.T) {
	records := []Record{
		timedCell("tage", "INT01", "A", 1000, 10.0, 0.5, 2000),
		timedCell("tage", "INT02", "A", 1000, 12.0, 0.5, 2000),
		{Kind: KindSuite, Model: "tage", Scenario: "A", Branches: 1000,
			SimBranches: 2000, ElapsedSec: 1.0, BranchesPerSec: 2000, Cells: 2},
	}
	rows := PerfRows(records)
	if len(rows) != 1 {
		t.Fatalf("got %d rows, want 1: %+v", len(rows), rows)
	}
	r := rows[0]
	if r.Model != "tage" || r.Scenario != "A" || r.Cells != 2 ||
		r.SimBranches != 2000 || r.ElapsedSec != 1.0 || r.BranchesPerSec != 2000 {
		t.Fatalf("row = %+v", r)
	}
}

func TestPerfRowsFromBareCells(t *testing.T) {
	// Without aggregates (bpbench -noaggregates), cells roll up directly.
	records := []Record{
		timedCell("tage", "INT01", "A", 1000, 10.0, 0.5, 2000),
		timedCell("tage", "INT02", "A", 1000, 12.0, 1.5, 667),
		timedCell("gshare", "INT01", "A", 1000, 20.0, 0.1, 10000),
	}
	rows := PerfRows(records)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2: %+v", len(rows), rows)
	}
	if rows[0].Model != "tage" || rows[0].Cells != 2 || rows[0].SimBranches != 2000 {
		t.Fatalf("tage row = %+v", rows[0])
	}
	if got, want := rows[0].BranchesPerSec, 1000.0; got != want {
		t.Fatalf("tage branches/sec = %v, want %v (2000 branches / 2s)", got, want)
	}
	if rows[1].Model != "gshare" || rows[1].BranchesPerSec != 10000 {
		t.Fatalf("gshare row = %+v", rows[1])
	}
}

func TestRenderPerfAndFormatRate(t *testing.T) {
	var buf bytes.Buffer
	RenderPerf(&buf, []PerfRow{{
		Model: "tage", Scenario: "A", Branches: 1000, Cells: 2,
		SimBranches: 2000, ElapsedSec: 0.0004, BranchesPerSec: 5_000_000,
	}})
	out := buf.String()
	for _, want := range []string{"simulator throughput", "tage", "5.00M/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("perf table missing %q:\n%s", want, out)
		}
	}
	cases := map[float64]string{
		0:             "-",
		500:           "500/s",
		2_500:         "2.50k/s",
		6_400_000:     "6.40M/s",
		1_200_000_000: "1.20G/s",
	}
	for v, want := range cases {
		if got := FormatBranchRate(v); got != want {
			t.Fatalf("FormatBranchRate(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestMatrixExpandRejectsNegativePipelineConfig(t *testing.T) {
	m := testMatrix(t, []Model{{Name: "m", Run: nil}}, []string{"INT01"},
		nil, []int{1000})
	m.Window = -1
	if _, err := m.Expand(); err == nil {
		t.Fatal("negative Window must be rejected")
	}
	m.Window, m.ExecDelay = 0, -2
	if _, err := m.Expand(); err == nil {
		t.Fatal("negative ExecDelay must be rejected")
	}
}
