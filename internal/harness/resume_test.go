package harness

import (
	"os"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
)

// countingModel is fakeModel plus an execution counter, so tests can
// assert exactly how many simulator runs a resume performed.
func countingModel(name string, runs *atomic.Int64) Model {
	base := fakeModel(name, flat(2))
	inner := base.Run
	base.Run = func(tr *trace.Trace, opt sim.Options) sim.Result {
		runs.Add(1)
		return inner(tr, opt)
	}
	return base
}

func resumeTestMatrix(t *testing.T, models []Model) *Matrix {
	t.Helper()
	return testMatrix(t, models, []string{"INT01", "INT02", "MM05"},
		[]predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB}, []int{60})
}

func TestPlanResumePartitions(t *testing.T) {
	m := resumeTestMatrix(t, []Model{fakeModel("m", flat(1))})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 6 {
		t.Fatalf("expanded %d jobs", len(jobs))
	}

	// Empty store: everything is todo.
	plan := PlanResume(jobs, nil, Provenance{})
	if len(plan.Todo) != 6 || len(plan.Reused) != 0 || plan.PriorHasAggregates {
		t.Fatalf("empty-store plan: %d todo, %d reused", len(plan.Todo), len(plan.Reused))
	}

	// A store holding the first three cells (one failed), an unrelated
	// key, and no aggregates: the failed and missing cells are todo.
	prior := []Record{
		{Kind: KindCell, Model: "m", Trace: jobs[0].Spec.Name, Scenario: jobs[0].Scenario.Letter(), Branches: 60, Window: 24, ExecDelay: 6, MPKI: 1},
		{Kind: KindCell, Model: "m", Trace: jobs[1].Spec.Name, Scenario: jobs[1].Scenario.Letter(), Branches: 60, Err: "panic: boom"},
		{Kind: KindCell, Model: "m", Trace: jobs[2].Spec.Name, Scenario: jobs[2].Scenario.Letter(), Branches: 60, Window: 24, ExecDelay: 6, MPKI: 1},
		{Kind: KindCell, Model: "other", Trace: "INT01", Scenario: "A", Branches: 60, Window: 24, ExecDelay: 6, MPKI: 9},
	}
	plan = PlanResume(jobs, prior, Provenance{})
	if len(plan.Reused) != 2 {
		t.Fatalf("reused %d cells, want 2", len(plan.Reused))
	}
	if len(plan.Todo) != 4 {
		t.Fatalf("todo %d cells, want 4 (3 missing + 1 failed)", len(plan.Todo))
	}
	if plan.Todo[0].Key() != jobs[1].Key() {
		t.Fatalf("failed cell %s must be first todo, got %s", jobs[1].Key(), plan.Todo[0].Key())
	}
	if plan.PriorHasAggregates {
		t.Fatal("cell-only store must not report aggregates")
	}

	// Aggregates in the store are detected, and a failed record that a
	// later appended success supersedes counts as done (append-only:
	// newest record wins).
	prior = append(prior,
		Record{Kind: KindCell, Model: "m", Trace: jobs[1].Spec.Name, Scenario: jobs[1].Scenario.Letter(), Branches: 60, Window: 24, ExecDelay: 6, MPKI: 1},
		Record{Kind: KindSuite, Model: "m", Scenario: "A", Branches: 60, Cells: 3},
	)
	plan = PlanResume(jobs, prior, Provenance{})
	if len(plan.Reused) != 3 || len(plan.Todo) != 3 {
		t.Fatalf("after supersede: reused %d todo %d, want 3/3", len(plan.Reused), len(plan.Todo))
	}
	if !plan.PriorHasAggregates {
		t.Fatal("aggregate record in store not detected")
	}
}

// TestResumeContinuesInterruptedRun is the library half of the archetype
// test: run a grid, truncate its record stream mid-grid, resume, and
// assert (a) only the missing cells executed and (b) the reassembled
// store is record-identical to the uninterrupted run modulo wall-clock
// telemetry.
func TestResumeContinuesInterruptedRun(t *testing.T) {
	var fullRuns atomic.Int64
	m := resumeTestMatrix(t, []Model{countingModel("m", &fullRuns)})

	full := &collectSink{}
	if _, err := Run(m, Config{Parallelism: 2}, full); err != nil {
		t.Fatal(err)
	}
	if fullRuns.Load() != 6 {
		t.Fatalf("uninterrupted run executed %d jobs, want 6", fullRuns.Load())
	}

	// Interrupt after 4 of 6 cells: the store has no aggregates yet.
	truncated := append([]Record(nil), full.recs[:4]...)

	var resumeRuns atomic.Int64
	m2 := resumeTestMatrix(t, []Model{countingModel("m", &resumeRuns)})
	jobs, err := m2.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanResume(jobs, truncated, Provenance{})
	appended := &collectSink{}
	sum, err := RunResume(plan, Config{Parallelism: 2}, appended)
	if err != nil {
		t.Fatal(err)
	}
	if got := resumeRuns.Load(); got != 2 {
		t.Fatalf("resume executed %d jobs, want 2", got)
	}
	if sum.Jobs != 6 || sum.Skipped != 4 || sum.Failed != 0 {
		t.Fatalf("resume summary = %+v", sum)
	}

	store := append(truncated, appended.recs...)
	clearTiming := func(recs []Record) []Record {
		out := append([]Record(nil), recs...)
		for i := range out {
			out[i].ElapsedSec = 0
			out[i].BranchesPerSec = 0
		}
		return out
	}
	if !reflect.DeepEqual(clearTiming(store), clearTiming(full.recs)) {
		t.Fatalf("resumed store differs from uninterrupted run:\n%+v\nvs\n%+v", store, full.recs)
	}

	// Resuming the now-complete store must execute nothing and append
	// nothing — the no-op guarantee that makes big grids cheap to re-run.
	var noRuns atomic.Int64
	m3 := resumeTestMatrix(t, []Model{countingModel("m", &noRuns)})
	jobs3, err := m3.Expand()
	if err != nil {
		t.Fatal(err)
	}
	again := &collectSink{}
	sum, err = RunResume(PlanResume(jobs3, store, Provenance{}), Config{}, again)
	if err != nil {
		t.Fatal(err)
	}
	if noRuns.Load() != 0 {
		t.Fatalf("no-op resume executed %d jobs", noRuns.Load())
	}
	if len(again.recs) != 0 {
		t.Fatalf("no-op resume appended %d records: %+v", len(again.recs), again.recs)
	}
	if sum.Jobs != 6 || sum.Skipped != 6 {
		t.Fatalf("no-op summary = %+v", sum)
	}
	if !again.closed {
		t.Fatal("sink must be closed on a no-op resume")
	}
}

// TestResumeRerunsFailedCells: error records in the store are retried,
// and the retry's record is appended even though the old error record
// stays in the (append-only) stream.
func TestResumeRerunsFailedCells(t *testing.T) {
	blowOnce := true
	exploding := Model{Name: "m", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
		if tr.Name == "INT02" && blowOnce {
			panic("transient explosion")
		}
		return sim.Result{Trace: tr.Name, Category: tr.Category, Window: 24, ExecDelay: 6, MPKI: 1}
	}}
	m := testMatrix(t, []Model{exploding}, []string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})

	first := &collectSink{}
	sum, err := Run(m, Config{Parallelism: 1}, first)
	if err != nil || sum.Failed != 1 {
		t.Fatalf("first pass: sum=%+v err=%v", sum, err)
	}

	blowOnce = false
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanResume(jobs, first.recs, Provenance{})
	if len(plan.Todo) != 1 || plan.Todo[0].Spec.Name != "INT02" {
		t.Fatalf("plan must retry exactly the failed cell, todo=%+v", plan.Todo)
	}
	appended := &collectSink{}
	sum, err = RunResume(plan, Config{}, appended)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Failed != 0 || sum.Skipped != 1 {
		t.Fatalf("retry summary = %+v", sum)
	}
	if len(appended.recs) == 0 || appended.recs[0].Failed() {
		t.Fatalf("retry record = %+v", appended.recs)
	}
	// The merged store now resolves the key to the successful record.
	store := append(append([]Record(nil), first.recs...), appended.recs...)
	finalPlan := PlanResume(jobs, store, Provenance{})
	if len(finalPlan.Todo) != 0 {
		t.Fatalf("store still has todo after retry: %+v", finalPlan.Todo)
	}
}

// TestResumeGrownMatrix: adding cells to a completed store runs only the
// new ones and appends a fresh aggregate set (newest-wins on read).
func TestResumeGrownMatrix(t *testing.T) {
	small := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	first := &collectSink{}
	if _, err := Run(small, Config{}, first); err != nil {
		t.Fatal(err)
	}

	grown := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01", "INT02"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	jobs, err := grown.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanResume(jobs, first.recs, Provenance{})
	if !plan.PriorHasAggregates || len(plan.Todo) != 1 {
		t.Fatalf("plan = todo %d, aggs %v", len(plan.Todo), plan.PriorHasAggregates)
	}
	appended := &collectSink{}
	if _, err := RunResume(plan, Config{}, appended); err != nil {
		t.Fatal(err)
	}
	var suite *Record
	for i := range appended.recs {
		if appended.recs[i].Kind == KindSuite {
			suite = &appended.recs[i]
		}
	}
	if suite == nil || suite.Cells != 2 {
		t.Fatalf("grown resume must append a suite aggregate over all cells, got %+v", suite)
	}
}

// TestPlanResumeConfigMismatch: a stored cell simulated under a
// different pipeline configuration must never be silently reused — it
// is queued to re-run and reported as a conflict for callers to refuse.
func TestPlanResumeConfigMismatch(t *testing.T) {
	m := testMatrix(t, []Model{fakeModel("m", flat(1))}, []string{"INT01"},
		[]predictor.Scenario{predictor.ScenarioA}, []int{40})
	first := &collectSink{}
	if _, err := Run(m, Config{}, first); err != nil {
		t.Fatal(err)
	}

	m.Window = 64 // same cells, different pipeline
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanResume(jobs, first.recs, Provenance{})
	if len(plan.Reused) != 0 || len(plan.Todo) != 1 {
		t.Fatalf("mismatched config must not reuse: %d reused, %d todo", len(plan.Reused), len(plan.Todo))
	}
	if len(plan.ConfigConflicts) != 1 || !strings.Contains(plan.ConfigConflicts[0], "24/6") {
		t.Fatalf("conflicts = %v", plan.ConfigConflicts)
	}

	// Matching config (explicit values equal to the defaults) reuses.
	m.Window, m.ExecDelay = 24, 6
	jobs, err = m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	plan = PlanResume(jobs, first.recs, Provenance{})
	if len(plan.Reused) != 1 || len(plan.ConfigConflicts) != 0 {
		t.Fatalf("explicit-default config must reuse: %+v", plan)
	}
}

// TestReadStoreFileCrashTail: the reader drops an unterminated or
// unparseable final line (what kill -9 mid-write leaves) and returns
// the valid prefix length, but still rejects corruption mid-file.
func TestReadStoreFileCrashTail(t *testing.T) {
	dir := t.TempDir()
	write := func(content string) string {
		p := dir + "/store.jsonl"
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	line := `{"kind":"cell","model":"m","trace":"INT01","scenario":"A","branches":40,"mpki":1}` + "\n"

	// Unterminated tail.
	p := write(line + `{"kind":"cell","model":"m","tra`)
	recs, valid, err := ReadStoreFile(p)
	if err != nil || len(recs) != 1 || valid != int64(len(line)) {
		t.Fatalf("unterminated tail: recs=%d valid=%d err=%v", len(recs), valid, err)
	}

	// Newline-terminated but unparseable final line.
	p = write(line + "{garbage}\n")
	recs, valid, err = ReadStoreFile(p)
	if err != nil || len(recs) != 1 || valid != int64(len(line)) {
		t.Fatalf("bad final line: recs=%d valid=%d err=%v", len(recs), valid, err)
	}

	// A bad line with records after it is corruption, not a crash tail.
	if _, _, err := ReadStoreFile(write(line + "{garbage}\n" + line)); err == nil {
		t.Fatal("mid-file corruption must error")
	}

	// Clean store: everything parses, valid covers the whole file.
	recs, valid, err = ReadStoreFile(write(line + line))
	if err != nil || len(recs) != 2 || valid != int64(2*len(line)) {
		t.Fatalf("clean store: recs=%d valid=%d err=%v", len(recs), valid, err)
	}

	if _, _, err := ReadStoreFile(dir + "/absent.jsonl"); !os.IsNotExist(err) {
		t.Fatalf("missing store err = %v", err)
	}
}

func TestRunResumeSinkFailureStillCloses(t *testing.T) {
	m := resumeTestMatrix(t, []Model{fakeModel("m", flat(1))})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	sink := &failingSink{after: 1}
	_, err = RunResume(PlanResume(jobs, nil, Provenance{}), Config{Parallelism: 2}, sink)
	if err == nil || !strings.Contains(err.Error(), "sink full") {
		t.Fatalf("emit failure must surface, got %v", err)
	}
	if !sink.closed {
		t.Fatal("sink must be closed after an emit failure")
	}
}
