package harness

import (
	"io"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Metric family names the harness exports when Config.Metrics is set.
// Exported as constants so scrapers, the progress reporter, tests and
// CI smoke checks agree on one vocabulary (the sim-owned families live
// in internal/sim: sim.MetricBranchesRetired, sim.MetricPipelineFlushes).
const (
	// MetricJobsStarted counts jobs handed to a worker.
	MetricJobsStarted = "bpbench_jobs_started_total"
	// MetricJobs counts finished jobs by result: succeeded, failed, or
	// skipped (reused from a resume store instead of executed).
	MetricJobs = "bpbench_jobs_total"
	// MetricJobsInFlight gauges jobs currently executing, per worker.
	MetricJobsInFlight = "bpbench_jobs_in_flight"
	// MetricQueueWaitSeconds is the histogram of how long each job sat
	// queued between pool start and worker pick-up.
	MetricQueueWaitSeconds = "bpbench_job_queue_wait_seconds"
	// MetricJobSeconds is the histogram of per-job execution latency.
	MetricJobSeconds = "bpbench_job_seconds"
	// MetricTraceCacheHits / Misses count shared-trace-cache outcomes.
	MetricTraceCacheHits   = "bpbench_trace_cache_hits_total"
	MetricTraceCacheMisses = "bpbench_trace_cache_misses_total"
	// MetricPredictorPoolHits / Misses count predictor-pool outcomes: a
	// hit reuses a worker's warmed predictor via Reset, a miss constructs
	// one (the first cell of each model on each worker or shard).
	MetricPredictorPoolHits   = "bpbench_predictor_pool_hits_total"
	MetricPredictorPoolMisses = "bpbench_predictor_pool_misses_total"
	// MetricWarmCacheHits / Misses count checkpoint-cache outcomes when
	// Config.WarmCache is set: a hit is a cell that actually warm-started
	// from a cached blob (skipping its simulated prefix), a miss is a
	// cold start — no blob, or one the simulator refused and fell back
	// from.
	MetricWarmCacheHits   = "bpbench_warm_cache_hits_total"
	MetricWarmCacheMisses = "bpbench_warm_cache_misses_total"
	// MetricWarmCacheWriteErrors counts checkpoint blobs that failed to
	// persist (temp-file create, write or rename error): a read-only or
	// full cache directory shows up here instead of as a silent
	// all-misses perf cliff.
	MetricWarmCacheWriteErrors = "bpbench_warm_cache_write_errors_total"
	// MetricCellsTotal / MetricCellsDone gauge sweep progress: cells in
	// the expanded grid and cells completed (reused cells count as done
	// immediately). Gauges, not counters, so sequential matrices on one
	// registry accumulate a single coherent done/total pair.
	MetricCellsTotal = "bpbench_cells_total"
	MetricCellsDone  = "bpbench_cells_done"
	// MetricRecordsEmitted counts records streamed to sinks, by kind.
	MetricRecordsEmitted = "bpbench_records_emitted_total"
	// MetricBranchesPerSec is the derived aggregate simulator throughput
	// of the current run (a callback gauge re-anchored at each run start).
	MetricBranchesPerSec = "bpbench_branches_per_sec"

	// Store telemetry (the resumable JSONL result store).
	MetricStoreAppends       = "bpbench_store_appends_total"
	MetricStoreAppendBytes   = "bpbench_store_append_bytes"
	MetricStoreAppendSeconds = "bpbench_store_append_seconds"
	MetricStoreCrashTails    = "bpbench_store_crash_tails_total"
	MetricStoreReused        = "bpbench_store_resume_reused_total"

	// Lease telemetry (the distributed sweep service). The counters are
	// labelled by worker id, so one coordinator /metrics scrape shows
	// per-worker grant/renew/complete/expire activity and delivered
	// record counts across the whole farm.
	MetricLeasesGranted    = "bpbench_leases_granted_total"
	MetricLeasesCompleted  = "bpbench_leases_completed_total"
	MetricLeasesExpired    = "bpbench_leases_expired_total"
	MetricLeaseRenewals    = "bpbench_lease_renewals_total"
	MetricWorkerRecords    = "bpbench_worker_records_total"
	MetricLeaseJobsPending = "bpbench_lease_jobs_pending"
	MetricLeaseJobsLeased  = "bpbench_lease_jobs_leased"
	// MetricSweepSubmissions counts /v1/sweep submissions accepted by a
	// `bpbench serve` coordinator.
	MetricSweepSubmissions = "bpbench_sweep_submissions_total"
)

// runMetrics resolves the harness's metric handles once per run, so the
// worker loop touches pre-resolved atomics instead of the registry. A
// nil *runMetrics (telemetry off) is checked once per job, keeping the
// uninstrumented path identical to the pre-telemetry harness.
type runMetrics struct {
	reg           *metrics.Registry
	started       *metrics.Counter
	jobs          *metrics.CounterVec
	inFlight      *metrics.GaugeVec
	queueWait     *metrics.Histogram
	jobTime       *metrics.Histogram
	cacheHits     *metrics.Counter
	cacheMisses   *metrics.Counter
	poolHits      *metrics.Counter
	poolMisses    *metrics.Counter
	warmHits      *metrics.Counter
	warmMisses    *metrics.Counter
	warmWriteErrs *metrics.Counter
	cellsTotal    *metrics.Gauge
	cellsDone     *metrics.Gauge
	records       *metrics.CounterVec
	poolStart     time.Time
}

func newRunMetrics(reg *metrics.Registry) *runMetrics {
	if reg == nil {
		return nil
	}
	return &runMetrics{
		reg:           reg,
		started:       reg.Counter(MetricJobsStarted, "Jobs handed to a worker."),
		jobs:          reg.CounterVec(MetricJobs, "Jobs finished, by result (succeeded, failed, skipped).", "result"),
		inFlight:      reg.GaugeVec(MetricJobsInFlight, "Jobs currently executing, per worker.", "worker"),
		queueWait:     reg.Histogram(MetricQueueWaitSeconds, "Seconds a job waited between pool start and worker pick-up.", metrics.ExpBuckets(0.0005, 4, 10)),
		jobTime:       reg.Histogram(MetricJobSeconds, "Per-job execution latency in seconds.", metrics.ExpBuckets(0.001, 4, 10)),
		cacheHits:     reg.Counter(MetricTraceCacheHits, "Trace-cache lookups served by an existing entry."),
		cacheMisses:   reg.Counter(MetricTraceCacheMisses, "Trace-cache lookups that generated the trace."),
		poolHits:      reg.Counter(MetricPredictorPoolHits, "Predictor-pool lookups served by a warmed instance (Reset reuse)."),
		poolMisses:    reg.Counter(MetricPredictorPoolMisses, "Predictor-pool lookups that constructed a predictor."),
		warmHits:      reg.Counter(MetricWarmCacheHits, "Cells warm-started from a cached checkpoint blob."),
		warmMisses:    reg.Counter(MetricWarmCacheMisses, "Cells cold-started: no cached blob, or an unusable one."),
		warmWriteErrs: reg.Counter(MetricWarmCacheWriteErrors, "Checkpoint blobs that failed to persist (create/write/rename error)."),
		cellsTotal:    reg.Gauge(MetricCellsTotal, "Cells in the expanded sweep grid."),
		cellsDone:     reg.Gauge(MetricCellsDone, "Cells completed (reused cells count immediately)."),
		records:       reg.CounterVec(MetricRecordsEmitted, "Records streamed to sinks, by kind.", "kind"),
	}
}

// beginRun anchors a run on the registry: progress gauges for the
// grid's size (reused cells are done before anything executes) and the
// branches/sec callback gauge, computed over branches retired since
// this run started — so /metrics and the progress line share exactly
// one source of truth. Nil-safe.
func (rm *runMetrics) beginRun(totalCells, reusedCells int) {
	if rm == nil {
		return
	}
	rm.cellsTotal.Add(float64(totalCells))
	if reusedCells > 0 {
		rm.cellsDone.Add(float64(reusedCells))
		rm.jobs.With("skipped").Add(uint64(reusedCells))
	}
	retired := rm.reg.Counter(sim.MetricBranchesRetired, sim.HelpBranchesRetired)
	base := retired.Value()
	start := time.Now()
	rm.reg.GaugeFunc(MetricBranchesPerSec, "Aggregate simulator throughput of the current run (branches/sec).", func() float64 {
		secs := time.Since(start).Seconds()
		if secs <= 0 {
			return 0
		}
		return float64(retired.Value()-base) / secs
	})
}

// recordEmitted accounts one record streamed to a sink. Nil-safe.
func (rm *runMetrics) recordEmitted(r Record) {
	if rm == nil {
		return
	}
	kind := r.Kind
	if kind == "" {
		kind = KindCell
	}
	rm.records.With(kind).Inc()
}

// jobBegin accounts a job's pick-up by worker w and returns the
// completion hook. Nil-safe: off, it returns a no-op without touching
// the clock.
func (rm *runMetrics) jobBegin(w int) func(failed bool) {
	if rm == nil {
		return func(bool) {}
	}
	pickup := time.Now()
	rm.queueWait.Observe(pickup.Sub(rm.poolStart).Seconds())
	rm.started.Inc()
	inFlight := rm.inFlight.With(strconv.Itoa(w))
	inFlight.Inc()
	return func(failed bool) {
		inFlight.Dec()
		rm.jobTime.Observe(time.Since(pickup).Seconds())
		if failed {
			rm.jobs.With("failed").Inc()
		} else {
			rm.jobs.With("succeeded").Inc()
		}
		rm.cellsDone.Inc()
	}
}

// storeMetrics instruments the resumable result store: appended lines,
// append sizes and latencies, truncated crash tails, and cells reused
// by resume planning. Nil when telemetry is off.
type storeMetrics struct {
	appends    *metrics.Counter
	bytes      *metrics.Histogram
	seconds    *metrics.Histogram
	crashTails *metrics.Counter
	reused     *metrics.Counter
}

func newStoreMetrics(reg *metrics.Registry) *storeMetrics {
	if reg == nil {
		return nil
	}
	return &storeMetrics{
		appends:    reg.Counter(MetricStoreAppends, "Records appended to the result store."),
		bytes:      reg.Histogram(MetricStoreAppendBytes, "Size in bytes of each store append.", metrics.ExpBuckets(64, 4, 8)),
		seconds:    reg.Histogram(MetricStoreAppendSeconds, "Latency in seconds of each store append.", metrics.ExpBuckets(0.00001, 4, 8)),
		crashTails: reg.Counter(MetricStoreCrashTails, "Torn final lines truncated from the store before appending."),
		reused:     reg.Counter(MetricStoreReused, "Cells reused from the store instead of re-run."),
	}
}

// meter wraps the store writer so every append (one Write per JSONL
// record) is counted and sized. Off, the writer passes through
// untouched.
func (sm *storeMetrics) meter(w io.Writer) io.Writer {
	if sm == nil {
		return w
	}
	return &meteredWriter{w: w, sm: sm}
}

type meteredWriter struct {
	w  io.Writer
	sm *storeMetrics
}

func (m *meteredWriter) Write(p []byte) (int, error) {
	start := time.Now()
	n, err := m.w.Write(p)
	m.sm.appends.Inc()
	m.sm.bytes.Observe(float64(n))
	m.sm.seconds.Observe(time.Since(start).Seconds())
	return n, err
}
