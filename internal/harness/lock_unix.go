//go:build unix

package harness

import (
	"errors"
	"fmt"
	"os"
	"syscall"
)

// lockStore takes an exclusive advisory flock on the open store file so
// two concurrent resumes cannot interleave appends into one stream; the
// second opener fails fast with a clear message instead of corrupting
// the store. The lock is released by unlock and — because flock is
// scoped to the open file description — by process exit no matter how
// the process dies, so a kill -9 mid-append never leaves a stale lock.
func lockStore(f *os.File, path string) (unlock func(), err error) {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EAGAIN) {
			return nil, fmt.Errorf("harness: store %s is locked by another process (a concurrent resume is appending to it); wait for it to finish or use a separate store", path)
		}
		return nil, fmt.Errorf("harness: locking store %s: %w", path, err)
	}
	return func() { syscall.Flock(int(f.Fd()), syscall.LOCK_UN) }, nil
}

// pidAlive probes a PID with the null signal: kill(pid, 0) delivers
// nothing but performs the existence and permission checks. ESRCH
// means the process is gone; EPERM means it exists but belongs to
// someone else (alive); anything unexpected counts as alive so a lock
// is never reclaimed on an ambiguous answer.
func pidAlive(pid int) bool {
	err := syscall.Kill(pid, 0)
	if err == nil {
		return true
	}
	return !errors.Is(err, syscall.ESRCH)
}
