package harness

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/predictor"
)

// leaseJobs expands a small fake-model grid for queue-level tests.
func leaseJobs(t *testing.T, models ...string) []Job {
	t.Helper()
	ms := make([]Model, len(models))
	for i, m := range models {
		ms[i] = fakeModel(m, flat(float64(i+1)))
	}
	m := testMatrix(t, ms, []string{"INT01", "INT02"}, []predictor.Scenario{predictor.ScenarioA}, []int{100})
	jobs, err := m.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return jobs
}

// fakeWorkerRecord fabricates the record a worker would post for a wire
// job, without running anything.
func fakeWorkerRecord(w WireJob) Record {
	return Record{
		Kind: KindCell, Model: w.Model, Spec: w.Spec, Trace: w.Trace,
		Scenario: w.Scenario, Branches: w.Branches, Seed: w.Seed,
		MPKI: 1, MPPKI: 20,
	}
}

// drainQueue acquires and completes leases with fabricated records
// until the queue runs dry, like a perfectly healthy worker.
func drainQueue(t *testing.T, q *LeaseQueue, worker string) {
	t.Helper()
	for {
		lease := q.Acquire(worker, 2*time.Second)
		if lease == nil {
			return
		}
		recs := make([]Record, len(lease.Jobs))
		for i, wj := range lease.Jobs {
			recs[i] = fakeWorkerRecord(wj)
		}
		if err := q.Complete(lease.ID, recs); err != nil {
			t.Errorf("Complete(%s): %v", lease.ID, err)
			return
		}
	}
}

func TestLeaseSchedulerDeliversInJobOrder(t *testing.T) {
	reg := metrics.NewRegistry()
	q := NewLeaseQueue(time.Minute, 3, reg)
	jobs := leaseJobs(t, "m1", "m2")
	prov := &Provenance{GitSHA: "abc1234", Schema: SchemaVersion}

	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		drainQueue(t, q, "w1")
	}()

	s := &LeaseScheduler{Queue: q}
	var visited []string
	recs := s.Schedule(jobs, Config{Provenance: prov, Metrics: reg}, func(r Record) {
		visited = append(visited, r.Key())
	})
	<-workerDone

	if len(recs) != len(jobs) {
		t.Fatalf("got %d records, want %d", len(recs), len(jobs))
	}
	for i, j := range jobs {
		if recs[i].Key() != j.Key() {
			t.Fatalf("recs[%d] = %s, want %s (delivery order broken)", i, recs[i].Key(), j.Key())
		}
		if visited[i] != j.Key() {
			t.Fatalf("visit order: visited[%d] = %s, want %s", i, visited[i], j.Key())
		}
		if recs[i].Provenance != prov {
			t.Fatalf("recs[%d] not stamped with the coordinator's provenance", i)
		}
		if recs[i].Failed() {
			t.Fatalf("recs[%d] failed: %s", i, recs[i].Err)
		}
	}
	if got := reg.CounterVec(MetricLeasesGranted, "", "worker").With("w1").Value(); got == 0 {
		t.Fatal("no leases accounted to w1")
	}
	if got := reg.CounterVec(MetricWorkerRecords, "", "worker").With("w1").Value(); got != uint64(len(jobs)) {
		t.Fatalf("worker records counter = %d, want %d", got, len(jobs))
	}
}

func TestLeaseExpiryRequeuesAndRejectsLateCompletion(t *testing.T) {
	q := NewLeaseQueue(50*time.Millisecond, 2, nil)
	jobs := leaseJobs(t, "m1") // 2 cells
	items := make([]*queuedJob, len(jobs))
	for i, j := range jobs {
		w := wireJob(j)
		items[i] = &queuedJob{idx: i, wire: w, key: w.Key(), deliver: func(Record) {}}
	}
	q.enqueue(items)

	// A doomed worker takes the lease and dies without completing.
	doomed := q.Acquire("dead", time.Second)
	if doomed == nil || len(doomed.Jobs) != 2 {
		t.Fatalf("doomed lease = %+v", doomed)
	}
	if q.Acquire("idle", 10*time.Millisecond) != nil {
		t.Fatal("cells leased twice before expiry")
	}
	time.Sleep(80 * time.Millisecond) // TTL passes with no renewal

	// The cells come back and a healthy worker gets them.
	release := q.Acquire("healthy", time.Second)
	if release == nil {
		t.Fatal("expired lease's cells were not requeued")
	}
	if len(release.Jobs) != 2 {
		t.Fatalf("requeued lease has %d cells, want 2", len(release.Jobs))
	}
	for i := range release.Jobs {
		if release.Jobs[i].Key() != doomed.Jobs[i].Key() {
			t.Fatalf("requeued cell %d = %s, want %s", i, release.Jobs[i].Key(), doomed.Jobs[i].Key())
		}
	}

	// The doomed worker's late completion must be rejected, not
	// double-delivered.
	recs := make([]Record, len(doomed.Jobs))
	for i, wj := range doomed.Jobs {
		recs[i] = fakeWorkerRecord(wj)
	}
	if err := q.Complete(doomed.ID, recs); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("late Complete = %v, want ErrLeaseGone", err)
	}
	if err := q.Renew(doomed.ID); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("late Renew = %v, want ErrLeaseGone", err)
	}

	// The healthy worker's completion still lands.
	recs = recs[:0]
	for _, wj := range release.Jobs {
		recs = append(recs, fakeWorkerRecord(wj))
	}
	if err := q.Complete(release.ID, recs); err != nil {
		t.Fatalf("healthy Complete: %v", err)
	}
}

func TestLeaseRenewKeepsLeaseAlive(t *testing.T) {
	q := NewLeaseQueue(60*time.Millisecond, 4, nil)
	jobs := leaseJobs(t, "m1")
	items := make([]*queuedJob, len(jobs))
	for i, j := range jobs {
		w := wireJob(j)
		items[i] = &queuedJob{idx: i, wire: w, key: w.Key(), deliver: func(Record) {}}
	}
	q.enqueue(items)

	lease := q.Acquire("w", time.Second)
	if lease == nil {
		t.Fatal("no lease")
	}
	// Renew through three TTL windows; the cells must never requeue.
	for i := 0; i < 6; i++ {
		time.Sleep(20 * time.Millisecond)
		if err := q.Renew(lease.ID); err != nil {
			t.Fatalf("renew %d: %v", i, err)
		}
	}
	if other := q.Acquire("thief", 10*time.Millisecond); other != nil {
		t.Fatalf("renewed lease's cells were stolen: %+v", other)
	}
	recs := make([]Record, len(lease.Jobs))
	for i, wj := range lease.Jobs {
		recs[i] = fakeWorkerRecord(wj)
	}
	if err := q.Complete(lease.ID, recs); err != nil {
		t.Fatalf("Complete after renewals: %v", err)
	}
}

func TestLeaseCompleteMissingCellsRequeued(t *testing.T) {
	q := NewLeaseQueue(time.Minute, 4, nil)
	jobs := leaseJobs(t, "m1") // INT01, INT02
	delivered := make(map[string]int)
	items := make([]*queuedJob, len(jobs))
	for i, j := range jobs {
		w := wireJob(j)
		key := w.Key()
		items[i] = &queuedJob{idx: i, wire: w, key: key, deliver: func(Record) { delivered[key]++ }}
	}
	q.enqueue(items)

	lease := q.Acquire("w", time.Second)
	if lease == nil || len(lease.Jobs) != 2 {
		t.Fatalf("lease = %+v", lease)
	}
	// Post only the first cell's record.
	err := q.Complete(lease.ID, []Record{fakeWorkerRecord(lease.Jobs[0])})
	if err == nil || !strings.Contains(err.Error(), "missing 1 of 2") {
		t.Fatalf("partial Complete = %v, want missing-cells error", err)
	}
	if delivered[lease.Jobs[0].Key()] != 1 {
		t.Fatal("present cell was not delivered")
	}

	// The missing cell is immediately re-leasable.
	again := q.Acquire("w2", time.Second)
	if again == nil || len(again.Jobs) != 1 || again.Jobs[0].Key() != lease.Jobs[1].Key() {
		t.Fatalf("requeued lease = %+v, want just %s", again, lease.Jobs[1].Key())
	}
	if err := q.Complete(again.ID, []Record{fakeWorkerRecord(again.Jobs[0])}); err != nil {
		t.Fatalf("Complete retry: %v", err)
	}
	for k, n := range delivered {
		if n != 1 {
			t.Fatalf("cell %s delivered %d times", k, n)
		}
	}
}

func TestLeaseSchedulerAbortFailsUndeliveredCells(t *testing.T) {
	q := NewLeaseQueue(time.Minute, 4, nil)
	jobs := leaseJobs(t, "m1")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // no worker will ever come

	s := &LeaseScheduler{Queue: q, Ctx: ctx}
	recs := s.Schedule(jobs, Config{}, func(Record) {})
	if len(recs) != len(jobs) {
		t.Fatalf("got %d records, want %d", len(recs), len(jobs))
	}
	for i, r := range recs {
		if !r.Failed() {
			t.Fatalf("recs[%d] should have failed (submission cancelled), got %+v", i, r)
		}
		if r.Key() != jobs[i].Key() {
			t.Fatalf("recs[%d] = %s, want %s", i, r.Key(), jobs[i].Key())
		}
	}
	// The queue must not still be holding the abandoned cells.
	if l := q.Acquire("w", 10*time.Millisecond); l != nil {
		t.Fatalf("abandoned cells still leasable: %+v", l)
	}
}

func TestWireJobRoundTrip(t *testing.T) {
	jobs := leaseJobs(t, "m1")
	j := jobs[0]
	w := wireJob(j)
	if w.Key() != j.Key() {
		t.Fatalf("wire key %s != job key %s", w.Key(), j.Key())
	}
	back, err := w.Job(func(spec string) (Model, error) {
		return fakeModel(spec, flat(1)), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if back.Key() != j.Key() || back.Seed != j.Seed || back.Index != j.Index {
		t.Fatalf("round trip: got (%s seed=%d idx=%d), want (%s seed=%d idx=%d)",
			back.Key(), back.Seed, back.Index, j.Key(), j.Seed, j.Index)
	}
	if back.Opts.Window != j.Opts.Window || back.Opts.ExecDelay != j.Opts.ExecDelay {
		t.Fatal("pipeline options lost in round trip")
	}

	// Unknown traces fail to a deliverable record, not silence.
	w.Trace = "NOPE99"
	if _, err := w.Job(func(string) (Model, error) { return Model{}, nil }); err == nil {
		t.Fatal("unknown trace did not error")
	}
	rec := wireFailedRecord(w, errors.New("boom"))
	if rec.Key() != w.Key() || !rec.Failed() {
		t.Fatalf("wireFailedRecord key %s / failed %v", rec.Key(), rec.Failed())
	}
}
