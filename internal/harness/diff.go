package harness

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// DiffOptions tunes regression detection. The zero value gets the
// documented defaults; pass a negative value to demand exact matching
// (a strict zero tolerance or floor).
type DiffOptions struct {
	// Tolerance is the relative MPKI increase treated as noise
	// (default 0.02 = 2%; negative means exactly zero).
	Tolerance float64
	// AbsFloor is an absolute MPKI delta below which a cell never counts
	// as a regression or improvement, guarding near-zero baselines
	// against relative-noise blowups (default 0.005 MPKI; negative means
	// exactly zero).
	AbsFloor float64
}

func (o DiffOptions) withDefaults() DiffOptions {
	switch {
	case o.Tolerance == 0:
		o.Tolerance = 0.02
	case o.Tolerance < 0:
		o.Tolerance = 0
	}
	switch {
	case o.AbsFloor == 0:
		o.AbsFloor = 0.005
	case o.AbsFloor < 0:
		o.AbsFloor = 0
	}
	return o
}

// DiffCell is one compared record pair.
type DiffCell struct {
	Key      string
	Old, New float64 // MPKI
	// Delta is New-Old; RelDelta is Delta/Old (0 when Old is 0).
	Delta    float64
	RelDelta float64
	// OldProv and NewProv are the short provenance renderings of the two
	// records ("unknown" for records that predate provenance stamping),
	// shown as a column when the report has ShowProvenance set.
	OldProv, NewProv string
}

// DiffReport summarises a baseline comparison. Regressions and
// Improvements cover cell records only (they drive the exit status);
// Aggregates reports suite/hard/category deltas informationally.
type DiffReport struct {
	Cells        int
	Regressions  []DiffCell
	Improvements []DiffCell
	Aggregates   []DiffCell
	// MissingInNew / MissingInOld list cell keys present on only one
	// side (matrix shape changed, or a side had failed cells).
	MissingInNew []string
	MissingInOld []string
	// ConfigMismatches lists compared cells whose pipeline configuration
	// (window, exec delay) differs between the sides: their MPKI deltas
	// measure the pipeline change, not the predictor.
	ConfigMismatches []string
	// FailedOld / FailedNew count error records per side.
	FailedOld, FailedNew int
	// OldProvenance / NewProvenance list the distinct provenance blocks
	// of each side, in first-appearance order (see StoreProvenance).
	OldProvenance, NewProvenance []Provenance
	// ShowProvenance makes Render print the provenance summary line and
	// a per-cell provenance column. It never affects the comparison
	// itself: provenance, like timing, cannot regress a diff.
	ShowProvenance bool
}

// HasRegressions reports whether the new run is worse than the
// baseline: a cell's MPKI regressed beyond tolerance, a baseline cell
// is missing from the new run (coverage shrank — CI must not pass on a
// sweep that silently stopped measuring cells), or cells newly fail.
// Cells only the new run has (coverage grew) are fine.
func (d *DiffReport) HasRegressions() bool {
	return len(d.Regressions) > 0 || len(d.MissingInNew) > 0 || d.FailedNew > d.FailedOld
}

// ReadRecords parses a JSONL record stream (as produced by the jsonl
// sink) and returns all records in file order.
func ReadRecords(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("harness: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadRecordsFile reads a JSONL baseline from disk.
func ReadRecordsFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

func indexRecords(recs []Record) (cells, aggs map[string]Record, failed int) {
	cells = make(map[string]Record)
	aggs = make(map[string]Record)
	for _, r := range recs {
		if r.Failed() {
			failed++
			continue
		}
		switch r.Kind {
		case KindCell, "":
			cells[r.Key()] = r
		default:
			aggs[r.Key()] = r
		}
	}
	return cells, aggs, failed
}

// Diff compares two record sets (typically: a checked-in baseline JSONL
// and a fresh run) cell by cell on MPKI. A cell regresses when its MPKI
// rises by more than max(AbsFloor, Tolerance×old); improvements are the
// symmetric case. Lists are sorted by descending |relative delta| so the
// worst movement leads the report.
func Diff(old, new []Record, opt DiffOptions) *DiffReport {
	opt = opt.withDefaults()
	oldCells, oldAggs, failedOld := indexRecords(old)
	newCells, newAggs, failedNew := indexRecords(new)
	rep := &DiffReport{
		FailedOld:     failedOld,
		FailedNew:     failedNew,
		OldProvenance: StoreProvenance(old),
		NewProvenance: StoreProvenance(new),
	}

	keys := make([]string, 0, len(oldCells))
	for k := range oldCells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		o := oldCells[k]
		n, ok := newCells[k]
		if !ok {
			rep.MissingInNew = append(rep.MissingInNew, k)
			continue
		}
		rep.Cells++
		if o.Window != n.Window || o.ExecDelay != n.ExecDelay {
			rep.ConfigMismatches = append(rep.ConfigMismatches, fmt.Sprintf(
				"%s: window/execdelay %d/%d vs %d/%d",
				k, o.Window, o.ExecDelay, n.Window, n.ExecDelay))
		}
		c := compare(k, o, n)
		threshold := opt.Tolerance * o.MPKI
		if threshold < opt.AbsFloor {
			threshold = opt.AbsFloor
		}
		switch {
		case c.Delta > threshold:
			rep.Regressions = append(rep.Regressions, c)
		case -c.Delta > threshold:
			rep.Improvements = append(rep.Improvements, c)
		}
	}
	newKeys := make([]string, 0, len(newCells))
	for k := range newCells {
		newKeys = append(newKeys, k)
	}
	sort.Strings(newKeys)
	for _, k := range newKeys {
		if _, ok := oldCells[k]; !ok {
			rep.MissingInOld = append(rep.MissingInOld, k)
		}
	}

	aggKeys := make([]string, 0, len(oldAggs))
	for k := range oldAggs {
		aggKeys = append(aggKeys, k)
	}
	sort.Strings(aggKeys)
	for _, k := range aggKeys {
		if n, ok := newAggs[k]; ok {
			rep.Aggregates = append(rep.Aggregates, compare(k, oldAggs[k], n))
		}
	}

	byMagnitude := func(cs []DiffCell) {
		sort.SliceStable(cs, func(a, b int) bool {
			da, db := cs[a].RelDelta, cs[b].RelDelta
			if da < 0 {
				da = -da
			}
			if db < 0 {
				db = -db
			}
			return da > db
		})
	}
	byMagnitude(rep.Regressions)
	byMagnitude(rep.Improvements)
	return rep
}

func compare(key string, old, new Record) DiffCell {
	c := DiffCell{Key: key, Old: old.MPKI, New: new.MPKI, Delta: new.MPKI - old.MPKI}
	if old.MPKI != 0 {
		c.RelDelta = c.Delta / old.MPKI
	}
	c.OldProv, c.NewProv = provShort(old), provShort(new)
	return c
}

func provShort(r Record) string {
	if r.Provenance == nil {
		return Provenance{}.Short()
	}
	return r.Provenance.Short()
}

// Render writes the human-readable diff report. With ShowProvenance set
// it adds a store-level provenance summary and a per-cell provenance
// column, so a reviewer can tell at a glance whether a movement compares
// like against like or spans revisions.
func (d *DiffReport) Render(w io.Writer) {
	fmt.Fprintf(w, "compared %d cells: %d regressions, %d improvements\n",
		d.Cells, len(d.Regressions), len(d.Improvements))
	if d.ShowProvenance {
		fmt.Fprintf(w, "provenance: baseline=%s new=%s\n",
			describeProvenance(d.OldProvenance), describeProvenance(d.NewProvenance))
	}
	provCol := func(c DiffCell) string {
		if !d.ShowProvenance {
			return ""
		}
		if c.OldProv == c.NewProv {
			return fmt.Sprintf("  [%s]", c.NewProv)
		}
		return fmt.Sprintf("  [%s -> %s]", c.OldProv, c.NewProv)
	}
	printCells := func(title string, cs []DiffCell) {
		if len(cs) == 0 {
			return
		}
		fmt.Fprintf(w, "%s:\n", title)
		for _, c := range cs {
			fmt.Fprintf(w, "  %-40s MPKI %8.4f -> %8.4f (%+.4f, %+.1f%%)%s\n",
				c.Key, c.Old, c.New, c.Delta, 100*c.RelDelta, provCol(c))
		}
	}
	printCells("REGRESSIONS", d.Regressions)
	printCells("improvements", d.Improvements)
	if len(d.Aggregates) > 0 {
		fmt.Fprintln(w, "aggregates:")
		for _, c := range d.Aggregates {
			fmt.Fprintf(w, "  %-40s MPKI %8.4f -> %8.4f (%+.1f%%)\n",
				c.Key, c.Old, c.New, 100*c.RelDelta)
		}
	}
	for _, m := range d.ConfigMismatches {
		fmt.Fprintf(w, "  WARNING pipeline config differs: %s\n", m)
	}
	for _, k := range d.MissingInNew {
		fmt.Fprintf(w, "  missing in new run: %s\n", k)
	}
	for _, k := range d.MissingInOld {
		fmt.Fprintf(w, "  not in baseline:    %s\n", k)
	}
	if d.FailedOld > 0 || d.FailedNew > 0 {
		fmt.Fprintf(w, "failed cells: baseline=%d new=%d\n", d.FailedOld, d.FailedNew)
	}
}
