package trace

import (
	"strings"
	"testing"
)

func TestConvertCBP(t *testing.T) {
	in := `# comment
400100 T
400100 N
0x400200 1

400300 0
`
	tr, st, err := ConvertCBP(strings.NewReader(in), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 4 || st.Conditional != 4 {
		t.Fatalf("stats %+v", st)
	}
	if tr.Name != "sample" || tr.Category != "EXT" {
		t.Fatalf("identity %q/%q", tr.Name, tr.Category)
	}
	want := []struct {
		pc    uint64
		taken bool
	}{
		{0x400100, true}, {0x400100, false}, {0x400200, true}, {0x400300, false},
	}
	for i, w := range want {
		b := tr.Branches[i]
		if b.PC != w.pc || b.Taken != w.taken {
			t.Fatalf("branch %d: %+v, want %+v", i, b, w)
		}
		if b.OpsBefore != synthOps(w.pc) {
			t.Fatalf("branch %d: OpsBefore %d not synthesised", i, b.OpsBefore)
		}
	}
}

func TestConvertCBPErrors(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"400100 T X", "line 1"},
		{"400100 T\nzzzz T", "line 2: bad pc"},
		{"400100 Q", "bad direction"},
	}
	for _, c := range cases {
		_, _, err := ConvertCBP(strings.NewReader(c.in), "x")
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: error %v does not mention %q", c.in, err, c.want)
		}
	}
}

func TestConvertChampSim(t *testing.T) {
	in := `4198400 B T
4198404 C T
4198408 R N
0x400300 B 0
4198412 J T
4198416 X T
`
	tr, st, err := ConvertChampSim(strings.NewReader(in), "cs")
	if err != nil {
		t.Fatal(err)
	}
	if st.Lines != 6 || st.Conditional != 2 || st.Calls != 1 || st.Returns != 1 || st.Jumps != 1 || st.Other != 1 {
		t.Fatalf("stats %+v", st)
	}
	if tr.Branches[0].PC != 4198400 || !tr.Branches[0].Taken {
		t.Fatalf("branch 0: %+v", tr.Branches[0])
	}
	// 0x prefix overrides the decimal default base.
	if tr.Branches[1].PC != 0x400300 || tr.Branches[1].Taken {
		t.Fatalf("branch 1: %+v", tr.Branches[1])
	}
}

func TestConvertDispatch(t *testing.T) {
	if _, _, err := Convert(strings.NewReader(""), "elf", "x"); err == nil || !strings.Contains(err.Error(), "cbp") {
		t.Fatalf("unknown format error should list formats: %v", err)
	}
	if _, _, err := Convert(strings.NewReader("400100 T"), "cbp", "x"); err != nil {
		t.Fatal(err)
	}
}

// TestSummarizeMixFields: the branch-mix additions — footprint
// concentration and direction-transition entropy — behave at the
// extremes.
func TestSummarizeMixFields(t *testing.T) {
	// All-taken single PC: top-10 covers everything, zero entropy.
	mono := &Trace{Name: "mono"}
	for i := 0; i < 100; i++ {
		mono.Branches = append(mono.Branches, Branch{PC: 0x400000, Taken: true, OpsBefore: 3})
	}
	st := Summarize(mono)
	if st.Top10Coverage != 1 {
		t.Fatalf("Top10Coverage = %v", st.Top10Coverage)
	}
	if st.TransitionEntropy != 0 {
		t.Fatalf("TransitionEntropy = %v, want 0 for a constant stream", st.TransitionEntropy)
	}

	// Strict alternation is perfectly predictable from the previous
	// direction: entropy 0 again.
	alt := &Trace{Name: "alt"}
	for i := 0; i < 100; i++ {
		alt.Branches = append(alt.Branches, Branch{PC: 0x400000, Taken: i%2 == 0, OpsBefore: 3})
	}
	if e := Summarize(alt).TransitionEntropy; e != 0 {
		t.Fatalf("alternating entropy = %v, want 0", e)
	}

	// T T N N T T N N ... : the next direction is a coin flip given the
	// current one — a full bit of conditional entropy.
	pair := &Trace{Name: "pair"}
	for i := 0; i < 400; i++ {
		pair.Branches = append(pair.Branches, Branch{PC: 0x400000, Taken: i%4 < 2, OpsBefore: 3})
	}
	if e := Summarize(pair).TransitionEntropy; e < 0.95 || e > 1.0 {
		t.Fatalf("paired entropy = %v, want ~1 bit", e)
	}

	// 11 equally-hot PCs: top 10 cover 10/11 of the stream.
	wide := &Trace{Name: "wide"}
	for i := 0; i < 110; i++ {
		wide.Branches = append(wide.Branches, Branch{PC: 0x400000 + uint64(i%11)*16, Taken: true, OpsBefore: 3})
	}
	if c := Summarize(wide).Top10Coverage; c < 0.90 || c > 0.92 {
		t.Fatalf("Top10Coverage = %v, want 10/11", c)
	}
}
