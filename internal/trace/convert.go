package trace

// External-trace ingestion: parsers for the common text trace formats
// so real program traces run through the same matrix as the synthetic
// suite. Converted traces carry only the conditional branches (the
// simulator models conditional direction prediction); calls, returns
// and jumps are counted for the conversion report but not emitted.
// OpsBefore is synthesised per-PC the same way the generator does, so
// MPKI denominators are comparable across synthetic and external
// traces.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bitutil"
)

// ConvertStats reports what a conversion consumed and what it kept.
type ConvertStats struct {
	Lines       int // non-blank, non-comment input lines
	Conditional int // conditional branches emitted
	Calls       int // call records skipped
	Returns     int // return records skipped
	Jumps       int // unconditional jump records skipped
	Other       int // unrecognised-type records skipped
}

// ConvertFormats lists the supported external formats.
func ConvertFormats() []string { return []string{"cbp", "champsim"} }

// Convert parses an external text trace in the given format and
// returns it as a Trace named name (category "EXT").
func Convert(r io.Reader, format, name string) (*Trace, ConvertStats, error) {
	switch format {
	case "cbp":
		return ConvertCBP(r, name)
	case "champsim":
		return ConvertChampSim(r, name)
	default:
		return nil, ConvertStats{}, fmt.Errorf("trace: unknown convert format %q (formats: %s)",
			format, strings.Join(ConvertFormats(), ", "))
	}
}

// synthOps synthesises a per-PC µop count matching the synthetic
// generator's distribution, so external traces get comparable
// per-kilo-instruction denominators.
func synthOps(pc uint64) uint8 { return uint8(2 + bitutil.Mix64(pc)%6) }

// ConvertCBP parses the CBP-style text format: one conditional branch
// per line as `<pc> <T|N|1|0>`, PC in hex (with or without 0x). Blank
// lines and lines starting with '#' are skipped.
func ConvertCBP(r io.Reader, name string) (*Trace, ConvertStats, error) {
	t := &Trace{Name: name, Category: "EXT"}
	var st ConvertStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st.Lines++
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, st, fmt.Errorf("trace: cbp line %d: want '<pc> <T|N>', got %q", lineNo, line)
		}
		pc, err := parsePC(fields[0], 16)
		if err != nil {
			return nil, st, fmt.Errorf("trace: cbp line %d: bad pc %q: %w", lineNo, fields[0], err)
		}
		taken, err := parseDir(fields[1])
		if err != nil {
			return nil, st, fmt.Errorf("trace: cbp line %d: %w", lineNo, err)
		}
		st.Conditional++
		t.Branches = append(t.Branches, Branch{PC: pc, Taken: taken, OpsBefore: synthOps(pc)})
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("trace: cbp line %d: %w", lineNo, err)
	}
	return t, st, nil
}

// ConvertChampSim parses the ChampSim-style text format: one branch
// per line as `<pc> <type> <taken>`, where type is B (conditional,
// kept), C (call), R (return), J (jump) — non-conditional records are
// counted and skipped. PC is decimal or 0x-hex; taken is T/N/1/0.
func ConvertChampSim(r io.Reader, name string) (*Trace, ConvertStats, error) {
	t := &Trace{Name: name, Category: "EXT"}
	var st ConvertStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st.Lines++
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, st, fmt.Errorf("trace: champsim line %d: want '<pc> <type> <taken>', got %q", lineNo, line)
		}
		switch strings.ToUpper(fields[1]) {
		case "B":
			pc, err := parsePC(fields[0], 10)
			if err != nil {
				return nil, st, fmt.Errorf("trace: champsim line %d: bad pc %q: %w", lineNo, fields[0], err)
			}
			taken, err := parseDir(fields[2])
			if err != nil {
				return nil, st, fmt.Errorf("trace: champsim line %d: %w", lineNo, err)
			}
			st.Conditional++
			t.Branches = append(t.Branches, Branch{PC: pc, Taken: taken, OpsBefore: synthOps(pc)})
		case "C":
			st.Calls++
		case "R":
			st.Returns++
		case "J":
			st.Jumps++
		default:
			st.Other++
		}
	}
	if err := sc.Err(); err != nil {
		return nil, st, fmt.Errorf("trace: champsim line %d: %w", lineNo, err)
	}
	return t, st, nil
}

// parsePC parses a PC in defaultBase, honouring an explicit 0x prefix.
func parsePC(s string, defaultBase int) (uint64, error) {
	base := defaultBase
	if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
		s, base = s[2:], 16
	}
	return strconv.ParseUint(s, base, 64)
}

// parseDir parses a branch direction token.
func parseDir(s string) (bool, error) {
	switch strings.ToUpper(s) {
	case "T", "1":
		return true, nil
	case "N", "0":
		return false, nil
	default:
		return false, fmt.Errorf("bad direction %q (want T, N, 1 or 0)", s)
	}
}
