package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func sampleTrace(n int, seed uint64) *Trace {
	r := rng.NewXoshiro(seed)
	t := &Trace{Name: "SAMPLE", Category: "TEST"}
	pc := uint64(0x400000)
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			pc = 0x400000 + uint64(r.Intn(1000))*4
		} else {
			pc += 4
		}
		t.Branches = append(t.Branches, Branch{
			PC:        pc,
			Taken:     r.Bool(0.6),
			OpsBefore: uint8(r.Intn(8)),
		})
	}
	return t
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace(5000, 1)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != tr.Name || got.Category != tr.Category {
		t.Fatalf("metadata mismatch: %q/%q", got.Name, got.Category)
	}
	if !reflect.DeepEqual(got.Branches, tr.Branches) {
		t.Fatal("branches differ after round trip")
	}
}

func TestRoundTripEmpty(t *testing.T) {
	tr := &Trace{Name: "E", Category: "X"}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Branches) != 0 || got.Name != "E" {
		t.Fatal("empty trace round trip failed")
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		tr := sampleTrace(int(nRaw%500), seed)
		var buf bytes.Buffer
		if err := Write(&buf, tr); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(tr.Branches) == 0 {
			return len(got.Branches) == 0
		}
		return reflect.DeepEqual(got.Branches, tr.Branches)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBadMagic(t *testing.T) {
	_, err := Read(strings.NewReader("NOTATRACEFILE"))
	if err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	tr := sampleTrace(100, 2)
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{5, 10, len(data) / 2, len(data) - 1} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("expected error for truncation at %d", cut)
		}
	}
}

func TestMicroOps(t *testing.T) {
	tr := &Trace{Branches: []Branch{
		{PC: 1, OpsBefore: 3},
		{PC: 2, OpsBefore: 0},
		{PC: 3, OpsBefore: 7},
	}}
	// 3+1 + 0+1 + 7+1 = 13
	if got := tr.MicroOps(); got != 13 {
		t.Fatalf("MicroOps = %d, want 13", got)
	}
}

func TestReaderIteration(t *testing.T) {
	tr := sampleTrace(10, 3)
	src := tr.Reader()
	var got []Branch
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		got = append(got, b)
	}
	if !reflect.DeepEqual(got, tr.Branches) {
		t.Fatal("Reader did not reproduce the branches")
	}
}

func TestCollectLimit(t *testing.T) {
	tr := sampleTrace(100, 4)
	got := Collect("X", "Y", tr.Reader(), 25)
	if len(got.Branches) != 25 {
		t.Fatalf("Collect limit: got %d branches", len(got.Branches))
	}
	got = Collect("X", "Y", tr.Reader(), 0)
	if len(got.Branches) != 100 {
		t.Fatalf("Collect unlimited: got %d branches", len(got.Branches))
	}
}

func TestSummarize(t *testing.T) {
	tr := &Trace{Branches: []Branch{
		{PC: 0x10, Taken: true, OpsBefore: 1},
		{PC: 0x10, Taken: false, OpsBefore: 1},
		{PC: 0x20, Taken: true, OpsBefore: 1},
		{PC: 0x30, Taken: true, OpsBefore: 1},
	}}
	s := Summarize(tr)
	if s.Branches != 4 || s.StaticBranches != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.TakenFraction != 0.75 {
		t.Fatalf("taken fraction = %v, want 0.75", s.TakenFraction)
	}
	if s.MicroOps != 8 {
		t.Fatalf("micro ops = %d, want 8", s.MicroOps)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(&Trace{})
	if s.Branches != 0 || s.TakenFraction != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

// TestNextBatchMatchesNext: block decoding must yield exactly the branch
// stream Next yields, across batch sizes that divide the trace evenly,
// leave a remainder, or exceed it.
func TestNextBatchMatchesNext(t *testing.T) {
	r := rng.NewXoshiro(7)
	tr := &Trace{Name: "b", Category: "T"}
	for i := 0; i < 1000; i++ {
		tr.Branches = append(tr.Branches, Branch{
			PC: uint64(r.Uint32()), Taken: r.Bool(0.5), OpsBefore: uint8(r.Intn(9)),
		})
	}
	var viaNext []Branch
	src := tr.Reader()
	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		viaNext = append(viaNext, b)
	}
	for _, batchSize := range []int{1, 7, 250, 1000, 4096} {
		var got []Branch
		batcher := tr.Reader().(Batcher)
		buf := make([]Branch, batchSize)
		for {
			n := batcher.NextBatch(buf)
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !reflect.DeepEqual(got, viaNext) {
			t.Fatalf("batch size %d: stream differs from Next", batchSize)
		}
	}
}

// TestNextBatchAfterNext: mixing the two APIs keeps a single cursor.
func TestNextBatchAfterNext(t *testing.T) {
	tr := &Trace{Branches: []Branch{{PC: 1}, {PC: 2}, {PC: 3}}}
	src := tr.Reader()
	if b, ok := src.Next(); !ok || b.PC != 1 {
		t.Fatalf("Next = %+v, %v", b, ok)
	}
	buf := make([]Branch, 8)
	if n := src.(Batcher).NextBatch(buf); n != 2 || buf[0].PC != 2 || buf[1].PC != 3 {
		t.Fatalf("NextBatch = %d, %+v", n, buf[:n])
	}
	if n := src.(Batcher).NextBatch(buf); n != 0 {
		t.Fatalf("exhausted NextBatch = %d, want 0", n)
	}
}
