package trace

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

// roundTrip encodes then decodes tr, failing the test on any error.
func roundTrip(t *testing.T, tr *Trace) *Trace {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestRoundTripProperty drives the binary encoding with adversarial
// branch records the synthetic generators never produce: arbitrary
// 64-bit PCs (so the zigzag delta encoding sees huge forward and
// backward jumps and wraparound), the full OpsBefore range including
// the 0 and 255 saturation boundaries, and arbitrary metadata strings.
func TestRoundTripProperty(t *testing.T) {
	prop := func(name, category string, pcs []uint64, dirs []bool, ops []uint8) bool {
		n := len(pcs)
		if len(dirs) < n {
			n = len(dirs)
		}
		if len(ops) < n {
			n = len(ops)
		}
		tr := &Trace{Name: name, Category: category}
		for i := 0; i < n; i++ {
			tr.Branches = append(tr.Branches, Branch{PC: pcs[i], Taken: dirs[i], OpsBefore: ops[i]})
		}
		got := roundTrip(t, tr)
		if got.Name != tr.Name || got.Category != tr.Category {
			return false
		}
		if len(got.Branches) != len(tr.Branches) {
			return false
		}
		return len(tr.Branches) == 0 || reflect.DeepEqual(got.Branches, tr.Branches)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripOpsBeforeSaturation(t *testing.T) {
	// Every representable OpsBefore value survives, in particular the
	// saturated 255 and the 0 boundary.
	tr := &Trace{Name: "OPS", Category: "EDGE"}
	for v := 0; v <= math.MaxUint8; v++ {
		tr.Branches = append(tr.Branches, Branch{
			PC:        0x400000 + uint64(v)*16,
			Taken:     v%2 == 0,
			OpsBefore: uint8(v),
		})
	}
	got := roundTrip(t, tr)
	if !reflect.DeepEqual(got.Branches, tr.Branches) {
		t.Fatal("OpsBefore values corrupted by round trip")
	}
	if got.MicroOps() != tr.MicroOps() {
		t.Fatalf("micro-op count changed: %d -> %d", tr.MicroOps(), got.MicroOps())
	}
}

func TestRoundTripExtremePCDeltas(t *testing.T) {
	// Delta encoding must survive the extremes of the PC space: zero,
	// max-uint64, and alternating far jumps in both directions.
	tr := &Trace{Name: "PC", Category: "EDGE"}
	for _, pc := range []uint64{
		0, math.MaxUint64, 1, math.MaxUint64 - 1, 0x400000,
		math.MaxInt64, uint64(math.MaxInt64) + 1, 42,
	} {
		tr.Branches = append(tr.Branches, Branch{PC: pc, Taken: true, OpsBefore: 3})
	}
	got := roundTrip(t, tr)
	if !reflect.DeepEqual(got.Branches, tr.Branches) {
		t.Fatalf("extreme PCs corrupted: %+v", got.Branches)
	}
}

func TestRoundTripEmptyVariants(t *testing.T) {
	for _, tr := range []*Trace{
		{},
		{Name: "ONLY-NAME"},
		{Category: "ONLY-CAT"},
		{Name: "ünïcode/名前", Category: "カテゴリ"},
	} {
		got := roundTrip(t, tr)
		if got.Name != tr.Name || got.Category != tr.Category || len(got.Branches) != 0 {
			t.Fatalf("empty-trace round trip: got %+v, want %+v", got, tr)
		}
	}
}
