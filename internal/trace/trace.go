// Package trace defines the branch-trace model used by the simulator: a
// sequence of conditional-branch records on the correct execution path,
// each carrying its PC, its outcome, and the number of non-branch micro-ops
// preceding it (so that per-kilo-instruction metrics can be computed, as in
// the CBP-3 framework the paper uses). Traces can be generated on the fly
// by a Source or materialised, and a compact binary encoding is provided
// for storing them on disk.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
)

// Branch is one dynamic conditional branch on the correct path.
type Branch struct {
	// PC is the branch instruction address.
	PC uint64
	// Taken is the architectural outcome.
	Taken bool
	// OpsBefore is the number of non-branch micro-ops that executed since
	// the previous branch (the branch itself counts as one more µop).
	OpsBefore uint8
}

// Source produces branches one at a time. Next reports false when the
// trace is exhausted.
type Source interface {
	Next() (Branch, bool)
}

// Batcher is an optional Source extension for block decoding: NextBatch
// fills dst with up to len(dst) branches and returns how many were
// written (0 at end of trace). The simulator prefers it when available,
// amortising the per-branch interface call of Next over a whole decode
// block.
type Batcher interface {
	NextBatch(dst []Branch) int
}

// Trace is a fully materialised branch trace.
type Trace struct {
	// Name identifies the benchmark (e.g. "INT01").
	Name string
	// Category is the benchmark class (e.g. "INT").
	Category string
	Branches []Branch
}

// MicroOps returns the total micro-op count of the trace (branches plus
// the ops preceding each).
func (t *Trace) MicroOps() uint64 {
	var n uint64
	for _, b := range t.Branches {
		n += uint64(b.OpsBefore) + 1
	}
	return n
}

// Reader returns a Source iterating over the materialised branches.
func (t *Trace) Reader() Source { return &sliceSource{t: t} }

type sliceSource struct {
	t *Trace
	i int
}

func (s *sliceSource) Next() (Branch, bool) {
	if s.i >= len(s.t.Branches) {
		return Branch{}, false
	}
	b := s.t.Branches[s.i]
	s.i++
	return b, true
}

// NextBatch implements Batcher: one bulk copy out of the materialised
// slice per decode block.
func (s *sliceSource) NextBatch(dst []Branch) int {
	n := copy(dst, s.t.Branches[s.i:])
	s.i += n
	return n
}

// Cursor is a reusable Source over materialised traces: Seek re-points it
// at a trace and rewinds, so pooled simulation runs avoid the per-run
// Reader allocation. The zero value is an exhausted source.
type Cursor struct {
	t *Trace
	i int
}

// Seek points the cursor at the start of t (nil empties the cursor).
func (c *Cursor) Seek(t *Trace) { c.t, c.i = t, 0 }

// Next implements Source.
func (c *Cursor) Next() (Branch, bool) {
	if c.t == nil || c.i >= len(c.t.Branches) {
		return Branch{}, false
	}
	b := c.t.Branches[c.i]
	c.i++
	return b, true
}

// NextBatch implements Batcher: one bulk copy out of the materialised
// slice per decode block.
func (c *Cursor) NextBatch(dst []Branch) int {
	if c.t == nil {
		return 0
	}
	n := copy(dst, c.t.Branches[c.i:])
	c.i += n
	return n
}

// Len returns the number of branches remaining before the cursor, so a
// resume can reject a checkpoint claiming a longer already-simulated
// prefix than the trace holds before consuming anything.
func (c *Cursor) Len() int {
	if c.t == nil {
		return 0
	}
	return len(c.t.Branches) - c.i
}

// Skip advances the cursor by up to n branches without yielding them
// (O(1) — the resume path of a checkpointed simulation) and returns
// how many were skipped.
func (c *Cursor) Skip(n int) int {
	if c.t == nil || n <= 0 {
		return 0
	}
	if rem := len(c.t.Branches) - c.i; n > rem {
		n = rem
	}
	c.i += n
	return n
}

// Collect materialises up to limit branches from a source (limit <= 0 means
// no limit).
func Collect(name, category string, src Source, limit int) *Trace {
	t := &Trace{Name: name, Category: category}
	for {
		if limit > 0 && len(t.Branches) >= limit {
			break
		}
		b, ok := src.Next()
		if !ok {
			break
		}
		t.Branches = append(t.Branches, b)
	}
	return t
}

// Binary format:
//
//	magic "BPT1" | name len+bytes | category len+bytes | branch count |
//	per branch: uvarint(pcDelta zigzag) | byte(flags: bit0 taken) | byte(opsBefore)
//
// PCs are delta-encoded against the previous branch PC because real and
// synthetic traces alike have strong PC locality.
const magic = "BPT1"

var (
	// ErrBadMagic reports a stream that is not a trace file.
	ErrBadMagic = errors.New("trace: bad magic")
)

// Write encodes the trace to w.
func Write(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	writeString := func(s string) error {
		var lenBuf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(lenBuf[:], uint64(len(s)))
		if _, err := bw.Write(lenBuf[:n]); err != nil {
			return err
		}
		_, err := bw.WriteString(s)
		return err
	}
	if err := writeString(t.Name); err != nil {
		return err
	}
	if err := writeString(t.Category); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(t.Branches)))
	if _, err := bw.Write(buf[:n]); err != nil {
		return err
	}
	prev := uint64(0)
	for _, b := range t.Branches {
		delta := int64(b.PC) - int64(prev)
		n := binary.PutVarint(buf[:], delta)
		if _, err := bw.Write(buf[:n]); err != nil {
			return err
		}
		flags := byte(0)
		if b.Taken {
			flags |= 1
		}
		if err := bw.WriteByte(flags); err != nil {
			return err
		}
		if err := bw.WriteByte(b.OpsBefore); err != nil {
			return err
		}
		prev = b.PC
	}
	return bw.Flush()
}

// Read decodes a trace written by Write.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(head) != magic {
		return nil, ErrBadMagic
	}
	readString := func() (string, error) {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("trace: unreasonable string length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	t := &Trace{}
	var err error
	if t.Name, err = readString(); err != nil {
		return nil, fmt.Errorf("trace: reading name: %w", err)
	}
	if t.Category, err = readString(); err != nil {
		return nil, fmt.Errorf("trace: reading category: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: unreasonable branch count %d", count)
	}
	t.Branches = make([]Branch, 0, count)
	prev := uint64(0)
	for i := uint64(0); i < count; i++ {
		delta, err := binary.ReadVarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: branch %d pc: %w", i, err)
		}
		pc := uint64(int64(prev) + delta)
		flags, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: branch %d flags: %w", i, err)
		}
		ops, err := br.ReadByte()
		if err != nil {
			return nil, fmt.Errorf("trace: branch %d ops: %w", i, err)
		}
		t.Branches = append(t.Branches, Branch{PC: pc, Taken: flags&1 != 0, OpsBefore: ops})
		prev = pc
	}
	return t, nil
}

// Hash returns a content hash of the trace's branch sequence (FNV-1a
// over PC, outcome and µop count of every branch). Two traces hash
// equal exactly when they drive a predictor identically, which is what
// checkpoint caches key on — name and category are presentation.
func (t *Trace) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte1 := func(b byte) {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range t.Branches {
		pc := b.PC
		for i := 0; i < 8; i++ {
			byte1(byte(pc))
			pc >>= 8
		}
		if b.Taken {
			byte1(1)
		} else {
			byte1(0)
		}
		byte1(b.OpsBefore)
	}
	return h
}

// Stats summarises a trace.
type Stats struct {
	Branches       int
	MicroOps       uint64
	TakenFraction  float64
	StaticBranches int
	// Top10Coverage is the fraction of dynamic branches contributed by
	// the 10 hottest static sites (1.0 when the trace has <= 10 sites):
	// a footprint measure separating kernel-like traces from
	// dispatch-heavy ones.
	Top10Coverage float64
	// TransitionEntropy is the first-order Markov entropy of the
	// direction stream in bits — H(next direction | current direction)
	// over consecutive branch pairs. 0 means the next direction is
	// fully determined by the current one; 1 means it carries no
	// information (coin-flip transitions).
	TransitionEntropy float64
}

// Summarize computes summary statistics for a trace.
func Summarize(t *Trace) Stats {
	taken := 0
	static := make(map[uint64]int)
	var bigram [2][2]int
	for i, b := range t.Branches {
		if b.Taken {
			taken++
		}
		static[b.PC]++
		if i > 0 {
			from, to := 0, 0
			if t.Branches[i-1].Taken {
				from = 1
			}
			if b.Taken {
				to = 1
			}
			bigram[from][to]++
		}
	}
	s := Stats{
		Branches:       len(t.Branches),
		MicroOps:       t.MicroOps(),
		StaticBranches: len(static),
	}
	if s.Branches > 0 {
		s.TakenFraction = float64(taken) / float64(s.Branches)
		counts := make([]int, 0, len(static))
		for _, c := range static {
			counts = append(counts, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(counts)))
		top := 0
		for i, c := range counts {
			if i == 10 {
				break
			}
			top += c
		}
		s.Top10Coverage = float64(top) / float64(s.Branches)
	}
	if pairs := s.Branches - 1; pairs > 0 {
		var h float64
		for from := 0; from < 2; from++ {
			row := bigram[from][0] + bigram[from][1]
			if row == 0 {
				continue
			}
			var rowH float64
			for to := 0; to < 2; to++ {
				if c := bigram[from][to]; c > 0 {
					p := float64(c) / float64(row)
					rowH -= p * math.Log2(p)
				}
			}
			h += float64(row) / float64(pairs) * rowH
		}
		s.TransitionEntropy = h
	}
	return s
}
