package ftlpp

import (
	"testing"

	"repro/internal/rng"
)

func runImmediate(p *Predictor, pcs []uint64, outs []bool) (late int) {
	var ctx Ctx
	half := len(pcs) / 2
	for i := range pcs {
		pred := p.Predict(pcs[i], &ctx)
		if pred != outs[i] && i >= half {
			late++
		}
		p.OnResolve(pcs[i], outs[i], pred != outs[i], &ctx)
		p.Retire(pcs[i], outs[i], &ctx, true)
	}
	return
}

func TestLearnsBias(t *testing.T) {
	p := New(Config{})
	n := 3000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x4000
		outs[i] = true
	}
	if late := runImmediate(p, pcs, outs); late > 10 {
		t.Fatalf("late mispredicts: %d", late)
	}
}

// TestLocalSideCapturesLocalPattern: the fused local tables must learn a
// per-branch pattern even when the global context is noisy — the "fused
// two-level" advantage.
func TestLocalSideCapturesLocalPattern(t *testing.T) {
	p := New(Config{})
	r := rng.NewXoshiro(3)
	pattern := []bool{true, true, false, true, false, false}
	var ctx Ctx
	late, total := 0, 0
	const rounds = 20000
	for i := 0; i < rounds; i++ {
		// Noise branch scrambles global history.
		noise := r.Bool(0.5)
		pred := p.Predict(0x100, &ctx)
		p.OnResolve(0x100, noise, pred != noise, &ctx)
		p.Retire(0x100, noise, &ctx, true)

		out := pattern[i%len(pattern)]
		pred = p.Predict(0x200, &ctx)
		if i > rounds/2 {
			total++
			if pred != out {
				late++
			}
		}
		p.OnResolve(0x200, out, pred != out, &ctx)
		p.Retire(0x200, out, &ctx, true)
	}
	rate := float64(late) / float64(total)
	if rate > 0.15 {
		t.Fatalf("local pattern late rate = %.3f", rate)
	}
}

// TestGlobalSideCapturesGlobalPattern: the global tables handle
// path-correlated behaviour.
func TestGlobalSideCapturesGlobalPattern(t *testing.T) {
	p := New(Config{})
	var ctx Ctx
	late, total := 0, 0
	const n = 30000
	for i := 0; i < n; i++ {
		out := i%7 == 0
		pred := p.Predict(0x300, &ctx)
		if i > n/2 {
			total++
			if pred != out {
				late++
			}
		}
		p.OnResolve(0x300, out, pred != out, &ctx)
		p.Retire(0x300, out, &ctx, true)
	}
	rate := float64(late) / float64(total)
	if rate > 0.05 {
		t.Fatalf("global pattern late rate = %.3f", rate)
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(Config{})
	kb := p.StorageBits() / 1024
	if kb < 300 || kb > 600 {
		t.Fatalf("storage = %d Kbit, outside the 512Kbit class", kb)
	}
}

func TestTooManyTablesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{GlobalTables: MaxTables + 1})
}

func TestFoldLocalBounded(t *testing.T) {
	for _, width := range []uint{4, 8, 12} {
		for h := uint32(0); h < 1000; h += 7 {
			if v := foldLocal(h, width); v >= 1<<width {
				t.Fatalf("fold out of range: %#x width %d", v, width)
			}
		}
	}
}
