package ftlpp

import "repro/internal/checkpoint"

// Snapshot implements predictor.Predictor: both GEHL engines, the
// global and local histories, and the per-table folds. The two engines
// share one stats object, written once.
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("ftlpp", 1)
	p.geng.Snapshot(enc)
	p.leng.Snapshot(enc)
	p.ghist.Snapshot(enc)
	for i := range p.folded {
		p.folded[i].Snapshot(enc)
	}
	p.lht.Snapshot(enc)
	p.geng.Stats().Snapshot(enc)
	enc.End()
}

// Restore implements predictor.Predictor.
func (p *Predictor) Restore(dec *checkpoint.Decoder) {
	dec.Open("ftlpp", 1)
	p.geng.LoadSnapshot(dec)
	p.leng.LoadSnapshot(dec)
	p.ghist.LoadSnapshot(dec)
	for i := range p.folded {
		p.folded[i].LoadSnapshot(dec)
	}
	p.lht.LoadSnapshot(dec)
	p.geng.Stats().LoadSnapshot(dec)
	dec.Close()
}
