// Package ftlpp implements a fused two-level predictor in the style of
// FTL++ (Ishii, Kuroyanagi, Sawada, Inaba, Hiraki — CBP-3 2011, 2nd
// place), the paper's Section 6.3 comparison point: a GEHL global-history
// adder tree fused with a local-history GEHL (LGEHL) through a single
// summation and a shared threshold-based update ("Revisiting local history
// for improving fused two-level branch predictor").
package ftlpp

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/gehl"
	"repro/internal/histories"
	"repro/internal/memarray"
)

// MaxTables bounds each side of the fusion.
const MaxTables = 10

// Config parameterises the fused predictor.
type Config struct {
	// Global side (defaults: 8 tables, 8K entries, lengths 2..160).
	GlobalTables     int
	GlobalLogEntries uint
	GlobalMin        int
	GlobalMax        int
	// Local side (defaults: 4 tables, 2K entries, short local lengths,
	// 64-entry local history table).
	LocalTables     int
	LocalLogEntries uint
	LocalLengths    []int
	LHTEntries      int
	CtrBits         uint
}

func (c Config) withDefaults() Config {
	if c.GlobalTables == 0 {
		c.GlobalTables = 8
	}
	if c.GlobalLogEntries == 0 {
		c.GlobalLogEntries = 13
	}
	if c.GlobalMin == 0 {
		c.GlobalMin = 2
	}
	if c.GlobalMax == 0 {
		c.GlobalMax = 160
	}
	if c.LocalTables == 0 {
		c.LocalTables = 4
	}
	if c.LocalLogEntries == 0 {
		c.LocalLogEntries = 11
	}
	if len(c.LocalLengths) == 0 {
		c.LocalLengths = []int{0, 2, 4, 7}
	}
	if c.LHTEntries == 0 {
		c.LHTEntries = 64
	}
	if c.CtrBits == 0 {
		c.CtrBits = 5
	}
	if c.GlobalTables > MaxTables || len(c.LocalLengths) > MaxTables {
		panic("ftlpp: too many tables")
	}
	return c
}

// Predictor is the fused two-level predictor.
type Predictor struct {
	cfg  Config
	geng *gehl.Engine
	leng *gehl.Engine

	ghist  *histories.Global
	folded []histories.Folded
	lht    *histories.Local
	lwidth uint
	name   string // formatted once: Name is on the per-run result path
}

// Ctx is the pipeline context.
type Ctx struct {
	GIdx [MaxTables]uint32
	GCtr [MaxTables]int8
	LIdx [MaxTables]uint32
	LCtr [MaxTables]int8
	Sum  int32
	Pred bool
}

// New creates an FTL++-style predictor.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	glens := make([]int, cfg.GlobalTables)
	glens[0] = 0
	copy(glens[1:], histories.GeometricSeries(cfg.GlobalMin, cfg.GlobalMax, cfg.GlobalTables-1))
	stats := &memarray.Stats{}
	maxLocal := 0
	for _, l := range cfg.LocalLengths {
		if l > maxLocal {
			maxLocal = l
		}
	}
	p := &Predictor{
		cfg: cfg,
		geng: gehl.NewEngine(gehl.Config{
			NumTables: cfg.GlobalTables, LogEntries: cfg.GlobalLogEntries,
			CtrBits: cfg.CtrBits, MinHist: 1, MaxHist: cfg.GlobalMax + 1,
		}, glens, stats),
		leng: gehl.NewEngine(gehl.Config{
			NumTables: len(cfg.LocalLengths), LogEntries: cfg.LocalLogEntries,
			CtrBits: cfg.CtrBits, MinHist: 1, MaxHist: maxLocal + 1,
		}, cfg.LocalLengths, stats),
		ghist:  histories.NewGlobal(cfg.GlobalMax + 64),
		lht:    histories.NewLocal(cfg.LHTEntries, uint(maxLocal)),
		lwidth: uint(maxLocal),
	}
	p.folded = make([]histories.Folded, cfg.GlobalTables)
	for i, l := range glens {
		if l > 0 {
			p.folded[i] = histories.NewFolded(l, cfg.GlobalLogEntries)
		}
	}
	p.name = fmt.Sprintf("ftlpp-%dKb", p.StorageBits()/1024)
	return p
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string { return p.name }

// StorageBits implements predictor.Predictor.
func (p *Predictor) StorageBits() int {
	return p.geng.StorageBits() + p.leng.StorageBits() +
		p.lht.Entries()*int(p.lwidth)
}

// foldLocal compresses a local history value into an index-width hash.
func foldLocal(h uint32, width uint) uint32 {
	mask := uint32(bitutil.Mask(width))
	v := uint32(0)
	for h != 0 {
		v ^= h & mask
		h >>= width
	}
	return v
}

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) bool {
	var sum int32
	for i := 0; i < p.cfg.GlobalTables; i++ {
		idx := p.geng.Index(i, pc, p.folded[i].Value(), 0)
		c := p.geng.Read(i, idx)
		ctx.GIdx[i] = idx
		ctx.GCtr[i] = int8(c)
		sum += bitutil.Centered(c)
	}
	lh := p.lht.Read(pc)
	for i, l := range p.cfg.LocalLengths {
		key := lh & uint32(bitutil.Mask(uint(l)))
		idx := p.leng.Index(i, pc, foldLocal(key, p.cfg.LocalLogEntries), 0x517cc1b7)
		c := p.leng.Read(i, idx)
		ctx.LIdx[i] = idx
		ctx.LCtr[i] = int8(c)
		sum += bitutil.Centered(c)
	}
	ctx.Sum = sum
	ctx.Pred = sum >= 0
	return ctx.Pred
}

// OnResolve implements predictor.Predictor.
func (p *Predictor) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {
	p.ghist.Push(taken)
	histories.UpdateFolds(p.ghist, p.folded, taken)
	p.lht.Update(pc, taken)
}

// Retire implements predictor.Predictor: fused threshold-based update over
// both table sets, sharing the global engine's adaptive threshold.
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	mispredicted := ctx.Pred != taken
	a := ctx.Sum
	if a < 0 {
		a = -a
	}
	if p.geng.ShouldUpdate(mispredicted, a) {
		for i := 0; i < p.cfg.GlobalTables; i++ {
			old := int32(ctx.GCtr[i])
			if reread {
				old = p.geng.Read(i, ctx.GIdx[i])
			}
			p.geng.Train(i, ctx.GIdx[i], old, taken)
		}
		for i := range p.cfg.LocalLengths {
			old := int32(ctx.LCtr[i])
			if reread {
				old = p.leng.Read(i, ctx.LIdx[i])
			}
			p.leng.Train(i, ctx.LIdx[i], old, taken)
		}
	}
	p.geng.AdaptThreshold(mispredicted, a)
}

// AccessStats implements predictor.Predictor.
func (p *Predictor) AccessStats() *memarray.Stats { return p.geng.Stats() }

// Reset implements predictor.Predictor: both engines, global and local
// histories, folds and accounting back to the construction state. The two
// engines share one stats object, reset once.
func (p *Predictor) Reset() {
	p.geng.Reset()
	p.leng.Reset()
	p.ghist.Reset()
	for i := range p.folded {
		p.folded[i].Reset()
	}
	p.lht.Reset()
	p.geng.Stats().Reset()
}
