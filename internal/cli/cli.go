// Package cli holds the few conventions the bp* commands share: a
// structured stderr logger (log/slog) with the -v/-quiet verbosity
// flags that select its level. Commands log through one *slog.Logger
// instead of scattering fmt.Fprintf(os.Stderr, ...) calls, so every
// diagnostic line carries a level, -quiet reliably silences the chatter
// without hiding errors, and -v turns on the debug detail.
package cli

import (
	"flag"
	"io"
	"log/slog"
)

// Verbosity registers the shared -v and -quiet flags on fs and returns
// their destinations (read them after fs.Parse).
func Verbosity(fs *flag.FlagSet) (verbose, quiet *bool) {
	verbose = fs.Bool("v", false, "verbose: include debug-level diagnostics on stderr")
	quiet = fs.Bool("quiet", false, "quiet: only errors on stderr")
	return verbose, quiet
}

// NewLogger builds the command logger writing to w (stderr). Levels:
// -quiet shows only errors, the default shows info and up, -v shows
// debug and up; -quiet wins when both are set. Timestamps are dropped
// so output is deterministic and greppable in tests and CI.
func NewLogger(w io.Writer, verbose, quiet bool) *slog.Logger {
	level := slog.LevelInfo
	switch {
	case quiet:
		level = slog.LevelError
	case verbose:
		level = slog.LevelDebug
	}
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{
		Level: level,
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey && len(groups) == 0 {
				return slog.Attr{}
			}
			return a
		},
	}))
}
