package experiments

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/harness"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestRegistryCompleteAndOrdered(t *testing.T) {
	reg := Registry()
	if len(reg) != 15 {
		t.Fatalf("registry has %d experiments, want 15", len(reg))
	}
	for i, e := range reg {
		wantID := "E" + itoa(i+1)
		if e.ID != wantID {
			t.Errorf("position %d: id %s, want %s", i, e.ID, wantID)
		}
		if e.Run == nil || e.Title == "" {
			t.Errorf("%s: incomplete registration", e.ID)
		}
	}
}

func itoa(v int) string {
	if v >= 10 {
		return string(rune('0'+v/10)) + string(rune('0'+v%10))
	}
	return string(rune('0' + v))
}

func TestLookupCaseInsensitive(t *testing.T) {
	for _, id := range []string{"e3", "E3", " e3 "} {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("E16"); ok {
		t.Fatal("Lookup must reject unknown ids")
	}
}

func TestRenderFormats(t *testing.T) {
	rep := Report{ID: "EX", Title: "t"}
	rep.row("label", "1.0", "%.1f", 2.0)
	rep.check("a check", true)
	rep.check("a failing check", false)
	rep.Notes = append(rep.Notes, "a note")

	var buf bytes.Buffer
	Render(&buf, rep)
	out := buf.String()
	for _, want := range []string{"EX", "label", "paper=1.0", "measured=2.0", "[PASS]", "[FAIL]", "a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("text render missing %q in:\n%s", want, out)
		}
	}

	buf.Reset()
	RenderMarkdown(&buf, rep)
	out = buf.String()
	for _, want := range []string{"### EX", "| label | 1.0 | 2.0 |", "✅", "❌"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown render missing %q in:\n%s", want, out)
		}
	}
}

func TestReportPassed(t *testing.T) {
	var r Report
	if !r.Passed() {
		t.Fatal("empty report must pass")
	}
	r.check("ok", true)
	if !r.Passed() {
		t.Fatal("all-true must pass")
	}
	r.check("bad", false)
	if r.Passed() {
		t.Fatal("any-false must fail")
	}
}

func TestMakeRunnerColdStatePerTrace(t *testing.T) {
	// The runner must construct a fresh predictor per trace: two identical
	// invocations give identical totals.
	cfg := Config{BranchesPerTrace: 5000}
	r := GshareRunner()
	a := r(cfg, cfg.simOptions(predictor.ScenarioA)).TotalMispredictions()
	b := r(cfg, cfg.simOptions(predictor.ScenarioA)).TotalMispredictions()
	if a != b {
		t.Fatalf("suite runs not reproducible: %d vs %d", a, b)
	}
}

func TestSuiteRunnerCovers40Traces(t *testing.T) {
	cfg := Config{BranchesPerTrace: 2000}
	suite := GshareRunner()(cfg, cfg.simOptions(predictor.ScenarioA))
	if len(suite.Results) != 40 {
		t.Fatalf("suite has %d results, want 40", len(suite.Results))
	}
	seen := map[string]bool{}
	for _, res := range suite.Results {
		if seen[res.Trace] {
			t.Fatalf("duplicate trace %s", res.Trace)
		}
		seen[res.Trace] = true
		if res.Branches == 0 {
			t.Fatalf("trace %s ran no branches", res.Trace)
		}
	}
}

func TestPct(t *testing.T) {
	if pct(5, 100) != "+5.0%" {
		t.Fatalf("pct = %s", pct(5, 100))
	}
	if pct(-5, 100) != "-5.0%" {
		t.Fatalf("pct = %s", pct(-5, 100))
	}
	if pct(1, 0) != "n/a" {
		t.Fatal("division by zero must be guarded")
	}
}

// TestE15Fast is an end-to-end experiment smoke test at tiny scale.
func TestE15Fast(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run in -short mode")
	}
	rep := E15(Config{BranchesPerTrace: 20000})
	if len(rep.Rows) == 0 {
		t.Fatal("no rows")
	}
	if rep.ID != "E15" {
		t.Fatalf("id = %s", rep.ID)
	}
}

// TestRunMatrixResultStore covers the store path E11 runs through when
// Config.ResultStore is set: the first invocation executes the grid and
// persists provenance-stamped records; a second invocation reuses every
// cell (zero simulator runs) and reassembles the identical record stream
// from the store.
func TestRunMatrixResultStore(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	var runs atomic.Int64
	model := harness.Model{Name: "m", Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
		runs.Add(1)
		return sim.Result{
			Trace: tr.Name, Category: tr.Category,
			Window: sim.DefaultWindow, ExecDelay: sim.DefaultExecDelay,
			Branches: uint64(len(tr.Branches)), MPKI: 2, MPPKI: 40,
		}
	}}
	specs, err := workload.Select([]string{"INT01", "INT02"})
	if err != nil {
		t.Fatal(err)
	}
	m := &harness.Matrix{
		Models:    []harness.Model{model},
		Traces:    specs,
		Scenarios: []predictor.Scenario{predictor.ScenarioA},
		Lengths:   []int{40},
	}
	cfg := Config{Parallelism: 2, ResultStore: store}

	first, _, err := runMatrix(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("first pass executed %d jobs, want 2", got)
	}
	stored, _, err := harness.ReadStoreFile(store)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range stored {
		if r.Provenance == nil || r.Provenance.GitSHA == "" {
			t.Fatalf("stored record %d carries no provenance SHA: %+v", i, r)
		}
	}

	second, _, err := runMatrix(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := runs.Load(); got != 2 {
		t.Fatalf("second pass re-executed jobs: %d total runs", got)
	}
	clear := func(recs []harness.Record) []harness.Record {
		out := append([]harness.Record(nil), recs...)
		for i := range out {
			out[i].ElapsedSec = 0
			out[i].BranchesPerSec = 0
		}
		return out
	}
	if !reflect.DeepEqual(clear(first), clear(second)) {
		t.Fatalf("store-backed rerun differs:\nfirst  %+v\nsecond %+v", clear(first), clear(second))
	}

	// The in-memory path returns the same measurement stream.
	plain, _, err := runMatrix(m, Config{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b := clear(plain), clear(second)
	for i := range b {
		b[i].Provenance = nil
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("store path diverges from in-memory path:\nmem   %+v\nstore %+v", a, b)
	}
}
