package experiments

import (
	"fmt"

	"repro/internal/cactimodel"
	"repro/internal/predictor"
)

// E1 reproduces Section 4.1.1: effective writes per misprediction and per
// 100 retired branches for TAGE, GEHL and gshare, with silent updates
// eliminated. Paper: TAGE 2.17/9.06, GEHL 1.94/9.10, gshare 1.54/9.61.
func E1(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E1", Title: "Effective writes with silent-update elimination (§4.1.1)"}
	type entry struct {
		name    string
		runner  SuiteRunner
		paperWM string
		paperWB string
	}
	entries := []entry{
		{"TAGE 512Kb", TAGERunner(false, false), "2.17", "9.06"},
		{"GEHL 520Kb", GEHLRunner(), "1.94", "9.10"},
		{"gshare 512Kb", GshareRunner(), "1.54", "9.61"},
	}
	silentOK := true
	for _, e := range entries {
		suite := e.runner(cfg, cfg.simOptions(predictor.ScenarioA))
		acc := suite.AccessTotals()
		r.row(e.name+" writes/mispredict", e.paperWM, "%.2f", acc.WritesPerMisprediction())
		r.row(e.name+" writes/100 branches", e.paperWB, "%.2f", acc.WritesPer100Branches())
		r.row(e.name+" silent fraction", ">0.90", "%.3f", acc.SilentFraction())
		if acc.SilentFraction() < 0.80 {
			silentOK = false
		}
	}
	r.check("silent updates dominate (>80% of update attempts)", silentOK)
	return r
}

// E2 reproduces Section 4.1.2: suite MPPKI under the four update-timing
// scenarii for gshare, GEHL and TAGE. Paper values:
//
//	gshare: [I] 944  [A] 970  [B] 1292 [C] 1011
//	GEHL:   [I] 664  [A] 685  [B] 801  [C] 744
//	TAGE:   [I] 609  [A] 617  [B] 640  [C] 625
//
// Shape: I <= A <= C <= B for every predictor; the relative [B] and [C]
// degradations are far larger for gshare and GEHL than for TAGE.
func E2(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E2", Title: "Delayed-update scenarii (§4.1.2)"}
	type entry struct {
		name   string
		runner SuiteRunner
		paper  [4]string // I, A, B, C
	}
	entries := []entry{
		{"gshare", GshareRunner(), [4]string{"944", "970", "1292", "1011"}},
		{"GEHL", GEHLRunner(), [4]string{"664", "685", "801", "744"}},
		{"TAGE", TAGERunner(false, false), [4]string{"609", "617", "640", "625"}},
	}
	order := []predictor.Scenario{predictor.ScenarioI, predictor.ScenarioA, predictor.ScenarioB, predictor.ScenarioC}
	mppki := map[string]map[predictor.Scenario]float64{}
	for _, e := range entries {
		suites := scenarioSet(e.runner, cfg)
		mppki[e.name] = map[predictor.Scenario]float64{}
		for i, sc := range order {
			v := suites[sc].TotalMPPKI()
			mppki[e.name][sc] = v
			r.row(fmt.Sprintf("%s %s MPPKI", e.name, sc), e.paper[i], "%.0f", v)
		}
	}
	for _, e := range entries {
		m := mppki[e.name]
		// 1% tolerance: when a predictor is insensitive to a scenario the
		// ordering is within simulation noise (the paper's point for TAGE).
		r.check(e.name+" ordering I<=A<=C<=B",
			m[predictor.ScenarioI] <= m[predictor.ScenarioA]*1.01 &&
				m[predictor.ScenarioA] <= m[predictor.ScenarioC]*1.01 &&
				m[predictor.ScenarioC] <= m[predictor.ScenarioB]*1.01)
	}
	relB := func(name string) float64 {
		return (mppki[name][predictor.ScenarioB] - mppki[name][predictor.ScenarioI]) / mppki[name][predictor.ScenarioI]
	}
	relC := func(name string) float64 {
		return (mppki[name][predictor.ScenarioC] - mppki[name][predictor.ScenarioI]) / mppki[name][predictor.ScenarioI]
	}
	r.row("gshare [B] blow-up", "+37%", "%s", pct(mppki["gshare"][predictor.ScenarioB]-mppki["gshare"][predictor.ScenarioI], mppki["gshare"][predictor.ScenarioI]))
	r.row("GEHL [B] blow-up", "+21%", "%s", pct(mppki["GEHL"][predictor.ScenarioB]-mppki["GEHL"][predictor.ScenarioI], mppki["GEHL"][predictor.ScenarioI]))
	r.row("TAGE [B] blow-up", "+5%", "%s", pct(mppki["TAGE"][predictor.ScenarioB]-mppki["TAGE"][predictor.ScenarioI], mppki["TAGE"][predictor.ScenarioI]))
	r.check("TAGE [B] degradation well below gshare and GEHL",
		relB("TAGE") < relB("gshare") && relB("TAGE") < relB("GEHL"))
	r.check("TAGE [C] degradation below GEHL [C]", relC("TAGE") < relC("GEHL"))
	r.check("accuracy ordering TAGE < GEHL < gshare (scenario A)",
		mppki["TAGE"][predictor.ScenarioA] < mppki["GEHL"][predictor.ScenarioA] &&
			mppki["GEHL"][predictor.ScenarioA] < mppki["gshare"][predictor.ScenarioA])
	return r
}

// E3 reproduces Section 4.3: 4-way bank-interleaved single-ported TAGE
// under scenario [C]. Paper: 627 MPPKI interleaved vs 625 flat; 1.13
// accesses per retired branch; CACTI ratios 3.3x area and 2x energy.
func E3(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E3", Title: "Bank-interleaved single-ported TAGE (§4.3)"}
	flat := TAGERunner(false, false)(cfg, cfg.simOptions(predictor.ScenarioC))
	inter := TAGERunner(true, false)(cfg, cfg.simOptions(predictor.ScenarioC))
	fm, im := flat.TotalMPPKI(), inter.TotalMPPKI()
	r.row("TAGE [C] flat MPPKI", "625", "%.0f", fm)
	r.row("TAGE [C] 4-way interleaved MPPKI", "627", "%.0f", im)
	r.row("interleaving penalty", "+0.3%", "%s", pct(im-fm, fm))
	acc := flat.AccessTotals()
	r.row("accesses per retired branch [C]", "1.13", "%.3f", acc.AccessesPerBranch())
	r.check("interleaving penalty marginal (<4%)", im <= fm*1.04 && im >= fm*0.99)
	r.check("~1.0-1.4 accesses per retired branch", acc.AccessesPerBranch() >= 1.0 && acc.AccessesPerBranch() <= 1.4)

	// Area/energy ratios from the analytical model at branch-predictor
	// array sizes.
	c := cactimodel.Compare(64 * 1024 * 8)
	r.row("area ratio 3-port/1-port", "3-4x", "%.2fx", c.AreaRatio3v1)
	r.row("energy ratio 3-port/1-port", "1.25-1.30x", "%.2fx", c.EnergyRatio3v1)
	r.row("area ratio 3-port/banked", "3.3x", "%.2fx", c.AreaRatioMonoVsBanked)
	r.row("energy ratio 3-port/banked", "2x", "%.2fx", c.EnergyRatioMonoVsBanked)
	r.check("area ratio in band", c.AreaRatioMonoVsBanked > 2.9 && c.AreaRatioMonoVsBanked < 3.7)
	r.check("energy ratio in band", c.EnergyRatioMonoVsBanked > 1.7 && c.EnergyRatioMonoVsBanked < 2.5)
	return r
}

// E4 reproduces Section 5.1: the IUM recovers most of the delayed-update
// accuracy loss. Paper: [I] 609; without IUM [A] 617, [B] 640, [C] 625;
// with IUM [A] 611, [B] 624, [C] 614.
func E4(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E4", Title: "Immediate Update Mimicker (§5.1)"}
	plain := scenarioSet(TAGERunner(false, false), cfg)
	withIUM := scenarioSet(TAGERunner(false, true), cfg)
	base := plain[predictor.ScenarioI].TotalMPPKI()
	r.row("TAGE [I] (oracle)", "609", "%.0f", base)
	paperPlain := map[predictor.Scenario]string{predictor.ScenarioA: "617", predictor.ScenarioB: "640", predictor.ScenarioC: "625"}
	paperIUM := map[predictor.Scenario]string{predictor.ScenarioA: "611", predictor.ScenarioB: "624", predictor.ScenarioC: "614"}
	recovered := map[predictor.Scenario]float64{}
	for _, sc := range []predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB, predictor.ScenarioC} {
		p := plain[sc].TotalMPPKI()
		w := withIUM[sc].TotalMPPKI()
		r.row(fmt.Sprintf("TAGE %s no IUM", sc), paperPlain[sc], "%.0f", p)
		r.row(fmt.Sprintf("TAGE %s with IUM", sc), paperIUM[sc], "%.0f", w)
		if p > base {
			recovered[sc] = (p - w) / (p - base)
		}
		r.row(fmt.Sprintf("gap recovered %s", sc), map[predictor.Scenario]string{
			predictor.ScenarioA: "~3/4", predictor.ScenarioB: "~1/2", predictor.ScenarioC: "most"}[sc],
			"%.0f%%", 100*recovered[sc])
	}
	r.check("IUM helps in scenario A", withIUM[predictor.ScenarioA].TotalMPPKI() < plain[predictor.ScenarioA].TotalMPPKI())
	r.check("IUM helps in scenario B (the largest gap)", withIUM[predictor.ScenarioB].TotalMPPKI() < plain[predictor.ScenarioB].TotalMPPKI())
	r.check("IUM neutral-or-better in scenario C", withIUM[predictor.ScenarioC].TotalMPPKI() <= plain[predictor.ScenarioC].TotalMPPKI()*1.01)
	r.check("IUM recovers a substantial part of the delayed-update gap",
		recovered[predictor.ScenarioA] > 0.3 || recovered[predictor.ScenarioB] > 0.3)
	return r
}
