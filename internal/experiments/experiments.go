// Package experiments reproduces every table and figure of the paper's
// evaluation (the E1–E15 index of DESIGN.md). Each experiment returns a
// Report pairing the paper's published values with the values measured on
// this repository's synthetic benchmark suite: absolute numbers differ
// (the substrate is synthetic), the *shapes* — orderings, ratios,
// crossovers — are the reproduction targets, and each report carries the
// shape checks it is expected to satisfy.
package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/composed"
	"repro/internal/gehl"
	"repro/internal/gshare"
	"repro/internal/harness"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/workload"
)

// Config controls the experiment scale.
type Config struct {
	// BranchesPerTrace sets the trace length (default 200000; the full
	// runs in EXPERIMENTS.md use 1000000).
	BranchesPerTrace int
	// Window and ExecDelay configure the pipeline model.
	Window    int
	ExecDelay int
	// Parallelism bounds concurrent trace simulations (default NumCPU).
	Parallelism int
	// IntraCellWorkers shards each cell group's traces across this many
	// goroutines in the harness-backed sweeps (see harness.Config); the
	// results are byte-identical to a serial run. Zero or one disables it.
	IntraCellWorkers int
	// ResultStore, when set, routes the harness-backed sweeps (E11's
	// Figure 9 grid) through the resumable append-only result store at
	// this path: cells already present are reused, only the missing or
	// failed ones run, and appended records are stamped with provenance
	// — so the most expensive experiment survives interruption and can
	// be re-rendered for free. Empty keeps the in-memory behaviour.
	ResultStore string
	// WarmCache additionally keeps a checkpoint blob cache next to the
	// store (ResultStore + ".ckpt/"): cells warm-start from their cached
	// predictor snapshots, so re-running a sweep skips simulation
	// warm-up and an interrupted long cell resumes mid-trace. Requires
	// ResultStore.
	WarmCache bool
}

func (c Config) withDefaults() Config {
	if c.BranchesPerTrace == 0 {
		c.BranchesPerTrace = 200000
	}
	if c.Window == 0 {
		c.Window = 24
	}
	if c.ExecDelay == 0 {
		c.ExecDelay = 6
	}
	if c.Parallelism == 0 {
		c.Parallelism = runtime.NumCPU()
	}
	return c
}

func (c Config) simOptions(sc predictor.Scenario) sim.Options {
	return sim.Options{Scenario: sc, Window: c.Window, ExecDelay: c.ExecDelay}
}

// runMatrix executes a harness matrix for an experiment and returns the
// full record stream (cells in expansion order, then aggregates) plus
// any provenance-drift notes. With cfg.ResultStore unset it is a plain
// in-memory harness run; with it set, the sweep becomes resumable
// exactly like `bpbench -resume` (the two share harness.ResumeStoreFile):
// cells the store already holds are reused, only the rest execute, and
// the new records — provenance-stamped — are appended. The returned
// stream is the merged view either way, so callers render identical
// reports from a fresh run, a partial resume, or a complete store;
// reused cells recorded under a different git SHA than HEAD surface as
// notes for the report rather than vanishing silently.
func runMatrix(m *harness.Matrix, cfg Config) (recs []harness.Record, notes []string, err error) {
	hcfg := harness.Config{Parallelism: cfg.Parallelism, IntraCellWorkers: cfg.IntraCellWorkers}
	if cfg.ResultStore == "" {
		if cfg.WarmCache {
			return nil, nil, fmt.Errorf("experiments: WarmCache caches checkpoints next to the result store; set ResultStore")
		}
		sum, err := harness.Run(m, hcfg, harness.Discard)
		if err != nil {
			return nil, nil, err
		}
		return sum.Records, nil, nil
	}
	jobs, err := m.Expand()
	if err != nil {
		return nil, nil, err
	}
	prov := harness.CurrentProvenance()
	hcfg.Provenance = &prov
	if cfg.WarmCache {
		hcfg.WarmCache = harness.WarmCacheDir(cfg.ResultStore)
	}
	sum, err := harness.ResumeStoreFile(cfg.ResultStore, jobs, hcfg, func(plan *harness.ResumePlan) error {
		if n := len(plan.ProvenanceDrift); n > 0 {
			notes = append(notes, fmt.Sprintf(
				"store %s: %d reused cells carry provenance that may not match HEAD (first: %s)",
				cfg.ResultStore, n, plan.ProvenanceDrift[0]))
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return append(append([]harness.Record(nil), sum.Merged...), harness.Aggregate(sum.Merged)...), notes, nil
}

// Row is one line of a report: a labelled paper-vs-measured pair.
type Row struct {
	Label    string
	Paper    string
	Measured string
}

// Report is the outcome of one experiment.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	// Checks records the shape assertions and whether they held.
	Checks []Check
	Notes  []string
}

// Check is a named boolean shape assertion.
type Check struct {
	Name string
	Pass bool
}

// Passed reports whether every shape check held.
func (r Report) Passed() bool {
	for _, c := range r.Checks {
		if !c.Pass {
			return false
		}
	}
	return true
}

func (r *Report) check(name string, pass bool) {
	r.Checks = append(r.Checks, Check{Name: name, Pass: pass})
}

func (r *Report) row(label, paper, format string, args ...any) {
	r.Rows = append(r.Rows, Row{Label: label, Paper: paper, Measured: fmt.Sprintf(format, args...)})
}

// SuiteRunner runs a freshly-constructed predictor over the whole suite.
type SuiteRunner func(cfg Config, opts sim.Options) *sim.Suite

// MakeRunner adapts a typed predictor constructor into a SuiteRunner. The
// constructor is invoked once per trace so every trace sees cold state;
// the sweep fans out on the harness worker pool (results stay in suite
// order, trace generation stays keyed to each spec's own seed, so suite
// values are identical at any parallelism).
func MakeRunner[C any](mk func() predictor.Predictor[C]) SuiteRunner {
	return func(cfg Config, opts sim.Options) *sim.Suite {
		cfg = cfg.withDefaults()
		specs := workload.All()
		results := harness.Map(len(specs), cfg.Parallelism, func(i int) sim.Result {
			tr := workload.Generate(specs[i], cfg.BranchesPerTrace)
			return sim.RunTrace(mk(), tr, opts)
		})
		s := &sim.Suite{}
		for _, r := range results {
			s.Add(r)
		}
		return s
	}
}

// --- predictor factories (the paper's configurations) ---

// GshareRunner is the 512 Kbit gshare of Section 4.1.
func GshareRunner() SuiteRunner {
	return MakeRunner(func() predictor.Predictor[gshare.Ctx] {
		return gshare.New(18)
	})
}

// GEHLRunner is the 520 Kbit GEHL of Section 4.1.
func GEHLRunner() SuiteRunner {
	return MakeRunner(func() predictor.Predictor[gehl.Ctx] {
		return gehl.New(gehl.Config{})
	})
}

// TAGERunner is the reference 512 Kbit TAGE of Section 3.4, optionally
// interleaved and with IUM.
func TAGERunner(interleaved, useIUM bool) SuiteRunner {
	return MakeRunner(func() predictor.Predictor[tage.Ctx] {
		cfg := tage.Reference()
		cfg.Interleaved = interleaved
		cfg.UseIUM = useIUM
		return tage.New(cfg)
	})
}

// ComposedRunner wraps a composed-stack configuration.
func ComposedRunner(mk func() composed.Config) SuiteRunner {
	return MakeRunner(func() predictor.Predictor[composed.Ctx] {
		return composed.New(mk())
	})
}

// scenarioSet runs one runner across the four update scenarii.
func scenarioSet(r SuiteRunner, cfg Config) map[predictor.Scenario]*sim.Suite {
	out := make(map[predictor.Scenario]*sim.Suite, 4)
	for _, sc := range []predictor.Scenario{
		predictor.ScenarioI, predictor.ScenarioA, predictor.ScenarioB, predictor.ScenarioC,
	} {
		out[sc] = r(cfg, cfg.simOptions(sc))
	}
	return out
}

func pct(delta, base float64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.1f%%", 100*delta/base)
}
