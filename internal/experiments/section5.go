package experiments

import (
	"repro/internal/composed"
	"repro/internal/predictor"
	"repro/internal/tage"
)

func tageIUMRunner() SuiteRunner {
	return ComposedRunner(func() composed.Config {
		return composed.TageIUM(tage.Reference(), "TAGE+IUM")
	})
}

func tageIUMLoopRunner() SuiteRunner {
	return ComposedRunner(func() composed.Config {
		cfg := composed.TageIUM(tage.Reference(), "TAGE+IUM+loop")
		cfg.UseLoop = true
		return cfg
	})
}

func islRunner() SuiteRunner {
	return ComposedRunner(func() composed.Config {
		return composed.ISLTAGE(tage.Reference(), "ISL-TAGE")
	})
}

// E5 reproduces Section 5.2: the loop predictor on top of TAGE+IUM.
// Paper: 611 -> 593 MPPKI, "approximately a 3% reduction of the
// performance loss".
func E5(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E5", Title: "Loop predictor on top of TAGE+IUM (§5.2)"}
	base := tageIUMRunner()(cfg, cfg.simOptions(predictor.ScenarioA))
	withLoop := tageIUMLoopRunner()(cfg, cfg.simOptions(predictor.ScenarioA))
	b, w := base.TotalMPPKI(), withLoop.TotalMPPKI()
	r.row("TAGE+IUM MPPKI", "611", "%.0f", b)
	r.row("TAGE+IUM+loop MPPKI", "593", "%.0f", w)
	r.row("reduction", "-3%", "%s", pct(w-b, b))
	r.check("loop predictor reduces MPPKI", w < b)
	r.check("reduction is modest (<15%)", w > b*0.85)
	return r
}

// E6 reproduces Section 5.3: the global Statistical Corrector on top of
// TAGE+IUM+loop. Paper: 593 -> 580 MPPKI ("approximately a 2% reduction").
func E6(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E6", Title: "Statistical Corrector on top of TAGE+IUM+loop (§5.3)"}
	base := tageIUMLoopRunner()(cfg, cfg.simOptions(predictor.ScenarioA))
	isl := islRunner()(cfg, cfg.simOptions(predictor.ScenarioA))
	b, w := base.TotalMPPKI(), isl.TotalMPPKI()
	r.row("TAGE+IUM+loop MPPKI", "593", "%.0f", b)
	r.row("ISL-TAGE (+SC) MPPKI", "580", "%.0f", w)
	r.row("reduction", "-2%", "%s", pct(w-b, b))
	r.check("SC reduces MPPKI", w < b)
	r.check("reduction is modest (<12%)", w > b*0.88)
	return r
}

// E7 reproduces Section 5.4: ISL-TAGE reduces the misprediction rate of
// the 512Kbit TAGE by ~6%, roughly what scaling TAGE to 2Mbits buys.
func E7(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E7", Title: "ISL-TAGE vs scaling TAGE to 2 Mbits (§5.4)"}
	opts := cfg.simOptions(predictor.ScenarioA)
	t512 := TAGERunner(false, false)(cfg, opts)
	isl := islRunner()(cfg, opts)
	t2m := MakeRunner(func() predictor.Predictor[tage.Ctx] {
		return tage.New(tage.Scale(tage.Reference(), 2))
	})(cfg, opts)
	a, b, c := t512.TotalMPPKI(), isl.TotalMPPKI(), t2m.TotalMPPKI()
	r.row("TAGE 512Kb MPPKI", "617", "%.0f", a)
	r.row("ISL-TAGE 512Kb MPPKI", "580", "%.0f", b)
	r.row("TAGE 2Mb MPPKI", "~580", "%.0f", c)
	r.row("ISL-TAGE gain over TAGE", "-6%", "%s", pct(b-a, a))
	r.check("ISL-TAGE beats same-size TAGE", b < a)
	r.check("side predictors worth roughly a 4x size scaling",
		b <= a && (c >= b*0.85 || b <= c*1.15))
	return r
}
