package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) Report
}

// Registry lists every experiment in the paper-order E1..E15.
func Registry() []Experiment {
	return []Experiment{
		{"E1", "Effective writes with silent-update elimination (§4.1.1)", E1},
		{"E2", "Delayed-update scenarii (§4.1.2)", E2},
		{"E3", "Bank-interleaved single-ported TAGE (§4.3)", E3},
		{"E4", "Immediate Update Mimicker (§5.1)", E4},
		{"E5", "Loop predictor on top of TAGE+IUM (§5.2)", E5},
		{"E6", "Statistical Corrector on top of TAGE+IUM+loop (§5.3)", E6},
		{"E7", "ISL-TAGE vs scaling TAGE to 2 Mbits (§5.4)", E7},
		{"E8", "Local Statistical Corrector (§6.1)", E8},
		{"E9", "512Kbit budget match: TAGE-LSC vs ISL-TAGE (§6.1)", E9},
		{"E10", "History series robustness of TAGE-LSC (§6.2)", E10},
		{"E11", "Figure 9: TAGE vs TAGE-LSC size scaling", E11},
		{"E12", "Figure 10: TAGE family vs neural predictors", E12},
		{"E13", "Interleaved TAGE-LSC (§7.1)", E13},
		{"E14", "Eliminating retire reads on TAGE-LSC (§7.2)", E14},
		{"E15", "Benchmark set characterisation (§2.2)", E15},
	}
}

// Lookup finds an experiment by id (case-insensitive).
func Lookup(id string) (Experiment, bool) {
	id = strings.ToUpper(strings.TrimSpace(id))
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// Render writes a report as aligned text.
func Render(w io.Writer, r Report) {
	fmt.Fprintf(w, "== %s: %s\n", r.ID, r.Title)
	width := 0
	for _, row := range r.Rows {
		if len(row.Label) > width {
			width = len(row.Label)
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-*s  paper=%-12s measured=%s\n", width, row.Label, row.Paper, row.Measured)
	}
	for _, c := range r.Checks {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "  [%s] %s\n", status, c.Name)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// RenderMarkdown writes a report as a markdown section with a table.
func RenderMarkdown(w io.Writer, r Report) {
	fmt.Fprintf(w, "### %s — %s\n\n", r.ID, r.Title)
	fmt.Fprintf(w, "| Quantity | Paper | Measured |\n|---|---|---|\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "| %s | %s | %s |\n", row.Label, row.Paper, row.Measured)
	}
	fmt.Fprintln(w)
	for _, c := range r.Checks {
		mark := "✅"
		if !c.Pass {
			mark = "❌"
		}
		fmt.Fprintf(w, "- %s %s\n", mark, c.Name)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "- _%s_\n", n)
	}
	fmt.Fprintln(w)
}

// SortChecks orders a report's checks by name (stable output for docs).
func SortChecks(r *Report) {
	sort.SliceStable(r.Checks, func(a, b int) bool { return r.Checks[a].Name < r.Checks[b].Name })
}
