package experiments

import (
	"repro/internal/cactimodel"
	"repro/internal/composed"
	"repro/internal/predictor"
	"repro/internal/workload"
)

func tageLSCInterleavedRunner() SuiteRunner {
	return ComposedRunner(func() composed.Config {
		tcfg := composed.Budget512K()
		tcfg.Interleaved = true
		c := composed.TAGELSC(tcfg, "TAGE-LSC-interleaved")
		c.LSC.Interleaved = true
		return c
	})
}

// E13 reproduces Section 7.1: the 512Kbit TAGE-LSC with 4-way interleaved
// single-ported tables (both global and local components). Paper: 569
// MPPKI vs 562 flat — a loss of a few MPPKI (3 local training + 2 TAGE
// interleaving + 2 size trimming) — and CACTI ratios of ~3.3x area and
// ~2x power.
func E13(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E13", Title: "Interleaved TAGE-LSC (§7.1)"}
	opts := cfg.simOptions(predictor.ScenarioA)
	flat := tageLSCRunner()(cfg, opts)
	inter := tageLSCInterleavedRunner()(cfg, opts)
	f, i := flat.TotalMPPKI(), inter.TotalMPPKI()
	r.row("TAGE-LSC flat MPPKI", "562", "%.0f", f)
	r.row("TAGE-LSC interleaved MPPKI", "569", "%.0f", i)
	r.row("interleaving cost", "+1.2%", "%s", pct(i-f, f))
	r.check("interleaving cost small (<5%)", i <= f*1.05 && i >= f*0.98)
	c := cactimodel.Compare(512 * 1024)
	r.row("area ratio 3-port/banked", "~3.3x", "%.2fx", c.AreaRatioMonoVsBanked)
	r.row("energy ratio 3-port/banked", "~2x", "%.2fx", c.EnergyRatioMonoVsBanked)
	r.check("area saving in band", c.AreaRatioMonoVsBanked > 2.9 && c.AreaRatioMonoVsBanked < 3.7)
	return r
}

// E14 reproduces Section 7.2: eliminating the retire-time read on correct
// predictions (scenario [C]) on the interleaved TAGE-LSC costs a few
// MPPKI (paper: 575, +2 on the TAGE side and +4 on the local side), while
// eliminating it completely (scenario [B]) costs much more (paper: 599,
// "not recommended").
func E14(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E14", Title: "Eliminating retire reads on TAGE-LSC (§7.2)"}
	runner := tageLSCInterleavedRunner()
	a := runner(cfg, cfg.simOptions(predictor.ScenarioA)).TotalMPPKI()
	c := runner(cfg, cfg.simOptions(predictor.ScenarioC)).TotalMPPKI()
	b := runner(cfg, cfg.simOptions(predictor.ScenarioB)).TotalMPPKI()
	r.row("interleaved TAGE-LSC [A] MPPKI", "569", "%.0f", a)
	r.row("interleaved TAGE-LSC [C] MPPKI", "575", "%.0f", c)
	r.row("interleaved TAGE-LSC [B] MPPKI", "599", "%.0f", b)
	r.row("[C] over [A]", "+1.1%", "%s", pct(c-a, a))
	r.row("[B] over [A]", "+5.3%", "%s", pct(b-a, a))
	r.check("[C] cost small", c >= a*0.98 && c <= a*1.06)
	r.check("[B] clearly worse than [C]", b > c)
	return r
}

// E15 reproduces the Section 2.2 benchmark-set characterisation: the 7
// hard traces carry the large majority of the suite's mispredictions on
// the reference predictor, each with a far higher misprediction rate than
// any of the other 33.
func E15(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E15", Title: "Benchmark set characterisation (§2.2)"}
	suite := tageIUMLoopRunner()(cfg, cfg.simOptions(predictor.ScenarioA))
	var hardMisp, totalMisp uint64
	var worstEasy, bestHard float64
	bestHard = 1e18
	for _, res := range suite.Results {
		totalMisp += res.Mispredicts
		if workload.HardNames[res.Trace] {
			hardMisp += res.Mispredicts
			if res.MPKI < bestHard {
				bestHard = res.MPKI
			}
		} else if res.MPKI > worstEasy {
			worstEasy = res.MPKI
		}
	}
	share := float64(hardMisp) / float64(totalMisp)
	r.row("hard-7 share of suite mispredictions", "~75%", "%.0f%%", 100*share)
	r.row("worst easy-trace MPKI", "low", "%.2f", worstEasy)
	r.row("best hard-trace MPKI", "high", "%.2f", bestHard)
	r.check("hard traces dominate (>50% of mispredictions)", share > 0.5)
	r.Notes = append(r.Notes,
		"the synthetic suite concentrates ~55-65% of mispredictions in the hard-7 versus ~75% in the CBP-3 set")
	return r
}
