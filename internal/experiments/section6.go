package experiments

import (
	"fmt"

	"repro/internal/composed"
	"repro/internal/ftlpp"
	"repro/internal/harness"
	"repro/internal/neural"
	"repro/internal/predictor"
	"repro/internal/sim"
	"repro/internal/tage"
	"repro/internal/trace"
	"repro/internal/workload"
)

func tageLSCRunner() SuiteRunner {
	return ComposedRunner(func() composed.Config {
		return composed.TAGELSC(composed.Budget512K(), "TAGE-LSC")
	})
}

func fullStackRunner() SuiteRunner {
	return ComposedRunner(func() composed.Config {
		return composed.FullStack(tage.Reference(), "TAGE+IUM+loop+SC+LSC")
	})
}

// E8 reproduces Section 6.1: the LSC on top of the full stack reaches 555
// MPPKI; the LSC *alone* on TAGE+IUM reaches 559, i.e. it captures most
// of what the loop predictor and the global SC capture; useful reverts
// exceed 70%.
func E8(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E8", Title: "Local Statistical Corrector (§6.1)"}
	opts := cfg.simOptions(predictor.ScenarioA)
	base := tageIUMRunner()(cfg, opts)
	isl := islRunner()(cfg, opts)
	full := fullStackRunner()(cfg, opts)
	lscOnly := ComposedRunner(func() composed.Config {
		return composed.TAGELSC(tage.Reference(), "TAGE+IUM+LSC")
	})(cfg, opts)
	b := base.TotalMPPKI()
	i := isl.TotalMPPKI()
	f := full.TotalMPPKI()
	lo := lscOnly.TotalMPPKI()
	r.row("TAGE+IUM MPPKI", "611", "%.0f", b)
	r.row("ISL-TAGE (loop+SC) MPPKI", "580", "%.0f", i)
	r.row("full stack +LSC MPPKI", "555", "%.0f", f)
	r.row("TAGE+IUM+LSC only MPPKI", "559", "%.0f", lo)
	r.row("LSC-only gain over TAGE+IUM", ">8%", "%s", pct(lo-b, b))
	r.check("full stack beats ISL-TAGE", f < i)
	r.check("LSC alone beats loop+SC (subsumption)", lo < i)
	r.check("LSC alone close to full stack (within 6%)", lo <= f*1.06)

	// Revert usefulness, measured on one representative trace.
	p := composed.New(composed.TAGELSC(tage.Reference(), "probe"))
	tr := workload.Generate(mustFind("WS03"), cfg.BranchesPerTrace)
	sim.RunTrace[composed.Ctx](p, tr, opts)
	rate := p.LSC().RevertSuccessRate()
	r.row("LSC revert success rate (WS03)", ">70%", "%.0f%%", 100*rate)
	r.check("reverts are profitable (>50% correct)", rate > 0.5)
	return r
}

func mustFind(name string) workload.Spec {
	s, ok := workload.Find(name)
	if !ok {
		panic("unknown benchmark " + name)
	}
	return s
}

// E9 reproduces the Section 6.1 budget-matched comparison at 512 Kbits:
// TAGE-LSC 562 vs a same-structure ISL-TAGE 581 (the CBP-3 ISL-TAGE with
// its extra tricks reached 568).
func E9(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E9", Title: "512Kbit budget match: TAGE-LSC vs ISL-TAGE (§6.1)"}
	opts := cfg.simOptions(predictor.ScenarioA)
	tagelsc := tageLSCRunner()(cfg, opts)
	islSame := ComposedRunner(func() composed.Config {
		c := composed.ISLTAGE(composed.Budget512K(), "ISL-TAGE-512K")
		// "5 tables GEHL-like predictor for Statistical Corrector".
		c.SC.Lengths = []int{0, 4, 10, 17, 31}
		return c
	})(cfg, opts)
	a, b := tagelsc.TotalMPPKI(), islSame.TotalMPPKI()
	r.row("TAGE-LSC 512Kb MPPKI", "562", "%.0f", a)
	r.row("ISL-TAGE 512Kb (same structure) MPPKI", "581", "%.0f", b)
	r.row("TAGE-LSC advantage", "-3.3%", "%s", pct(a-b, b))
	r.check("TAGE-LSC beats same-budget ISL-TAGE", a < b)
	r.Notes = append(r.Notes,
		"the CBP-3 ISL-TAGE entry (568 MPPKI) used sharing/interleaving tricks we do not model")
	return r
}

// tageConfigFor builds ~512Kbit TAGE configs with a given tagged-table
// count and history series (the Section 6.2 robustness sweep).
func tageConfigFor(nTagged, minHist, maxHist int, name string) tage.Config {
	logs := make([]uint, nTagged)
	tags := make([]uint, nTagged)
	for i := range logs {
		switch {
		case nTagged >= 12: // reference-like ladder
			ref := tage.Reference()
			copy(logs, ref.TableLogs)
			copy(tags, ref.TagBits)
		case nTagged >= 8:
			logs[i] = 12
		default:
			if i == 0 {
				logs[i] = 12
			} else {
				logs[i] = 13
			}
		}
		if nTagged < 12 {
			t := uint(5 + i + 1)
			if t > 15 {
				t = 15
			}
			tags[i] = t
		}
	}
	return tage.Config{
		Name: name, TableLogs: logs, TagBits: tags,
		MinHist: minHist, MaxHist: maxHist,
	}
}

// E10 reproduces Section 6.2: TAGE-LSC robustness to the history series
// and the number of tables. Paper: (6,2000) base 562; (3,300) 575;
// (4,1000) 563; (8,5000) 563; 9-component (6,1000) 566; 6-component
// (6,500) 583.
func E10(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E10", Title: "History series robustness of TAGE-LSC (§6.2)"}
	opts := cfg.simOptions(predictor.ScenarioA)
	type variant struct {
		label   string
		paper   string
		nTagged int
		min     int
		max     int
	}
	variants := []variant{
		{"13-comp (6,2000) [base]", "562", 12, 6, 2000},
		{"13-comp (3,300)", "575", 12, 3, 300},
		{"13-comp (4,1000)", "563", 12, 4, 1000},
		{"13-comp (8,5000)", "563", 12, 8, 5000},
		{"9-comp (6,1000)", "566", 8, 6, 1000},
		{"6-comp (6,500)", "583", 5, 6, 500},
	}
	var baseV float64
	var worst float64
	for i, v := range variants {
		v := v
		runner := ComposedRunner(func() composed.Config {
			tcfg := tageConfigFor(v.nTagged, v.min, v.max, v.label)
			if v.nTagged >= 12 {
				tcfg = composed.Budget512K()
				tcfg.MinHist, tcfg.MaxHist = v.min, v.max
				tcfg.Name = v.label
			}
			return composed.TAGELSC(tcfg, v.label)
		})
		m := runner(cfg, opts).TotalMPPKI()
		r.row(v.label+" MPPKI", v.paper, "%.0f", m)
		if i == 0 {
			baseV = m
		}
		if m > worst {
			worst = m
		}
	}
	r.check("robust to history series and table count (worst within 12% of base)",
		worst <= baseV*1.12)
	return r
}

// scalableModel adapts a per-deltaLog predictor constructor into a
// harness model with the Figure 9 budget-scaling hook: the base model is
// the deltaLog-0 variant, and every variant reports its actual storage
// budget.
func scalableModel[C any](name string, mk func(d int) func() predictor.Predictor[C]) harness.Model {
	scale := func(d int) harness.Model {
		return harness.Model{
			StorageBits: mk(d)().StorageBits(),
			Run: func(tr *trace.Trace, opt sim.Options) sim.Result {
				return sim.RunTrace(mk(d)(), tr, opt)
			},
			NewRunner: func() func(tr *trace.Trace, opt sim.Options) sim.Result {
				p := mk(d)()
				var rn sim.Runner[C]
				dirty := false
				return func(tr *trace.Trace, opt sim.Options) sim.Result {
					if dirty {
						p.Reset()
					}
					dirty = true
					return rn.RunTrace(p, tr, opt)
				}
			},
		}
	}
	m := scale(0)
	m.Name = name
	// The identifier is the canonical model spec for these two (the same
	// ones `bpbench -models` resolves), so experiment store records are
	// spec-validated exactly like bpbench's; the harness stamps scaled
	// variants with the rescaled spec.
	m.Spec = name
	m.Scale = scale
	return m
}

// ScalableTAGEModel is the reference TAGE as a harness model with the
// Figure 9 budget-scaling hook; deltaLog 0 is the 512Kbit reference.
func ScalableTAGEModel() harness.Model {
	return scalableModel("tage", func(d int) func() predictor.Predictor[tage.Ctx] {
		return func() predictor.Predictor[tage.Ctx] {
			return tage.New(tage.Scale(tage.Reference(), d))
		}
	})
}

// ScalableTAGELSCModel is TAGE-LSC as a harness model with the budget
// hook scaling its TAGE component (the Figure 9 protocol).
func ScalableTAGELSCModel() harness.Model {
	return scalableModel("tage-lsc", func(d int) func() predictor.Predictor[composed.Ctx] {
		return func() predictor.Predictor[composed.Ctx] {
			return composed.New(composed.TAGELSC(
				tage.Scale(composed.Budget512K(), d), fmt.Sprintf("TAGE-LSC%+d", d)))
		}
	})
}

// E11 reproduces Figure 9: TAGE vs TAGE-LSC, 128Kbit to 32Mbit, scaling
// all components by powers of two. Shape targets: TAGE-LSC performs as a
// 4-8x larger TAGE in the 128-512Kbit range; both curves plateau by
// 16-32Mbit; CLIENT02's misprediction rate collapses only at multi-Mbit
// budgets. The whole grid runs as one harness matrix with a DeltaLogs
// axis — the same sweep `bpbench -models tage,tage-lsc -delta -2:6`
// performs — instead of a private per-budget loop.
func E11(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E11", Title: "Figure 9: TAGE vs TAGE-LSC size scaling"}
	deltas := []int{-2, -1, 0, 1, 2, 3, 4, 5, 6} // 128Kb .. 32Mb
	m := &harness.Matrix{
		Models:    []harness.Model{ScalableTAGEModel(), ScalableTAGELSCModel()},
		Traces:    workload.All(),
		Scenarios: []predictor.Scenario{predictor.ScenarioA},
		Lengths:   []int{cfg.BranchesPerTrace},
		DeltaLogs: deltas,
		Window:    cfg.Window,
		ExecDelay: cfg.ExecDelay,
	}
	recs, storeNotes, err := runMatrix(m, cfg)
	if err != nil {
		r.check("harness sweep ran", false)
		r.Notes = append(r.Notes, "sweep failed: "+err.Error())
		return r
	}
	r.Notes = append(r.Notes, storeNotes...)
	tageM := map[int]float64{}
	lscM := map[int]float64{}
	client02 := map[int]float64{}
	suites := map[string]float64{}
	for _, rec := range recs {
		switch rec.Kind {
		case harness.KindSuite:
			suites[rec.Model] = rec.MPPKISum
		case harness.KindCell:
			if rec.Trace == "CLIENT02" && rec.Model == harness.ScaledName("tage-lsc", rec.DeltaLog) {
				client02[rec.DeltaLog] = rec.MPPKI
			}
		}
	}
	for _, d := range deltas {
		tageM[d] = suites[harness.ScaledName("tage", d)]
		lscM[d] = suites[harness.ScaledName("tage-lsc", d)]
		size := 512
		if d >= 0 {
			size <<= uint(d)
		} else {
			size >>= uint(-d)
		}
		label := fmt.Sprintf("%dKb", size)
		if size >= 1024 {
			label = fmt.Sprintf("%dMb", size/1024)
		}
		r.row("TAGE "+label, figure9Paper(d, false), "%.0f", tageM[d])
		r.row("TAGE-LSC "+label, figure9Paper(d, true), "%.0f", lscM[d])
	}
	// Monotone improvement with size (within noise).
	mono := true
	for i := 1; i < len(deltas); i++ {
		if tageM[deltas[i]] > tageM[deltas[i-1]]*1.03 {
			mono = false
		}
	}
	r.check("TAGE curve decreasing with size", mono)
	r.check("TAGE-LSC below TAGE at every size in 128K-2M",
		lscM[-2] < tageM[-2] && lscM[-1] < tageM[-1] && lscM[0] < tageM[0] && lscM[2] < tageM[2])
	// TAGE-LSC at 512Kb should be at least as good as TAGE at 2Mb (4x).
	r.check("TAGE-LSC ~ 4x larger TAGE in the implementation range",
		lscM[0] <= tageM[2]*1.03)
	plateau := (tageM[5] - tageM[6]) / tageM[5]
	r.row("TAGE 16M->32M improvement", "~0 (plateau)", "%.1f%%", 100*plateau)
	r.check("plateau at 16-32Mb (<4% improvement left)", plateau < 0.04)
	r.row("CLIENT02 MPPKI 512Kb", "high", "%.0f", client02[0])
	r.row("CLIENT02 MPPKI 8Mb", "collapsed", "%.0f", client02[4])
	r.check("CLIENT02 improves sharply at multi-Mbit budgets", client02[4] < client02[0]*0.8)
	r.Notes = append(r.Notes,
		"CLIENT02's capacity cliff deepens with trace length (each zoo mapping needs several sightings to train); the paper's full-length traces show a sharper collapse")
	return r
}

func figure9Paper(d int, isLSC bool) string {
	// Approximate values read off Figure 9 for reference.
	tage := map[int]string{-2: "~680", -1: "~650", 0: "~617", 1: "~595", 2: "~580", 3: "~565", 4: "~550", 5: "~540", 6: "~537"}
	lsc := map[int]string{-2: "~620", -1: "~590", 0: "~562", 1: "~545", 2: "~530", 3: "~515", 4: "~505", 5: "~498", 6: "~495"}
	if isLSC {
		return lsc[d]
	}
	return tage[d]
}

// E12 reproduces Figure 10 and Section 6.3: ISL-TAGE and TAGE-LSC against
// the neural-based FTL++ and OH-SNAP. Paper: on the 33 most predictable
// traces ISL 196, LSC 198, FTL++ 232, OH-SNAP 254; on the 7 hardest ISL
// 2311, LSC 2287, OH-SNAP 2227, FTL++ 2222 — the neural predictors win on
// the hard subset, lose clearly on the easy one.
func E12(cfg Config) Report {
	cfg = cfg.withDefaults()
	r := Report{ID: "E12", Title: "Figure 10: TAGE family vs neural predictors"}
	opts := cfg.simOptions(predictor.ScenarioA)
	runners := []struct {
		name      string
		runner    SuiteRunner
		paperEasy string
		paperHard string
	}{
		{"ISL-TAGE", islRunner(), "196", "2311"},
		{"TAGE-LSC", tageLSCRunner(), "198", "2287"},
		{"OH-SNAP", MakeRunner(func() predictor.Predictor[neural.Ctx] {
			return neural.New(neural.Config{})
		}), "254", "2227"},
		{"FTL++", MakeRunner(func() predictor.Predictor[ftlpp.Ctx] {
			return ftlpp.New(ftlpp.Config{})
		}), "232", "2222"},
	}
	easy := map[string]float64{}
	hard := map[string]float64{}
	for _, e := range runners {
		suite := e.runner(cfg, opts)
		h := suite.Subset(workload.HardNames)
		easyNames := map[string]bool{}
		for _, res := range suite.Results {
			if !workload.HardNames[res.Trace] {
				easyNames[res.Trace] = true
			}
		}
		ez := suite.Subset(easyNames)
		easy[e.name] = ez.TotalMPPKI()
		hard[e.name] = h.TotalMPPKI()
		r.row(e.name+" 33 easy MPPKI", e.paperEasy, "%.0f", easy[e.name])
		r.row(e.name+" 7 hard MPPKI", e.paperHard, "%.0f", hard[e.name])
	}
	r.check("TAGE-LSC clearly better than the neural predictors on the 33 easy traces",
		easy["TAGE-LSC"] < easy["OH-SNAP"]*0.85 && easy["TAGE-LSC"] < easy["FTL++"]*0.85)
	// The Figure 10 crossover, stated scale-independently: each neural
	// predictor closes (or reverses) its easy-trace deficit on the hard
	// subset, because majority/copy behaviours are linearly separable.
	crossover := func(name string) bool {
		hardRatio := hard[name] / hard["TAGE-LSC"]
		easyRatio := easy[name] / easy["TAGE-LSC"]
		return hardRatio < easyRatio*0.75
	}
	r.check("OH-SNAP closes its gap on the 7 hard traces", crossover("OH-SNAP"))
	r.check("FTL++ closes its gap on the 7 hard traces", crossover("FTL++"))
	r.Notes = append(r.Notes,
		"our synthetic easy traces are richer in local-only patterns than CBP-3, which penalises ISL-TAGE (no local component) relative to the paper's near-tie with TAGE-LSC")
	return r
}
