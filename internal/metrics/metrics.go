// Package metrics is a dependency-free, concurrency-safe telemetry
// registry: counters, gauges and fixed-bucket histograms, with labelled
// (vector) variants, a callback gauge for derived rates, a deterministic
// Snapshot for tests and display layers, and a Prometheus text-exposition
// writer (see expose.go) for scrapers.
//
// It exists so the harness can export operational telemetry — jobs in
// flight, branches/sec, store append rates — without pulling an external
// client library into the module. The design follows the Prometheus data
// model closely enough that /metrics output scrapes cleanly.
//
// A nil *Registry is a first-class no-op: every Registry method on a nil
// receiver returns a nil handle, and every handle method on a nil
// receiver does nothing. Code can therefore be instrumented
// unconditionally and pay one predictable nil check when telemetry is
// off — the property that keeps the simulator hot path at 0
// allocs/branch whether or not a registry is attached.
//
// Registration is idempotent: asking for an existing family with the
// same schema (type, label names, buckets) returns the existing one, so
// layers resolve their handles independently without coordination.
// Re-registering a name with a different schema panics — that is a
// programming error, not an operational condition.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// --- handles ---

// Counter is a monotonically increasing event count. All methods are
// safe for concurrent use and on a nil receiver (no-op).
type Counter struct{ n atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.n.Add(n)
	}
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a value that can go up and down. All methods are safe for
// concurrent use and on a nil receiver (no-op).
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta (atomically, via CAS).
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (cumulative
// less-than-or-equal semantics on export, like Prometheus). All methods
// are safe for concurrent use and on a nil receiver (no-op).
type Histogram struct {
	upper  []float64 // ascending bucket upper bounds; +Inf is implicit
	counts []atomic.Uint64
	sum    Gauge
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// First bucket whose upper bound is >= v; everything past the last
	// declared bound lands in the implicit +Inf bucket.
	h.counts[sort.SearchFloat64s(h.upper, v)].Add(1)
	h.n.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// --- labelled (vector) variants ---

// CounterVec is a counter family partitioned by label values.
type CounterVec struct{ f *family }

// With returns the child counter for the given label values (in the
// label-name order the family was registered with). Nil receiver
// returns a nil (no-op) counter.
func (v *CounterVec) With(labelValues ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Counter)
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct{ f *family }

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Gauge)
}

// HistogramVec is a histogram family partitioned by label values.
type HistogramVec struct{ f *family }

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.f.child(labelValues).(*Histogram)
}

// --- registry ---

// Registry holds metric families by name. The zero value is not usable;
// construct with NewRegistry. A nil *Registry is the canonical "telemetry
// off" value: all methods no-op and return nil handles.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// family is one named metric family: fixed schema, lazily-created
// children per label-value combination.
type family struct {
	name, help string
	typ        string // "counter", "gauge", "histogram", "gaugefunc"
	labels     []string
	buckets    []float64
	make       func() any

	mu       sync.RWMutex
	children map[string]any
	fn       func() float64 // gaugefunc callback, replaceable
}

// labelSep joins label values into a child key; it cannot appear in
// reasonable label values (it is not valid UTF-8 on its own).
const labelSep = "\xff"

func (f *family) child(labelValues []string) any {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s has labels %v, got %d value(s)", f.name, f.labels, len(labelValues)))
	}
	key := strings.Join(labelValues, labelSep)
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c = f.make()
	f.children[key] = c
	return c
}

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

func (r *Registry) family(name, help, typ string, labels []string, buckets []float64, mk func() any) *family {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !nameRE.MatchString(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || !stringsEqual(f.labels, labels) || !floatsEqual(f.buckets, buckets) {
			panic(fmt.Sprintf("metrics: %s re-registered with a different schema (have %s%v, want %s%v)",
				name, f.typ, f.labels, typ, labels))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels, buckets: buckets, make: mk, children: make(map[string]any)}
	r.families[name] = f
	return f
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "counter", nil, nil, func() any { return &Counter{} })
	return f.child(nil).(*Counter)
}

// CounterVec registers (or returns) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{f: r.family(name, help, "counter", labelNames, nil, func() any { return &Counter{} })}
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	f := r.family(name, help, "gauge", nil, nil, func() any { return &Gauge{} })
	return f.child(nil).(*Gauge)
}

// GaugeVec registers (or returns) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{f: r.family(name, help, "gauge", labelNames, nil, func() any { return &Gauge{} })}
}

// Histogram registers (or returns) an unlabelled fixed-bucket histogram.
// buckets are the ascending upper bounds; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	b := checkBuckets(name, buckets)
	f := r.family(name, help, "histogram", nil, b, func() any { return newHistogram(b) })
	return f.child(nil).(*Histogram)
}

// HistogramVec registers (or returns) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	b := checkBuckets(name, buckets)
	return &HistogramVec{f: r.family(name, help, "histogram", labelNames, b, func() any { return newHistogram(b) })}
}

// GaugeFunc registers a gauge whose value is computed by fn at snapshot
// time — the shape for derived rates (branches/sec over a run). Unlike
// the other kinds, re-registering a gauge func replaces the callback:
// each run re-anchors its rate computation without a registry reset. fn
// must not call back into the registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	f := r.family(name, help, "gaugefunc", nil, nil, func() any { return nil })
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{upper: buckets, counts: make([]atomic.Uint64, len(buckets)+1)}
}

func checkBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %s has no buckets", name))
	}
	b := append([]float64(nil), buckets...)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("metrics: histogram %s buckets not strictly ascending at %v", name, b[i]))
		}
	}
	if math.IsInf(b[len(b)-1], +1) {
		b = b[:len(b)-1] // +Inf is implicit
	}
	return b
}

// ExpBuckets returns count exponentially spaced bucket upper bounds
// starting at start and multiplying by factor — the latency/size bucket
// idiom. Panics on non-positive start, factor <= 1, or count < 1.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic(fmt.Sprintf("metrics: bad ExpBuckets(%v, %v, %d)", start, factor, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// --- snapshot ---

// Snapshot is a deterministic point-in-time copy of a registry:
// families sorted by name, samples sorted by label values. Two
// snapshots of registries populated identically render identically —
// the property golden tests and the progress reporter rely on.
type Snapshot struct {
	Families []Family
}

// Family is one metric family in a snapshot.
type Family struct {
	Name, Help string
	// Type is the exposition type: "counter", "gauge" or "histogram"
	// (callback gauges report as "gauge").
	Type       string
	LabelNames []string
	Samples    []Sample
}

// Sample is one labelled point of a family.
type Sample struct {
	// LabelValues align with the family's LabelNames.
	LabelValues []string
	// Value is the counter count or gauge value (unused for histograms).
	Value float64
	// Buckets are the cumulative bucket counts (histograms only); the
	// final bucket's Upper is +Inf and its Count equals Count.
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Bucket is one cumulative histogram bucket: the count of observations
// <= Upper.
type Bucket struct {
	Upper float64
	Count uint64
}

// Snapshot captures the registry's current state. Safe for concurrent
// use with writers; a nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var s Snapshot
	for _, f := range fams {
		s.Families = append(s.Families, f.snapshot())
	}
	return s
}

func (f *family) snapshot() Family {
	typ := f.typ
	if typ == "gaugefunc" {
		typ = "gauge"
	}
	out := Family{Name: f.name, Help: f.help, Type: typ, LabelNames: f.labels}

	if f.typ == "gaugefunc" {
		f.mu.RLock()
		fn := f.fn
		f.mu.RUnlock()
		v := 0.0
		if fn != nil {
			v = fn()
		}
		out.Samples = []Sample{{Value: v}}
		return out
	}

	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		smp := Sample{}
		if len(f.labels) > 0 {
			smp.LabelValues = strings.Split(k, labelSep)
		}
		switch c := f.children[k].(type) {
		case *Counter:
			smp.Value = float64(c.Value())
		case *Gauge:
			smp.Value = c.Value()
		case *Histogram:
			cum := uint64(0)
			for i := range c.counts {
				cum += c.counts[i].Load()
				upper := math.Inf(+1)
				if i < len(c.upper) {
					upper = c.upper[i]
				}
				smp.Buckets = append(smp.Buckets, Bucket{Upper: upper, Count: cum})
			}
			smp.Sum = c.Sum()
			smp.Count = cum
		}
		out.Samples = append(out.Samples, smp)
	}
	f.mu.RUnlock()
	return out
}

// Family returns the named family of the snapshot.
func (s Snapshot) Family(name string) (Family, bool) {
	for _, f := range s.Families {
		if f.Name == name {
			return f, true
		}
	}
	return Family{}, false
}

// Value sums a family's sample values across label combinations
// (counters and gauges; histograms contribute their Sum). Missing
// families are 0 — absent telemetry reads as "nothing happened yet".
func (s Snapshot) Value(name string) float64 {
	f, ok := s.Family(name)
	if !ok {
		return 0
	}
	total := 0.0
	for _, smp := range f.Samples {
		if f.Type == "histogram" {
			total += smp.Sum
		} else {
			total += smp.Value
		}
	}
	return total
}

// Sample returns the family sample with exactly the given label values.
func (s Snapshot) Sample(name string, labelValues ...string) (Sample, bool) {
	f, ok := s.Family(name)
	if !ok {
		return Sample{}, false
	}
	for _, smp := range f.Samples {
		if stringsEqual(smp.LabelValues, labelValues) {
			return smp, true
		}
	}
	return Sample{}, false
}

func stringsEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
