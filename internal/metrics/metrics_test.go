package metrics

import (
	"io"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// --- nil no-op contract ---

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter Value = %d", c.Value())
	}
	g := r.Gauge("x", "")
	g.Set(3)
	g.Inc()
	g.Dec()
	g.Add(2)
	if g.Value() != 0 {
		t.Fatalf("nil gauge Value = %v", g.Value())
	}
	h := r.Histogram("x_seconds", "", []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram Count=%d Sum=%v", h.Count(), h.Sum())
	}
	cv := r.CounterVec("x_by_total", "", "k")
	cv.With("a").Inc()
	gv := r.GaugeVec("x_by", "", "k")
	gv.With("a").Set(1)
	hv := r.HistogramVec("x_by_seconds", "", []float64{1}, "k")
	hv.With("a").Observe(1)
	r.GaugeFunc("x_fn", "", func() float64 { return 42 })
	s := r.Snapshot()
	if len(s.Families) != 0 {
		t.Fatalf("nil registry snapshot has %d families", len(s.Families))
	}
	if err := r.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

// --- basic semantics ---

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "jobs")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	// Idempotent registration returns the same child.
	if r.Counter("jobs_total", "jobs") != c {
		t.Fatal("re-registration returned a different counter")
	}

	g := r.Gauge("depth", "")
	g.Set(4)
	g.Add(1.5)
	g.Dec()
	if g.Value() != 4.5 {
		t.Fatalf("gauge = %v, want 4.5", g.Value())
	}

	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
	smp, ok := r.Snapshot().Sample("lat_seconds")
	if !ok {
		t.Fatal("lat_seconds sample missing")
	}
	wantCum := []uint64{1, 3, 4, 5} // <=0.1, <=1, <=10, +Inf
	for i, b := range smp.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
}

func TestVecChildren(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("jobs_total", "", "result")
	v.With("ok").Add(3)
	v.With("fail").Inc()
	v.With("ok").Inc()
	s := r.Snapshot()
	if smp, _ := s.Sample("jobs_total", "ok"); smp.Value != 4 {
		t.Fatalf("ok child = %v, want 4", smp.Value)
	}
	if smp, _ := s.Sample("jobs_total", "fail"); smp.Value != 1 {
		t.Fatalf("fail child = %v, want 1", smp.Value)
	}
	if got := s.Value("jobs_total"); got != 5 {
		t.Fatalf("summed value = %v, want 5", got)
	}
}

func TestGaugeFuncReplaceable(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("rate", "", func() float64 { return 1 })
	if got := r.Snapshot().Value("rate"); got != 1 {
		t.Fatalf("rate = %v, want 1", got)
	}
	// Re-registration replaces the callback (per-run re-anchor).
	r.GaugeFunc("rate", "", func() float64 { return 2 })
	if got := r.Snapshot().Value("rate"); got != 2 {
		t.Fatalf("rate after replace = %v, want 2", got)
	}
}

func TestSchemaMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(r *Registry){
		"type":    func(r *Registry) { r.Gauge("m", "") },
		"labels":  func(r *Registry) { r.CounterVec("m", "", "k") },
		"buckets": func(r *Registry) { r.Histogram("h", "", []float64{1, 2}) },
	} {
		t.Run(name, func(t *testing.T) {
			r := NewRegistry()
			r.Counter("m", "")
			r.Histogram("h", "", []float64{1})
			defer func() {
				if recover() == nil {
					t.Fatal("schema mismatch did not panic")
				}
			}()
			f(r)
		})
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, fn := range []func(){
		func() { r.Counter("bad name", "") },
		func() { r.Counter("0leading", "") },
		func() { r.CounterVec("ok_total", "", "bad label") },
		func() { r.CounterVec("ok2_total", "", "__reserved") },
		func() { r.Histogram("h_total", "", nil) },
		func() { r.Histogram("h2_total", "", []float64{2, 1}) },
		func() { ExpBuckets(0, 2, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 4, 4)
	want := []float64{1, 4, 16, 64}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

// --- deterministic snapshot / golden exposition ---

func populate(r *Registry) {
	r.Counter("bp_branches_total", "Branches simulated.").Add(1000)
	v := r.CounterVec("bp_jobs_total", "Jobs by result.", "result")
	v.With("succeeded").Add(7)
	v.With("failed").Inc()
	r.Gauge("bp_in_flight", "Jobs in flight.").Set(3)
	h := r.Histogram("bp_job_seconds", "Job latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.GaugeFunc("bp_rate", "Derived rate.", func() float64 { return 12.5 })
}

const golden = `# HELP bp_branches_total Branches simulated.
# TYPE bp_branches_total counter
bp_branches_total 1000
# HELP bp_in_flight Jobs in flight.
# TYPE bp_in_flight gauge
bp_in_flight 3
# HELP bp_job_seconds Job latency.
# TYPE bp_job_seconds histogram
bp_job_seconds_bucket{le="0.1"} 1
bp_job_seconds_bucket{le="1"} 2
bp_job_seconds_bucket{le="+Inf"} 3
bp_job_seconds_sum 5.55
bp_job_seconds_count 3
# HELP bp_jobs_total Jobs by result.
# TYPE bp_jobs_total counter
bp_jobs_total{result="failed"} 1
bp_jobs_total{result="succeeded"} 7
# HELP bp_rate Derived rate.
# TYPE bp_rate gauge
bp_rate 12.5
`

func TestGoldenExposition(t *testing.T) {
	// Two independently populated registries must render byte-identically
	// — families sorted by name, samples by label value.
	for i := 0; i < 2; i++ {
		r := NewRegistry()
		populate(r)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		if sb.String() != golden {
			t.Fatalf("exposition mismatch (run %d):\n--- got ---\n%s--- want ---\n%s", i, sb.String(), golden)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "k").With("a\\b\"c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{k="a\\b\"c\nd"} 1` + "\n"
	if !strings.Contains(sb.String(), want) {
		t.Fatalf("escaped label missing:\n%s\nwant line: %s", sb.String(), want)
	}
}

// --- httptest scrape ---

// sampleLine matches a valid exposition sample line (name, optional
// label block, value).
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (-?[0-9.e+-]+|\+Inf|-Inf|NaN)$`)

func TestHandlerScrape(t *testing.T) {
	r := NewRegistry()
	populate(r)
	srv := httptest.NewServer(Handler(r))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// Every line must be a comment or a well-formed sample; every TYPE
	// must be a legal exposition type; histograms must carry a +Inf
	// bucket whose count equals _count.
	types := map[string]string{}
	samples := 0
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("illegal type %q in %q", parts[3], line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("scrape produced no samples")
	}
	if types["bp_jobs_total"] != "counter" || types["bp_job_seconds"] != "histogram" || types["bp_rate"] != "gauge" {
		t.Fatalf("unexpected types: %v", types)
	}
	if !strings.Contains(string(body), `bp_job_seconds_bucket{le="+Inf"} 3`) {
		t.Fatal("missing +Inf bucket")
	}
}

// --- concurrency hammer (meaningful under -race) ---

func TestConcurrencyHammer(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			// Every goroutine races registration and updates on the same
			// names, plus snapshots/scrapes interleaved with writes.
			c := r.Counter("hammer_total", "")
			gv := r.GaugeVec("hammer_gauge", "", "w")
			h := r.Histogram("hammer_seconds", "", ExpBuckets(0.001, 4, 6))
			lbl := string(rune('a' + g%4))
			for i := 0; i < iters; i++ {
				c.Inc()
				gv.With(lbl).Add(1)
				h.Observe(float64(i%100) / 1000)
				if i%500 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(io.Discard)
				}
				if i%250 == 0 {
					r.GaugeFunc("hammer_rate", "", func() float64 { return float64(i) })
				}
			}
		}(g)
	}
	close(start)
	wg.Wait()

	s := r.Snapshot()
	if got := s.Value("hammer_total"); got != goroutines*iters {
		t.Fatalf("hammer_total = %v, want %d", got, goroutines*iters)
	}
	if got := s.Value("hammer_gauge"); got != goroutines*iters {
		t.Fatalf("hammer_gauge sum = %v, want %d", got, goroutines*iters)
	}
	smp, _ := s.Sample("hammer_seconds")
	if smp.Count != goroutines*iters {
		t.Fatalf("hammer_seconds count = %d, want %d", smp.Count, goroutines*iters)
	}
	if last := smp.Buckets[len(smp.Buckets)-1]; last.Count != smp.Count {
		t.Fatalf("+Inf bucket %d != count %d", last.Count, smp.Count)
	}
}
