package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4): what a scraper
// reads off /metrics. The output is rendered from a Snapshot, so it is
// deterministic for a given registry state and shares its source of
// truth with the progress reporter.

// WritePrometheus renders the registry in Prometheus text exposition
// format. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WriteSnapshot(w, r.Snapshot())
}

// WriteSnapshot renders an already-captured snapshot in Prometheus text
// exposition format.
func WriteSnapshot(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	for _, f := range s.Families {
		if f.Help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.Name, escapeHelp(f.Help))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.Name, f.Type)
		for _, smp := range f.Samples {
			if f.Type == "histogram" {
				prefix := labelPairs(f.LabelNames, smp.LabelValues)
				for _, b := range smp.Buckets {
					fmt.Fprintf(bw, "%s_bucket{%sle=\"%s\"} %d\n", f.Name, prefix, formatUpper(b.Upper), b.Count)
				}
				fmt.Fprintf(bw, "%s_sum%s %s\n", f.Name, labelBlock(prefix), formatValue(smp.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", f.Name, labelBlock(prefix), smp.Count)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.Name, labelBlock(labelPairs(f.LabelNames, smp.LabelValues)), formatValue(smp.Value))
		}
	}
	return bw.Flush()
}

// labelPairs renders `k="v",` pairs with a trailing comma — the form a
// histogram bucket line prepends to its own le label. Empty for
// unlabelled samples.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, n := range names {
		v := ""
		if i < len(values) {
			v = values[i]
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(v))
		sb.WriteString(`",`)
	}
	return sb.String()
}

// labelBlock turns trailing-comma pairs into a `{...}` block, or ""
// when there are no labels.
func labelBlock(pairs string) string {
	if pairs == "" {
		return ""
	}
	return "{" + pairs[:len(pairs)-1] + "}"
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatUpper(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatValue(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in text exposition format — the /metrics
// endpoint. A nil registry serves an empty (valid) exposition.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
