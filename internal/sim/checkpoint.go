package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Checkpoint is a mid-trace (or end-of-trace) snapshot of one
// simulation: the predictor's full dynamic state plus the simulator's
// own in-flight window and counters, taken at a consistent point
// between decode batches. At records how many branches had been
// simulated when the blob was taken; a Runner resuming from it skips
// exactly that prefix of the trace.
type Checkpoint struct {
	At   uint64
	Blob []byte
}

// simState carries the Run loop's local counters across the
// snapshot/restore boundary (the hot loop keeps them in registers; the
// checkpoint path copies them in and out at the edges).
type simState struct {
	seq          uint64
	branches     uint64
	microOps     uint64
	mispreds     uint64
	penaltySum   float64
	retireReads  uint64
	writeEvents  uint64
	retiredCount uint64
	count        int
}

// encodeCheckpoint serializes the simulator section (pipeline
// configuration for validation, counters, and the in-flight ring in
// age order) followed by the predictor's own sections.
func (rn *Runner[C]) encodeCheckpoint(p predictor.Predictor[C], opt Options, window int,
	ring []inflight[C], retireAt []uint64, head, ringMask int, st simState) ([]byte, error) {
	enc := checkpoint.NewEncoder()
	enc.Begin("sim", 1)
	enc.U8(uint8(opt.Scenario))
	enc.Int(window)
	enc.Int(opt.ExecDelay)
	enc.F64(opt.PenaltyBase)
	enc.U64(st.seq)
	enc.U64(st.branches)
	enc.U64(st.microOps)
	enc.U64(st.mispreds)
	enc.F64(st.penaltySum)
	enc.U64(st.retireReads)
	enc.U64(st.writeEvents)
	enc.U64(st.retiredCount)
	enc.Int(st.count)
	// In-flight entries in age order (oldest first), with absolute
	// retire times — seq continues across the resume, so no rebasing.
	ctxs := make([]C, st.count)
	for i := 0; i < st.count; i++ {
		slot := (head + i) & ringMask
		e := &ring[slot]
		enc.U64(retireAt[slot])
		enc.U64(e.pc)
		enc.Bool(e.taken)
		enc.Bool(e.mispred)
		ctxs[i] = e.ctx
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ctxs); err != nil {
		return nil, fmt.Errorf("sim: encoding in-flight contexts: %w", err)
	}
	enc.Bytes(buf.Bytes())
	enc.End()
	p.Snapshot(enc)
	return enc.Blob(), nil
}

// decodeCheckpoint restores the simulator section into the ring
// (normalized to head 0) and the predictor's state, validating that
// the blob was taken under the same pipeline configuration. On error
// the predictor and ring are in an unspecified state; the caller falls
// back to Reset and a cold start.
func (rn *Runner[C]) decodeCheckpoint(p predictor.Predictor[C], opt Options, window int,
	ring []inflight[C], retireAt []uint64, blob []byte) (simState, error) {
	var st simState
	dec := checkpoint.NewDecoder(blob)
	dec.Open("sim", 1)
	scenario := predictor.Scenario(dec.U8())
	ckWindow := dec.Int()
	ckDelay := dec.Int()
	ckPenalty := dec.F64()
	if err := dec.Err(); err != nil {
		return st, err
	}
	if scenario != opt.Scenario || ckWindow != window || ckDelay != opt.ExecDelay || ckPenalty != opt.PenaltyBase {
		return st, fmt.Errorf("sim: checkpoint taken under scenario=%s window=%d execdelay=%d penalty=%g, this run uses scenario=%s window=%d execdelay=%d penalty=%g",
			scenario.Letter(), ckWindow, ckDelay, ckPenalty,
			opt.Scenario.Letter(), window, opt.ExecDelay, opt.PenaltyBase)
	}
	st.seq = dec.U64()
	st.branches = dec.U64()
	st.microOps = dec.U64()
	st.mispreds = dec.U64()
	st.penaltySum = dec.F64()
	st.retireReads = dec.U64()
	st.writeEvents = dec.U64()
	st.retiredCount = dec.U64()
	st.count = dec.Int()
	if err := dec.Err(); err != nil {
		return st, err
	}
	if st.count < 0 || st.count > window+1 || st.count >= len(ring) {
		return st, fmt.Errorf("sim: checkpoint carries %d in-flight branches, window %d allows at most %d", st.count, window, window+1)
	}
	for i := 0; i < st.count; i++ {
		retireAt[i] = dec.U64()
		ring[i].pc = dec.U64()
		ring[i].taken = dec.Bool()
		ring[i].mispred = dec.Bool()
	}
	ctxBytes := dec.Bytes()
	if err := dec.Err(); err != nil {
		return st, err
	}
	var ctxs []C
	if err := gob.NewDecoder(bytes.NewReader(ctxBytes)).Decode(&ctxs); err != nil {
		return st, fmt.Errorf("sim: decoding in-flight contexts: %w", err)
	}
	if len(ctxs) != st.count {
		return st, fmt.Errorf("sim: checkpoint carries %d in-flight contexts for %d in-flight branches", len(ctxs), st.count)
	}
	for i := 0; i < st.count; i++ {
		ring[i].ctx = ctxs[i]
	}
	dec.Close()
	p.Restore(dec)
	if err := dec.Err(); err != nil {
		return st, err
	}
	return st, nil
}

// skipPrefix discards n branches from src: O(1) for sources exposing
// Skip (trace.Cursor), a read-and-discard loop otherwise. Returns how
// many branches were actually skipped (short when the source ends).
func skipPrefix(src trace.Source, n uint64, batch []trace.Branch) uint64 {
	if sk, ok := src.(interface{ Skip(int) int }); ok {
		var done uint64
		for done < n {
			step := n - done
			if step > 1<<30 {
				step = 1 << 30
			}
			got := sk.Skip(int(step))
			done += uint64(got)
			if got == 0 {
				break
			}
		}
		return done
	}
	batcher, _ := src.(trace.Batcher)
	var done uint64
	for done < n {
		if batcher != nil {
			want := n - done
			if want > uint64(len(batch)) {
				want = uint64(len(batch))
			}
			got := batcher.NextBatch(batch[:want])
			if got == 0 {
				break
			}
			done += uint64(got)
		} else {
			if _, ok := src.Next(); !ok {
				break
			}
			done++
		}
	}
	return done
}
