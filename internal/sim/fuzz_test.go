package sim

import (
	"testing"

	"repro/internal/predictor"
	"repro/internal/tage"
)

// FuzzCheckpointDecode feeds arbitrary bytes to the checkpoint decoder
// through the same path a real run uses (Options.Resume). The contract:
// the simulator never panics on a hostile blob — it either resumes
// cleanly, or refuses with ResumeErr set and falls back to a cold run
// whose result is identical to one that never saw the blob.
func FuzzCheckpointDecode(f *testing.F) {
	// A scaled-down TAGE keeps per-exec cost low under fuzz
	// instrumentation while exercising the same decode paths (flattened
	// tables, folded histories, in-flight contexts) as the full one.
	mk := func() *tage.Predictor { return tage.New(tage.Scale(tage.Reference(), -3)) }
	tr := ckTrace(1200)
	opt := Options{Scenario: predictor.ScenarioA, Window: 8, ExecDelay: 2}
	cold := stripTiming(RunTrace(mk(), tr, opt))

	// Seed with a genuine blob so mutations start from a decodable state.
	var valid []byte
	ckOpt := opt
	ckOpt.CheckpointEvery = 500
	ckOpt.OnCheckpoint = func(blob []byte, at uint64) {
		if valid == nil {
			valid = append([]byte(nil), blob...)
		}
	}
	RunTrace(mk(), tr, ckOpt)
	f.Add(valid)
	f.Add([]byte(nil))
	f.Add([]byte("not a checkpoint"))
	f.Add([]byte("BPCK"))
	f.Add([]byte("BPCK\x01\x00"))
	f.Add([]byte("BPCK\x02\x00rest-does-not-matter"))

	f.Fuzz(func(t *testing.T, blob []byte) {
		ck := &Checkpoint{At: 1, Blob: blob}
		rOpt := opt
		rOpt.Resume = ck
		got := RunTrace(mk(), tr, rOpt)
		if got.ResumeErr != nil {
			// Refused: the fallback must be a byte-identical cold run.
			g := got
			g.ResumeErr = nil
			if stripTiming(g) != cold {
				t.Fatalf("cold fallback diverges after refusing blob (%d bytes):\n  got:  %+v\n  want: %+v",
					len(blob), stripTiming(g), cold)
			}
			return
		}
		// Accepted: the run must account for every branch of the trace.
		if got.Branches != uint64(len(tr.Branches)) {
			t.Fatalf("accepted blob (%d bytes) lost branches: ran %d of %d",
				len(blob), got.Branches, len(tr.Branches))
		}
	})
}
