package sim

import (
	"strings"
	"testing"

	"repro/internal/predictor"
	"repro/internal/tage"
	"repro/internal/trace"
)

// ckTrace builds a history-correlated trace that keeps TAGE's folded
// histories, usefulness counters and the simulator's in-flight window
// all busy, so a checkpoint exercises real state.
func ckTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "ck", Category: "TEST"}
	hist := 0
	for i := 0; i < n; i++ {
		pc := uint64(0x4000 + (i%13)*4)
		taken := (hist>>3)&1 == (hist>>7)&1
		if i%13 == 5 {
			taken = i%5 != 0
		}
		tr.Branches = append(tr.Branches, trace.Branch{PC: pc, Taken: taken, OpsBefore: uint8(2 + i%5)})
		hist = hist<<1 | b2i(taken)
	}
	return tr
}

func stripTiming(r Result) Result {
	r.Elapsed, r.BranchesPerSec = 0, 0
	r.ResumedAt = 0
	return r
}

// TestCheckpointRoundTrip asserts the resume contract: for every
// checkpoint a run emits (periodic and end-of-trace), restoring it and
// continuing over the same trace yields a result identical to the
// uninterrupted run — counters, MPKI/MPPKI, and access accounting alike.
func TestCheckpointRoundTrip(t *testing.T) {
	tr := ckTrace(30000)
	opt := Options{Scenario: predictor.ScenarioA, Window: 16, ExecDelay: 3, PenaltyBase: 20}
	want := stripTiming(RunTrace(tage.New(tage.Reference()), tr, opt))

	var cks []Checkpoint
	ckOpt := opt
	ckOpt.CheckpointEvery = 7000
	ckOpt.OnCheckpoint = func(blob []byte, at uint64) {
		cks = append(cks, Checkpoint{At: at, Blob: append([]byte(nil), blob...)})
	}
	if got := stripTiming(RunTrace(tage.New(tage.Reference()), tr, ckOpt)); got != want {
		t.Fatalf("checkpoint emission perturbed the run:\n  with:    %+v\n  without: %+v", got, want)
	}
	if len(cks) < 4 {
		t.Fatalf("expected periodic + final checkpoints, got %d", len(cks))
	}
	for _, ck := range cks {
		ck := ck
		rOpt := opt
		rOpt.Resume = &ck
		got := RunTrace(tage.New(tage.Reference()), tr, rOpt)
		if got.ResumeErr != nil {
			t.Fatalf("resume at %d: %v", ck.At, got.ResumeErr)
		}
		if got.ResumedAt != ck.At {
			t.Errorf("resume at %d: skipped %d branches", ck.At, got.ResumedAt)
		}
		if g := stripTiming(got); g != want {
			t.Errorf("resume at %d diverges from uninterrupted run:\n  resumed: %+v\n  full:    %+v", ck.At, g, want)
		}
	}
}

// TestCheckpointColdFallback asserts that an undecodable or mismatched
// blob never corrupts a run: the simulator records the error, resets,
// and produces the cold-run result.
func TestCheckpointColdFallback(t *testing.T) {
	tr := ckTrace(8000)
	opt := Options{Scenario: predictor.ScenarioA, Window: 8, ExecDelay: 2}
	want := stripTiming(RunTrace(tage.New(tage.Reference()), tr, opt))

	// A valid blob taken under a different pipeline configuration.
	var mid Checkpoint
	ckOpt := opt
	ckOpt.CheckpointEvery = 3000
	ckOpt.OnCheckpoint = func(blob []byte, at uint64) {
		if mid.Blob == nil {
			mid = Checkpoint{At: at, Blob: append([]byte(nil), blob...)}
		}
	}
	RunTrace(tage.New(tage.Reference()), tr, ckOpt)

	cases := []struct {
		name string
		ck   Checkpoint
		want string
	}{
		{"garbage", Checkpoint{At: 5, Blob: []byte("not a checkpoint")}, "checkpoint:"},
		{"config mismatch", func() Checkpoint {
			return mid
		}(), "this run uses"},
	}
	for _, tc := range cases {
		rOpt := opt
		if tc.name == "config mismatch" {
			rOpt.Window = 32 // same blob, different window
		}
		ck := tc.ck
		rOpt.Resume = &ck
		got := RunTrace(tage.New(tage.Reference()), tr, rOpt)
		if got.ResumeErr == nil || !strings.Contains(got.ResumeErr.Error(), tc.want) {
			t.Fatalf("%s: ResumeErr = %v, want mention of %q", tc.name, got.ResumeErr, tc.want)
		}
		if rOpt.Window != opt.Window {
			continue // different config: cold result differs by design
		}
		g := got
		g.ResumeErr = nil
		if stripTiming(g) != want {
			t.Errorf("%s: fallback run diverges from cold run:\n  got:  %+v\n  want: %+v", tc.name, stripTiming(g), want)
		}
	}
}
