// Package sim is the trace-driven pipeline simulator reproducing the
// CBP-3-style evaluation framework of Section 2: branches are predicted at
// fetch, resolved at execute, and the predictor tables are updated at
// retire time, with the four update-timing scenarii of Section 4.1.2
// ([I] oracle, [A] re-read at retire, [B] fetch-read only, [C] re-read on
// mispredictions only).
//
// The pipeline model is branch-granular: an in-flight window of up to
// Window branches separates fetch from retire, and a misprediction drains
// the pipeline (the refetched path reaches the predictor only after older
// branches have largely retired), shrinking the effective update delay to
// ExecDelay for the branches in flight at the misprediction.
package sim

import (
	"fmt"

	"repro/internal/memarray"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Options configures one simulation run.
type Options struct {
	// Scenario selects the update-timing policy (default ScenarioA).
	Scenario predictor.Scenario
	// Window is the maximum number of in-flight branches between fetch and
	// retire (default 24; roughly a 192-µop ROB at 8 µops/branch).
	Window int
	// ExecDelay is the fetch-to-execute distance in branches: how long the
	// outcome of a branch stays unknown to younger fetches (default 6).
	// It also bounds the post-misprediction drain latency.
	ExecDelay int
	// PenaltyBase is the misprediction penalty in cycles used by the MPPKI
	// metric (default 20). The paper notes MPPKI is globally proportional
	// to the misprediction count; we keep the penalty model simple.
	PenaltyBase float64
}

func (o Options) withDefaults() Options {
	// Non-positive values select the defaults: a negative window would
	// corrupt the retire ring, and a negative delay or penalty has no
	// physical meaning.
	if o.Window <= 0 {
		o.Window = 24
	}
	if o.ExecDelay <= 0 {
		o.ExecDelay = 6
	}
	if o.PenaltyBase <= 0 {
		o.PenaltyBase = 20
	}
	return o
}

// Result reports the outcome of simulating one trace.
type Result struct {
	Trace         string
	Category      string
	Predictor     string
	Scenario      predictor.Scenario
	Branches      uint64
	MicroOps      uint64
	Mispredicts   uint64
	MPKI          float64 // mispredictions per kilo-µop
	MPPKI         float64 // misprediction penalty per kilo-µop
	Access        memarray.Stats
	Misprediction float64 // misprediction rate per branch
	// Window and ExecDelay record the pipeline configuration the run
	// actually used (after defaulting): provenance for stored results,
	// so two runs are never compared across different pipeline models
	// without noticing.
	Window    int
	ExecDelay int
}

func (r Result) String() string {
	return fmt.Sprintf("%-10s %-8s %s MPKI=%6.3f MPPKI=%7.2f mr=%5.2f%%",
		r.Trace, r.Predictor, r.Scenario, r.MPKI, r.MPPKI, 100*r.Misprediction)
}

type inflight[C any] struct {
	pc       uint64
	taken    bool
	mispred  bool
	retireAt uint64
	ctx      C
}

// Run simulates predictor p over the branches of src. The predictor must
// be freshly constructed (no state reuse across runs).
func Run[C any](p predictor.Predictor[C], name, category string, src trace.Source, opt Options) Result {
	opt = opt.withDefaults()
	stats := p.AccessStats()

	window := opt.Window
	if opt.Scenario == predictor.ScenarioI {
		window = 0
	}
	cap := window + 2
	ring := make([]inflight[C], cap)
	head, tail := 0, 0 // head = oldest, tail = next insert slot
	count := 0

	var (
		seq        uint64
		branches   uint64
		microOps   uint64
		mispreds   uint64
		penaltySum float64
	)

	retireOne := func() {
		e := &ring[head]
		reread := false
		switch opt.Scenario {
		case predictor.ScenarioI, predictor.ScenarioA:
			reread = true
		case predictor.ScenarioB:
			reread = false
		case predictor.ScenarioC:
			reread = e.mispred
		}
		if reread && opt.Scenario != predictor.ScenarioI {
			stats.RetireReads++
		}
		writesBefore := stats.EntryWrites
		p.Retire(e.pc, e.taken, &e.ctx, reread)
		if stats.EntryWrites != writesBefore {
			stats.WriteEvents++
		}
		stats.RetiredBranch++
		head = (head + 1) % cap
		count--
	}

	for {
		b, ok := src.Next()
		if !ok {
			break
		}
		// Retire branches whose time has come (in order).
		for count > 0 && ring[head].retireAt <= seq {
			retireOne()
		}
		// Ring must have room: window+2 slots for window in-flight.
		if count >= cap-1 {
			retireOne()
		}

		e := &ring[tail]
		tail = (tail + 1) % cap
		count++

		e.pc = b.PC
		e.taken = b.Taken
		pred := p.Predict(b.PC, &e.ctx)
		stats.PredictReads++
		e.mispred = pred != b.Taken

		branches++
		microOps += uint64(b.OpsBefore) + 1

		p.OnResolve(b.PC, b.Taken, e.mispred, &e.ctx)

		e.retireAt = seq + uint64(window)
		if e.mispred {
			mispreds++
			stats.Mispredictions++
			penaltySum += opt.PenaltyBase
			// Pipeline drain: everything in flight (including this branch)
			// retires within ExecDelay fetch slots of the resolution.
			drainAt := seq + uint64(opt.ExecDelay)
			for i, n := head, count; n > 0; i, n = (i+1)%cap, n-1 {
				if ring[i].retireAt > drainAt {
					ring[i].retireAt = drainAt
				}
			}
		}
		seq++
	}
	// Drain the pipeline at trace end.
	for count > 0 {
		retireOne()
	}

	res := Result{
		Trace:       name,
		Category:    category,
		Predictor:   p.Name(),
		Scenario:    opt.Scenario,
		Branches:    branches,
		MicroOps:    microOps,
		Mispredicts: mispreds,
		Access:      *stats,
		Window:      window,
		ExecDelay:   opt.ExecDelay,
	}
	if microOps > 0 {
		kilo := float64(microOps) / 1000
		res.MPKI = float64(mispreds) / kilo
		res.MPPKI = penaltySum / kilo
	}
	if branches > 0 {
		res.Misprediction = float64(mispreds) / float64(branches)
	}
	return res
}

// RunTrace is a convenience wrapper over Run for materialised traces.
func RunTrace[C any](p predictor.Predictor[C], tr *trace.Trace, opt Options) Result {
	return Run(p, tr.Name, tr.Category, tr.Reader(), opt)
}

// Suite aggregates per-trace results the way the paper reports them: the
// suite MPPKI is the sum of the per-trace MPPKI values over the benchmark
// set (40 per-trace values of ~15–25 summing to the ~600-range totals the
// paper quotes).
type Suite struct {
	Results []Result
}

// Add appends a per-trace result.
func (s *Suite) Add(r Result) { s.Results = append(s.Results, r) }

// TotalMPPKI returns the summed MPPKI over all traces.
func (s *Suite) TotalMPPKI() float64 {
	t := 0.0
	for _, r := range s.Results {
		t += r.MPPKI
	}
	return t
}

// TotalMPKI returns the summed MPKI over all traces.
func (s *Suite) TotalMPKI() float64 {
	t := 0.0
	for _, r := range s.Results {
		t += r.MPKI
	}
	return t
}

// TotalMispredictions sums raw misprediction counts.
func (s *Suite) TotalMispredictions() uint64 {
	var t uint64
	for _, r := range s.Results {
		t += r.Mispredicts
	}
	return t
}

// AccessTotals sums access statistics across traces.
func (s *Suite) AccessTotals() memarray.Stats {
	var t memarray.Stats
	for _, r := range s.Results {
		t.Add(r.Access)
	}
	return t
}

// ByCategory returns summed MPPKI per benchmark category.
func (s *Suite) ByCategory() map[string]float64 {
	m := make(map[string]float64)
	for _, r := range s.Results {
		m[r.Category] += r.MPPKI
	}
	return m
}

// Subset returns a suite restricted to the named traces.
func (s *Suite) Subset(names map[string]bool) *Suite {
	out := &Suite{}
	for _, r := range s.Results {
		if names[r.Trace] {
			out.Add(r)
		}
	}
	return out
}
