// Package sim is the trace-driven pipeline simulator reproducing the
// CBP-3-style evaluation framework of Section 2: branches are predicted at
// fetch, resolved at execute, and the predictor tables are updated at
// retire time, with the four update-timing scenarii of Section 4.1.2
// ([I] oracle, [A] re-read at retire, [B] fetch-read only, [C] re-read on
// mispredictions only).
//
// The pipeline model is branch-granular: an in-flight window of up to
// Window branches separates fetch from retire, and a misprediction drains
// the pipeline (the refetched path reaches the predictor only after older
// branches have largely retired), shrinking the effective update delay to
// ExecDelay for the branches in flight at the misprediction.
package sim

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/bitutil"
	"repro/internal/memarray"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/trace"
)

// Simulator-owned telemetry families (registered on Options.Metrics when
// set). They live here, not in the harness, because the simulator is the
// layer that retires branches; the harness derives its branches/sec
// gauge from the same counter, so the names are shared constants.
const (
	// MetricBranchesRetired counts branches simulated (retired), summed
	// across every cell touching the registry. Advanced once per decode
	// batch, so a live scrape sees progress inside a long cell while the
	// per-branch hot path stays allocation- and atomic-free.
	MetricBranchesRetired = "bpbench_branches_retired_total"
	// HelpBranchesRetired is the family's help text (exported so the
	// harness registers the identical family when deriving rates).
	HelpBranchesRetired = "Branches simulated (retired), across all cells."
	// MetricPipelineFlushes counts misprediction-triggered pipeline
	// drains, by update scenario (flushed once per run).
	MetricPipelineFlushes = "bpbench_pipeline_flushes_total"
	// MetricShardBranches counts branches retired by intra-cell shard
	// workers, labelled by shard index: the observability handle for
	// deterministic intra-cell parallelism (RunShards and the harness
	// IntraCellWorkers setting). Advanced once per trace per shard.
	MetricShardBranches = "bpbench_intracell_shard_branches_total"
	// HelpShardBranches is the family's help text.
	HelpShardBranches = "Branches retired by intra-cell shard workers, by shard."
)

// Options configures one simulation run.
type Options struct {
	// Scenario selects the update-timing policy (default ScenarioA).
	Scenario predictor.Scenario
	// Window is the maximum number of in-flight branches between fetch and
	// retire (default 24; roughly a 192-µop ROB at 8 µops/branch).
	Window int
	// ExecDelay is the fetch-to-execute distance in branches: how long the
	// outcome of a branch stays unknown to younger fetches (default 6).
	// It also bounds the post-misprediction drain latency.
	ExecDelay int
	// PenaltyBase is the misprediction penalty in cycles used by the MPPKI
	// metric (default 20). The paper notes MPPKI is globally proportional
	// to the misprediction count; we keep the penalty model simple.
	PenaltyBase float64
	// Metrics, when non-nil, receives simulator telemetry: branches
	// retired (advanced per decode batch, so live progress is visible
	// inside a long trace) and per-scenario pipeline flush counts. Nil
	// keeps the run telemetry-free with zero hot-path overhead.
	Metrics *metrics.Registry

	// Resume, when non-nil, warm-starts the run from a Checkpoint taken
	// by an earlier run of the identical (predictor configuration,
	// trace, pipeline options) cell: the predictor state and in-flight
	// window are restored and the first Resume.At branches of the
	// source are skipped. A blob that fails to decode or describes a
	// different configuration falls back to a cold start (the predictor
	// is Reset); Result.ResumeErr reports why.
	Resume *Checkpoint
	// OnCheckpoint, when non-nil, receives a checkpoint blob at the end
	// of the trace (always) and, when CheckpointEvery > 0, every
	// CheckpointEvery branches along the way (taken between decode
	// batches, so the granularity is the batch size). The callback must
	// not retain the predictor; the blob is self-contained.
	OnCheckpoint func(blob []byte, at uint64)
	// CheckpointEvery is the approximate branch interval between
	// periodic OnCheckpoint emissions (0 = only the end-of-trace blob).
	CheckpointEvery uint64
}

// Default pipeline parameters, applied when Options leaves the fields
// non-positive. Exported so layers that compare stored results against
// requested configurations (the harness resume store) can resolve a
// zero to the value a run would actually use.
const (
	DefaultWindow    = 24
	DefaultExecDelay = 6
)

func (o Options) withDefaults() Options {
	// Non-positive values select the defaults: a negative window would
	// corrupt the retire ring, and a negative delay or penalty has no
	// physical meaning. The harness layer rejects negative values before
	// they reach here (harness.Matrix.Expand and the bpbench flags), so
	// the two layers agree: zero means default, negative is an error at
	// the declarative boundary and a default here.
	if o.Window <= 0 {
		o.Window = DefaultWindow
	}
	if o.ExecDelay <= 0 {
		o.ExecDelay = DefaultExecDelay
	}
	if o.PenaltyBase <= 0 {
		o.PenaltyBase = 20
	}
	return o
}

// Result reports the outcome of simulating one trace.
type Result struct {
	Trace         string
	Category      string
	Predictor     string
	Scenario      predictor.Scenario
	Branches      uint64
	MicroOps      uint64
	Mispredicts   uint64
	MPKI          float64 // mispredictions per kilo-µop
	MPPKI         float64 // misprediction penalty per kilo-µop
	Access        memarray.Stats
	Misprediction float64 // misprediction rate per branch
	// Window and ExecDelay record the pipeline configuration the run
	// actually used (after defaulting): provenance for stored results,
	// so two runs are never compared across different pipeline models
	// without noticing.
	Window    int
	ExecDelay int
	// Elapsed is the wall-clock time the simulation took and
	// BranchesPerSec the simulator throughput derived from it: telemetry
	// for tracking the speed of the simulator itself (never an input to
	// accuracy metrics, and ignored by baseline diffing).
	Elapsed        time.Duration
	BranchesPerSec float64
	// ResumedAt is the branch index a warm start resumed from (0 for a
	// cold run); ResumeErr is the reason a requested warm start fell
	// back to a cold run, if it did. Both are telemetry: accuracy
	// results of a resumed run are byte-identical to a cold run.
	ResumedAt uint64
	ResumeErr error
}

func (r Result) String() string {
	return fmt.Sprintf("%-10s %-8s %s MPKI=%6.3f MPPKI=%7.2f mr=%5.2f%%",
		r.Trace, r.Predictor, r.Scenario, r.MPKI, r.MPPKI, 100*r.Misprediction)
}

type inflight[C any] struct {
	pc      uint64
	taken   bool
	mispred bool
	ctx     C
}

// decodeBatch is the trace-decode block size: branches are pulled from
// Batcher sources in blocks of this many so the per-branch interface
// call amortises away. 256 branches is 4KB of decode buffer — well
// within L1.
const decodeBatch = 256

// Runner is a reusable simulation engine for one context type C. It owns
// the in-flight ring, the retire-time array and the resolved telemetry
// handles, so a pool re-running cells of the same shape performs zero
// allocations after the first run. The zero value is ready to use; a
// Runner must not be shared between concurrent runs.
type Runner[C any] struct {
	ring     []inflight[C]
	retireAt []uint64
	// Telemetry handles resolve against one registry and are reused while
	// Options.Metrics keeps pointing at it.
	reg        *metrics.Registry
	retiredCtr *metrics.Counter
	flushVec   *metrics.CounterVec
	// cursor is the reusable trace source handed to Run by RunTrace, so a
	// pooled run performs no per-run Reader allocation.
	cursor trace.Cursor
	// batch is the decode buffer. It lives on the Runner because passing
	// it through the Batcher interface makes it escape: as a local it
	// would cost one heap allocation per run.
	batch [decodeBatch]trace.Branch
}

// Run simulates predictor p over the branches of src, reusing the
// Runner's buffers. The predictor must be freshly constructed or Reset.
//
// The loop is allocation-free in steady state: the in-flight ring is
// sized to a power of two (head/tail advance by masking), the scenario
// dispatch is hoisted out of the retire path, and branches are decoded
// in blocks when the source supports it.
func (rn *Runner[C]) Run(p predictor.Predictor[C], name, category string, src trace.Source, opt Options) Result {
	opt = opt.withDefaults()
	stats := p.AccessStats()

	window := opt.Window
	if opt.Scenario == predictor.ScenarioI {
		window = 0
	}
	// The ring needs room for window+1 in-flight branches plus the slot
	// being inserted; rounding up to a power of two lets the hot path
	// advance head and tail with a mask instead of %. The forced-retire
	// threshold stays window+1 regardless of the rounded ring size.
	ringSize := bitutil.CeilPow2(window + 2)
	ringMask := ringSize - 1
	if len(rn.ring) < ringSize {
		rn.ring = make([]inflight[C], ringSize)
		// Retire times live in their own small array so the
		// post-misprediction drain walks a few cache lines instead of
		// striding over the full (context-carrying) ring entries.
		rn.retireAt = make([]uint64, ringSize)
	} else {
		// Reused buffers must start zeroed: a fresh run sees zero-valued
		// contexts, and byte-identical reuse requires the same here (a
		// predictor's Predict is not obliged to overwrite every field).
		clear(rn.ring[:ringSize])
		clear(rn.retireAt[:ringSize])
	}
	ring := rn.ring[:ringSize]
	retireAt := rn.retireAt[:ringSize]
	head, tail := 0, 0 // head = oldest, tail = next insert slot
	count := 0

	// Scenario dispatch, hoisted out of the per-retire path.
	rereadAlways := opt.Scenario == predictor.ScenarioI || opt.Scenario == predictor.ScenarioA
	rereadOnMiss := opt.Scenario == predictor.ScenarioC
	countRereads := opt.Scenario != predictor.ScenarioI

	// Simulator-owned access counters accumulate in locals and flush into
	// the shared stats struct once, after the loop (the predictor's own
	// write accounting still updates stats in place).
	var (
		seq          uint64
		branches     uint64
		microOps     uint64
		mispreds     uint64
		penaltySum   float64
		retireReads  uint64
		writeEvents  uint64
		retiredCount uint64
	)

	// Warm start: restore predictor state and the in-flight window from
	// a checkpoint, then skip the already-simulated trace prefix. A bad
	// blob degrades to a cold start — the warm cache is an optimization,
	// never a correctness dependency.
	var resumedAt uint64
	var resumeErr error
	var restoredMispreds uint64
	if opt.Resume != nil && len(opt.Resume.Blob) > 0 {
		st, err := rn.decodeCheckpoint(p, opt, window, ring, retireAt, opt.Resume.Blob)
		if err == nil {
			// A blob claiming a longer already-simulated prefix than the
			// source holds cannot be a checkpoint of this cell; refuse it
			// before consuming the source so the cold fallback sees the
			// whole trace. Sources without a known length skip the check.
			if lener, ok := src.(interface{ Len() int }); ok && st.branches > uint64(lener.Len()) {
				err = fmt.Errorf("sim: checkpoint taken after %d branches, but this source holds only %d", st.branches, lener.Len())
			}
		}
		if err == nil {
			seq, branches, microOps, mispreds = st.seq, st.branches, st.microOps, st.mispreds
			penaltySum = st.penaltySum
			retireReads, writeEvents, retiredCount = st.retireReads, st.writeEvents, st.retiredCount
			head, tail, count = 0, st.count&ringMask, st.count
			restoredMispreds = mispreds
			resumedAt = skipPrefix(src, branches, rn.batch[:])
		} else {
			resumeErr = err
			p.Reset()
			clear(ring)
			clear(retireAt)
		}
	}

	retireOne := func() {
		e := &ring[head]
		reread := rereadAlways || (rereadOnMiss && e.mispred)
		if reread && countRereads {
			retireReads++
		}
		writesBefore := stats.EntryWrites
		p.Retire(e.pc, e.taken, &e.ctx, reread)
		if stats.EntryWrites != writesBefore {
			writeEvents++
		}
		retiredCount++
		head = (head + 1) & ringMask
		count--
	}

	// Telemetry handles resolve once per registry (cached across runs on
	// the Runner); the counter is advanced per decode batch (one nil check
	// and one atomic add per 256 branches), so a live /metrics scrape sees
	// progress inside a long cell without the per-branch path ever
	// touching the registry.
	if opt.Metrics != rn.reg {
		rn.reg = opt.Metrics
		rn.retiredCtr, rn.flushVec = nil, nil
		if opt.Metrics != nil {
			rn.retiredCtr = opt.Metrics.Counter(MetricBranchesRetired, HelpBranchesRetired)
			rn.flushVec = opt.Metrics.CounterVec(MetricPipelineFlushes,
				"Misprediction-triggered pipeline flushes, by update scenario.",
				"scenario")
		}
	}
	retiredCtr := rn.retiredCtr

	// Periodic checkpoints fire between decode batches once branches
	// crosses nextCk (anchored past any restored prefix).
	var nextCk uint64
	if opt.OnCheckpoint != nil && opt.CheckpointEvery > 0 {
		nextCk = branches + opt.CheckpointEvery
	}
	emitCheckpoint := func() {
		st := simState{
			seq: seq, branches: branches, microOps: microOps, mispreds: mispreds,
			penaltySum: penaltySum, retireReads: retireReads,
			writeEvents: writeEvents, retiredCount: retiredCount, count: count,
		}
		if blob, err := rn.encodeCheckpoint(p, opt, window, ring, retireAt, head, ringMask, st); err == nil {
			opt.OnCheckpoint(blob, branches)
		}
	}

	start := time.Now()
	batcher, _ := src.(trace.Batcher)
	batch := rn.batch[:]
	for {
		n := 0
		if batcher != nil {
			n = batcher.NextBatch(batch[:])
		} else if b, ok := src.Next(); ok {
			batch[0] = b
			n = 1
		}
		if n == 0 {
			break
		}
		retiredCtr.Add(uint64(n))
		for _, b := range batch[:n] {
			// Retire branches whose time has come (in order).
			for count > 0 && retireAt[head] <= seq {
				retireOne()
			}
			// The ring must keep room for the incoming branch.
			if count > window {
				retireOne()
			}

			tail0 := tail
			e := &ring[tail0]
			tail = (tail0 + 1) & ringMask
			count++

			e.pc = b.PC
			e.taken = b.Taken
			pred := p.Predict(b.PC, &e.ctx)
			e.mispred = pred != b.Taken

			branches++
			microOps += uint64(b.OpsBefore) + 1

			p.OnResolve(b.PC, b.Taken, e.mispred, &e.ctx)

			retireAt[tail0] = seq + uint64(window)
			if e.mispred {
				mispreds++
				penaltySum += opt.PenaltyBase
				// Pipeline drain: everything in flight (including this
				// branch) retires within ExecDelay fetch slots of the
				// resolution.
				drainAt := seq + uint64(opt.ExecDelay)
				for i, left := head, count; left > 0; i, left = (i+1)&ringMask, left-1 {
					if retireAt[i] > drainAt {
						retireAt[i] = drainAt
					}
				}
			}
			seq++
		}
		if nextCk > 0 && branches >= nextCk {
			emitCheckpoint()
			for nextCk <= branches {
				nextCk += opt.CheckpointEvery
			}
		}
	}
	// Drain the pipeline at trace end.
	for count > 0 {
		retireOne()
	}
	// The end-of-trace checkpoint is taken after the drain and before
	// the stats flush: restoring it and "continuing" over zero branches
	// reproduces the final counters exactly.
	if opt.OnCheckpoint != nil {
		emitCheckpoint()
	}
	elapsed := time.Since(start)

	stats.PredictReads += branches
	stats.Mispredictions += mispreds
	stats.RetireReads += retireReads
	stats.WriteEvents += writeEvents
	stats.RetiredBranch += retiredCount

	if rn.flushVec != nil {
		// Each misprediction drains the in-flight window — a pipeline
		// flush. Accumulated locally, flushed once per run; a warm start
		// adds only what this run simulated (the restored prefix was
		// accounted by the run that took the checkpoint).
		rn.flushVec.With(opt.Scenario.Letter()).Add(mispreds - restoredMispreds)
	}

	res := Result{
		Trace:       name,
		Category:    category,
		Predictor:   p.Name(),
		Scenario:    opt.Scenario,
		Branches:    branches,
		MicroOps:    microOps,
		Mispredicts: mispreds,
		Access:      *stats,
		Window:      window,
		ExecDelay:   opt.ExecDelay,
		Elapsed:     elapsed,
		ResumedAt:   resumedAt,
		ResumeErr:   resumeErr,
	}
	if secs := elapsed.Seconds(); secs > 0 && branches > 0 {
		res.BranchesPerSec = float64(branches) / secs
	}
	if microOps > 0 {
		kilo := float64(microOps) / 1000
		res.MPKI = float64(mispreds) / kilo
		res.MPPKI = penaltySum / kilo
	}
	if branches > 0 {
		res.Misprediction = float64(mispreds) / float64(branches)
	}
	return res
}

// RunTrace reuses the Runner's buffers over a materialised trace.
func (rn *Runner[C]) RunTrace(p predictor.Predictor[C], tr *trace.Trace, opt Options) Result {
	rn.cursor.Seek(tr)
	res := rn.Run(p, tr.Name, tr.Category, &rn.cursor, opt)
	rn.cursor.Seek(nil)
	return res
}

// Run simulates predictor p over the branches of src with a one-shot
// Runner. The predictor must be freshly constructed (no state reuse
// across runs); callers re-running many cells should hold a Runner and a
// Reset predictor instead.
func Run[C any](p predictor.Predictor[C], name, category string, src trace.Source, opt Options) Result {
	var rn Runner[C]
	return rn.Run(p, name, category, src, opt)
}

// RunTrace is a convenience wrapper over Run for materialised traces.
func RunTrace[C any](p predictor.Predictor[C], tr *trace.Trace, opt Options) Result {
	return Run(p, tr.Name, tr.Category, tr.Reader(), opt)
}

// RunShards simulates one predictor configuration over many independent
// traces, sharding the traces across worker goroutines. Shard s owns a
// predictor built by mk(s) and a reusable Runner, runs the traces at
// indices s, s+workers, s+2*workers, ... (a deterministic stride, so the
// trace-to-shard assignment never depends on scheduling), and Resets the
// predictor between traces. Every trace therefore starts cold, and the
// returned slice — results[i] belongs to traces[i] — is byte-identical to
// running each trace serially on a fresh predictor, except for the
// wall-clock telemetry fields (Elapsed, BranchesPerSec).
//
// When opt.Metrics is set, each shard additionally advances the
// MetricShardBranches family labelled with its shard index, once per
// trace, so a live scrape shows how the cell's work spreads over shards.
func RunShards[C any](mk func(shard int) predictor.Predictor[C], traces []*trace.Trace, workers int, opt Options) []Result {
	if workers < 1 {
		workers = 1
	}
	if workers > len(traces) {
		workers = len(traces)
	}
	results := make([]Result, len(traces))
	var shardVec *metrics.CounterVec
	if opt.Metrics != nil {
		shardVec = opt.Metrics.CounterVec(MetricShardBranches, HelpShardBranches, "shard")
	}
	runShard := func(shard int) {
		p := mk(shard)
		var rn Runner[C]
		var ctr *metrics.Counter
		if shardVec != nil {
			ctr = shardVec.With(strconv.Itoa(shard))
		}
		for i := shard; i < len(traces); i += workers {
			if i != shard {
				p.Reset()
			}
			results[i] = rn.RunTrace(p, traces[i], opt)
			ctr.Add(results[i].Branches)
		}
	}
	if workers == 1 {
		runShard(0)
		return results
	}
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			runShard(shard)
		}(s)
	}
	wg.Wait()
	return results
}

// Suite aggregates per-trace results the way the paper reports them: the
// suite MPPKI is the sum of the per-trace MPPKI values over the benchmark
// set (40 per-trace values of ~15–25 summing to the ~600-range totals the
// paper quotes).
type Suite struct {
	Results []Result
}

// Add appends a per-trace result.
func (s *Suite) Add(r Result) { s.Results = append(s.Results, r) }

// TotalMPPKI returns the summed MPPKI over all traces.
func (s *Suite) TotalMPPKI() float64 {
	t := 0.0
	for _, r := range s.Results {
		t += r.MPPKI
	}
	return t
}

// TotalMPKI returns the summed MPKI over all traces.
func (s *Suite) TotalMPKI() float64 {
	t := 0.0
	for _, r := range s.Results {
		t += r.MPKI
	}
	return t
}

// TotalMispredictions sums raw misprediction counts.
func (s *Suite) TotalMispredictions() uint64 {
	var t uint64
	for _, r := range s.Results {
		t += r.Mispredicts
	}
	return t
}

// AccessTotals sums access statistics across traces.
func (s *Suite) AccessTotals() memarray.Stats {
	var t memarray.Stats
	for _, r := range s.Results {
		t.Add(r.Access)
	}
	return t
}

// ByCategory returns summed MPPKI per benchmark category.
func (s *Suite) ByCategory() map[string]float64 {
	m := make(map[string]float64)
	for _, r := range s.Results {
		m[r.Category] += r.MPPKI
	}
	return m
}

// Subset returns a suite restricted to the named traces.
func (s *Suite) Subset(names map[string]bool) *Suite {
	out := &Suite{}
	for _, r := range s.Results {
		if names[r.Trace] {
			out.Add(r)
		}
	}
	return out
}
