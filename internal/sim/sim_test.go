package sim

import (
	"fmt"
	"testing"

	"repro/internal/bimodal"
	"repro/internal/gshare"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/tage"
	"repro/internal/trace"
)

// loopTrace builds the Figure 3 example: a single backward loop branch
// taken iters-1 times then not taken, repeated body times.
func loopTrace(iters, bodies int) *trace.Trace {
	t := &trace.Trace{Name: "loop", Category: "TEST"}
	for b := 0; b < bodies; b++ {
		for i := 0; i < iters; i++ {
			t.Branches = append(t.Branches, trace.Branch{
				PC:        0x1000,
				Taken:     i < iters-1,
				OpsBefore: 4,
			})
		}
	}
	return t
}

// TestFigure3DelayedUpdate reproduces the loop example of Figure 3: with a
// bimodal predictor starting at counter 0 and a deep enough pipeline, the
// oracle update predicts correctly from iteration 3, re-reading at retire
// gets there later, and never re-reading later still.
func TestFigure3DelayedUpdate(t *testing.T) {
	run := func(sc predictor.Scenario) uint64 {
		p := bimodal.NewStandalone(10, 10)
		// Force the counter to strongly not-taken (Figure 3 starts at C=0).
		var ctx bimodal.Ctx
		p.Predict(0x1000, &ctx)
		p.Retire(0x1000, false, &ctx, true)
		p.Predict(0x1000, &ctx)
		p.Retire(0x1000, false, &ctx, true)

		tr := loopTrace(40, 1)
		res := RunTrace(p, tr, Options{Scenario: sc, Window: 8, ExecDelay: 2})
		return res.Mispredicts
	}
	i := run(predictor.ScenarioI)
	a := run(predictor.ScenarioA)
	b := run(predictor.ScenarioB)
	// Oracle: mispredicts iterations 1 and 2 plus the final exit.
	if i != 3 {
		t.Fatalf("oracle mispredicts = %d, want 3", i)
	}
	if a <= i {
		t.Fatalf("scenario A (%d) must mispredict more than oracle (%d)", a, i)
	}
	if b < a {
		t.Fatalf("scenario B (%d) must be no better than A (%d)", b, a)
	}
}

// TestScenarioOrderingGshare checks the Section 4.1.2 ordering I <= A <= C
// <= B on a gshare predictor over a history-correlated workload.
func TestScenarioOrderingGshare(t *testing.T) {
	// Workload: branch outcomes correlated with recent outcomes, plus a
	// loop, so delayed update hurts.
	mk := func() *trace.Trace {
		tr := &trace.Trace{Name: "corr", Category: "TEST"}
		hist := 0
		for i := 0; i < 30000; i++ {
			pc := uint64(0x2000 + (i%7)*4)
			taken := (hist>>2)&1 == 1
			if i%7 == 3 {
				taken = i%3 != 0
			}
			tr.Branches = append(tr.Branches, trace.Branch{PC: pc, Taken: taken, OpsBefore: 4})
			hist = hist<<1 | b2i(taken)
		}
		return tr
	}
	mispredicts := map[predictor.Scenario]uint64{}
	for _, sc := range []predictor.Scenario{predictor.ScenarioI, predictor.ScenarioA, predictor.ScenarioB, predictor.ScenarioC} {
		p := gshare.New(12)
		res := RunTrace(p, mk(), Options{Scenario: sc})
		mispredicts[sc] = res.Mispredicts
	}
	if mispredicts[predictor.ScenarioI] > mispredicts[predictor.ScenarioA] {
		t.Fatalf("I (%d) > A (%d)", mispredicts[predictor.ScenarioI], mispredicts[predictor.ScenarioA])
	}
	if mispredicts[predictor.ScenarioA] > mispredicts[predictor.ScenarioB] {
		t.Fatalf("A (%d) > B (%d)", mispredicts[predictor.ScenarioA], mispredicts[predictor.ScenarioB])
	}
	if mispredicts[predictor.ScenarioC] > mispredicts[predictor.ScenarioB] {
		t.Fatalf("C (%d) > B (%d)", mispredicts[predictor.ScenarioC], mispredicts[predictor.ScenarioB])
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestMetricsComputation(t *testing.T) {
	tr := &trace.Trace{Name: "m", Category: "TEST"}
	// 10 branches, 5 ops each (4 before + branch), alternating outcome on
	// one PC: bimodal at weakly-NT start mispredicts the takens.
	for i := 0; i < 10; i++ {
		tr.Branches = append(tr.Branches, trace.Branch{PC: 0x10, Taken: i%2 == 0, OpsBefore: 4})
	}
	p := bimodal.NewStandalone(6, 6)
	res := RunTrace(p, tr, Options{Scenario: predictor.ScenarioI, PenaltyBase: 20})
	if res.Branches != 10 || res.MicroOps != 50 {
		t.Fatalf("counts: %+v", res)
	}
	wantMPKI := float64(res.Mispredicts) / 0.05
	if res.MPKI != wantMPKI {
		t.Fatalf("MPKI = %v, want %v", res.MPKI, wantMPKI)
	}
	if res.MPPKI != 20*wantMPKI {
		t.Fatalf("MPPKI = %v, want %v", res.MPPKI, 20*wantMPKI)
	}
}

func TestAccessAccounting(t *testing.T) {
	tr := loopTrace(10, 50)
	p := bimodal.NewStandalone(8, 8)
	res := RunTrace(p, tr, Options{Scenario: predictor.ScenarioC})
	if res.Access.PredictReads != res.Branches {
		t.Fatalf("predict reads = %d, want %d", res.Access.PredictReads, res.Branches)
	}
	if res.Access.RetireReads != res.Mispredicts {
		t.Fatalf("scenario C retire reads = %d, want %d (mispredicts)",
			res.Access.RetireReads, res.Mispredicts)
	}
	if res.Access.RetiredBranch != res.Branches {
		t.Fatalf("retired = %d, want all %d", res.Access.RetiredBranch, res.Branches)
	}
}

func TestScenarioARetireReadsAll(t *testing.T) {
	tr := loopTrace(10, 20)
	p := bimodal.NewStandalone(8, 8)
	res := RunTrace(p, tr, Options{Scenario: predictor.ScenarioA})
	if res.Access.RetireReads != res.Branches {
		t.Fatalf("scenario A retire reads = %d, want %d", res.Access.RetireReads, res.Branches)
	}
}

func TestScenarioBNoRetireReads(t *testing.T) {
	tr := loopTrace(10, 20)
	p := bimodal.NewStandalone(8, 8)
	res := RunTrace(p, tr, Options{Scenario: predictor.ScenarioB})
	if res.Access.RetireReads != 0 {
		t.Fatalf("scenario B retire reads = %d, want 0", res.Access.RetireReads)
	}
}

func TestSuiteAggregation(t *testing.T) {
	s := &Suite{}
	s.Add(Result{Trace: "A", Category: "X", MPPKI: 10, MPKI: 1, Mispredicts: 5})
	s.Add(Result{Trace: "B", Category: "X", MPPKI: 20, MPKI: 2, Mispredicts: 7})
	s.Add(Result{Trace: "C", Category: "Y", MPPKI: 30, MPKI: 3, Mispredicts: 9})
	if s.TotalMPPKI() != 60 || s.TotalMPKI() != 6 || s.TotalMispredictions() != 21 {
		t.Fatalf("totals wrong: %v %v %v", s.TotalMPPKI(), s.TotalMPKI(), s.TotalMispredictions())
	}
	byCat := s.ByCategory()
	if byCat["X"] != 30 || byCat["Y"] != 30 {
		t.Fatalf("by category: %v", byCat)
	}
	sub := s.Subset(map[string]bool{"A": true, "C": true})
	if len(sub.Results) != 2 || sub.TotalMPPKI() != 40 {
		t.Fatalf("subset wrong: %+v", sub)
	}
}

func TestEmptyTrace(t *testing.T) {
	p := bimodal.NewStandalone(6, 6)
	res := RunTrace(p, &trace.Trace{Name: "empty"}, Options{})
	if res.Branches != 0 || res.MPKI != 0 {
		t.Fatalf("empty trace result: %+v", res)
	}
}

// shardTraces builds a few deterministic traces of different lengths for
// the RunShards tests.
func shardTraces() []*trace.Trace {
	base := benchTrace(9000)
	sizes := []int{2000, 3000, 1500, 2500, 1000, 4000, 3500}
	out := make([]*trace.Trace, len(sizes))
	for i, n := range sizes {
		out[i] = &trace.Trace{
			Name:     fmt.Sprintf("shard-%d", i),
			Category: "BENCH",
			Branches: base.Branches[:n],
		}
	}
	return out
}

// TestRunShardsMatchesSerial asserts the determinism contract of intra-cell
// parallelism: sharding a cell's traces across goroutines produces results
// byte-identical to running each trace serially on a fresh predictor, in
// input order, for any worker count.
func TestRunShardsMatchesSerial(t *testing.T) {
	traces := shardTraces()
	opt := Options{Scenario: predictor.ScenarioA}
	want := make([]Result, len(traces))
	for i, tr := range traces {
		want[i] = RunTrace(tage.New(tage.Reference()), tr, opt)
		want[i].Elapsed, want[i].BranchesPerSec = 0, 0
	}
	for _, workers := range []int{1, 2, 4, 16} {
		got := RunShards(func(int) predictor.Predictor[tage.Ctx] {
			return tage.New(tage.Reference())
		}, traces, workers, opt)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range got {
			got[i].Elapsed, got[i].BranchesPerSec = 0, 0
			if got[i] != want[i] {
				t.Errorf("workers=%d trace %d: sharded result diverges from serial:\n  sharded: %+v\n  serial:  %+v",
					workers, i, got[i], want[i])
			}
		}
	}
}

// TestRunShardsMetrics asserts that a sharded run advances the per-shard
// branch counter family and that the shards together cover every branch.
func TestRunShardsMetrics(t *testing.T) {
	traces := shardTraces()
	reg := metrics.NewRegistry()
	opt := Options{Scenario: predictor.ScenarioA, Metrics: reg}
	results := RunShards(func(int) predictor.Predictor[tage.Ctx] {
		return tage.New(tage.Reference())
	}, traces, 3, opt)
	var total uint64
	for _, r := range results {
		total += r.Branches
	}
	snap := reg.Snapshot()
	var shardSum float64
	seen := 0
	for shard := 0; shard < 3; shard++ {
		smp, ok := snap.Sample(MetricShardBranches, fmt.Sprint(shard))
		if ok && smp.Value > 0 {
			seen++
		}
		shardSum += smp.Value
	}
	if seen < 2 {
		t.Errorf("only %d shards advanced %s; want work on >= 2 of 3 shards", seen, MetricShardBranches)
	}
	if shardSum != float64(total) {
		t.Errorf("%s sums to %v across shards, want %d (total branches)", MetricShardBranches, shardSum, total)
	}
}
