package sim

import (
	"testing"

	"repro/internal/gshare"
	"repro/internal/metrics"
	"repro/internal/predictor"
	"repro/internal/rng"
	"repro/internal/tage"
	"repro/internal/trace"
)

// benchTrace builds a deterministic synthetic branch stream: a few hundred
// static branches mixing history-correlated conditionals, biased branches
// and loop exits, so the predict/resolve/retire path sees realistic table
// traffic without depending on the workload package.
func benchTrace(n int) *trace.Trace {
	r := rng.NewXoshiro(0xbe9c)
	tr := &trace.Trace{Name: "bench-synth", Category: "BENCH"}
	tr.Branches = make([]trace.Branch, 0, n)
	hist := uint32(0)
	for i := 0; i < n; i++ {
		slot := r.Intn(400)
		pc := uint64(0x40_0000 + slot*4)
		var taken bool
		switch slot % 3 {
		case 0: // history-correlated
			taken = (hist>>2)&1 == 1
		case 1: // biased
			taken = r.Bool(0.85)
		default: // loop-like: taken except every 7th occurrence
			taken = i%7 != 0
		}
		tr.Branches = append(tr.Branches, trace.Branch{
			PC: pc, Taken: taken, OpsBefore: uint8(r.Intn(7)),
		})
		hist = hist<<1 | uint32(b2i(taken))
	}
	return tr
}

// benchPredictRetire measures the full per-branch hot path — Predict,
// OnResolve, pipeline bookkeeping, Retire — on a warmed predictor, so
// ns/op is nanoseconds per branch in steady state.
func benchPredictRetire[C any](b *testing.B, p predictor.Predictor[C], sc predictor.Scenario) {
	b.ReportAllocs()
	tr := benchTrace(100000)
	opt := Options{Scenario: sc}
	RunTrace(p, tr, opt) // warm the tables
	b.ResetTimer()
	for i := 0; i < b.N; i += len(tr.Branches) {
		RunTrace(p, tr, opt)
	}
}

// BenchmarkPredictRetire tracks simulator branches/sec per model and
// update scenario; BENCH_baseline.json records the trajectory.
func BenchmarkPredictRetire(b *testing.B) {
	b.Run("tage-ref/A", func(b *testing.B) {
		benchPredictRetire(b, tage.New(tage.Reference()), predictor.ScenarioA)
	})
	b.Run("tage-ref/B", func(b *testing.B) {
		benchPredictRetire(b, tage.New(tage.Reference()), predictor.ScenarioB)
	})
	b.Run("gshare/A", func(b *testing.B) {
		benchPredictRetire(b, gshare.New(18), predictor.ScenarioA)
	})
	b.Run("gshare/B", func(b *testing.B) {
		benchPredictRetire(b, gshare.New(18), predictor.ScenarioB)
	})
}

// TestRunZeroAllocSteadyState asserts the zero-allocation contract of the
// hot path: growing the trace must not grow the allocation count of a
// sim.Run invocation (i.e. 0 allocs/branch in steady state; the fixed
// per-run setup — the in-flight ring and retire-time array — is bounded
// separately).
func TestRunZeroAllocSteadyState(t *testing.T) {
	short := benchTrace(2000)
	long := benchTrace(8000)
	models := []struct {
		name  string
		run   func(tr *trace.Trace, opt Options)
		scens []predictor.Scenario
	}{
		{
			name: "tage-ref",
			run: func() func(tr *trace.Trace, opt Options) {
				p := tage.New(tage.Reference())
				return func(tr *trace.Trace, opt Options) { RunTrace(p, tr, opt) }
			}(),
			scens: []predictor.Scenario{predictor.ScenarioA, predictor.ScenarioB},
		},
		{
			name: "gshare",
			run: func() func(tr *trace.Trace, opt Options) {
				p := gshare.New(18)
				return func(tr *trace.Trace, opt Options) { RunTrace(p, tr, opt) }
			}(),
			scens: []predictor.Scenario{predictor.ScenarioA},
		},
	}
	for _, m := range models {
		for _, sc := range m.scens {
			opt := Options{Scenario: sc}
			m.run(long, opt) // warm up (predictor state and any lazy runtime work)
			allocsShort := testing.AllocsPerRun(10, func() { m.run(short, opt) })
			allocsLong := testing.AllocsPerRun(10, func() { m.run(long, opt) })
			if allocsLong != allocsShort {
				t.Errorf("%s/%s: allocs grow with trace length (%v for 2k branches, %v for 8k): hot path allocates per branch",
					m.name, sc, allocsShort, allocsLong)
			}
			// The fixed per-run overhead must stay small and accounted for:
			// the ring, the retireAt array, and the retire closure context.
			if allocsShort > 8 {
				t.Errorf("%s/%s: %v allocations per run, want <= 8 fixed setup allocations",
					m.name, sc, allocsShort)
			}
		}
	}
}

// TestRunZeroAllocSteadyStatePooled asserts the pooled contract: a Runner
// re-running a Reset predictor over a materialised trace performs ZERO
// allocations per run — no ring, no retire-time array, no trace reader, no
// decode buffer, no telemetry handle resolution — with and without a live
// metrics registry. This is what lets the harness predictor pool run
// repeated cells allocation-free end to end.
func TestRunZeroAllocSteadyStatePooled(t *testing.T) {
	tr := benchTrace(2000)
	t.Run("tage-ref", func(t *testing.T) {
		p := tage.New(tage.Reference())
		var rn Runner[tage.Ctx]
		opt := Options{Scenario: predictor.ScenarioA}
		rn.RunTrace(p, tr, opt) // first run owns the buffer allocations
		allocs := testing.AllocsPerRun(10, func() {
			p.Reset()
			rn.RunTrace(p, tr, opt)
		})
		if allocs != 0 {
			t.Errorf("pooled tage run: %v allocs per run, want 0", allocs)
		}
	})
	t.Run("gshare", func(t *testing.T) {
		p := gshare.New(18)
		var rn Runner[gshare.Ctx]
		opt := Options{Scenario: predictor.ScenarioB}
		rn.RunTrace(p, tr, opt)
		allocs := testing.AllocsPerRun(10, func() {
			p.Reset()
			rn.RunTrace(p, tr, opt)
		})
		if allocs != 0 {
			t.Errorf("pooled gshare run: %v allocs per run, want 0", allocs)
		}
	})
	t.Run("tage-ref/metrics", func(t *testing.T) {
		reg := metrics.NewRegistry()
		p := tage.New(tage.Reference())
		var rn Runner[tage.Ctx]
		opt := Options{Scenario: predictor.ScenarioA, Metrics: reg}
		rn.RunTrace(p, tr, opt) // resolves and caches the telemetry handles
		allocs := testing.AllocsPerRun(10, func() {
			p.Reset()
			rn.RunTrace(p, tr, opt)
		})
		if allocs != 0 {
			t.Errorf("pooled instrumented run: %v allocs per run, want 0", allocs)
		}
		if got := reg.Snapshot().Value(MetricBranchesRetired); got <= 0 {
			t.Fatalf("%s = %v after pooled instrumented runs", MetricBranchesRetired, got)
		}
	})
}

// TestRunnerMatchesFresh asserts byte-identical results between the pooled
// path (one predictor + Runner, Reset between runs) and the one-shot path
// (fresh predictor + sim.Run per run), across scenarios.
func TestRunnerMatchesFresh(t *testing.T) {
	tr := benchTrace(6000)
	for _, sc := range []predictor.Scenario{
		predictor.ScenarioI, predictor.ScenarioA,
		predictor.ScenarioB, predictor.ScenarioC,
	} {
		opt := Options{Scenario: sc}
		pooled := tage.New(tage.Reference())
		var rn Runner[tage.Ctx]
		rn.RunTrace(pooled, tr, opt) // dirty the pool
		pooled.Reset()
		got := rn.RunTrace(pooled, tr, opt)
		want := RunTrace(tage.New(tage.Reference()), tr, opt)
		// Zero out wall-clock telemetry: never part of the contract.
		got.Elapsed, got.BranchesPerSec = 0, 0
		want.Elapsed, want.BranchesPerSec = 0, 0
		if got != want {
			t.Errorf("%s: pooled Reset run diverges from fresh run:\n  pooled: %+v\n  fresh:  %+v", sc, got, want)
		}
	}
}

// BenchmarkCellSetup compares the cost of standing up one simulation cell:
// "fresh" pays tage.New plus the per-run buffer allocations of one-shot
// sim.Run; "pooled" reuses a warmed predictor and Runner via Reset. The
// trace is short so setup, not simulation, dominates.
func BenchmarkCellSetup(b *testing.B) {
	tr := benchTrace(512)
	opt := Options{Scenario: predictor.ScenarioA}
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			RunTrace(tage.New(tage.Reference()), tr, opt)
		}
	})
	b.Run("pooled", func(b *testing.B) {
		b.ReportAllocs()
		p := tage.New(tage.Reference())
		var rn Runner[tage.Ctx]
		rn.RunTrace(p, tr, opt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.Reset()
			rn.RunTrace(p, tr, opt)
		}
	})
}

// TestRunZeroAllocSteadyStateWithMetrics asserts that attaching a live
// telemetry registry preserves 0 allocs/branch: the retired counter is
// resolved once per run and advanced once per decode batch, so the
// per-branch loop stays allocation-free. The fixed per-run budget grows
// by a few handle resolutions (counter lookup, flush CounterVec), and
// no more.
func TestRunZeroAllocSteadyStateWithMetrics(t *testing.T) {
	short := benchTrace(2000)
	long := benchTrace(8000)
	reg := metrics.NewRegistry()
	p := tage.New(tage.Reference())
	opt := Options{Scenario: predictor.ScenarioA, Metrics: reg}
	RunTrace(p, long, opt) // warm up, and register the metric families
	allocsShort := testing.AllocsPerRun(10, func() { RunTrace(p, short, opt) })
	allocsLong := testing.AllocsPerRun(10, func() { RunTrace(p, long, opt) })
	if allocsLong != allocsShort {
		t.Errorf("allocs grow with trace length under telemetry (%v for 2k branches, %v for 8k): hot path allocates per branch",
			allocsShort, allocsLong)
	}
	if allocsShort > 12 {
		t.Errorf("%v allocations per instrumented run, want <= 12 fixed setup allocations", allocsShort)
	}
	if got := reg.Snapshot().Value(MetricBranchesRetired); got <= 0 {
		t.Fatalf("%s = %v after instrumented runs", MetricBranchesRetired, got)
	}
}
