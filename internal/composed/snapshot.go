package composed

import "repro/internal/checkpoint"

// Snapshot implements predictor.Predictor: a parent section delegating
// one child section per configured component, in prediction-flow order.
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("composed", 1)
	p.tage.Snapshot(enc)
	if p.loop != nil {
		p.loop.Snapshot(enc)
	}
	if p.sc != nil {
		p.sc.Snapshot(enc)
	}
	if p.lsc != nil {
		p.lsc.Snapshot(enc)
	}
	enc.End()
}

// Restore implements predictor.Predictor.
func (p *Predictor) Restore(dec *checkpoint.Decoder) {
	dec.Open("composed", 1)
	p.tage.Restore(dec)
	if p.loop != nil {
		p.loop.LoadSnapshot(dec)
	}
	if p.sc != nil {
		p.sc.LoadSnapshot(dec)
	}
	if p.lsc != nil {
		p.lsc.LoadSnapshot(dec)
	}
	dec.Close()
}
