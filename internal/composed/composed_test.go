package composed

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/tage"
)

func testTageConfig() tage.Config {
	return tage.Config{
		Name:       "TAGE-t",
		LogBimodal: 12,
		TableLogs:  []uint{9, 9, 9, 9, 9, 9},
		TagBits:    []uint{8, 9, 10, 11, 12, 12},
		MinHist:    4,
		MaxHist:    128,
		Seed:       1,
	}
}

// runImmediate drives a composed predictor with oracle update, returning
// late (second-half) mispredictions.
func runImmediate(p *Predictor, pcs []uint64, outs []bool) (late int) {
	var ctx Ctx
	half := len(pcs) / 2
	for i := range pcs {
		pred := p.Predict(pcs[i], &ctx)
		if pred != outs[i] && i >= half {
			late++
		}
		p.OnResolve(pcs[i], outs[i], pred != outs[i], &ctx)
		p.Retire(pcs[i], outs[i], &ctx, true)
	}
	return late
}

func TestNames(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{TageIUM(testTageConfig(), ""), "TAGE+IUM"},
		{ISLTAGE(testTageConfig(), ""), "TAGE+IUM+loop+SC"},
		{TAGELSC(testTageConfig(), ""), "TAGE+IUM+LSC"},
		{FullStack(testTageConfig(), ""), "TAGE+IUM+loop+SC+LSC"},
	}
	for _, c := range cases {
		if got := New(c.cfg).Name(); got != c.want {
			t.Errorf("Name = %q, want %q", got, c.want)
		}
	}
}

func TestStorageAccumulates(t *testing.T) {
	base := New(Config{Tage: testTageConfig()})
	full := New(FullStack(testTageConfig(), ""))
	if full.StorageBits() <= base.StorageBits() {
		t.Fatal("side predictors must add storage")
	}
	// Side predictors are small: well under 60 Kbits together.
	if full.StorageBits()-base.StorageBits() > 60*1024 {
		t.Fatalf("side predictors too large: %d bits",
			full.StorageBits()-base.StorageBits())
	}
}

func TestBudget512KUnderLimit(t *testing.T) {
	// Section 6.1: TAGE-LSC adjusted to 512 Kbits by halving T7.
	p := New(TAGELSC(Budget512K(), "TAGE-LSC-512K"))
	if p.StorageBits() > 512*1024 {
		t.Fatalf("budget predictor = %d bits, exceeds 512Kbit", p.StorageBits())
	}
	if p.StorageBits() < 480*1024 {
		t.Fatalf("budget predictor = %d bits, suspiciously small", p.StorageBits())
	}
}

// TestLoopPredictorHelpsIrregularLoop reproduces the Section 5.2 case:
// a constant-trip loop whose body scrambles global history. Plain TAGE
// mispredicts the exits; the loop predictor captures them.
func TestLoopPredictorHelpsIrregularLoop(t *testing.T) {
	gen := func() ([]uint64, []bool) {
		r := rng.NewXoshiro(42)
		var pcs []uint64
		var outs []bool
		const trip = 40 // beyond LSC local history; loop predictor territory
		for round := 0; round < 400; round++ {
			for i := 0; i < trip; i++ {
				// Irregular body: 3 noise branches.
				for b := 0; b < 3; b++ {
					pcs = append(pcs, uint64(0x9000+b*4))
					outs = append(outs, r.Bool(0.5))
				}
				pcs = append(pcs, 0x1000)
				outs = append(outs, i < trip-1)
			}
		}
		return pcs, outs
	}
	pcs, outs := gen()
	plain := runImmediate(New(TageIUM(testTageConfig(), "")), pcs, outs)
	withLoop := runImmediate(New(Config{
		Name: "TAGE+IUM+loop", Tage: func() tage.Config {
			c := testTageConfig()
			c.UseIUM = true
			return c
		}(), UseLoop: true,
	}), pcs, outs)
	if withLoop >= plain {
		t.Fatalf("loop predictor did not help: with=%d plain=%d", withLoop, plain)
	}
}

// TestSCHelpsStatisticallyBiasedBranch reproduces the Section 5.3 case.
func TestSCHelpsStatisticallyBiasedBranch(t *testing.T) {
	gen := func() ([]uint64, []bool) {
		r := rng.NewXoshiro(7)
		var pcs []uint64
		var outs []bool
		for i := 0; i < 60000; i++ {
			// Alternate a noise-context branch and the biased branch.
			pcs = append(pcs, uint64(0x100+(i%5)*4))
			outs = append(outs, r.Bool(0.5))
			pcs = append(pcs, 0x2000)
			outs = append(outs, r.Bool(0.88))
		}
		return pcs, outs
	}
	pcs, outs := gen()
	plain := runImmediate(New(TageIUM(testTageConfig(), "")), pcs, outs)
	withSC := runImmediate(New(func() Config {
		c := TageIUM(testTageConfig(), "")
		c.UseSC = true
		return c
	}()), pcs, outs)
	if withSC >= plain {
		t.Fatalf("SC did not help on biased branch: with=%d plain=%d", withSC, plain)
	}
}

// TestLSCHelpsLocalPattern reproduces the Section 6 case: local pattern
// under global noise.
func TestLSCHelpsLocalPattern(t *testing.T) {
	gen := func() ([]uint64, []bool) {
		r := rng.NewXoshiro(9)
		pattern := []bool{true, true, false, true, false, true, true, false, false, true, false, false}
		var pcs []uint64
		var outs []bool
		cnt := 0
		for i := 0; i < 40000; i++ {
			for b := 0; b < 4; b++ {
				pcs = append(pcs, uint64(0x300+b*4))
				outs = append(outs, r.Bool(0.5))
			}
			pcs = append(pcs, 0x4000)
			outs = append(outs, pattern[cnt%len(pattern)])
			cnt++
		}
		return pcs, outs
	}
	pcs, outs := gen()
	plain := runImmediate(New(TageIUM(testTageConfig(), "")), pcs, outs)
	withLSC := runImmediate(New(TAGELSC(testTageConfig(), "")), pcs, outs)
	if float64(withLSC) >= float64(plain)*0.9 {
		t.Fatalf("LSC did not help on local pattern: with=%d plain=%d", withLSC, plain)
	}
}

func TestComponentAccessors(t *testing.T) {
	p := New(FullStack(testTageConfig(), ""))
	if p.Tage() == nil || p.LoopPredictor() == nil || p.SC() == nil || p.LSC() == nil {
		t.Fatal("accessors must expose configured components")
	}
	p2 := New(Config{Tage: testTageConfig()})
	if p2.LoopPredictor() != nil || p2.SC() != nil || p2.LSC() != nil {
		t.Fatal("unconfigured components must be nil")
	}
}
