// Package composed assembles the paper's full predictors from the main
// TAGE predictor and its side predictors: ISL-TAGE (Section 5: TAGE + IUM
// + loop predictor + global Statistical Corrector) and TAGE-LSC
// (Section 6: TAGE + IUM + Local history Statistical Corrector), plus any
// intermediate stacking used by the incremental experiments ("TAGE+IUM",
// "TAGE+IUM+loop", ...).
//
// The prediction flows exactly as in Figures 6 and 7: the TAGE (+IUM)
// prediction may be overridden by a confident loop predictor, then the
// statistical correctors see the current prediction together with the
// centered TAGE provider counter and may revert it.
package composed

import (
	"fmt"
	"strings"

	"repro/internal/bitutil"
	"repro/internal/looppred"
	"repro/internal/lsc"
	"repro/internal/memarray"
	"repro/internal/sc"
	"repro/internal/tage"
)

// Config selects the component stack.
type Config struct {
	Name string
	Tage tage.Config

	UseLoop bool
	Loop    looppred.Config

	UseSC bool
	SC    sc.Config

	UseLSC bool
	LSC    lsc.Config
}

// Ctx is the combined pipeline context.
type Ctx struct {
	Tage tage.Ctx
	Loop looppred.Ctx
	SC   sc.Ctx
	LSC  lsc.Ctx
	// Final is the prediction after all side predictors.
	Final bool
	// LoopUsed marks a confident loop override.
	LoopUsed bool
}

// Predictor is a composed predictor.
type Predictor struct {
	cfg  Config
	tage *tage.Predictor
	loop *looppred.Predictor
	sc   *sc.Corrector
	lsc  *lsc.Corrector
}

// New builds the configured stack.
func New(cfg Config) *Predictor {
	p := &Predictor{cfg: cfg}
	p.tage = tage.New(cfg.Tage)
	stats := p.tage.AccessStats()
	if cfg.UseLoop {
		p.loop = looppred.New(cfg.Loop, stats)
	}
	if cfg.UseSC {
		p.sc = sc.New(cfg.SC, stats)
	}
	if cfg.UseLSC {
		p.lsc = lsc.New(cfg.LSC, stats)
	}
	return p
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	parts := []string{"TAGE"}
	if p.tage.IUM() != nil {
		parts = append(parts, "IUM")
	}
	if p.loop != nil {
		parts = append(parts, "loop")
	}
	if p.sc != nil {
		parts = append(parts, "SC")
	}
	if p.lsc != nil {
		parts = append(parts, "LSC")
	}
	return strings.Join(parts, "+")
}

// StorageBits implements predictor.Predictor.
func (p *Predictor) StorageBits() int {
	bits := p.tage.StorageBits()
	if p.loop != nil {
		bits += p.loop.StorageBits()
	}
	if p.sc != nil {
		bits += p.sc.StorageBits()
	}
	if p.lsc != nil {
		bits += p.lsc.StorageBits()
	}
	return bits
}

// Tage exposes the core TAGE predictor (for experiment instrumentation).
func (p *Predictor) Tage() *tage.Predictor { return p.tage }

// LoopPredictor exposes the loop side predictor, or nil.
func (p *Predictor) LoopPredictor() *looppred.Predictor { return p.loop }

// SC exposes the global Statistical Corrector, or nil.
func (p *Predictor) SC() *sc.Corrector { return p.sc }

// LSC exposes the Local Statistical Corrector, or nil.
func (p *Predictor) LSC() *lsc.Corrector { return p.lsc }

// tageCtrCentered returns the centered provider counter (2*ctr+1), the
// confidence-carrying term added to the corrector sums with weight 8.
func tageCtrCentered(c *tage.Ctx) int32 {
	if c.Provider > 0 {
		return bitutil.Centered(int32(c.Ctr(c.Provider - 1)))
	}
	// Map the 2-bit bimodal counter (0..3) onto a signed value (-2..1).
	return bitutil.Centered(c.BimCtr - 2)
}

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) bool {
	pred := p.tage.Predict(pc, &ctx.Tage)
	ctx.LoopUsed = false
	if p.loop != nil {
		p.loop.Predict(pc, &ctx.Loop)
		if ctx.Loop.Valid {
			pred = ctx.Loop.Pred
			ctx.LoopUsed = true
		}
	}
	cc := tageCtrCentered(&ctx.Tage)
	if p.sc != nil {
		pred = p.sc.Predict(pc, pred, cc, &ctx.SC)
	}
	if p.lsc != nil {
		pred = p.lsc.Predict(pc, pred, cc, &ctx.LSC)
	}
	ctx.Final = pred
	return pred
}

// OnResolve implements predictor.Predictor.
func (p *Predictor) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {
	p.tage.OnResolve(pc, taken, mispredicted, &ctx.Tage)
	if p.loop != nil {
		p.loop.OnResolve(pc, taken, &ctx.Loop)
	}
	if p.sc != nil {
		p.sc.OnResolve(taken)
	}
	if p.lsc != nil {
		p.lsc.OnResolve(taken, &ctx.LSC)
	}
}

// Retire implements predictor.Predictor.
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	p.tage.Retire(pc, taken, &ctx.Tage, reread)
	if p.loop != nil {
		useful := ctx.Loop.Valid && ctx.Loop.Pred == taken && ctx.Tage.FinalPred != taken
		p.loop.Retire(pc, taken, &ctx.Loop, useful)
		if ctx.Final != taken {
			p.loop.Allocate(pc, taken)
		}
	}
	if p.sc != nil {
		p.sc.Retire(taken, &ctx.SC, reread)
	}
	if p.lsc != nil {
		p.lsc.Retire(taken, &ctx.LSC, reread)
	}
}

// AccessStats implements predictor.Predictor.
func (p *Predictor) AccessStats() *memarray.Stats { return p.tage.AccessStats() }

// Reset implements predictor.Predictor: every configured component back to
// its construction state. All components share the TAGE predictor's stats
// object, which tage.Reset resets exactly once; the side predictors' Reset
// methods leave stats to their owner.
func (p *Predictor) Reset() {
	p.tage.Reset()
	if p.loop != nil {
		p.loop.Reset()
	}
	if p.sc != nil {
		p.sc.Reset()
	}
	if p.lsc != nil {
		p.lsc.Reset()
	}
}

// --- Named configurations from the paper ---

// TageIUM returns the base TAGE predictor of cfg with an IUM attached.
func TageIUM(tcfg tage.Config, name string) Config {
	tcfg.UseIUM = true
	return Config{Name: name, Tage: tcfg}
}

// ISLTAGE returns the Section 5 stack: TAGE + IUM + loop predictor +
// global-history Statistical Corrector.
func ISLTAGE(tcfg tage.Config, name string) Config {
	tcfg.UseIUM = true
	return Config{
		Name:    name,
		Tage:    tcfg,
		UseLoop: true,
		UseSC:   true,
	}
}

// TAGELSC returns the Section 6 stack: TAGE + IUM + Local Statistical
// Corrector. The paper's budget-matched variant halves table T7 of the
// reference TAGE; use tage.Reference() adjusted by the caller.
func TAGELSC(tcfg tage.Config, name string) Config {
	tcfg.UseIUM = true
	return Config{
		Name:   name,
		Tage:   tcfg,
		UseLSC: true,
	}
}

// FullStack returns TAGE + IUM + loop + SC + LSC (the Section 6.1 "on top
// of everything" measurement point).
func FullStack(tcfg tage.Config, name string) Config {
	tcfg.UseIUM = true
	return Config{
		Name:    name,
		Tage:    tcfg,
		UseLoop: true,
		UseSC:   true,
		UseLSC:  true,
	}
}

// Budget512K returns the reference TAGE shrunk to leave room for the LSC
// within 512 Kbits (Section 6.1: "reducing the size of Table T7 to 2K
// entries").
func Budget512K() tage.Config {
	cfg := tage.Reference()
	cfg.TableLogs = append([]uint(nil), cfg.TableLogs...)
	cfg.TableLogs[6]-- // T7: 4K -> 2K entries
	cfg.Name = "TAGE-ref-T7half"
	return cfg
}

// String summarises the configuration.
func (c Config) String() string {
	return fmt.Sprintf("%s (loop=%v sc=%v lsc=%v)", c.Name, c.UseLoop, c.UseSC, c.UseLSC)
}
