// Package sc implements the (global history) Statistical Corrector
// predictor of Section 5.3: a small GEHL-derived adder tree that detects
// statistically biased branches which TAGE predicts worse than a simple
// wide-counter table, and reverts the TAGE prediction when it disagrees
// with high confidence.
//
// Configuration from the paper: 4 logical tables of 1K 6-bit entries
// (24 Kbits total) indexed with the 4 shortest TAGE history lengths
// (0, 6, 10, 17) and the prediction flowing out of TAGE. The correction
// sum is the sum of the centered Statistical Corrector counters plus eight
// times the centered value of the TAGE provider counter, and the revert
// fires when the corrector disagrees and the absolute sum exceeds a
// dynamically adapted threshold.
package sc

import (
	"repro/internal/bitutil"
	"repro/internal/gehl"
	"repro/internal/histories"
	"repro/internal/memarray"
)

// MaxTables bounds the corrector size for fixed-size contexts.
const MaxTables = 8

// Config parameterises the Statistical Corrector.
type Config struct {
	LogEntries uint  // default 10 (1K entries/table)
	CtrBits    uint  // default 6
	Lengths    []int // default {0, 6, 10, 17}
	TageWeight int32 // weight of the centered TAGE counter (default 8)
}

func (c Config) withDefaults() Config {
	if c.LogEntries == 0 {
		c.LogEntries = 10
	}
	if c.CtrBits == 0 {
		c.CtrBits = 6
	}
	if len(c.Lengths) == 0 {
		c.Lengths = []int{0, 6, 10, 17}
	}
	if len(c.Lengths) > MaxTables {
		panic("sc: too many tables")
	}
	if c.TageWeight == 0 {
		c.TageWeight = 8
	}
	return c
}

// Corrector is the global-history Statistical Corrector.
type Corrector struct {
	cfg   Config
	eng   *gehl.Engine
	ghist *histories.Global
	// folds packs the corrector's folded histories into the word-parallel
	// engine (update-dominated, one read per fold per branch); handle i
	// belongs to Lengths[i], with zero lengths registered inert.
	folds *histories.PackedFolds
	fvals []uint32 // folds.Values(), cached for the predict loop

	// Reverts counts predictions inverted by the corrector; UsefulReverts
	// those inversions that were correct.
	Reverts       uint64
	UsefulReverts uint64

	// Revert threshold state: the paper adjusts the threshold at run time
	// "to ensure that the use of the Statistical Corrector predictor is
	// beneficial"; rbenefit tracks revert successes minus failures.
	rthresh  int32
	rbenefit int32
}

// Ctx is the per-branch corrector context.
type Ctx struct {
	Indices  [MaxTables]uint32
	Ctrs     [MaxTables]int8
	Sum      int32
	SCPred   bool
	InPred   bool // the main prediction presented to the corrector
	Reverted bool
}

// New creates a Statistical Corrector. stats may be nil.
func New(cfg Config, stats *memarray.Stats) *Corrector {
	cfg = cfg.withDefaults()
	maxLen := 0
	for _, l := range cfg.Lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	c := &Corrector{
		cfg: cfg,
		eng: gehl.NewEngine(gehl.Config{
			NumTables:  len(cfg.Lengths),
			LogEntries: cfg.LogEntries,
			CtrBits:    cfg.CtrBits,
			MinHist:    1, MaxHist: maxLen + 1, // unused by Engine indexing
		}, cfg.Lengths, stats),
		ghist: histories.NewGlobal(maxLen + 8),
	}
	var fb histories.PackedBuilder
	for _, l := range cfg.Lengths {
		fb.Add(l, cfg.LogEntries) // l == 0 registers the inert fold
	}
	c.folds = fb.Build()
	c.fvals = c.folds.Values()
	c.rthresh = int32(2 * len(cfg.Lengths))
	return c
}

// Reset returns the corrector to its construction state: GEHL counters
// and threshold, global history and folds, revert accounting. The stats
// object is left to its owner.
func (c *Corrector) Reset() {
	c.eng.Reset()
	c.ghist.Reset()
	c.folds.Reset()
	c.Reverts, c.UsefulReverts = 0, 0
	c.rthresh = int32(2 * len(c.cfg.Lengths))
	c.rbenefit = 0
}

// StorageBits returns the corrector table storage.
func (c *Corrector) StorageBits() int { return c.eng.StorageBits() }

// Predict computes the corrected prediction. mainPred is the prediction
// flowing out of the main (TAGE + IUM [+ loop]) predictor and
// tageCtrCentered is the centered value of the TAGE provider counter
// (2*ctr+1), which folds prediction confidence into the sum.
func (c *Corrector) Predict(pc uint64, mainPred bool, tageCtrCentered int32, ctx *Ctx) bool {
	predBit := uint32(0)
	if mainPred {
		predBit = 1
	}
	var sum int32
	for i := range c.cfg.Lengths {
		// A zero-length fold is inert and reads as 0.
		idx := c.eng.Index(i, pc, c.fvals[i], predBit*0x5bd1e995)
		ctr := c.eng.Read(i, idx)
		ctx.Indices[i] = idx
		ctx.Ctrs[i] = int8(ctr)
		sum += bitutil.Centered(ctr)
	}
	sum += c.cfg.TageWeight * tageCtrCentered
	ctx.Sum = sum
	ctx.SCPred = sum >= 0
	ctx.InPred = mainPred
	ctx.Reverted = false
	if ctx.SCPred != mainPred && abs32(sum) >= c.rthresh {
		ctx.Reverted = true
		c.Reverts++
		return ctx.SCPred
	}
	return mainPred
}

// OnResolve advances the corrector's speculative global history.
func (c *Corrector) OnResolve(taken bool) {
	c.ghist.Push(taken)
	c.folds.Update(c.ghist, taken)
}

// Retire updates the corrector tables at retire time: counters train
// toward the outcome when the corrector was wrong or unconfident, and the
// threshold adapts, exactly as in the GEHL update policy the corrector is
// derived from.
func (c *Corrector) Retire(taken bool, ctx *Ctx, reread bool) {
	if ctx.Reverted {
		if ctx.SCPred == taken {
			c.UsefulReverts++
			c.rbenefit++
		} else {
			c.rbenefit -= 2 // a wrong revert costs what a right one saves
		}
		if c.rbenefit <= -16 {
			c.rbenefit = 0
			c.rthresh++ // reverting too eagerly: raise the bar
		} else if c.rbenefit >= 64 {
			c.rbenefit = 0
			if c.rthresh > int32(len(c.cfg.Lengths)) {
				c.rthresh--
			}
		}
	}
	scWrong := ctx.SCPred != taken
	a := abs32(ctx.Sum)
	if c.eng.ShouldUpdate(scWrong, a) {
		for i := range c.cfg.Lengths {
			old := int32(ctx.Ctrs[i])
			if reread {
				old = c.eng.Read(i, ctx.Indices[i])
			}
			c.eng.Train(i, ctx.Indices[i], old, taken)
		}
	}
	c.eng.AdaptThreshold(scWrong, a)
}

// RevertSuccessRate returns the fraction of reverts that were correct
// (the paper reports "more than 70%" for the LSC).
func (c *Corrector) RevertSuccessRate() float64 {
	if c.Reverts == 0 {
		return 0
	}
	return float64(c.UsefulReverts) / float64(c.Reverts)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
