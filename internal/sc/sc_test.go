package sc

import (
	"testing"

	"repro/internal/rng"
)

// TestCorrectsStatisticalBias is the defining behaviour of Section 5.3: a
// branch with a statistical bias (no history correlation) that the main
// predictor keeps getting wrong is corrected toward the bias.
func TestCorrectsStatisticalBias(t *testing.T) {
	c := New(Config{}, nil)
	r := rng.NewXoshiro(1)
	const n = 50000
	pc := uint64(0x4000)
	lateWrong, lateTotal := 0, 0
	for i := 0; i < n; i++ {
		taken := r.Bool(0.85) // 85% taken statistical bias
		// The "main predictor" here is adversarial: it alternates, far
		// worse than the bias. The SC must learn to override it.
		mainPred := i%2 == 0
		var ctx Ctx
		final := c.Predict(pc, mainPred, 1, &ctx)
		if i > n/2 {
			lateTotal++
			if final != taken {
				lateWrong++
			}
		}
		c.OnResolve(taken)
		c.Retire(taken, &ctx, true)
	}
	rate := float64(lateWrong) / float64(lateTotal)
	// The bias ceiling is 15%; the corrector should approach it, and in
	// any case beat the 50% of the adversarial main prediction.
	if rate > 0.25 {
		t.Fatalf("late misprediction rate = %.3f, want close to bias (0.15)", rate)
	}
	if c.Reverts == 0 {
		t.Fatal("corrector never reverted")
	}
}

// TestAgreesWithGoodMainPredictor: when the main prediction is reliable,
// the corrector must mostly stay out of the way.
func TestAgreesWithGoodMainPredictor(t *testing.T) {
	c := New(Config{}, nil)
	r := rng.NewXoshiro(2)
	const n = 20000
	reverts := uint64(0)
	for i := 0; i < n; i++ {
		taken := r.Bool(0.5)
		mainPred := taken // oracle main predictor
		var ctx Ctx
		final := c.Predict(uint64(0x100+(i%7)*4), mainPred, 7, &ctx)
		if i > n/2 && final != taken {
			reverts++
		}
		c.OnResolve(taken)
		c.Retire(taken, &ctx, true)
	}
	if float64(reverts)/float64(n/2) > 0.02 {
		t.Fatalf("corrector damaged an oracle main predictor: %d late reverts", reverts)
	}
}

func TestStorageBudget24Kbits(t *testing.T) {
	// Section 5.3: 4 tables of 1K 6-bit entries = 24 Kbits.
	c := New(Config{}, nil)
	if got := c.StorageBits(); got != 24*1024 {
		t.Fatalf("StorageBits = %d, want %d", got, 24*1024)
	}
}

func TestRevertSuccessRateAccounting(t *testing.T) {
	c := New(Config{}, nil)
	c.Reverts = 10
	c.UsefulReverts = 7
	if c.RevertSuccessRate() != 0.7 {
		t.Fatalf("RevertSuccessRate = %v", c.RevertSuccessRate())
	}
	c2 := New(Config{}, nil)
	if c2.RevertSuccessRate() != 0 {
		t.Fatal("zero reverts must give rate 0")
	}
}

func TestTageWeightInfluence(t *testing.T) {
	// With a strongly confident TAGE counter, a fresh corrector must not
	// revert (the 8x centered counter dominates the zeroed tables).
	c := New(Config{}, nil)
	var ctx Ctx
	final := c.Predict(0x40, true, 7, &ctx) // strong taken provider
	if !final || ctx.Reverted {
		t.Fatal("fresh corrector must follow a confident main prediction")
	}
	if ctx.Sum <= 0 {
		t.Fatalf("sum = %d, want positive from the TAGE term", ctx.Sum)
	}
}

func TestScenarioBStaleCounters(t *testing.T) {
	// Retire with reread=false must use ctx counters, not current ones;
	// verify by aging the same entry twice from one snapshot.
	c := New(Config{}, nil)
	var ctx1, ctx2 Ctx
	c.Predict(0x40, false, -7, &ctx1)
	c.Predict(0x40, false, -7, &ctx2) // same snapshot (no update between)
	c.Retire(true, &ctx1, false)
	c.Retire(true, &ctx2, false)
	// Both retires trained from the same old values: the counter moved by
	// one step total (second write clobbered with the same value), not two.
	var ctx3 Ctx
	c.Predict(0x40, false, -7, &ctx3)
	if ctx3.Ctrs[0] > 1 {
		t.Fatalf("counter advanced %d steps; stale-write clobbering should cap it at 1",
			ctx3.Ctrs[0])
	}
}

func TestTooManyTablesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Lengths: make([]int, MaxTables+1)}, nil)
}
