package sc

import "repro/internal/checkpoint"

// Snapshot writes the corrector's adder tree, global history, folds,
// revert accounting and revert-threshold state (the shared stats object
// belongs to the owning predictor).
func (c *Corrector) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("sc", 1)
	c.eng.Snapshot(enc)
	c.ghist.Snapshot(enc)
	c.folds.Snapshot(enc)
	enc.U64(c.Reverts)
	enc.U64(c.UsefulReverts)
	enc.I32(c.rthresh)
	enc.I32(c.rbenefit)
	enc.End()
}

// LoadSnapshot restores a Snapshot into a corrector of the same shape.
func (c *Corrector) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.Open("sc", 1)
	c.eng.LoadSnapshot(dec)
	c.ghist.LoadSnapshot(dec)
	c.folds.LoadSnapshot(dec)
	c.Reverts = dec.U64()
	c.UsefulReverts = dec.U64()
	c.rthresh = dec.I32()
	c.rbenefit = dec.I32()
	dec.Close()
}
