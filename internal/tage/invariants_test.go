package tage

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/trace"

	"repro/internal/predictor"
	"repro/internal/sim"
)

// TestStateInvariantsUnderRandomTraffic drives the predictor with
// arbitrary branch traffic and verifies the structural invariants the
// hardware relies on: counters within 3-bit signed range, u bits 0/1, the
// USE_ALT_ON_NA register within its 4-bit range and the tick monitor
// within 8 bits.
func TestStateInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		p := New(smallConfig())
		r := rng.NewXoshiro(seed)
		n := int(nRaw%2000) + 100
		var ctx Ctx
		for i := 0; i < n; i++ {
			pc := uint64(0x40 + r.Intn(64)*4)
			taken := r.Bool(0.5)
			pred := p.Predict(pc, &ctx)
			p.OnResolve(pc, taken, pred != taken, &ctx)
			p.Retire(pc, taken, &ctx, r.Bool(0.5))
		}
		{
			for _, e := range p.entries {
				if e.ctr < -4 || e.ctr > 3 {
					return false
				}
				if e.u > 1 {
					return false
				}
			}
		}
		if p.useAlt < -8 || p.useAlt > 7 {
			return false
		}
		return p.tick <= 255
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineConservation: for arbitrary traces and scenario/window
// combinations, every fetched branch retires exactly once (accounting
// conservation between the simulator and the predictor).
func TestPipelineConservation(t *testing.T) {
	f := func(seed uint64, windowRaw, scenarioRaw uint8) bool {
		r := rng.NewXoshiro(seed)
		n := 500 + r.Intn(2000)
		tr := &trace.Trace{Name: "prop", Category: "T"}
		for i := 0; i < n; i++ {
			tr.Branches = append(tr.Branches, trace.Branch{
				PC:        uint64(0x100 + r.Intn(40)*4),
				Taken:     r.Bool(0.6),
				OpsBefore: uint8(r.Intn(7)),
			})
		}
		scenario := predictor.Scenario(scenarioRaw % 4)
		window := int(windowRaw%48) + 1
		p := New(smallConfig())
		res := sim.RunTrace(p, tr, sim.Options{Scenario: scenario, Window: window})
		return res.Branches == uint64(n) &&
			res.Access.RetiredBranch == uint64(n) &&
			res.Access.PredictReads == uint64(n) &&
			res.Mispredicts <= uint64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestDeterminismAcrossRuns: identical configuration and trace give
// identical results (no hidden global state).
func TestDeterminismAcrossRuns(t *testing.T) {
	mk := func() *trace.Trace {
		r := rng.NewXoshiro(99)
		tr := &trace.Trace{Name: "det", Category: "T"}
		for i := 0; i < 5000; i++ {
			tr.Branches = append(tr.Branches, trace.Branch{
				PC: uint64(0x40 + r.Intn(30)*4), Taken: r.Bool(0.7), OpsBefore: 3,
			})
		}
		return tr
	}
	run := func() sim.Result {
		return sim.RunTrace(New(smallConfig()), mk(), sim.Options{Scenario: predictor.ScenarioC})
	}
	a, b := run(), run()
	if a.Mispredicts != b.Mispredicts || a.Access != b.Access {
		t.Fatalf("nondeterministic simulation: %+v vs %+v", a, b)
	}
}

// TestScenarioBNeverReadsFreshState: under scenario B the retire path
// must not consult current table state; verify by checking that a
// concurrent clobber between predict and retire is ignored.
func TestScenarioBNeverReadsFreshState(t *testing.T) {
	p := New(smallConfig())
	var ctx Ctx
	pc := uint64(0x500)
	// Train a provider entry.
	for i := 0; i < 50; i++ {
		p.Predict(pc, &ctx)
		p.OnResolve(pc, true, false, &ctx)
		p.Retire(pc, true, &ctx, true)
	}
	p.Predict(pc, &ctx)
	if ctx.Provider > 0 {
		// Clobber the provider counter behind the pipeline's back.
		e := &p.table(ctx.Provider - 1)[ctx.Index(ctx.Provider-1)]
		e.ctr = -4
		p.OnResolve(pc, true, false, &ctx)
		p.Retire(pc, true, &ctx, false) // scenario B: uses ctx snapshot (+3 -> stays 3)
		if e.ctr != 3 {
			t.Fatalf("scenario B retire consulted fresh state: ctr=%d, want 3 (stale+1 saturated)", e.ctr)
		}
	}
}
