package tage

import "repro/internal/checkpoint"

// Snapshot implements predictor.Predictor: the contiguous tagged-entry
// store, the bimodal base, the global history and per-table folds, the
// allocation-policy counters, the RNG stream, and — when configured —
// the bank tracker and IUM. Shape parameters stay with the Config.
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("tage", 1)
	enc.U32(uint32(len(p.entries)))
	for i := range p.entries {
		e := &p.entries[i]
		enc.I8(e.ctr)
		enc.U8(e.u)
		enc.U16(e.tag)
	}
	p.bim.Snapshot(enc)
	p.ghist.Snapshot(enc)
	for i := range p.folds {
		p.folds[i].Snapshot(enc)
	}
	enc.I32(p.useAlt)
	enc.U32(p.tick)
	p.rand.Snapshot(enc)
	if p.banks != nil {
		p.banks.Snapshot(enc)
	}
	if p.ium != nil {
		p.ium.Snapshot(enc)
	}
	p.stats.Snapshot(enc)
	enc.End()
}

// Restore implements predictor.Predictor.
func (p *Predictor) Restore(dec *checkpoint.Decoder) {
	dec.Open("tage", 1)
	n := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	if n != len(p.entries) {
		dec.Failf("tage entry store holds %d entries, this configuration needs %d", n, len(p.entries))
		return
	}
	for i := range p.entries {
		e := &p.entries[i]
		e.ctr = dec.I8()
		e.u = dec.U8()
		e.tag = dec.U16()
	}
	p.bim.LoadSnapshot(dec)
	p.ghist.LoadSnapshot(dec)
	for i := range p.folds {
		p.folds[i].LoadSnapshot(dec)
	}
	p.useAlt = dec.I32()
	p.tick = dec.U32()
	p.rand.LoadSnapshot(dec)
	if p.banks != nil {
		p.banks.LoadSnapshot(dec)
	}
	if p.ium != nil {
		p.ium.LoadSnapshot(dec)
	}
	p.stats.LoadSnapshot(dec)
	dec.Close()
}
