package tage

import (
	"math"
	"testing"
)

// TestScaleExtremeNegativeClamps: Figure 9 budgets below the clamp floor
// must saturate cleanly — no panic, no zero-size tables — so a deltaLog
// axis can't corrupt a sweep with a degenerate predictor.
func TestScaleExtremeNegativeClamps(t *testing.T) {
	for _, d := range []int{-7, -20, -100, math.MinInt32} {
		cfg := Scale(Reference(), d)
		for i, l := range cfg.TableLogs {
			if l < minScaledTableLog {
				t.Fatalf("delta %d: table %d log %d below floor", d, i, l)
			}
		}
		if cfg.LogBimodal < minScaledBimodalLog {
			t.Fatalf("delta %d: bimodal log %d below floor", d, cfg.LogBimodal)
		}
		if cfg.LogBimodalHyst != cfg.LogBimodal-2 {
			t.Fatalf("delta %d: hysteresis log %d does not track bimodal %d",
				d, cfg.LogBimodalHyst, cfg.LogBimodal)
		}
		p := New(cfg) // must construct without panicking
		if p.StorageBits() <= 0 {
			t.Fatalf("delta %d: storage %d bits", d, p.StorageBits())
		}
	}
	// The floor is a fixpoint: once saturated, scaling further down
	// changes nothing but the name.
	a, b := Scale(Reference(), -30), Scale(Reference(), -40)
	a.Name, b.Name = "", ""
	if New(a).StorageBits() != New(b).StorageBits() {
		t.Fatal("saturated negative budgets must be identical")
	}
}

// TestScaleExtremePositiveClamps: absurd positive deltaLogs saturate at
// the ceiling instead of overflowing the log arithmetic or demanding
// unconstructible tables. (No New here — a ceiling-sized predictor is
// legitimately huge; the clamp is about arithmetic sanity.)
func TestScaleExtremePositiveClamps(t *testing.T) {
	for _, d := range []int{40, 1000, math.MaxInt32} {
		cfg := Scale(Reference(), d)
		for i, l := range cfg.TableLogs {
			if l > maxScaledLog {
				t.Fatalf("delta %d: table %d log %d above ceiling", d, i, l)
			}
		}
		if cfg.LogBimodal > maxScaledLog {
			t.Fatalf("delta %d: bimodal log %d above ceiling", d, cfg.LogBimodal)
		}
	}
}

// TestScaleWithinRangeIsExactShift: inside the clamps, every component
// moves by exactly 2^deltaLog (the paper's protocol: no other parameter
// is touched).
func TestScaleWithinRangeIsExactShift(t *testing.T) {
	ref := Reference()
	for _, d := range []int{-4, -1, 1, 3} {
		cfg := Scale(ref, d)
		for i := range ref.TableLogs {
			if int(cfg.TableLogs[i]) != int(ref.TableLogs[i])+d {
				t.Fatalf("delta %+d: table %d log %d, want %d",
					d, i, cfg.TableLogs[i], int(ref.TableLogs[i])+d)
			}
		}
		if got, want := int(cfg.LogBimodal), 15+d; got != want {
			t.Fatalf("delta %+d: bimodal log %d, want %d", d, got, want)
		}
		if cfg.MinHist != ref.MinHist || cfg.MaxHist != ref.MaxHist ||
			len(cfg.TagBits) != len(ref.TagBits) {
			t.Fatalf("delta %+d: non-size parameters changed", d)
		}
	}
}

// TestScaleNameFormatting: the scaled name always carries a signed
// deltaLog suffix; an anonymous config stays anonymous.
func TestScaleNameFormatting(t *testing.T) {
	for _, tc := range []struct {
		d    int
		want string
	}{{-4, "TAGE-ref-4"}, {0, "TAGE-ref+0"}, {3, "TAGE-ref+3"}} {
		if got := Scale(Reference(), tc.d).Name; got != tc.want {
			t.Errorf("Scale name at %+d = %q, want %q", tc.d, got, tc.want)
		}
	}
	anon := Reference()
	anon.Name = ""
	if got := Scale(anon, 2).Name; got != "" {
		t.Errorf("anonymous config gained name %q", got)
	}
}
