// Package tage implements the TAGE conditional branch predictor of Seznec
// and Michaud (JILP 2006) as configured in the paper (Section 3): a
// bimodal base predictor T0 backed by M partially-tagged components indexed
// with geometrically increasing global history lengths. It includes the
// paper's refinements: the single-u-bit usefulness policy with global reset
// driven by an 8-bit allocation success/failure counter (Section 3.2.2),
// multi-entry allocation on non-consecutive tables (Section 3.2.1), the
// USE_ALT_ON_NA newly-allocated-provider heuristic, optional 4-way
// bank-interleaved table addressing (Section 4.3), and an optional
// Immediate Update Mimicker (Section 5.1).
package tage

import (
	"fmt"
	"math/bits"

	"repro/internal/bimodal"
	"repro/internal/bitutil"
	"repro/internal/histories"
	"repro/internal/ium"
	"repro/internal/memarray"
	"repro/internal/rng"
)

// MaxTables bounds the number of tagged components so that pipeline
// contexts are fixed-size.
const MaxTables = 16

// CtrBits is the tagged-component prediction counter width (3 bits,
// Figure 2).
const CtrBits = 3

// Config parameterises a TAGE predictor.
type Config struct {
	// Name labels the configuration in reports (optional).
	Name string
	// LogBimodal is log2 of the number of bimodal prediction bits
	// (default 15 = 32K); LogBimodalHyst of the shared hysteresis bits
	// (default LogBimodal-2).
	LogBimodal     uint
	LogBimodalHyst uint
	// MinHist and MaxHist span the geometric history series over the
	// tagged tables (defaults 6 and 2000, the paper's reference).
	MinHist, MaxHist int
	// TableLogs gives log2(entries) for each tagged table T1..TM.
	TableLogs []uint
	// TagBits gives the partial tag width for each tagged table.
	TagBits []uint
	// MaxAlloc is the maximum number of entries allocated on a
	// misprediction (Section 3.2.1: "up to 3 or 4"; default 4).
	MaxAlloc int
	// Seed drives the allocation tie-breaking randomisation.
	Seed uint64
	// Interleaved enables 4-way bank-interleaved single-ported table
	// addressing (Section 4.3): the bank becomes part of the entry
	// identity, chosen by the EV8-style neighbour-avoiding selector.
	Interleaved bool
	// UseIUM attaches an Immediate Update Mimicker (Section 5.1).
	UseIUM bool
	// IUMCapacity and IUMExecDelay size the IUM (defaults 64 and 6); the
	// exec delay should match the simulator's fetch-to-execute distance.
	IUMCapacity  int
	IUMExecDelay int
}

func (c Config) withDefaults() Config {
	if c.LogBimodal == 0 {
		c.LogBimodal = 15
	}
	if c.LogBimodalHyst == 0 {
		c.LogBimodalHyst = c.LogBimodal - 2
	}
	if c.MinHist == 0 {
		c.MinHist = 6
	}
	if c.MaxHist == 0 {
		c.MaxHist = 2000
	}
	if c.MaxAlloc == 0 {
		c.MaxAlloc = 4
	}
	if c.IUMCapacity == 0 {
		c.IUMCapacity = 64
	}
	if c.IUMExecDelay == 0 {
		c.IUMExecDelay = 6
	}
	if len(c.TableLogs) == 0 {
		panic("tage: no tagged tables configured")
	}
	if len(c.TableLogs) > MaxTables {
		panic("tage: too many tagged tables")
	}
	if len(c.TagBits) != len(c.TableLogs) {
		panic("tage: TagBits/TableLogs length mismatch")
	}
	return c
}

// Reference returns the paper's reference predictor (Section 3.4): a
// 13-component TAGE fitting the 64KB CBP-3 budget — bimodal 32K+8K bits,
// 12 tagged tables with a (6,2000) geometric series, sizes 2K/4K.../1K and
// tag widths min(5+i, 15), for 523,264 bits = 65,408 bytes total.
//
// (The paper prints the tag-width rule as "max(6+i, 15)", which cannot
// match the stated byte budget; min(5+i, 15) matches it exactly.)
func Reference() Config {
	logs := []uint{11, 12, 12, 12, 12, 12, 12, 11, 11, 10, 10, 10}
	tags := make([]uint, len(logs))
	for i := range tags {
		t := uint(5 + i + 1) // table number is i+1
		if t > 15 {
			t = 15
		}
		tags[i] = t
	}
	return Config{
		Name:      "TAGE-ref",
		TableLogs: logs,
		TagBits:   tags,
		MinHist:   6,
		MaxHist:   2000,
	}
}

// Table-size clamps for Scale. The floors keep arbitrarily negative
// deltaLogs from producing zero-size (or negative-log) tables; the
// ceiling keeps arbitrarily positive ones from demanding tables beyond
// any storage-study budget (2^30 entries per component is already 256x
// the largest point of Figure 9). Within the clamps, scaling stays a
// pure power-of-two shift of every component.
const (
	minScaledTableLog   = 6
	minScaledBimodalLog = 8
	maxScaledLog        = 30
)

func clampLog(l, min int) uint {
	if l < min {
		l = min
	}
	if l > maxScaledLog {
		l = maxScaledLog
	}
	return uint(l)
}

// Scale returns cfg with every table size multiplied by 2^deltaLog
// (bimodal included), the Figure 9 scaling protocol: "scaling the sizes of
// all the components by a power of two, no attempt to optimize other
// parameters". Component sizes are clamped (see the clamp constants), so
// any deltaLog yields a constructible predictor: extreme budgets
// saturate instead of panicking or degenerating.
func Scale(cfg Config, deltaLog int) Config {
	out := cfg
	out.TableLogs = make([]uint, len(cfg.TableLogs))
	for i, l := range cfg.TableLogs {
		out.TableLogs[i] = clampLog(int(l)+deltaLog, minScaledTableLog)
	}
	if cfg.LogBimodal == 0 {
		cfg.LogBimodal = 15
	}
	lb := clampLog(int(cfg.LogBimodal)+deltaLog, minScaledBimodalLog)
	out.LogBimodal = lb
	out.LogBimodalHyst = lb - 2
	if cfg.Name != "" {
		out.Name = fmt.Sprintf("%s%+d", cfg.Name, deltaLog)
	}
	return out
}

// entry is one tagged-component entry (Figure 2): 3-bit signed prediction
// counter, partial tag, single useful bit.
type entry struct {
	ctr int8
	u   uint8
	tag uint16
}

// Predictor is a TAGE predictor.
//
// The tagged components live in one contiguous backing slice (entries)
// with per-table offsets, and each table's three folded histories sit in
// one flat []TableFolds — the predict/resolve hot loops walk arrays of
// precomputed constants (index shift, index mask, tag mask) instead of
// chasing per-table pointers.
type Predictor struct {
	cfg     Config
	bim     *bimodal.Table
	entries []entry     // all tagged tables, contiguous; table i at meta[i].offset
	meta    []tableMeta // packed per-table hot-path constants
	lengths []int
	idxBits []uint // log2 entries (full table)

	ghist *histories.Global
	// folds keeps each table's three folded histories in one flat slice:
	// the predict loop is read-dominated (three fold reads per table per
	// branch against one update), so the pre-extracted scalar layout beats
	// the packed word engine here — see internal/histories/packed.go for
	// where the packed layout does win.
	folds []histories.TableFolds

	useAlt int32  // USE_ALT_ON_NA, 4-bit signed counter
	tick   uint32 // 8-bit allocation success/failure monitor

	rand  *rng.Xoshiro
	stats *memarray.Stats
	banks *memarray.BankTracker // non-nil when interleaved
	ium   *ium.Buffer           // non-nil when UseIUM
}

// tableMeta packs the per-table constants the predict loop consumes —
// entry-store offset, index hash shift/mask, bank position and tag mask —
// into 12 bytes, so the whole constant array of a 12-table predictor fits
// in a little over two cache lines.
type tableMeta struct {
	offset    uint32 // start of the table in the contiguous entry store
	idxMask   uint32 // mask over the folded index bits
	idxShift  uint8  // PC-hash shift in the index function
	bankShift uint8  // bit position of the bank id (== index width when not interleaved)
	tagMask   uint16
}

// Ctx is the TAGE pipeline context: everything read at prediction time.
//
// The per-table snapshot (physical index, tag, counter, useful bit) is
// packed into one uint64 per table — a single store per table in the
// predict loop instead of five scattered array writes, and a third of the
// pipeline-ring footprint. Read it back through Index/Tag/Ctr/U.
type Ctx struct {
	BimIdx uint32
	BimCtr int32
	// Ent[i] = index | tag<<32 | uint8(ctr)<<48 | u<<56 for table i.
	Ent [MaxTables]uint64

	Provider int // provider component: 0 = bimodal, 1..M = tagged
	Alt      int // alternate component: 0 = bimodal
	ProvPred bool
	AltPred  bool
	WeakProv bool

	// TagePred is TAGE's own prediction; FinalPred is after the IUM
	// override (they coincide without IUM).
	TagePred  bool
	FinalPred bool
	IUMUsed   bool
	IUMHit    bool
	IUMCtr    int32
}

// Index returns the physical index captured for table i (bank included
// when interleaved).
func (c *Ctx) Index(i int) uint32 { return uint32(c.Ent[i]) }

// Tag returns the tag computed for table i.
func (c *Ctx) Tag(i int) uint16 { return uint16(c.Ent[i] >> 32) }

// Ctr returns the prediction counter read from table i.
func (c *Ctx) Ctr(i int) int8 { return int8(uint8(c.Ent[i] >> 48)) }

// U returns the useful bit read from table i.
func (c *Ctx) U(i int) uint8 { return uint8(c.Ent[i] >> 56) }

// New builds a TAGE predictor from cfg.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	m := len(cfg.TableLogs)
	p := &Predictor{
		cfg:     cfg,
		bim:     nil,
		meta:    make([]tableMeta, m),
		lengths: histories.GeometricSeries(cfg.MinHist, cfg.MaxHist, m),
		idxBits: make([]uint, m),
		ghist:   histories.NewGlobal(cfg.MaxHist + 64),
		folds:   make([]histories.TableFolds, m),
		rand:    rng.NewXoshiro(cfg.Seed ^ 0x7a6e_0001),
		stats:   &memarray.Stats{},
	}
	p.bim = bimodal.New(cfg.LogBimodal, cfg.LogBimodalHyst, p.stats)
	total := 0
	for i := 0; i < m; i++ {
		total += 1 << cfg.TableLogs[i]
	}
	p.entries = make([]entry, total)
	off := uint32(0)
	for i := 0; i < m; i++ {
		p.idxBits[i] = cfg.TableLogs[i]
		idxWidth := cfg.TableLogs[i]
		if cfg.Interleaved {
			idxWidth -= 2 // index within a bank; bank supplies the top 2 bits
		}
		p.meta[i] = tableMeta{
			offset:    off,
			idxMask:   uint32(bitutil.Mask(idxWidth)),
			idxShift:  uint8(uint(i%int(idxWidth)) + 1),
			bankShift: uint8(idxWidth),
			tagMask:   uint16(bitutil.Mask(cfg.TagBits[i])),
		}
		off += 1 << cfg.TableLogs[i]
		w2 := cfg.TagBits[i] - 1
		if w2 < 1 {
			w2 = 1
		}
		p.folds[i] = histories.NewTableFolds(p.lengths[i], idxWidth, cfg.TagBits[i], w2)
	}
	if cfg.Interleaved {
		p.banks = memarray.NewBankTracker()
	}
	if cfg.UseIUM {
		p.ium = ium.New(cfg.IUMCapacity, cfg.IUMExecDelay)
	}
	return p
}

// table returns the backing slice of tagged table i (0-based): a view into
// the contiguous entry store.
func (p *Predictor) table(i int) []entry {
	return p.entries[p.meta[i].offset : p.meta[i].offset+1<<p.idxBits[i]]
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string {
	if p.cfg.Name != "" {
		return p.cfg.Name
	}
	return fmt.Sprintf("TAGE-%dKb", p.StorageBits()/1024)
}

// StorageBits implements predictor.Predictor.
func (p *Predictor) StorageBits() int {
	bits := p.bim.StorageBits()
	for i := range p.idxBits {
		bits += (1 << p.idxBits[i]) * (CtrBits + 1 + int(p.cfg.TagBits[i]))
	}
	return bits
}

// Lengths returns the geometric history series in use.
func (p *Predictor) Lengths() []int { return p.lengths }

// NumTables returns the number of tagged components.
func (p *Predictor) NumTables() int { return len(p.meta) }

// IUM returns the attached Immediate Update Mimicker, or nil.
func (p *Predictor) IUM() *ium.Buffer { return p.ium }

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) bool {
	bank := uint32(0)
	if p.banks != nil {
		b := p.banks.Select(pc)
		ctx.BimIdx = p.bim.IndexBanked(pc, b, memarray.NumBanks)
		bank = uint32(b)
	} else {
		ctx.BimIdx = p.bim.Index(pc)
	}
	ctx.BimCtr = p.bim.Read(ctx.BimIdx)

	// The index, tag, entry read and provider selection of every tagged
	// component, fully inlined: one ascending pass over the flat fold and
	// constant arrays. The highest-numbered hit becomes the provider, the
	// previous best the alternate — the same pair the descending scan of
	// Section 3.1 selects. Clamping to MaxTables (guaranteed by config
	// validation) lets the compiler drop the bounds checks on the
	// fixed-size ctx arrays.
	folds := p.folds
	if len(folds) > MaxTables {
		folds = folds[:MaxTables]
	}
	meta := p.meta[:len(folds)]
	entries := p.entries
	var hits uint32
	h := uint32(pc >> 2)
	if bank == 0 {
		// Common case (non-interleaved, or bank 0): the bank term is zero,
		// so its variable shift drops out of the loop entirely.
		for i := range folds {
			f := &folds[i]
			mt := &meta[i]
			idx := (h ^ (h >> (mt.idxShift & 31)) ^ f.Idx.Value()) & mt.idxMask
			tg := uint16(h^f.Tag1.Value()^(f.Tag2.Value()<<1)) & mt.tagMask
			e := entries[mt.offset+idx]
			ctx.Ent[i] = uint64(idx) | uint64(tg)<<32 | uint64(uint8(e.ctr))<<48 | uint64(e.u)<<56
			// Branchless hit accumulation: the provider scan becomes a
			// leading-bit count after the loop instead of a data-dependent
			// (and mispredict-prone) in-loop update.
			var hb uint32
			if e.tag == tg {
				hb = 1
			}
			hits |= hb << (uint(i) & 31)
		}
	} else {
		for i := range folds {
			f := &folds[i]
			mt := &meta[i]
			idx := (h^(h>>(mt.idxShift&31))^f.Idx.Value())&mt.idxMask | bank<<(mt.bankShift&31)
			tg := uint16(h^f.Tag1.Value()^(f.Tag2.Value()<<1)) & mt.tagMask
			e := entries[mt.offset+idx]
			ctx.Ent[i] = uint64(idx) | uint64(tg)<<32 | uint64(uint8(e.ctr))<<48 | uint64(e.u)<<56
			var hb uint32
			if e.tag == tg {
				hb = 1
			}
			hits |= hb << (uint(i) & 31)
		}
	}
	// The highest-numbered hit provides, the next highest is the
	// alternate — exactly the descending scan of Section 3.1.
	provider := bits.Len32(hits)
	alt := 0
	if provider > 0 {
		alt = bits.Len32(hits &^ (1 << (uint(provider-1) & 31)))
	}
	ctx.Provider, ctx.Alt = provider, alt
	bimPred := bimodal.Taken(ctx.BimCtr)
	if provider > 0 {
		c := int32(ctx.Ctr(provider - 1))
		ctx.ProvPred = bitutil.TakenSign(c)
		ctx.WeakProv = bitutil.IsWeak(c)
	} else {
		ctx.ProvPred = bimPred
		ctx.WeakProv = false
	}
	if alt > 0 {
		ctx.AltPred = bitutil.TakenSign(int32(ctx.Ctr(alt - 1)))
	} else {
		ctx.AltPred = bimPred
	}
	ctx.TagePred = p.computePrediction(ctx)

	ctx.FinalPred = ctx.TagePred
	ctx.IUMUsed = false
	ctx.IUMHit = false
	if p.ium != nil {
		if c, ok := p.ium.Lookup(ctx.Provider, p.providerIndex(ctx)); ok {
			ctx.IUMHit = true
			ctx.IUMCtr = c
			ctx.FinalPred = c >= 0
			ctx.IUMUsed = ctx.FinalPred != ctx.TagePred
		}
	}
	return ctx.FinalPred
}

// providerIndex returns the physical index of the provider entry (the
// bimodal index when the base predictor provides).
func (p *Predictor) providerIndex(ctx *Ctx) uint32 {
	if ctx.Provider > 0 {
		return ctx.Index(ctx.Provider - 1)
	}
	return ctx.BimIdx
}

// providerSignedCtr returns the provider counter in a signed convention
// (bimodal 0..3 maps to -2..1) together with its width in bits.
func providerSignedCtr(ctx *Ctx) (int32, uint) {
	if ctx.Provider > 0 {
		return int32(ctx.Ctr(ctx.Provider - 1)), CtrBits
	}
	return ctx.BimCtr - 2, 2
}

// computePrediction applies the Section 3.1 algorithm: the provider's sign
// unless the provider counter is weak and USE_ALT_ON_NA is non-negative,
// in which case the alternate prediction is used.
func (p *Predictor) computePrediction(ctx *Ctx) bool {
	if ctx.Provider == 0 {
		return ctx.ProvPred
	}
	if ctx.WeakProv && p.useAlt >= 0 {
		return ctx.AltPred
	}
	return ctx.ProvPred
}

// OnResolve implements predictor.Predictor: speculative history update
// (immediate, as hardware repairs history on mispredictions) and IUM
// bookkeeping.
func (p *Predictor) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {
	if p.ium != nil {
		base, bits := providerSignedCtr(ctx)
		if ctx.IUMHit {
			base = ctx.IUMCtr
		}
		p.ium.Push(ctx.Provider, p.providerIndex(ctx), ium.NextCtr(base, taken, bits))
		if mispredicted {
			p.ium.OnMispredict()
		}
	}
	p.ghist.Push(taken)
	histories.UpdateAll(p.ghist, p.folds, taken)
}

// Retire implements predictor.Predictor: the Section 3.2 update, performed
// at retire time. With reread the current table contents are consulted
// (scenarios [A]/[C]-mispredict); without, the values captured in ctx at
// prediction time are used and written back blindly (scenario [B]), which
// models the stale-value clobbering of a real fetch-read-only pipeline.
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	provider, alt := ctx.Provider, ctx.Alt
	provPred, altPred, weak := ctx.ProvPred, ctx.AltPred, ctx.WeakProv
	bimCtr := ctx.BimCtr
	// The provider/alternate counters the update consumes, passed by value
	// (the retire path allocates nothing: no read closures, no defer).
	var provCtr, altCtr int32
	if provider > 0 {
		provCtr = int32(ctx.Ctr(provider - 1))
	}
	if alt > 0 {
		altCtr = int32(ctx.Ctr(alt - 1))
	}

	// Entry pointers for the provider and alternate: resolved once and
	// reused by both the read and the write halves of the update.
	var provE, altE *entry

	if reread {
		// Recompute the whole read from current table state at the same
		// indices (on the correct path the retire-time history equals the
		// fetch-time history, so indices and tags are unchanged).
		bimCtr = p.bim.Read(ctx.BimIdx)
		provider, alt = 0, 0
		m := len(p.meta)
		if m > MaxTables {
			m = MaxTables // never taken; lets the compiler drop ctx bounds checks
		}
		for i := m - 1; i >= 0; i-- {
			e := &p.entries[p.meta[i].offset+ctx.Index(i)]
			if e.tag != ctx.Tag(i) {
				continue
			}
			if provider == 0 {
				provider = i + 1
				provE = e
			} else {
				alt = i + 1
				altE = e
				break
			}
		}
		bimPred := bimodal.Taken(bimCtr)
		if provider > 0 {
			provCtr = int32(provE.ctr)
			provPred = bitutil.TakenSign(provCtr)
			weak = bitutil.IsWeak(provCtr)
		} else {
			provPred = bimPred
			weak = false
		}
		if alt > 0 {
			altCtr = int32(altE.ctr)
			altPred = bitutil.TakenSign(altCtr)
		} else {
			altPred = bimPred
		}
	} else {
		if provider > 0 {
			provE = &p.entries[p.meta[provider-1].offset+ctx.Index(provider-1)]
		}
		if alt > 0 {
			altE = &p.entries[p.meta[alt-1].offset+ctx.Index(alt-1)]
		}
	}

	mispredicted := ctx.TagePred != taken

	// (1) Update the provider component's prediction counter; when the
	// provider is weak also train the alternate (helps newly allocated
	// entries hand over cleanly).
	if provider > 0 {
		p.writeCtr(provE, bitutil.SatUpdateSigned(provCtr, taken, CtrBits))
		if weak {
			if alt > 0 {
				p.writeCtr(altE, bitutil.SatUpdateSigned(altCtr, taken, CtrBits))
			} else {
				p.bim.Write(ctx.BimIdx, bimodal.Next(bimCtr, taken))
			}
			// USE_ALT_ON_NA: monitor whether the alternate beats a weak
			// provider.
			if provPred != altPred {
				p.useAlt = bitutil.SatUpdateSigned(p.useAlt, altPred == taken, 4)
			}
		}
		// u is set when the provider was correct and the alternate was
		// wrong (Section 3.2.2).
		if provPred != altPred && provPred == taken {
			p.writeU(provE, 1)
		}
	} else {
		p.bim.Write(ctx.BimIdx, bimodal.Next(bimCtr, taken))
	}

	// (2) Allocate new entries on a misprediction (Section 3.2.1): up to
	// MaxAlloc entries on non-consecutive tables above the provider,
	// chosen among useless (u == 0) entries.
	if mispredicted && provider < len(p.meta) {
		p.allocate(ctx, provider, taken, reread)
	}

	if p.ium != nil {
		p.ium.PopOldest()
	}
}

// writeCtr writes a tagged-entry counter, accounting silent writes. The
// store is unconditional (rewriting an equal byte is free; branching on the
// data-dependent comparison is not) and only the accounting uses it.
func (p *Predictor) writeCtr(e *entry, v int32) {
	eff := e.ctr != int8(v)
	e.ctr = int8(v)
	p.stats.RecordWrite(eff)
}

// writeU writes a tagged-entry useful bit, accounting silent writes.
func (p *Predictor) writeU(e *entry, v uint8) {
	eff := e.u != v
	e.u = v
	p.stats.RecordWrite(eff)
}

// allocate implements the multi-entry allocation policy with the 8-bit
// success/failure monitor driving global u-bit resets. With reread the
// u bits are consulted from current table state, otherwise from the
// fetch-time snapshot in ctx (mirroring the Retire read policy).
func (p *Predictor) allocate(ctx *Ctx, provider int, taken bool, reread bool) {
	m := len(p.meta)
	start := provider + 1
	// Randomise the starting table by one position to avoid systematically
	// starving longer-history tables.
	if start < m && p.rand.Uint64()&1 == 1 {
		start++
	}
	allocated := 0
	for t := start; t <= m && allocated < p.cfg.MaxAlloc; {
		u := ctx.U(t - 1)
		if reread {
			u = p.entries[p.meta[t-1].offset+ctx.Index(t-1)].u
		}
		if u == 0 {
			e := &p.entries[p.meta[t-1].offset+ctx.Index(t-1)]
			e.tag = ctx.Tag(t - 1)
			e.ctr = int8(bitutil.WeakTaken)
			if !taken {
				e.ctr = int8(bitutil.WeakNotTaken)
			}
			e.u = 0
			p.stats.RecordWrite(true)
			allocated++
			p.tick = bitutil.SatDecUnsigned(p.tick) // success
			t += 2                                  // non-consecutive tables
		} else {
			p.tick = bitutil.SatIncUnsigned(p.tick, 8) // failure
			t++
		}
	}
	// Global reset when failures dominate (counter saturated high): one
	// pass over the contiguous entry store.
	if p.tick >= 255 {
		for i := range p.entries {
			p.entries[i].u = 0
		}
		p.tick = 0
	}
}

// AccessStats implements predictor.Predictor.
func (p *Predictor) AccessStats() *memarray.Stats { return p.stats }

// Reset implements predictor.Predictor: tagged entries, bimodal base,
// histories and folds, allocation state, RNG stream and accounting all
// return to the freshly-constructed state, reusing every allocation — the
// pooled-predictor fast path.
func (p *Predictor) Reset() {
	for i := range p.entries {
		p.entries[i] = entry{}
	}
	p.bim.Reset()
	p.ghist.Reset()
	for i := range p.folds {
		p.folds[i].Reset()
	}
	p.useAlt = 0
	p.tick = 0
	p.rand.Reseed(p.cfg.Seed ^ 0x7a6e_0001)
	if p.banks != nil {
		p.banks.Reset()
	}
	if p.ium != nil {
		p.ium.Reset()
	}
	p.stats.Reset()
}

// TableBits returns the per-structure storage in bits (bimodal first, then
// each tagged table), for the area/energy model.
func (p *Predictor) TableBits() []int {
	out := []int{p.bim.StorageBits()}
	for i := range p.idxBits {
		out = append(out, (1<<p.idxBits[i])*(CtrBits+1+int(p.cfg.TagBits[i])))
	}
	return out
}
