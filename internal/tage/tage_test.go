package tage

import (
	"testing"

	"repro/internal/rng"
)

// smallConfig is a fast configuration for behavioural tests.
func smallConfig() Config {
	return Config{
		Name:       "TAGE-test",
		LogBimodal: 12,
		TableLogs:  []uint{9, 9, 9, 9, 9, 9},
		TagBits:    []uint{8, 9, 10, 11, 12, 12},
		MinHist:    4,
		MaxHist:    128,
		Seed:       1,
	}
}

// runImmediate drives the predictor with oracle update and returns the
// misprediction count over the second half of the run (post-warmup).
func runImmediate(p *Predictor, pcs []uint64, outs []bool) (late int) {
	var ctx Ctx
	half := len(pcs) / 2
	for i := range pcs {
		pred := p.Predict(pcs[i], &ctx)
		if pred != outs[i] && i >= half {
			late++
		}
		p.OnResolve(pcs[i], outs[i], pred != outs[i], &ctx)
		p.Retire(pcs[i], outs[i], &ctx, true)
	}
	return late
}

func TestReferenceBudgetMatchesPaper(t *testing.T) {
	// Section 3.4: "a total of 65,408 bytes of storage".
	p := New(Reference())
	if got := p.StorageBits(); got != 65408*8 {
		t.Fatalf("reference storage = %d bits (%d bytes), want 65408 bytes",
			got, got/8)
	}
}

func TestReferenceGeometricSeries(t *testing.T) {
	p := New(Reference())
	l := p.Lengths()
	if l[0] != 6 || l[len(l)-1] != 2000 {
		t.Fatalf("series endpoints = %d..%d, want 6..2000", l[0], l[len(l)-1])
	}
	for i := 1; i < len(l); i++ {
		if l[i] <= l[i-1] {
			t.Fatalf("series not increasing at %d: %v", i, l)
		}
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(smallConfig())
	n := 1000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x4000
		outs[i] = true
	}
	if late := runImmediate(p, pcs, outs); late > 2 {
		t.Fatalf("%d late mispredicts on always-taken branch", late)
	}
}

// TestLearnsLongPeriodPattern is TAGE's defining strength (Section 3):
// periodic behaviour with a long period is captured through long-history
// tag matching, where a bimodal or short-history predictor fails.
func TestLearnsLongPeriodPattern(t *testing.T) {
	p := New(smallConfig())
	period := 37 // prime, longer than any bimodal can express
	n := 30000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x8000
		outs[i] = i%period == 0
	}
	late := runImmediate(p, pcs, outs)
	rate := float64(late) / float64(n/2)
	if rate > 0.02 {
		t.Fatalf("long-period pattern late misprediction rate = %.4f, want < 0.02", rate)
	}
}

// TestLearnsPathCorrelation: the outcome of a branch is determined by
// which of a small set of recurring path contexts precedes it. TAGE
// captures this through tag matching on the recurring histories — the
// mechanism behind its long-range correlation ability (histories recur, so
// each (history, branch) pair maps to a learned entry).
func TestLearnsPathCorrelation(t *testing.T) {
	p := New(smallConfig())
	r := rng.NewXoshiro(7)
	// 8 distinct 10-branch context blocks, chosen pseudo-randomly; the
	// final branch's outcome is the parity of the block id.
	var blocks [8][10]bool
	for b := range blocks {
		for j := range blocks[b] {
			blocks[b][j] = r.Bool(0.5)
		}
	}
	var ctx Ctx
	late, total := 0, 0
	const rounds = 4000
	for i := 0; i < rounds; i++ {
		b := r.Intn(8)
		for j, taken := range blocks[b] {
			pc := uint64(0x100 + j*4)
			pred := p.Predict(pc, &ctx)
			p.OnResolve(pc, taken, pred != taken, &ctx)
			p.Retire(pc, taken, &ctx, true)
		}
		out := b&1 == 1
		pred := p.Predict(0x200, &ctx)
		if i > rounds/2 {
			total++
			if pred != out {
				late++
			}
		}
		p.OnResolve(0x200, out, pred != out, &ctx)
		p.Retire(0x200, out, &ctx, true)
	}
	rate := float64(late) / float64(total)
	if rate > 0.05 {
		t.Fatalf("path correlation late rate = %.4f, want < 0.05", rate)
	}
}

func TestBeatsBimodalOnAlternating(t *testing.T) {
	p := New(smallConfig())
	n := 4000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x40
		outs[i] = i%2 == 0 // T,N,T,N... bimodal gets ~50-100%, TAGE ~0%
	}
	if late := runImmediate(p, pcs, outs); late > 40 {
		t.Fatalf("alternating branch late mispredicts = %d", late)
	}
}

func TestAllocationOnlyOnMisprediction(t *testing.T) {
	p := New(smallConfig())
	var ctx Ctx
	pc := uint64(0x998)
	// First occurrence: bimodal provides, predicts not-taken (weak),
	// outcome taken -> misprediction -> allocation must occur.
	pred := p.Predict(pc, &ctx)
	if pred {
		t.Fatal("fresh predictor should predict not-taken")
	}
	p.OnResolve(pc, true, true, &ctx)
	p.Retire(pc, true, &ctx, true)
	allocs := 0
	for _, e := range p.entries {
		if e.tag != 0 || e.ctr != 0 {
			allocs++
		}
	}
	if allocs == 0 {
		t.Fatal("misprediction must allocate tagged entries")
	}
	if allocs > p.cfg.MaxAlloc {
		t.Fatalf("allocated %d entries, max is %d", allocs, p.cfg.MaxAlloc)
	}
}

func TestNonConsecutiveAllocation(t *testing.T) {
	p := New(smallConfig())
	var ctx Ctx
	pc := uint64(0x1234)
	p.Predict(pc, &ctx)
	p.OnResolve(pc, true, true, &ctx)
	p.Retire(pc, true, &ctx, true)
	var allocTables []int
	for i := 0; i < p.NumTables(); i++ {
		if p.table(i)[ctx.Index(i)].tag == ctx.Tag(i) && ctx.Tag(i) != 0 {
			allocTables = append(allocTables, i)
		}
	}
	for k := 1; k < len(allocTables); k++ {
		if allocTables[k] == allocTables[k-1]+1 {
			t.Fatalf("allocated on consecutive tables: %v", allocTables)
		}
	}
}

func TestUBitGlobalReset(t *testing.T) {
	p := New(smallConfig())
	// Force all u bits set and the tick counter to the brink.
	for i := range p.entries {
		p.entries[i].u = 1
	}
	p.tick = 254
	var ctx Ctx
	pc := uint64(0x777)
	p.Predict(pc, &ctx)
	p.OnResolve(pc, true, true, &ctx)
	p.Retire(pc, true, &ctx, true) // misprediction -> failed allocations -> tick saturates
	clear := true
	for _, e := range p.entries {
		if e.u != 0 {
			clear = false
		}
	}
	if !clear {
		t.Fatal("tick saturation must reset all u bits")
	}
	if p.tick != 0 {
		t.Fatalf("tick = %d after reset, want 0", p.tick)
	}
}

func TestScaleQuadruplesStorage(t *testing.T) {
	base := New(Reference())
	big := New(Scale(Reference(), 2))
	ratio := float64(big.StorageBits()) / float64(base.StorageBits())
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("Scale(+2) storage ratio = %.2f, want ~4", ratio)
	}
}

func TestInterleavedStillLearns(t *testing.T) {
	cfg := smallConfig()
	cfg.Interleaved = true
	p := New(cfg)
	n := 8000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x40 + uint64(i%3)*4
		outs[i] = (i/3)%5 == 0
	}
	late := runImmediate(p, pcs, outs)
	rate := float64(late) / float64(n/2)
	if rate > 0.05 {
		t.Fatalf("interleaved late rate = %.4f, want small", rate)
	}
}

func TestInterleavedIndicesInRange(t *testing.T) {
	cfg := smallConfig()
	cfg.Interleaved = true
	p := New(cfg)
	r := rng.NewXoshiro(3)
	var ctx Ctx
	for i := 0; i < 5000; i++ {
		pc := uint64(r.Uint32())
		p.Predict(pc, &ctx)
		for ti := 0; ti < p.NumTables(); ti++ {
			if int(ctx.Index(ti)) >= len(p.table(ti)) {
				t.Fatalf("index out of range: table %d idx %d", ti, ctx.Index(ti))
			}
		}
		p.OnResolve(pc, r.Bool(0.5), false, &ctx)
		p.Retire(pc, r.Bool(0.5), &ctx, true)
	}
}

// TestIUMCorrectsInflightStaleness reproduces the Section 5.1 mechanism:
// with delayed update, a flip of a branch's behaviour causes repeated
// mispredictions from the same stale entry; the IUM corrects them using
// the executed-but-not-retired occurrence.
func TestIUMCorrectsInflightStaleness(t *testing.T) {
	run := func(useIUM bool) int {
		cfg := smallConfig()
		cfg.UseIUM = useIUM
		cfg.IUMExecDelay = 2
		p := New(cfg)
		var ctxs [8]Ctx
		mispredicts := 0
		// Pipeline of depth 8: retire lags prediction by 8 branches.
		type rec struct {
			pc    uint64
			taken bool
			used  bool
		}
		var fifo []rec
		emit := func(pc uint64, taken bool) {
			slot := len(fifo) % 8
			if len(fifo) >= 8 {
				old := fifo[len(fifo)-8]
				p.Retire(old.pc, old.taken, &ctxs[slot], true)
			}
			pred := p.Predict(pc, &ctxs[slot])
			if pred != taken {
				mispredicts++
			}
			p.OnResolve(pc, taken, pred != taken, &ctxs[slot])
			fifo = append(fifo, rec{pc, taken, true})
		}
		// Phase 1: branch strongly taken. Phase 2: abruptly not-taken;
		// consecutive in-flight occurrences hit the same stale entry.
		for i := 0; i < 2000; i++ {
			emit(0x500, true)
		}
		for i := 0; i < 2000; i++ {
			emit(0x500, false)
		}
		return mispredicts
	}
	without := run(false)
	with := run(true)
	if with >= without {
		t.Fatalf("IUM did not help: with=%d without=%d", with, without)
	}
}

func TestStatsSilentUpdatesDominate(t *testing.T) {
	p := New(smallConfig())
	n := 20000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	r := rng.NewXoshiro(11)
	for i := range pcs {
		pcs[i] = 0x40 + uint64(i%17)*4
		outs[i] = r.Bool(0.9)
	}
	runImmediate(p, pcs, outs)
	st := p.AccessStats()
	// Entry-level check (WriteEvents is maintained by the pipeline
	// simulator, not by direct driving): most entry-write attempts must be
	// silent on a predictable workload.
	silent := float64(st.SilentSkipped) / float64(st.SilentSkipped+st.EntryWrites)
	if silent < 0.5 {
		t.Fatalf("silent entry-write fraction = %.3f, expected the majority silent", silent)
	}
}

func TestNamePropagation(t *testing.T) {
	p := New(Reference())
	if p.Name() != "TAGE-ref" {
		t.Fatalf("Name = %q", p.Name())
	}
	cfg := Reference()
	cfg.Name = ""
	if New(cfg).Name() == "" {
		t.Fatal("default name must not be empty")
	}
}

func TestConfigValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty TableLogs")
		}
	}()
	New(Config{})
}

func TestTableBitsSumsToStorage(t *testing.T) {
	p := New(Reference())
	sum := 0
	for _, b := range p.TableBits() {
		sum += b
	}
	if sum != p.StorageBits() {
		t.Fatalf("TableBits sum %d != StorageBits %d", sum, p.StorageBits())
	}
}
