// Package checkpoint is the versioned binary encoding under predictor
// state snapshots: a length-prefixed section stream with the same
// schema discipline the result store applies to its records — older
// encodings are migrated forward by their readers, newer ones are
// refused with a clear error, never misread.
//
// A blob is a fixed header (magic, format version) followed by
// sections. Each section carries a name, a version and a byte length,
// so a reader can verify it is looking at the state it expects, apply
// per-section migrations, and detect truncation or corruption without
// trusting any length it has not bounds-checked. Writers nest sections
// freely (a composed predictor delegates a section to each component).
//
// The Decoder is total over arbitrary bytes: every primitive is
// bounds-checked, every slice length is validated against both the
// remaining payload and the caller's expected destination size, and the
// first failure sticks — subsequent reads return zero values and the
// caller checks Err once at the end. Nothing in this package panics on
// malformed input (FuzzCheckpointDecode holds it to that).
package checkpoint

import (
	"fmt"
	"math"
)

// FormatVersion is the blob-level encoding version this binary writes
// and the newest it will read.
const FormatVersion = 1

// magic identifies a checkpoint blob ("BPCK" — branch predictor
// checkpoint).
const magic = "BPCK"

// Encoder builds a checkpoint blob. The zero value is not ready;
// construct with NewEncoder, which writes the header.
type Encoder struct {
	buf []byte
	// open holds the byte offsets of the unpatched length fields of the
	// currently open sections (a stack, for nesting).
	open []int
}

// NewEncoder starts a blob: magic plus format version.
func NewEncoder() *Encoder {
	e := &Encoder{buf: make([]byte, 0, 1024)}
	e.buf = append(e.buf, magic...)
	e.U16(FormatVersion)
	return e
}

// Blob returns the finished blob. Every Begin must have been closed by
// its End first.
func (e *Encoder) Blob() []byte {
	if len(e.open) > 0 {
		panic(fmt.Sprintf("checkpoint: Blob with %d unclosed sections", len(e.open)))
	}
	return e.buf
}

// Begin opens a section: name, version, and a length field backpatched
// by End. Sections nest.
func (e *Encoder) Begin(name string, version uint16) {
	e.String(name)
	e.U16(version)
	e.open = append(e.open, len(e.buf))
	e.U32(0) // length, patched by End
}

// End closes the innermost open section, backpatching its byte length.
func (e *Encoder) End() {
	if len(e.open) == 0 {
		panic("checkpoint: End without Begin")
	}
	at := e.open[len(e.open)-1]
	e.open = e.open[:len(e.open)-1]
	n := len(e.buf) - at - 4
	e.buf[at+0] = byte(n)
	e.buf[at+1] = byte(n >> 8)
	e.buf[at+2] = byte(n >> 16)
	e.buf[at+3] = byte(n >> 24)
}

// --- primitives (little-endian, fixed width) ---

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U16 appends a 16-bit value.
func (e *Encoder) U16(v uint16) { e.buf = append(e.buf, byte(v), byte(v>>8)) }

// U32 appends a 32-bit value.
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

// U64 appends a 64-bit value.
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf,
		byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

// I8 appends a signed byte.
func (e *Encoder) I8(v int8) { e.U8(uint8(v)) }

// I32 appends a signed 32-bit value.
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// I64 appends a signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// Int appends a machine int as 64 bits.
func (e *Encoder) Int(v int) { e.I64(int64(v)) }

// F64 appends a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Bytes appends a length-prefixed byte slice.
func (e *Encoder) Bytes(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// U8s appends a length-prefixed uint8 slice.
func (e *Encoder) U8s(v []uint8) { e.Bytes(v) }

// I8s appends a length-prefixed int8 slice.
func (e *Encoder) I8s(v []int8) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.buf = append(e.buf, byte(x))
	}
}

// U16s appends a length-prefixed uint16 slice.
func (e *Encoder) U16s(v []uint16) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U16(x)
	}
}

// U32s appends a length-prefixed uint32 slice.
func (e *Encoder) U32s(v []uint32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U32(x)
	}
}

// I32s appends a length-prefixed int32 slice.
func (e *Encoder) I32s(v []int32) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.I32(x)
	}
}

// U64s appends a length-prefixed uint64 slice.
func (e *Encoder) U64s(v []uint64) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.U64(x)
	}
}

// Bools appends a length-prefixed bool slice (one byte per element).
func (e *Encoder) Bools(v []bool) {
	e.U32(uint32(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// Decoder reads a checkpoint blob. Errors are sticky: after the first
// failure every read returns a zero value, so restore code reads
// straight through and checks Err once.
type Decoder struct {
	data []byte
	off  int
	err  error
	// end holds the byte offsets where the currently open sections end.
	end []int
}

// NewDecoder opens a blob, verifying the header. A blob written by a
// newer binary (format version above FormatVersion) is refused here,
// mirroring the result store's schema discipline.
func NewDecoder(data []byte) *Decoder {
	d := &Decoder{data: data}
	if len(data) < len(magic)+2 {
		d.fail("blob too short for header (%d bytes)", len(data))
		return d
	}
	if string(data[:len(magic)]) != magic {
		d.fail("bad magic %q (not a checkpoint blob)", data[:len(magic)])
		return d
	}
	d.off = len(magic)
	if v := d.U16(); v > FormatVersion {
		d.fail("blob written under checkpoint format %d, but this binary understands at most format %d; regenerate it with this binary or read it with the newer one", v, FormatVersion)
	}
	return d
}

// Err returns the first decode failure, or nil.
func (d *Decoder) Err() error { return d.err }

// Failf sticks a domain-validation error onto the decoder, so restore
// code that finds a decoded value out of range (a ring head past its
// buffer, a count above capacity) reports it through the same sticky
// channel as encoding-level failures. Like them, the first error wins.
func (d *Decoder) Failf(format string, args ...any) { d.fail(format, args...) }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

// limit is the byte offset reads must stay under: the innermost open
// section's end, or the blob end.
func (d *Decoder) limit() int {
	if n := len(d.end); n > 0 {
		return d.end[n-1]
	}
	return len(d.data)
}

// take returns the next n bytes, or nil with a sticky error on
// truncation.
func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > d.limit() {
		d.fail("truncated: need %d bytes at offset %d, have %d", n, d.off, d.limit()-d.off)
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}

// Open reads a section header, verifying the name matches and the
// version is readable (refuse-newer, mirroring the store's
// migrateRecord), and returns the stored version so the caller can
// apply per-section migrations.
func (d *Decoder) Open(name string, maxVersion uint16) uint16 {
	got := d.String()
	if d.err != nil {
		return 0
	}
	if got != name {
		d.fail("section %q where %q was expected (blob does not describe this state)", got, name)
		return 0
	}
	v := d.U16()
	if d.err == nil && v > maxVersion {
		d.fail("section %q written under version %d, but this binary understands at most version %d; regenerate the checkpoint with this binary or read it with the newer one", name, v, maxVersion)
		return 0
	}
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if d.off+n > d.limit() {
		d.fail("section %q claims %d bytes but only %d remain", name, n, d.limit()-d.off)
		return 0
	}
	d.end = append(d.end, d.off+n)
	return v
}

// Close finishes the innermost open section. Any unread remainder is
// skipped (room for forward-compatible additions within a version);
// reading past the section end has already stuck an error.
func (d *Decoder) Close() {
	if len(d.end) == 0 {
		if d.err == nil {
			d.fail("Close without Open")
		}
		return
	}
	end := d.end[len(d.end)-1]
	d.end = d.end[:len(d.end)-1]
	if d.err == nil {
		d.off = end
	}
}

// --- primitives ---

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 reads a 16-bit value.
func (d *Decoder) U16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return uint16(b[0]) | uint16(b[1])<<8
}

// U32 reads a 32-bit value.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// U64 reads a 64-bit value.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// I8 reads a signed byte.
func (d *Decoder) I8() int8 { return int8(d.U8()) }

// I32 reads a signed 32-bit value.
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// Int reads a machine int stored as 64 bits.
func (d *Decoder) Int() int { return int(d.I64()) }

// F64 reads a float64 by bit pattern.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// sliceLen reads and bounds-checks a length prefix against the bytes
// actually remaining (elemSize bytes per element), so corrupt lengths
// fail instead of driving huge allocations.
func (d *Decoder) sliceLen(elemSize int) int {
	n := int(d.U32())
	if d.err != nil {
		return 0
	}
	if n*elemSize > d.limit()-d.off {
		d.fail("slice claims %d elements but only %d bytes remain", n, d.limit()-d.off)
		return 0
	}
	return n
}

// Bytes reads a length-prefixed byte slice (copied out of the blob).
func (d *Decoder) Bytes() []byte {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, b)
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.sliceLen(1)
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// fixedInto checks a stored slice length against the destination the
// caller owns; a mismatch means the blob describes a differently-sized
// configuration.
func (d *Decoder) fixedInto(what string, stored, want int) bool {
	if d.err != nil {
		return false
	}
	if stored != want {
		d.fail("%s holds %d elements, this configuration needs %d (checkpoint does not match the predictor configuration)", what, stored, want)
		return false
	}
	return true
}

// U8sInto fills dst from a length-prefixed uint8 slice; the stored
// length must equal len(dst).
func (d *Decoder) U8sInto(dst []uint8) {
	n := d.sliceLen(1)
	if !d.fixedInto("uint8 slice", n, len(dst)) {
		return
	}
	copy(dst, d.take(n))
}

// I8sInto fills dst from a length-prefixed int8 slice.
func (d *Decoder) I8sInto(dst []int8) {
	n := d.sliceLen(1)
	if !d.fixedInto("int8 slice", n, len(dst)) {
		return
	}
	b := d.take(n)
	for i := range dst {
		dst[i] = int8(b[i])
	}
}

// U16sInto fills dst from a length-prefixed uint16 slice.
func (d *Decoder) U16sInto(dst []uint16) {
	n := d.sliceLen(2)
	if !d.fixedInto("uint16 slice", n, len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.U16()
	}
}

// U32sInto fills dst from a length-prefixed uint32 slice.
func (d *Decoder) U32sInto(dst []uint32) {
	n := d.sliceLen(4)
	if !d.fixedInto("uint32 slice", n, len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.U32()
	}
}

// I32sInto fills dst from a length-prefixed int32 slice.
func (d *Decoder) I32sInto(dst []int32) {
	n := d.sliceLen(4)
	if !d.fixedInto("int32 slice", n, len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.I32()
	}
}

// U64sInto fills dst from a length-prefixed uint64 slice.
func (d *Decoder) U64sInto(dst []uint64) {
	n := d.sliceLen(8)
	if !d.fixedInto("uint64 slice", n, len(dst)) {
		return
	}
	for i := range dst {
		dst[i] = d.U64()
	}
}

// BoolsInto fills dst from a length-prefixed bool slice.
func (d *Decoder) BoolsInto(dst []bool) {
	n := d.sliceLen(1)
	if !d.fixedInto("bool slice", n, len(dst)) {
		return
	}
	b := d.take(n)
	for i := range dst {
		dst[i] = b[i] != 0
	}
}
