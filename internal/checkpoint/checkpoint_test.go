package checkpoint

import (
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.Begin("outer", 1)
	e.U8(7)
	e.U16(65535)
	e.U32(1 << 30)
	e.U64(1 << 62)
	e.I8(-5)
	e.I32(-123456)
	e.I64(-1 << 40)
	e.Int(-42)
	e.F64(3.25)
	e.Bool(true)
	e.Bool(false)
	e.String("hello")
	e.Bytes([]byte{1, 2, 3})
	e.U8s([]uint8{9, 8})
	e.I8s([]int8{-1, 1})
	e.U16s([]uint16{10, 20})
	e.U32s([]uint32{100})
	e.I32s([]int32{-100, 100})
	e.U64s([]uint64{1 << 50})
	e.Bools([]bool{true, false, true})
	e.Begin("inner", 3)
	e.U64(99)
	e.End()
	e.End()

	d := NewDecoder(e.Blob())
	if v := d.Open("outer", 1); v != 1 {
		t.Fatalf("outer version %d, want 1 (err %v)", v, d.Err())
	}
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := d.U16(); got != 65535 {
		t.Fatalf("U16 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Fatalf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<62 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I8(); got != -5 {
		t.Fatalf("I8 = %d", got)
	}
	if got := d.I32(); got != -123456 {
		t.Fatalf("I32 = %d", got)
	}
	if got := d.I64(); got != -1<<40 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.Int(); got != -42 {
		t.Fatalf("Int = %d", got)
	}
	if got := d.F64(); got != 3.25 {
		t.Fatalf("F64 = %v", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool roundtrip")
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Bytes(); string(got) != "\x01\x02\x03" {
		t.Fatalf("Bytes = %v", got)
	}
	u8 := make([]uint8, 2)
	d.U8sInto(u8)
	if u8[0] != 9 || u8[1] != 8 {
		t.Fatalf("U8sInto = %v", u8)
	}
	i8 := make([]int8, 2)
	d.I8sInto(i8)
	if i8[0] != -1 || i8[1] != 1 {
		t.Fatalf("I8sInto = %v", i8)
	}
	u16 := make([]uint16, 2)
	d.U16sInto(u16)
	if u16[0] != 10 || u16[1] != 20 {
		t.Fatalf("U16sInto = %v", u16)
	}
	u32 := make([]uint32, 1)
	d.U32sInto(u32)
	if u32[0] != 100 {
		t.Fatalf("U32sInto = %v", u32)
	}
	i32 := make([]int32, 2)
	d.I32sInto(i32)
	if i32[0] != -100 || i32[1] != 100 {
		t.Fatalf("I32sInto = %v", i32)
	}
	u64 := make([]uint64, 1)
	d.U64sInto(u64)
	if u64[0] != 1<<50 {
		t.Fatalf("U64sInto = %v", u64)
	}
	bs := make([]bool, 3)
	d.BoolsInto(bs)
	if !bs[0] || bs[1] || !bs[2] {
		t.Fatalf("BoolsInto = %v", bs)
	}
	if v := d.Open("inner", 5); v != 3 {
		t.Fatalf("inner version %d, want 3 (err %v)", v, d.Err())
	}
	if got := d.U64(); got != 99 {
		t.Fatalf("inner U64 = %d", got)
	}
	d.Close()
	d.Close()
	if err := d.Err(); err != nil {
		t.Fatalf("roundtrip error: %v", err)
	}
}

// TestRefuseNewerFormat: a blob stamped with a future format version is
// rejected with the migration-discipline error, not misread.
func TestRefuseNewerFormat(t *testing.T) {
	e := NewEncoder()
	blob := e.Blob()
	// Bump the format version field (bytes 4..5, little-endian).
	blob[4], blob[5] = 0xFF, 0x00
	d := NewDecoder(blob)
	err := d.Err()
	if err == nil {
		t.Fatal("newer-format blob accepted")
	}
	if !strings.Contains(err.Error(), "understands at most format") {
		t.Fatalf("wrong refuse-newer error: %v", err)
	}
}

// TestRefuseNewerSection: a section versioned above what the reader
// passes as its maximum is refused with a clear error.
func TestRefuseNewerSection(t *testing.T) {
	e := NewEncoder()
	e.Begin("tage", 9)
	e.U64(1)
	e.End()
	d := NewDecoder(e.Blob())
	d.Open("tage", 2)
	err := d.Err()
	if err == nil {
		t.Fatal("newer section accepted")
	}
	if !strings.Contains(err.Error(), `section "tage" written under version 9`) {
		t.Fatalf("wrong section refuse-newer error: %v", err)
	}
}

// TestSectionNameMismatch: restoring the wrong predictor's blob fails
// loudly instead of misinterpreting bytes.
func TestSectionNameMismatch(t *testing.T) {
	e := NewEncoder()
	e.Begin("gshare", 1)
	e.End()
	d := NewDecoder(e.Blob())
	d.Open("tage", 1)
	if d.Err() == nil {
		t.Fatal("mismatched section name accepted")
	}
}

// TestLengthMismatch: a stored slice sized for another configuration is
// a config-mismatch error, not a partial fill.
func TestLengthMismatch(t *testing.T) {
	e := NewEncoder()
	e.I8s(make([]int8, 4))
	d := NewDecoder(e.Blob())
	d.I8sInto(make([]int8, 8))
	if d.Err() == nil {
		t.Fatal("slice length mismatch accepted")
	}
}

// TestTruncation: every truncation point of a valid blob errors instead
// of panicking or returning fabricated values.
func TestTruncation(t *testing.T) {
	e := NewEncoder()
	e.Begin("s", 1)
	e.U64(42)
	e.U32s([]uint32{1, 2, 3})
	e.End()
	blob := e.Blob()
	for n := 0; n < len(blob); n++ {
		d := NewDecoder(blob[:n])
		d.Open("s", 1)
		d.U64()
		dst := make([]uint32, 3)
		d.U32sInto(dst)
		d.Close()
		if d.Err() == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

// TestCorruptSliceLength: a length prefix claiming more elements than
// bytes remain must fail without allocating the claimed size.
func TestCorruptSliceLength(t *testing.T) {
	e := NewEncoder()
	e.U32(0xFFFFFFFF) // bogus length prefix with no payload
	d := NewDecoder(e.Blob())
	d.U64sInto(make([]uint64, 2))
	if d.Err() == nil {
		t.Fatal("absurd slice length accepted")
	}
}
