// Package gshare implements McFarling's gshare predictor, used by the
// paper (Section 4.1) as the representative first-generation single-table
// predictor: a table of 2-bit counters indexed by the XOR of the branch PC
// and the global history. The paper's configuration is 512 Kbits, i.e.
// 2^18 2-bit counters with an 18-bit history.
package gshare

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/histories"
	"repro/internal/memarray"
)

// Predictor is a gshare predictor.
type Predictor struct {
	table    []uint8 // 2-bit counters, 0..3
	mask     uint32
	histLen  uint
	ghr      uint32 // global history register, histLen bits
	stats    *memarray.Stats
	logTable uint
	name     string // formatted once: Name is on the per-run result path
}

// New returns a gshare predictor with 2^logTable 2-bit counters and a
// history length equal to logTable (capped at 32).
func New(logTable uint) *Predictor {
	h := logTable
	if h > 32 {
		h = 32
	}
	p := &Predictor{
		table:    make([]uint8, 1<<logTable),
		mask:     uint32(1<<logTable - 1),
		histLen:  h,
		stats:    &memarray.Stats{},
		logTable: logTable,
	}
	for i := range p.table {
		p.table[i] = 1 // weakly not-taken
	}
	p.name = fmt.Sprintf("gshare-%dKb", p.StorageBits()/1024)
	return p
}

// Ctx is the pipeline context: the index and counter read at prediction.
type Ctx struct {
	Index uint32
	Ctr   int32
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string { return p.name }

// StorageBits implements predictor.Predictor.
func (p *Predictor) StorageBits() int { return 2 * len(p.table) }

// index computes the gshare table index.
func (p *Predictor) index(pc uint64) uint32 {
	return (uint32(pc>>2) ^ (p.ghr & uint32(bitutil.Mask(p.histLen)))) & p.mask
}

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) bool {
	ctx.Index = p.index(pc)
	ctx.Ctr = int32(p.table[ctx.Index])
	return ctx.Ctr >= 2
}

// OnResolve implements predictor.Predictor: the speculative global history
// is updated immediately (it is repaired instantly on mispredictions in
// hardware, and on the correct path equals the architectural history).
func (p *Predictor) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {
	p.ghr = histories.Shift(p.ghr, taken, p.histLen)
}

// Retire implements predictor.Predictor.
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	old := ctx.Ctr
	if reread {
		old = int32(p.table[ctx.Index])
	}
	next := old
	if taken {
		if next < 3 {
			next++
		}
	} else if next > 0 {
		next--
	}
	if uint8(next) != p.table[ctx.Index] {
		p.table[ctx.Index] = uint8(next)
		p.stats.RecordWrite(true)
	} else {
		p.stats.RecordWrite(false)
	}
}

// AccessStats implements predictor.Predictor.
func (p *Predictor) AccessStats() *memarray.Stats { return p.stats }

// Reset implements predictor.Predictor: counters back to weakly not-taken,
// history and accounting cleared, reusing the table storage.
func (p *Predictor) Reset() {
	for i := range p.table {
		p.table[i] = 1
	}
	p.ghr = 0
	p.stats.Reset()
}
