package gshare

import "repro/internal/checkpoint"

// Snapshot implements predictor.Predictor.
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("gshare", 1)
	enc.U8s(p.table)
	enc.U32(p.ghr)
	p.stats.Snapshot(enc)
	enc.End()
}

// Restore implements predictor.Predictor.
func (p *Predictor) Restore(dec *checkpoint.Decoder) {
	dec.Open("gshare", 1)
	dec.U8sInto(p.table)
	p.ghr = dec.U32()
	p.stats.LoadSnapshot(dec)
	dec.Close()
}
