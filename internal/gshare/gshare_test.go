package gshare

import (
	"testing"

	"repro/internal/rng"
)

func runImmediate(p *Predictor, pcs []uint64, outs []bool) (late int) {
	var ctx Ctx
	half := len(pcs) / 2
	for i := range pcs {
		pred := p.Predict(pcs[i], &ctx)
		if pred != outs[i] && i >= half {
			late++
		}
		p.OnResolve(pcs[i], outs[i], pred != outs[i], &ctx)
		p.Retire(pcs[i], outs[i], &ctx, true)
	}
	return
}

func TestStorageBudget512Kbits(t *testing.T) {
	p := New(18)
	if got := p.StorageBits(); got != 512*1024 {
		t.Fatalf("StorageBits = %d, want %d", got, 512*1024)
	}
}

func TestLearnsBiasedBranch(t *testing.T) {
	p := New(12)
	n := 4000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x4000
		outs[i] = true
	}
	if late := runImmediate(p, pcs, outs); late > 10 {
		t.Fatalf("late mispredicts on always-taken: %d", late)
	}
}

func TestLearnsShortHistoryPattern(t *testing.T) {
	// A short repeating global pattern is gshare's home turf.
	p := New(12)
	n := 20000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x100
		outs[i] = i%4 == 0
	}
	late := runImmediate(p, pcs, outs)
	if rate := float64(late) / float64(n/2); rate > 0.02 {
		t.Fatalf("period-4 pattern late rate = %.4f", rate)
	}
}

func TestFailsLongPeriodPattern(t *testing.T) {
	// A pattern whose period exceeds the history length cannot be fully
	// captured — the structural weakness TAGE's long history removes.
	p := New(8) // 8-bit history
	n := 60000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x200
		outs[i] = i%37 == 0 // period far beyond 8 bits of history
	}
	late := runImmediate(p, pcs, outs)
	rate := float64(late) / float64(n/2)
	// Not zero: the point is it cannot reach near-perfect prediction.
	if rate < 0.005 {
		t.Fatalf("gshare unexpectedly perfect on long-period pattern (%.4f)", rate)
	}
}

func TestIndexUsesHistory(t *testing.T) {
	p := New(10)
	var ctx1, ctx2 Ctx
	p.Predict(0x40, &ctx1)
	// Change the history and the index must (almost always) change.
	for i := 0; i < 10; i++ {
		p.OnResolve(0x40, i%2 == 0, false, &ctx1)
	}
	p.Predict(0x40, &ctx2)
	if ctx1.Index == ctx2.Index {
		t.Fatal("index did not react to history")
	}
}

func TestScenarioBClobbers(t *testing.T) {
	// Two updates from the same stale snapshot must advance the counter by
	// only one step (the second write clobbers with the same value).
	p := New(10)
	var ctx1, ctx2 Ctx
	p.Predict(0x80, &ctx1)
	ctx2 = ctx1
	p.Retire(0x80, true, &ctx1, false)
	p.Retire(0x80, true, &ctx2, false)
	var ctx3 Ctx
	p.Predict(0x80, &ctx3)
	if ctx3.Ctr != 2 {
		t.Fatalf("counter = %d after two stale updates, want 2 (one step from 1)", ctx3.Ctr)
	}
}

func TestSilentWriteAccounting(t *testing.T) {
	p := New(10)
	var ctx Ctx
	r := rng.NewXoshiro(3)
	for i := 0; i < 1000; i++ {
		pc := uint64(0x40)
		taken := r.Bool(0.95)
		p.Predict(pc, &ctx)
		p.OnResolve(pc, taken, false, &ctx)
		p.Retire(pc, taken, &ctx, true)
	}
	st := p.AccessStats()
	if st.SilentSkipped == 0 {
		t.Fatal("expected silent writes on a saturating counter")
	}
}
