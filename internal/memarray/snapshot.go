package memarray

import "repro/internal/checkpoint"

// Snapshot writes every access counter.
func (s *Stats) Snapshot(enc *checkpoint.Encoder) {
	enc.U64(s.PredictReads)
	enc.U64(s.RetireReads)
	enc.U64(s.EntryWrites)
	enc.U64(s.SilentSkipped)
	enc.U64(s.WriteEvents)
	enc.U64(s.RetiredBranch)
	enc.U64(s.Mispredictions)
}

// LoadSnapshot restores the access counters.
func (s *Stats) LoadSnapshot(dec *checkpoint.Decoder) {
	s.PredictReads = dec.U64()
	s.RetireReads = dec.U64()
	s.EntryWrites = dec.U64()
	s.SilentSkipped = dec.U64()
	s.WriteEvents = dec.U64()
	s.RetiredBranch = dec.U64()
	s.Mispredictions = dec.U64()
}

// Snapshot writes the two-deep bank exclusion window.
func (t *BankTracker) Snapshot(enc *checkpoint.Encoder) {
	enc.Int(t.prev1)
	enc.Int(t.prev2)
}

// LoadSnapshot restores the bank exclusion window; stored banks must be
// -1 (no access) or a valid bank index.
func (t *BankTracker) LoadSnapshot(dec *checkpoint.Decoder) {
	p1 := dec.Int()
	p2 := dec.Int()
	if dec.Err() != nil {
		return
	}
	if p1 < -1 || p1 >= NumBanks || p2 < -1 || p2 >= NumBanks {
		dec.Failf("bank tracker state (%d, %d) out of range", p1, p2)
		return
	}
	t.prev1, t.prev2 = p1, p2
}
