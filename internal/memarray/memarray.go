// Package memarray models the hardware memory structure of predictor
// tables: per-access accounting (reads at prediction time, reads at retire
// time, entry writes, silent updates avoided), the EV8-style bank-selection
// algorithm of Section 4.3 used for 4-way interleaved single-ported tables,
// and the bank-conflict scheduler that validates the paper's claim that,
// with prediction given priority, every bank still has two free cycles out
// of three for updates.
package memarray

import "fmt"

// Stats accumulates predictor-level access counts. The counting conventions
// match Section 4 of the paper:
//
//   - PredictReads counts one access event per prediction (all tables of a
//     predictor are read in parallel; that is one access to the predictor).
//   - RetireReads counts one access event per retire-time re-read.
//   - EntryWrites counts effective (non-silent) entry writes, summed over
//     all tables — the quantity reported as "effective writes per
//     misprediction" in Section 4.1.1.
//   - SilentSkipped counts writes elided because the new value equalled the
//     stored value.
type Stats struct {
	PredictReads  uint64
	RetireReads   uint64
	EntryWrites   uint64
	SilentSkipped uint64
	// WriteEvents counts retired branches whose update effectively wrote
	// at least one entry — the predictor-level write count the paper
	// reports (a fully silent update generates no write access at all).
	WriteEvents    uint64
	RetiredBranch  uint64
	Mispredictions uint64
}

// RecordWrite accounts one entry-write attempt; effective indicates the
// value actually changed.
func (s *Stats) RecordWrite(effective bool) {
	var e uint64
	if effective {
		e = 1
	}
	s.EntryWrites += e
	s.SilentSkipped += 1 - e
}

// WritesPerMisprediction returns effective predictor write events per
// misprediction (Section 4.1.1's first metric).
func (s *Stats) WritesPerMisprediction() float64 {
	if s.Mispredictions == 0 {
		return 0
	}
	return float64(s.WriteEvents) / float64(s.Mispredictions)
}

// WritesPer100Branches returns effective write events per 100 retired
// branches (Section 4.1.1's second metric).
func (s *Stats) WritesPer100Branches() float64 {
	if s.RetiredBranch == 0 {
		return 0
	}
	return 100 * float64(s.WriteEvents) / float64(s.RetiredBranch)
}

// AccessesPerBranch returns the average number of predictor accesses per
// retired branch: prediction reads + retire reads + write events, the
// "1.13 accesses" quantity of Section 4.2.
func (s *Stats) AccessesPerBranch() float64 {
	if s.RetiredBranch == 0 {
		return 0
	}
	return float64(s.PredictReads+s.RetireReads+s.WriteEvents) / float64(s.RetiredBranch)
}

// SilentFraction returns the fraction of retired branches whose update was
// entirely silent (no write access needed) — "more than 90% in average"
// per the paper's conclusion.
func (s *Stats) SilentFraction() float64 {
	if s.RetiredBranch == 0 {
		return 0
	}
	return 1 - float64(s.WriteEvents)/float64(s.RetiredBranch)
}

// Reset zeroes every counter, so a pooled predictor's accounting starts
// from scratch.
func (s *Stats) Reset() { *s = Stats{} }

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PredictReads += other.PredictReads
	s.RetireReads += other.RetireReads
	s.EntryWrites += other.EntryWrites
	s.SilentSkipped += other.SilentSkipped
	s.WriteEvents += other.WriteEvents
	s.RetiredBranch += other.RetiredBranch
	s.Mispredictions += other.Mispredictions
}

// NumBanks is the interleaving factor used throughout (the paper's
// proposal is 4-way interleaving).
const NumBanks = 4

// BankTracker implements the bank-selection algorithm of Section 4.3:
// the bank accessed by a prediction must differ from the banks accessed by
// the two previous predictions.
//
//	b(Z) = Z & 3; while (b(Z)==b(X) || b(Z)==b(Y)) b(Z) = (b(Z)+1) & 3
//
// With 4 banks and 2 exclusions the loop always terminates, and for every
// bank every 3-cycle window has at least 2 cycles free of predictions.
type BankTracker struct {
	prev1, prev2 int // banks of the two previous predictions (-1 = none)
}

// NewBankTracker returns a tracker with no prior predictions.
func NewBankTracker() *BankTracker { return &BankTracker{prev1: -1, prev2: -1} }

// Reset forgets the two previous predictions (the fresh-tracker state).
func (t *BankTracker) Reset() { t.prev1, t.prev2 = -1, -1 }

// Select returns the bank to use for predicting the branch at pc and
// records it as the most recent access.
func (t *BankTracker) Select(pc uint64) int {
	// Natural bank from a mix of low PC bits (the paper's Z & 3; mixing
	// keeps the spread uniform for any instruction alignment).
	b := int(((pc >> 2) ^ (pc >> 4)) & (NumBanks - 1))
	for b == t.prev1 || b == t.prev2 {
		b = (b + 1) & (NumBanks - 1)
	}
	t.prev2 = t.prev1
	t.prev1 = b
	return b
}

// SkipUnconditional records a cycle with no predictor access (the paper's
// b(Z) = -1 case for unconditional branches).
func (t *BankTracker) SkipUnconditional() {
	t.prev2 = t.prev1
	t.prev1 = -1
}

// ConflictScheduler models the per-bank access scheduling of Section 4.3
// for one predictor table: predictions have priority, writes at retire have
// priority over reads at retire, and deferred retire operations wait for a
// free cycle. The paper's claim — retire reads delayed at most 1 cycle and
// updates at most 2 cycles — is validated by tests against this model.
type ConflictScheduler struct {
	// pending retire operations per bank, in FIFO order
	pending [NumBanks][]pendingOp

	// statistics
	MaxReadDelay  int
	MaxWriteDelay int
	TotalOps      uint64
	DelayedOps    uint64
}

type pendingOp struct {
	isWrite bool
	issued  int64 // cycle the op became ready
}

// Tick advances one cycle. predictBank is the bank consumed by this cycle's
// prediction (-1 if none). newOps are retire-time operations that become
// ready this cycle. It drains at most one pending op per non-conflicting
// bank, modelling single-ported banks.
func (c *ConflictScheduler) Tick(cycle int64, predictBank int, newOps []RetireOp) {
	for _, op := range newOps {
		if op.Bank < 0 || op.Bank >= NumBanks {
			panic(fmt.Sprintf("memarray: bad bank %d", op.Bank))
		}
		c.pending[op.Bank] = append(c.pending[op.Bank], pendingOp{isWrite: op.IsWrite, issued: cycle})
		c.TotalOps++
	}
	for b := 0; b < NumBanks; b++ {
		if b == predictBank {
			continue // prediction has priority; bank busy this cycle
		}
		if len(c.pending[b]) == 0 {
			continue
		}
		// Writes have priority over reads at retire time.
		sel := 0
		if !c.pending[b][0].isWrite {
			for i, op := range c.pending[b] {
				if op.isWrite {
					sel = i
					break
				}
			}
		}
		op := c.pending[b][sel]
		c.pending[b] = append(c.pending[b][:sel], c.pending[b][sel+1:]...)
		delay := int(cycle - op.issued)
		if delay > 0 {
			c.DelayedOps++
		}
		if op.isWrite {
			if delay > c.MaxWriteDelay {
				c.MaxWriteDelay = delay
			}
		} else if delay > c.MaxReadDelay {
			c.MaxReadDelay = delay
		}
	}
}

// PendingCount returns the number of queued retire operations.
func (c *ConflictScheduler) PendingCount() int {
	n := 0
	for b := range c.pending {
		n += len(c.pending[b])
	}
	return n
}

// RetireOp is a retire-time predictor table operation for the scheduler.
type RetireOp struct {
	Bank    int
	IsWrite bool
}
