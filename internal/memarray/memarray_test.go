package memarray

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStatsRatios(t *testing.T) {
	var s Stats
	s.RetiredBranch = 1000
	s.Mispredictions = 40
	s.PredictReads = 1000
	s.RetireReads = 40
	s.EntryWrites = 120
	s.SilentSkipped = 910
	s.WriteEvents = 90
	if got := s.WritesPerMisprediction(); got != 2.25 {
		t.Fatalf("WritesPerMisprediction = %v", got)
	}
	if got := s.WritesPer100Branches(); got != 9 {
		t.Fatalf("WritesPer100Branches = %v", got)
	}
	if got := s.AccessesPerBranch(); got != 1.13 {
		t.Fatalf("AccessesPerBranch = %v", got)
	}
	if got := s.SilentFraction(); got != 0.91 {
		t.Fatalf("SilentFraction = %v", got)
	}
}

func TestStatsZeroDivision(t *testing.T) {
	var s Stats
	if s.WritesPerMisprediction() != 0 || s.WritesPer100Branches() != 0 ||
		s.AccessesPerBranch() != 0 || s.SilentFraction() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{PredictReads: 1, RetireReads: 2, EntryWrites: 3, SilentSkipped: 4, WriteEvents: 2, RetiredBranch: 5, Mispredictions: 6}
	b := a
	a.Add(b)
	if a.PredictReads != 2 || a.Mispredictions != 12 || a.RetiredBranch != 10 || a.WriteEvents != 4 {
		t.Fatalf("Add result: %+v", a)
	}
}

// TestBankSelectorAvoidsPreviousTwo is the correctness property of the b(Z)
// algorithm: three consecutive predictions always hit three distinct banks.
func TestBankSelectorAvoidsPreviousTwo(t *testing.T) {
	tr := NewBankTracker()
	r := rng.NewXoshiro(42)
	var last, last2 = -1, -1
	for i := 0; i < 100000; i++ {
		pc := uint64(r.Uint32())
		b := tr.Select(pc)
		if b < 0 || b >= NumBanks {
			t.Fatalf("bank out of range: %d", b)
		}
		if b == last || b == last2 {
			t.Fatalf("step %d: bank %d collides with previous (%d, %d)", i, b, last, last2)
		}
		last2, last = last, b
	}
}

func TestBankSelectorPrefersNaturalBank(t *testing.T) {
	tr := NewBankTracker()
	// With no history the natural bank ((pc>>2)^(pc>>4))&3 is used.
	pcA := uint64(0x10) // natural bank (4^1)&3 = 1
	if b := tr.Select(pcA); b != 1 {
		t.Fatalf("first selection = %d, want 1", b)
	}
	// Same natural bank now excluded: the selection must walk to 2.
	if b := tr.Select(pcA); b != 2 {
		t.Fatalf("second selection = %d, want 2", b)
	}
}

func TestBankSelectorStableForAlignedPCs(t *testing.T) {
	// 16-byte-aligned sites (pc & 3 == 0) must still spread across banks:
	// the natural-bank hash uses higher PC bits.
	tr := NewBankTracker()
	var counts [NumBanks]int
	for pc := uint64(0x400000); pc < 0x400000+4096*16; pc += 16 {
		counts[tr.Select(pc)]++
	}
	for b, c := range counts {
		if c == 0 {
			t.Fatalf("bank %d never selected for aligned PCs", b)
		}
	}
}

func TestBankSelectorSkipUnconditional(t *testing.T) {
	tr := NewBankTracker()
	b1 := tr.Select(0x0) // bank 0
	tr.SkipUnconditional()
	tr.SkipUnconditional()
	// After two unconditional branches, bank 0 is allowed again.
	b2 := tr.Select(0x0)
	if b1 != 0 || b2 != 0 {
		t.Fatalf("banks = %d, %d, want 0, 0", b1, b2)
	}
}

func TestBankSelectorQuickDistribution(t *testing.T) {
	// All four banks must be used with roughly equal frequency on random PCs.
	tr := NewBankTracker()
	r := rng.NewXoshiro(7)
	var counts [NumBanks]int
	const n = 40000
	for i := 0; i < n; i++ {
		counts[tr.Select(uint64(r.Uint32()))]++
	}
	for b, c := range counts {
		frac := float64(c) / n
		if frac < 0.15 || frac > 0.35 {
			t.Fatalf("bank %d frequency %v, want ~0.25", b, frac)
		}
	}
}

// TestSchedulerBoundedDelays validates the paper's claim: with the b(Z)
// selection guaranteeing 2 free cycles per 3-cycle window per bank, retire
// reads are delayed at most ~1 cycle and writes at most ~2 cycles under the
// scenario-C access rates (rare retire reads and writes).
func TestSchedulerBoundedDelays(t *testing.T) {
	tr := NewBankTracker()
	sched := &ConflictScheduler{}
	r := rng.NewXoshiro(11)
	for cycle := int64(0); cycle < 200000; cycle++ {
		pb := tr.Select(uint64(r.Uint32()))
		var ops []RetireOp
		// Scenario C rates: ~4% retire reads, ~9% effective writes.
		if r.Bool(0.04) {
			ops = append(ops, RetireOp{Bank: r.Intn(NumBanks), IsWrite: false})
		}
		if r.Bool(0.09) {
			ops = append(ops, RetireOp{Bank: r.Intn(NumBanks), IsWrite: true})
		}
		sched.Tick(cycle, pb, ops)
	}
	if sched.PendingCount() > 4 {
		t.Fatalf("queue did not drain: %d pending", sched.PendingCount())
	}
	// Typical delays are 0-1 cycles (the paper's claim); under randomised
	// stress the tail stays within a handful of cycles, far from needing
	// "huge buffering".
	if sched.MaxReadDelay > 5 {
		t.Fatalf("max retire-read delay = %d, want small", sched.MaxReadDelay)
	}
	if sched.MaxWriteDelay > 5 {
		t.Fatalf("max write delay = %d, want small", sched.MaxWriteDelay)
	}
}

func TestSchedulerWritePriority(t *testing.T) {
	sched := &ConflictScheduler{}
	// Enqueue a read then a write on the same bank while the bank is blocked.
	sched.Tick(0, 0, []RetireOp{{Bank: 0, IsWrite: false}, {Bank: 0, IsWrite: true}})
	// Bank 0 was blocked by prediction at cycle 0... it was predictBank=0, so
	// nothing drained. At cycle 1 bank 0 is free: the write must drain first.
	sched.Tick(1, 1, nil)
	if sched.MaxWriteDelay != 1 {
		t.Fatalf("write should have drained at cycle 1 with delay 1, got max delay %d", sched.MaxWriteDelay)
	}
	// The read drains at cycle 2.
	sched.Tick(2, 1, nil)
	if sched.PendingCount() != 0 {
		t.Fatal("read did not drain")
	}
	if sched.MaxReadDelay != 2 {
		t.Fatalf("read delay = %d, want 2", sched.MaxReadDelay)
	}
}

func TestSchedulerPanicsOnBadBank(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for invalid bank")
		}
	}()
	(&ConflictScheduler{}).Tick(0, -1, []RetireOp{{Bank: 9}})
}

func TestBankSelectorNeverLoopsForever(t *testing.T) {
	f := func(pcs []uint32) bool {
		tr := NewBankTracker()
		for _, pc := range pcs {
			b := tr.Select(uint64(pc))
			if b < 0 || b >= NumBanks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
