package bitutil

import (
	"testing"
	"testing/quick"
)

func TestSatSignedBounds(t *testing.T) {
	for _, bits := range []uint{2, 3, 5, 6} {
		v := int32(0)
		for i := 0; i < 100; i++ {
			v = SatIncSigned(v, bits)
		}
		if v != SignedMax(bits) {
			t.Fatalf("bits=%d: inc saturated at %d, want %d", bits, v, SignedMax(bits))
		}
		for i := 0; i < 1000; i++ {
			v = SatDecSigned(v, bits)
		}
		if v != SignedMin(bits) {
			t.Fatalf("bits=%d: dec saturated at %d, want %d", bits, v, SignedMin(bits))
		}
	}
}

func TestSatSignedStaysInRangeProperty(t *testing.T) {
	// Property: starting anywhere in range, any sequence of updates keeps
	// the counter in range.
	f := func(start int8, ops []bool) bool {
		const bits = 3
		v := int32(start)
		if v > SignedMax(bits) {
			v = SignedMax(bits)
		}
		if v < SignedMin(bits) {
			v = SignedMin(bits)
		}
		for _, up := range ops {
			v = SatUpdateSigned(v, up, bits)
			if v > SignedMax(bits) || v < SignedMin(bits) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestSatUnsigned(t *testing.T) {
	v := uint32(0)
	for i := 0; i < 300; i++ {
		v = SatIncUnsigned(v, 8)
	}
	if v != 255 {
		t.Fatalf("inc saturated at %d, want 255", v)
	}
	for i := 0; i < 300; i++ {
		v = SatDecUnsigned(v)
	}
	if v != 0 {
		t.Fatalf("dec saturated at %d, want 0", v)
	}
}

func TestTakenSign(t *testing.T) {
	cases := []struct {
		v    int32
		want bool
	}{{-4, false}, {-1, false}, {0, true}, {3, true}}
	for _, c := range cases {
		if got := TakenSign(c.v); got != c.want {
			t.Errorf("TakenSign(%d) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestCentered(t *testing.T) {
	// Centered values are odd, monotone, and symmetric around zero.
	for v := int32(-4); v <= 3; v++ {
		c := Centered(v)
		if c%2 == 0 {
			t.Fatalf("Centered(%d) = %d is even", v, c)
		}
		if v >= 0 && c <= 0 || v < 0 && c >= 0 {
			t.Fatalf("Centered(%d) = %d has wrong sign", v, c)
		}
	}
	if Centered(0) != 1 || Centered(-1) != -1 || Centered(3) != 7 || Centered(-4) != -7 {
		t.Fatal("Centered known values wrong")
	}
}

func TestIsWeak(t *testing.T) {
	if !IsWeak(0) || !IsWeak(-1) {
		t.Fatal("0 and -1 must be weak")
	}
	if IsWeak(1) || IsWeak(-2) {
		t.Fatal("1 and -2 must not be weak")
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Fatal("Mask(0)")
	}
	if Mask(1) != 1 {
		t.Fatal("Mask(1)")
	}
	if Mask(10) != 0x3ff {
		t.Fatal("Mask(10)")
	}
	if Mask(64) != ^uint64(0) {
		t.Fatal("Mask(64)")
	}
	if Mask(70) != ^uint64(0) {
		t.Fatal("Mask(70) should clamp")
	}
}

func TestIsPow2(t *testing.T) {
	for _, v := range []int{1, 2, 4, 1024, 1 << 20} {
		if !IsPow2(v) {
			t.Errorf("IsPow2(%d) = false", v)
		}
	}
	for _, v := range []int{0, -2, 3, 12, 1000} {
		if IsPow2(v) {
			t.Errorf("IsPow2(%d) = true", v)
		}
	}
}

func TestLog2(t *testing.T) {
	cases := map[int]uint{1: 0, 2: 1, 3: 1, 4: 2, 1024: 10, 1 << 20: 20}
	for v, want := range cases {
		if got := Log2(v); got != want {
			t.Errorf("Log2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024}
	for v, want := range cases {
		if got := CeilPow2(v); got != want {
			t.Errorf("CeilPow2(%d) = %d, want %d", v, got, want)
		}
	}
}

func TestMix64Avalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := Mix64(0x123456789abcdef)
	totalFlips := 0
	for bit := uint(0); bit < 64; bit++ {
		d := Mix64(0x123456789abcdef ^ (1 << bit))
		x := base ^ d
		for x != 0 {
			totalFlips += int(x & 1)
			x >>= 1
		}
	}
	avg := float64(totalFlips) / 64
	if avg < 24 || avg > 40 {
		t.Fatalf("avalanche average flips = %v, want ~32", avg)
	}
}

func TestSatUpdateQuickCheckUnsignedWidths(t *testing.T) {
	f := func(ops []bool) bool {
		v := uint32(0)
		for _, up := range ops {
			if up {
				v = SatIncUnsigned(v, 3)
			} else {
				v = SatDecUnsigned(v)
			}
			if v > 7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
