// Package bitutil provides the small integer primitives that branch
// predictors are made of: saturating signed/unsigned counters, sign and
// centering helpers, and power-of-two mask arithmetic.
//
// Conventions follow the branch-prediction literature: an n-bit signed
// prediction counter takes values in [-2^(n-1), 2^(n-1)-1]; its sign bit
// (value >= 0 meaning taken) is the prediction; the "centered" value of a
// counter c is 2c+1, which is symmetric around zero and never zero, as used
// by GEHL-style adder trees (Seznec, ISCA 2005).
package bitutil

// The counter helpers below are written in conditional-move form (compute
// both outcomes, select with a comparison) rather than with taken-dependent
// branches: the direction of a simulated branch is close to a coin flip, so
// a branch on it in the per-branch hot path mispredicts half the time.

// SatIncSigned increments a signed counter saturating at max for the given
// width in bits. Width must be in [1, 63].
func SatIncSigned(v int32, bits uint) int32 {
	max := int32(1)<<(bits-1) - 1
	d := int32(0)
	if v < max {
		d = 1
	}
	return v + d
}

// SatDecSigned decrements a signed counter saturating at min for the given
// width in bits.
func SatDecSigned(v int32, bits uint) int32 {
	min := -(int32(1) << (bits - 1))
	d := int32(0)
	if v > min {
		d = 1
	}
	return v - d
}

// SatUpdateSigned moves a signed counter toward taken (up) or not-taken
// (down), saturating at the bounds for the given width.
func SatUpdateSigned(v int32, taken bool, bits uint) int32 {
	max := int32(1)<<(bits-1) - 1
	d := int32(-1)
	if taken {
		d = 1
	}
	nv := v + d
	if nv > max {
		nv = max
	}
	if nv < -max-1 {
		nv = -max - 1
	}
	return nv
}

// SatIncUnsigned increments an unsigned counter saturating at 2^bits-1.
func SatIncUnsigned(v uint32, bits uint) uint32 {
	max := uint32(1)<<bits - 1
	d := uint32(0)
	if v < max {
		d = 1
	}
	return v + d
}

// SatDecUnsigned decrements an unsigned counter saturating at zero.
func SatDecUnsigned(v uint32) uint32 {
	d := uint32(0)
	if v > 0 {
		d = 1
	}
	return v - d
}

// B2u returns 1 for true and 0 for false, in a form the compiler lowers to
// a flag materialisation instead of a branch.
func B2u(b bool) uint32 {
	var v uint32
	if b {
		v = 1
	}
	return v
}

// SignedMax returns the largest value of a signed counter of the given width.
func SignedMax(bits uint) int32 { return int32(1)<<(bits-1) - 1 }

// SignedMin returns the smallest value of a signed counter of the given width.
func SignedMin(bits uint) int32 { return -(int32(1) << (bits - 1)) }

// TakenSign reports the prediction encoded by a signed counter: values >= 0
// predict taken.
func TakenSign(v int32) bool { return v >= 0 }

// Centered returns 2v+1, the centered counter value used in adder trees.
func Centered(v int32) int32 { return 2*v + 1 }

// IsWeak reports whether a signed counter holds one of the two weakest
// states (-1 or 0), i.e. the confidence of its prediction is minimal.
func IsWeak(v int32) bool { return v == 0 || v == -1 }

// WeakTaken and WeakNotTaken are the canonical initialization values for a
// newly allocated signed prediction counter.
const (
	WeakTaken    int32 = 0
	WeakNotTaken int32 = -1
)

// Mask returns a mask with the low n bits set. n must be in [0, 64].
func Mask(n uint) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << n) - 1
}

// IsPow2 reports whether v is a positive power of two.
func IsPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

// Log2 returns floor(log2(v)) for v > 0, and 0 for v <= 0.
func Log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// CeilPow2 returns the smallest power of two >= v (v > 0).
func CeilPow2(v int) int {
	p := 1
	for p < v {
		p <<= 1
	}
	return p
}

// Mix64 is a strong 64-bit finalizer (Stafford variant 13 of the murmur3
// finalizer), used throughout for index hashing where the paper's exact
// hash is unspecified.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
