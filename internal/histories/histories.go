// Package histories implements the branch-history state that geometric
// history length predictors are built on: a long global direction history
// kept in a circular buffer (as the paper notes, "repairing the global
// history is straightforward if one uses a circular buffer"), a hashed path
// history, per-branch local histories, and the incrementally-updated folded
// ("cyclic shift register") compression of long histories that makes
// indexing 2000-bit histories feasible in hardware and O(1) in software.
package histories

import (
	"math"

	"repro/internal/bitutil"
)

// Global is a global branch direction history of unbounded logical length,
// stored in a power-of-two circular buffer. Index 0 is the most recent
// outcome. It supports checkpoint/restore, which is how a hardware
// implementation repairs history on a misprediction.
type Global struct {
	buf  []uint8
	head int // position of the most recent outcome
	mask int
	n    uint64 // total outcomes pushed
}

// NewGlobal returns a Global able to serve Bit(i) for i < capacity.
// capacity is rounded up to a power of two.
func NewGlobal(capacity int) *Global {
	c := bitutil.CeilPow2(capacity)
	return &Global{buf: make([]uint8, c), head: 0, mask: c - 1}
}

// Push records the outcome of the most recent branch.
func (g *Global) Push(taken bool) {
	g.head = (g.head + 1) & g.mask
	var b uint8
	if taken {
		b = 1
	}
	g.buf[g.head] = b
	g.n++
}

// Bit returns the outcome of the i-th most recent branch (0 = most recent)
// as 0 or 1. Bits older than the buffer capacity or than the number of
// pushes read as 0.
func (g *Global) Bit(i int) uint32 {
	if uint64(i) >= g.n || i > g.mask {
		return 0
	}
	return uint32(g.buf[(g.head-i)&g.mask])
}

// Len returns the number of outcomes pushed so far.
func (g *Global) Len() uint64 { return g.n }

// Reset returns the history to its initial empty state, reusing the
// buffer, so a pooled predictor can be rewound without reallocating.
func (g *Global) Reset() {
	for i := range g.buf {
		g.buf[i] = 0
	}
	g.head, g.n = 0, 0
}

// Checkpoint captures the current history position for later restore.
type Checkpoint struct {
	head int
	n    uint64
}

// Save captures the current position.
func (g *Global) Save() Checkpoint { return Checkpoint{head: g.head, n: g.n} }

// Restore rewinds the history to a previous checkpoint. Entries pushed
// after the checkpoint become invisible (they may be overwritten by
// subsequent pushes). Restoring forward is not supported.
func (g *Global) Restore(c Checkpoint) {
	g.head = c.head
	g.n = c.n
}

// Folded is the incrementally maintained fold (XOR-compression) of the most
// recent Length bits of a Global history down to Width bits. It is the
// "circular shift register" of the PPM-like and TAGE predictor
// implementations: after each Push on the underlying history, call Update
// exactly once.
//
// Folded is a plain value type: predictors store their folds in flat
// []Folded slices so that the per-branch update loop walks contiguous
// memory instead of chasing one pointer per fold. The zero Folded is an
// inert placeholder (Length 0, Value 0); construct real folds with
// NewFolded.
//
// Invariant (checked by property tests): Value() equals the XOR over
// i in [0, Length) of Bit(i) << (i mod Width).
//
// The struct is deliberately kept small — 20 bytes, with narrow
// Width/Length fields — so a predictor's whole fold array stays
// cache-resident: the per-branch update walks every fold, making their
// footprint a first-order throughput term.
type Folded struct {
	comp   uint32
	mask   uint32 // (1 << Width) - 1
	outBit uint32 // 1 << (Length % Width): where the expiring bit leaves the fold
	Width  uint8  // folded width in bits (1..31)
	Length int32  // history length being folded
}

// NewFolded returns a fold of `length` history bits into `width` bits.
func NewFolded(length int, width uint) Folded {
	if width < 1 || width > 31 {
		panic("histories: folded width out of range")
	}
	return Folded{
		Width:  uint8(width),
		Length: int32(length),
		outBit: 1 << (uint(length) % width),
		mask:   uint32(bitutil.Mask(width)),
	}
}

// Update incorporates the most recent outcome (which must already have been
// pushed into g) and expires the bit that left the window.
func (f *Folded) Update(g *Global) {
	f.UpdateBits(g.Bit(0), g.Bit(int(f.Length)))
}

// UpdateBits is the hot-path form of Update for callers that already hold
// the two history bits the fold consumes: newest is the just-pushed outcome
// (g.Bit(0)) and oldest the bit leaving the window (g.Bit(Length)). Several
// folds sharing one history length can thus be advanced from a single pair
// of history reads. The expiring bit lands via the precomputed outBit mask
// ((-oldest)&outBit == oldest<<outpoint for oldest in {0,1}), leaving one
// variable shift in the whole update.
func (f *Folded) UpdateBits(newest, oldest uint32) {
	c := (f.comp << 1) | newest
	c ^= (-oldest) & f.outBit
	c ^= c >> (f.Width & 31) // &31: tells the compiler no shift guard is needed
	f.comp = c & f.mask
}

// Value returns the current folded value.
func (f *Folded) Value() uint32 { return f.comp }

// Reset clears the fold (e.g. after a history restore) so it can be
// recomputed with Recompute.
func (f *Folded) Reset() { f.comp = 0 }

// Recompute recalculates the fold from the underlying history from scratch.
// Used after history repair and by tests as the ground truth.
func (f *Folded) Recompute(g *Global) {
	var v uint32
	for i := 0; i < int(f.Length); i++ {
		v ^= g.Bit(i) << (uint(i) % uint(f.Width))
	}
	f.comp = v
}

// TableFolds bundles the three folds a TAGE-style tagged table maintains —
// index, tag hash 1 and tag hash 2 — which all compress the same history
// length. Updating them together fetches the shared newest/oldest history
// bits once per table instead of once per fold, cutting the per-branch
// history reads of an M-table predictor from 6M to M+1 (the newest bit is
// shared by every table).
type TableFolds struct {
	Idx  Folded
	Tag1 Folded
	Tag2 Folded
}

// NewTableFolds builds the fold triple for one tagged table: history length
// length folded to idxWidth index bits and tagWidth/tag2Width tag bits.
func NewTableFolds(length int, idxWidth, tagWidth, tag2Width uint) TableFolds {
	return TableFolds{
		Idx:  NewFolded(length, idxWidth),
		Tag1: NewFolded(length, tagWidth),
		Tag2: NewFolded(length, tag2Width),
	}
}

// Reset clears all three folds (the state matching an empty history).
func (t *TableFolds) Reset() {
	t.Idx.Reset()
	t.Tag1.Reset()
	t.Tag2.Reset()
}

// oldestBit is Global.Bit with the buffer fields pre-fetched by the
// caller, shared by the batched updaters so the guard and index logic
// exist in exactly one place. buf must be g.buf[:mask+1].
func oldestBit(buf []uint8, head, mask int, n uint64, length int) uint32 {
	if uint64(length) >= n || length > mask {
		return 0
	}
	return uint32(buf[(head-length)&mask])
}

// UpdateFolds advances a flat fold array after g.Push(taken): the shared
// newest bit is the pushed outcome itself (no history read needed) and
// each fold's expiring bit is read once with the buffer fields hoisted
// out of the loop. Zero-length (inert) folds are skipped, so GEHL-style
// predictors can keep an L=0 placeholder in the slice.
func UpdateFolds(g *Global, folds []Folded, taken bool) {
	newest := uint32(0)
	if taken {
		newest = 1
	}
	head, mask, n := g.head, g.mask, g.n
	buf := g.buf[:mask+1] // len(buf) == mask+1, so (x)&mask is provably in range
	for i := range folds {
		f := &folds[i]
		length := int(f.Length)
		if length == 0 {
			continue
		}
		f.UpdateBits(newest, oldestBit(buf, head, mask, n, length))
	}
}

// UpdateAll advances every fold triple after g.Push(taken): the shared
// newest bit is the pushed outcome itself (no history read at all) and
// each triple's expiring bit is read once with the buffer fields hoisted
// out of the loop. This is the whole per-branch folded-history update of
// a TAGE-style predictor in one call.
func UpdateAll(g *Global, folds []TableFolds, taken bool) {
	newest := uint32(0)
	if taken {
		newest = 1
	}
	head, mask, n := g.head, g.mask, g.n
	buf := g.buf[:mask+1] // len(buf) == mask+1, so (x)&mask is provably in range
	for i := range folds {
		f := &folds[i]
		// The three UpdateBits calls are spelled out (rather than routed
		// through a TableFolds method) so they stay within the compiler's
		// inlining budget: this loop runs for every table on every branch.
		oldest := oldestBit(buf, head, mask, n, int(f.Idx.Length))
		f.Idx.UpdateBits(newest, oldest)
		f.Tag1.UpdateBits(newest, oldest)
		f.Tag2.UpdateBits(newest, oldest)
	}
}

// Path is a hashed path history: one address bit per branch, as used by
// TAGE's index hash. Width is capped at 32.
type Path struct {
	v     uint32
	width uint
}

// NewPath returns a path history of the given width in bits.
func NewPath(width uint) *Path {
	if width > 32 {
		width = 32
	}
	return &Path{width: width}
}

// Push shifts in one bit of the branch address.
func (p *Path) Push(pc uint64) {
	p.v = ((p.v << 1) | uint32(pc>>2)&1) & uint32(bitutil.Mask(p.width))
}

// Value returns the current path register value.
func (p *Path) Value() uint32 { return p.v }

// Reset clears the path register to its initial state.
func (p *Path) Reset() { p.v = 0 }

// Local is a table of per-branch local direction histories, as used by the
// Local history Statistical Corrector (Section 6 of the paper): a small
// direct-mapped table indexed by PC, each entry a shift register of branch
// outcomes.
type Local struct {
	entries []uint32
	width   uint
	mask    uint64
}

// NewLocal returns a direct-mapped local history table with the given
// number of entries (rounded up to a power of two) and history width.
func NewLocal(entries int, width uint) *Local {
	n := bitutil.CeilPow2(entries)
	if width > 31 {
		width = 31
	}
	return &Local{entries: make([]uint32, n), width: width, mask: uint64(n - 1)}
}

// IndexOf returns the table index used for pc. The PC is hashed (a real
// implementation XORs a few PC bit groups) so that small tables use all
// their entries regardless of code alignment.
func (l *Local) IndexOf(pc uint64) int { return int(bitutil.Mix64(pc>>2) & l.mask) }

// Read returns the local history register for pc.
func (l *Local) Read(pc uint64) uint32 { return l.entries[l.IndexOf(pc)] }

// ReadAt returns the history at a precomputed index.
func (l *Local) ReadAt(idx int) uint32 { return l.entries[idx] }

// Update shifts the outcome into pc's local history.
func (l *Local) Update(pc uint64, taken bool) {
	i := l.IndexOf(pc)
	l.entries[i] = Shift(l.entries[i], taken, l.width)
}

// WriteAt overwrites the history at a precomputed index (used when a
// speculative history manager resolves the architectural value).
func (l *Local) WriteAt(idx int, h uint32) { l.entries[idx] = h }

// Width returns the history width in bits.
func (l *Local) Width() uint { return l.width }

// Entries returns the number of entries in the table.
func (l *Local) Entries() int { return len(l.entries) }

// Reset clears every local history to its initial state, reusing the
// table storage.
func (l *Local) Reset() {
	for i := range l.entries {
		l.entries[i] = 0
	}
}

// Shift computes the successor local history: (h<<1)+outcome, truncated to
// width bits. Exported because the Speculative Local History Manager must
// apply the same transformation to in-flight histories (Figure 8:
// "new SH = (SH << 1) + prediction").
func Shift(h uint32, taken bool, width uint) uint32 {
	h <<= 1
	if taken {
		h |= 1
	}
	return h & uint32(bitutil.Mask(width))
}

// GeometricSeries returns n history lengths forming the geometric series of
// the OGEHL and TAGE predictors: L(1) = min, L(n) = max, and
// L(i) = int(alpha^(i-1) * L(1) + 0.5) for the intermediate lengths.
func GeometricSeries(min, max, n int) []int {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []int{min}
	}
	out := make([]int, n)
	ratio := float64(max) / float64(min)
	for i := 0; i < n; i++ {
		exp := float64(i) / float64(n-1)
		out[i] = int(float64(min)*math.Pow(ratio, exp) + 0.5)
	}
	out[0] = min
	out[n-1] = max
	// Guarantee strict monotonicity even after rounding.
	for i := 1; i < n; i++ {
		if out[i] <= out[i-1] {
			out[i] = out[i-1] + 1
		}
	}
	return out
}
