package histories

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// tageLikeSpecs is the fold census of a reference-TAGE-shaped predictor:
// 12 tables × (index, tag1, tag2) folds over a geometric length series.
func tageLikeSpecs() []struct {
	length int
	width  uint
} {
	lengths := GeometricSeries(6, 2000, 12)
	logs := []uint{11, 12, 12, 12, 12, 12, 12, 11, 11, 10, 10, 10}
	var specs []struct {
		length int
		width  uint
	}
	for i, l := range lengths {
		tag := uint(6 + i)
		if tag > 15 {
			tag = 15
		}
		tag2 := tag - 1
		specs = append(specs,
			struct {
				length int
				width  uint
			}{l, logs[i]},
			struct {
				length int
				width  uint
			}{l, tag},
			struct {
				length int
				width  uint
			}{l, tag2},
		)
	}
	return specs
}

// TestPackedFoldsMatchScalar is the core packed-engine invariant: every
// lane of the word-packed update must track the scalar Folded update
// exactly, across the window fill, buffer wrap-around, and mixed widths
// sharing words.
func TestPackedFoldsMatchScalar(t *testing.T) {
	specs := tageLikeSpecs()
	// Add an inert placeholder and some GEHL-ish equal-width folds to the mix.
	specs = append(specs,
		struct {
			length int
			width  uint
		}{0, 13},
		struct {
			length int
			width  uint
		}{17, 13},
		struct {
			length int
			width  uint
		}{60, 13},
	)

	var b PackedBuilder
	ids := make([]int, len(specs))
	scalar := make([]Folded, len(specs))
	for i, s := range specs {
		ids[i] = b.Add(s.length, s.width)
		if s.length > 0 {
			scalar[i] = NewFolded(s.length, s.width)
		}
	}
	p := b.Build()

	g := NewGlobal(4096)
	r := rng.NewXoshiro(77)
	for step := 0; step < 6000; step++ {
		taken := r.Bool(0.5)
		g.Push(taken)
		p.Update(g, taken)
		UpdateFolds(g, scalar, taken)
		for i := range specs {
			if got, want := p.Value(ids[i]), scalar[i].Value(); got != want {
				t.Fatalf("step %d fold %d (L=%d W=%d): packed=%#x scalar=%#x",
					step, i, specs[i].length, specs[i].width, got, want)
			}
		}
	}
}

// TestPackedFoldsQuickProperty fuzzes random fold sets (random lengths and
// widths, duplicates and shared lengths included) against the scalar
// engine over random outcome streams.
func TestPackedFoldsQuickProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.NewXoshiro(seed)
		n := int(nRaw%24) + 1
		var b PackedBuilder
		scalar := make([]Folded, n)
		ids := make([]int, n)
		lengths := make([]int, n)
		widths := make([]uint, n)
		for i := 0; i < n; i++ {
			lengths[i] = r.Intn(300) // 0 = inert
			widths[i] = uint(r.Intn(30)) + 1
			ids[i] = b.Add(lengths[i], widths[i])
			if lengths[i] > 0 {
				scalar[i] = NewFolded(lengths[i], widths[i])
			}
		}
		p := b.Build()
		g := NewGlobal(512)
		for step := 0; step < 700; step++ {
			taken := r.Bool(0.5)
			g.Push(taken)
			p.Update(g, taken)
			UpdateFolds(g, scalar, taken)
			for i := range ids {
				if p.Value(ids[i]) != scalar[i].Value() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPackedFoldsResetRecompute: Reset clears every lane and Recompute
// rebuilds the exact incremental state from the history.
func TestPackedFoldsResetRecompute(t *testing.T) {
	var b PackedBuilder
	ids := []int{
		b.Add(20, 9),
		b.Add(0, 7), // inert
		b.Add(130, 11),
		b.Add(130, 9),
	}
	p := b.Build()
	g := NewGlobal(256)
	r := rng.NewXoshiro(5)
	for i := 0; i < 200; i++ {
		taken := r.Bool(0.4)
		g.Push(taken)
		p.Update(g, taken)
	}
	want := make([]uint32, len(ids))
	for i, id := range ids {
		want[i] = p.Value(id)
	}
	p.Reset()
	for _, id := range ids {
		if p.Value(id) != 0 {
			t.Fatal("Reset did not clear")
		}
	}
	p.Recompute(g)
	for i, id := range ids {
		if p.Value(id) != want[i] {
			t.Fatalf("fold %d: Recompute=%#x, want %#x", i, p.Value(id), want[i])
		}
	}
}

// TestPackedFoldsPackingDensity pins the headline win: a reference-TAGE
// fold census (36 folds) must pack into far fewer words than folds.
func TestPackedFoldsPackingDensity(t *testing.T) {
	var b PackedBuilder
	for _, s := range tageLikeSpecs() {
		b.Add(s.length, s.width)
	}
	p := b.Build()
	if p.NumFolds() != 36 {
		t.Fatalf("NumFolds = %d, want 36", p.NumFolds())
	}
	if p.NumWords() > 16 {
		t.Fatalf("36 TAGE folds packed into %d words, want <= 16", p.NumWords())
	}
}

// BenchmarkFoldUpdate compares the per-branch fold advance of a
// reference-TAGE fold census: the scalar per-table UpdateAll path versus
// the width-grouped packed engine.
func BenchmarkFoldUpdate(b *testing.B) {
	lengths := GeometricSeries(6, 2000, 12)
	logs := []uint{11, 12, 12, 12, 12, 12, 12, 11, 11, 10, 10, 10}

	b.Run("scalar", func(b *testing.B) {
		g := NewGlobal(4096)
		folds := make([]TableFolds, len(lengths))
		for i, l := range lengths {
			tag := uint(6 + i)
			if tag > 15 {
				tag = 15
			}
			folds[i] = NewTableFolds(l, logs[i], tag, tag-1)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			taken := i&1 == 0
			g.Push(taken)
			UpdateAll(g, folds, taken)
		}
	})

	b.Run("packed", func(b *testing.B) {
		g := NewGlobal(4096)
		var pb PackedBuilder
		for _, s := range tageLikeSpecs() {
			pb.Add(s.length, s.width)
		}
		p := pb.Build()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			taken := i&1 == 0
			g.Push(taken)
			p.Update(g, taken)
		}
	})
}
