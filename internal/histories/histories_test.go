package histories

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestGlobalPushBit(t *testing.T) {
	g := NewGlobal(16)
	seq := []bool{true, false, true, true, false}
	for _, b := range seq {
		g.Push(b)
	}
	// Bit(0) is most recent.
	want := []uint32{0, 1, 1, 0, 1}
	for i, w := range want {
		if got := g.Bit(i); got != w {
			t.Fatalf("Bit(%d) = %d, want %d", i, got, w)
		}
	}
}

func TestGlobalOldBitsReadZero(t *testing.T) {
	g := NewGlobal(8)
	g.Push(true)
	if g.Bit(1) != 0 || g.Bit(100) != 0 {
		t.Fatal("unpushed history must read 0")
	}
}

func TestGlobalWrapAround(t *testing.T) {
	g := NewGlobal(8) // capacity 8
	for i := 0; i < 100; i++ {
		g.Push(i%3 == 0)
	}
	// The last 8 pushes were i = 92..99; i%3==0 for 93, 96, 99.
	for i := 0; i < 8; i++ {
		iter := 99 - i
		want := uint32(0)
		if iter%3 == 0 {
			want = 1
		}
		if got := g.Bit(i); got != want {
			t.Fatalf("Bit(%d) = %d, want %d", i, got, want)
		}
	}
}

func TestGlobalSaveRestore(t *testing.T) {
	g := NewGlobal(64)
	for i := 0; i < 10; i++ {
		g.Push(i%2 == 0)
	}
	cp := g.Save()
	bitsBefore := make([]uint32, 10)
	for i := range bitsBefore {
		bitsBefore[i] = g.Bit(i)
	}
	g.Push(true)
	g.Push(true)
	g.Restore(cp)
	for i := range bitsBefore {
		if g.Bit(i) != bitsBefore[i] {
			t.Fatalf("Bit(%d) changed after restore", i)
		}
	}
	if g.Len() != 10 {
		t.Fatalf("Len after restore = %d, want 10", g.Len())
	}
}

// TestFoldedMatchesBruteForce is the core invariant: the incremental CSR
// update must always equal the from-scratch XOR fold.
func TestFoldedMatchesBruteForce(t *testing.T) {
	configs := []struct {
		length int
		width  uint
	}{
		{5, 3}, {8, 8}, {17, 10}, {130, 11}, {2000, 12}, {7, 7}, {64, 9},
		{1, 4}, {3, 12},
	}
	r := rng.NewXoshiro(123)
	for _, cfg := range configs {
		g := NewGlobal(4096)
		f := NewFolded(cfg.length, cfg.width)
		ref := NewFolded(cfg.length, cfg.width)
		for step := 0; step < 3000; step++ {
			g.Push(r.Bool(0.5))
			f.Update(g)
			ref.Recompute(g)
			if f.Value() != ref.Value() {
				t.Fatalf("L=%d W=%d: step %d incremental=%#x brute=%#x",
					cfg.length, cfg.width, step, f.Value(), ref.Value())
			}
		}
	}
}

func TestFoldedQuickProperty(t *testing.T) {
	f := func(seed uint64, lengthRaw uint8, widthRaw uint8) bool {
		length := int(lengthRaw%200) + 1
		width := uint(widthRaw%14) + 2
		g := NewGlobal(512)
		fd := NewFolded(length, width)
		ref := NewFolded(length, width)
		r := rng.NewXoshiro(seed)
		for step := 0; step < 400; step++ {
			g.Push(r.Bool(0.5))
			fd.Update(g)
		}
		ref.Recompute(g)
		return fd.Value() == ref.Value()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFoldedResetRecompute(t *testing.T) {
	g := NewGlobal(256)
	f := NewFolded(20, 9)
	r := rng.NewXoshiro(5)
	for i := 0; i < 100; i++ {
		g.Push(r.Bool(0.4))
		f.Update(g)
	}
	v := f.Value()
	f.Reset()
	if f.Value() != 0 {
		t.Fatal("Reset did not clear")
	}
	f.Recompute(g)
	if f.Value() != v {
		t.Fatalf("Recompute = %#x, want %#x", f.Value(), v)
	}
}

func TestFoldedWidthBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for width 0")
		}
	}()
	NewFolded(10, 0)
}

func TestPathHistory(t *testing.T) {
	p := NewPath(8)
	// Push PCs whose bit 2 alternates.
	p.Push(0x4) // bit2 = 1
	p.Push(0x0) // bit2 = 0
	p.Push(0x4) // bit2 = 1
	if p.Value() != 0b101 {
		t.Fatalf("path = %#b, want 101", p.Value())
	}
	// Saturate the width.
	for i := 0; i < 100; i++ {
		p.Push(0x4)
	}
	if p.Value() != 0xff {
		t.Fatalf("path should be all ones within width, got %#x", p.Value())
	}
}

func TestLocalHistory(t *testing.T) {
	l := NewLocal(32, 11)
	pcA := uint64(0x1000)
	pcB := uint64(0x1004) // different index (bit 2 differs)
	l.Update(pcA, true)
	l.Update(pcA, false)
	l.Update(pcA, true)
	if l.Read(pcA) != 0b101 {
		t.Fatalf("local history A = %#b, want 101", l.Read(pcA))
	}
	if l.Read(pcB) != 0 {
		t.Fatalf("local history B should be untouched, got %#b", l.Read(pcB))
	}
}

func TestLocalHistoryWidthTruncation(t *testing.T) {
	l := NewLocal(4, 3)
	pc := uint64(0)
	for i := 0; i < 10; i++ {
		l.Update(pc, true)
	}
	if l.Read(pc) != 0b111 {
		t.Fatalf("history must truncate to width, got %#b", l.Read(pc))
	}
}

func TestLocalAliasing(t *testing.T) {
	// With only 32 entries and many PCs, distinct branches must alias onto
	// shared entries; find such a pair and verify the sharing.
	l := NewLocal(32, 8)
	seen := map[int]uint64{}
	var pcA, pcB uint64
	for pc := uint64(0x100); pc < 0x100+64*16; pc += 16 {
		idx := l.IndexOf(pc)
		if prev, ok := seen[idx]; ok {
			pcA, pcB = prev, pc
			break
		}
		seen[idx] = pc
	}
	if pcB == 0 {
		t.Fatal("no aliasing pair found among 64 PCs and 32 entries")
	}
	l.Update(pcA, true)
	if l.Read(pcB) != 1 {
		t.Fatal("aliased read should see the shared entry")
	}
}

func TestLocalIndexCoversAllSlots(t *testing.T) {
	// 16-byte-aligned PCs (as compilers commonly emit) must still spread
	// over all entries of a small table.
	l := NewLocal(32, 8)
	used := map[int]bool{}
	for pc := uint64(0x400000); pc < 0x400000+1024*16; pc += 16 {
		used[l.IndexOf(pc)] = true
	}
	if len(used) != 32 {
		t.Fatalf("only %d/32 slots used by aligned PCs", len(used))
	}
}

func TestShiftMatchesUpdate(t *testing.T) {
	f := func(h uint32, taken bool) bool {
		const width = 11
		l := NewLocal(2, width)
		l.WriteAt(0, h&0x7ff)
		l.Update(0, taken)
		return l.ReadAt(0) == Shift(h&0x7ff, taken, width)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFoldedUpdate(b *testing.B) {
	g := NewGlobal(4096)
	f := NewFolded(2000, 12)
	for i := 0; i < b.N; i++ {
		g.Push(i&1 == 0)
		f.Update(g)
	}
}

// TestTableFoldsUpdateAllMatchesPerFoldUpdate: the batched hot-path
// update (shared newest/oldest bits, hoisted buffer reads) must track the
// reference per-fold Update exactly, including before the history window
// fills and after buffer wrap-around.
func TestTableFoldsUpdateAllMatchesPerFoldUpdate(t *testing.T) {
	lengths := []int{3, 7, 17, 60, 130, 511}
	g := NewGlobal(512)
	gRef := NewGlobal(512)
	folds := make([]TableFolds, len(lengths))
	var refs []Folded
	for i, l := range lengths {
		folds[i] = NewTableFolds(l, 10, uint(5+i), uint(4+i))
		refs = append(refs,
			NewFolded(l, 10), NewFolded(l, uint(5+i)), NewFolded(l, uint(4+i)))
	}
	r := rng.NewXoshiro(21)
	for step := 0; step < 2000; step++ {
		taken := r.Bool(0.5)
		g.Push(taken)
		UpdateAll(g, folds, taken)
		gRef.Push(taken)
		for j := range refs {
			refs[j].Update(gRef)
		}
		for i := range folds {
			got := [3]uint32{folds[i].Idx.Value(), folds[i].Tag1.Value(), folds[i].Tag2.Value()}
			want := [3]uint32{refs[3*i].Value(), refs[3*i+1].Value(), refs[3*i+2].Value()}
			if got != want {
				t.Fatalf("step %d table %d (L=%d): UpdateAll=%v per-fold=%v",
					step, i, lengths[i], got, want)
			}
		}
	}
}

// TestUpdateFoldsMatchesPerFoldUpdate: the flat-slice batched update
// (used by GEHL-style predictors, with inert L=0 placeholders) must
// track the reference per-fold Update exactly.
func TestUpdateFoldsMatchesPerFoldUpdate(t *testing.T) {
	lengths := []int{0, 2, 9, 40, 130} // index 0 is an inert placeholder
	g := NewGlobal(256)
	gRef := NewGlobal(256)
	folds := make([]Folded, len(lengths))
	refs := make([]Folded, len(lengths))
	for i, l := range lengths {
		if l > 0 {
			folds[i] = NewFolded(l, 11)
			refs[i] = NewFolded(l, 11)
		}
	}
	r := rng.NewXoshiro(5)
	for step := 0; step < 1500; step++ {
		taken := r.Bool(0.5)
		g.Push(taken)
		UpdateFolds(g, folds, taken)
		gRef.Push(taken)
		for i := range refs {
			if refs[i].Length > 0 {
				refs[i].Update(gRef)
			}
		}
		for i := range folds {
			if folds[i].Value() != refs[i].Value() {
				t.Fatalf("step %d fold %d (L=%d): batched=%#x per-fold=%#x",
					step, i, lengths[i], folds[i].Value(), refs[i].Value())
			}
		}
	}
}
