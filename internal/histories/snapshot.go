package histories

import "repro/internal/checkpoint"

// Snapshot/LoadSnapshot serialize the dynamic state of each history
// structure for predictor checkpoints. Shape parameters (lengths,
// widths, masks) are owned by the configuration that built the
// structure, so only the mutable run state is stored; LoadSnapshot
// validates stored sizes against the receiver's configuration through
// the decoder's *Into length checks.

// Snapshot writes the global history ring: buffer contents, head
// cursor, and total outcomes pushed.
func (g *Global) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("ghist", 1)
	enc.U8s(g.buf)
	enc.Int(g.head)
	enc.U64(g.n)
	enc.End()
}

// LoadSnapshot restores a Snapshot into a Global of the same
// configured capacity.
func (g *Global) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.Open("ghist", 1)
	dec.U8sInto(g.buf)
	head := dec.Int()
	n := dec.U64()
	dec.Close()
	if dec.Err() != nil {
		return
	}
	if head < 0 || head > g.mask {
		dec.Failf("global history head %d out of range [0,%d]", head, g.mask)
		return
	}
	g.head = head
	g.n = n
}

// Snapshot writes a folded register's current compressed value.
func (f *Folded) Snapshot(enc *checkpoint.Encoder) { enc.U32(f.comp) }

// LoadSnapshot restores a folded register's compressed value.
func (f *Folded) LoadSnapshot(dec *checkpoint.Decoder) { f.comp = dec.U32() }

// Snapshot writes all three folds of a table.
func (t *TableFolds) Snapshot(enc *checkpoint.Encoder) {
	t.Idx.Snapshot(enc)
	t.Tag1.Snapshot(enc)
	t.Tag2.Snapshot(enc)
}

// LoadSnapshot restores all three folds of a table.
func (t *TableFolds) LoadSnapshot(dec *checkpoint.Decoder) {
	t.Idx.LoadSnapshot(dec)
	t.Tag1.LoadSnapshot(dec)
	t.Tag2.LoadSnapshot(dec)
}

// Snapshot writes the path history register.
func (p *Path) Snapshot(enc *checkpoint.Encoder) { enc.U32(p.v) }

// LoadSnapshot restores the path history register.
func (p *Path) LoadSnapshot(dec *checkpoint.Decoder) { p.v = dec.U32() }

// Snapshot writes the per-PC local history table.
func (l *Local) Snapshot(enc *checkpoint.Encoder) { enc.U32s(l.entries) }

// LoadSnapshot restores a local history table of the same size.
func (l *Local) LoadSnapshot(dec *checkpoint.Decoder) { dec.U32sInto(l.entries) }

// Snapshot writes the packed fold words plus the unpacked value mirror.
func (p *PackedFolds) Snapshot(enc *checkpoint.Encoder) {
	enc.U64s(p.words)
	enc.U32s(p.vals)
}

// LoadSnapshot restores packed folds of the same layout (same word and
// fold counts; the layout is a pure function of the built fold set).
func (p *PackedFolds) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.U64sInto(p.words)
	dec.U32sInto(p.vals)
}
