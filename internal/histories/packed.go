package histories

import (
	"sort"

	"repro/internal/bitutil"
)

// PackedFolds advances many folds of one global history with a handful of
// word operations per branch instead of one scalar update per fold.
//
// Folds of equal width are packed as lanes of a 64-bit word with a stride
// of Width+1 bits: each lane holds its fold value in the low Width bits
// and keeps one zero guard bit above it. The per-branch update then runs
// once per *word*:
//
//	x = (x << 1) | (newest & newMask)    // shift every lane, insert newest
//	x ^= expiring                        // all lanes' (-oldest)&outBit at once
//	x ^= (x >> Width) & newMask          // fold each lane's guard bit to bit 0
//	x &= valueMask                       // clear the guards for the next shift
//
// which is bit-for-bit the scalar Folded.UpdateBits applied to every lane:
// the guard bit isolates lanes across the shared shift, the expiring bits
// land inside their lanes before the guard fold (exactly the scalar
// operation order), and the final mask re-establishes the zero-guard
// invariant.
//
// The expiring bits are what makes the naïve packing slow — each lane
// expires the bit of a *different* history length, which is per-lane work
// again. PackedFolds instead gathers the expiring bit of every distinct
// history length into one register (one circular-buffer read per distinct
// length per branch, exactly what the scalar batched updaters pay), and
// resolves each word's combined expiring mask with a single lookup into a
// small precomputed table indexed by the word's slice of that register.
// Lanes within a width group are laid out in ascending history order, so
// each word's lengths span a short contiguous run of the register and the
// tables stay tiny (a reference TAGE's 36 folds pack into ~13 words with
// well under 1 KiB of lookup tables).
//
// Build the set with a PackedBuilder; the int returned by Add is the
// fold's permanent handle for Value.
type PackedFolds struct {
	words []uint64
	meta  []packedWord
	// lengths holds the distinct non-zero history lengths, ascending; the
	// per-branch expiring register holds one bit per entry (≤ 64).
	lengths []int32
	// lut holds the per-word expiring-mask tables back to back; a word's
	// table is lut[lutOff : lutOff+spanMask+1], indexed by the word's span
	// of the expiring register.
	lut []uint64
	// maxLen is the largest registered length: once the history holds more
	// than maxLen outcomes the gather loop can skip the staleness guards.
	maxLen int
	// refs maps the Add-order fold handle to its lane location for Value.
	// Inert (zero-length) folds keep a zero ref with mask 0.
	refs []laneRef
	// vals mirrors every fold's current value, unpacked, indexed by handle.
	// Update refreshes it while the packed words are still in registers, so
	// the per-prediction readers (up to 3 reads per table per branch — far
	// more reads than updates) cost one sequential uint32 load instead of a
	// word load plus a variable shift.
	vals []uint32
}

type packedWord struct {
	newMask   uint64 // bit 0 of every lane
	valueMask uint64 // the Width value bits of every lane (guards clear)
	lutOff    uint32 // this word's slice of lut
	spanMask  uint32 // (1 << distinct-length span) - 1
	base      uint8  // first length index of the span
	width     uint8
}

type laneRef struct {
	mask   uint32 // (1<<Width)-1, or 0 for an inert fold
	length int32
	word   uint16
	shift  uint8
	width  uint8
}

// lutSpanMax bounds the distinct-length span of one word (and so the size
// of its expiring table: at most 1<<lutSpanMax entries). A word whose next
// lane would stretch the span further starts a new word instead — packing
// density traded for table locality.
const lutSpanMax = 8

// PackedBuilder assembles a PackedFolds from individual fold shapes.
type PackedBuilder struct {
	specs []foldSpec
}

type foldSpec struct {
	length int32
	width  uint8
}

// Add registers a fold of length history bits into width bits and returns
// its handle for PackedFolds.Value. A zero length registers an inert fold
// (permanently 0), mirroring the zero Folded placeholder.
func (b *PackedBuilder) Add(length int, width uint) int {
	if width < 1 || width > 31 {
		panic("histories: folded width out of range")
	}
	b.specs = append(b.specs, foldSpec{length: int32(length), width: uint8(width)})
	return len(b.specs) - 1
}

// Build lays the registered folds out into width-grouped words and
// precomputes the expiring-mask tables. The builder can be reused.
func (b *PackedBuilder) Build() *PackedFolds {
	p := &PackedFolds{
		refs: make([]laneRef, len(b.specs)),
		vals: make([]uint32, len(b.specs)),
	}

	// Distinct non-zero lengths, ascending: each is one circular-buffer
	// read and one expiring-register bit.
	lenIdx := make(map[int32]int32)
	for _, s := range b.specs {
		if s.length != 0 {
			lenIdx[s.length] = 0
		}
	}
	p.lengths = make([]int32, 0, len(lenIdx))
	for l := range lenIdx {
		p.lengths = append(p.lengths, l)
	}
	sort.Slice(p.lengths, func(i, j int) bool { return p.lengths[i] < p.lengths[j] })
	if len(p.lengths) > 64 {
		panic("histories: more than 64 distinct fold lengths")
	}
	for i, l := range p.lengths {
		lenIdx[l] = int32(i)
		if int(l) > p.maxLen {
			p.maxLen = int(l)
		}
	}

	// Group live folds by width and, within a width, by ascending length,
	// so one word's lengths form a short run of the expiring register.
	order := make([]int, 0, len(b.specs))
	for i, s := range b.specs {
		if s.length != 0 {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := b.specs[order[i]], b.specs[order[j]]
		if si.width != sj.width {
			return si.width < sj.width
		}
		return si.length < sj.length
	})

	// wordLane records one lane's expiring-bit placement for LUT building.
	type wordLane struct {
		outMask uint64
		lenIdx  int32
	}
	var cur []wordLane
	var curWidth uint8
	var curBase int32
	var lanesInWord, perWord int

	closeWord := func() {
		if cur == nil {
			return
		}
		w := len(p.words) - 1
		span := int32(0)
		for _, ln := range cur {
			if d := ln.lenIdx - curBase; d+1 > span {
				span = d + 1
			}
		}
		m := &p.meta[w]
		m.base = uint8(curBase)
		m.spanMask = uint32(1)<<span - 1
		m.lutOff = uint32(len(p.lut))
		for bits := uint32(0); bits <= m.spanMask; bits++ {
			var exp uint64
			for _, ln := range cur {
				exp |= -uint64(bits>>(ln.lenIdx-curBase)&1) & ln.outMask
			}
			p.lut = append(p.lut, exp)
		}
		cur = nil
	}

	for _, id := range order {
		s := b.specs[id]
		stride := uint(s.width) + 1
		k := lenIdx[s.length]
		if cur == nil || s.width != curWidth || lanesInWord == perWord ||
			k-curBase >= lutSpanMax {
			closeWord()
			curWidth = s.width
			curBase = k
			perWord = 64 / int(stride)
			lanesInWord = 0
			p.words = append(p.words, 0)
			p.meta = append(p.meta, packedWord{width: s.width})
			cur = make([]wordLane, 0, perWord)
		}
		w := len(p.words) - 1
		shift := uint(lanesInWord) * stride
		lanesInWord++
		p.meta[w].newMask |= 1 << shift
		p.meta[w].valueMask |= bitutil.Mask(uint(s.width)) << shift
		cur = append(cur, wordLane{
			outMask: (1 << (uint(s.length) % uint(s.width))) << shift,
			lenIdx:  k,
		})
		p.refs[id] = laneRef{
			word:   uint16(w),
			shift:  uint8(shift),
			width:  s.width,
			length: s.length,
			mask:   uint32(bitutil.Mask(uint(s.width))),
		}
	}
	closeWord()
	return p
}

// NumFolds returns the number of registered folds (handles are [0, NumFolds)).
func (p *PackedFolds) NumFolds() int { return len(p.refs) }

// NumWords returns the number of 64-bit words the folds packed into — the
// per-branch word-operation count of Update.
func (p *PackedFolds) NumWords() int { return len(p.words) }

// Value returns the current folded value of the fold Add returned id for.
func (p *PackedFolds) Value(id int) uint32 { return p.vals[id] }

// Values exposes the unpacked value mirror, indexed by fold handle. The
// slice is stable across Update and Reset (updated in place, never
// reallocated), so hot loops can cache it once.
func (p *PackedFolds) Values() []uint32 { return p.vals }

// Update advances every fold after g.Push(taken): the shared newest bit is
// the pushed outcome itself, each distinct history length's expiring bit
// is read once into the expiring register, and every word advances with
// four word operations plus one table lookup.
func (p *PackedFolds) Update(g *Global, taken bool) {
	head, mask, n := g.head, g.mask, g.n
	buf := g.buf[:mask+1]
	var e uint64
	if n > uint64(p.maxLen) && p.maxLen <= mask {
		// Steady state: every registered length is inside the filled
		// window, so the staleness guards of oldestBit vanish.
		for k, l := range p.lengths {
			e |= uint64(buf[(head-int(l))&mask]) << (uint(k) & 63)
		}
	} else {
		for k, l := range p.lengths {
			e |= uint64(oldestBit(buf, head, mask, n, int(l))) << (uint(k) & 63)
		}
	}
	// -1 or 0 without a branch: the outcome is a coin flip, and a
	// mispredicted branch here would cost more than the whole word loop.
	var nb uint64
	if taken {
		nb = 1
	}
	newest := -nb
	lut := p.lut
	meta := p.meta
	words := p.words[:len(meta)]
	for w := range words {
		m := &meta[w]
		x := (words[w] << 1) | (newest & m.newMask)
		x ^= lut[m.lutOff+(uint32(e>>(m.base&63))&m.spanMask)]
		x ^= (x >> (m.width & 63)) & m.newMask
		words[w] = x & m.valueMask
	}
	// Refresh the unpacked mirror while the words are cache-hot. One pass
	// over the live lanes; inert folds keep their permanent zero.
	vals := p.vals
	refs := p.refs
	for i := range refs {
		r := &refs[i]
		vals[i] = uint32(words[r.word]>>(r.shift&63)) & r.mask
	}
}

// Reset clears every fold to zero (the state matching an empty history).
func (p *PackedFolds) Reset() {
	for i := range p.words {
		p.words[i] = 0
	}
	for i := range p.vals {
		p.vals[i] = 0
	}
}

// Recompute recalculates every fold from the underlying history from
// scratch — the ground truth for tests and the repair path after a
// history restore.
func (p *PackedFolds) Recompute(g *Global) {
	p.Reset()
	for id := range p.refs {
		r := &p.refs[id]
		if r.mask == 0 {
			continue
		}
		var v uint64
		for i := 0; i < int(r.length); i++ {
			v ^= uint64(g.Bit(i)) << (uint(i) % uint(r.width))
		}
		p.words[r.word] |= v << (r.shift & 63)
		p.vals[id] = uint32(v)
	}
}
