package looppred

import "repro/internal/checkpoint"

// Snapshot writes the loop table, the in-flight SLIM ring, and the
// override accounting (the shared stats object belongs to the owner).
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("loop", 1)
	enc.U32(uint32(len(p.sets)))
	enc.U32(uint32(p.cfg.Ways))
	for _, set := range p.sets {
		for i := range set {
			e := &set[i]
			enc.U16(e.tag)
			enc.U16(e.past)
			enc.U16(e.current)
			enc.U8(e.conf)
			enc.U8(e.age)
			enc.Bool(e.dir)
			enc.Bool(e.valid)
		}
	}
	enc.U32(uint32(len(p.slim)))
	for i := range p.slim {
		enc.U32(p.slim[i].key)
		enc.U16(p.slim[i].iter)
	}
	enc.Int(p.slimHead)
	enc.Int(p.slimLen)
	enc.U64(p.Overrides)
	enc.U64(p.Useful)
	enc.End()
}

// LoadSnapshot restores a Snapshot into a predictor of the same
// geometry, validating the SLIM cursors against its capacity.
func (p *Predictor) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.Open("loop", 1)
	nsets := int(dec.U32())
	ways := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	if nsets != len(p.sets) || ways != p.cfg.Ways {
		dec.Failf("loop table is %dx%d, this configuration needs %dx%d", nsets, ways, len(p.sets), p.cfg.Ways)
		return
	}
	for _, set := range p.sets {
		for i := range set {
			e := &set[i]
			e.tag = dec.U16()
			e.past = dec.U16()
			e.current = dec.U16()
			e.conf = dec.U8()
			e.age = dec.U8()
			e.dir = dec.Bool()
			e.valid = dec.Bool()
		}
	}
	cap := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	if cap != len(p.slim) {
		dec.Failf("slim ring holds %d slots, this configuration needs %d", cap, len(p.slim))
		return
	}
	for i := range p.slim {
		p.slim[i].key = dec.U32()
		p.slim[i].iter = dec.U16()
	}
	head := dec.Int()
	length := dec.Int()
	overrides := dec.U64()
	useful := dec.U64()
	dec.Close()
	if dec.Err() != nil {
		return
	}
	if head < 0 || head >= len(p.slim) || length < 0 || length > len(p.slim) {
		dec.Failf("slim cursors (head %d, len %d) out of range for %d slots", head, length, len(p.slim))
		return
	}
	p.slimHead, p.slimLen = head, length
	p.Overrides, p.Useful = overrides, useful
}
