// Package looppred implements the loop predictor side predictor of
// Section 5.2: a small, high-associativity table identifying branches that
// behave as loops with a constant iteration count, predicting their exits
// with very high accuracy once confidence is established ("reaching a high
// confidence level after 7 executions of the overall loop"). It includes
// the Speculative Loop Iteration Manager (SLIM, Figure 5) that tracks the
// iteration counts of in-flight loop instances.
//
// The paper's configuration: 4-way skewed-associative, 64 entries, each
// entry holding a past iteration count (10 bits), a retire (current)
// iteration count (10 bits), a partial tag (10 bits), a confidence counter
// (3 bits), an age counter (3 bits) and one direction bit — 37 bits/entry.
package looppred

import (
	"repro/internal/bitutil"
	"repro/internal/memarray"
)

// Config parameterises the loop predictor.
type Config struct {
	Entries  int  // total entries (default 64)
	Ways     int  // associativity (default 4, skewed)
	TagBits  uint // partial tag width (default 10)
	IterBits uint // iteration counter width (default 10)
	ConfMax  uint8
	AgeMax   uint8
	SlimCap  int // in-flight loop instances tracked (default 64)
}

func (c Config) withDefaults() Config {
	if c.Entries == 0 {
		c.Entries = 64
	}
	if c.Ways == 0 {
		c.Ways = 4
	}
	if c.TagBits == 0 {
		c.TagBits = 10
	}
	if c.IterBits == 0 {
		c.IterBits = 10
	}
	if c.ConfMax == 0 {
		c.ConfMax = 7
	}
	if c.AgeMax == 0 {
		c.AgeMax = 7
	}
	if c.SlimCap == 0 {
		c.SlimCap = 64
	}
	return c
}

type entry struct {
	tag     uint16
	past    uint16 // learned iteration count ("past iteration count")
	current uint16 // architectural (retire-time) iteration count
	conf    uint8
	age     uint8
	dir     bool // direction taken while iterating
	valid   bool
}

type slimEntry struct {
	key  uint32
	iter uint16
}

// Predictor is the loop predictor plus SLIM.
type Predictor struct {
	cfg   Config
	sets  [][]entry // [nsets][ways]
	nsets int

	slim     []slimEntry
	slimHead int
	slimLen  int

	stats *memarray.Stats

	// Overrides counts predictions where the loop predictor supplied the
	// final direction; Useful counts those where it differed from the main
	// prediction and was right.
	Overrides uint64
	Useful    uint64
}

// New creates a loop predictor. stats may be nil.
func New(cfg Config, stats *memarray.Stats) *Predictor {
	cfg = cfg.withDefaults()
	if stats == nil {
		stats = &memarray.Stats{}
	}
	nsets := cfg.Entries / cfg.Ways
	p := &Predictor{
		cfg:   cfg,
		nsets: nsets,
		sets:  make([][]entry, nsets),
		slim:  make([]slimEntry, cfg.SlimCap),
		stats: stats,
	}
	for i := range p.sets {
		p.sets[i] = make([]entry, cfg.Ways)
	}
	return p
}

// Reset returns the predictor to its construction state: loop table and
// in-flight SLIM entries cleared, override accounting zeroed, reusing all
// storage. The stats object is left to its owner.
func (p *Predictor) Reset() {
	for _, set := range p.sets {
		for i := range set {
			set[i] = entry{}
		}
	}
	for i := range p.slim {
		p.slim[i] = slimEntry{}
	}
	p.slimHead, p.slimLen = 0, 0
	p.Overrides, p.Useful = 0, 0
}

// StorageBits returns the loop table storage (37 bits per entry for the
// default configuration).
func (p *Predictor) StorageBits() int {
	perEntry := int(2*p.cfg.IterBits + p.cfg.TagBits + 3 + 3 + 1)
	return p.cfg.Entries * perEntry
}

// setIndex returns the skewed set index for a way.
func (p *Predictor) setIndex(pc uint64, way int) int {
	h := bitutil.Mix64(pc>>2 ^ uint64(way)*0x9e3779b97f4a7c15)
	return int(h % uint64(p.nsets))
}

func (p *Predictor) tagOf(pc uint64) uint16 {
	return uint16(bitutil.Mix64(pc>>2)>>13) & uint16(bitutil.Mask(p.cfg.TagBits))
}

func (p *Predictor) slimKey(pc uint64) uint32 { return uint32(pc >> 2) }

// Ctx is the per-branch loop predictor context.
type Ctx struct {
	Hit      bool
	Set, Way int
	// Valid is true when the entry has maximum confidence, i.e. the loop
	// prediction should override the main predictor.
	Valid bool
	Pred  bool
	// SpecIter is the speculative iteration number used for the
	// prediction (from SLIM if an instance was in flight).
	SpecIter   uint16
	PushedSlim bool
}

// Predict fills ctx with the loop predictor's view of pc. It does not
// modify any state.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) {
	*ctx = Ctx{Set: -1, Way: -1}
	tag := p.tagOf(pc)
	for w := 0; w < p.cfg.Ways; w++ {
		s := p.setIndex(pc, w)
		e := &p.sets[s][w]
		if e.valid && e.tag == tag {
			ctx.Hit = true
			ctx.Set, ctx.Way = s, w
			// Speculative iteration: most recent in-flight instance if
			// present, otherwise the architectural count.
			iter := e.current
			if si, ok := p.slimLookup(p.slimKey(pc)); ok {
				iter = si
			}
			ctx.SpecIter = iter
			if e.conf >= p.cfg.ConfMax && e.past > 0 {
				ctx.Valid = true
				// past counts the taken iterations of one execution; this
				// occurrence is number iter+1, so the exit is reached once
				// iter equals past.
				if iter >= e.past {
					ctx.Pred = !e.dir // predict the exit
				} else {
					ctx.Pred = e.dir
				}
			}
			return
		}
	}
}

// slimLookup finds the youngest in-flight instance for key.
func (p *Predictor) slimLookup(key uint32) (uint16, bool) {
	for i := p.slimLen - 1; i >= 0; i-- {
		e := &p.slim[(p.slimHead+i)%len(p.slim)]
		if e.key == key {
			return e.iter, true
		}
	}
	return 0, false
}

// OnResolve updates the speculative iteration state: an in-flight instance
// advances its iteration count (Figure 5: "new SI") or clears it at a loop
// exit. Only branches hitting in the loop table are tracked.
func (p *Predictor) OnResolve(pc uint64, taken bool, ctx *Ctx) {
	if !ctx.Hit {
		return
	}
	e := &p.sets[ctx.Set][ctx.Way]
	var next uint16
	if taken == e.dir {
		next = ctx.SpecIter + 1
		if next >= uint16(bitutil.Mask(p.cfg.IterBits)) {
			next = uint16(bitutil.Mask(p.cfg.IterBits))
		}
	} else {
		next = 0
	}
	if p.slimLen == len(p.slim) {
		p.slimHead = (p.slimHead + 1) % len(p.slim)
		p.slimLen--
	}
	pos := (p.slimHead + p.slimLen) % len(p.slim)
	p.slim[pos] = slimEntry{key: p.slimKey(pc), iter: next}
	p.slimLen++
	ctx.PushedSlim = true
}

// Retire performs the architectural update. usefulHint indicates the main
// predictor's prediction was wrong for this branch while the loop
// prediction was valid — the paper's condition for incrementing the age
// ("incremented when the entry is used and has provided a valid prediction
// and the prediction would have been incorrect otherwise").
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, usefulHint bool) {
	if ctx.PushedSlim {
		p.slimHead = (p.slimHead + 1) % len(p.slim)
		p.slimLen--
	}
	if !ctx.Hit {
		return
	}
	e := &p.sets[ctx.Set][ctx.Way]
	if e.tag != p.tagOf(pc) || !e.valid {
		return // entry replaced while in flight
	}
	if ctx.Valid && ctx.Pred == taken && usefulHint {
		e.age = uint8(min(int(e.age)+1, int(p.cfg.AgeMax)))
	}
	if taken == e.dir {
		// Still iterating.
		e.current++
		if e.past > 0 && e.current > e.past {
			// More iterations than learned: not a constant-trip loop.
			e.conf = 0
			e.past = 0
			e.age = 0 // "age is reset to zero whenever the branch is
			// determined as not being a regular loop"
		}
		return
	}
	// Loop exit.
	switch {
	case e.past == 0:
		// First completed execution: learn the trip count.
		e.past = e.current
		e.conf = 1
	case e.current == e.past:
		if e.conf < p.cfg.ConfMax {
			e.conf++
		}
	default:
		// Exit at a different count: restart learning.
		e.past = e.current
		e.conf = 0
		e.age = 0
	}
	e.current = 0
}

// Allocate installs an entry for a mispredicted branch: the candidate ways
// are inspected; a way with age 0 is replaced (age reset to max), other
// candidates age down (the paper's replacement policy).
func (p *Predictor) Allocate(pc uint64, taken bool) {
	tag := p.tagOf(pc)
	// Already present?
	for w := 0; w < p.cfg.Ways; w++ {
		s := p.setIndex(pc, w)
		if e := &p.sets[s][w]; e.valid && e.tag == tag {
			return
		}
	}
	for w := 0; w < p.cfg.Ways; w++ {
		s := p.setIndex(pc, w)
		e := &p.sets[s][w]
		if !e.valid || e.age == 0 {
			*e = entry{tag: tag, dir: taken, age: p.cfg.AgeMax, valid: true}
			p.stats.RecordWrite(true)
			return
		}
	}
	// No replaceable way: age the candidates.
	for w := 0; w < p.cfg.Ways; w++ {
		s := p.setIndex(pc, w)
		e := &p.sets[s][w]
		if e.age > 0 {
			e.age--
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
