package looppred

import "testing"

// driveLoop runs `rounds` full executions of a constant-trip loop through
// the predictor with immediate retire, returning mispredictions over the
// last half (the predictor's own prediction counted only when Valid).
func driveLoop(p *Predictor, pc uint64, trip, rounds int) (validPreds, wrongValid int) {
	for r := 0; r < rounds; r++ {
		for i := 0; i < trip; i++ {
			taken := i < trip-1 // exit on the last iteration
			var ctx Ctx
			p.Predict(pc, &ctx)
			if ctx.Valid && r >= rounds/2 {
				validPreds++
				if ctx.Pred != taken {
					wrongValid++
				}
			}
			p.OnResolve(pc, taken, &ctx)
			p.Retire(pc, taken, &ctx, false)
			if !ctx.Hit {
				p.Allocate(pc, taken)
			}
		}
	}
	return
}

func TestLearnsConstantTripLoop(t *testing.T) {
	p := New(Config{}, nil)
	validPreds, wrongValid := driveLoop(p, 0x4000, 23, 40)
	if validPreds == 0 {
		t.Fatal("loop predictor never reached high confidence")
	}
	if wrongValid != 0 {
		t.Fatalf("%d wrong confident predictions on a constant-trip loop", wrongValid)
	}
}

func TestConfidenceRequiresSevenExecutions(t *testing.T) {
	p := New(Config{}, nil)
	pc := uint64(0x100)
	trip := 10
	sawValidAt := -1
	for r := 0; r < 12 && sawValidAt < 0; r++ {
		for i := 0; i < trip; i++ {
			taken := i < trip-1
			var ctx Ctx
			p.Predict(pc, &ctx)
			if ctx.Valid && sawValidAt < 0 {
				sawValidAt = r
			}
			p.OnResolve(pc, taken, &ctx)
			p.Retire(pc, taken, &ctx, false)
			if !ctx.Hit {
				p.Allocate(pc, taken)
			}
		}
	}
	// Allocation happens on the first exit misprediction, the trip count is
	// learned on the next full execution, then 7 confirmations are needed.
	if sawValidAt >= 0 && sawValidAt < 7 {
		t.Fatalf("confident after only %d executions, want >= 7", sawValidAt)
	}
	if sawValidAt < 0 {
		t.Fatal("never became confident")
	}
}

func TestIrregularTripResetsConfidence(t *testing.T) {
	p := New(Config{}, nil)
	pc := uint64(0x200)
	// Train on trip 8, then switch to varying trips.
	driveLoop(p, pc, 8, 20)
	trips := []int{5, 9, 13, 6, 11, 7}
	sawValid := false
	for pass := 0; pass < 4; pass++ {
		for _, trip := range trips {
			for i := 0; i < trip; i++ {
				taken := i < trip-1
				var ctx Ctx
				p.Predict(pc, &ctx)
				if pass > 1 && ctx.Valid {
					sawValid = true
				}
				p.OnResolve(pc, taken, &ctx)
				p.Retire(pc, taken, &ctx, false)
			}
		}
	}
	if sawValid {
		t.Fatal("stayed confident on an irregular loop")
	}
}

func TestSlimTracksInflightIterations(t *testing.T) {
	// With several loop iterations in flight (no retire between them), the
	// speculative iteration count must advance via the SLIM.
	p := New(Config{}, nil)
	pc := uint64(0x300)
	trip := 5
	// Train to confidence with immediate retire.
	driveLoop(p, pc, trip, 30)
	// Now predict a whole loop execution without retiring anything.
	ctxs := make([]Ctx, trip)
	wrong := 0
	for i := 0; i < trip; i++ {
		taken := i < trip-1
		p.Predict(pc, &ctxs[i])
		if !ctxs[i].Valid || ctxs[i].Pred != taken {
			wrong++
		}
		p.OnResolve(pc, taken, &ctxs[i])
	}
	for i := 0; i < trip; i++ {
		taken := i < trip-1
		p.Retire(pc, taken, &ctxs[i], false)
	}
	if wrong != 0 {
		t.Fatalf("%d wrong/unconfident predictions with in-flight iterations", wrong)
	}
}

func TestAllocationRespectsAge(t *testing.T) {
	p := New(Config{Entries: 8, Ways: 4}, nil)
	// Fill the structure with confident entries.
	pcs := []uint64{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80}
	for _, pc := range pcs {
		p.Allocate(pc, true)
	}
	// A new allocation must not immediately evict a fresh (age=max) entry.
	before := countValid(p)
	p.Allocate(0x999, true)
	after := countValid(p)
	if after > before+1 {
		t.Fatalf("valid entries jumped from %d to %d", before, after)
	}
}

func countValid(p *Predictor) int {
	n := 0
	for _, set := range p.sets {
		for _, e := range set {
			if e.valid {
				n++
			}
		}
	}
	return n
}

func TestStorageBits(t *testing.T) {
	// Paper: 64 entries x 37 bits.
	p := New(Config{}, nil)
	if got := p.StorageBits(); got != 64*37 {
		t.Fatalf("StorageBits = %d, want %d", got, 64*37)
	}
}

func TestNoHitNoState(t *testing.T) {
	p := New(Config{}, nil)
	var ctx Ctx
	p.Predict(0x123, &ctx)
	if ctx.Hit || ctx.Valid {
		t.Fatal("empty predictor must not hit")
	}
	// Retire of a non-hit context must be a no-op and not crash.
	p.OnResolve(0x123, true, &ctx)
	p.Retire(0x123, true, &ctx, false)
}

func TestLongTripBeyondLocalHistory(t *testing.T) {
	// Loops with trip counts far beyond any local history length are the
	// loop predictor's unique value; verify a 200-iteration loop works.
	p := New(Config{}, nil)
	validPreds, wrongValid := driveLoop(p, 0x5000, 200, 20)
	if validPreds == 0 || wrongValid > 0 {
		t.Fatalf("trip-200 loop: valid=%d wrong=%d", validPreds, wrongValid)
	}
}
