package neural

import (
	"testing"

	"repro/internal/rng"
)

func runImmediate(p *Predictor, pcs []uint64, outs []bool) (late int) {
	var ctx Ctx
	half := len(pcs) / 2
	for i := range pcs {
		pred := p.Predict(pcs[i], &ctx)
		if pred != outs[i] && i >= half {
			late++
		}
		p.OnResolve(pcs[i], outs[i], pred != outs[i], &ctx)
		p.Retire(pcs[i], outs[i], &ctx, true)
	}
	return
}

func TestLearnsBias(t *testing.T) {
	p := New(Config{})
	n := 3000
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x4000
		outs[i] = true
	}
	if late := runImmediate(p, pcs, outs); late > 10 {
		t.Fatalf("late mispredicts on always-taken: %d", late)
	}
}

// TestLearnsMajorityOfNoise is the neural predictor's defining strength
// (Figure 10): a linearly separable function of noisy history bits.
func TestLearnsMajorityOfNoise(t *testing.T) {
	p := New(Config{})
	r := rng.NewXoshiro(1)
	var hist []bool
	var ctx Ctx
	late, total := 0, 0
	const n = 40000
	for i := 0; i < n; i++ {
		src := r.Bool(0.5)
		pred := p.Predict(0x100, &ctx)
		p.OnResolve(0x100, src, pred != src, &ctx)
		p.Retire(0x100, src, &ctx, true)
		hist = append(hist, src)

		if len(hist) >= 11 {
			cnt := 0
			for _, h := range hist[len(hist)-11:] {
				if h {
					cnt++
				}
			}
			out := cnt >= 6
			pred := p.Predict(0x200, &ctx)
			if i > n/2 {
				total++
				if pred != out {
					late++
				}
			}
			p.OnResolve(0x200, out, pred != out, &ctx)
			p.Retire(0x200, out, &ctx, true)
		}
	}
	rate := float64(late) / float64(total)
	if rate > 0.12 {
		t.Fatalf("majority late rate = %.3f, want well below chance", rate)
	}
}

// TestLearnsCopyDistance: a single-weight correlation.
func TestLearnsCopyDistance(t *testing.T) {
	p := New(Config{})
	r := rng.NewXoshiro(5)
	var hist []bool
	var ctx Ctx
	late, total := 0, 0
	const n = 30000
	const dist = 5
	for i := 0; i < n; i++ {
		src := r.Bool(0.5)
		pred := p.Predict(0x300, &ctx)
		p.OnResolve(0x300, src, pred != src, &ctx)
		p.Retire(0x300, src, &ctx, true)
		hist = append(hist, src)
		if len(hist) > dist {
			out := hist[len(hist)-dist]
			pred := p.Predict(0x400, &ctx)
			if i > n/2 {
				total++
				if pred != out {
					late++
				}
			}
			p.OnResolve(0x400, out, pred != out, &ctx)
			p.Retire(0x400, out, &ctx, true)
		}
	}
	rate := float64(late) / float64(total)
	if rate > 0.10 {
		t.Fatalf("copy-distance late rate = %.3f", rate)
	}
}

func TestWeightsClamped(t *testing.T) {
	p := New(Config{LogPC: 4, LogPath: 2, Hist: 8, WeightBits: 6})
	var ctx Ctx
	for i := 0; i < 5000; i++ {
		p.Predict(0x40, &ctx)
		p.OnResolve(0x40, true, false, &ctx)
		p.Retire(0x40, true, &ctx, true)
	}
	max := int8(31)
	min := int8(-32)
	for _, w := range p.w {
		if w > max || w < min {
			t.Fatalf("weight %d outside [%d, %d]", w, min, max)
		}
	}
}

func TestThresholdStaysPositive(t *testing.T) {
	p := New(Config{LogPC: 4, Hist: 6})
	r := rng.NewXoshiro(9)
	var ctx Ctx
	for i := 0; i < 20000; i++ {
		pc := uint64(0x40 + (i%5)*16)
		taken := r.Bool(0.5)
		pred := p.Predict(pc, &ctx)
		p.OnResolve(pc, taken, pred != taken, &ctx)
		p.Retire(pc, taken, &ctx, true)
	}
	if p.theta < 1 {
		t.Fatalf("threshold = %d", p.theta)
	}
}

func TestStorageBudget(t *testing.T) {
	p := New(Config{})
	kb := p.StorageBits() / 1024
	// The comparator is a 512Kbit-class predictor.
	if kb < 200 || kb > 600 {
		t.Fatalf("storage = %d Kbit, outside the comparison class", kb)
	}
}

func TestHistoryTooLongPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Config{Hist: MaxHist + 1})
}
