package neural

import "repro/internal/checkpoint"

// Snapshot implements predictor.Predictor.
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("neural", 1)
	enc.I8s(p.w)
	enc.I8s(p.bias)
	enc.U32s(p.path)
	enc.Bools(p.dirs)
	enc.Int(p.head)
	enc.I32(p.theta)
	enc.I32(p.tc)
	p.stats.Snapshot(enc)
	enc.End()
}

// Restore implements predictor.Predictor.
func (p *Predictor) Restore(dec *checkpoint.Decoder) {
	dec.Open("neural", 1)
	dec.I8sInto(p.w)
	dec.I8sInto(p.bias)
	dec.U32sInto(p.path)
	dec.BoolsInto(p.dirs)
	head := dec.Int()
	theta := dec.I32()
	tc := dec.I32()
	p.stats.LoadSnapshot(dec)
	dec.Close()
	if dec.Err() != nil {
		return
	}
	if head < 0 || head >= p.cfg.Hist {
		dec.Failf("neural history head %d out of range [0,%d)", head, p.cfg.Hist)
		return
	}
	p.head, p.theta, p.tc = head, theta, tc
}
