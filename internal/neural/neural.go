// Package neural implements a piecewise-linear neural branch predictor in
// the style of Jiménez's piecewise linear branch prediction (ISCA 2005)
// with the scaled-weight refinement of the SNAP/OH-SNAP line of predictors
// (St. Amant, Jiménez, Burger, MICRO 2008; Jiménez, CBP-3 2011). It is the
// repository's stand-in for OH-SNAP, the CBP-3 3rd-place predictor the
// paper compares against in Section 6.3.
//
// Prediction: sum of per-(branch, path-position) weights selected by the
// addresses of recent branches, each weight signed by the corresponding
// history outcome and scaled by a position-dependent coefficient; the sign
// of the sum is the prediction. Training is perceptron-style with a
// dynamically adapted threshold.
package neural

import (
	"fmt"

	"repro/internal/memarray"
)

// MaxHist bounds the history length for fixed-size contexts.
const MaxHist = 40

// Config parameterises the predictor.
type Config struct {
	// LogPC is log2 of the PC buckets (default 7 = 128).
	LogPC uint
	// LogPath is log2 of the path-address buckets per position (default 4).
	LogPath uint
	// Hist is the history length (default 26).
	Hist int
	// WeightBits is the weight width (default 8: [-128, 127]).
	WeightBits uint
}

func (c Config) withDefaults() Config {
	if c.LogPC == 0 {
		c.LogPC = 7
	}
	if c.LogPath == 0 {
		c.LogPath = 4
	}
	if c.Hist == 0 {
		c.Hist = 26
	}
	if c.Hist > MaxHist {
		panic("neural: history too long")
	}
	if c.WeightBits == 0 {
		c.WeightBits = 8
	}
	return c
}

// Predictor is the piecewise-linear predictor.
type Predictor struct {
	cfg    Config
	w      []int8 // [pcBuckets][pathBuckets][hist]
	bias   []int8 // [pcBuckets]
	pcMask uint32
	paMask uint32

	// speculative path/direction history rings
	path []uint32
	dirs []bool
	head int

	theta int32
	tc    int32

	name string // formatted once: Name is on the per-run result path

	stats *memarray.Stats
}

// Ctx is the pipeline context: the weight cells used and values read.
type Ctx struct {
	BiasIdx uint32
	Cells   [MaxHist]uint32 // flat weight indices
	Vals    [MaxHist]int8
	BiasVal int8
	Signs   [MaxHist]bool // history direction per position
	Sum     int32
	Pred    bool
}

// New creates a piecewise-linear predictor.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	n := (1 << cfg.LogPC) * (1 << cfg.LogPath) * cfg.Hist
	p := &Predictor{
		cfg:    cfg,
		w:      make([]int8, n),
		bias:   make([]int8, 1<<cfg.LogPC),
		pcMask: uint32(1<<cfg.LogPC - 1),
		paMask: uint32(1<<cfg.LogPath - 1),
		path:   make([]uint32, cfg.Hist),
		dirs:   make([]bool, cfg.Hist),
		theta:  int32(2*cfg.Hist + 14),
		stats:  &memarray.Stats{},
	}
	p.name = fmt.Sprintf("pwl-%dKb", p.StorageBits()/1024)
	return p
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string { return p.name }

// StorageBits implements predictor.Predictor.
func (p *Predictor) StorageBits() int {
	return (len(p.w) + len(p.bias)) * int(p.cfg.WeightBits)
}

// scale is the SNAP-style position coefficient: recent history positions
// carry more weight.
func scale(j int) int32 {
	switch {
	case j < 4:
		return 4
	case j < 12:
		return 3
	case j < 20:
		return 2
	default:
		return 1
	}
}

// cell returns the flat index for (pc bucket, path bucket, position).
func (p *Predictor) cell(pcIdx, pathIdx uint32, j int) uint32 {
	return (pcIdx*(p.paMask+1)+pathIdx)*uint32(p.cfg.Hist) + uint32(j)
}

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) bool {
	pcIdx := uint32(pc>>2) & p.pcMask
	ctx.BiasIdx = pcIdx
	ctx.BiasVal = p.bias[pcIdx]
	sum := int32(ctx.BiasVal) * 2
	for j := 0; j < p.cfg.Hist; j++ {
		slot := (p.head - j + p.cfg.Hist) % p.cfg.Hist
		pathIdx := p.path[slot] & p.paMask
		c := p.cell(pcIdx, pathIdx, j)
		v := p.w[c]
		ctx.Cells[j] = c
		ctx.Vals[j] = v
		ctx.Signs[j] = p.dirs[slot]
		if p.dirs[slot] {
			sum += int32(v) * scale(j)
		} else {
			sum -= int32(v) * scale(j)
		}
	}
	ctx.Sum = sum
	ctx.Pred = sum >= 0
	return ctx.Pred
}

// OnResolve implements predictor.Predictor: push speculative path history.
func (p *Predictor) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {
	p.head = (p.head + 1) % p.cfg.Hist
	p.path[p.head] = uint32(pc >> 2)
	p.dirs[p.head] = taken
}

// Retire implements predictor.Predictor: perceptron training with dynamic
// threshold.
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	mispredicted := ctx.Pred != taken
	a := ctx.Sum
	if a < 0 {
		a = -a
	}
	if mispredicted || a < p.theta {
		max := int32(1)<<(p.cfg.WeightBits-1) - 1
		min := -max - 1
		clamp := func(v int32) int8 {
			if v > max {
				v = max
			}
			if v < min {
				v = min
			}
			return int8(v)
		}
		// Bias trains toward the outcome.
		ob := int32(ctx.BiasVal)
		if reread {
			ob = int32(p.bias[ctx.BiasIdx])
		}
		var nb int32
		if taken {
			nb = ob + 1
		} else {
			nb = ob - 1
		}
		if cv := clamp(nb); cv != p.bias[ctx.BiasIdx] {
			p.bias[ctx.BiasIdx] = cv
			p.stats.RecordWrite(true)
		} else {
			p.stats.RecordWrite(false)
		}
		for j := 0; j < p.cfg.Hist; j++ {
			ov := int32(ctx.Vals[j])
			if reread {
				ov = int32(p.w[ctx.Cells[j]])
			}
			var nv int32
			if ctx.Signs[j] == taken {
				nv = ov + 1
			} else {
				nv = ov - 1
			}
			if cv := clamp(nv); cv != p.w[ctx.Cells[j]] {
				p.w[ctx.Cells[j]] = cv
				p.stats.RecordWrite(true)
			} else {
				p.stats.RecordWrite(false)
			}
		}
	}
	// Threshold adaptation (Seznec-style balance fitting).
	if mispredicted {
		p.tc++
		if p.tc >= 63 {
			p.tc = 0
			p.theta++
		}
	} else if a < p.theta {
		p.tc--
		if p.tc <= -63 {
			p.tc = 0
			if p.theta > 1 {
				p.theta--
			}
		}
	}
}

// AccessStats implements predictor.Predictor.
func (p *Predictor) AccessStats() *memarray.Stats { return p.stats }

// Reset implements predictor.Predictor: weights, speculative histories,
// threshold state and accounting back to the construction state, reusing
// all storage.
func (p *Predictor) Reset() {
	for i := range p.w {
		p.w[i] = 0
	}
	for i := range p.bias {
		p.bias[i] = 0
	}
	for i := range p.path {
		p.path[i] = 0
	}
	for i := range p.dirs {
		p.dirs[i] = false
	}
	p.head = 0
	p.theta = int32(2*p.cfg.Hist + 14)
	p.tc = 0
	p.stats.Reset()
}
