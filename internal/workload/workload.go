// Package workload synthesises the 40-trace benchmark set standing in for
// the (proprietary) CBP-3 traces the paper evaluates on (Section 2): five
// categories — CLIENT, INT, MM, SERVER, WS — of eight traces each, built
// from branch-behaviour archetypes that isolate the mechanisms the paper
// studies:
//
//   - constant-trip loops with irregular bodies  -> loop predictor (5.2)
//   - statistically biased, history-uncorrelated -> Statistical Corrector (5.3)
//   - local patterns under noisy global paths    -> LSC (6)
//   - recurring path contexts, long periods      -> TAGE's own strength (3)
//   - majority/copy functions of noisy history   -> neural predictors (6.3)
//   - huge pattern footprints                    -> capacity scaling (Fig. 9)
//
// Seven traces (CLIENT02, INT01, INT02, MM05, MM07, WS03, WS04) are
// deliberately hard and carry roughly three quarters of the suite's
// mispredictions, reproducing the Section 2.2 characterisation; CLIENT02's
// difficulty is almost purely footprint (a pattern zoo), giving it the
// paper's "suddenly falls at 2-8 Mbit" scaling cliff.
//
// Everything is deterministic given the per-trace seed.
package workload

import (
	"repro/internal/bitutil"
	"repro/internal/rng"
	"repro/internal/trace"
)

// env is the shared generation state visible to behaviours.
type env struct {
	r      *rng.Xoshiro
	recent []uint8 // ring of recent branch outcomes (global history)
	head   int
}

func newEnv(r *rng.Xoshiro) *env {
	return &env{r: r, recent: make([]uint8, 4096)}
}

func (e *env) push(taken bool) {
	e.head = (e.head + 1) & (len(e.recent) - 1)
	if taken {
		e.recent[e.head] = 1
	} else {
		e.recent[e.head] = 0
	}
}

// bit returns the outcome of the i-th most recent emitted branch.
func (e *env) bit(i int) bool {
	return e.recent[(e.head-i)&(len(e.recent)-1)] == 1
}

// behavior produces successive outcomes for one static branch site.
type behavior interface {
	next(e *env) bool
}

// --- behaviours ---

// always is a fully biased branch.
type always bool

func (a always) next(*env) bool { return bool(a) }

// bernoulli is a statistically biased branch with no correlation to
// anything: the Statistical Corrector's target class.
type bernoulli struct {
	p float64
	r *rng.Xoshiro
}

func (b *bernoulli) next(*env) bool { return b.r.Bool(b.p) }

// pattern replays a fixed bit pattern: predictable from local history (and
// from global history when its context is quiet).
type pattern struct {
	bits []bool
	pos  int
}

func (p *pattern) next(*env) bool {
	v := p.bits[p.pos]
	p.pos++
	if p.pos == len(p.bits) {
		p.pos = 0
	}
	return v
}

// patternZoo cycles through a large set of distinct patterns, switching
// after each full pass: each (pattern, position) pair is an independent
// mapping, so prediction accuracy is capacity-bound (the CLIENT02
// archetype).
type patternZoo struct {
	patterns [][]bool
	pi, pos  int
}

func newPatternZoo(r *rng.Xoshiro, numPatterns, length int) *patternZoo {
	z := &patternZoo{patterns: make([][]bool, numPatterns)}
	for i := range z.patterns {
		p := make([]bool, length)
		for j := range p {
			p[j] = r.Bool(0.5)
		}
		z.patterns[i] = p
	}
	return z
}

func (z *patternZoo) next(*env) bool {
	p := z.patterns[z.pi]
	v := p[z.pos]
	z.pos++
	if z.pos == len(p) {
		z.pos = 0
		z.pi++
		if z.pi == len(z.patterns) {
			z.pi = 0
		}
	}
	return v
}

// majority takes the majority vote of the last `window` global outcomes,
// with flip noise: linearly separable (neural predictors learn it), but an
// exact-match predictor sees an astronomical pattern space.
type majority struct {
	window int
	noise  float64
	r      *rng.Xoshiro
}

func (m *majority) next(e *env) bool {
	cnt := 0
	for i := 1; i <= m.window; i++ {
		if e.bit(i) {
			cnt++
		}
	}
	v := cnt*2 >= m.window
	if m.r.Bool(m.noise) {
		v = !v
	}
	return v
}

// phased flips its direction every `period` occurrences: a stationary
// predictor tracks each phase perfectly, but every phase change costs a
// burst of mispredictions under delayed update (the Figure 3 mechanism) —
// exactly one under oracle update. This is the behaviour class the IUM
// recovers (Section 5.1).
type phased struct {
	period int
	count  int
	dir    bool
}

func (p *phased) next(*env) bool {
	v := p.dir
	p.count++
	if p.count == p.period {
		p.count = 0
		p.dir = !p.dir
	}
	return v
}

// copyDist copies the outcome of the branch `dist` positions back in the
// global stream: trivially linear (single weight) for a neural predictor,
// unlearnable for exact-match predictors when the source is noise.
type copyDist struct {
	dist int
}

func (c copyDist) next(e *env) bool { return e.bit(c.dist) }

// --- program structure ---

// emitter accumulates the trace.
type emitter struct {
	env   *env
	buf   []trace.Branch
	limit int
}

func (e *emitter) full() bool { return len(e.buf) >= e.limit }

func (e *emitter) emit(pc uint64, taken bool) {
	if e.full() {
		return
	}
	ops := uint8(2 + bitutil.Mix64(pc)%6)
	e.buf = append(e.buf, trace.Branch{PC: pc, Taken: taken, OpsBefore: ops})
	e.env.push(taken)
}

// node is a program structure element.
type node interface {
	run(e *emitter)
}

// seq runs children in order.
type seq []node

func (s seq) run(e *emitter) {
	for _, n := range s {
		if e.full() {
			return
		}
		n.run(e)
	}
}

// site is a single static branch.
type site struct {
	pc uint64
	b  behavior
}

func (s *site) run(e *emitter) { e.emit(s.pc, s.b.next(e.env)) }

// loop runs body a number of times given by trips(), emitting the
// backward loop-control branch (taken while iterating) after each body.
type loop struct {
	ctrlPC uint64
	trips  func() int
	body   node
}

func (l *loop) run(e *emitter) {
	n := l.trips()
	for i := 0; i < n && !e.full(); i++ {
		if l.body != nil {
			l.body.run(e)
		}
		e.emit(l.ctrlPC, i < n-1)
	}
}

// choose picks one child according to weights, emitting ceil(log2(n))
// "router" branches whose outcomes encode the chosen index — the way an
// if/else chain imprints the path on the global history.
type choose struct {
	routerPC uint64
	weights  []int
	total    int
	children []node
	r        *rng.Xoshiro
	silent   bool // no router branches: pure control-flow scrambling
}

func newChoose(routerPC uint64, r *rng.Xoshiro, weights []int, children []node, silent bool) *choose {
	t := 0
	for _, w := range weights {
		t += w
	}
	return &choose{routerPC: routerPC, weights: weights, total: t, children: children, r: r, silent: silent}
}

func (c *choose) run(e *emitter) {
	pick := c.r.Intn(c.total)
	idx := 0
	for i, w := range c.weights {
		if pick < w {
			idx = i
			break
		}
		pick -= w
	}
	if !c.silent {
		bits := bitutil.Log2(bitutil.CeilPow2(len(c.children)))
		for b := int(bits) - 1; b >= 0; b-- {
			e.emit(c.routerPC+uint64(b)*4, (idx>>uint(b))&1 == 1)
		}
	}
	if !e.full() {
		c.children[idx].run(e)
	}
}

// cycle dispatches over children following a fixed periodic schedule
// (drawn once at build time), emitting router branches like choose. The
// super-period is typically far beyond a short history register but well
// within TAGE's geometric reach — the realistic "repetitive dispatch"
// behaviour that separates long-history from short-history predictors.
type cycle struct {
	routerPC uint64
	schedule []int
	pos      int
	children []node
}

func (c *cycle) run(e *emitter) {
	idx := c.schedule[c.pos]
	c.pos++
	if c.pos == len(c.schedule) {
		c.pos = 0
	}
	bits := bitutil.Log2(bitutil.CeilPow2(len(c.children)))
	for b := int(bits) - 1; b >= 0; b-- {
		e.emit(c.routerPC+uint64(b)*4, (idx>>uint(b))&1 == 1)
	}
	if !e.full() {
		c.children[idx].run(e)
	}
}

// repeat runs its child forever (bounded by the emitter limit).
type repeat struct{ body node }

func (r *repeat) run(e *emitter) {
	for !e.full() {
		r.body.run(e)
	}
}

// builder allocates PCs and carries the benchmark RNG.
type builder struct {
	r      *rng.Xoshiro
	nextPC uint64
}

func newBuilder(seed uint64) *builder {
	return &builder{r: rng.NewXoshiro(seed), nextPC: 0x400000}
}

func (b *builder) pc() uint64 {
	p := b.nextPC
	b.nextPC += 0x10
	return p
}

func (b *builder) site(bh behavior) node { return &site{pc: b.pc(), b: bh} }

func (b *builder) bern(p float64) node {
	return b.site(&bernoulli{p: p, r: b.r.Fork(b.nextPC)})
}

func (b *builder) pat(length int) node {
	bits := make([]bool, length)
	for i := range bits {
		bits[i] = b.r.Bool(0.5)
	}
	return b.site(&pattern{bits: bits})
}

func (b *builder) fixedLoop(trip int, body node) node {
	return &loop{ctrlPC: b.pc(), trips: func() int { return trip }, body: body}
}

func (b *builder) jitterLoop(base, spread int, body node) node {
	r := b.r.Fork(b.nextPC)
	return &loop{ctrlPC: b.pc(), trips: func() int { return base + r.Intn(spread+1) }, body: body}
}

func (b *builder) pick(weights []int, silent bool, children ...node) node {
	return newChoose(b.pc(), b.r.Fork(b.nextPC), weights, children, silent)
}

// cycle builds a periodic dispatcher: child 0 dominates the schedule, the
// others appear in a fixed pseudo-random order.
func (b *builder) cycle(scheduleLen int, children ...node) node {
	sched := make([]int, scheduleLen)
	for i := range sched {
		if b.r.Bool(0.6) || len(children) == 1 {
			sched[i] = 0
		} else {
			sched[i] = 1 + b.r.Intn(len(children)-1)
		}
	}
	return &cycle{routerPC: b.pc(), schedule: sched, children: children}
}

func uniform(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	return w
}

func skewed(n int) []int {
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	w[0] = 4 * n
	return w
}
