package workload

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/trace"
)

func TestAllHas40Benchmarks(t *testing.T) {
	specs := All()
	if len(specs) != 40 {
		t.Fatalf("got %d benchmarks, want 40", len(specs))
	}
	cats := map[string]int{}
	hard := 0
	names := map[string]bool{}
	for _, s := range specs {
		cats[s.Category]++
		if s.Hard {
			hard++
		}
		if names[s.Name] {
			t.Fatalf("duplicate name %s", s.Name)
		}
		names[s.Name] = true
	}
	for _, c := range []string{"CLIENT", "INT", "MM", "SERVER", "WS"} {
		if cats[c] != 8 {
			t.Fatalf("category %s has %d traces, want 8", c, cats[c])
		}
	}
	if hard != 7 {
		t.Fatalf("hard subset = %d traces, want 7", hard)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec, _ := Find("INT03")
	a := Generate(spec, 5000)
	b := Generate(spec, 5000)
	if len(a.Branches) != len(b.Branches) {
		t.Fatal("lengths differ")
	}
	for i := range a.Branches {
		if a.Branches[i] != b.Branches[i] {
			t.Fatalf("branch %d differs", i)
		}
	}
}

func TestGenerateRespectsLimit(t *testing.T) {
	for _, name := range []string{"CLIENT01", "MM02", "SERVER05"} {
		tr, err := GenerateByName(name, 2000)
		if err != nil {
			t.Fatal(err)
		}
		if len(tr.Branches) != 2000 {
			t.Fatalf("%s: got %d branches", name, len(tr.Branches))
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := GenerateByName("NOPE", 10); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestTracesHaveBothDirections(t *testing.T) {
	for _, s := range All() {
		tr := Generate(s, 3000)
		st := trace.Summarize(tr)
		if st.TakenFraction < 0.05 || st.TakenFraction > 0.95 {
			t.Errorf("%s: taken fraction %.2f is degenerate", s.Name, st.TakenFraction)
		}
	}
}

func TestServerHasLargeFootprint(t *testing.T) {
	trS, _ := GenerateByName("SERVER08", 50000)
	trM, _ := GenerateByName("MM01", 50000)
	sS := trace.Summarize(trS)
	sM := trace.Summarize(trM)
	if sS.StaticBranches <= sM.StaticBranches {
		t.Fatalf("SERVER should have a larger footprint: %d vs %d",
			sS.StaticBranches, sM.StaticBranches)
	}
	if sS.StaticBranches < 100 {
		t.Fatalf("SERVER footprint too small: %d", sS.StaticBranches)
	}
}

func TestCategoriesDistinct(t *testing.T) {
	// Different benchmarks must produce different streams.
	a, _ := GenerateByName("WS01", 2000)
	b, _ := GenerateByName("WS02", 2000)
	same := 0
	for i := range a.Branches {
		if a.Branches[i].PC == b.Branches[i].PC && a.Branches[i].Taken == b.Branches[i].Taken {
			same++
		}
	}
	if same > 1500 {
		t.Fatalf("WS01 and WS02 nearly identical: %d/2000 equal", same)
	}
}

func TestEnvRecentRing(t *testing.T) {
	e := newEnv(rng.NewXoshiro(1))
	e.push(true)
	e.push(false)
	e.push(true)
	if !e.bit(0) || e.bit(1) || !e.bit(2) {
		t.Fatal("recent ring order wrong")
	}
}

func TestPatternZooCycles(t *testing.T) {
	z := newPatternZoo(rng.NewXoshiro(3), 4, 8)
	// Collect two full cycles; they must match exactly.
	var first, second []bool
	for i := 0; i < 4*8; i++ {
		first = append(first, z.next(nil))
	}
	for i := 0; i < 4*8; i++ {
		second = append(second, z.next(nil))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("zoo not periodic at %d", i)
		}
	}
}

func TestMajorityBehavior(t *testing.T) {
	e := newEnv(rng.NewXoshiro(5))
	for i := 0; i < 10; i++ {
		e.push(true)
	}
	m := &majority{window: 9, noise: 0, r: rng.NewXoshiro(1)}
	if !m.next(e) {
		t.Fatal("majority of all-taken must be taken")
	}
	for i := 0; i < 10; i++ {
		e.push(false)
	}
	if m.next(e) {
		t.Fatal("majority of all-not-taken must be not-taken")
	}
}

func TestCopyDistBehavior(t *testing.T) {
	e := newEnv(rng.NewXoshiro(5))
	e.push(true)
	e.push(false)
	e.push(false)
	c := copyDist{dist: 2}
	// bit(2) is the outcome two branches back = true.
	if !c.next(e) {
		t.Fatal("copyDist must copy the outcome at its distance")
	}
}

func TestOpsBeforeDeterministicPerPC(t *testing.T) {
	tr, _ := GenerateByName("CLIENT03", 20000)
	ops := map[uint64]uint8{}
	for _, b := range tr.Branches {
		if prev, ok := ops[b.PC]; ok && prev != b.OpsBefore {
			t.Fatalf("PC %#x has varying OpsBefore", b.PC)
		}
		ops[b.PC] = b.OpsBefore
	}
}

func TestSelectGlobs(t *testing.T) {
	all, err := Select(nil)
	if err != nil || len(all) != 40 {
		t.Fatalf("Select(nil) = %d specs, err=%v", len(all), err)
	}
	hard, err := Select([]string{"INT0[12]", "MM05", "INT01"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"INT01", "INT02", "MM05"}
	if len(hard) != len(want) {
		t.Fatalf("selected %d specs, want %d", len(hard), len(want))
	}
	for i, s := range hard {
		if s.Name != want[i] {
			t.Fatalf("selection[%d] = %s, want %s (suite order, deduplicated)", i, s.Name, want[i])
		}
	}
	if _, err := Select([]string{"ZZZ*"}); err == nil {
		t.Fatal("no-match pattern must error")
	}
	if _, err := Select([]string{"[oops"}); err == nil {
		t.Fatal("malformed pattern must error")
	}
}
