package workload

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/trace"
)

// Spec identifies one workload: a named synthetic benchmark, a resolved
// generator spec, or a file-backed external trace. Name is the trace
// identity everywhere (cell keys, store records, warm-cache keys); for
// named benchmarks it is the benchmark name, for generator specs the
// canonical spec string, and for file sources the content-addressed
// "file:<hash>" form.
type Spec struct {
	Name     string
	Category string
	Seed     uint64
	// Hard marks the seven high-misprediction traces of Section 2.2.
	Hard  bool
	build func(b *builder) node
	// spec, when set, is the resolvable spec string behind a Name that
	// is not itself resolvable — file sources record "file:<path>" here
	// while Name carries the content hash.
	spec string
	// gen, when set, bypasses program building entirely (file-backed
	// sources replay loaded branches).
	gen func(branches int) *trace.Trace
}

// SpecString returns the resolvable spec string for this workload:
// ResolveSpec(s.SpecString()) rebuilds an equivalent Spec. For named
// benchmarks and generator kinds this is just Name.
func (s Spec) SpecString() string {
	if s.spec != "" {
		return s.spec
	}
	return s.Name
}

// HardNames lists the paper's seven high-misprediction-rate benchmarks
// (Section 2.2), which our synthesis reproduces as the hard subset.
var HardNames = map[string]bool{
	"CLIENT02": true, "INT01": true, "INT02": true,
	"MM05": true, "MM07": true, "WS03": true, "WS04": true,
}

// All returns the 40 benchmark specs in a stable order.
func All() []Spec {
	var specs []Spec
	add := func(cat string, i int, f func(b *builder) node) {
		name := fmt.Sprintf("%s%02d", cat, i+1)
		specs = append(specs, Spec{
			Name:     name,
			Category: cat,
			Seed:     uint64(len(specs)+1) * 0x9e3779b97f4a7c15,
			Hard:     HardNames[name],
			build:    f,
		})
	}
	for i := 0; i < 8; i++ {
		add("CLIENT", i, clientBench(i))
	}
	for i := 0; i < 8; i++ {
		add("INT", i, intBench(i))
	}
	for i := 0; i < 8; i++ {
		add("MM", i, mmBench(i))
	}
	for i := 0; i < 8; i++ {
		add("SERVER", i, serverBench(i))
	}
	for i := 0; i < 8; i++ {
		add("WS", i, wsBench(i))
	}
	sort.SliceStable(specs, func(a, b int) bool { return specs[a].Name < specs[b].Name })
	return specs
}

// Find returns the spec with the given name.
func Find(name string) (Spec, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Select resolves trace patterns against the suite and the spec
// grammar: a pattern containing ':' is a trace spec (generator kind or
// "file:path.bpt") resolved via ResolveSpec; anything else is a
// benchmark-name glob (e.g. "INT*"). Glob matches come first in suite
// order, then spec-resolved workloads in pattern order, deduplicated by
// trace identity. No patterns selects the whole suite; a pattern that
// matches nothing is an error with near-miss suggestions, so a typo
// fails loudly instead of silently shrinking a sweep.
func Select(patterns []string) ([]Spec, error) {
	all := All()
	if len(patterns) == 0 {
		return all, nil
	}
	matched := make(map[string]bool)
	var specs []Spec // resolved (non-glob) workloads, pattern order
	for _, p := range patterns {
		if strings.ContainsRune(p, ':') {
			sp, err := ResolveSpec(p)
			if err != nil {
				return nil, err
			}
			specs = append(specs, sp)
			continue
		}
		hit := false
		for _, s := range all {
			ok, err := path.Match(p, s.Name)
			if err != nil {
				return nil, fmt.Errorf("workload: bad trace pattern %q: %w", p, err)
			}
			if ok {
				matched[s.Name] = true
				hit = true
			}
		}
		if !hit {
			// Non-glob misses may still be valid specs (a generator
			// kind misspelled, or a name typo): route through the
			// spec parser for its richer diagnostics.
			if !strings.ContainsAny(p, "*?[") {
				sp, err := ResolveSpec(p)
				if err != nil {
					return nil, err
				}
				specs = append(specs, sp)
				continue
			}
			return nil, unknownNameError(p)
		}
	}
	var out []Spec
	for _, s := range all {
		if matched[s.Name] {
			out = append(out, s)
		}
	}
	for _, sp := range specs {
		if !matched[sp.Name] {
			matched[sp.Name] = true
			out = append(out, sp)
		}
	}
	return out, nil
}

// Generate materialises `branches` branches of the workload. For
// generated workloads (named benchmarks and generator specs) the result
// is a pure function of (Seed, branches); file-backed workloads replay
// their loaded branches.
func Generate(spec Spec, branches int) *trace.Trace {
	if spec.gen != nil {
		return spec.gen(branches)
	}
	b := newBuilder(spec.Seed)
	program := spec.build(b)
	e := &emitter{env: newEnv(b.r.Fork(0xeeee)), limit: branches}
	e.buf = make([]trace.Branch, 0, branches)
	(&repeat{body: program}).run(e)
	return &trace.Trace{Name: spec.Name, Category: spec.Category, Branches: e.buf}
}

// GenerateByName materialises a benchmark by name.
func GenerateByName(name string, branches int) (*trace.Trace, error) {
	spec, ok := Find(name)
	if !ok {
		return nil, fmt.Errorf("workload: unknown benchmark %q", name)
	}
	return Generate(spec, branches), nil
}

// --- shared building blocks ---

// fixedSig emits a short fixed direction signature: every branch is
// trivially predictable, but different signatures leave different
// direction-history imprints (path irregularity without irreducible
// noise).
func fixedSig(b *builder, dirs ...bool) node {
	s := make(seq, len(dirs))
	for i, d := range dirs {
		s[i] = b.site(always(d))
	}
	return s
}

// scramble picks silently between distinct fixed signatures: the control
// flow becomes irregular while every emitted branch stays predictable in
// isolation — the "erratic control flow in the loop body" of Section 5.2.
// The entropy injected into the global history is one bit per call.
func scramble(b *builder) node {
	return b.pick(uniform(2), true,
		fixedSig(b, true, false),
		fixedSig(b, false, true),
	)
}

// scFood is a statistically biased branch in a scrambled context: a wide
// counter predicts it at its bias; TAGE's allocation churn does worse
// (the Section 5.3 target class).
func scFood(b *builder, p float64) node {
	return seq{scramble(b), b.bern(p)}
}

// steady emits k highly predictable branches (the bulk of real programs):
// tight always-taken loops, repeating patterns and near-certain tests.
func steady(b *builder, k int) node {
	s := make(seq, 0, k)
	for i := 0; i < k; i++ {
		switch i % 4 {
		case 0:
			s = append(s, b.site(always(i%8 < 6)))
		case 1:
			s = append(s, b.site(always(b.r.Bool(0.5))))
		case 2:
			s = append(s, b.bern(0.999))
		default:
			s = append(s, b.site(always(true)))
		}
	}
	return s
}

// lscFood is a branch predictable only from its own local history: a
// pattern site whose global context is scrambled.
func lscFood(b *builder, patternLen int) node {
	return seq{scramble(b), b.pat(patternLen)}
}

// loopFood is a constant-trip loop with an erratic body: the loop
// predictor's unique territory (trip beyond the LSC's 31-bit local
// history; body scrambles TAGE's global history).
func loopFood(b *builder, trip int) node {
	return b.fixedLoop(trip, scramble(b))
}

// phasedFood is a tight loop over a direction that flips phase every
// `period` iterations: the delayed-update stress case of Figure 3 and the
// IUM's recovery target.
func phasedFood(b *builder, trip, period int) node {
	return b.fixedLoop(trip, b.site(&phased{period: period, dir: true}))
}

// neuralFood is a majority-of-history branch preceded by its noise
// sources: linearly separable, exact-match-resistant.
func neuralFood(b *builder, window int, noise float64) node {
	return seq{
		b.bern(0.5), b.bern(0.5), b.bern(0.5),
		b.site(&majority{window: window, noise: noise, r: b.r.Fork(uint64(window))}),
	}
}

// copyFood pairs a noise source with a branch copying it at distance
// dist: one-weight learning for a neural predictor.
func copyFood(b *builder, dist int) node {
	filler := make(seq, 0, dist)
	for i := 0; i < dist-1; i++ {
		filler = append(filler, b.site(always(i%2 == 0)))
	}
	return seq{b.bern(0.5), filler, b.site(copyDist{dist: dist})}
}

// --- category recipes ---
//
// Calibration targets (reference 512Kb TAGE, Section 2.2): the 33 easy
// traces sit well under ~3 MPKI each; the 7 hard traces near 8-20 MPKI and
// together carry ~3/4 of the suite's mispredictions.

// clientBench: event-dispatch style: a skewed choice among handlers, each
// with biased branches, small loops and patterns. CLIENT02 is the
// footprint outlier: a pattern zoo whose accuracy is capacity-bound.
func clientBench(i int) func(b *builder) node {
	return func(b *builder) node {
		if i == 1 { // CLIENT02: capacity-bound pattern zoo
			// The zoo's context is kept deterministic (the noise sits right
			// after the zoo, maximally far from the next segment start), so
			// its predictability is purely a table-capacity question: small
			// predictors thrash, multi-Mbit predictors learn every pattern —
			// the Figure 9 cliff.
			zoo := b.site(newPatternZoo(b.r.Fork(2), 1024, 16))
			zooSeg := b.fixedLoop(16, zoo)
			return seq{zooSeg, b.bern(0.9), steady(b, 8), phasedFood(b, 5, 50)}
		}
		handlers := []node{
			seq{b.bern(0.998), b.pat(6), b.fixedLoop(5, b.site(always(true)))},
			seq{b.pat(8), b.bern(0.997), steady(b, 4)},
			lscFood(b, 10+i),
			seq{b.bern(0.996), b.pat(5), steady(b, 3)},
			loopFood(b, 16+i),
			scFood(b, 0.92),
			steady(b, 6),
			phasedFood(b, 7, 40+6*i),
		}
		return b.cycle(17, handlers...)
	}
}

// intBench: integer codes: loops, path-correlated branches, statistical
// bias. INT01/INT02 are hard: noise plus neural-friendly functions,
// diluted with realistic predictable filler.
func intBench(i int) func(b *builder) node {
	return func(b *builder) node {
		if i == 0 { // INT01
			return seq{
				neuralFood(b, 17, 0.06),
				steady(b, 8),
				copyFood(b, 7),
				neuralFood(b, 11, 0.05),
				steady(b, 6),
				seq{b.bern(0.7), b.bern(0.62), b.bern(0.58)},
				lscFood(b, 11),
				phasedFood(b, 8, 24),
				copyFood(b, 5),
				b.fixedLoop(6, steady(b, 2)),
			}
		}
		if i == 1 { // INT02
			return seq{
				copyFood(b, 11),
				steady(b, 8),
				neuralFood(b, 23, 0.1),
				copyFood(b, 6),
				seq{b.bern(0.62), b.bern(0.7), b.bern(0.74), b.bern(0.55)},
				neuralFood(b, 13, 0.07),
				phasedFood(b, 7, 30),
				loopFood(b, 22),
			}
		}
		body := seq{b.bern(0.998), b.pat(6 + i)}
		return seq{
			b.fixedLoop(8+i, body),
			b.cycle(13,
				seq{b.pat(12), b.bern(0.998)},
				lscFood(b, 8),
				steady(b, 5),
				loopFood(b, 16+i),
				steady(b, 7),
				phasedFood(b, 6, 50+4*i),
			),
			scFood(b, 0.93),
		}
	}
}

// mmBench: multimedia kernels: deeply regular nested loops and long
// patterns. MM05/MM07 are hard: noisy data-dependent branches inside the
// kernels.
func mmBench(i int) func(b *builder) node {
	return func(b *builder) node {
		if i == 4 { // MM05
			inner := seq{b.bern(0.62), steady(b, 5)}
			return seq{
				b.fixedLoop(16, inner),
				neuralFood(b, 15, 0.08),
				copyFood(b, 8),
				seq{b.bern(0.6), b.bern(0.67)},
				lscFood(b, 13),
			}
		}
		if i == 6 { // MM07
			return seq{
				b.jitterLoop(6, 9, seq{b.bern(0.68), steady(b, 3)}),
				copyFood(b, 9),
				neuralFood(b, 21, 0.12),
				copyFood(b, 12),
				seq{b.bern(0.74), b.bern(0.6)},
				neuralFood(b, 9, 0.06),
			}
		}
		kernel := seq{b.pat(16 + 4*i), b.fixedLoop(6+i, b.site(always(true)))}
		return seq{
			b.fixedLoop(24+4*i, kernel),
			b.pat(32),
			phasedFood(b, 6, 60+8*i),
			loopFood(b, 26+2*i),
		}
	}
}

// serverBench: large static footprint: many distinct request-handler
// segments selected by a two-level dispatch with long super-periods. Each
// site's direction is fixed (request-type-determined); the predictability
// burden falls on the dispatch routers and the per-group kernels, so
// accuracy is capacity-bound (Figure 9's rising benefit of larger
// predictors).
func serverBench(i int) func(b *builder) node {
	return func(b *builder) node {
		nGroups := 8
		perGroup := 12 + 2*i
		groups := make([]node, nGroups)
		for g := 0; g < nGroups; g++ {
			segs := make([]node, perGroup)
			for s := 0; s < perGroup; s++ {
				segs[s] = seq{
					b.site(always(b.r.Bool(0.7))),
					b.site(always(b.r.Bool(0.5))),
					b.bern(0.997),
					b.site(always(b.r.Bool(0.6))),
				}
			}
			// One tightly-recurring pattern kernel per group.
			segs[0] = seq{segs[0], b.fixedLoop(6, b.pat(6))}
			groups[g] = b.cycle(perGroup+5, segs...)
		}
		return seq{
			b.cycle(nGroups+3, groups...),
			b.cycle(11,
				steady(b, 6),
				lscFood(b, 9),
				loopFood(b, 18+i),
				scFood(b, 0.91),
				steady(b, 8),
				phasedFood(b, 8, 36+4*i),
			),
		}
	}
}

// wsBench: workstation mix. WS03/WS04 are hard: noise, local-only
// patterns, irregular loops and neural-friendly correlations.
func wsBench(i int) func(b *builder) node {
	return func(b *builder) node {
		if i == 2 { // WS03
			return seq{
				seq{b.bern(0.56), steady(b, 4)},
				lscFood(b, 14),
				neuralFood(b, 19, 0.09),
				copyFood(b, 10),
				phasedFood(b, 6, 28),
				loopFood(b, 26),
				seq{b.bern(0.68), b.bern(0.74), b.bern(0.62)},
			}
		}
		if i == 3 { // WS04
			return seq{
				copyFood(b, 13),
				steady(b, 6),
				seq{b.bern(0.64), b.bern(0.7), b.bern(0.58)},
				neuralFood(b, 13, 0.08),
				b.jitterLoop(5, 7, steady(b, 3)),
				lscFood(b, 12),
			}
		}
		return seq{
			b.fixedLoop(10+i, seq{b.pat(8), b.bern(0.998)}),
			b.cycle(11,
				seq{b.pat(10), b.bern(0.998)},
				lscFood(b, 8+i),
				loopFood(b, 18+i),
				steady(b, 6),
				b.pat(20),
				steady(b, 7),
				phasedFood(b, 7, 44+5*i),
			),
			scFood(b, 0.94),
		}
	}
}
