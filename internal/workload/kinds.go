package workload

// The parameterised generator kinds behind the trace-spec grammar: the
// H2P taxonomy from "Branch Prediction Is Not a Solved Problem" as
// knobs instead of a closed benchmark list. Each kind is a small
// program template over the same node/behaviour machinery the 40 named
// benchmarks use, so a spec like `loopy:trip=100,jitter=8#7` is exactly
// as deterministic and regenerable as `INT01`.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// kindOrder lists the generator kinds in documentation order.
var kindOrder = []string{"loopy", "callret", "datadep", "phased", "ctxflush", "mix"}

// traceKindDef describes one generator kind: its fields (canonical
// order, defaults, validation) and the program template.
type traceKindDef struct {
	kind    string
	doc     string
	fields  []traceFieldDef
	program func(ts TraceSpec, b *builder) node
}

type traceFieldDef struct {
	key       string
	intRange  bool // plain integer: eligible for lo:hi sweep ranges
	def       string
	normalise func(string) (string, error)
}

func (d *traceKindDef) field(key string) *traceFieldDef {
	for i := range d.fields {
		if d.fields[i].key == key {
			return &d.fields[i]
		}
	}
	return nil
}

func (d *traceKindDef) fieldKeys() string {
	keys := make([]string, len(d.fields))
	for i, f := range d.fields {
		keys[i] = f.key
	}
	return strings.Join(keys, ", ")
}

// tIntField declares an integer field with inclusive bounds.
func tIntField(key string, min, max int64, def string) traceFieldDef {
	return traceFieldDef{
		key:      key,
		intRange: true,
		def:      def,
		normalise: func(v string) (string, error) {
			n, err := strconv.ParseInt(strings.TrimSpace(v), 10, 64)
			if err != nil {
				return "", fmt.Errorf("want an integer, got %q", v)
			}
			if n < min || n > max {
				return "", fmt.Errorf("%d out of range [%d, %d]", n, min, max)
			}
			return strconv.FormatInt(n, 10), nil
		},
	}
}

// tFloatField declares a float field with inclusive bounds; the
// canonical form is Go's shortest round-trip rendering.
func tFloatField(key string, min, max float64, def string) traceFieldDef {
	return traceFieldDef{
		key: key,
		def: def,
		normalise: func(v string) (string, error) {
			f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil || math.IsNaN(f) || math.IsInf(f, 0) {
				return "", fmt.Errorf("want a number, got %q", v)
			}
			if f < min || f > max {
				return "", fmt.Errorf("%g out of range [%g, %g]", f, min, max)
			}
			return strconv.FormatFloat(f, 'g', -1, 64), nil
		},
	}
}

// fieldInt reads an integer field from a spec, falling back to the
// kind's default. Specs are validated at parse time, so a conversion
// failure here is a programming error.
func (s TraceSpec) fieldInt(key string) int {
	v, ok := s.Field(key)
	if !ok {
		v = traceKindDefs[s.kind].field(key).def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		panic(fmt.Sprintf("workload: kind %q field %q: non-integer canonical value %q", s.kind, key, v))
	}
	return n
}

// fieldFloat reads a float field from a spec with its default.
func (s TraceSpec) fieldFloat(key string) float64 {
	v, ok := s.Field(key)
	if !ok {
		v = traceKindDefs[s.kind].field(key).def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		panic(fmt.Sprintf("workload: kind %q field %q: non-numeric canonical value %q", s.kind, key, v))
	}
	return f
}

// traceKindDefs registers the kinds. Populated in init (the program
// templates read defaults back out of the registry, which the compiler
// would reject as an initialization cycle in a var initializer); mix
// derives its component-weight fields from kindOrder.
var traceKindDefs map[string]*traceKindDef

func init() {
	defs := map[string]*traceKindDef{
		"loopy": {
			kind: "loopy",
			doc:  "trip-count loops with irregular bodies: the loop predictor's territory, jitter defeats it",
			fields: []traceFieldDef{
				tIntField("trip", 1, 1_000_000, "24"),
				tIntField("jitter", 0, 1_000_000, "0"),
				tIntField("body", 0, 64, "2"),
				tIntField("sites", 1, 64, "4"),
			},
			program: loopyProgram,
		},
		"callret": {
			kind: "callret",
			doc:  "deep call/return trees: history churn from fan-out calls and data-dependent returns",
			fields: []traceFieldDef{
				tIntField("depth", 1, 32, "8"),
				tIntField("fan", 1, 8, "3"),
				tFloatField("ret", 0, 1, "0.3"),
			},
			program: callretProgram,
		},
		"datadep": {
			kind: "datadep",
			doc:  "statistically biased, history-uncorrelated branches: the Statistical Corrector's target class",
			fields: []traceFieldDef{
				tIntField("sites", 1, 256, "8"),
				tFloatField("bias", 0.5, 1, "0.6"),
				tIntField("filler", 0, 64, "4"),
			},
			program: datadepProgram,
		},
		"phased": {
			kind: "phased",
			doc:  "hot/cold phase transitions: distinct programs alternate every `period` branches",
			fields: []traceFieldDef{
				tIntField("period", 16, 1<<30, "8192"),
				tIntField("phases", 2, 16, "4"),
			},
			program: phasedProgram,
		},
		"ctxflush": {
			kind: "ctxflush",
			doc:  "periodic context-switch history pollution: bursts of alien branches every `period` branches",
			fields: []traceFieldDef{
				tIntField("period", 64, 1<<30, "50000"),
				tIntField("burst", 1, 4096, "64"),
			},
			program: ctxflushProgram,
		},
	}
	mix := &traceKindDef{
		kind:    "mix",
		doc:     "weighted composition of the other kinds (at each step one component runs, chosen by weight)",
		program: mixProgram,
	}
	for _, k := range kindOrder {
		if k == "mix" {
			continue
		}
		mix.fields = append(mix.fields, tIntField(k, 1, 100, ""))
	}
	defs["mix"] = mix
	traceKindDefs = defs
}

// --- program structure for the new kinds ---

// callTree emits a recursive call/return shape: at each level a
// data-dependent number of calls fan out (call branch taken per call,
// then not-taken to leave the level), and each matching return branch's
// direction is itself data-dependent — the deep-call-stack history
// churn that return-address-correlated predictors ride and pure global
// history predictors drown in.
type callTree struct {
	callPC []uint64
	retPC  []uint64
	leaf   node
	fan    int
	retP   float64
	r      *rng.Xoshiro
}

func (c *callTree) run(e *emitter) { c.walk(e, 0) }

func (c *callTree) walk(e *emitter, lvl int) {
	if e.full() {
		return
	}
	if lvl == len(c.callPC) {
		c.leaf.run(e)
		return
	}
	calls := c.r.Intn(c.fan + 1)
	for i := 0; i < calls && !e.full(); i++ {
		e.emit(c.callPC[lvl], true)
		c.walk(e, lvl+1)
		e.emit(c.retPC[lvl], c.r.Bool(c.retP))
	}
	e.emit(c.callPC[lvl], false)
}

// phaser dispatches on elapsed trace position: the running child flips
// every `period` emitted branches, so a warmed predictor faces a cold
// working set at each boundary — the Figure 3 delayed-update stress at
// program scale rather than per-site scale.
type phaser struct {
	period   int
	children []node
}

func (p *phaser) run(e *emitter) {
	p.children[(len(e.buf)/p.period)%len(p.children)].run(e)
}

// flusher injects a burst of effectively random alien branches every
// `period` emitted branches — a context switch's worth of history
// pollution without an explicit flush operation.
type flusher struct {
	period int
	burst  int
	pcs    []uint64
	r      *rng.Xoshiro
	next   int
}

func (f *flusher) run(e *emitter) {
	if len(e.buf) < f.next {
		return
	}
	f.next = len(e.buf) + f.period
	for i := 0; i < f.burst && !e.full(); i++ {
		e.emit(f.pcs[i%len(f.pcs)], f.r.Bool(0.5))
	}
}

// --- kind programs ---

// loopyProgram: `sites` loops of `trip` iterations (±jitter) whose
// bodies scramble control flow through `body` silent-signature steps.
// With jitter=0 this is the loop predictor's best case; jitter moves the
// exit branch beyond any trip-count table.
func loopyProgram(ts TraceSpec, b *builder) node {
	trip := ts.fieldInt("trip")
	jitter := ts.fieldInt("jitter")
	bodyLen := ts.fieldInt("body")
	sites := ts.fieldInt("sites")

	mkBody := func() node {
		if bodyLen == 0 {
			return nil
		}
		s := make(seq, 0, bodyLen)
		for i := 0; i < bodyLen; i++ {
			if i%2 == 0 {
				s = append(s, scramble(b))
			} else {
				s = append(s, b.site(always(i%4 < 3)))
			}
		}
		return s
	}
	loops := make([]node, sites)
	for i := range loops {
		if jitter > 0 {
			loops[i] = b.jitterLoop(trip, jitter, mkBody())
		} else {
			loops[i] = b.fixedLoop(trip, mkBody())
		}
	}
	if sites == 1 {
		return loops[0]
	}
	return b.cycle(2*sites+1, loops...)
}

// callretProgram: a depth-`depth` call tree with fan-out `fan` and
// return-branch taken-probability `ret`, over a predictable leaf.
func callretProgram(ts TraceSpec, b *builder) node {
	depth := ts.fieldInt("depth")
	fan := ts.fieldInt("fan")
	retP := ts.fieldFloat("ret")

	callPC := make([]uint64, depth)
	retPC := make([]uint64, depth)
	for i := 0; i < depth; i++ {
		callPC[i] = b.pc()
		retPC[i] = b.pc()
	}
	return &callTree{
		callPC: callPC,
		retPC:  retPC,
		leaf:   seq{b.pat(6), b.bern(0.98)},
		fan:    fan,
		retP:   retP,
		r:      b.r.Fork(0xca11),
	}
}

// datadepProgram: `sites` independent branches taken with probability
// `bias` and zero correlation to history, each padded with `filler`
// steady branches so the noise is diluted the way real code dilutes it.
func datadepProgram(ts TraceSpec, b *builder) node {
	sites := ts.fieldInt("sites")
	bias := ts.fieldFloat("bias")
	filler := ts.fieldInt("filler")

	s := make(seq, 0, 2*sites)
	for i := 0; i < sites; i++ {
		if filler > 0 {
			s = append(s, steady(b, filler))
		}
		s = append(s, b.site(&bernoulli{p: bias, r: b.r.Fork(uint64(i) + 0xda7a)}))
	}
	return s
}

// phasedProgram: `phases` distinct mini-programs, the active one
// switching every `period` emitted branches.
func phasedProgram(ts TraceSpec, b *builder) node {
	period := ts.fieldInt("period")
	phases := ts.fieldInt("phases")

	children := make([]node, phases)
	for i := 0; i < phases; i++ {
		children[i] = seq{
			b.pat(5 + i%7),
			b.fixedLoop(4+i%5, b.site(always(i%2 == 0))),
			b.bern(0.97),
			steady(b, 3),
		}
	}
	return &phaser{period: period, children: children}
}

// ctxflushProgram: a predictable inner program interrupted every
// `period` branches by a `burst`-branch flush of random directions at
// alien PCs.
func ctxflushProgram(ts TraceSpec, b *builder) node {
	period := ts.fieldInt("period")
	burst := ts.fieldInt("burst")

	nPCs := burst
	if nPCs > 256 {
		nPCs = 256
	}
	pcs := make([]uint64, nPCs)
	for i := range pcs {
		pcs[i] = b.pc()
	}
	fl := &flusher{period: period, burst: burst, pcs: pcs, r: b.r.Fork(0xf1a5), next: period}
	inner := seq{
		b.pat(12),
		b.fixedLoop(9, b.pat(5)),
		b.bern(0.995),
		lscFood(b, 10),
	}
	return seq{fl, inner}
}

// mixProgram: one component kind (default-configured) runs per step,
// chosen by the spec's weights. Validation guarantees at least one
// component field is set.
func mixProgram(ts TraceSpec, b *builder) node {
	var weights []int
	var children []node
	for _, k := range kindOrder {
		if k == "mix" {
			continue
		}
		v, ok := ts.Field(k)
		if !ok {
			continue
		}
		w, err := strconv.Atoi(v)
		if err != nil {
			panic(fmt.Sprintf("workload: mix weight %q: non-integer canonical value %q", k, v))
		}
		weights = append(weights, w)
		children = append(children, traceKindDefs[k].program(TraceSpec{kind: k}, b))
	}
	if len(children) == 1 {
		return children[0]
	}
	return b.pick(weights, false, children...)
}
