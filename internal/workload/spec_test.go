package workload

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

// randomSpec draws a random valid generator spec string (possibly with
// messy-but-legal spacing and field order) plus its expected parse.
func randomSpec(r *rand.Rand) string {
	kind := kindOrder[r.Intn(len(kindOrder))]
	def := traceKindDefs[kind]
	var parts []string
	if kind == "mix" {
		n := 1 + r.Intn(len(def.fields))
		perm := r.Perm(len(def.fields))
		for _, i := range perm[:n] {
			parts = append(parts, fmt.Sprintf("%s=%d", def.fields[i].key, 1+r.Intn(100)))
		}
	} else {
		for _, f := range def.fields {
			if r.Intn(2) == 0 {
				continue
			}
			if f.intRange {
				// Stay inside each field's legal range.
				var v int
				switch f.key {
				case "period":
					v = 64 + r.Intn(8192)
				case "phases":
					v = 2 + r.Intn(14)
				case "fan":
					v = 1 + r.Intn(8)
				case "depth":
					v = 1 + r.Intn(32)
				default:
					v = 1 + r.Intn(64)
				}
				parts = append(parts, fmt.Sprintf("%s=%d", f.key, v))
			} else {
				parts = append(parts, fmt.Sprintf("%s=%.2f", f.key, 0.5+0.5*r.Float64()))
			}
		}
	}
	if kind == "mix" && len(parts) == 0 {
		parts = append(parts, "loopy=1")
	}
	s := kind + ":" + strings.Join(parts, ",")
	if r.Intn(2) == 0 {
		s += fmt.Sprintf("#%d", r.Uint64()%1000)
	}
	return s
}

// TestParseCanonicalIdentity: parsing a canonical form reproduces the
// identical spec — ParseTraceSpec ∘ Canonical is the identity over
// random valid specs, so two spellings of one workload collide on one
// cell key.
func TestParseCanonicalIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for i := 0; i < 500; i++ {
		raw := randomSpec(r)
		s1, err := ParseTraceSpec(raw)
		if err != nil {
			t.Fatalf("spec %q: %v", raw, err)
		}
		c := s1.Canonical()
		s2, err := ParseTraceSpec(c)
		if err != nil {
			t.Fatalf("canonical %q of %q did not parse: %v", c, raw, err)
		}
		if got := s2.Canonical(); got != c {
			t.Fatalf("canonical not a fixed point: %q -> %q -> %q", raw, c, got)
		}
	}
}

// TestNamedSugarByteIdentical: every named benchmark parses as a spec
// whose canonical form is exactly the name and whose resolution
// regenerates the same branches bit for bit — the property that keeps
// every pre-spec cell key, golden record and warm-cache key valid.
func TestNamedSugarByteIdentical(t *testing.T) {
	for _, want := range All() {
		ts, err := ParseTraceSpec(want.Name)
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		if !ts.IsNamed() || ts.Canonical() != want.Name {
			t.Fatalf("%s: canonical %q, named=%v", want.Name, ts.Canonical(), ts.IsNamed())
		}
		got, err := ts.Resolve()
		if err != nil {
			t.Fatalf("%s: %v", want.Name, err)
		}
		a, b := Generate(got, 3000), Generate(want, 3000)
		if a.Hash() != b.Hash() || a.Name != b.Name || a.Category != b.Category {
			t.Fatalf("%s: sugar-resolved trace differs from direct generation", want.Name)
		}
	}
}

// TestGeneratorKindsDeterministic: every kind, at defaults, generates
// the identical branch stream twice; a different seed changes it.
func TestGeneratorKindsDeterministic(t *testing.T) {
	for _, kind := range kindOrder {
		spec := kind + ":"
		if kind == "mix" {
			spec = "mix:loopy=2,datadep=1"
		}
		sp, err := ResolveSpec(spec + "#1")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		h1 := Generate(sp, 10000).Hash()
		h2 := Generate(sp, 10000).Hash()
		if h1 != h2 {
			t.Fatalf("%s: same spec+seed produced different traces", kind)
		}
		sp2, err := ResolveSpec(spec + "#2")
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if Generate(sp2, 10000).Hash() == h1 {
			t.Fatalf("%s: seed change did not change the trace", kind)
		}
		if sp.Name != ResolveSpecMust(t, spec+"#1").Name {
			t.Fatalf("%s: unstable resolved name", kind)
		}
	}
}

func ResolveSpecMust(t *testing.T, s string) Spec {
	t.Helper()
	sp, err := ResolveSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestParseErrors covers the grammar's failure modes: each must error
// and say something actionable.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"", "empty"},
		{"BOGUS", "matches no benchmark"},
		{"INT99", "did you mean"},
		{"INT01#7", "drop the \"#7\" suffix"},
		{"loopy", "write a spec like"},
		{"zoomy:trip=1", "unknown workload kind"},
		{"loopy:warp=9", "no field \"warp\""},
		{"loopy:trip=1,trip=2", "twice"},
		{"loopy:trip=x", "want an integer"},
		{"loopy:trip=0", "out of range"},
		{"callret:ret=1.5", "out of range"},
		{"loopy:trip", "not key=value"},
		{"loopy:trip=1,", "stray comma"},
		{"loopy:trip=1#zz", "bad seed"},
		{"mix:", "at least one component"},
		{"file:", "needs a path"},
	}
	for _, c := range cases {
		_, err := ParseTraceSpec(c.spec)
		if err == nil {
			t.Fatalf("%q: no error", c.spec)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("%q: error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

// TestWithFieldRewrite: the -trace-sweep primitive replaces one field,
// keeps canonical field order, and refuses non-generator specs.
func TestWithFieldRewrite(t *testing.T) {
	ts, err := ParseTraceSpec("loopy:jitter=3")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := ts.WithField("trip", "100")
	if err != nil {
		t.Fatal(err)
	}
	if got := sw.Canonical(); got != "loopy:trip=100,jitter=3" {
		t.Fatalf("canonical %q, want field order trip,jitter", got)
	}
	if _, err := ts.WithField("warp", "1"); err == nil {
		t.Fatal("unknown field accepted")
	}
	named, _ := ParseTraceSpec("INT01")
	if _, err := named.WithField("trip", "1"); err == nil || !strings.Contains(err.Error(), "no parameter fields") {
		t.Fatalf("named WithField: %v", err)
	}
	file, _ := ParseTraceSpec("file:x.bpt")
	if _, err := file.WithField("trip", "1"); err == nil {
		t.Fatal("file WithField accepted")
	}
}

// TestSweepSpecs expands bases x values and rejects duplicates.
func TestSweepSpecs(t *testing.T) {
	out, err := SweepSpecs([]string{"phased:", "phased:phases=8"}, "period", []string{"1024", "4096"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"phased:period=1024", "phased:period=4096",
		"phased:period=1024,phases=8", "phased:period=4096,phases=8",
	}
	if len(out) != len(want) {
		t.Fatalf("got %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %q, want %q", i, out[i], want[i])
		}
	}
	if _, err := SweepSpecs([]string{"phased:period=1024", "phased:"}, "period", []string{"1024"}); err == nil {
		t.Fatal("duplicate sweep accepted")
	}
	if _, err := SweepSpecs([]string{"phased:"}, "period", nil); err == nil {
		t.Fatal("empty value sweep accepted")
	}
}

// TestSplitPatterns: commas continue a generator spec's field list but
// separate everything else.
func TestSplitPatterns(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"INT01,MM05", []string{"INT01", "MM05"}},
		{"phased:period=4096,phases=8#1,INT01", []string{"phased:period=4096,phases=8#1", "INT01"}},
		{"loopy:trip=5,jitter=2,datadep:bias=0.9", []string{"loopy:trip=5,jitter=2", "datadep:bias=0.9"}},
		{"INT*,file:x.bpt", []string{"INT*", "file:x.bpt"}},
		{" , INT01 , ", []string{"INT01"}},
		{"mix:loopy=1,phased=2", []string{"mix:loopy=1,phased=2"}},
	}
	for _, c := range cases {
		got := SplitPatterns(c.in)
		if len(got) != len(c.want) {
			t.Fatalf("%q: got %v, want %v", c.in, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("%q: got %v, want %v", c.in, got, c.want)
			}
		}
	}
}

// TestSelectSpecPatterns: Select mixes globs and specs, dedups on
// trace identity, and keeps glob-then-spec order.
func TestSelectSpecPatterns(t *testing.T) {
	specs, err := Select([]string{"INT0[12]", "phased:period=1024#1", "INT01"})
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, s := range specs {
		names = append(names, s.Name)
	}
	want := []string{"INT01", "INT02", "phased:period=1024#1"}
	if strings.Join(names, " ") != strings.Join(want, " ") {
		t.Fatalf("got %v, want %v", names, want)
	}

	_, err = Select([]string{"INT09"})
	if err == nil || !strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("near-miss suggestion missing: %v", err)
	}
	_, err = Select([]string{"ZZZ*"})
	if err == nil || !strings.Contains(err.Error(), "generator specs") {
		t.Fatalf("unmatched glob should mention spec syntax: %v", err)
	}
	_, err = Select([]string{"phased:warp=1"})
	if err == nil {
		t.Fatal("bad spec pattern accepted")
	}
}

// TestFileSpecResolve: a file-backed source is keyed by content (two
// paths to identical bytes get one identity), truncates to the
// requested branch count, and keeps the path as its SpecString.
func TestFileSpecResolve(t *testing.T) {
	dir := t.TempDir()
	tr := Generate(mustFind(t, "INT01"), 500)
	p1, p2 := filepath.Join(dir, "a.bpt"), filepath.Join(dir, "copy.bpt")
	for _, p := range []string{p1, p2} {
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := trace.Write(f, tr); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	s1 := ResolveSpecMust(t, "file:"+p1)
	s2 := ResolveSpecMust(t, "file:"+p2)
	if s1.Name != s2.Name {
		t.Fatalf("identical content, different identities: %q vs %q", s1.Name, s2.Name)
	}
	if !strings.HasPrefix(s1.Name, "file:") || len(s1.Name) != len("file:")+16 {
		t.Fatalf("identity %q is not a content hash", s1.Name)
	}
	if s1.SpecString() != "file:"+p1 {
		t.Fatalf("SpecString %q, want the path form", s1.SpecString())
	}
	if s1.Category != "INT" {
		t.Fatalf("category %q (should keep the stored category)", s1.Category)
	}

	full := Generate(s1, 500)
	if full.Hash() != tr.Hash() {
		t.Fatal("replayed branches differ from the stored trace")
	}
	short := Generate(s1, 100)
	if len(short.Branches) != 100 {
		t.Fatalf("truncation: got %d branches", len(short.Branches))
	}
	over := Generate(s1, 10000)
	if len(over.Branches) != 500 {
		t.Fatalf("over-request: got %d branches, want all 500", len(over.Branches))
	}

	if _, err := ResolveSpec("file:" + filepath.Join(dir, "missing.bpt")); err == nil {
		t.Fatal("missing file resolved")
	}
}

func mustFind(t *testing.T, name string) Spec {
	t.Helper()
	sp, ok := Find(name)
	if !ok {
		t.Fatalf("no benchmark %s", name)
	}
	return sp
}

// TestKindSummaries: every kind appears, with its fields and defaults.
func TestKindSummaries(t *testing.T) {
	lines := strings.Join(KindSummaries(), "\n")
	for _, k := range Kinds() {
		if !strings.Contains(lines, k+":") {
			t.Fatalf("kind %s missing from summaries:\n%s", k, lines)
		}
	}
	if !strings.Contains(lines, "period=8192") || !strings.Contains(lines, "file:") {
		t.Fatalf("summaries lack defaults or the file pseudo-kind:\n%s", lines)
	}
}

// TestFieldSweepsAsRange: integer fields sweep as ranges, float fields
// must not (their lo:hi would be misparsed), unknown keys neither.
func TestFieldSweepsAsRange(t *testing.T) {
	if !FieldSweepsAsRange("trip") || !FieldSweepsAsRange("period") {
		t.Fatal("integer fields should range-sweep")
	}
	if FieldSweepsAsRange("bias") || FieldSweepsAsRange("ret") {
		t.Fatal("float fields must not range-sweep")
	}
	if FieldSweepsAsRange("warp") {
		t.Fatal("unknown field should not range-sweep")
	}
}
