package workload

// The trace-spec grammar: workload identity as a parseable, canonically
// stringable description, mirroring the ModelSpec pattern the model axis
// already uses. A trace spec is the universal trace currency: the
// harness keys cells by it, store records carry it, the distributed
// wire format ships it so remote workers regenerate the same branches,
// and the CLIs accept it wherever they accept benchmark names.
//
// Grammar:
//
//	spec   := name                     named sugar: INT01, MM05, …
//	        | kind ':' [fields] seed?  parameterised generator kinds
//	        | "file" ':' path          external trace in the binary format
//	kind   := loopy | callret | datadep | phased | ctxflush | mix
//	fields := key '=' value ( ',' key '=' value )*
//	seed   := '#' digits               generation seed (default 1)
//
// Examples:
//
//	INT01                         one of the 40 named benchmarks
//	phased:period=4096#1          phase flips every 4096 branches, seed 1
//	loopy:trip=100,jitter=8       irregular loops, all other knobs default
//	mix:loopy=2,datadep=1         weighted composition of other kinds
//	file:traces/gcc.bpt           converted external trace, keyed by content
//
// Canonicalisation normalises field order (each kind declares one) and
// value formatting, so ParseTraceSpec(s.Canonical()) is the identity
// and two spellings of one workload collide on the same cell key. The
// 40 named benchmarks are sugar specs whose canonical form is exactly
// the name, so every pre-spec cell key, golden record and warm-cache
// key survives byte-identical.

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
)

// TraceSpec is a parsed workload identity. The zero value is invalid;
// obtain one from ParseTraceSpec (or derive one with WithField, which
// re-validates).
type TraceSpec struct {
	kind    string       // generator kind, "file", or a benchmark name
	named   bool         // kind is one of the 40 benchmark names
	path    string       // file-backed source path (kind "file")
	fields  []traceField // explicitly-set fields, canonical order
	seed    uint64       // generation seed
	hasSeed bool         // spec carries an explicit '#seed' suffix
}

type traceField struct{ key, val string }

// Kind returns the generator kind ("loopy", …), "file" for file-backed
// sources, or the benchmark name for named sugar.
func (s TraceSpec) Kind() string { return s.kind }

// IsNamed reports whether the spec is one of the named-benchmark sugars.
func (s TraceSpec) IsNamed() bool { return s.named }

// IsFile reports whether the spec is a file-backed source.
func (s TraceSpec) IsFile() bool { return s.kind == "file" }

// Seed returns the generation seed and whether the spec spells one out
// (generation defaults to seed 1 when it does not).
func (s TraceSpec) Seed() (uint64, bool) { return s.seed, s.hasSeed }

// Field returns the explicitly-set value of a field, if any.
func (s TraceSpec) Field(key string) (string, bool) {
	for _, f := range s.fields {
		if f.key == key {
			return f.val, true
		}
	}
	return "", false
}

// Canonical returns the canonical spec string: parsing it back yields
// an identical spec, and every layer (cell keys, stores, wire jobs)
// uses this form as the trace identity for regenerable workloads.
func (s TraceSpec) Canonical() string {
	if s.named {
		return s.kind
	}
	if s.kind == fileKind {
		return fileKind + ":" + s.path
	}
	var b strings.Builder
	b.WriteString(s.kind)
	b.WriteByte(':')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.key)
		b.WriteByte('=')
		b.WriteString(f.val)
	}
	if s.hasSeed {
		fmt.Fprintf(&b, "#%d", s.seed)
	}
	return b.String()
}

// String implements fmt.Stringer as the canonical form.
func (s TraceSpec) String() string { return s.Canonical() }

const fileKind = "file"

// Kinds lists the parameterised generator kinds in documentation order
// (the file-backed source is a pseudo-kind on top of these).
func Kinds() []string {
	out := make([]string, len(kindOrder))
	copy(out, kindOrder)
	return out
}

// KindSummaries renders one line per kind — fields with their defaults,
// then what the kind generates — for CLI listings.
func KindSummaries() []string {
	out := make([]string, 0, len(kindOrder)+1)
	for _, k := range kindOrder {
		def := traceKindDefs[k]
		fs := make([]string, len(def.fields))
		for i, f := range def.fields {
			if f.def != "" {
				fs[i] = f.key + "=" + f.def
			} else {
				fs[i] = f.key
			}
		}
		out = append(out, fmt.Sprintf("%s:%s  (%s)", k, strings.Join(fs, ","), def.doc))
	}
	out = append(out, fileKind+":path.bpt  (external trace in the binary format; see tracegen convert)")
	return out
}

// FieldSweepsAsRange reports whether a -trace-sweep of the field may
// use the inclusive lo:hi integer-range form: true only when every kind
// defining the key declares it a plain integer (float-valued fields
// need explicit value lists).
func FieldSweepsAsRange(key string) bool {
	found := false
	for _, def := range traceKindDefs {
		if fd := def.field(key); fd != nil {
			if !fd.intRange {
				return false
			}
			found = true
		}
	}
	return found
}

// ParseTraceSpec parses a trace-spec string: a benchmark name, a
// parameterised generator ("phased:period=4096#1"), or a file-backed
// source ("file:path.bpt"). Errors name the offending field and the
// valid alternatives.
func ParseTraceSpec(s string) (TraceSpec, error) {
	raw := strings.TrimSpace(s)
	if raw == "" {
		return TraceSpec{}, fmt.Errorf("workload: empty trace spec")
	}
	kind, body, hasBody := strings.Cut(raw, ":")
	kind = strings.TrimSpace(kind)
	if !hasBody {
		if _, ok := Find(raw); ok {
			return TraceSpec{kind: raw, named: true}, nil
		}
		if hash := strings.LastIndexByte(raw, '#'); hash >= 0 {
			if _, ok := Find(raw[:hash]); ok {
				return TraceSpec{}, fmt.Errorf("workload: named benchmark %q carries its own seed; drop the %q suffix",
					raw[:hash], raw[hash:])
			}
		}
		if traceKindDefs[raw] != nil {
			return TraceSpec{}, fmt.Errorf("workload: %q is a generator kind, not a benchmark; write a spec like %q (all fields default) or %q",
				raw, raw+":", raw+":"+exampleField(raw))
		}
		return TraceSpec{}, unknownNameError(raw)
	}
	if kind == fileKind {
		p := strings.TrimSpace(body)
		if p == "" {
			return TraceSpec{}, fmt.Errorf("workload: %q needs a path, e.g. 'file:traces/gcc.bpt'", raw)
		}
		return TraceSpec{kind: fileKind, path: p}, nil
	}
	def := traceKindDefs[kind]
	if def == nil {
		return TraceSpec{}, fmt.Errorf("workload: unknown workload kind %q (kinds: %s; or a benchmark name, or 'file:path.bpt')",
			kind, strings.Join(kindOrder, ", "))
	}
	spec := TraceSpec{kind: kind}
	if hash := strings.LastIndexByte(body, '#'); hash >= 0 {
		n, err := strconv.ParseUint(strings.TrimSpace(body[hash+1:]), 10, 64)
		if err != nil {
			return TraceSpec{}, fmt.Errorf("workload: spec %q: bad seed %q (want '#<unsigned integer>')", raw, body[hash:])
		}
		spec.seed, spec.hasSeed = n, true
		body = body[:hash]
	}
	vals := make(map[string]string)
	if strings.TrimSpace(body) != "" {
		for _, item := range strings.Split(body, ",") {
			item = strings.TrimSpace(item)
			if item == "" {
				return TraceSpec{}, fmt.Errorf("workload: spec %q has an empty field (stray comma?)", raw)
			}
			k, v, ok := strings.Cut(item, "=")
			if !ok {
				return TraceSpec{}, fmt.Errorf("workload: spec %q: field %q is not key=value", raw, item)
			}
			k, v = strings.TrimSpace(k), strings.TrimSpace(v)
			fd := def.field(k)
			if fd == nil {
				return TraceSpec{}, fmt.Errorf("workload: kind %q has no field %q (valid fields: %s)", kind, k, def.fieldKeys())
			}
			if _, dup := vals[k]; dup {
				return TraceSpec{}, fmt.Errorf("workload: spec %q sets field %q twice", raw, k)
			}
			canon, err := fd.normalise(v)
			if err != nil {
				return TraceSpec{}, fmt.Errorf("workload: spec %q: field %q: %w", raw, k, err)
			}
			vals[k] = canon
		}
	}
	for _, fd := range def.fields {
		if v, ok := vals[fd.key]; ok {
			spec.fields = append(spec.fields, traceField{fd.key, v})
		}
	}
	if kind == "mix" && len(spec.fields) == 0 {
		return TraceSpec{}, fmt.Errorf("workload: spec %q: mix needs at least one component weight, e.g. 'mix:loopy=2,datadep=1'", raw)
	}
	return spec, nil
}

// exampleField renders a plausible key=value for a kind's error hints.
func exampleField(kind string) string {
	def := traceKindDefs[kind]
	if def == nil || len(def.fields) == 0 {
		return "key=value"
	}
	f := def.fields[0]
	if f.def != "" {
		return f.key + "=" + f.def
	}
	return f.key + "=1"
}

// WithField returns the spec with one field set (replacing an existing
// value), re-validated — the rewriting primitive behind `bpbench
// -trace-sweep`. Named benchmarks and file sources have no field
// grammar and error with the generator kinds to use instead.
func (s TraceSpec) WithField(key, val string) (TraceSpec, error) {
	if s.named {
		return TraceSpec{}, fmt.Errorf("workload: named benchmark %q has no parameter fields; sweep a generator spec instead (kinds: %s)",
			s.kind, strings.Join(kindOrder, ", "))
	}
	if s.kind == fileKind {
		return TraceSpec{}, fmt.Errorf("workload: file-backed trace %q has no parameter fields", s.Canonical())
	}
	def := traceKindDefs[s.kind]
	fd := def.field(key)
	if fd == nil {
		return TraceSpec{}, fmt.Errorf("workload: kind %q has no field %q (valid fields: %s)", s.kind, key, def.fieldKeys())
	}
	canon, err := fd.normalise(val)
	if err != nil {
		return TraceSpec{}, fmt.Errorf("workload: field %q: %w", key, err)
	}
	vals := make(map[string]string, len(s.fields)+1)
	for _, f := range s.fields {
		vals[f.key] = f.val
	}
	vals[key] = canon
	out := s
	out.fields = nil
	for _, fd := range def.fields {
		if v, ok := vals[fd.key]; ok {
			out.fields = append(out.fields, traceField{fd.key, v})
		}
	}
	return out, nil
}

// Resolve materialises the spec as a generatable Spec. Named sugar
// resolves to its benchmark; generator kinds build a Spec whose Name is
// the canonical spec string; file-backed sources load the trace now
// (errors surface here, not mid-run) and are named by content hash —
// "file:<16-hex>" — so two paths to identical bytes collide on one cell
// key and a changed file gets a fresh identity, while SpecString keeps
// the resolvable "file:<path>" form for wire jobs and store records.
func (s TraceSpec) Resolve() (Spec, error) {
	switch {
	case s.named:
		sp, _ := Find(s.kind)
		return sp, nil
	case s.kind == fileKind:
		f, err := os.Open(s.path)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: file trace: %w", err)
		}
		defer f.Close()
		loaded, err := trace.Read(f)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: file trace %s: %w", s.path, err)
		}
		name := fmt.Sprintf("file:%016x", loaded.Hash())
		category := loaded.Category
		if category == "" {
			category = "FILE"
		}
		return Spec{
			Name:     name,
			Category: category,
			spec:     fileKind + ":" + s.path,
			gen: func(branches int) *trace.Trace {
				br := loaded.Branches
				if branches > 0 && branches < len(br) {
					br = br[:branches]
				}
				return &trace.Trace{Name: name, Category: category, Branches: br}
			},
		}, nil
	default:
		def := traceKindDefs[s.kind]
		seed := uint64(1)
		if s.hasSeed {
			seed = s.seed
		}
		ts := s
		return Spec{
			Name:     s.Canonical(),
			Category: strings.ToUpper(s.kind),
			Seed:     seed,
			build:    func(b *builder) node { return def.program(ts, b) },
		}, nil
	}
}

// ResolveSpec parses and resolves in one step: the single entry point
// for anything that accepts "a trace" — a benchmark name, a generator
// spec, or a file source.
func ResolveSpec(s string) (Spec, error) {
	ts, err := ParseTraceSpec(s)
	if err != nil {
		return Spec{}, err
	}
	return ts.Resolve()
}

// SweepSpecs expands one generator field across values for every base
// spec — the `bpbench -trace-sweep` axis: each base is rewritten per
// value via WithField and returned in canonical form, erroring on
// duplicate resulting workloads (which would collide on cell keys).
func SweepSpecs(bases []string, key string, values []string) ([]string, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("workload: sweep of %q has no values", key)
	}
	var out []string
	seen := make(map[string]bool)
	for _, b := range bases {
		spec, err := ParseTraceSpec(b)
		if err != nil {
			return nil, err
		}
		for _, v := range values {
			sw, err := spec.WithField(key, v)
			if err != nil {
				return nil, err
			}
			c := sw.Canonical()
			if seen[c] {
				return nil, fmt.Errorf("workload: sweep %s over %q produces duplicate spec %q", key, b, c)
			}
			seen[c] = true
			out = append(out, c)
		}
	}
	return out, nil
}

// SplitPatterns splits a comma-separated trace flag the spec-aware way:
// a comma continues the previous pattern's field list only when the
// previous pattern is a generator spec and what follows is a bare
// key=value pair — so "phased:period=4096,phases=8#1,INT01" is two
// patterns, not three. Empty segments are dropped.
func SplitPatterns(s string) []string {
	var out []string
	for _, seg := range strings.Split(s, ",") {
		seg = strings.TrimSpace(seg)
		if seg == "" {
			continue
		}
		if len(out) > 0 && continuesSpec(seg) {
			if kind, _, ok := strings.Cut(out[len(out)-1], ":"); ok && traceKindDefs[kind] != nil {
				out[len(out)-1] += "," + seg
				continue
			}
		}
		out = append(out, seg)
	}
	return out
}

// continuesSpec reports whether a segment looks like a spec field
// (key=value with a glob-free key) rather than a new pattern.
func continuesSpec(seg string) bool {
	k, _, ok := strings.Cut(seg, "=")
	return ok && !strings.ContainsAny(k, ":*?[")
}

// unknownNameError explains an unmatched benchmark name with near-miss
// suggestions and a pointer at the spec grammar — a typo should fail
// with the fix in the message, not a bare "no such trace".
func unknownNameError(p string) error {
	hint := ""
	if sugg := nearestNames(p, 3); len(sugg) > 0 {
		hint = fmt.Sprintf(" (did you mean %s?)", strings.Join(sugg, ", "))
	}
	return fmt.Errorf("workload: trace pattern %q matches no benchmark%s; patterns also accept generator specs like 'phased:period=4096#1' (kinds: %s) and external traces as 'file:path.bpt'",
		p, hint, strings.Join(kindOrder, ", "))
}

// nearestNames returns up to max suite names within edit distance 2 of
// p (case-insensitive), nearest first.
func nearestNames(p string, max int) []string {
	up := strings.ToUpper(p)
	type cand struct {
		name string
		d    int
	}
	var cands []cand
	for _, s := range All() {
		if d := editDistance(up, s.Name); d <= 2 {
			cands = append(cands, cand{s.Name, d})
		}
	}
	var out []string
	for d := 0; d <= 2 && len(out) < max; d++ {
		for _, c := range cands {
			if c.d == d && len(out) < max {
				out = append(out, c.name)
			}
		}
	}
	return out
}

// editDistance is the Levenshtein distance between two short strings.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			m := prev[j] + 1
			if v := cur[j-1] + 1; v < m {
				m = v
			}
			if v := prev[j-1] + cost; v < m {
				m = v
			}
			cur[j] = m
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
