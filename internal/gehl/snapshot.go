package gehl

import "repro/internal/checkpoint"

// Snapshot writes the engine's counter tables and adaptive-threshold
// state (the shared stats object belongs to the owning predictor).
func (e *Engine) Snapshot(enc *checkpoint.Encoder) {
	enc.U32(uint32(len(e.tables)))
	for _, t := range e.tables {
		enc.I8s(t)
	}
	enc.I32(e.theta)
	enc.I32(e.tc)
}

// LoadSnapshot restores a Snapshot into an engine of the same shape.
func (e *Engine) LoadSnapshot(dec *checkpoint.Decoder) {
	n := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	if n != len(e.tables) {
		dec.Failf("gehl engine holds %d tables, this configuration needs %d", n, len(e.tables))
		return
	}
	for _, t := range e.tables {
		dec.I8sInto(t)
	}
	e.theta = dec.I32()
	e.tc = dec.I32()
}

// Snapshot implements predictor.Predictor.
func (p *Predictor) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("gehl", 1)
	p.eng.Snapshot(enc)
	p.ghist.Snapshot(enc)
	p.folds.Snapshot(enc)
	p.eng.Stats().Snapshot(enc)
	enc.End()
}

// Restore implements predictor.Predictor.
func (p *Predictor) Restore(dec *checkpoint.Decoder) {
	dec.Open("gehl", 1)
	p.eng.LoadSnapshot(dec)
	p.ghist.LoadSnapshot(dec)
	p.folds.LoadSnapshot(dec)
	p.eng.Stats().LoadSnapshot(dec)
	dec.Close()
}
