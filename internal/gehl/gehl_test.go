package gehl

import (
	"testing"

	"repro/internal/rng"
)

// runImmediate drives a predictor with oracle (immediate) update.
func runImmediate(p *Predictor, pcs []uint64, outcomes []bool) (mispredicts int) {
	var ctx Ctx
	for i := range pcs {
		pred := p.Predict(pcs[i], &ctx)
		if pred != outcomes[i] {
			mispredicts++
		}
		p.OnResolve(pcs[i], outcomes[i], pred != outcomes[i], &ctx)
		p.Retire(pcs[i], outcomes[i], &ctx, true)
	}
	return mispredicts
}

func TestStorageBudget520Kbits(t *testing.T) {
	// Section 4.1.1: "13 tables, 5 bit entries and 8K entries per table
	// ... a total of 520 Kbits".
	p := New(Config{})
	if got := p.StorageBits(); got != 520*1024 {
		t.Fatalf("StorageBits = %d, want %d", got, 520*1024)
	}
}

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(Config{NumTables: 5, LogEntries: 8, MaxHist: 50})
	n := 500
	pcs := make([]uint64, n)
	outs := make([]bool, n)
	for i := range pcs {
		pcs[i] = 0x4000
		outs[i] = true
	}
	m := runImmediate(p, pcs, outs)
	if m > 20 {
		t.Fatalf("%d mispredicts on an always-taken branch", m)
	}
}

// TestLearnsMajorityFunction exercises the defining strength of
// adder-tree predictors: outcomes that are a linear (majority) function of
// history bits are learned even though the number of distinct history
// patterns is astronomically large.
func TestLearnsMajorityFunction(t *testing.T) {
	p := New(Config{NumTables: 8, LogEntries: 10, MinHist: 2, MaxHist: 40})
	r := rng.NewXoshiro(1)
	const n = 30000
	var hist []bool
	mispredLate := 0
	var ctx Ctx
	for i := 0; i < n; i++ {
		// A noisy source branch plus a majority-reading branch.
		src := r.Bool(0.5)
		pcSrc := uint64(0x100)
		pred := p.Predict(pcSrc, &ctx)
		p.OnResolve(pcSrc, src, pred != src, &ctx)
		p.Retire(pcSrc, src, &ctx, true)
		hist = append(hist, src)

		if len(hist) >= 9 {
			cnt := 0
			for _, h := range hist[len(hist)-9:] {
				if h {
					cnt++
				}
			}
			out := cnt >= 5
			pcMaj := uint64(0x200)
			pred := p.Predict(pcMaj, &ctx)
			if i > n/2 && pred != out {
				mispredLate++
			}
			p.OnResolve(pcMaj, out, pred != out, &ctx)
			p.Retire(pcMaj, out, &ctx, true)
		}
	}
	rate := float64(mispredLate) / float64(n/2)
	// The adder tree learns the (noisy, interleaved) majority function to
	// well under the 50% chance level; exact-pattern predictors cannot.
	if rate > 0.15 {
		t.Fatalf("majority-function misprediction rate = %.3f, want < 0.15", rate)
	}
}

func TestThresholdAdaptsAndStaysPositive(t *testing.T) {
	p := New(Config{NumTables: 4, LogEntries: 6, MaxHist: 16})
	r := rng.NewXoshiro(3)
	var ctx Ctx
	for i := 0; i < 20000; i++ {
		pc := uint64(0x40 + (i%13)*4)
		out := r.Bool(0.5) // pure noise drives threshold churn
		pred := p.Predict(pc, &ctx)
		p.OnResolve(pc, out, pred != out, &ctx)
		p.Retire(pc, out, &ctx, true)
	}
	if p.eng.Threshold() < 1 {
		t.Fatalf("threshold = %d, must stay >= 1", p.eng.Threshold())
	}
}

func TestEngineSum(t *testing.T) {
	ctrs := []int8{0, -1, 3, -4}
	// centered: 1, -1, 7, -7 -> 0
	if s := Sum(ctrs, 4); s != 0 {
		t.Fatalf("Sum = %d, want 0", s)
	}
	if s := Sum(ctrs, 3); s != 7 {
		t.Fatalf("Sum(3) = %d, want 7", s)
	}
}

func TestEngineTrainSaturation(t *testing.T) {
	e := NewEngine(Config{NumTables: 2, LogEntries: 4, CtrBits: 5}, []int{0, 4}, nil)
	for i := 0; i < 100; i++ {
		e.Train(0, 3, e.Read(0, 3), true)
	}
	if e.Read(0, 3) != 15 {
		t.Fatalf("counter = %d, want saturation at 15", e.Read(0, 3))
	}
	for i := 0; i < 200; i++ {
		e.Train(0, 3, e.Read(0, 3), false)
	}
	if e.Read(0, 3) != -16 {
		t.Fatalf("counter = %d, want saturation at -16", e.Read(0, 3))
	}
}

func TestEngineSilentWrites(t *testing.T) {
	e := NewEngine(Config{NumTables: 1, LogEntries: 4, CtrBits: 5}, []int{0}, nil)
	for i := 0; i < 50; i++ {
		e.Train(0, 1, e.Read(0, 1), true)
	}
	st := e.Stats()
	if st.SilentSkipped == 0 {
		t.Fatal("saturated training must produce silent writes")
	}
	if st.EntryWrites != 15 {
		t.Fatalf("effective writes = %d, want 15 (1 through 15)", st.EntryWrites)
	}
}

func TestIndexWithinRange(t *testing.T) {
	e := NewEngine(Config{NumTables: 3, LogEntries: 7}, []int{0, 5, 10}, nil)
	r := rng.NewXoshiro(9)
	for i := 0; i < 10000; i++ {
		idx := e.Index(i%3, uint64(r.Uint32()), r.Uint32(), r.Uint32())
		if idx >= 128 {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestTooManyTablesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for too many tables")
		}
	}()
	New(Config{NumTables: MaxTables + 1})
}
