// Package gehl implements the GEometric History Length (GEHL) predictor
// (Seznec, ISCA 2005), used by the paper in two roles: as the
// representative neural-inspired baseline of Section 4.1 (13 tables of 8K
// 5-bit counters, (6,2000) history series, 520 Kbits), and — through the
// Engine type — as the adder-tree machinery reused by the Statistical
// Corrector predictors of Sections 5.3 and 6 and by the FTL++-style
// comparator.
//
// Prediction is the sign of the sum of the centered counters (2c+1) read
// from each table; the update is threshold-based: counters move toward the
// outcome on a misprediction or when the absolute sum is below a
// dynamically adapted threshold.
package gehl

import (
	"fmt"

	"repro/internal/bitutil"
	"repro/internal/histories"
	"repro/internal/memarray"
)

// MaxTables bounds the number of tables so pipeline contexts can use
// fixed-size arrays (no allocation on the hot path).
const MaxTables = 16

// Config parameterises a GEHL predictor.
type Config struct {
	// NumTables includes the L=0 table (default 13 in the paper's 520Kbit
	// configuration).
	NumTables int
	// LogEntries is log2 of the per-table entry count (default 13 = 8K).
	LogEntries uint
	// CtrBits is the counter width (default 5).
	CtrBits uint
	// MinHist/MaxHist span the geometric series for tables 2..NumTables;
	// table 1 uses history length 0 (defaults 6, 2000).
	MinHist, MaxHist int
}

func (c Config) withDefaults() Config {
	if c.NumTables == 0 {
		c.NumTables = 13
	}
	if c.NumTables > MaxTables {
		panic("gehl: too many tables")
	}
	if c.LogEntries == 0 {
		c.LogEntries = 13
	}
	if c.CtrBits == 0 {
		c.CtrBits = 5
	}
	if c.MinHist == 0 {
		c.MinHist = 6
	}
	if c.MaxHist == 0 {
		c.MaxHist = 2000
	}
	return c
}

// Engine is the table/adder-tree core shared by GEHL, the Statistical
// Corrector and the LSC: tables of signed counters indexed by PC hashed
// with geometric-length folded global (or caller-provided) histories.
type Engine struct {
	cfg     Config
	tables  [][]int8
	lengths []int
	mask    uint32
	stats   *memarray.Stats

	// dynamic update threshold state (Seznec's adaptive threshold fitting)
	theta int32
	tc    int32
}

// NewEngine creates the table core. lengths[i] is the history length of
// table i (0 allowed). stats may be nil.
func NewEngine(cfg Config, lengths []int, stats *memarray.Stats) *Engine {
	cfg = cfg.withDefaults()
	if stats == nil {
		stats = &memarray.Stats{}
	}
	e := &Engine{
		cfg:     cfg,
		lengths: lengths,
		mask:    uint32(1<<cfg.LogEntries - 1),
		stats:   stats,
		theta:   int32(len(lengths)),
	}
	e.tables = make([][]int8, len(lengths))
	for i := range e.tables {
		e.tables[i] = make([]int8, 1<<cfg.LogEntries)
	}
	return e
}

// Reset returns the engine to its construction state: counters zeroed,
// threshold back to the table count, reusing the table storage. The
// stats object is left to its owner (it may be shared across components).
func (e *Engine) Reset() {
	for _, t := range e.tables {
		for i := range t {
			t[i] = 0
		}
	}
	e.theta = int32(len(e.lengths))
	e.tc = 0
}

// NumTables returns the table count.
func (e *Engine) NumTables() int { return len(e.tables) }

// Lengths returns the history lengths per table.
func (e *Engine) Lengths() []int { return e.lengths }

// StorageBits returns the counter storage in bits.
func (e *Engine) StorageBits() int {
	return len(e.tables) * (1 << e.cfg.LogEntries) * int(e.cfg.CtrBits)
}

// Index computes the table index for table i given the PC and a folded
// history value (pass 0 for the L=0 table; extra carries additional hash
// input such as the TAGE prediction bit for the Statistical Corrector).
func (e *Engine) Index(i int, pc uint64, folded uint32, extra uint32) uint32 {
	h := uint32(pc>>2) ^ folded ^ extra ^ uint32(i)*0x9e3779b9
	h ^= h >> e.cfg.LogEntries
	return h & e.mask
}

// Read returns the counter of table i at idx.
func (e *Engine) Read(i int, idx uint32) int32 { return int32(e.tables[i][idx]) }

// Sum computes the centered prediction sum over counters ctrs[0:n].
func Sum(ctrs []int8, n int) int32 {
	var s int32
	for i := 0; i < n; i++ {
		s += bitutil.Centered(int32(ctrs[i]))
	}
	return s
}

// Train moves the counter of table i at idx toward the outcome, starting
// from the provided old value (which is the re-read value or the
// prediction-time value depending on the update scenario), with silent
// writes elided.
func (e *Engine) Train(i int, idx uint32, old int32, taken bool) {
	next := bitutil.SatUpdateSigned(old, taken, e.cfg.CtrBits)
	if int8(next) != e.tables[i][idx] {
		e.tables[i][idx] = int8(next)
		e.stats.RecordWrite(true)
	} else {
		e.stats.RecordWrite(false)
	}
}

// Threshold returns the current dynamic update threshold.
func (e *Engine) Threshold() int32 { return e.theta }

// AdaptThreshold implements the dynamic threshold fitting of the OGEHL
// predictor: mispredictions push the threshold up, correct low-confidence
// predictions push it down, keeping the two update populations balanced.
func (e *Engine) AdaptThreshold(mispredicted bool, absSum int32) {
	if mispredicted {
		e.tc++
		if e.tc >= 63 {
			e.tc = 0
			e.theta++
		}
	} else if absSum < e.theta {
		e.tc--
		if e.tc <= -63 {
			e.tc = 0
			if e.theta > 1 {
				e.theta--
			}
		}
	}
}

// ShouldUpdate reports whether the threshold-based update fires.
func (e *Engine) ShouldUpdate(mispredicted bool, absSum int32) bool {
	return mispredicted || absSum < e.theta
}

// Stats returns the engine's access statistics.
func (e *Engine) Stats() *memarray.Stats { return e.stats }

// Predictor is the standalone GEHL branch predictor of Section 4.1.
type Predictor struct {
	eng   *Engine
	cfg   Config
	ghist *histories.Global
	// folds packs all table folds into the word-parallel engine: GEHL is
	// update-dominated (one fold read per table per branch against one
	// update of every fold), exactly the ratio where the packed layout
	// pays. Fold handle i belongs to table i (the L=0 table is inert).
	folds *histories.PackedFolds
	fvals []uint32 // folds.Values(), cached for the predict loop
	name  string   // formatted once: Name is on the per-run result path
}

// Ctx is the GEHL pipeline context: table indices and counters read at
// prediction time plus the computed sum.
type Ctx struct {
	Indices [MaxTables]uint32
	Ctrs    [MaxTables]int8
	Sum     int32
	Pred    bool
}

// New creates a standalone GEHL predictor.
func New(cfg Config) *Predictor {
	cfg = cfg.withDefaults()
	lengths := make([]int, cfg.NumTables)
	lengths[0] = 0
	copy(lengths[1:], histories.GeometricSeries(cfg.MinHist, cfg.MaxHist, cfg.NumTables-1))
	eng := NewEngine(cfg, lengths, nil)
	p := &Predictor{
		eng:   eng,
		cfg:   cfg,
		ghist: histories.NewGlobal(cfg.MaxHist + 64),
	}
	var fb histories.PackedBuilder
	for _, l := range lengths {
		fb.Add(l, cfg.LogEntries) // l == 0 registers the inert fold
	}
	p.folds = fb.Build()
	p.fvals = p.folds.Values()
	p.name = fmt.Sprintf("gehl-%dKb", p.StorageBits()/1024)
	return p
}

// Name implements predictor.Predictor.
func (p *Predictor) Name() string { return p.name }

// StorageBits implements predictor.Predictor.
func (p *Predictor) StorageBits() int { return p.eng.StorageBits() }

// Predict implements predictor.Predictor.
func (p *Predictor) Predict(pc uint64, ctx *Ctx) bool {
	n := p.eng.NumTables()
	var sum int32
	for i := 0; i < n; i++ {
		idx := p.eng.Index(i, pc, p.fvals[i], 0)
		c := p.eng.Read(i, idx)
		ctx.Indices[i] = idx
		ctx.Ctrs[i] = int8(c)
		sum += bitutil.Centered(c)
	}
	ctx.Sum = sum
	ctx.Pred = sum >= 0
	return ctx.Pred
}

// OnResolve implements predictor.Predictor: speculative history update.
func (p *Predictor) OnResolve(pc uint64, taken, mispredicted bool, ctx *Ctx) {
	p.ghist.Push(taken)
	p.folds.Update(p.ghist, taken)
}

// Retire implements predictor.Predictor: threshold-based update at retire
// time. With reread the current counters are used (scenario [A]/[C] on
// mispredictions); otherwise the prediction-time counters are aged and
// written back, which is exactly the stale-counter clobbering the paper
// identifies as the large accuracy loss of scenarii [B]/[C] on GEHL.
func (p *Predictor) Retire(pc uint64, taken bool, ctx *Ctx, reread bool) {
	mispredicted := ctx.Pred != taken
	abs := ctx.Sum
	if abs < 0 {
		abs = -abs
	}
	if p.eng.ShouldUpdate(mispredicted, abs) {
		n := p.eng.NumTables()
		for i := 0; i < n; i++ {
			old := int32(ctx.Ctrs[i])
			if reread {
				old = p.eng.Read(i, ctx.Indices[i])
			}
			p.eng.Train(i, ctx.Indices[i], old, taken)
		}
	}
	p.eng.AdaptThreshold(mispredicted, abs)
}

// AccessStats implements predictor.Predictor.
func (p *Predictor) AccessStats() *memarray.Stats { return p.eng.Stats() }

// Reset implements predictor.Predictor.
func (p *Predictor) Reset() {
	p.eng.Reset()
	p.ghist.Reset()
	p.folds.Reset()
	p.eng.Stats().Reset()
}
