// Package predictor defines the contract between branch predictors and the
// trace-driven pipeline simulator. The design follows the hardware reality
// that Section 4 of the paper analyses: everything a predictor reads at
// prediction time is captured into a per-branch context that travels down
// the pipeline with the branch, so that at retire time the update can be
// performed either from re-read table state (scenarios [A] and [C]) or
// exclusively from the values captured at fetch (scenario [B]).
package predictor

import (
	"repro/internal/checkpoint"
	"repro/internal/memarray"
)

// Scenario enumerates the update-timing policies of Section 4.1.2.
type Scenario int

const (
	// ScenarioI is the oracle: tables are updated immediately after each
	// prediction. Not implementable in hardware (wrong-path pollution);
	// used as the reference.
	ScenarioI Scenario = iota
	// ScenarioA re-reads the prediction tables at retire time before the
	// update: up to 3 accesses per branch.
	ScenarioA
	// ScenarioB reads only at fetch time; the update is computed from the
	// values propagated down the pipeline: at most 1 read + 1 write.
	ScenarioB
	// ScenarioC re-reads at retire time only for mispredicted branches.
	ScenarioC
)

// Letter returns the bare scenario letter ("I", "A", "B", "C"): the
// machine-readable form used in harness cell keys and CLI flags, versus
// String's bracketed paper notation.
func (s Scenario) Letter() string {
	switch s {
	case ScenarioI:
		return "I"
	case ScenarioA:
		return "A"
	case ScenarioB:
		return "B"
	case ScenarioC:
		return "C"
	}
	return "?"
}

// String returns the paper's bracket notation for the scenario.
func (s Scenario) String() string {
	switch s {
	case ScenarioI:
		return "[I]"
	case ScenarioA:
		return "[A]"
	case ScenarioB:
		return "[B]"
	case ScenarioC:
		return "[C]"
	}
	return "[?]"
}

// Predictor is the generic contract implemented by every predictor in this
// repository. C is the per-branch pipeline context: a plain struct holding
// the indices, tags and counter values the predictor read at prediction
// time. The simulator owns a ring of C values (one per in-flight branch)
// so the hot path allocates nothing.
type Predictor[C any] interface {
	// Name identifies the configuration for reports.
	Name() string
	// StorageBits returns the predictor storage budget in bits.
	StorageBits() int
	// Predict computes the direction prediction for pc and records into
	// ctx everything that must travel with the branch.
	Predict(pc uint64, ctx *C) bool
	// OnResolve is called once per branch, immediately after Predict, with
	// the architectural outcome (trace-driven simulation is on the correct
	// path, so speculative history equals correct history, as the paper
	// notes). Implementations update speculative state here: global/path/
	// local histories, folded histories, IUM and SLIM structures.
	OnResolve(pc uint64, taken, mispredicted bool, ctx *C)
	// Retire performs the predictor table update at retire time. When
	// reread is true the implementation may consult current table state;
	// when false it must compute the update purely from ctx (scenario [B],
	// and scenario [C] on correctly predicted branches).
	Retire(pc uint64, taken bool, ctx *C, reread bool)
	// AccessStats exposes the predictor's access accounting.
	AccessStats() *memarray.Stats
	// Reset returns the predictor to its freshly-constructed state without
	// allocating, so pools can reuse warmed instances across runs. After
	// Reset the predictor must behave byte-identically to a new instance
	// built from the same configuration.
	Reset()
	// Snapshot serializes the predictor's full dynamic state (tables,
	// histories, counters, RNG, accounting) into the encoder as a named,
	// versioned section, so a warm instance can be reconstructed later.
	// Composed predictors delegate a section to each component.
	Snapshot(enc *checkpoint.Encoder)
	// Restore rebuilds the dynamic state from a Snapshot taken by a
	// predictor of the identical configuration. Failures (wrong section,
	// newer version, size mismatch, truncation) stick to the decoder;
	// callers check dec.Err() and fall back to Reset on error — after a
	// failed Restore the predictor state is unspecified until Reset.
	Restore(dec *checkpoint.Decoder)
}
