package cactimodel

import "testing"

// Capacities spanning the paper's stated range: 1 KB to 64 KB arrays.
var capacities = []int{8 * 1024, 32 * 1024, 128 * 1024, 256 * 1024, 512 * 1024}

// TestAreaRatio3v1Band checks the CACTI-derived claim of Section 4: "the
// area of a 3-port memory array is 3-4 times larger than a single-ported
// memory array".
func TestAreaRatio3v1Band(t *testing.T) {
	for _, bits := range capacities {
		c := Compare(bits)
		if c.AreaRatio3v1 < 3.0 || c.AreaRatio3v1 > 4.0 {
			t.Errorf("bits=%d: area ratio 3v1 = %.2f, want in [3,4]", bits, c.AreaRatio3v1)
		}
	}
}

// TestEnergyRatio3v1Band checks: "the energy dissipated per access is about
// 25-30% higher" for 3-port vs single port.
func TestEnergyRatio3v1Band(t *testing.T) {
	for _, bits := range capacities {
		c := Compare(bits)
		if c.EnergyRatio3v1 < 1.20 || c.EnergyRatio3v1 > 1.35 {
			t.Errorf("bits=%d: energy ratio 3v1 = %.3f, want ~1.25-1.30", bits, c.EnergyRatio3v1)
		}
	}
}

// TestBankedAreaRatio checks Section 4.3: "a 3.3x decrease of the silicon
// area ... when assuming bank-interleaving instead of 3-port memory array".
func TestBankedAreaRatio(t *testing.T) {
	for _, bits := range capacities {
		c := Compare(bits)
		if c.AreaRatioMonoVsBanked < 2.9 || c.AreaRatioMonoVsBanked > 3.7 {
			t.Errorf("bits=%d: area ratio mono/banked = %.2f, want ~3.3", bits, c.AreaRatioMonoVsBanked)
		}
	}
}

// TestBankedEnergyRatio checks Section 4.3: "a 2x decrease of the energy
// dissipated ... per predictor access".
func TestBankedEnergyRatio(t *testing.T) {
	for _, bits := range capacities {
		c := Compare(bits)
		if c.EnergyRatioMonoVsBanked < 1.7 || c.EnergyRatioMonoVsBanked > 2.5 {
			t.Errorf("bits=%d: energy ratio mono/banked = %.2f, want ~2", bits, c.EnergyRatioMonoVsBanked)
		}
	}
}

func TestAreaMonotoneInBits(t *testing.T) {
	prev := 0.0
	for _, bits := range capacities {
		a := Array{Bits: bits, Ports: 1}.Area()
		if a <= prev {
			t.Fatalf("area not monotone at %d bits", bits)
		}
		prev = a
	}
}

func TestAreaMonotoneInPorts(t *testing.T) {
	for ports := 1; ports < 4; ports++ {
		a := Array{Bits: 1 << 18, Ports: ports}.Area()
		b := Array{Bits: 1 << 18, Ports: ports + 1}.Area()
		if b <= a {
			t.Fatalf("area not monotone in ports at %d", ports)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if (Array{Bits: 0, Ports: 1}).Area() != 0 {
		t.Fatal("zero bits must have zero area")
	}
	if (Array{Bits: 100, Ports: 0}).Area() != 0 {
		t.Fatal("zero ports must have zero area")
	}
	if (Banked{Bits: 0, Banks: 4}).ReadEnergy() != 0 {
		t.Fatal("zero bits must have zero energy")
	}
}

func TestBankedCheaperThanMultiport(t *testing.T) {
	// The entire point of Section 4.3: banking must beat a 3-port array on
	// both metrics at every relevant size.
	for _, bits := range capacities {
		mono := Array{Bits: bits, Ports: 3}
		banked := Banked{Bits: bits, Banks: 4}
		if banked.Area() >= mono.Area() {
			t.Errorf("bits=%d: banked area not smaller", bits)
		}
		if banked.ReadEnergy() >= mono.ReadEnergy() {
			t.Errorf("bits=%d: banked energy not smaller", bits)
		}
	}
}

func TestPredictorArea(t *testing.T) {
	tables := []int{32 * 1024, 64 * 1024, 64 * 1024}
	mono := PredictorArea(tables, 3, false)
	banked := PredictorArea(tables, 1, true)
	if banked >= mono {
		t.Fatal("banked predictor should be smaller than 3-ported predictor")
	}
	ratio := mono / banked
	if ratio < 2.9 || ratio > 3.7 {
		t.Fatalf("predictor area ratio = %.2f, want ~3.3", ratio)
	}
}
