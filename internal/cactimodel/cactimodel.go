// Package cactimodel is an analytical SRAM area/energy model standing in
// for the CACTI 6.5 evaluations the paper cites. Only the *ratios* between
// configurations matter to the paper's argument, and the model is
// calibrated to reproduce them in the 1 KB – 64 KB range of branch
// predictor tables:
//
//   - a 3-port memory array is 3–4x larger than a single-ported array of
//     equal capacity, and dissipates 25–30% more energy per access
//     (Section 4, citing CACTI 6.5);
//   - replacing a 3-port array with a 4-way interleaved set of single-port
//     banks decreases silicon area by ~3.3x and roughly halves the energy
//     per access (Sections 4.3 and 7.1).
//
// The model: an SRAM cell with P read/write ports grows linearly in each
// dimension with added wordlines and bitline pairs, so cell area scales as
// (1 + k_port*(P-1))^2; per-access dynamic energy is dominated by the
// accessed port's wordline/bitline capacitance, which grows mildly with
// port count and with array size (bitline length ~ bits^0.4); banking pays
// a fixed per-bank periphery overhead but activates only one small bank per
// access.
package cactimodel

import "math"

// Calibration constants. cellPortGrowth is chosen so that a 3-port cell is
// ~3.6x a 1-port cell ((1+0.45*2)^2 = 3.61); energyPortGrowth so that a
// 3-port access costs ~26% more; bankOverhead so that a 4-bank array pays
// ~9% extra area over the summed banks (decoders, output muxing, wiring).
const (
	cellPortGrowth   = 0.45
	energyPortGrowth = 0.13
	bankOverhead     = 0.09
	energySizeExp    = 0.4
)

// Array describes one monolithic SRAM array.
type Array struct {
	Bits  int // storage capacity in bits
	Ports int // identical read/write ports (>= 1)
}

// Area returns the silicon area in arbitrary units (single-port cell
// units). Includes a periphery term that grows with the square root of
// capacity per port.
func (a Array) Area() float64 {
	if a.Bits <= 0 || a.Ports < 1 {
		return 0
	}
	g := 1 + cellPortGrowth*float64(a.Ports-1)
	cells := float64(a.Bits) * g * g
	periphery := 6 * float64(a.Ports) * math.Sqrt(float64(a.Bits))
	return cells + periphery
}

// ReadEnergy returns the dynamic energy per read access in arbitrary units.
func (a Array) ReadEnergy() float64 {
	if a.Bits <= 0 || a.Ports < 1 {
		return 0
	}
	size := math.Pow(float64(a.Bits), energySizeExp)
	return size * (1 + energyPortGrowth*float64(a.Ports-1))
}

// Banked describes the same capacity implemented as NumBanks single-ported
// banks (the Section 4.3 proposal).
type Banked struct {
	Bits  int
	Banks int
}

// Area returns total silicon area of the banked organisation.
func (b Banked) Area() float64 {
	if b.Bits <= 0 || b.Banks < 1 {
		return 0
	}
	per := Array{Bits: b.Bits / b.Banks, Ports: 1}.Area()
	return per * float64(b.Banks) * (1 + bankOverhead)
}

// ReadEnergy returns the energy per access: only one bank is activated.
func (b Banked) ReadEnergy() float64 {
	if b.Bits <= 0 || b.Banks < 1 {
		return 0
	}
	return Array{Bits: b.Bits / b.Banks, Ports: 1}.ReadEnergy()
}

// Comparison reports the headline ratios for a predictor table of the given
// capacity, as used in the paper's argument.
type Comparison struct {
	Bits int
	// AreaRatio3v1 is area(3-port)/area(1-port) at equal capacity.
	AreaRatio3v1 float64
	// EnergyRatio3v1 is energy(3-port)/energy(1-port) at equal capacity.
	EnergyRatio3v1 float64
	// AreaRatioMonoVsBanked is area(3-port monolithic)/area(4x1-port banks).
	AreaRatioMonoVsBanked float64
	// EnergyRatioMonoVsBanked is the corresponding per-access energy ratio.
	EnergyRatioMonoVsBanked float64
}

// Compare computes the headline ratios for a table of the given bit
// capacity.
func Compare(bits int) Comparison {
	mono3 := Array{Bits: bits, Ports: 3}
	mono1 := Array{Bits: bits, Ports: 1}
	banked := Banked{Bits: bits, Banks: 4}
	return Comparison{
		Bits:                    bits,
		AreaRatio3v1:            mono3.Area() / mono1.Area(),
		EnergyRatio3v1:          mono3.ReadEnergy() / mono1.ReadEnergy(),
		AreaRatioMonoVsBanked:   mono3.Area() / banked.Area(),
		EnergyRatioMonoVsBanked: mono3.ReadEnergy() / banked.ReadEnergy(),
	}
}

// PredictorArea sums the banked (or monolithic) area over a predictor's
// table capacities in bits.
func PredictorArea(tableBits []int, ports int, banked bool) float64 {
	total := 0.0
	for _, bits := range tableBits {
		if banked {
			total += Banked{Bits: bits, Banks: 4}.Area()
		} else {
			total += Array{Bits: bits, Ports: ports}.Area()
		}
	}
	return total
}
