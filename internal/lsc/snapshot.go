package lsc

import "repro/internal/checkpoint"

// Snapshot writes the LGEHL tree, local history table, in-flight SLHM
// ring, bank tracker (when interleaved), revert accounting and
// revert-threshold state (the shared stats object belongs to the owner).
func (c *Corrector) Snapshot(enc *checkpoint.Encoder) {
	enc.Begin("lsc", 1)
	c.eng.Snapshot(enc)
	c.lht.Snapshot(enc)
	enc.U32(uint32(len(c.slhm)))
	for i := range c.slhm {
		enc.Int(c.slhm[i].idx)
		enc.U32(c.slhm[i].hist)
	}
	enc.Int(c.slhmHead)
	enc.Int(c.slhmLen)
	if c.banks != nil {
		c.banks.Snapshot(enc)
	}
	enc.U64(c.Reverts)
	enc.U64(c.UsefulReverts)
	enc.I32(c.rthresh)
	enc.I32(c.rbenefit)
	enc.End()
}

// LoadSnapshot restores a Snapshot into a corrector of the same shape,
// validating the SLHM cursors against its capacity.
func (c *Corrector) LoadSnapshot(dec *checkpoint.Decoder) {
	dec.Open("lsc", 1)
	c.eng.LoadSnapshot(dec)
	c.lht.LoadSnapshot(dec)
	n := int(dec.U32())
	if dec.Err() != nil {
		return
	}
	if n != len(c.slhm) {
		dec.Failf("slhm ring holds %d slots, this configuration needs %d", n, len(c.slhm))
		return
	}
	for i := range c.slhm {
		c.slhm[i].idx = dec.Int()
		c.slhm[i].hist = dec.U32()
	}
	head := dec.Int()
	length := dec.Int()
	if c.banks != nil {
		c.banks.LoadSnapshot(dec)
	}
	reverts := dec.U64()
	useful := dec.U64()
	rthresh := dec.I32()
	rbenefit := dec.I32()
	dec.Close()
	if dec.Err() != nil {
		return
	}
	if head < 0 || head >= len(c.slhm) || length < 0 || length > len(c.slhm) {
		dec.Failf("slhm cursors (head %d, len %d) out of range for %d slots", head, length, len(c.slhm))
		return
	}
	c.slhmHead, c.slhmLen = head, length
	c.Reverts, c.UsefulReverts = reverts, useful
	c.rthresh, c.rbenefit = rthresh, rbenefit
}
