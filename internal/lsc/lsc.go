// Package lsc implements the Local history Statistical Corrector of
// Section 6: the Statistical Corrector architecture re-based on per-branch
// local histories, which "dwarfs the benefits of the loop predictor and
// the global history Statistical Corrector".
//
// Configuration from the paper: a 32-entry direct-mapped local history
// table, a Speculative Local History Manager (Figure 8) tracking in-flight
// instances, and an LGEHL adder tree of 5 tables of 1K 6-bit entries with
// local history lengths (0, 4, 10, 17, 31) — about 30 Kbits.
package lsc

import (
	"repro/internal/bitutil"
	"repro/internal/gehl"
	"repro/internal/histories"
	"repro/internal/memarray"
)

// MaxTables bounds the LGEHL size for fixed-size contexts.
const MaxTables = 8

// Config parameterises the LSC.
type Config struct {
	LogEntries  uint  // per LGEHL table (default 10 = 1K)
	CtrBits     uint  // default 6
	Lengths     []int // local history lengths (default 0,4,10,17,31)
	TageWeight  int32 // weight of the centered TAGE counter (default 8)
	LHTEntries  int   // local history table entries (default 32)
	SLHMCap     int   // in-flight instances tracked (default 64)
	Interleaved bool  // bank-interleave the local components (Section 7.1)
}

func (c Config) withDefaults() Config {
	if c.LogEntries == 0 {
		c.LogEntries = 10
	}
	if c.CtrBits == 0 {
		c.CtrBits = 6
	}
	if len(c.Lengths) == 0 {
		c.Lengths = []int{0, 4, 10, 17, 31}
	}
	if len(c.Lengths) > MaxTables {
		panic("lsc: too many tables")
	}
	if c.TageWeight == 0 {
		c.TageWeight = 8
	}
	if c.LHTEntries == 0 {
		c.LHTEntries = 32
	}
	if c.SLHMCap == 0 {
		c.SLHMCap = 64
	}
	return c
}

type slhmEntry struct {
	idx  int
	hist uint32
}

// Corrector is the local-history Statistical Corrector.
type Corrector struct {
	cfg   Config
	eng   *gehl.Engine
	lht   *histories.Local
	width uint

	slhm     []slhmEntry
	slhmHead int
	slhmLen  int

	banks *memarray.BankTracker

	Reverts       uint64
	UsefulReverts uint64

	// Revert threshold state (see package sc): adapted on revert benefit.
	rthresh  int32
	rbenefit int32
}

// Ctx is the per-branch LSC context.
type Ctx struct {
	Indices  [MaxTables]uint32
	Ctrs     [MaxTables]int8
	Sum      int32
	SCPred   bool
	InPred   bool
	Reverted bool

	LhtIdx     int
	SpecHist   uint32
	PushedSLHM bool
}

// New creates an LSC. stats may be nil.
func New(cfg Config, stats *memarray.Stats) *Corrector {
	cfg = cfg.withDefaults()
	maxLen := 0
	for _, l := range cfg.Lengths {
		if l > maxLen {
			maxLen = l
		}
	}
	c := &Corrector{
		cfg: cfg,
		eng: gehl.NewEngine(gehl.Config{
			NumTables:  len(cfg.Lengths),
			LogEntries: cfg.LogEntries,
			CtrBits:    cfg.CtrBits,
			MinHist:    1, MaxHist: maxLen + 1,
		}, cfg.Lengths, stats),
		lht:   histories.NewLocal(cfg.LHTEntries, uint(maxLen)),
		width: uint(maxLen),
		slhm:  make([]slhmEntry, cfg.SLHMCap),
	}
	if cfg.Interleaved {
		c.banks = memarray.NewBankTracker()
	}
	c.rthresh = int32(2 * len(cfg.Lengths))
	return c
}

// Reset returns the corrector to its construction state: LGEHL counters
// and threshold, local histories, in-flight SLHM entries, bank tracker and
// revert accounting. The stats object is left to its owner.
func (c *Corrector) Reset() {
	c.eng.Reset()
	c.lht.Reset()
	for i := range c.slhm {
		c.slhm[i] = slhmEntry{}
	}
	c.slhmHead, c.slhmLen = 0, 0
	if c.banks != nil {
		c.banks.Reset()
	}
	c.Reverts, c.UsefulReverts = 0, 0
	c.rthresh = int32(2 * len(c.cfg.Lengths))
	c.rbenefit = 0
}

// StorageBits returns LGEHL tables plus the local history table.
func (c *Corrector) StorageBits() int {
	return c.eng.StorageBits() + c.lht.Entries()*int(c.width)
}

// foldLocal compresses a (short) local history value into the table index
// width, analogous to the global folded histories.
func foldLocal(h uint32, width uint) uint32 {
	mask := uint32(bitutil.Mask(width))
	v := uint32(0)
	for h != 0 {
		v ^= h & mask
		h >>= width
	}
	return v
}

// slhmLookup finds the youngest in-flight speculative history for a local
// history table index.
func (c *Corrector) slhmLookup(idx int) (uint32, bool) {
	for i := c.slhmLen - 1; i >= 0; i-- {
		e := &c.slhm[(c.slhmHead+i)%len(c.slhm)]
		if e.idx == idx {
			return e.hist, true
		}
	}
	return 0, false
}

// Predict computes the corrected prediction, using the speculative local
// history of any in-flight instance of the same local history entry.
func (c *Corrector) Predict(pc uint64, mainPred bool, tageCtrCentered int32, ctx *Ctx) bool {
	ctx.LhtIdx = c.lht.IndexOf(pc)
	hist, ok := c.slhmLookup(ctx.LhtIdx)
	if !ok {
		hist = c.lht.ReadAt(ctx.LhtIdx)
	}
	ctx.SpecHist = hist

	predBit := uint32(0)
	if mainPred {
		predBit = 1
	}
	bank := 0
	if c.banks != nil {
		bank = c.banks.Select(pc)
	}
	var sum int32
	for i, l := range c.cfg.Lengths {
		key := hist & uint32(bitutil.Mask(uint(l)))
		var idx uint32
		if c.banks != nil {
			inner := c.cfg.LogEntries - 2
			idx = c.eng.Index(i, pc, foldLocal(key, inner), predBit*0x5bd1e995) & uint32(bitutil.Mask(inner))
			idx |= uint32(bank) << inner
		} else {
			idx = c.eng.Index(i, pc, foldLocal(key, c.cfg.LogEntries), predBit*0x5bd1e995)
		}
		ctr := c.eng.Read(i, idx)
		ctx.Indices[i] = idx
		ctx.Ctrs[i] = int8(ctr)
		sum += bitutil.Centered(ctr)
	}
	sum += c.cfg.TageWeight * tageCtrCentered
	ctx.Sum = sum
	ctx.SCPred = sum >= 0
	ctx.InPred = mainPred
	ctx.Reverted = false
	if ctx.SCPred != mainPred && abs32(sum) >= c.rthresh {
		ctx.Reverted = true
		c.Reverts++
		return ctx.SCPred
	}
	return mainPred
}

// OnResolve pushes the in-flight speculative local history
// ("new SH = (SH << 1) + prediction", Figure 8).
func (c *Corrector) OnResolve(taken bool, ctx *Ctx) {
	next := histories.Shift(ctx.SpecHist, taken, c.width)
	if c.slhmLen == len(c.slhm) {
		c.slhmHead = (c.slhmHead + 1) % len(c.slhm)
		c.slhmLen--
	}
	pos := (c.slhmHead + c.slhmLen) % len(c.slhm)
	c.slhm[pos] = slhmEntry{idx: ctx.LhtIdx, hist: next}
	c.slhmLen++
	ctx.PushedSLHM = true
}

// Retire updates the LGEHL tables and the architectural local history.
func (c *Corrector) Retire(taken bool, ctx *Ctx, reread bool) {
	if ctx.PushedSLHM {
		c.slhmHead = (c.slhmHead + 1) % len(c.slhm)
		c.slhmLen--
	}
	// Architectural local history advances at retire.
	arch := c.lht.ReadAt(ctx.LhtIdx)
	c.lht.WriteAt(ctx.LhtIdx, histories.Shift(arch, taken, c.width))

	if ctx.Reverted {
		if ctx.SCPred == taken {
			c.UsefulReverts++
			c.rbenefit++
		} else {
			c.rbenefit -= 2
		}
		if c.rbenefit <= -16 {
			c.rbenefit = 0
			c.rthresh++
		} else if c.rbenefit >= 64 {
			c.rbenefit = 0
			if c.rthresh > int32(len(c.cfg.Lengths)) {
				c.rthresh--
			}
		}
	}
	scWrong := ctx.SCPred != taken
	a := abs32(ctx.Sum)
	if c.eng.ShouldUpdate(scWrong, a) {
		for i := range c.cfg.Lengths {
			old := int32(ctx.Ctrs[i])
			if reread {
				old = c.eng.Read(i, ctx.Indices[i])
			}
			c.eng.Train(i, ctx.Indices[i], old, taken)
		}
	}
	c.eng.AdaptThreshold(scWrong, a)
}

// RevertSuccessRate returns the fraction of reverts that were correct.
func (c *Corrector) RevertSuccessRate() float64 {
	if c.Reverts == 0 {
		return 0
	}
	return float64(c.UsefulReverts) / float64(c.Reverts)
}

func abs32(v int32) int32 {
	if v < 0 {
		return -v
	}
	return v
}
