package lsc

import (
	"testing"

	"repro/internal/rng"
)

// TestCapturesLocalOnlyCorrelation is the Section 6 behaviour: a branch
// whose outcome follows its own local pattern while the global context is
// noise. The LSC must learn it from the local history even when the main
// prediction is unreliable.
func TestCapturesLocalOnlyCorrelation(t *testing.T) {
	c := New(Config{}, nil)
	r := rng.NewXoshiro(1)
	pattern := []bool{true, true, false, true, false, false, true, false}
	pc := uint64(0x4000)
	const rounds = 6000
	lateWrong, lateTotal := 0, 0
	for i := 0; i < rounds; i++ {
		taken := pattern[i%len(pattern)]
		mainPred := r.Bool(0.5) // main predictor defeated by global noise
		var ctx Ctx
		final := c.Predict(pc, mainPred, 1, &ctx)
		if i > rounds/2 {
			lateTotal++
			if final != taken {
				lateWrong++
			}
		}
		c.OnResolve(taken, &ctx)
		c.Retire(taken, &ctx, true)
	}
	rate := float64(lateWrong) / float64(lateTotal)
	if rate > 0.10 {
		t.Fatalf("local pattern late misprediction rate = %.3f, want < 0.10", rate)
	}
}

func TestSpeculativeLocalHistoryInflight(t *testing.T) {
	// Several in-flight instances of the same branch: the SLHM must supply
	// the speculative history so each sees a different (advanced) history.
	c := New(Config{}, nil)
	pc := uint64(0x100)
	var ctxs [4]Ctx
	histories := make([]uint32, 0, 4)
	for i := 0; i < 4; i++ {
		c.Predict(pc, true, 1, &ctxs[i])
		histories = append(histories, ctxs[i].SpecHist)
		c.OnResolve(i%2 == 0, &ctxs[i])
	}
	for i := 1; i < len(histories); i++ {
		if histories[i] == histories[i-1] {
			t.Fatalf("speculative history did not advance in flight: %v", histories)
		}
	}
	for i := 0; i < 4; i++ {
		c.Retire(i%2 == 0, &ctxs[i], true)
	}
	// After retiring all, the architectural history must equal the final
	// speculative one.
	var ctx Ctx
	c.Predict(pc, true, 1, &ctx)
	want := histories[3]<<1 | 0 // one more shift from the i=3 outcome (false)
	want &= (1 << c.width) - 1
	if ctx.SpecHist != want {
		t.Fatalf("architectural history %#b, want %#b", ctx.SpecHist, want)
	}
}

func TestStorageBudgetAbout30Kbits(t *testing.T) {
	// Section 6.1: "using 5 tables featuring 1K 6-bit entries ... and a
	// small 32-entry direct-mapped local history table" — "A 30 Kbits LSC".
	c := New(Config{}, nil)
	bits := c.StorageBits()
	if bits < 30*1024 || bits > 32*1024 {
		t.Fatalf("StorageBits = %d, want ~30-32 Kbits", bits)
	}
}

func TestFoldLocal(t *testing.T) {
	// Folding must be width-bounded and XOR-consistent.
	if foldLocal(0, 10) != 0 {
		t.Fatal("fold of 0 must be 0")
	}
	v := foldLocal(0xffffffff, 8)
	if v > 0xff {
		t.Fatalf("fold exceeded width: %#x", v)
	}
	// 0x3FF folded to width 10 is itself.
	if foldLocal(0x3ff, 10) != 0x3ff {
		t.Fatal("identity fold failed")
	}
	// Two chunks XOR together: 0xfff width 10 = 0x3ff ^ 0x3.
	if foldLocal(0xfff, 10) != (0x3ff ^ 0x3) {
		t.Fatalf("fold = %#x", foldLocal(0xfff, 10))
	}
}

func TestInterleavedVariantLearns(t *testing.T) {
	c := New(Config{Interleaved: true}, nil)
	pattern := []bool{true, false, true, true, false}
	pc := uint64(0x200)
	const rounds = 8000
	lateWrong, lateTotal := 0, 0
	for i := 0; i < rounds; i++ {
		taken := pattern[i%len(pattern)]
		var ctx Ctx
		final := c.Predict(pc, false, -1, &ctx)
		if i > 3*rounds/4 {
			lateTotal++
			if final != taken {
				lateWrong++
			}
		}
		c.OnResolve(taken, &ctx)
		c.Retire(taken, &ctx, true)
	}
	rate := float64(lateWrong) / float64(lateTotal)
	// Interleaving slows training (up to 4 entries per branch) but the
	// pattern must still be learned.
	if rate > 0.20 {
		t.Fatalf("interleaved late rate = %.3f", rate)
	}
}

func TestAliasedBranchesShareHistory(t *testing.T) {
	// Two PCs aliasing to the same 32-entry LHT slot share local history —
	// an intentional cost of the tiny table.
	c := New(Config{}, nil)
	pcA := uint64(0x1000)
	pcB := pcA
	for pc := pcA + 16; pc < pcA+16*4096; pc += 16 {
		if c.lht.IndexOf(pc) == c.lht.IndexOf(pcA) {
			pcB = pc
			break
		}
	}
	if pcB == pcA {
		t.Fatal("no aliasing PC found")
	}
	var ctx Ctx
	c.Predict(pcA, true, 1, &ctx)
	c.OnResolve(true, &ctx)
	c.Retire(true, &ctx, true)
	var ctxB Ctx
	c.Predict(pcB, true, 1, &ctxB)
	if ctxB.SpecHist != 1 {
		t.Fatalf("aliased branch should see shared history, got %#b", ctxB.SpecHist)
	}
}
