package main

import (
	"strings"
	"testing"

	"repro"
)

func TestResolveValidCombinations(t *testing.T) {
	cases := []struct {
		model, scenario string
		want            repro.Scenario
	}{
		{"tage", "I", repro.ScenarioI},
		{"tage", "A", repro.ScenarioA},
		{"gshare", "b", repro.ScenarioB},
		{"tage-lsc", " c ", repro.ScenarioC},
	}
	for _, c := range cases {
		m, sc, err := resolve(c.model, c.scenario)
		if err != nil {
			t.Fatalf("resolve(%q, %q): %v", c.model, c.scenario, err)
		}
		if sc != c.want {
			t.Errorf("resolve(%q, %q) scenario = %v, want %v", c.model, c.scenario, sc, c.want)
		}
		if m == nil || m.StorageBits() <= 0 {
			t.Errorf("resolve(%q, %q) returned unusable model", c.model, c.scenario)
		}
	}
}

func TestResolveEveryListedModel(t *testing.T) {
	for _, name := range repro.ModelNames() {
		if _, _, err := resolve(name, "A"); err != nil {
			t.Errorf("listed model %q does not resolve: %v", name, err)
		}
	}
}

func TestResolveUnknownModel(t *testing.T) {
	_, _, err := resolve("not-a-predictor", "A")
	if err == nil {
		t.Fatal("unknown model must error")
	}
	// The error must name the valid identifiers so -list is discoverable.
	if !strings.Contains(err.Error(), "not-a-predictor") || !strings.Contains(err.Error(), "tage") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestResolveUnknownScenario(t *testing.T) {
	for _, bad := range []string{"", "X", "AA", "A,C"} {
		if _, _, err := resolve("tage", bad); err == nil {
			t.Errorf("scenario %q must be rejected", bad)
		}
	}
}
