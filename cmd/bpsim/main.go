// Command bpsim runs a branch predictor over synthetic benchmark traces
// and reports accuracy and access statistics. -model accepts any model
// spec: a named model or a parameterised configuration (see the README
// "Model specs" section).
//
// Usage:
//
//	bpsim -model tage-lsc -scenario A -branches 1000000 [-trace INT01]
//	bpsim -model 'tage:tables=9,hist=6:500' -scenario A
//	bpsim -model 'composed:tage+ium+lsc@+2' -scenario C
//	bpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/cli"
)

// resolve maps the -model and -scenario flag values to a Model and a
// Scenario through the shared repro-level parsers (the same mapping
// bpbench uses), so flag handling is testable without running main.
func resolve(model, scenario string) (*repro.Model, repro.Scenario, error) {
	m, err := repro.LookupModel(model)
	if err != nil {
		return nil, 0, err
	}
	sc, err := repro.ParseScenario(scenario)
	if err != nil {
		return nil, 0, err
	}
	return m, sc, nil
}

func main() {
	model := flag.String("model", "tage", "predictor model spec: a named model or kind:key=value,... (see -list)")
	scenario := flag.String("scenario", "A", "update scenario: I, A, B or C")
	traceName := flag.String("trace", "", "single workload to run: a benchmark name or trace spec like 'phased:period=4096#1' (default: all 40 benchmarks)")
	branches := flag.Int("branches", 500000, "branches per trace")
	window := flag.Int("window", 24, "in-flight branch window")
	cellPar := flag.Int("cell-par", 1, "run traces across this many goroutines (deterministic: per-trace results are byte-identical to a serial run)")
	ckPath := flag.String("checkpoint", "", "checkpoint blob file for a single-trace run: resume from it when present, keep the latest simulation checkpoint in it while running (requires -trace)")
	list := flag.Bool("list", false, "list models and traces, then exit")
	verbose, quiet := cli.Verbosity(flag.CommandLine)
	flag.Parse()
	log := cli.NewLogger(os.Stderr, *verbose, *quiet)

	if *cellPar < 1 {
		log.Error(fmt.Sprintf("bpsim: -cell-par must be >= 1 (got %d)", *cellPar))
		os.Exit(2)
	}
	if *ckPath != "" && *traceName == "" {
		log.Error("bpsim: -checkpoint snapshots one simulation; name the trace with -trace")
		os.Exit(2)
	}

	if *list {
		fmt.Println("models: ", strings.Join(repro.ModelNames(), " "))
		fmt.Println("traces: ", strings.Join(repro.TraceNames(), " "))
		fmt.Println("workload kinds:")
		for _, l := range repro.WorkloadKindSummaries() {
			fmt.Println("  " + l)
		}
		return
	}

	m, sc, err := resolve(*model, *scenario)
	if err != nil {
		log.Error(fmt.Sprintf("bpsim: %v (try -list)", err))
		os.Exit(1)
	}
	opt := repro.Options{Scenario: sc, Window: *window}
	if *ckPath != "" {
		// Resume from an earlier checkpoint when one is on disk (a blob
		// the simulator cannot use — wrong model, wrong pipeline — is
		// reported and the run falls back to a cold start), and keep the
		// file pointing at the latest checkpoint while running, so a
		// killed long run continues mid-trace next time.
		if blob, err := os.ReadFile(*ckPath); err == nil {
			opt.Resume = &repro.Checkpoint{Blob: blob}
		}
		opt.CheckpointEvery = 1_000_000
		opt.OnCheckpoint = func(blob []byte, at uint64) {
			tmp := *ckPath + ".tmp"
			if err := os.WriteFile(tmp, blob, 0o644); err != nil {
				log.Warn(fmt.Sprintf("bpsim: -checkpoint: %v", err))
				return
			}
			if err := os.Rename(tmp, *ckPath); err != nil {
				os.Remove(tmp)
				log.Warn(fmt.Sprintf("bpsim: -checkpoint: %v", err))
			}
		}
	}

	names := repro.TraceNames()
	if *traceName != "" {
		names = []string{*traceName}
	}
	log.Debug(fmt.Sprintf("bpsim: running %d trace(s) of %d branches", len(names), *branches))
	fmt.Printf("# model=%s storage=%dKbit scenario=%s branches/trace=%d\n",
		m.Name(), m.StorageBits()/1024, sc, *branches)

	// With -cell-par 1 the suite still goes through one pooled instance
	// (RunSuite's single shard): the predictor's tables and the simulation
	// buffers are allocated once and Reset between traces, which is
	// byte-identical to a fresh instance per trace.
	results, err := m.RunSuite(names, *branches, opt, *cellPar)
	if err != nil {
		log.Error(fmt.Sprintf("bpsim: %v", err))
		os.Exit(1)
	}
	suite := &repro.Suite{}
	for _, res := range results {
		suite.Add(res)
		if res.ResumeErr != nil {
			log.Warn(fmt.Sprintf("bpsim: checkpoint unusable, ran cold: %v", res.ResumeErr))
		} else if res.ResumedAt > 0 {
			log.Info(fmt.Sprintf("bpsim: %s resumed from checkpoint at branch %d", res.Trace, res.ResumedAt))
		}
		fmt.Printf("%-10s MPKI=%7.3f MPPKI=%8.2f mispredict=%5.2f%% accesses/branch=%.3f\n",
			res.Trace, res.MPKI, res.MPPKI, 100*res.Misprediction,
			res.Access.AccessesPerBranch())
	}
	if len(names) > 1 {
		acc := suite.AccessTotals()
		fmt.Printf("# suite: MPKI-sum=%.1f MPPKI-sum=%.0f silent-updates=%.1f%% writes/100br=%.2f\n",
			suite.TotalMPKI(), suite.TotalMPPKI(),
			100*acc.SilentFraction(), acc.WritesPer100Branches())
	}
}
