// Command bpsim runs a branch predictor over synthetic benchmark traces
// and reports accuracy and access statistics.
//
// Usage:
//
//	bpsim -model tage-lsc -scenario A -branches 1000000 [-trace INT01]
//	bpsim -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro"
)

func main() {
	model := flag.String("model", "tage", "predictor model (see -list)")
	scenario := flag.String("scenario", "A", "update scenario: I, A, B or C")
	traceName := flag.String("trace", "", "single trace to run (default: all 40)")
	branches := flag.Int("branches", 500000, "branches per trace")
	window := flag.Int("window", 24, "in-flight branch window")
	list := flag.Bool("list", false, "list models and traces, then exit")
	flag.Parse()

	if *list {
		var names []string
		for name := range repro.Models() {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Println("models: ", strings.Join(names, " "))
		fmt.Println("traces: ", strings.Join(repro.TraceNames(), " "))
		return
	}

	mk, ok := repro.Models()[*model]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown model %q (try -list)\n", *model)
		os.Exit(1)
	}
	var sc repro.Scenario
	switch strings.ToUpper(*scenario) {
	case "I":
		sc = repro.ScenarioI
	case "A":
		sc = repro.ScenarioA
	case "B":
		sc = repro.ScenarioB
	case "C":
		sc = repro.ScenarioC
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		os.Exit(1)
	}
	opt := repro.Options{Scenario: sc, Window: *window}

	names := repro.TraceNames()
	if *traceName != "" {
		names = []string{*traceName}
	}
	m := mk()
	fmt.Printf("# model=%s storage=%dKbit scenario=%s branches/trace=%d\n",
		m.Name(), m.StorageBits()/1024, sc, *branches)

	suite := &repro.Suite{}
	for _, name := range names {
		tr := repro.GenerateTrace(name, *branches)
		res := mk().Run(tr, opt)
		suite.Add(res)
		fmt.Printf("%-10s MPKI=%7.3f MPPKI=%8.2f mispredict=%5.2f%% accesses/branch=%.3f\n",
			res.Trace, res.MPKI, res.MPPKI, 100*res.Misprediction,
			res.Access.AccessesPerBranch())
	}
	if len(names) > 1 {
		acc := suite.AccessTotals()
		fmt.Printf("# suite: MPKI-sum=%.1f MPPKI-sum=%.0f silent-updates=%.1f%% writes/100br=%.2f\n",
			suite.TotalMPKI(), suite.TotalMPPKI(),
			100*acc.SilentFraction(), acc.WritesPer100Branches())
	}
}
