// Command bptables regenerates the paper's tables and figures
// (experiments E1..E15, see DESIGN.md), printing paper-vs-measured rows
// and the shape checks each experiment must satisfy.
//
// Usage:
//
//	bptables                    # run every experiment at the default scale
//	bptables -exp E2,E11        # run a subset
//	bptables -branches 1000000  # full-scale run
//	bptables -markdown          # emit EXPERIMENTS.md-style markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	branches := flag.Int("branches", 200000, "branches per trace")
	markdown := flag.Bool("markdown", false, "emit markdown instead of text")
	store := flag.String("store", "", "resumable JSONL result store for the harness-backed sweeps (E11): interrupted runs continue, complete ones re-render for free")
	flag.Parse()

	cfg := repro.ExperimentConfig{BranchesPerTrace: *branches, ResultStore: *store}
	ids := repro.ExperimentIDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}

	failures := 0
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		rep, ok := repro.RunExperiment(strings.TrimSpace(id), cfg)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			failures++
			continue
		}
		if *markdown {
			experiments.RenderMarkdown(os.Stdout, rep)
		} else {
			repro.RenderReport(os.Stdout, rep)
			fmt.Printf("   (%.1fs)\n", time.Since(t0).Seconds())
		}
		if !rep.Passed() {
			failures++
		}
	}
	fmt.Printf("# total %.1fs, %d experiment(s) with failing shape checks\n",
		time.Since(start).Seconds(), failures)
	if failures > 0 {
		os.Exit(1)
	}
}
