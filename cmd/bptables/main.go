// Command bptables regenerates the paper's tables and figures
// (experiments E1..E15, see the internal/experiments index), printing
// paper-vs-measured rows and the shape checks each experiment must
// satisfy. With -model it instead evaluates one arbitrary model spec
// over the whole 40-trace suite — the quick answer to "how would this
// point of the design space have scored in the paper's tables".
//
// Usage:
//
//	bptables                    # run every experiment at the default scale
//	bptables -exp E2,E11        # run a subset
//	bptables -branches 1000000  # full-scale run
//	bptables -markdown          # emit EXPERIMENTS.md-style markdown
//	bptables -model 'tage:tables=9,hist=6:500'   # one spec, full suite
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"repro"
	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() {
	expFlag := flag.String("exp", "", "comma-separated experiment ids (default: all)")
	branches := flag.Int("branches", 200000, "branches per trace")
	markdown := flag.Bool("markdown", false, "emit markdown instead of text")
	store := flag.String("store", "", "resumable JSONL result store for the harness-backed sweeps (E11): interrupted runs continue, complete ones re-render for free")
	warm := flag.Bool("warm-cache", false, "keep a checkpoint blob cache next to -store (store + \".ckpt/\"): cells warm-start from cached snapshots and interrupted cells resume mid-trace (requires -store)")
	model := flag.String("model", "", "evaluate this model spec over the full suite instead of running experiments (scenario A)")
	cellPar := flag.Int("cell-par", 0, "intra-cell workers for harness-backed runs: shard each cell group's traces across this many goroutines (deterministic; 0/1 = off)")
	verbose, quiet := cli.Verbosity(flag.CommandLine)
	flag.Parse()
	log := cli.NewLogger(os.Stderr, *verbose, *quiet)

	if *cellPar < 0 {
		log.Error(fmt.Sprintf("bptables: -cell-par must be >= 0 (got %d)", *cellPar))
		os.Exit(2)
	}

	if *warm && *store == "" {
		log.Error("bptables: -warm-cache caches checkpoints next to the result store; set -store")
		os.Exit(2)
	}

	if *model != "" {
		if *expFlag != "" || *store != "" || *markdown {
			log.Error("bptables: -model runs a one-off suite evaluation (plain table only); drop -exp/-store/-markdown")
			os.Exit(2)
		}
		os.Exit(runModelSpec(*model, *branches, *cellPar, log))
	}

	cfg := repro.ExperimentConfig{BranchesPerTrace: *branches, ResultStore: *store, IntraCellWorkers: *cellPar, WarmCache: *warm}
	ids := repro.ExperimentIDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}

	failures := 0
	start := time.Now()
	for _, id := range ids {
		t0 := time.Now()
		log.Debug(fmt.Sprintf("bptables: running experiment %s", strings.TrimSpace(id)))
		rep, ok := repro.RunExperiment(strings.TrimSpace(id), cfg)
		if !ok {
			log.Error(fmt.Sprintf("bptables: unknown experiment %q", id))
			failures++
			continue
		}
		if *markdown {
			experiments.RenderMarkdown(os.Stdout, rep)
		} else {
			repro.RenderReport(os.Stdout, rep)
			fmt.Printf("   (%.1fs)\n", time.Since(t0).Seconds())
		}
		if !rep.Passed() {
			failures++
		}
	}
	fmt.Printf("# total %.1fs, %d experiment(s) with failing shape checks\n",
		time.Since(start).Seconds(), failures)
	if failures > 0 {
		os.Exit(1)
	}
}

// runModelSpec evaluates one model spec across the whole benchmark
// suite through the harness (scenario A, the paper's default reporting
// scenario) and prints the per-trace table with its aggregates.
func runModelSpec(spec string, branches, cellPar int, log *slog.Logger) int {
	m, err := repro.NewBenchMatrix([]string{spec}, nil, "A", []int{branches})
	if err != nil {
		log.Error(fmt.Sprintf("bptables: %v", err))
		return 2
	}
	canon := m.Models[0].Spec
	fmt.Printf("# model=%s storage=%dKbit branches/trace=%d\n",
		canon, m.Models[0].StorageBits/1024, branches)
	sink, err := repro.NewBenchSink("table", os.Stdout)
	if err != nil {
		log.Error(fmt.Sprintf("bptables: %v", err))
		return 2
	}
	sum, err := repro.RunBench(m, repro.BenchConfig{IntraCellWorkers: cellPar}, sink)
	if err != nil {
		log.Error(fmt.Sprintf("bptables: %v", err))
		return 2
	}
	if sum.Failed > 0 {
		log.Error(fmt.Sprintf("bptables: %d of %d cells failed", sum.Failed, sum.Jobs))
		return 1
	}
	return 0
}
