// Command tracegen materialises workloads (benchmark names or trace
// specs), encodes them to the binary trace format, summarises trace
// files, and converts external text traces into the binary format.
//
// Usage:
//
//	tracegen -name INT01 -branches 1000000 -o int01.bpt
//	tracegen -name 'phased:period=4096#1' -branches 200000
//	tracegen -summarize int01.bpt
//	tracegen convert -format cbp -o gcc.bpt gcc-branches.txt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable args and streams, so the CLI's error
// paths are testable. Exit codes: 0 ok, 1 runtime error, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "convert" {
		return runConvert(args[1:], stdout, stderr)
	}

	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	name := fs.String("name", "", "workload to generate: a benchmark name or a trace spec like 'phased:period=4096#1' (see -list)")
	branches := fs.Int("branches", 1000000, "branches to generate")
	out := fs.String("o", "", "output file (default: derived from the workload name)")
	summarize := fs.String("summarize", "", "trace file to summarise")
	list := fs.Bool("list", false, "list benchmark names and workload kinds")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch {
	case *list:
		fmt.Fprintln(stdout, strings.Join(repro.TraceNames(), "\n"))
		fmt.Fprintln(stdout, "\nworkload kinds (use as -name specs):")
		for _, l := range repro.WorkloadKindSummaries() {
			fmt.Fprintln(stdout, "  "+l)
		}
		return 0
	case *name != "" && *summarize != "":
		fmt.Fprintln(stderr, "tracegen: -name generates, -summarize reads; use one or the other")
		return 2
	case *summarize != "":
		f, err := os.Open(*summarize)
		if err != nil {
			return fail(stderr, err)
		}
		defer f.Close()
		tr, err := repro.ReadTrace(f)
		if err != nil {
			return fail(stderr, err)
		}
		printSummary(stdout, tr)
		return 0
	case *name != "":
		if *branches <= 0 {
			fmt.Fprintf(stderr, "tracegen: -branches must be positive, got %d\n", *branches)
			return 2
		}
		tr, err := repro.GenerateTrace(*name, *branches)
		if err != nil {
			fmt.Fprintln(stderr, "tracegen:", err)
			fmt.Fprintln(stderr, "\nvalid benchmark names:")
			fmt.Fprintln(stderr, "  "+strings.Join(repro.TraceNames(), " "))
			fmt.Fprintln(stderr, "workload kinds (specs):")
			for _, l := range repro.WorkloadKindSummaries() {
				fmt.Fprintln(stderr, "  "+l)
			}
			return 1
		}
		path := *out
		if path == "" {
			path = specFileName(*name) + ".bpt"
		}
		if err := writeTraceFile(path, tr); err != nil {
			return fail(stderr, err)
		}
		st := repro.SummarizeTrace(tr)
		fmt.Fprintf(stdout, "wrote %s: %d branches, %d µops, %d static branches\n",
			path, st.Branches, st.MicroOps, st.StaticBranches)
		return 0
	default:
		fs.Usage()
		return 2
	}
}

// runConvert ingests an external text trace (`tracegen convert -format
// cbp input.txt`) into the binary format.
func runConvert(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen convert", flag.ContinueOnError)
	fs.SetOutput(stderr)
	format := fs.String("format", "cbp", "input format: "+strings.Join(repro.TraceConvertFormats(), " or "))
	name := fs.String("name", "", "trace name to embed (default: input file basename)")
	out := fs.String("o", "", "output file (default: input path with .bpt)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "tracegen convert: want exactly one input file, e.g. 'tracegen convert -format cbp branches.txt'")
		return 2
	}
	input := fs.Arg(0)
	if *name == "" {
		base := filepath.Base(input)
		*name = strings.TrimSuffix(base, filepath.Ext(base))
	}

	f, err := os.Open(input)
	if err != nil {
		return fail(stderr, err)
	}
	defer f.Close()
	tr, st, err := repro.ConvertTrace(f, *format, *name)
	if err != nil {
		return fail(stderr, err)
	}
	if st.Conditional == 0 {
		fmt.Fprintf(stderr, "tracegen convert: %s has no conditional branches (%d input lines; calls=%d returns=%d jumps=%d other=%d)\n",
			input, st.Lines, st.Calls, st.Returns, st.Jumps, st.Other)
		return 1
	}
	path := *out
	if path == "" {
		path = strings.TrimSuffix(input, filepath.Ext(input)) + ".bpt"
	}
	if err := writeTraceFile(path, tr); err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "converted %s: %d lines -> %d conditional branches (skipped: %d calls, %d returns, %d jumps, %d other)\n",
		input, st.Lines, st.Conditional, st.Calls, st.Returns, st.Jumps, st.Other)
	printSummary(stdout, tr)
	fmt.Fprintf(stdout, "run it with: bpbench -traces 'file:%s'\n", path)
	return 0
}

// printSummary renders the branch-mix report shared by -summarize and
// convert: volume, footprint, direction mix and transition entropy, so
// a converted trace can be sanity-checked against its source.
func printSummary(w io.Writer, tr *repro.Trace) {
	st := repro.SummarizeTrace(tr)
	fmt.Fprintf(w, "name=%s category=%s branches=%d micro-ops=%d static=%d taken=%.1f%% top10-cover=%.1f%% transition-entropy=%.3f bits\n",
		tr.Name, tr.Category, st.Branches, st.MicroOps, st.StaticBranches,
		100*st.TakenFraction, 100*st.Top10Coverage, st.TransitionEntropy)
}

// specFileName sanitises a workload name into a filesystem-friendly
// stem: benchmark names lowercase as before; spec punctuation becomes
// dashes.
func specFileName(name string) string {
	s := strings.ToLower(name)
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '.' || r == '-' {
			b.WriteRune(r)
		} else {
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

func writeTraceFile(path string, tr *repro.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := repro.WriteTrace(f, tr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "tracegen:", err)
	return 1
}
