// Command tracegen synthesises benchmark traces, encodes them to the
// binary trace format, and summarises trace files.
//
// Usage:
//
//	tracegen -name INT01 -branches 1000000 -o int01.bpt
//	tracegen -summarize int01.bpt
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	name := flag.String("name", "", "benchmark to generate (see -list)")
	branches := flag.Int("branches", 1000000, "branches to generate")
	out := flag.String("o", "", "output file (default: <name>.bpt)")
	summarize := flag.String("summarize", "", "trace file to summarise")
	list := flag.Bool("list", false, "list benchmark names")
	flag.Parse()

	switch {
	case *list:
		fmt.Println(strings.Join(repro.TraceNames(), "\n"))
	case *summarize != "":
		f, err := os.Open(*summarize)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := repro.ReadTrace(f)
		if err != nil {
			fatal(err)
		}
		st := repro.SummarizeTrace(tr)
		fmt.Printf("name=%s category=%s branches=%d micro-ops=%d static=%d taken=%.1f%%\n",
			tr.Name, tr.Category, st.Branches, st.MicroOps, st.StaticBranches,
			100*st.TakenFraction)
	case *name != "":
		tr := repro.GenerateTrace(*name, *branches)
		path := *out
		if path == "" {
			path = strings.ToLower(*name) + ".bpt"
		}
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := repro.WriteTrace(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st := repro.SummarizeTrace(tr)
		fmt.Printf("wrote %s: %d branches, %d µops, %d static branches\n",
			path, st.Branches, st.MicroOps, st.StaticBranches)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
