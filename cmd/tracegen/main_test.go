package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

func runTracegen(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errw bytes.Buffer
	code = run(args, &out, &errw)
	return code, out.String(), errw.String()
}

// TestUnknownWorkload: a bogus -name exits non-zero and the error lists
// what would have worked — names and spec kinds — instead of panicking.
func TestUnknownWorkload(t *testing.T) {
	code, _, stderr := runTracegen(t, "-name", "BOGUS", "-o", filepath.Join(t.TempDir(), "x.bpt"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	for _, want := range []string{"BOGUS", "valid benchmark names:", "INT01", "workload kinds", "phased"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("stderr missing %q:\n%s", want, stderr)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runTracegen(t, "-name", "INT01", "-branches", "0"); code != 2 {
		t.Fatalf("-branches 0: exit %d, want 2", code)
	}
	if code, _, _ := runTracegen(t, "-name", "INT01", "-branches", "-5"); code != 2 {
		t.Fatalf("-branches -5: exit %d, want 2", code)
	}
	code, _, stderr := runTracegen(t, "-name", "INT01", "-summarize", "x.bpt")
	if code != 2 || !strings.Contains(stderr, "one or the other") {
		t.Fatalf("-name+-summarize: exit %d, stderr %q", code, stderr)
	}
	if code, _, _ := runTracegen(t); code != 2 {
		t.Fatal("no args should be a usage error")
	}
}

// TestGenerateAndSummarize: generate a spec workload to a file, then
// summarise it back; the report carries the branch-mix fields.
func TestGenerateAndSummarize(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.bpt")
	code, _, stderr := runTracegen(t, "-name", "phased:period=512#1", "-branches", "5000", "-o", path)
	if code != 0 {
		t.Fatalf("generate failed (%d): %s", code, stderr)
	}
	code, stdout, stderr := runTracegen(t, "-summarize", path)
	if code != 0 {
		t.Fatalf("summarize failed (%d): %s", code, stderr)
	}
	for _, want := range []string{"name=phased:period=512#1", "branches=5000", "taken=", "top10-cover=", "transition-entropy="} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("summary missing %q:\n%s", want, stdout)
		}
	}
}

// TestConvertRoundTrip: the checked-in CBP sample converts to a binary
// trace that reads back with every line accounted for.
func TestConvertRoundTrip(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sample.bpt")
	code, stdout, stderr := runTracegen(t, "convert", "-format", "cbp", "-name", "cbp-sample", "-o", out, "testdata/cbp-sample.txt")
	if code != 0 {
		t.Fatalf("convert failed (%d): %s", code, stderr)
	}
	if !strings.Contains(stdout, "400 lines -> 400 conditional branches") {
		t.Fatalf("conversion report:\n%s", stdout)
	}
	if !strings.Contains(stdout, "bpbench -traces 'file:") {
		t.Fatalf("report should say how to run the trace:\n%s", stdout)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := repro.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name != "cbp-sample" || tr.Category != "EXT" || len(tr.Branches) != 400 {
		t.Fatalf("read back %s/%s with %d branches", tr.Name, tr.Category, len(tr.Branches))
	}
}

func TestConvertUsage(t *testing.T) {
	if code, _, _ := runTracegen(t, "convert"); code != 2 {
		t.Fatal("convert with no input should be a usage error")
	}
	if code, _, _ := runTracegen(t, "convert", "a.txt", "b.txt"); code != 2 {
		t.Fatal("convert with two inputs should be a usage error")
	}
	code, _, stderr := runTracegen(t, "convert", "-format", "elf", "testdata/cbp-sample.txt")
	if code != 1 || !strings.Contains(stderr, "cbp") {
		t.Fatalf("unknown format: exit %d, stderr %q", code, stderr)
	}
}

func TestSpecFileName(t *testing.T) {
	cases := map[string]string{
		"INT01":                 "int01",
		"phased:period=4096#1":  "phased-period-4096-1",
		"mix:loopy=2,datadep=1": "mix-loopy-2-datadep-1",
	}
	for in, want := range cases {
		if got := specFileName(in); got != want {
			t.Fatalf("specFileName(%q) = %q, want %q", in, got, want)
		}
	}
}
