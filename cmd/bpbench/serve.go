// Distributed sweep subcommands:
//
//	bpbench serve -addr :9090 -store results/dist.jsonl
//	bpbench work -connect http://coordinator:9090
//	bpbench merge a.jsonl b.jsonl -o merged.jsonl
//
// `serve` runs the coordinator: it accepts sweep submissions (POST a
// JSON body to /v1/sweep), shards the expanded matrix into TTL'd job
// leases that `work` processes pull over HTTP, and streams the records
// back to the submitter as JSONL — appending them to -store first when
// one is set. /metrics and /debug/pprof ride on the same address, with
// lease activity labelled per worker. `merge` unions partial stores
// from separate runs into one canonical store.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/cli"
)

// runServe implements `bpbench serve`. When stop is non-nil (tests),
// the server shuts down when it closes; otherwise SIGINT/SIGTERM stop
// it.
func runServe(args []string, stdout, stderr io.Writer, stop <-chan struct{}) int {
	fs := flag.NewFlagSet("bpbench serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":9090", "address to serve the sweep API, /metrics and /debug/pprof on")
		store      = fs.String("store", "", "append-only JSONL result store: submissions resume against it and append new records under its lock")
		leaseTTL   = fs.Duration("lease-ttl", 0, "job lease time-to-live; an unrenewed lease requeues its cells (default 30s)")
		leaseBatch = fs.Int("lease-batch", 0, "cells per lease (default 4)")
	)
	verbose, quiet := cli.Verbosity(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := cli.NewLogger(stderr, *verbose, *quiet)
	if fs.NArg() > 0 {
		log.Error(fmt.Sprintf("bpbench: serve: unexpected arguments %q", fs.Args()))
		return 2
	}

	// One registry serves /metrics, the lease queue and every
	// submission's run telemetry.
	reg := repro.NewMetricsRegistry()
	queue := repro.NewBenchLeaseQueue(*leaseTTL, *leaseBatch, reg)
	prov := repro.CurrentProvenance()
	svc := &repro.BenchService{
		Queue:   queue,
		Resolve: repro.BenchResolver(),
		Store:   *store,
		Config:  repro.BenchConfig{Provenance: &prov, Metrics: reg, Log: log},
		Log:     log,
	}
	mux := repro.TelemetryMux(reg)
	svc.Register(mux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: serve: %v", err))
		return 2
	}
	srv := &http.Server{Handler: mux}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	log.Info(fmt.Sprintf("bpbench: serving sweeps, /metrics and /debug/pprof on http://%s", ln.Addr()))
	if *store != "" {
		log.Info(fmt.Sprintf("bpbench: appending results to store %s", *store))
	}

	if stop == nil {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		defer signal.Stop(sig)
		select {
		case <-sig:
		case err := <-done:
			log.Error(fmt.Sprintf("bpbench: serve: %v", err))
			return 2
		}
	} else {
		select {
		case <-stop:
		case err := <-done:
			log.Error(fmt.Sprintf("bpbench: serve: %v", err))
			return 2
		}
	}
	srv.Close()
	return 0
}

// runWork implements `bpbench work -connect addr`. When ctx is nil
// (the real CLI), SIGINT/SIGTERM cancel the worker; tests pass their
// own context.
func runWork(args []string, stdout, stderr io.Writer, ctx context.Context) int {
	fs := flag.NewFlagSet("bpbench work", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		connect     = fs.String("connect", "", "coordinator base URL, e.g. http://host:9090 (required)")
		id          = fs.String("id", "", "worker id reported in leases and coordinator metrics (default: hostname-pid)")
		parallel    = fs.Int("parallelism", 0, "max concurrent jobs (default: NumCPU)")
		cellPar     = fs.Int("cell-par", 0, "intra-cell workers per cell group (deterministic; 0/1 = off)")
		poll        = fs.Duration("poll", 500*time.Millisecond, "sleep between empty lease polls")
		metricsAddr = fs.String("metrics-addr", "", "serve this worker's own /metrics and /debug/pprof on this address")
		noPool      = fs.Bool("nopredictorpool", false, "construct a fresh predictor per cell instead of Reset-reusing a pooled instance")
		noCache     = fs.Bool("notracecache", false, "regenerate the trace for every job instead of sharing per (trace, length)")
	)
	verbose, quiet := cli.Verbosity(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	log := cli.NewLogger(stderr, *verbose, *quiet)
	if fs.NArg() > 0 {
		log.Error(fmt.Sprintf("bpbench: work: unexpected arguments %q", fs.Args()))
		return 2
	}
	if *connect == "" {
		log.Error("bpbench: work: -connect is required (the coordinator's base URL)")
		return 2
	}

	var reg *repro.MetricsRegistry
	if *metricsAddr != "" {
		reg = repro.NewMetricsRegistry()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: work: -metrics-addr: %v", err))
			return 2
		}
		srv := &http.Server{Handler: repro.TelemetryMux(reg)}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		log.Info(fmt.Sprintf("bpbench: serving /metrics and /debug/pprof on http://%s", ln.Addr()))
	}

	if ctx == nil {
		var cancel context.CancelFunc
		ctx, cancel = signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer cancel()
	}
	log.Info(fmt.Sprintf("bpbench: worker pulling leases from %s", *connect))
	err := repro.RunBenchWorker(ctx, repro.BenchWorkerOptions{
		BaseURL: *connect,
		ID:      *id,
		Resolve: repro.BenchResolver(),
		Config: repro.BenchConfig{
			Parallelism:      *parallel,
			IntraCellWorkers: *cellPar,
			NoPredictorPool:  *noPool,
			NoTraceCache:     *noCache,
			Metrics:          reg,
		},
		Poll: *poll,
		Log:  log,
	})
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: work: %v", err))
		return 2
	}
	log.Info("bpbench: worker stopped")
	return 0
}

// runMerge implements `bpbench merge a.jsonl b.jsonl [-o out.jsonl]`:
// union partial result stores (argument order = newest last) into one
// canonical store with a single recomputed aggregate set, refusing
// stores that disagree about a cell. Without -o the merged store goes
// to stdout as JSONL.
func runMerge(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bpbench merge", flag.ContinueOnError)
	fs.SetOutput(stderr)
	outPath := fs.String("o", "", "write the merged store here instead of stdout")
	verbose, quiet := cli.Verbosity(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Accept flags before, between or after the store paths, like diff.
	var paths []string
	for fs.NArg() > 0 {
		paths = append(paths, fs.Arg(0))
		if err := fs.Parse(fs.Args()[1:]); err != nil {
			return 2
		}
	}
	log := cli.NewLogger(stderr, *verbose, *quiet)
	if len(paths) == 0 {
		fmt.Fprintln(stderr, "usage: bpbench merge [-o out.jsonl] a.jsonl b.jsonl ...")
		return 2
	}

	stores := make([][]repro.BenchRecord, 0, len(paths))
	for _, p := range paths {
		recs, _, err := repro.ReadBenchStoreFile(p)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
		stores = append(stores, recs)
	}
	out, stats, err := repro.MergeBenchStores(stores...)
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	log.Info(fmt.Sprintf("bpbench: merge: %d records in across %d stores, %d out; %d distinct cells (%d still failed), %d aggregates recomputed",
		stats.In, len(paths), stats.Out, stats.CellsOut, stats.FailedKept, stats.AggregatesOut))

	var w io.Writer = stdout
	var cleanup func(err error) error
	if *outPath != "" {
		tmp := *outPath + ".merge.tmp"
		f, err := os.Create(tmp)
		if err != nil {
			log.Error(fmt.Sprintf("bpbench: %v", err))
			return 2
		}
		w = f
		cleanup = func(err error) error {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
			if err == nil {
				err = os.Rename(tmp, *outPath)
			}
			if err != nil {
				os.Remove(tmp)
			}
			return err
		}
	}
	sink, err := repro.NewBenchSink("jsonl", w)
	if err == nil {
		for _, r := range out {
			if err = sink.Emit(r); err != nil {
				break
			}
		}
	}
	if cerr := sink.Close(); err == nil {
		err = cerr
	}
	if cleanup != nil {
		err = cleanup(err)
	}
	if err != nil {
		log.Error(fmt.Sprintf("bpbench: %v", err))
		return 2
	}
	return 0
}
