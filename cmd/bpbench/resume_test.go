package main

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
)

// sweepArgs is the shared small Figure 9-style grid: one scalable model
// swept across four storage budgets on two traces.
func sweepArgs(store string) []string {
	return []string{
		"-models", "tage", "-scenarios", "A", "-traces", "INT01,INT02",
		"-branches", "1500", "-delta", "-2:1", "-resume", store,
	}
}

// readStore parses a result store, zeroing the wall-clock telemetry
// fields (the only fields two identical runs may legitimately disagree
// on).
func readStore(t *testing.T, path string) []repro.BenchRecord {
	t.Helper()
	recs, err := repro.ReadBenchRecordsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		recs[i].ElapsedSec = 0
		recs[i].BranchesPerSec = 0
	}
	return recs
}

// TestResumeContinuesTruncatedSweep is the archetype end-to-end test:
// run a storage-budget sweep to a store, truncate the store mid-grid
// (simulating an interrupted run), resume, and assert the final store is
// identical — record for record, in order — to the uninterrupted run,
// modulo wall-clock timing.
func TestResumeContinuesTruncatedSweep(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	interrupted := filepath.Join(dir, "interrupted.jsonl")

	code, _, errOut := runCapture(t, sweepArgs(full)...)
	if code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 0 of 8 cells, ran 8") {
		t.Fatalf("fresh sweep stderr: %s", errOut)
	}

	// Truncate mid-grid: keep the first 5 of 8 cell lines.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	if len(lines) <= 8 {
		t.Fatalf("store has %d lines, expected cells+aggregates", len(lines))
	}
	trunc := strings.Join(lines[:5], "\n") + "\n"
	if err := os.WriteFile(interrupted, []byte(trunc), 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, errOut = runCapture(t, sweepArgs(interrupted)...)
	if code != 0 {
		t.Fatalf("resume exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 5 of 8 cells, ran 3") {
		t.Fatalf("resume stderr: %s", errOut)
	}

	want := readStore(t, full)
	got := readStore(t, interrupted)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed store differs from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestResumeCompleteStoreRunsNothing: re-invoking the sweep with -resume
// on its own completed output performs zero simulator runs and leaves
// the store byte-identical.
func TestResumeCompleteStoreRunsNothing(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if code, _, errOut := runCapture(t, sweepArgs(store)...); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}

	code, _, errOut := runCapture(t, sweepArgs(store)...)
	if code != 0 {
		t.Fatalf("no-op resume exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 8 of 8 cells, ran 0") {
		t.Fatalf("no-op resume must run nothing, stderr: %s", errOut)
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("no-op resume modified the store")
	}
}

// TestResumeMatchesSingleInvocationSweep: a single -delta invocation
// covers deltaLog -4..+3 for the reference TAGE (the Figure 9 sweep
// shape), and building the same store budget-by-budget through resumes
// converges to the same cell set.
func TestResumeMatchesSingleInvocationSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-invocation sweep in -short mode")
	}
	dir := t.TempDir()
	oneShot := filepath.Join(dir, "oneshot.jsonl")
	grown := filepath.Join(dir, "grown.jsonl")

	args := func(store, delta string) []string {
		return []string{
			"-models", "tage", "-scenarios", "A", "-traces", "INT01",
			"-branches", "1200", "-delta", delta, "-resume", store,
		}
	}
	if code, _, errOut := runCapture(t, args(oneShot, "-4:3")...); code != 0 {
		t.Fatalf("one-shot sweep exit %d: %s", code, errOut)
	}
	// Grow the other store in two halves; the second resume reuses
	// nothing (disjoint budgets) but appends into the same store.
	if code, _, errOut := runCapture(t, args(grown, "-4:-1")...); code != 0 {
		t.Fatalf("first half exit %d: %s", code, errOut)
	}
	if code, _, errOut := runCapture(t, args(grown, "0:3")...); code != 0 {
		t.Fatalf("second half exit %d: %s", code, errOut)
	}
	// And a final full-range resume must find every cell present.
	code, _, errOut := runCapture(t, args(grown, "-4:3")...)
	if code != 0 || !strings.Contains(errOut, "reused 8 of 8 cells, ran 0") {
		t.Fatalf("full-range resume over grown store: exit %d, %s", code, errOut)
	}

	cells := func(recs []repro.BenchRecord) map[string]repro.BenchRecord {
		out := make(map[string]repro.BenchRecord)
		for _, r := range recs {
			if r.Kind == "cell" {
				out[r.Key()] = r
			}
		}
		return out
	}
	got := cells(readStore(t, grown))
	want := cells(readStore(t, oneShot))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("grown store cells differ from one-shot sweep:\ngot  %+v\nwant %+v", got, want)
	}
	for d := -4; d <= 3; d++ {
		key := fmt.Sprintf("tage@%+d/INT01/A/1200", d)
		if _, ok := want[key]; !ok {
			t.Fatalf("one-shot sweep missing budget cell %s", key)
		}
	}
}

// TestResumeSurvivesCrashTail: a store whose final line was cut mid-
// write (kill -9 during Emit) resumes cleanly — the tail is dropped,
// its cell re-runs, and the final store matches an uninterrupted run.
func TestResumeSurvivesCrashTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.jsonl")
	crashed := filepath.Join(dir, "crashed.jsonl")

	if code, _, errOut := runCapture(t, sweepArgs(full)...); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Keep 3 full cell lines plus half of the 4th.
	lines := strings.SplitAfter(string(data), "\n")
	partial := strings.Join(lines[:3], "") + lines[3][:len(lines[3])/2]
	if err := os.WriteFile(crashed, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}

	code, _, errOut := runCapture(t, sweepArgs(crashed)...)
	if code != 0 {
		t.Fatalf("crash-tail resume exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 3 of 8 cells, ran 5") {
		t.Fatalf("crash-tail resume stderr: %s", errOut)
	}
	if got, want := readStore(t, crashed), readStore(t, full); !reflect.DeepEqual(got, want) {
		t.Fatalf("crash-tail store differs from uninterrupted run:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestResumeRefusesConfigMismatch: resuming a store under a different
// pipeline configuration must fail loudly instead of mixing pipeline
// models in one store.
func TestResumeRefusesConfigMismatch(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if code, _, errOut := runCapture(t, sweepArgs(store)...); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	args := append(sweepArgs(store), "-window", "64")
	code, _, errOut := runCapture(t, args...)
	if code != 2 || !strings.Contains(errOut, "different configuration") {
		t.Fatalf("config-mismatch resume: exit %d, stderr: %s", code, errOut)
	}
}

func TestResumeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "s.jsonl")
	cases := [][]string{
		{"-models", "tage", "-resume", store, "-o", filepath.Join(dir, "x")},
		{"-models", "tage", "-resume", store, "-format", "csv"},
		// gshare has no scaled constructor: a -delta sweep must name it.
		{"-models", "gshare", "-delta", "-1:1", "-branches", "100"},
		{"-models", "tage", "-delta", "3:1", "-branches", "100"},
		{"-models", "tage", "-delta", "x", "-branches", "100"},
		{"-models", "tage", "-delta", "1,1", "-branches", "100"},
	}
	for _, args := range cases {
		if code, _, _ := runCapture(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

func TestParseDeltas(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []int
	}{
		{"", nil},
		{"-2:1", []int{-2, -1, 0, 1}},
		{"3:3", []int{3}},
		{" -1 : 1 ", []int{-1, 0, 1}},
		{"-4,0,3", []int{-4, 0, 3}},
	} {
		got, err := parseDeltas(tc.in)
		if err != nil || !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseDeltas(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"1:0", "a:b", "1:b", "x", "1,,y"} {
		if _, err := parseDeltas(bad); err == nil {
			t.Errorf("parseDeltas(%q) must fail", bad)
		}
	}
}
