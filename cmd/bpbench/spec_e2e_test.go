package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// End-to-end coverage of the ModelSpec path through bpbench: arbitrary
// (non-named) specs run through the resumable store with their canonical
// spec recorded, and -sweep expands a spec field into a matrix axis.

// TestSpecResumeEndToEnd: a non-named spec runs through `bpbench
// -resume`, its canonical spec string lands in every cell record of the
// store, and re-resuming reuses everything (the spec validation accepts
// what it wrote).
func TestSpecResumeEndToEnd(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	args := []string{
		"-models", "tage:tables=9", "-scenarios", "A", "-traces", "INT01,INT02",
		"-branches", "1500", "-resume", store,
	}
	if code, _, errOut := runCapture(t, args...); code != 0 {
		t.Fatalf("spec resume exit %d: %s", code, errOut)
	}
	recs := readStore(t, store)
	cells := 0
	for _, r := range recs {
		if r.Kind != "cell" {
			continue
		}
		cells++
		if r.Model != "tage:tables=9" || r.Spec != "tage:tables=9" {
			t.Fatalf("cell model/spec %q/%q, want canonical tage:tables=9", r.Model, r.Spec)
		}
	}
	if cells != 2 {
		t.Fatalf("store holds %d cells, want 2", cells)
	}

	// Re-resume: everything reuses, nothing runs.
	code, _, errOut := runCapture(t, args...)
	if code != 0 || !strings.Contains(errOut, "reused 2 of 2 cells, ran 0") {
		t.Fatalf("re-resume exit %d: %s", code, errOut)
	}

	// A non-canonical spelling of the same configuration resolves to the
	// same canonical key and still reuses the stored cells.
	alt := append([]string(nil), args...)
	alt[1] = "tage:tables=09"
	code, _, errOut = runCapture(t, alt...)
	if code != 0 || !strings.Contains(errOut, "reused 2 of 2 cells, ran 0") {
		t.Fatalf("non-canonical re-resume exit %d: %s", code, errOut)
	}
}

// TestSpecDeltaAxis: a parameterised spec is scalable, so the -delta
// axis applies to it, keying cells by the rescaled canonical spec.
func TestSpecDeltaAxis(t *testing.T) {
	code, out, errOut := runCapture(t,
		"-models", "gshare:log=10", "-scenarios", "A", "-traces", "INT01",
		"-branches", "1500", "-delta", "0:1", "-format", "jsonl")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut)
	}
	recs, err := repro.ReadBenchRecords(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	var models []string
	var bits []int
	for _, r := range recs {
		if r.Kind == "cell" {
			models = append(models, r.Model)
			bits = append(bits, r.StorageBits)
			if r.Spec != r.Model {
				t.Fatalf("scaled cell spec %q != model %q", r.Spec, r.Model)
			}
		}
	}
	if len(models) != 2 || models[0] != "gshare:log=10@+0" || models[1] != "gshare:log=10@+1" {
		t.Fatalf("scaled models %v", models)
	}
	if bits[1] != 2*bits[0] {
		t.Fatalf("scaled storage %v, want a doubling", bits)
	}

	// A spec that already carries a delta cannot also get the axis.
	code, _, errOut = runCapture(t,
		"-models", "gshare:log=10@+1", "-delta", "0:1", "-traces", "INT01", "-branches", "1500")
	if code != 2 || !strings.Contains(errOut, "already carries a storage delta") {
		t.Fatalf("delta-on-delta: exit %d, stderr: %s", code, errOut)
	}
}

// TestSweepFlag: -sweep turns a spec field into a matrix axis.
func TestSweepFlag(t *testing.T) {
	code, out, errOut := runCapture(t,
		"-models", "tage:tables=13", "-sweep", "tables=11:13", "-scenarios", "A",
		"-traces", "INT01", "-branches", "1500", "-format", "jsonl")
	if code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	recs, err := repro.ReadBenchRecords(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	var models []string
	for _, r := range recs {
		if r.Kind == "cell" {
			models = append(models, r.Model)
		}
	}
	want := []string{"tage:tables=11", "tage:tables=12", "tage:tables=13"}
	if len(models) != 3 || models[0] != want[0] || models[1] != want[1] || models[2] != want[2] {
		t.Fatalf("swept models %v, want %v", models, want)
	}

	// Bad sweeps fail fast with actionable messages.
	for _, c := range []struct{ sweep, want string }{
		{"tables", "key=lo:hi"},
		{"tables=13:9", "lo 13 > hi 9"},
		{"tables=90:91", "out of range"},
		{"warp=1:2", "warp"},
	} {
		code, _, errOut := runCapture(t,
			"-models", "tage", "-sweep", c.sweep, "-traces", "INT01", "-branches", "1500")
		if code != 2 || !strings.Contains(errOut, c.want) {
			t.Fatalf("-sweep %q: exit %d, stderr %q (want %q)", c.sweep, code, errOut, c.want)
		}
	}
}
