package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncWriter guards a buffer the serve/work goroutines log into while
// the test reads it.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// The slog text handler quotes the message, so stop at the closing quote.
var serveAddrRe = regexp.MustCompile(`on http://([^"\s\\]+)`)

// startServe runs `bpbench serve` on an ephemeral port and returns its
// base URL, parsed from the startup log line.
func startServe(t *testing.T, extra ...string) string {
	t.Helper()
	stop := make(chan struct{})
	done := make(chan int, 1)
	var stderr syncWriter
	args := append([]string{"-addr", "127.0.0.1:0", "-lease-ttl", "5s"}, extra...)
	go func() { done <- runServe(args, &bytes.Buffer{}, &stderr, stop) }()
	t.Cleanup(func() {
		close(stop)
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("serve exited %d:\n%s", code, stderr.String())
			}
		case <-time.After(5 * time.Second):
			t.Error("serve did not stop")
		}
	})

	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := serveAddrRe.FindStringSubmatch(stderr.String()); m != nil {
			return "http://" + m[1]
		}
		if time.Now().After(deadline) {
			t.Fatalf("serve never reported its address:\n%s", stderr.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startWork runs `bpbench work` against base until the test ends.
func startWork(t *testing.T, base string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	var stderr syncWriter
	go func() {
		done <- runWork([]string{"-connect", base, "-poll", "20ms", "-parallelism", "2"}, &bytes.Buffer{}, &stderr, ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("work exited %d:\n%s", code, stderr.String())
			}
		case <-time.After(10 * time.Second):
			t.Error("worker did not stop")
		}
	})
}

// sweepTo submits the golden CI matrix restricted to the given models
// and writes the streamed records to path.
func sweepTo(t *testing.T, base, path, models string) {
	t.Helper()
	body := fmt.Sprintf(`{"models":[%s],"traces":["INT01"],"scenarios":"A,C","branches":[20000]}`, models)
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep returned %s", resp.Status)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestServeWorkMergeDiffGolden is the CLI end-to-end: a coordinator and
// one worker run the golden CI matrix as two partitioned submissions
// (by model, the first matrix axis), the two JSONL streams are merged
// with `bpbench merge`, and `bpbench diff` against the checked-in
// golden store must report zero movement — the distributed path
// produces bit-identical predictor measurements to a local run.
func TestServeWorkMergeDiffGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e in -short mode")
	}
	base := startServe(t)
	startWork(t, base)

	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")
	sweepTo(t, base, a, `"tage"`)
	sweepTo(t, base, b, `"gshare"`)

	merged := filepath.Join(dir, "merged.jsonl")
	if code, _, errOut := runCapture(t, "merge", a, b, "-o", merged); code != 0 {
		t.Fatalf("merge exited %d:\n%s", code, errOut)
	}
	// Zero movement against the checked-in golden proves the full
	// distributed path reproduced the local measurements exactly.
	code, out, errOut := runCapture(t, "diff", filepath.Join("testdata", "ci-golden.jsonl"), merged)
	if code != 0 {
		t.Fatalf("diff against golden exited %d\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}

	// The coordinator's own /metrics names the worker.
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	metrics.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(metrics.String(), "bpbench_leases_granted_total{worker=") {
		t.Fatalf("coordinator /metrics has no per-worker lease telemetry:\n%s", metrics.String())
	}
}

// TestMergeCLIStdoutAndErrors covers merge's thinner paths: stdout
// output, missing stores, conflicting stores.
func TestMergeCLIStdoutAndErrors(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	os.WriteFile(a, []byte(`{"kind":"cell","model":"m","trace":"INT01","scenario":"A","branches":100,"window":24,"exec_delay":6,"mpki":2,"mppki":40,"mispredicts":1}`+"\n"), 0o644)
	os.WriteFile(b, []byte(`{"kind":"cell","model":"m","trace":"INT02","scenario":"A","branches":100,"window":24,"exec_delay":6,"mpki":3,"mppki":60,"mispredicts":1}`+"\n"), 0o644)

	code, out, errOut := runCapture(t, "merge", a, b)
	if code != 0 {
		t.Fatalf("merge exited %d:\n%s", code, errOut)
	}
	if got := strings.Count(out, `"kind":"cell"`); got != 2 {
		t.Fatalf("merged stdout has %d cells, want 2:\n%s", got, out)
	}
	if !strings.Contains(out, `"kind":"suite"`) {
		t.Fatalf("merge did not recompute aggregates:\n%s", out)
	}

	if code, _, _ := runCapture(t, "merge"); code == 0 {
		t.Fatal("merge with no stores succeeded")
	}
	if code, _, _ := runCapture(t, "merge", filepath.Join(dir, "nope.jsonl")); code == 0 {
		t.Fatal("merge with a missing store succeeded")
	}

	conflict := filepath.Join(dir, "conflict.jsonl")
	os.WriteFile(conflict, []byte(`{"kind":"cell","model":"m","trace":"INT01","scenario":"A","branches":100,"window":48,"exec_delay":6,"mpki":9,"mppki":40,"mispredicts":1}`+"\n"), 0o644)
	code, _, errOut = runCapture(t, "merge", a, conflict)
	if code == 0 || !strings.Contains(errOut, "disagree") {
		t.Fatalf("conflicting merge: code %d, stderr:\n%s", code, errOut)
	}
}

// TestWorkCLIUsage: -connect is mandatory.
func TestWorkCLIUsage(t *testing.T) {
	if code, _, errOut := runCapture(t, "work"); code != 2 || !strings.Contains(errOut, "-connect") {
		t.Fatalf("work without -connect: code %d, stderr:\n%s", code, errOut)
	}
}
