package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
)

// growStore builds a store with real lifecycle garbage in it: a first
// completed half-sweep (cells + aggregate set), then a full-range resume
// that appends the remaining cells and a second aggregate set — so the
// uncompacted store holds one stale aggregate set for compaction to
// drop.
func growStore(t *testing.T, store string) {
	t.Helper()
	half := []string{
		"-models", "tage", "-scenarios", "A", "-traces", "INT01,INT02",
		"-branches", "1500", "-delta", "-2:-1", "-resume", store,
	}
	if code, _, errOut := runCapture(t, half...); code != 0 {
		t.Fatalf("half sweep exit %d: %s", code, errOut)
	}
	if code, _, errOut := runCapture(t, sweepArgs(store)...); code != 0 {
		t.Fatalf("full resume exit %d: %s", code, errOut)
	}
}

// TestCompactRoundTrip is the acceptance-criterion walk of the store
// lifecycle: grow a store through an interrupted-then-resumed sweep,
// compact it, and assert that (a) compaction dropped the stale aggregate
// set, (b) re-resuming the compacted store executes zero jobs, and (c)
// `bpbench diff` between the uncompacted and compacted stores reports
// zero MPKI movement — compaction changed nothing any reader observes.
func TestCompactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := filepath.Join(dir, "store.jsonl")
	compacted := filepath.Join(dir, "compacted.jsonl")
	growStore(t, store)

	// Dry-run first: reports, but must not touch the store.
	before, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCapture(t, "compact", store, "-dry-run")
	if code != 0 || !strings.Contains(errOut, "stale aggregates") {
		t.Fatalf("dry-run exit %d: %s", code, errOut)
	}
	after, err := os.ReadFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatal("-dry-run modified the store")
	}

	code, _, errOut = runCapture(t, "compact", "-o", compacted, store)
	if code != 0 {
		t.Fatalf("compact exit %d: %s", code, errOut)
	}
	// The half-sweep's aggregate set (2 models-variants worth of suite
	// rows) is stale; the full set survives as the recomputed one.
	if !strings.Contains(errOut, "8 distinct cells (0 still failed)") {
		t.Fatalf("compact summary: %s", errOut)
	}

	// Re-resuming the compacted store runs nothing.
	code, _, errOut = runCapture(t, sweepArgs(compacted)...)
	if code != 0 || !strings.Contains(errOut, "reused 8 of 8 cells, ran 0") {
		t.Fatalf("resume on compacted store: exit %d, %s", code, errOut)
	}

	// And the diff gate sees zero movement between the two stores.
	code, out, errOut := runCapture(t, "diff", store, compacted)
	if code != 0 {
		t.Fatalf("diff exit %d: %s%s", code, out, errOut)
	}
	if !strings.Contains(out, "compared 8 cells: 0 regressions, 0 improvements") {
		t.Fatalf("diff output:\n%s", out)
	}
}

// TestCompactInPlace: without -o the store is rewritten atomically in
// place, and compacting an already-compact store drops nothing.
func TestCompactInPlace(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	growStore(t, store)

	if code, _, errOut := runCapture(t, "compact", store); code != 0 {
		t.Fatalf("in-place compact exit %d: %s", code, errOut)
	}
	recs, err := repro.ReadBenchRecordsFile(store)
	if err != nil {
		t.Fatalf("compacted store unreadable: %v", err)
	}
	_, stats := repro.CompactStore(recs)
	if stats.Dropped() != 0 {
		t.Fatalf("in-place compact left droppable records: %+v", stats)
	}
	code, _, errOut := runCapture(t, "compact", store, "-dry-run")
	if code != 0 || !strings.Contains(errOut, "(0 dropped:") {
		t.Fatalf("second compact: exit %d, %s", code, errOut)
	}
	if _, err := os.Stat(store + ".compact.tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
}

func TestCompactUsageErrors(t *testing.T) {
	dir := t.TempDir()
	for _, args := range [][]string{
		{"compact"},
		{"compact", filepath.Join(dir, "absent.jsonl")},
		{"compact", filepath.Join(dir, "a.jsonl"), filepath.Join(dir, "b.jsonl")},
		{"compact", "-badflag", filepath.Join(dir, "a.jsonl")},
	} {
		if code, _, _ := runCapture(t, args...); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

// TestResumePerfCoversReusedCells is the regression test for -perf on a
// resume: a store that reuses every cell (nothing ran) must still render
// a complete branches/sec table from the preserved telemetry instead of
// silently printing nothing.
func TestResumePerfCoversReusedCells(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if code, _, errOut := runCapture(t, sweepArgs(store)...); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}

	code, _, errOut := runCapture(t, append(sweepArgs(store), "-perf")...)
	if code != 0 {
		t.Fatalf("no-op resume exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 8 of 8 cells, ran 0") {
		t.Fatalf("resume stderr: %s", errOut)
	}
	if !strings.Contains(errOut, "simulator throughput") {
		t.Fatalf("-perf on an all-reused store printed no table:\n%s", errOut)
	}
	// One row per budget variant, with real telemetry merged in.
	for _, model := range []string{"tage@-2", "tage@+1"} {
		if !strings.Contains(errOut, model) {
			t.Fatalf("perf table missing %s:\n%s", model, errOut)
		}
	}
	if strings.Contains(errOut, " -\n") {
		t.Fatalf("perf table has empty-telemetry rows:\n%s", errOut)
	}
}

// TestFreshRunStampsProvenance is the acceptance contract: every record
// a fresh bpbench run writes carries a provenance block with a non-empty
// git SHA (the tests run inside the repository).
func TestFreshRunStampsProvenance(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if code, _, errOut := runCapture(t, sweepArgs(store)...); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}
	recs, err := repro.ReadBenchRecordsFile(store)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("empty store")
	}
	for i, r := range recs {
		if r.Provenance == nil || r.Provenance.GitSHA == "" {
			t.Fatalf("record %d (%s %s) has no provenance git SHA", i, r.Kind, r.Key())
		}
		if r.Provenance.Schema == 0 || r.Provenance.GoVersion == "" {
			t.Fatalf("record %d provenance incomplete: %+v", i, r.Provenance)
		}
	}
	if ps := repro.StoreProvenance(recs); len(ps) != 1 {
		t.Fatalf("fresh store spans %d revisions, want 1: %+v", len(ps), ps)
	}
}

// TestResumeWarnsOnProvenanceDrift: reusing cells recorded under a
// different git SHA than HEAD warns (but still reuses — drift is
// informational, not fatal).
func TestResumeWarnsOnProvenanceDrift(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	if code, _, errOut := runCapture(t, sweepArgs(store)...); code != 0 {
		t.Fatalf("sweep exit %d: %s", code, errOut)
	}

	// Rewrite the store as if it had been produced by another revision.
	recs, err := repro.ReadBenchRecordsFile(store)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(store)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for i := range recs {
		if recs[i].Provenance != nil {
			p := *recs[i].Provenance
			p.GitSHA = "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
			recs[i].Provenance = &p
		}
		if err := enc.Encode(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	code, _, errOut := runCapture(t, sweepArgs(store)...)
	if code != 0 {
		t.Fatalf("drifted resume exit %d: %s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 8 of 8 cells, ran 0") {
		t.Fatalf("drift must not prevent reuse: %s", errOut)
	}
	if !strings.Contains(errOut, "may not match HEAD") || !strings.Contains(errOut, "deadbeefde") {
		t.Fatalf("no drift warning in stderr:\n%s", errOut)
	}
	if !strings.Contains(errOut, "... and 5 more") {
		t.Fatalf("drift warning list not capped:\n%s", errOut)
	}
}

// TestDiffProvenanceFlag: `bpbench diff -provenance` renders the
// revision summary line; without the flag the output is unchanged.
func TestDiffProvenanceFlag(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.jsonl")
	b := filepath.Join(dir, "b.jsonl")
	for _, store := range []string{a, b} {
		args := []string{"-models", "gshare", "-scenarios", "A", "-traces", "INT01",
			"-branches", "1500", "-format", "jsonl", "-o", store}
		if code, _, errOut := runCapture(t, args...); code != 0 {
			t.Fatalf("run exit %d: %s", code, errOut)
		}
	}
	code, out, _ := runCapture(t, "diff", "-provenance", a, b)
	if code != 0 {
		t.Fatalf("diff exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "provenance: baseline=[") {
		t.Fatalf("missing provenance summary:\n%s", out)
	}
	code, out, _ = runCapture(t, "diff", a, b)
	if code != 0 || strings.Contains(out, "provenance:") {
		t.Fatalf("default diff output changed:\n%s", out)
	}
}
