package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro"
)

// TestGoldenBaseline re-runs the CI smoke matrix (2 models x 2
// scenarios over INT01 at 20k branches) and diffs it against the
// checked-in baseline: the same gate .github/workflows/ci.yml applies
// via `bpbench diff`. If a predictor change legitimately moves these
// numbers, regenerate the baseline:
//
//	go run ./cmd/bpbench -models tage,gshare -scenarios A,C -traces INT01 \
//	  -branches 20000 -format jsonl -o cmd/bpbench/testdata/ci-golden.jsonl
func TestGoldenBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix run in -short mode")
	}
	var out, errOut bytes.Buffer
	code := run([]string{
		"-models", "tage,gshare", "-scenarios", "A,C", "-traces", "INT01",
		"-branches", "20000", "-format", "jsonl",
	}, &out, &errOut)
	if code != 0 {
		t.Fatalf("matrix run exit %d: %s", code, errOut.String())
	}
	fresh, err := repro.ReadBenchRecords(&out)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := repro.ReadBenchRecords(strings.NewReader(goldenJSONL(t)))
	if err != nil {
		t.Fatal(err)
	}
	rep := repro.BenchDiff(golden, fresh, repro.BenchDiffOptions{})
	if rep.Cells != 4 {
		t.Fatalf("compared %d cells, want 4", rep.Cells)
	}
	if rep.HasRegressions() || len(rep.Improvements) > 0 ||
		len(rep.MissingInNew) > 0 || len(rep.MissingInOld) > 0 {
		var buf bytes.Buffer
		rep.Render(&buf)
		t.Fatalf("run drifted from testdata/ci-golden.jsonl (regenerate it if the change is intended):\n%s", buf.String())
	}
}

func goldenJSONL(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("testdata/ci-golden.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
