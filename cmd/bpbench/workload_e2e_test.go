package main

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro"
)

// readCells reads a JSONL store and returns its cell records keyed for
// comparison, with the timing/provenance noise scrubbed.
func readCells(t *testing.T, path string) map[string]repro.BenchRecord {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := repro.ReadBenchRecords(f)
	if err != nil {
		t.Fatal(err)
	}
	cells := make(map[string]repro.BenchRecord)
	for _, r := range recs {
		if r.Kind != "cell" {
			continue
		}
		r.ElapsedSec, r.BranchesPerSec, r.SimBranches = 0, 0, 0
		r.Provenance = nil
		cells[r.Key()] = r
	}
	return cells
}

// TestGeneratorSpecResume: a generator-spec workload runs through a
// -resume store, and a second resume of the same spec reuses every cell
// instead of re-simulating — spec strings are stable cell identities.
func TestGeneratorSpecResume(t *testing.T) {
	store := filepath.Join(t.TempDir(), "store.jsonl")
	args := []string{"-models", "gshare", "-traces", "phased:period=4096#1",
		"-scenarios", "A", "-branches", "5000", "-resume", store}
	if code, _, errOut := runCapture(t, args...); code != 0 {
		t.Fatalf("first resume exited %d:\n%s", code, errOut)
	}
	cells := readCells(t, store)
	if len(cells) != 1 {
		t.Fatalf("store has %d cells, want 1", len(cells))
	}
	for _, r := range cells {
		if r.Trace != "phased:period=4096#1" || r.Category != "PHASED" {
			t.Fatalf("cell identity %q/%q", r.Trace, r.Category)
		}
		if r.TraceSpec != "" {
			t.Fatalf("generator cells must not carry a separate TraceSpec, got %q", r.TraceSpec)
		}
	}
	code, _, errOut := runCapture(t, args...)
	if code != 0 {
		t.Fatalf("second resume exited %d:\n%s", code, errOut)
	}
	if !strings.Contains(errOut, "reused 1 of 1 cells, ran 0") {
		t.Fatalf("second resume should reuse the cell:\n%s", errOut)
	}
}

// TestTraceSweepExpandsCells: -trace-sweep crosses the base spec with
// the swept field, one cell per value.
func TestTraceSweepExpandsCells(t *testing.T) {
	code, out, errOut := runCapture(t, "-models", "gshare", "-traces", "loopy:",
		"-trace-sweep", "trip=10:12", "-scenarios", "A", "-branches", "2000",
		"-format", "jsonl", "-noaggregates")
	if code != 0 {
		t.Fatalf("exit %d:\n%s", code, errOut)
	}
	var traces []string
	recs, err := repro.ReadBenchRecords(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if r.Kind == "cell" {
			traces = append(traces, r.Trace)
		}
	}
	sort.Strings(traces)
	want := []string{"loopy:trip=10", "loopy:trip=11", "loopy:trip=12"}
	if strings.Join(traces, " ") != strings.Join(want, " ") {
		t.Fatalf("swept traces %v, want %v", traces, want)
	}
}

// TestSpecDeterministicAcrossCellPar: the same generator spec + seed
// measures identically no matter how many intra-cell workers simulate
// it.
func TestSpecDeterministicAcrossCellPar(t *testing.T) {
	cells := func(cellPar string) map[string]repro.BenchRecord {
		code, out, errOut := runCapture(t, "-models", "tage", "-traces", "mix:loopy=2,datadep=1#3",
			"-scenarios", "A,C", "-branches", "5000", "-format", "jsonl", "-noaggregates",
			"-cell-par", cellPar)
		if code != 0 {
			t.Fatalf("-cell-par %s exited %d:\n%s", cellPar, code, errOut)
		}
		recs, err := repro.ReadBenchRecords(strings.NewReader(out))
		if err != nil {
			t.Fatal(err)
		}
		m := make(map[string]repro.BenchRecord)
		for _, r := range recs {
			r.ElapsedSec, r.BranchesPerSec = 0, 0
			r.Provenance = nil
			m[r.Key()] = r
		}
		return m
	}
	serial, par := cells("1"), cells("4")
	if len(serial) != 2 || len(par) != 2 {
		t.Fatalf("cell counts %d/%d, want 2", len(serial), len(par))
	}
	for k, s := range serial {
		if p := par[k]; p != s {
			t.Fatalf("cell %s differs across -cell-par:\n1: %+v\n4: %+v", k, s, p)
		}
	}
}

// TestExternalTraceLocalVsDistributed is the acceptance end-to-end for
// file-backed workloads: a trace converted from CBP text runs through a
// local -resume store AND through serve/work (the worker regenerating
// it from the shipped path), and the two record sets are identical.
func TestExternalTraceLocalVsDistributed(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed e2e in -short mode")
	}
	dir := t.TempDir()

	// Convert a text trace the way an external user would. The sample
	// lives in the tracegen package's testdata; reuse it here.
	text := filepath.Join("..", "tracegen", "testdata", "cbp-sample.txt")
	in, err := os.Open(text)
	if err != nil {
		t.Fatal(err)
	}
	tr, st, err := repro.ConvertTrace(in, "cbp", "cbp-sample")
	in.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Conditional == 0 {
		t.Fatal("sample converted to zero branches")
	}
	bpt := filepath.Join(dir, "sample.bpt")
	f, err := os.Create(bpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.WriteTrace(f, tr); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Local run through a resume store.
	local := filepath.Join(dir, "local.jsonl")
	if code, _, errOut := runCapture(t, "-models", "tage,gshare", "-traces", "file:"+bpt,
		"-scenarios", "A", "-branches", "400", "-resume", local); code != 0 {
		t.Fatalf("local run exited %d:\n%s", code, errOut)
	}
	localCells := readCells(t, local)
	if len(localCells) != 2 {
		t.Fatalf("local store has %d cells, want 2", len(localCells))
	}
	for k, r := range localCells {
		if !strings.HasPrefix(r.Trace, "file:") || strings.Contains(r.Trace, dir) {
			t.Fatalf("%s: trace identity %q is not content-addressed", k, r.Trace)
		}
		if r.TraceSpec != "file:"+bpt {
			t.Fatalf("%s: trace_spec %q, want the path form", k, r.TraceSpec)
		}
		if r.Category != "EXT" {
			t.Fatalf("%s: category %q", k, r.Category)
		}
	}

	// Same matrix through the coordinator/worker pair.
	base := startServe(t)
	startWork(t, base)
	body := fmt.Sprintf(`{"models":["tage","gshare"],"traces":["file:%s"],"scenarios":"A","branches":[400]}`, bpt)
	resp, err := http.Post(base+"/v1/sweep", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep returned %s", resp.Status)
	}
	dist := filepath.Join(dir, "dist.jsonl")
	df, err := os.Create(dist)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	df.Close()

	distCells := readCells(t, dist)
	if len(distCells) != len(localCells) {
		t.Fatalf("distributed produced %d cells, local %d", len(distCells), len(localCells))
	}
	for k, l := range localCells {
		d, ok := distCells[k]
		if !ok {
			t.Fatalf("distributed run missing cell %s", k)
		}
		if l != d {
			t.Fatalf("cell %s differs local vs distributed:\nlocal: %+v\ndist:  %+v", k, l, d)
		}
	}
}
