// Command bpbench sweeps a declarative experiment matrix — models ×
// traces × update scenarii × trace lengths — on a sharded worker pool
// and streams per-cell plus aggregate records to a table, JSONL or CSV
// sink. A saved JSONL run doubles as a baseline for regression diffing:
//
//	bpbench -models tage,gshare -scenarios A,C -traces 'INT*' -format jsonl
//	bpbench -models tage -scenarios I,A,B,C -branches 200000,1000000
//	bpbench -models tage -perf   # branches/sec table on stderr
//	bpbench diff old.jsonl new.jsonl -tolerance 0.05
//	bpbench -list
//
// In diff mode the exit status is non-zero when any cell's MPKI
// regressed beyond the tolerance (or a cell newly fails), making bpbench
// a drop-in CI gate for predictor changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("bpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		models    = fs.String("models", "tage", "comma-separated model identifiers (see -list)")
		scenarios = fs.String("scenarios", "A", "comma-separated update scenarii: I, A, B, C")
		traces    = fs.String("traces", "", "comma-separated trace-name globs, e.g. 'INT*,MM05' (default: all 40)")
		branches  = fs.String("branches", "200000", "comma-separated branches-per-trace lengths")
		include   = fs.String("include", "", "comma-separated cell globs to keep (model/trace/scenario/branches)")
		exclude   = fs.String("exclude", "", "comma-separated cell globs to drop")
		format    = fs.String("format", "table", "output format: table, jsonl or csv")
		outPath   = fs.String("o", "", "write records to this file instead of stdout")
		parallel  = fs.Int("parallelism", 0, "max concurrent jobs (default: NumCPU)")
		window    = fs.Int("window", 0, "in-flight branch window (default 24)")
		execDelay = fs.Int("execdelay", 0, "fetch-to-execute distance in branches (default 6)")
		noCache   = fs.Bool("notracecache", false, "regenerate the trace for every job instead of sharing per (trace, length)")
		noAgg     = fs.Bool("noaggregates", false, "suppress category/hard/suite rollup records")
		perf      = fs.Bool("perf", false, "print a simulator-throughput (branches/sec) table to stderr after the run")
		list      = fs.Bool("list", false, "list models and traces, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bpbench: unexpected arguments %q (did you mean 'bpbench diff'?)\n", fs.Args())
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, "models: ", strings.Join(repro.ModelNames(), " "))
		fmt.Fprintln(stdout, "traces: ", strings.Join(repro.TraceNames(), " "))
		return 0
	}

	if *window < 0 || *execDelay < 0 {
		fmt.Fprintln(stderr, "bpbench: -window and -execdelay must be non-negative (0 = default)")
		return 2
	}
	lengths, err := parseLengths(*branches)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	m, err := repro.NewBenchMatrix(splitList(*models), splitList(*traces), *scenarios, lengths)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	m.Include = splitList(*include)
	m.Exclude = splitList(*exclude)
	m.Window = *window
	m.ExecDelay = *execDelay

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "bpbench:", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	sink, err := repro.NewBenchSink(*format, out)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}

	cfg := repro.BenchConfig{Parallelism: *parallel, NoTraceCache: *noCache, NoAggregates: *noAgg}
	sum, err := repro.RunBench(m, cfg, sink)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	if sum.Jobs == 0 {
		fmt.Fprintln(stderr, "bpbench: filters matched no cells")
		return 2
	}
	if *perf {
		// Telemetry, not data: stderr, so it never corrupts a JSONL/CSV
		// stream on stdout.
		repro.RenderBenchPerf(stderr, repro.BenchPerfRows(sum.Records))
	}
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, "bpbench: %d of %d jobs failed\n", sum.Failed, sum.Jobs)
		return 1
	}
	return 0
}

// runDiff implements `bpbench diff old.jsonl new.jsonl`.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bpbench diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tolerance = fs.Float64("tolerance", 0.02, "relative MPKI increase tolerated before a cell counts as a regression")
		absFloor  = fs.Float64("absfloor", 0.005, "absolute MPKI delta below which a cell never regresses")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: bpbench diff [-tolerance t] [-absfloor a] old.jsonl new.jsonl")
		return 2
	}
	// An explicit `-tolerance 0` / `-absfloor 0` means strict exact
	// matching, which the library expresses as a negative value (its
	// zero value selects the defaults).
	opt := repro.BenchDiffOptions{Tolerance: *tolerance, AbsFloor: *absFloor}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tolerance" && opt.Tolerance == 0 {
			opt.Tolerance = -1
		}
		if f.Name == "absfloor" && opt.AbsFloor == 0 {
			opt.AbsFloor = -1
		}
	})
	rep, err := repro.BenchDiffFiles(fs.Arg(0), fs.Arg(1), opt)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	rep.Render(stdout)
	if rep.Cells == 0 {
		// A baseline that parses to nothing (truncated file, disjoint
		// matrices) must not make the gate pass vacuously.
		fmt.Fprintln(stderr, "bpbench: no overlapping cells between baseline and new run")
		return 2
	}
	if rep.HasRegressions() {
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseLengths parses the -branches axis.
func parseLengths(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad branch count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -branches list")
	}
	return out, nil
}
