// Command bpbench sweeps a declarative experiment matrix — models ×
// traces × update scenarii × trace lengths — on a sharded worker pool
// and streams per-cell plus aggregate records to a table, JSONL or CSV
// sink. A saved JSONL run doubles as a baseline for regression diffing:
//
//	bpbench -models tage,gshare -scenarios A,C -traces 'INT*' -format jsonl
//	bpbench -models tage -scenarios I,A,B,C -branches 200000,1000000
//	bpbench -models tage -delta -4:3 -resume fig9.jsonl   # Figure 9 sweep
//	bpbench -models tage -perf   # branches/sec table on stderr
//	bpbench diff old.jsonl new.jsonl -tolerance 0.05
//	bpbench -list
//
// -delta makes storage budget a matrix axis: each (scalable) model is
// swept across 2^deltaLog budgets, one cell per budget. -resume treats a
// JSONL file as an append-only result store: cells already present (with
// no error) are skipped, failed and missing cells run, and only the new
// records are appended — an interrupted sweep continues instead of
// restarting, and re-running a completed sweep executes nothing.
//
// In diff mode the exit status is non-zero when any cell's MPKI
// regressed beyond the tolerance (or a cell newly fails), making bpbench
// a drop-in CI gate for predictor changes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], stdout, stderr)
	}
	fs := flag.NewFlagSet("bpbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		models    = fs.String("models", "tage", "comma-separated model identifiers (see -list)")
		scenarios = fs.String("scenarios", "A", "comma-separated update scenarii: I, A, B, C")
		traces    = fs.String("traces", "", "comma-separated trace-name globs, e.g. 'INT*,MM05' (default: all 40)")
		branches  = fs.String("branches", "200000", "comma-separated branches-per-trace lengths")
		delta     = fs.String("delta", "", "storage-budget axis: deltaLog range 'lo:hi' (inclusive) or comma list, e.g. '-4:3' (scalable models only)")
		resume    = fs.String("resume", "", "append-only JSONL result store: skip cells already present, append only the missing ones")
		include   = fs.String("include", "", "comma-separated cell globs to keep (model/trace/scenario/branches)")
		exclude   = fs.String("exclude", "", "comma-separated cell globs to drop")
		format    = fs.String("format", "table", "output format: table, jsonl or csv")
		outPath   = fs.String("o", "", "write records to this file instead of stdout")
		parallel  = fs.Int("parallelism", 0, "max concurrent jobs (default: NumCPU)")
		window    = fs.Int("window", 0, "in-flight branch window (default 24)")
		execDelay = fs.Int("execdelay", 0, "fetch-to-execute distance in branches (default 6)")
		noCache   = fs.Bool("notracecache", false, "regenerate the trace for every job instead of sharing per (trace, length)")
		noAgg     = fs.Bool("noaggregates", false, "suppress category/hard/suite rollup records")
		perf      = fs.Bool("perf", false, "print a simulator-throughput (branches/sec) table to stderr after the run")
		list      = fs.Bool("list", false, "list models and traces, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "bpbench: unexpected arguments %q (did you mean 'bpbench diff'?)\n", fs.Args())
		return 2
	}
	if *list {
		fmt.Fprintln(stdout, "models: ", strings.Join(repro.ModelNames(), " "))
		fmt.Fprintln(stdout, "scalable (-delta): ", strings.Join(repro.ScalableModelNames(), " "))
		fmt.Fprintln(stdout, "traces: ", strings.Join(repro.TraceNames(), " "))
		return 0
	}

	if *window < 0 || *execDelay < 0 {
		fmt.Fprintln(stderr, "bpbench: -window and -execdelay must be non-negative (0 = default)")
		return 2
	}
	lengths, err := parseLengths(*branches)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	deltas, err := parseDeltas(*delta)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	m, err := repro.NewBenchMatrix(splitList(*models), splitList(*traces), *scenarios, lengths)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	m.Include = splitList(*include)
	m.Exclude = splitList(*exclude)
	m.Window = *window
	m.ExecDelay = *execDelay
	m.DeltaLogs = deltas

	cfg := repro.BenchConfig{Parallelism: *parallel, NoTraceCache: *noCache, NoAggregates: *noAgg}
	if *resume != "" {
		// The store is the output: format and destination are fixed.
		if *outPath != "" {
			fmt.Fprintln(stderr, "bpbench: -resume writes to the store file; drop -o")
			return 2
		}
		if *format != "table" && *format != "jsonl" {
			fmt.Fprintln(stderr, "bpbench: -resume stores records as jsonl; drop -format")
			return 2
		}
		return runResume(m, cfg, *resume, *perf, stderr)
	}

	out := stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(stderr, "bpbench:", err)
			return 2
		}
		defer f.Close()
		out = f
	}
	sink, err := repro.NewBenchSink(*format, out)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}

	sum, err := repro.RunBench(m, cfg, sink)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	if sum.Jobs == 0 {
		fmt.Fprintln(stderr, "bpbench: filters matched no cells")
		return 2
	}
	if *perf {
		// Telemetry, not data: stderr, so it never corrupts a JSONL/CSV
		// stream on stdout.
		repro.RenderBenchPerf(stderr, repro.BenchPerfRows(sum.Records))
	}
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, "bpbench: %d of %d jobs failed\n", sum.Failed, sum.Jobs)
		return 1
	}
	return 0
}

// runResume implements `bpbench -resume store.jsonl`: plan the grid
// against the store's existing records, execute only the missing or
// failed cells, and append the new records. A missing store file starts
// a fresh one; a crash tail (truncated final line from a killed run) is
// dropped and overwritten, so a store survives kill -9 mid-write.
func runResume(m *repro.BenchMatrix, cfg repro.BenchConfig, path string, perf bool, stderr io.Writer) int {
	jobs, err := repro.ExpandBench(m)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	if len(jobs) == 0 {
		fmt.Fprintln(stderr, "bpbench: filters matched no cells")
		return 2
	}
	prior, validLen, err := repro.ReadBenchStoreFile(path)
	if err != nil && !os.IsNotExist(err) {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	plan := repro.PlanBenchResume(jobs, prior)
	if n := len(plan.ConfigConflicts); n > 0 {
		fmt.Fprintf(stderr, "bpbench: store %s was built under a different pipeline configuration (%d cells); rerun with the original -window/-execdelay or use a fresh store\n", path, n)
		fmt.Fprintln(stderr, "bpbench: first conflict:", plan.ConfigConflicts[0])
		return 2
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	defer f.Close()
	// Drop the crash tail so the appended records extend a well-formed
	// stream (with O_APPEND, writes land at the new end).
	if err := f.Truncate(validLen); err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	sink, err := repro.NewBenchSink("jsonl", f)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	sum, err := repro.RunBenchResume(plan, cfg, sink)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	fmt.Fprintf(stderr, "bpbench: resume %s: reused %d of %d cells, ran %d\n",
		path, sum.Skipped, sum.Jobs, sum.Jobs-sum.Skipped)
	if perf {
		repro.RenderBenchPerf(stderr, repro.BenchPerfRows(sum.Records))
	}
	if sum.Failed > 0 {
		fmt.Fprintf(stderr, "bpbench: %d of %d jobs failed\n", sum.Failed, sum.Jobs-sum.Skipped)
		return 1
	}
	return 0
}

// runDiff implements `bpbench diff old.jsonl new.jsonl`.
func runDiff(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("bpbench diff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tolerance = fs.Float64("tolerance", 0.02, "relative MPKI increase tolerated before a cell counts as a regression")
		absFloor  = fs.Float64("absfloor", 0.005, "absolute MPKI delta below which a cell never regresses")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: bpbench diff [-tolerance t] [-absfloor a] old.jsonl new.jsonl")
		return 2
	}
	// An explicit `-tolerance 0` / `-absfloor 0` means strict exact
	// matching, which the library expresses as a negative value (its
	// zero value selects the defaults).
	opt := repro.BenchDiffOptions{Tolerance: *tolerance, AbsFloor: *absFloor}
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "tolerance" && opt.Tolerance == 0 {
			opt.Tolerance = -1
		}
		if f.Name == "absfloor" && opt.AbsFloor == 0 {
			opt.AbsFloor = -1
		}
	})
	rep, err := repro.BenchDiffFiles(fs.Arg(0), fs.Arg(1), opt)
	if err != nil {
		fmt.Fprintln(stderr, "bpbench:", err)
		return 2
	}
	rep.Render(stdout)
	if rep.Cells == 0 {
		// A baseline that parses to nothing (truncated file, disjoint
		// matrices) must not make the gate pass vacuously.
		fmt.Fprintln(stderr, "bpbench: no overlapping cells between baseline and new run")
		return 2
	}
	if rep.HasRegressions() {
		return 1
	}
	return 0
}

// splitList splits a comma-separated flag, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// parseDeltas parses the -delta axis: an inclusive "lo:hi" deltaLog
// range or a comma-separated list; empty means no budget sweep.
func parseDeltas(s string) ([]int, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	if lo, hi, ok := strings.Cut(s, ":"); ok {
		l, err1 := strconv.Atoi(strings.TrimSpace(lo))
		h, err2 := strconv.Atoi(strings.TrimSpace(hi))
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad -delta range %q (want lo:hi, e.g. -4:3)", s)
		}
		if l > h {
			return nil, fmt.Errorf("bad -delta range %q: lo %d > hi %d", s, l, h)
		}
		out := make([]int, 0, h-l+1)
		for d := l; d <= h; d++ {
			out = append(out, d)
		}
		return out, nil
	}
	var out []int
	for _, p := range splitList(s) {
		d, err := strconv.Atoi(p)
		if err != nil {
			return nil, fmt.Errorf("bad -delta value %q", p)
		}
		out = append(out, d)
	}
	return out, nil
}

// parseLengths parses the -branches axis.
func parseLengths(s string) ([]int, error) {
	var out []int
	for _, p := range splitList(s) {
		n, err := strconv.Atoi(p)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad branch count %q", p)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty -branches list")
	}
	return out, nil
}
